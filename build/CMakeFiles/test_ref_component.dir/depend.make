# Empty dependencies file for test_ref_component.
# This may be replaced when dependencies are built.
