file(REMOVE_RECURSE
  "CMakeFiles/test_ref_component.dir/tests/test_ref_component.cc.o"
  "CMakeFiles/test_ref_component.dir/tests/test_ref_component.cc.o.d"
  "test_ref_component"
  "test_ref_component.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ref_component.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
