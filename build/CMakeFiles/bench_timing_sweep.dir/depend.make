# Empty dependencies file for bench_timing_sweep.
# This may be replaced when dependencies are built.
