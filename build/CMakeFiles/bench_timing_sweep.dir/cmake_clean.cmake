file(REMOVE_RECURSE
  "CMakeFiles/bench_timing_sweep.dir/bench/bench_timing_sweep.cc.o"
  "CMakeFiles/bench_timing_sweep.dir/bench/bench_timing_sweep.cc.o.d"
  "bench_timing_sweep"
  "bench_timing_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_timing_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
