# Empty dependencies file for test_guest_asm.
# This may be replaced when dependencies are built.
