file(REMOVE_RECURSE
  "CMakeFiles/test_guest_asm.dir/tests/test_guest_asm.cc.o"
  "CMakeFiles/test_guest_asm.dir/tests/test_guest_asm.cc.o.d"
  "test_guest_asm"
  "test_guest_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_guest_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
