file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_thresholds.dir/bench/bench_ablation_thresholds.cc.o"
  "CMakeFiles/bench_ablation_thresholds.dir/bench/bench_ablation_thresholds.cc.o.d"
  "bench_ablation_thresholds"
  "bench_ablation_thresholds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_thresholds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
