file(REMOVE_RECURSE
  "CMakeFiles/bench_speed.dir/bench/bench_speed.cc.o"
  "CMakeFiles/bench_speed.dir/bench/bench_speed.cc.o.d"
  "bench_speed"
  "bench_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
