# Empty dependencies file for bench_speed.
# This may be replaced when dependencies are built.
