# Empty dependencies file for bench_fig5_emulation_cost.
# This may be replaced when dependencies are built.
