file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_emulation_cost.dir/bench/bench_fig5_emulation_cost.cc.o"
  "CMakeFiles/bench_fig5_emulation_cost.dir/bench/bench_fig5_emulation_cost.cc.o.d"
  "bench_fig5_emulation_cost"
  "bench_fig5_emulation_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_emulation_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
