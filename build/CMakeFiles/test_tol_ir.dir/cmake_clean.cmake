file(REMOVE_RECURSE
  "CMakeFiles/test_tol_ir.dir/tests/test_tol_ir.cc.o"
  "CMakeFiles/test_tol_ir.dir/tests/test_tol_ir.cc.o.d"
  "test_tol_ir"
  "test_tol_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tol_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
