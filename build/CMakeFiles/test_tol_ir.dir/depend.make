# Empty dependencies file for test_tol_ir.
# This may be replaced when dependencies are built.
