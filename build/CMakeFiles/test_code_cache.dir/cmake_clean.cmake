file(REMOVE_RECURSE
  "CMakeFiles/test_code_cache.dir/tests/test_code_cache.cc.o"
  "CMakeFiles/test_code_cache.dir/tests/test_code_cache.cc.o.d"
  "test_code_cache"
  "test_code_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_code_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
