# Empty dependencies file for test_code_cache.
# This may be replaced when dependencies are built.
