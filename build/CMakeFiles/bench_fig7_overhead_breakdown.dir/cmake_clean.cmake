file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_overhead_breakdown.dir/bench/bench_fig7_overhead_breakdown.cc.o"
  "CMakeFiles/bench_fig7_overhead_breakdown.dir/bench/bench_fig7_overhead_breakdown.cc.o.d"
  "bench_fig7_overhead_breakdown"
  "bench_fig7_overhead_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_overhead_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
