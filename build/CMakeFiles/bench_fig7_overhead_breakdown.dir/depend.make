# Empty dependencies file for bench_fig7_overhead_breakdown.
# This may be replaced when dependencies are built.
