file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_chaining.dir/bench/bench_ablation_chaining.cc.o"
  "CMakeFiles/bench_ablation_chaining.dir/bench/bench_ablation_chaining.cc.o.d"
  "bench_ablation_chaining"
  "bench_ablation_chaining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_chaining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
