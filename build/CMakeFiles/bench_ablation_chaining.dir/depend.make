# Empty dependencies file for bench_ablation_chaining.
# This may be replaced when dependencies are built.
