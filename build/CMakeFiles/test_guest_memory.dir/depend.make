# Empty dependencies file for test_guest_memory.
# This may be replaced when dependencies are built.
