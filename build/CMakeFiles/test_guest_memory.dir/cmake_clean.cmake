file(REMOVE_RECURSE
  "CMakeFiles/test_guest_memory.dir/tests/test_guest_memory.cc.o"
  "CMakeFiles/test_guest_memory.dir/tests/test_guest_memory.cc.o.d"
  "test_guest_memory"
  "test_guest_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_guest_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
