file(REMOVE_RECURSE
  "CMakeFiles/test_controller.dir/tests/test_controller.cc.o"
  "CMakeFiles/test_controller.dir/tests/test_controller.cc.o.d"
  "test_controller"
  "test_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
