file(REMOVE_RECURSE
  "CMakeFiles/test_timing.dir/tests/test_timing.cc.o"
  "CMakeFiles/test_timing.dir/tests/test_timing.cc.o.d"
  "test_timing"
  "test_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
