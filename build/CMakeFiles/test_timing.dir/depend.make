# Empty dependencies file for test_timing.
# This may be replaced when dependencies are built.
