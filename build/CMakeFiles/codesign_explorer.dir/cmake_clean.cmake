file(REMOVE_RECURSE
  "CMakeFiles/codesign_explorer.dir/examples/codesign_explorer.cpp.o"
  "CMakeFiles/codesign_explorer.dir/examples/codesign_explorer.cpp.o.d"
  "codesign_explorer"
  "codesign_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codesign_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
