# Empty dependencies file for codesign_explorer.
# This may be replaced when dependencies are built.
