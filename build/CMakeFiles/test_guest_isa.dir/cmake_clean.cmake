file(REMOVE_RECURSE
  "CMakeFiles/test_guest_isa.dir/tests/test_guest_isa.cc.o"
  "CMakeFiles/test_guest_isa.dir/tests/test_guest_isa.cc.o.d"
  "test_guest_isa"
  "test_guest_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_guest_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
