# Empty dependencies file for test_guest_isa.
# This may be replaced when dependencies are built.
