# Empty dependencies file for timing_power_explorer.
# This may be replaced when dependencies are built.
