file(REMOVE_RECURSE
  "CMakeFiles/timing_power_explorer.dir/examples/timing_power_explorer.cpp.o"
  "CMakeFiles/timing_power_explorer.dir/examples/timing_power_explorer.cpp.o.d"
  "timing_power_explorer"
  "timing_power_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_power_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
