file(REMOVE_RECURSE
  "CMakeFiles/tol_pipeline_tour.dir/examples/tol_pipeline_tour.cpp.o"
  "CMakeFiles/tol_pipeline_tour.dir/examples/tol_pipeline_tour.cpp.o.d"
  "tol_pipeline_tour"
  "tol_pipeline_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tol_pipeline_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
