# Empty dependencies file for tol_pipeline_tour.
# This may be replaced when dependencies are built.
