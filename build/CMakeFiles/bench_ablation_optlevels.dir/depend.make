# Empty dependencies file for bench_ablation_optlevels.
# This may be replaced when dependencies are built.
