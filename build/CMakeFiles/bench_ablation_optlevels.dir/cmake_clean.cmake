file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_optlevels.dir/bench/bench_ablation_optlevels.cc.o"
  "CMakeFiles/bench_ablation_optlevels.dir/bench/bench_ablation_optlevels.cc.o.d"
  "bench_ablation_optlevels"
  "bench_ablation_optlevels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_optlevels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
