file(REMOVE_RECURSE
  "CMakeFiles/test_cost_model.dir/tests/test_cost_model.cc.o"
  "CMakeFiles/test_cost_model.dir/tests/test_cost_model.cc.o.d"
  "test_cost_model"
  "test_cost_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cost_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
