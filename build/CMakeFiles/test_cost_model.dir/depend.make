# Empty dependencies file for test_cost_model.
# This may be replaced when dependencies are built.
