file(REMOVE_RECURSE
  "CMakeFiles/test_differential.dir/tests/test_differential.cc.o"
  "CMakeFiles/test_differential.dir/tests/test_differential.cc.o.d"
  "test_differential"
  "test_differential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_differential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
