# Empty dependencies file for test_differential.
# This may be replaced when dependencies are built.
