file(REMOVE_RECURSE
  "CMakeFiles/test_tol_pipeline.dir/tests/test_tol_pipeline.cc.o"
  "CMakeFiles/test_tol_pipeline.dir/tests/test_tol_pipeline.cc.o.d"
  "test_tol_pipeline"
  "test_tol_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tol_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
