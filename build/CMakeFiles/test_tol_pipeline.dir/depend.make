# Empty dependencies file for test_tol_pipeline.
# This may be replaced when dependencies are built.
