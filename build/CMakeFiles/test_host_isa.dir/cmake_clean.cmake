file(REMOVE_RECURSE
  "CMakeFiles/test_host_isa.dir/tests/test_host_isa.cc.o"
  "CMakeFiles/test_host_isa.dir/tests/test_host_isa.cc.o.d"
  "test_host_isa"
  "test_host_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_host_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
