# Empty dependencies file for test_host_isa.
# This may be replaced when dependencies are built.
