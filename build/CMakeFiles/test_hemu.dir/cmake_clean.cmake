file(REMOVE_RECURSE
  "CMakeFiles/test_hemu.dir/tests/test_hemu.cc.o"
  "CMakeFiles/test_hemu.dir/tests/test_hemu.cc.o.d"
  "test_hemu"
  "test_hemu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hemu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
