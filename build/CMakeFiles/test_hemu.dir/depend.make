# Empty dependencies file for test_hemu.
# This may be replaced when dependencies are built.
