# Empty dependencies file for bench_ablation_superblock.
# This may be replaced when dependencies are built.
