file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_superblock.dir/bench/bench_ablation_superblock.cc.o"
  "CMakeFiles/bench_ablation_superblock.dir/bench/bench_ablation_superblock.cc.o.d"
  "bench_ablation_superblock"
  "bench_ablation_superblock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_superblock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
