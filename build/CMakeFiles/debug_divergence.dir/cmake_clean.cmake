file(REMOVE_RECURSE
  "CMakeFiles/debug_divergence.dir/examples/debug_divergence.cpp.o"
  "CMakeFiles/debug_divergence.dir/examples/debug_divergence.cpp.o.d"
  "debug_divergence"
  "debug_divergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_divergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
