# Empty dependencies file for debug_divergence.
# This may be replaced when dependencies are built.
