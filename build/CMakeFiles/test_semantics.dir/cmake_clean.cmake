file(REMOVE_RECURSE
  "CMakeFiles/test_semantics.dir/tests/test_semantics.cc.o"
  "CMakeFiles/test_semantics.dir/tests/test_semantics.cc.o.d"
  "test_semantics"
  "test_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
