# Empty dependencies file for test_semantics.
# This may be replaced when dependencies are built.
