file(REMOVE_RECURSE
  "CMakeFiles/test_common.dir/tests/test_common.cc.o"
  "CMakeFiles/test_common.dir/tests/test_common.cc.o.d"
  "test_common"
  "test_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
