file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_mode_dist.dir/bench/bench_fig4_mode_dist.cc.o"
  "CMakeFiles/bench_fig4_mode_dist.dir/bench/bench_fig4_mode_dist.cc.o.d"
  "bench_fig4_mode_dist"
  "bench_fig4_mode_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_mode_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
