# Empty dependencies file for bench_fig4_mode_dist.
# This may be replaced when dependencies are built.
