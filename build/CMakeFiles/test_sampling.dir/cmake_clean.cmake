file(REMOVE_RECURSE
  "CMakeFiles/test_sampling.dir/tests/test_sampling.cc.o"
  "CMakeFiles/test_sampling.dir/tests/test_sampling.cc.o.d"
  "test_sampling"
  "test_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
