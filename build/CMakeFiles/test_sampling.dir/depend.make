# Empty dependencies file for test_sampling.
# This may be replaced when dependencies are built.
