# Empty dependencies file for bench_fig6_tol_overhead.
# This may be replaced when dependencies are built.
