file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_tol_overhead.dir/bench/bench_fig6_tol_overhead.cc.o"
  "CMakeFiles/bench_fig6_tol_overhead.dir/bench/bench_fig6_tol_overhead.cc.o.d"
  "bench_fig6_tol_overhead"
  "bench_fig6_tol_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_tol_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
