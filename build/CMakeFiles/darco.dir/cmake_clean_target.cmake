file(REMOVE_RECURSE
  "libdarco.a"
)
