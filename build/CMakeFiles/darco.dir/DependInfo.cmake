
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/config.cc" "CMakeFiles/darco.dir/src/common/config.cc.o" "gcc" "CMakeFiles/darco.dir/src/common/config.cc.o.d"
  "/root/repo/src/common/stats.cc" "CMakeFiles/darco.dir/src/common/stats.cc.o" "gcc" "CMakeFiles/darco.dir/src/common/stats.cc.o.d"
  "/root/repo/src/guest/asm.cc" "CMakeFiles/darco.dir/src/guest/asm.cc.o" "gcc" "CMakeFiles/darco.dir/src/guest/asm.cc.o.d"
  "/root/repo/src/guest/codec.cc" "CMakeFiles/darco.dir/src/guest/codec.cc.o" "gcc" "CMakeFiles/darco.dir/src/guest/codec.cc.o.d"
  "/root/repo/src/guest/disasm.cc" "CMakeFiles/darco.dir/src/guest/disasm.cc.o" "gcc" "CMakeFiles/darco.dir/src/guest/disasm.cc.o.d"
  "/root/repo/src/guest/gisa.cc" "CMakeFiles/darco.dir/src/guest/gisa.cc.o" "gcc" "CMakeFiles/darco.dir/src/guest/gisa.cc.o.d"
  "/root/repo/src/guest/memory.cc" "CMakeFiles/darco.dir/src/guest/memory.cc.o" "gcc" "CMakeFiles/darco.dir/src/guest/memory.cc.o.d"
  "/root/repo/src/guest/program.cc" "CMakeFiles/darco.dir/src/guest/program.cc.o" "gcc" "CMakeFiles/darco.dir/src/guest/program.cc.o.d"
  "/root/repo/src/guest/semantics.cc" "CMakeFiles/darco.dir/src/guest/semantics.cc.o" "gcc" "CMakeFiles/darco.dir/src/guest/semantics.cc.o.d"
  "/root/repo/src/guest/state.cc" "CMakeFiles/darco.dir/src/guest/state.cc.o" "gcc" "CMakeFiles/darco.dir/src/guest/state.cc.o.d"
  "/root/repo/src/host/hemu.cc" "CMakeFiles/darco.dir/src/host/hemu.cc.o" "gcc" "CMakeFiles/darco.dir/src/host/hemu.cc.o.d"
  "/root/repo/src/host/hisa.cc" "CMakeFiles/darco.dir/src/host/hisa.cc.o" "gcc" "CMakeFiles/darco.dir/src/host/hisa.cc.o.d"
  "/root/repo/src/host/trace.cc" "CMakeFiles/darco.dir/src/host/trace.cc.o" "gcc" "CMakeFiles/darco.dir/src/host/trace.cc.o.d"
  "/root/repo/src/power/power.cc" "CMakeFiles/darco.dir/src/power/power.cc.o" "gcc" "CMakeFiles/darco.dir/src/power/power.cc.o.d"
  "/root/repo/src/sampling/warmup.cc" "CMakeFiles/darco.dir/src/sampling/warmup.cc.o" "gcc" "CMakeFiles/darco.dir/src/sampling/warmup.cc.o.d"
  "/root/repo/src/sim/controller.cc" "CMakeFiles/darco.dir/src/sim/controller.cc.o" "gcc" "CMakeFiles/darco.dir/src/sim/controller.cc.o.d"
  "/root/repo/src/sim/debug.cc" "CMakeFiles/darco.dir/src/sim/debug.cc.o" "gcc" "CMakeFiles/darco.dir/src/sim/debug.cc.o.d"
  "/root/repo/src/timing/cache.cc" "CMakeFiles/darco.dir/src/timing/cache.cc.o" "gcc" "CMakeFiles/darco.dir/src/timing/cache.cc.o.d"
  "/root/repo/src/timing/core.cc" "CMakeFiles/darco.dir/src/timing/core.cc.o" "gcc" "CMakeFiles/darco.dir/src/timing/core.cc.o.d"
  "/root/repo/src/tol/codegen.cc" "CMakeFiles/darco.dir/src/tol/codegen.cc.o" "gcc" "CMakeFiles/darco.dir/src/tol/codegen.cc.o.d"
  "/root/repo/src/tol/cost_model.cc" "CMakeFiles/darco.dir/src/tol/cost_model.cc.o" "gcc" "CMakeFiles/darco.dir/src/tol/cost_model.cc.o.d"
  "/root/repo/src/tol/ddg.cc" "CMakeFiles/darco.dir/src/tol/ddg.cc.o" "gcc" "CMakeFiles/darco.dir/src/tol/ddg.cc.o.d"
  "/root/repo/src/tol/frontend.cc" "CMakeFiles/darco.dir/src/tol/frontend.cc.o" "gcc" "CMakeFiles/darco.dir/src/tol/frontend.cc.o.d"
  "/root/repo/src/tol/ir.cc" "CMakeFiles/darco.dir/src/tol/ir.cc.o" "gcc" "CMakeFiles/darco.dir/src/tol/ir.cc.o.d"
  "/root/repo/src/tol/passes.cc" "CMakeFiles/darco.dir/src/tol/passes.cc.o" "gcc" "CMakeFiles/darco.dir/src/tol/passes.cc.o.d"
  "/root/repo/src/tol/profiler.cc" "CMakeFiles/darco.dir/src/tol/profiler.cc.o" "gcc" "CMakeFiles/darco.dir/src/tol/profiler.cc.o.d"
  "/root/repo/src/tol/regalloc.cc" "CMakeFiles/darco.dir/src/tol/regalloc.cc.o" "gcc" "CMakeFiles/darco.dir/src/tol/regalloc.cc.o.d"
  "/root/repo/src/tol/registry.cc" "CMakeFiles/darco.dir/src/tol/registry.cc.o" "gcc" "CMakeFiles/darco.dir/src/tol/registry.cc.o.d"
  "/root/repo/src/tol/tol.cc" "CMakeFiles/darco.dir/src/tol/tol.cc.o" "gcc" "CMakeFiles/darco.dir/src/tol/tol.cc.o.d"
  "/root/repo/src/workloads/suite.cc" "CMakeFiles/darco.dir/src/workloads/suite.cc.o" "gcc" "CMakeFiles/darco.dir/src/workloads/suite.cc.o.d"
  "/root/repo/src/workloads/synth.cc" "CMakeFiles/darco.dir/src/workloads/synth.cc.o" "gcc" "CMakeFiles/darco.dir/src/workloads/synth.cc.o.d"
  "/root/repo/src/xemu/os.cc" "CMakeFiles/darco.dir/src/xemu/os.cc.o" "gcc" "CMakeFiles/darco.dir/src/xemu/os.cc.o.d"
  "/root/repo/src/xemu/ref_component.cc" "CMakeFiles/darco.dir/src/xemu/ref_component.cc.o" "gcc" "CMakeFiles/darco.dir/src/xemu/ref_component.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
