# Empty dependencies file for darco.
# This may be replaced when dependencies are built.
