/**
 * @file
 * Figure 5: emulation cost — host instructions per guest instruction
 * in SBM, per benchmark and group averages.
 *
 * Paper shape: ~4.0 (SPECINT, branch-dominated small blocks),
 * ~2.6 (SPECFP, large regular blocks), ~3.1 (Physicsbench, inflated
 * by software-expanded trigonometric instructions).
 */

#include "harness.hh"

using namespace darco;
using namespace darco::bench;

int
main()
{
    auto suite = workloads::paperSuite(benchScale());
    std::printf("=== Figure 5: host instructions per guest "
                "instruction in SBM ===\n");
    std::printf("%-16s %5s %10s %10s\n", "benchmark", "grp",
                "SBM cost", "BBM cost");

    GroupAvg avg[3];
    for (const auto &b : suite) {
        RunMetrics m = runBenchmark(b);
        std::printf("%-16s %5s %10.2f %10.2f\n", m.name.c_str(),
                    shortGroup(m.group), m.emuCostSbm, m.emuCostBbm);
        avg[int(m.group)].add({m.emuCostSbm});
    }

    std::printf("---- averages (measured vs paper) ----\n");
    const char *names[3] = {"SPECINT2006", "SPECFP2006", "Physicsbench"};
    const double paper[3] = {4.0, 2.6, 3.1};
    for (int g = 0; g < 3; ++g) {
        std::printf("%-16s       %10.2f   paper=%.1f\n", names[g],
                    avg[g].avg(0), paper[g]);
    }
    return 0;
}
