/**
 * @file
 * Section VI-A: DARCO speed — instructions emulated/simulated per
 * second for guest and host ISAs, plus the wall-clock win from moving
 * translation onto background worker threads (tol.async.threads).
 *
 * Paper reference (authors' cluster): guest 3.4 MIPS emulated /
 * 0.37 MIPS with the timing simulator; host 20 MIPS / 2 MIPS.
 * Absolute numbers depend on the machine; the shapes to check are
 * emulation >> timing-enabled simulation, host-ISA rates above
 * guest-ISA rates, and async fullopt at least matching sync fullopt
 * (the async cells run the same simulation — only translation moves
 * off the simulator's critical path). Worker counts above the host's
 * hardware concurrency oversubscribe and only add scheduling cost, so
 * judge async scaling by the cells with threads <= hw threads.
 *
 * Emits BENCH_speed.json in the working directory.
 */

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "harness.hh"
#include "power/power.hh"
#include "timing/core.hh"
#include "xemu/ref_component.hh"

using namespace darco;

namespace
{

guest::Program
speedWorkload()
{
    // A large static footprint keeps the translator busy throughout
    // the run (the paper's Physicsbench point: low dynamic-to-static
    // ratios cannot amortize translation), which is exactly the
    // regime where background translation pays off.
    workloads::WorkloadParams p;
    p.seed = 77;
    p.name = "speed";
    p.numBlocks = 200;
    p.outerIters = u32(140 * bench::benchScale());
    if (p.outerIters == 0)
        p.outerIters = 1;
    p.fpFrac = 0.25;
    return workloads::synthesize(p);
}

struct Cell
{
    std::string name;
    std::string label;
    u64 insts = 0;    //!< instructions processed across reps
    double secs = 0;  //!< total wall-clock across reps
    int reps = 0;

    double mips() const { return secs > 0 ? insts / secs / 1e6 : 0; }
};

/** Repeat fn until ~min_secs of wall clock has been spent. */
template <typename Fn>
Cell
measure(const std::string &name, const std::string &label, Fn fn,
        double min_secs = 1.0)
{
    Cell c;
    c.name = name;
    c.label = label;
    using clock = std::chrono::steady_clock;
    while (c.secs < min_secs) {
        auto t0 = clock::now();
        c.insts += fn();
        c.secs +=
            std::chrono::duration<double>(clock::now() - t0).count();
        ++c.reps;
    }
    return c;
}

u64
runDarco(const guest::Program &prog, const Config &extra, bool timing)
{
    Config cfg = extra;
    sim::Controller ctl(cfg);
    StatGroup tstats("timing");
    std::unique_ptr<timing::InOrderCore> core;
    ctl.load(prog);
    if (timing) {
        core = std::make_unique<timing::InOrderCore>(cfg, tstats);
        ctl.tol().setTraceSink(core.get());
    }
    ctl.run();
    if (timing) {
        power::PowerModel pm(cfg);
        volatile double e = pm.analyze(tstats).totalEnergyJ;
        (void)e;
        return core->instructions();
    }
    return ctl.tol().completedInsts();
}

} // namespace

int
main()
{
    guest::Program prog = speedWorkload();

    Config async2;
    async2.parseLine("tol.async.threads=2");
    async2.parseLine("tol.async.vthreads=2");
    Config async4;
    async4.parseLine("tol.async.threads=4");
    async4.parseLine("tol.async.vthreads=2");

    std::vector<Cell> cells;
    cells.push_back(measure("guest_emulation", "guest insts/s", [&] {
        xemu::RefComponent ref;
        ref.load(prog);
        ref.runToCompletion();
        return ref.instCount();
    }));
    cells.push_back(measure("darco_fullopt_sync", "guest insts/s", [&] {
        return runDarco(prog, Config(), false);
    }));
    cells.push_back(
        measure("darco_fullopt_async2", "guest insts/s",
                [&] { return runDarco(prog, async2, false); }));
    cells.push_back(
        measure("darco_fullopt_async4", "guest insts/s",
                [&] { return runDarco(prog, async4, false); }));
    cells.push_back(
        measure("darco_timing_sync", "guest insts/s (timing+power on)",
                [&] { return runDarco(prog, Config(), true); }));
    cells.push_back(
        measure("darco_timing_async2",
                "guest insts/s (timing+power on)",
                [&] { return runDarco(prog, async2, true); }));
    cells.push_back(measure("host_emulation", "host insts/s", [&] {
        sim::Controller ctl((Config()));
        ctl.load(prog);
        ctl.run();
        return ctl.tol().hostEmu().instsExecuted();
    }));

    std::printf("%-22s %10s %6s  %s\n", "cell", "MIPS", "reps",
                "label");
    for (const Cell &c : cells)
        std::printf("%-22s %10.3f %6d  %s\n", c.name.c_str(), c.mips(),
                    c.reps, c.label.c_str());

    double sync_mips = 0, async2_mips = 0, async4_mips = 0;
    for (const Cell &c : cells) {
        if (c.name == "darco_fullopt_sync")
            sync_mips = c.mips();
        if (c.name == "darco_fullopt_async2")
            async2_mips = c.mips();
        if (c.name == "darco_fullopt_async4")
            async4_mips = c.mips();
    }
    std::printf("\nasync2/sync fullopt sim-rate: %.3fx\n",
                sync_mips > 0 ? async2_mips / sync_mips : 0.0);
    std::printf("async4/sync fullopt sim-rate: %.3fx\n",
                sync_mips > 0 ? async4_mips / sync_mips : 0.0);

    FILE *f = std::fopen("BENCH_speed.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot write BENCH_speed.json\n");
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"speed\",\n  \"cells\": [\n");
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Cell &c = cells[i];
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"mips\": %.4f, "
                     "\"insts\": %llu, \"secs\": %.4f, \"reps\": %d, "
                     "\"label\": \"%s\"}%s\n",
                     c.name.c_str(), c.mips(),
                     (unsigned long long)c.insts, c.secs, c.reps,
                     c.label.c_str(),
                     i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"async2_over_sync\": %.4f,\n"
                 "  \"async4_over_sync\": %.4f\n}\n",
                 sync_mips > 0 ? async2_mips / sync_mips : 0.0,
                 sync_mips > 0 ? async4_mips / sync_mips : 0.0);
    std::fclose(f);
    std::printf("wrote BENCH_speed.json\n");
    return 0;
}
