/**
 * @file
 * Section VI-A: DARCO speed — instructions emulated/simulated per
 * second for guest and host ISAs (google-benchmark harness).
 *
 * Paper reference (authors' cluster): guest 3.4 MIPS emulated /
 * 0.37 MIPS with the timing simulator; host 20 MIPS / 2 MIPS.
 * Absolute numbers depend on the machine; the shape to check is
 * emulation >> timing-enabled simulation, and host-ISA rates above
 * guest-ISA rates.
 */

#include <benchmark/benchmark.h>

#include "harness.hh"
#include "power/power.hh"
#include "timing/core.hh"
#include "xemu/ref_component.hh"

using namespace darco;

namespace
{

guest::Program
speedWorkload()
{
    workloads::WorkloadParams p;
    p.seed = 77;
    p.name = "speed";
    p.numBlocks = 48;
    p.outerIters = 600;
    p.fpFrac = 0.25;
    return workloads::synthesize(p);
}

/** Guest-ISA functional emulation rate (reference component). */
void
BM_GuestEmulation(benchmark::State &state)
{
    guest::Program p = speedWorkload();
    u64 insts = 0;
    for (auto _ : state) {
        xemu::RefComponent ref;
        ref.load(p);
        ref.runToCompletion();
        insts += ref.instCount();
    }
    state.SetItemsProcessed(s64(insts));
    state.SetLabel("guest insts/s");
}

/** Guest rate through the full co-designed flow (all components). */
void
BM_DarcoFullFlow(benchmark::State &state)
{
    guest::Program p = speedWorkload();
    u64 insts = 0;
    for (auto _ : state) {
        sim::Controller ctl((Config()));
        ctl.load(p);
        ctl.run();
        insts += ctl.tol().completedInsts();
    }
    state.SetItemsProcessed(s64(insts));
    state.SetLabel("guest insts/s");
}

/** Guest rate with the timing (and power) simulator enabled. */
void
BM_DarcoWithTiming(benchmark::State &state)
{
    guest::Program p = speedWorkload();
    u64 insts = 0;
    for (auto _ : state) {
        Config cfg;
        sim::Controller ctl(cfg);
        StatGroup tstats("timing");
        timing::InOrderCore core(cfg, tstats);
        ctl.load(p);
        ctl.tol().setTraceSink(&core);
        ctl.run();
        power::PowerModel pm(cfg);
        benchmark::DoNotOptimize(pm.analyze(tstats).totalEnergyJ);
        insts += ctl.tol().completedInsts();
    }
    state.SetItemsProcessed(s64(insts));
    state.SetLabel("guest insts/s (timing+power on)");
}

/** Host-ISA rate: host instructions executed per second. */
void
BM_HostEmulation(benchmark::State &state)
{
    guest::Program p = speedWorkload();
    u64 host_insts = 0;
    for (auto _ : state) {
        sim::Controller ctl((Config()));
        ctl.load(p);
        ctl.run();
        host_insts += ctl.tol().hostEmu().instsExecuted();
    }
    state.SetItemsProcessed(s64(host_insts));
    state.SetLabel("host insts/s");
}

/** Host rate with timing enabled. */
void
BM_HostWithTiming(benchmark::State &state)
{
    guest::Program p = speedWorkload();
    u64 host_insts = 0;
    for (auto _ : state) {
        Config cfg;
        sim::Controller ctl(cfg);
        StatGroup tstats("timing");
        timing::InOrderCore core(cfg, tstats);
        ctl.load(p);
        ctl.tol().setTraceSink(&core);
        ctl.run();
        host_insts += core.instructions();
    }
    state.SetItemsProcessed(s64(host_insts));
    state.SetLabel("host insts/s (timing on)");
}

} // namespace

BENCHMARK(BM_GuestEmulation)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DarcoFullFlow)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DarcoWithTiming)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HostEmulation)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HostWithTiming)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
