/**
 * @file
 * Figure 7: TOL overhead decomposed into the paper's seven
 * categories: interpreter, BB translator, SB translator, prologue,
 * chaining, code-cache lookup, others.
 *
 * Paper shape: interpretation + BB translation dominate Physicsbench
 * (low dynamic-to-static ratio), while the SB translator share stays
 * comparatively small everywhere.
 */

#include "harness.hh"

using namespace darco;
using namespace darco::bench;

int
main()
{
    auto suite = workloads::paperSuite(benchScale());
    std::printf("=== Figure 7: dynamic TOL overhead distribution "
                "(%% of overhead) ===\n");
    std::printf("%-16s %5s %7s %7s %7s %7s %7s %7s %7s\n", "benchmark",
                "grp", "interp", "bbxl", "sbxl", "prolog", "chain",
                "lookup", "other");

    GroupAvg avg[3];
    for (const auto &b : suite) {
        RunMetrics m = runBenchmark(b);
        std::printf(
            "%-16s %5s %7.1f %7.1f %7.1f %7.1f %7.1f %7.1f %7.1f\n",
            m.name.c_str(), shortGroup(m.group),
            100 * m.ovBreakdown[0], 100 * m.ovBreakdown[1],
            100 * m.ovBreakdown[2], 100 * m.ovBreakdown[3],
            100 * m.ovBreakdown[4], 100 * m.ovBreakdown[5],
            100 * m.ovBreakdown[6]);
        avg[int(m.group)].add(
            {m.ovBreakdown[0], m.ovBreakdown[1], m.ovBreakdown[2],
             m.ovBreakdown[3], m.ovBreakdown[4], m.ovBreakdown[5],
             m.ovBreakdown[6]});
    }

    std::printf("---- group averages ----\n");
    const char *names[3] = {"SPECINT2006", "SPECFP2006", "Physicsbench"};
    for (int g = 0; g < 3; ++g) {
        std::printf(
            "%-16s       %7.1f %7.1f %7.1f %7.1f %7.1f %7.1f %7.1f\n",
            names[g], 100 * avg[g].avg(0), 100 * avg[g].avg(1),
            100 * avg[g].avg(2), 100 * avg[g].avg(3),
            100 * avg[g].avg(4), 100 * avg[g].avg(5),
            100 * avg[g].avg(6));
    }
    std::printf("(paper: interpreter + BB-translator dominate "
                "Physicsbench; SB translator small everywhere)\n");
    return 0;
}
