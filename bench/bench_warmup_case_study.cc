/**
 * @file
 * Section VI-E case study: the warm-up simulation methodology.
 *
 * Reproduces the experiment structure: a (scaling factor x warm-up
 * length) grid evaluated against the authoritative execution, the
 * offline heuristic's pick, and the resulting simulation-cost
 * reduction at that accuracy. Paper result: 65x average cost
 * reduction at 0.75% error on full-length workloads; at bench scale
 * the shape to check is a large speedup at small error, with the
 * mismatched configurations visibly worse.
 */

#include <cstdio>

#include "harness.hh"
#include "sampling/warmup.hh"

using namespace darco;
using namespace darco::sampling;

int
main()
{
    workloads::WorkloadParams p;
    p.seed = 31;
    p.name = "warmup";
    p.numBlocks = 64;
    p.outerIters = u32(3000 * bench::benchScale());
    p.fpFrac = 0.2;
    guest::Program prog = workloads::synthesize(p);

    Config cfg({"tol.bb_threshold=32", "tol.sb_threshold=512",
                "tol.min_edge_total=16"});
    SampleSpec spec{u64(550'000 * bench::benchScale()), 50'000};

    std::printf("=== Case study: TOL warm-up methodology (VI-E) ===\n");
    std::printf("sample: skip=%llu length=%llu\n",
                (unsigned long long)spec.skip,
                (unsigned long long)spec.length);

    SampleMetrics auth = runAuthoritative(prog, cfg, spec, true);
    std::printf(
        "authoritative: IM/BBM/SBM = %.1f/%.1f/%.1f%%  IPC=%.3f  "
        "cost=%llu insts\n",
        100 * auth.imFrac, 100 * auth.bbmFrac, 100 * auth.sbmFrac,
        auth.ipc, (unsigned long long)auth.detailedInsts);

    std::printf("%10s %6s %8s %8s %8s %9s %8s %9s\n", "warmup",
                "scale", "IM%", "BBM%", "SBM%", "mode-err", "IPC",
                "speedup");
    std::vector<WarmupCandidate> cands = {
        {2'000, 1}, {20'000, 1},  {100'000, 1}, {2'000, 8},
        {20'000, 8}, {100'000, 8}, {20'000, 16}, {50'000, 4},
    };
    for (const auto &c : cands) {
        SampleMetrics m =
            runSample(prog, cfg, spec, c.warmupLen, c.scale, true);
        double speedup =
            double(auth.detailedInsts) / double(m.detailedInsts);
        std::printf(
            "%10llu %6u %8.1f %8.1f %8.1f %9.3f %8.3f %8.1fx\n",
            (unsigned long long)c.warmupLen, c.scale, 100 * m.imFrac,
            100 * m.bbmFrac, 100 * m.sbmFrac, modeError(m, auth),
            m.ipc, speedup);
    }

    HeuristicResult r = pickWarmup(prog, cfg, spec, cands);
    SampleMetrics best =
        runSample(prog, cfg, spec, r.best.warmupLen, r.best.scale, true);
    double speedup =
        double(auth.detailedInsts) / double(best.detailedInsts);
    double ipc_err =
        auth.ipc > 0 ? 100.0 * std::abs(best.ipc - auth.ipc) / auth.ipc
                     : 0.0;
    std::printf("---- heuristic pick: warmup=%llu scale=%u ----\n",
                (unsigned long long)r.best.warmupLen, r.best.scale);
    std::printf("simulation-cost reduction: %.1fx   mode error: %.3f  "
                "IPC error: %.2f%%\n",
                speedup, r.bestError, ipc_err);
    std::printf("(paper: 65x average reduction at 0.75%% error on "
                "full-length workloads)\n");
    return 0;
}
