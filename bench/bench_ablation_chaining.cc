/**
 * @file
 * Ablation: overhead-reduction techniques (paper Section V-D
 * "Minimum TOL overhead", ref [17]): translation chaining and the
 * IBTC. Disabling either forces control back through the TOL
 * dispatch loop, inflating prologue/lookup overhead.
 */

#include "harness.hh"

using namespace darco;
using namespace darco::bench;

namespace
{

void
row(const char *label, const workloads::Benchmark &b,
    std::vector<std::string> extra)
{
    RunMetrics m = runBenchmark(b, Config(std::move(extra)));
    std::printf("%-24s %10.1f %10.1f %10.1f %10.1f %10llu\n", label,
                100 * m.overheadFrac, 100 * m.ovBreakdown[3],
                100 * m.ovBreakdown[4], 100 * m.ovBreakdown[5],
                (unsigned long long)m.chains);
}

} // namespace

int
main()
{
    auto suite = workloads::paperSuite(benchScale());
    // omnetpp: indirect-heavy (virtual-dispatch-like) workload.
    const workloads::Benchmark *b =
        workloads::findBenchmark(suite, "471.omnetpp");

    std::printf("=== Ablation: chaining + IBTC (%s) ===\n",
                b->params.name.c_str());
    std::printf("%-24s %10s %10s %10s %10s %10s\n", "config",
                "overhead%", "prolog%", "chain%", "lookup%", "chains");
    row("baseline", *b, {});
    row("no chaining", *b, {"tol.chaining=false"});
    row("tiny IBTC (8 entries)", *b, {"hemu.ibtc_entries=8"});
    row("big IBTC (4096)", *b, {"hemu.ibtc_entries=4096"});
    row("no chaining+tiny IBTC", *b,
        {"tol.chaining=false", "hemu.ibtc_entries=8"});
    std::printf("(without chaining every region exit pays dispatch + "
                "lookup + prologue)\n");
    return 0;
}
