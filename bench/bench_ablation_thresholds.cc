/**
 * @file
 * Ablation: promotion thresholds — the paper's "startup delay"
 * challenge (Section III). Sweeps the IM->BBM and BBM->SBM
 * thresholds and reports startup delay (guest instructions until the
 * first superblock exists), overhead share, and SBM coverage.
 *
 * Expected shape: low thresholds promote early (good startup, more
 * translator overhead and possibly wasted translations of cold
 * code); high thresholds interpret longer (Crusoe's failure mode).
 */

#include "harness.hh"

using namespace darco;
using namespace darco::bench;

namespace
{

struct StartupMetrics
{
    u64 firstSbAt = 0; //!< guest insts when the first SB was built
    double imFrac = 0, sbmFrac = 0, overheadFrac = 0;
    u64 translations = 0;
};

StartupMetrics
runWith(const workloads::Benchmark &b, u32 bb_thr, u32 sb_thr)
{
    Config cfg;
    cfg.set("tol.bb_threshold", s64(bb_thr));
    cfg.set("tol.sb_threshold", s64(sb_thr));
    cfg.set("seed", s64(b.params.seed));
    sim::Controller ctl(cfg);
    ctl.load(workloads::synthesize(b.params));

    StartupMetrics m;
    // Step in slices to find the first-superblock point.
    while (!ctl.finished()) {
        ctl.step(2'000);
        if (m.firstSbAt == 0 &&
            ctl.stats().value("tol.translations_sb") > 0) {
            m.firstSbAt = ctl.tol().completedInsts();
        }
    }
    StatGroup &s = ctl.stats();
    double im = double(s.value("tol.guest_im"));
    double bbm = double(s.value("tol.guest_bbm"));
    double sbm = double(s.value("tol.guest_sbm"));
    double tot = std::max(1.0, im + bbm + sbm);
    m.imFrac = im / tot;
    m.sbmFrac = sbm / tot;
    u64 app = s.value("tol.host_app_bbm") + s.value("tol.host_app_sbm");
    u64 ov = ctl.tol().costModel().totalAll();
    m.overheadFrac = double(ov) / std::max<u64>(1, app + ov);
    m.translations =
        s.value("tol.translations_bb") + s.value("tol.translations_sb");
    return m;
}

} // namespace

int
main()
{
    auto suite = workloads::paperSuite(benchScale());
    const workloads::Benchmark *b =
        workloads::findBenchmark(suite, "401.bzip2");

    std::printf("=== Ablation: promotion thresholds (startup-delay "
                "challenge, Section III) ===\n");
    std::printf("workload: %s\n", b->params.name.c_str());
    std::printf("%8s %8s %12s %8s %8s %10s %8s\n", "bb_thr", "sb_thr",
                "1st SB at", "IM%", "SBM%", "overhead%", "xlations");

    struct Pair
    {
        u32 bb, sb;
    } sweeps[] = {
        {2, 8},   {5, 25},   {10, 50},
        {25, 200}, {50, 500}, {200, 2000},
    };
    for (const Pair &p : sweeps) {
        StartupMetrics m = runWith(*b, p.bb, p.sb);
        std::printf("%8u %8u %12llu %8.1f %8.1f %10.1f %8llu\n", p.bb,
                    p.sb, (unsigned long long)m.firstSbAt,
                    100 * m.imFrac, 100 * m.sbmFrac,
                    100 * m.overheadFrac,
                    (unsigned long long)m.translations);
    }
    std::printf("(low thresholds: early promotion, higher translator "
                "overhead; high thresholds: Crusoe-style startup "
                "delay in IM)\n");
    return 0;
}
