/**
 * @file
 * Figure 6: composition of the host dynamic instruction stream —
 * TOL overhead vs application instructions.
 *
 * Paper shape: ~16% (SPECINT) and ~13% (SPECFP) of the host stream is
 * TOL overhead; Physicsbench rises to ~41% because its low
 * dynamic-to-static instruction ratio cannot amortize translation.
 */

#include "harness.hh"

using namespace darco;
using namespace darco::bench;

int
main()
{
    auto suite = workloads::paperSuite(benchScale());
    std::printf("=== Figure 6: host dynamic instruction stream: "
                "TOL overhead vs application ===\n");
    std::printf("%-16s %5s %10s %14s %14s\n", "benchmark", "grp",
                "TOL%", "app insts", "overhead");

    GroupAvg avg[3];
    for (const auto &b : suite) {
        RunMetrics m = runBenchmark(b);
        std::printf("%-16s %5s %10.1f %14llu %14llu\n", m.name.c_str(),
                    shortGroup(m.group), 100 * m.overheadFrac,
                    (unsigned long long)m.hostApp,
                    (unsigned long long)m.hostOverhead);
        avg[int(m.group)].add({m.overheadFrac});
    }

    std::printf("---- averages (measured vs paper) ----\n");
    const char *names[3] = {"SPECINT2006", "SPECFP2006", "Physicsbench"};
    const double paper[3] = {16, 13, 41};
    for (int g = 0; g < 3; ++g) {
        std::printf("%-16s       %10.1f   paper=%.0f%%\n", names[g],
                    100 * avg[g].avg(0), paper[g]);
    }
    return 0;
}
