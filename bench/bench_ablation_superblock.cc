/**
 * @file
 * Ablation: superblock design choices (paper Sections III / V-B3) —
 * asserts vs multiple exits, loop unrolling, superblock size caps,
 * and memory speculation. Reports SBM emulation cost, speculation
 * failures and rollbacks.
 */

#include "harness.hh"

using namespace darco;
using namespace darco::bench;

namespace
{

void
row(const char *label, const workloads::Benchmark &b,
    std::vector<std::string> extra)
{
    RunMetrics m = runBenchmark(b, Config(std::move(extra)));
    std::printf("%-28s %8.2f %8.1f %10llu %10llu %8llu\n", label,
                m.emuCostSbm, 100 * m.sbmFrac,
                (unsigned long long)m.assertFails,
                (unsigned long long)m.rollbacks,
                (unsigned long long)m.translationsSb);
}

} // namespace

int
main()
{
    auto suite = workloads::paperSuite(benchScale());
    const workloads::Benchmark *b =
        workloads::findBenchmark(suite, "445.gobmk");

    std::printf("=== Ablation: superblock design choices (%s) ===\n",
                b->params.name.c_str());
    std::printf("%-28s %8s %8s %10s %10s %8s\n", "config", "SBcost",
                "SBM%", "assertF", "rollbacks", "SBs");

    row("baseline (asserts)", *b, {});
    row("multi-exit (no asserts)", *b, {"tol.asserts=false"});
    row("no loop unrolling", *b, {"tol.unroll=false"});
    row("unroll factor 8", *b, {"tol.unroll_factor=8"});
    row("no memory speculation", *b, {"tol.spec_mem=false"});
    row("max 4 BBs per SB", *b, {"tol.max_sb_bbs=4"});
    row("max 2 BBs per SB", *b, {"tol.max_sb_bbs=2"});
    row("max 50 insts per SB", *b, {"tol.max_sb_insts=50"});
    row("bias threshold 0.95", *b, {"tol.bias_threshold=0.95"});
    row("bias threshold 0.70", *b, {"tol.bias_threshold=0.70"});
    std::printf("(asserts buy single-entry/single-exit freedom at the "
                "price of rollbacks on bias misses)\n");
    return 0;
}
