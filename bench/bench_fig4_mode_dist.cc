/**
 * @file
 * Figure 4: dynamic guest-instruction distribution across the three
 * TOL execution modes (IM / BBM / SBM) for every suite benchmark,
 * plus group averages.
 *
 * Paper shape: ~88% (SPECINT), ~96% (SPECFP), ~75% (Physicsbench) of
 * the dynamic stream executes at the highest optimization level
 * (superblocks); continuous/periodic/ragdoll stay largely in BBM due
 * to their low dynamic-to-static instruction ratio.
 */

#include "harness.hh"

using namespace darco;
using namespace darco::bench;

int
main()
{
    auto suite = workloads::paperSuite(benchScale());
    std::printf("=== Figure 4: dynamic x86 instruction distribution "
                "in IM / BBM / SBM ===\n");
    std::printf("%-16s %5s %8s %8s %8s %12s\n", "benchmark", "grp",
                "IM%", "BBM%", "SBM%", "guest insts");

    GroupAvg avg[3];
    for (const auto &b : suite) {
        RunMetrics m = runBenchmark(b);
        std::printf("%-16s %5s %8.1f %8.1f %8.1f %12llu\n",
                    m.name.c_str(), shortGroup(m.group),
                    100 * m.imFrac, 100 * m.bbmFrac, 100 * m.sbmFrac,
                    (unsigned long long)m.guestInsts);
        avg[int(m.group)].add({m.imFrac, m.bbmFrac, m.sbmFrac});
    }

    std::printf("---- averages (measured vs paper) ----\n");
    const char *names[3] = {"SPECINT2006", "SPECFP2006", "Physicsbench"};
    const double paper_sbm[3] = {88, 96, 75};
    for (int g = 0; g < 3; ++g) {
        std::printf("%-16s %5s %8.1f %8.1f %8.1f   paper SBM%%=%.0f\n",
                    names[g], "", 100 * avg[g].avg(0),
                    100 * avg[g].avg(1), 100 * avg[g].avg(2),
                    paper_sbm[g]);
    }
    return 0;
}
