/**
 * @file
 * Ablation: "wide in-order or narrow out-of-order cores" challenge
 * (paper Section III). Sweeps the in-order core's issue width and
 * cache sizes on dynamically-optimized code, reporting IPC, power,
 * energy-per-instruction and performance/watt — the trade-off the
 * infrastructure is built to explore. (An OoO back end is not
 * modeled; the sweep explores the wide-in-order half of the paper's
 * question, which is the design point co-designed processors take.)
 */

#include "harness.hh"
#include "power/power.hh"
#include "timing/core.hh"

using namespace darco;
using namespace darco::bench;

namespace
{

void
row(const char *label, const workloads::Benchmark &b,
    std::vector<std::string> extra)
{
    Config cfg(std::move(extra));
    cfg.set("seed", s64(b.params.seed));
    sim::Controller ctl(cfg);
    StatGroup tstats("timing");
    timing::InOrderCore core(cfg, tstats);
    ctl.load(workloads::synthesize(b.params));
    ctl.tol().setTraceSink(&core);
    ctl.run();

    power::PowerModel pm(cfg);
    auto rep = pm.analyze(tstats);
    double perf = core.cycles() ? 1.0 / double(core.cycles()) : 0;
    double perf_per_watt =
        rep.avgPowerW > 0 ? perf / rep.avgPowerW * 1e9 : 0;
    std::printf("%-26s %8.3f %10llu %9.3f %8.2f %12.2f\n", label,
                core.ipc(), (unsigned long long)core.cycles(),
                rep.avgPowerW, rep.epiNj, perf_per_watt);
}

} // namespace

int
main()
{
    double scale = benchScale() * 0.25; // timing runs are slower
    auto suite = workloads::paperSuite(scale);
    const workloads::Benchmark *b =
        workloads::findBenchmark(suite, "464.h264ref");

    std::printf("=== Timing/power sweep: wide in-order exploration "
                "(%s) ===\n", b->params.name.c_str());
    std::printf("%-26s %8s %10s %9s %8s %12s\n", "config", "IPC",
                "cycles", "power W", "EPI nJ", "perf/W (au)");
    row("1-wide in-order", *b,
        {"core.issue_width=1", "core.fetch_width=2"});
    row("2-wide (baseline)", *b, {});
    row("4-wide in-order", *b,
        {"core.issue_width=4", "core.fetch_width=8", "core.num_alu=4",
         "core.num_fp=2", "core.num_mem_ports=2"});
    row("6-wide in-order", *b,
        {"core.issue_width=6", "core.fetch_width=12", "core.num_alu=6",
         "core.num_fp=3", "core.num_mem_ports=2"});
    row("2-wide, tiny caches", *b,
        {"l1i.size=8192", "l1d.size=8192", "l2.size=65536"});
    row("2-wide, big caches", *b,
        {"l1i.size=65536", "l1d.size=65536", "l2.size=1048576"});
    row("2-wide, no prefetch", *b, {"prefetch.enable=false"});
    std::printf("(wider cores buy IPC at superlinear power; the "
                "co-designed bet is that TOL scheduling makes a "
                "modest-width in-order core sufficient)\n");
    return 0;
}
