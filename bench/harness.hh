/**
 * @file
 * Shared harness for the figure-reproduction benches: runs suite
 * workloads through the full DARCO system (controller + both
 * components) and extracts the metrics the paper's figures report.
 *
 * Every bench accepts the environment variable DARCO_BENCH_SCALE
 * (default 1.0) to scale workload dynamic length.
 */

#ifndef DARCO_BENCH_HARNESS_HH
#define DARCO_BENCH_HARNESS_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/controller.hh"
#include "tol/cost_model.hh"
#include "workloads/suite.hh"

namespace darco::bench
{

/** Metrics of one full-system run. */
struct RunMetrics
{
    std::string name;
    workloads::SuiteGroup group;

    u64 guestInsts = 0;
    double imFrac = 0, bbmFrac = 0, sbmFrac = 0;
    double emuCostSbm = 0;   //!< host insts per guest inst in SBM
    double emuCostBbm = 0;
    u64 hostApp = 0;         //!< application host instructions
    u64 hostOverhead = 0;    //!< critical-path TOL overhead host insts
    u64 hostOverheadConc = 0; //!< overhead moved to concurrent translators
    double overheadFrac = 0; //!< critical overhead share of the host stream
    /** Fraction of critical overhead per category (paper Fig. 7 order). */
    double ovBreakdown[tol::numCriticalOverheads] = {};
    u64 translationsBb = 0, translationsSb = 0;
    u64 assertFails = 0, rollbacks = 0, chains = 0;
    /** Code-cache capacity-policy activity (cc.policy). */
    u64 ccEvictions = 0, ccFlushes = 0, ccBytesReclaimed = 0;
};

inline double
benchScale()
{
    const char *s = std::getenv("DARCO_BENCH_SCALE");
    return s ? std::atof(s) : 1.0;
}

/** Run one benchmark through the full system. */
inline RunMetrics
runBenchmark(const workloads::Benchmark &b, const Config &extra = Config())
{
    Config cfg = extra;
    cfg.set("seed", s64(b.params.seed));
    sim::Controller ctl(cfg);
    ctl.load(workloads::synthesize(b.params));
    ctl.run();

    RunMetrics m;
    m.name = b.params.name;
    m.group = b.group;
    StatGroup &s = ctl.stats();
    tol::Tol &t = ctl.tol();

    double im = double(s.value("tol.guest_im"));
    double bbm = double(s.value("tol.guest_bbm"));
    double sbm = double(s.value("tol.guest_sbm"));
    double total = std::max(1.0, im + bbm + sbm);
    m.guestInsts = t.completedInsts();
    m.imFrac = im / total;
    m.bbmFrac = bbm / total;
    m.sbmFrac = sbm / total;
    m.emuCostSbm =
        sbm > 0 ? double(s.value("tol.host_app_sbm")) / sbm : 0;
    m.emuCostBbm =
        bbm > 0 ? double(s.value("tol.host_app_bbm")) / bbm : 0;
    m.hostApp =
        s.value("tol.host_app_bbm") + s.value("tol.host_app_sbm");
    // Overhead charged to concurrent translator threads is off the
    // guest critical path; the paper's overhead fraction counts only
    // what the guest waits for.
    m.hostOverhead = t.costModel().totalCritical();
    m.hostOverheadConc =
        t.costModel().total(tol::Overhead::ConcTranslator);
    m.overheadFrac =
        double(m.hostOverhead) /
        std::max<u64>(1, m.hostApp + m.hostOverhead);
    for (unsigned c = 0; c < tol::numCriticalOverheads; ++c) {
        m.ovBreakdown[c] =
            double(t.costModel().total(tol::Overhead(c))) /
            std::max<u64>(1, m.hostOverhead);
    }
    m.translationsBb = s.value("tol.translations_bb");
    m.translationsSb = s.value("tol.translations_sb");
    m.assertFails = s.value("tol.assert_fails");
    m.rollbacks = t.hostEmu().rollbacks();
    m.chains = s.value("tol.chains");
    m.ccEvictions = s.value("cc.evictions");
    m.ccFlushes = s.value("cc.flushes");
    m.ccBytesReclaimed = s.value("cc.bytes_reclaimed");
    return m;
}

/** Group-average helper. */
struct GroupAvg
{
    double sum[8] = {};
    int n = 0;

    void
    add(std::initializer_list<double> vals)
    {
        int i = 0;
        for (double v : vals)
            sum[i++] += v;
        ++n;
    }

    double
    avg(int i) const
    {
        return n ? sum[i] / n : 0;
    }
};

inline const char *
shortGroup(workloads::SuiteGroup g)
{
    switch (g) {
      case workloads::SuiteGroup::SpecInt: return "INT";
      case workloads::SuiteGroup::SpecFp: return "FP";
      default: return "PHY";
    }
}

} // namespace darco::bench

#endif // DARCO_BENCH_HARNESS_HH
