/**
 * @file
 * Ablation: contribution of each optimization stage to emulation
 * cost (paper Section V-D "minimum emulation cost"): forward passes
 * (fold/prop/CSE + DCE + memory optimization), list scheduling,
 * memory speculation, flag fusion — plus the fully-disabled
 * baseline.
 */

#include "harness.hh"

using namespace darco;
using namespace darco::bench;

namespace
{

void
row(const char *label, std::vector<std::string> extra,
    const std::vector<workloads::Benchmark> &suite)
{
    // Average over one benchmark per group.
    const char *names[3] = {"400.perlbench", "433.milc", "explosions"};
    double cost[3], sbm[3];
    for (int g = 0; g < 3; ++g) {
        const auto *b = workloads::findBenchmark(suite, names[g]);
        RunMetrics m = runBenchmark(*b, Config(extra));
        cost[g] = m.emuCostSbm;
        sbm[g] = m.sbmFrac;
    }
    std::printf("%-28s %8.2f %8.2f %8.2f   (SBM%% %4.0f/%4.0f/%4.0f)\n",
                label, cost[0], cost[1], cost[2], 100 * sbm[0],
                100 * sbm[1], 100 * sbm[2]);
}

} // namespace

int
main()
{
    auto suite = workloads::paperSuite(benchScale());
    std::printf("=== Ablation: optimization levels -> SBM emulation "
                "cost (INT / FP / PHY) ===\n");
    std::printf("%-28s %8s %8s %8s\n", "config", "INT", "FP", "PHY");
    row("baseline (all passes)", {}, suite);
    row("no IR optimization", {"tol.opt=false"}, suite);
    row("no scheduling", {"tol.sched=false"}, suite);
    row("no memory speculation", {"tol.spec_mem=false"}, suite);
    row("no flag fusion", {"tol.fuse_flags=false"}, suite);
    row("everything off",
        {"tol.opt=false", "tol.sched=false", "tol.spec_mem=false",
         "tol.fuse_flags=false", "tol.unroll=false"},
        suite);
    std::printf("(the gap between baseline and everything-off is the "
                "dynamic optimizer's contribution)\n");
    return 0;
}
