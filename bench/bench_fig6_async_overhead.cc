/**
 * @file
 * Figure 6 follow-on: critical-path TOL overhead vs modeled concurrent
 * translator threads.
 *
 * With the async pipeline on, BBM/SBM translation charges move from
 * the guest critical path into the concurrent_translator category,
 * which the timing core overlaps with guest execution. The shape to
 * check: the critical overhead fraction drops monotonically as
 * translation work moves off the critical path, while the *sum*
 * critical + concurrent stays at the synchronous baseline (work is
 * moved, not deleted — small deltas come only from queue-full
 * synchronous fallbacks and dropped stale jobs).
 */

#include "harness.hh"

using namespace darco;
using namespace darco::bench;

int
main()
{
    auto suite = workloads::paperSuite(benchScale());
    const unsigned vthreads[] = {0, 1, 2, 4}; // 0 = sync baseline

    std::printf("=== Figure 6 (async): critical TOL overhead vs "
                "concurrent translator threads ===\n");
    std::printf("%-16s %5s", "benchmark", "grp");
    for (unsigned v : vthreads)
        std::printf("  %7s%u", v == 0 ? "sync" : "vthr", v);
    std::printf("\n");

    GroupAvg avg[3];
    for (const auto &b : suite) {
        std::printf("%-16s %5s", b.params.name.c_str(),
                    shortGroup(b.group));
        double fracs[4] = {};
        int i = 0;
        for (unsigned v : vthreads) {
            Config cfg;
            if (v != 0) {
                cfg.set("tol.async.threads", s64(2));
                cfg.set("tol.async.vthreads", s64(v));
            }
            RunMetrics m = runBenchmark(b, cfg);
            std::printf("  %7.2f%%", 100 * m.overheadFrac);
            fracs[i++] = m.overheadFrac;
        }
        std::printf("\n");
        avg[int(b.group)].add({fracs[0], fracs[1], fracs[2], fracs[3]});
    }

    std::printf("---- averages ----\n");
    const char *names[3] = {"SPECINT2006", "SPECFP2006",
                            "Physicsbench"};
    for (int g = 0; g < 3; ++g) {
        std::printf("%-16s      ", names[g]);
        for (int i = 0; i < 4; ++i)
            std::printf("  %7.2f%%", 100 * avg[g].avg(i));
        std::printf("\n");
    }

    std::printf("---- shape check ----\n");
    std::printf("critical overhead%% must not grow as vthreads "
                "increase; translation charges reappear under "
                "concurrent_translator and overlap with guest "
                "execution in the timing core.\n");
    return 0;
}
