/**
 * @file
 * Minimal TCP transport for the distributed campaign service.
 *
 * The service needs exactly four things from the network: a listening
 * socket with timeout-bounded accept, a client connect with retry
 * support, reliable whole-buffer send/recv, and a way to wake a
 * thread blocked on a peer (shutdown). This wrapper provides them
 * over plain POSIX sockets — no external dependencies — and reports
 * every failure as a NetError so callers never check errno.
 *
 * Sockets are blocking; timeouts are implemented with poll(2) before
 * the blocking call (waitReadable), which is enough for the
 * request/response shape of the campaign protocol. All writes use
 * MSG_NOSIGNAL: a dead peer surfaces as a NetError, never SIGPIPE.
 */

#ifndef DARCO_NET_SOCKET_HH
#define DARCO_NET_SOCKET_HH

#include <optional>
#include <stdexcept>
#include <string>

#include "common/types.hh"

namespace darco::net
{

/** Raised on any socket-layer failure (connect, send, framing, ...). */
class NetError : public std::runtime_error
{
  public:
    explicit NetError(const std::string &what)
        : std::runtime_error("net: " + what)
    {}
};

/**
 * RAII TCP socket (move-only). A default-constructed Socket is
 * invalid; valid sockets come from Listener::accept or connectTo.
 */
class Socket
{
  public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket() { close(); }

    Socket(Socket &&other) noexcept : fd_(other.fd_)
    {
        other.fd_ = -1;
    }
    Socket &
    operator=(Socket &&other) noexcept
    {
        if (this != &other) {
            close();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }
    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    void close();

    /**
     * Half-close both directions without releasing the fd: any thread
     * blocked reading this socket (here or in the peer process) wakes
     * up with EOF. Used to interrupt connection threads on shutdown.
     */
    void shutdownBoth();

    /** Send exactly `len` bytes; throws NetError on any failure. */
    void sendAll(const void *data, std::size_t len);

    /**
     * Receive exactly `len` bytes.
     * @return false on a clean EOF *before the first byte* (the peer
     *         closed between messages); a mid-buffer EOF or any error
     *         throws NetError (truncated message).
     */
    bool recvAll(void *data, std::size_t len);

    /**
     * Wait until the socket is readable (data or EOF pending).
     * @param timeout_ms  negative = wait forever.
     * @return true when readable, false on timeout.
     */
    bool waitReadable(int timeout_ms);

  private:
    int fd_ = -1;
};

/**
 * Listening TCP socket bound to `bindAddr:port` (port 0 picks an
 * ephemeral port — read it back with port()). SO_REUSEADDR is set so
 * quick restarts of the coordinator do not fight TIME_WAIT.
 */
class Listener
{
  public:
    Listener(const std::string &bindAddr, u16 port);

    u16 port() const { return port_; }
    bool valid() const { return sock_.valid(); }

    /**
     * Accept one connection, waiting at most `timeout_ms`
     * (negative = forever). Empty on timeout or after close().
     */
    std::optional<Socket> accept(int timeout_ms);

    /** Stop accepting; wakes a blocked accept() with empty. */
    void close() { sock_.close(); }

  private:
    Socket sock_;
    u16 port_ = 0;
};

/**
 * Connect to `host:port`, waiting at most `timeout_ms` for the
 * connection to establish. Throws NetError on failure.
 */
Socket connectTo(const std::string &host, u16 port, int timeout_ms);

} // namespace darco::net

#endif // DARCO_NET_SOCKET_HH
