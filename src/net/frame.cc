#include "net/frame.hh"

namespace darco::net
{

void
sendFrame(Socket &sock, const std::string &payload)
{
    if (payload.size() > maxFrameBytes)
        throw NetError("frame too large (" +
                       std::to_string(payload.size()) + " bytes)");
    u8 hdr[4];
    u32 len = u32(payload.size());
    hdr[0] = u8(len);
    hdr[1] = u8(len >> 8);
    hdr[2] = u8(len >> 16);
    hdr[3] = u8(len >> 24);
    sock.sendAll(hdr, sizeof(hdr));
    sock.sendAll(payload.data(), payload.size());
}

RecvStatus
recvFrame(Socket &sock, std::string &out, int timeout_ms)
{
    if (!sock.waitReadable(timeout_ms))
        return RecvStatus::Timeout;
    u8 hdr[4];
    if (!sock.recvAll(hdr, sizeof(hdr)))
        return RecvStatus::Eof;
    u32 len = u32(hdr[0]) | (u32(hdr[1]) << 8) | (u32(hdr[2]) << 16) |
              (u32(hdr[3]) << 24);
    if (len > maxFrameBytes)
        throw NetError("oversized frame (" + std::to_string(len) +
                       " bytes)");
    out.resize(len);
    if (len > 0 && !sock.recvAll(out.data(), len))
        throw NetError("peer closed mid-frame");
    return RecvStatus::Ok;
}

} // namespace darco::net
