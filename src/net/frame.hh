/**
 * @file
 * Length-prefixed message framing over a Socket.
 *
 * Every campaign-service message travels as one frame:
 *
 *   [payload-len u32, little-endian][payload bytes]
 *
 * The payload itself is a snapshot container (snapshot::Serializer
 * output) — see campaign/wire.hh. Framing is where network bytes
 * first touch the process, so the length is validated against
 * maxFrameBytes *before any allocation*: a hostile or corrupt peer
 * can cost at most one bounded buffer, never an OOM.
 */

#ifndef DARCO_NET_FRAME_HH
#define DARCO_NET_FRAME_HH

#include <string>

#include "net/socket.hh"

namespace darco::net
{

/**
 * Upper bound on one frame's payload. Checkpoint images of large
 * guests dominate frame sizes; 256 MiB is an order of magnitude above
 * anything the 32-bit guest address space can produce.
 */
constexpr u32 maxFrameBytes = 256u << 20;

/** Send one framed payload. Throws NetError on failure. */
void sendFrame(Socket &sock, const std::string &payload);

/** Outcome of a bounded-wait receive. */
enum class RecvStatus
{
    Ok,      //!< `out` holds one complete payload
    Eof,     //!< peer closed cleanly between frames
    Timeout, //!< nothing arrived within the wait budget
};

/**
 * Receive one frame, waiting at most `timeout_ms` for it to *begin*
 * (negative = forever); once the header has arrived the body is read
 * to completion. Throws NetError on truncation, transport errors, or
 * a length exceeding maxFrameBytes.
 */
RecvStatus recvFrame(Socket &sock, std::string &out, int timeout_ms);

} // namespace darco::net

#endif // DARCO_NET_FRAME_HH
