#include "net/socket.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace darco::net
{

namespace
{

[[noreturn]] void
throwErrno(const std::string &what)
{
    throw NetError(what + ": " + std::strerror(errno));
}

/** Resolve a numeric/DNS host into a sockaddr_in (IPv4). */
sockaddr_in
resolve(const std::string &host, u16 port)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1)
        return addr;

    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    int rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &res);
    if (rc != 0 || !res)
        throw NetError("cannot resolve host '" + host +
                       "': " + ::gai_strerror(rc));
    addr.sin_addr =
        reinterpret_cast<sockaddr_in *>(res->ai_addr)->sin_addr;
    ::freeaddrinfo(res);
    return addr;
}

} // namespace

void
Socket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
Socket::shutdownBoth()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

void
Socket::sendAll(const void *data, std::size_t len)
{
    const char *p = static_cast<const char *>(data);
    while (len > 0) {
        ssize_t n = ::send(fd_, p, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throwErrno("send");
        }
        p += n;
        len -= std::size_t(n);
    }
}

bool
Socket::recvAll(void *data, std::size_t len)
{
    char *p = static_cast<char *>(data);
    std::size_t got = 0;
    while (got < len) {
        ssize_t n = ::recv(fd_, p + got, len - got, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throwErrno("recv");
        }
        if (n == 0) {
            if (got == 0)
                return false; // clean EOF at a message boundary
            throw NetError("peer closed mid-message (truncated)");
        }
        got += std::size_t(n);
    }
    return true;
}

bool
Socket::waitReadable(int timeout_ms)
{
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    for (;;) {
        int rc = ::poll(&pfd, 1, timeout_ms);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            throwErrno("poll");
        }
        return rc > 0;
    }
}

Listener::Listener(const std::string &bindAddr, u16 port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throwErrno("socket");
    sock_ = Socket(fd);
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr = resolve(bindAddr, port);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        throwErrno("bind " + bindAddr + ":" + std::to_string(port));
    if (::listen(fd, 64) != 0)
        throwErrno("listen");

    sockaddr_in bound{};
    socklen_t blen = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                      &blen) != 0)
        throwErrno("getsockname");
    port_ = ntohs(bound.sin_port);
}

std::optional<Socket>
Listener::accept(int timeout_ms)
{
    if (!sock_.valid())
        return std::nullopt;
    try {
        if (!sock_.waitReadable(timeout_ms))
            return std::nullopt;
    } catch (const NetError &) {
        return std::nullopt; // closed under us
    }
    int fd = ::accept(sock_.fd(), nullptr, nullptr);
    if (fd < 0)
        return std::nullopt; // raced with close()
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return Socket(fd);
}

Socket
connectTo(const std::string &host, u16 port, int timeout_ms)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throwErrno("socket");
    Socket sock(fd);

    sockaddr_in addr = resolve(host, port);

    // Non-blocking connect + poll gives a bounded wait; the socket is
    // switched back to blocking for the request/response protocol.
    int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                       sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS)
        throwErrno("connect " + host + ":" + std::to_string(port));
    if (rc != 0) {
        pollfd pfd{};
        pfd.fd = fd;
        pfd.events = POLLOUT;
        int pr = ::poll(&pfd, 1, timeout_ms);
        if (pr <= 0)
            throw NetError("connect " + host + ":" +
                           std::to_string(port) + ": timed out");
        int err = 0;
        socklen_t elen = sizeof(err);
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &elen);
        if (err != 0)
            throw NetError("connect " + host + ":" +
                           std::to_string(port) + ": " +
                           std::strerror(err));
    }
    ::fcntl(fd, F_SETFL, flags);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return sock;
}

} // namespace darco::net
