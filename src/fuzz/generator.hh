/**
 * @file
 * Seeded, constrained random GISA program generation.
 *
 * The fuzzer's front end: a generator that emits guaranteed-terminating
 * guest programs with a tunable mix of the control/data shapes that
 * drive every co-designed execution path — biased branches (assert
 * creation and AssertFail rollback), jump-table indirect branches
 * (IBTC fills and misses), memory traffic including same-address
 * load/store pairs (speculation AliasFail), guarded divisions with
 * periodically-zero divisors (DivFault on speculative wrong paths),
 * counted single-BB loops (unrolling and trip checks), REP string ops
 * (untranslatable code, IM fallback) and syscalls (synchronization
 * points).
 *
 * Generation is two-phase so failures can be delta-debugged:
 *
 *   GenParams --makeSpec--> ProgramSpec --build--> guest::Program
 *
 * A ProgramSpec is a flat list of per-block decisions, each carrying
 * its own derived RNG seed; removing or shrinking one block therefore
 * never perturbs the code any other block emits, which is what makes
 * greedy minimization (shrink.hh) converge.
 */

#ifndef DARCO_FUZZ_GENERATOR_HH
#define DARCO_FUZZ_GENERATOR_HH

#include <array>
#include <string>
#include <vector>

#include "guest/program.hh"

namespace darco::fuzz
{

/** Block archetypes, each stressing one co-designed mechanism. */
enum class BlockKind : u8
{
    Straight, //!< random ALU/memory body
    Diamond,  //!< biased branch, cold side taken periodically
    Indirect, //!< jump-table dispatch through JMPR
    Loop,     //!< counted single-BB loop (unroll candidate)
    Call,     //!< call into a shared leaf function
    Str,      //!< REP string op (interpreted)
    Div,      //!< branch-guarded division, divisor periodically zero
    Alias,    //!< load/store/load of one address (spec-mem hazard)
    Fp,       //!< FP body including software-expanded trig
    Syscall,  //!< deterministic syscall (sync point)
    NumKinds,
};

/** Printable kind name. */
const char *blockKindName(BlockKind k);

/** One generated block decision. */
struct BlockSpec
{
    BlockKind kind = BlockKind::Straight;
    u64 seed = 0; //!< private RNG stream for this block's body
    u32 len = 2;  //!< body instructions (meaning varies per kind)
};

/**
 * The reducible intermediate form of a fuzz program: everything
 * build() needs to reproduce the exact image.
 */
struct ProgramSpec
{
    std::string name = "fuzz";
    u64 seed = 1;        //!< data image + leaf-function bodies
    u32 outerIters = 20; //!< repetitions of the whole block chain
    u32 coldMask = 7;    //!< cold paths fire every (mask+1) phases
    u32 dataWords = 256; //!< integer working-set size (u32 words)
    std::vector<BlockSpec> blocks;

    /** One-line summary for failure reports. */
    std::string describe() const;
};

/** Mix knobs for makeSpec(). */
struct GenParams
{
    u64 seed = 1;
    u32 minBlocks = 6;
    u32 maxBlocks = 18;
    u32 minOuterIters = 10;
    u32 maxOuterIters = 36;
    u32 bodyLenMin = 1;
    u32 bodyLenMax = 6;
    u32 dataWords = 256;
    /** Relative weight per BlockKind (index by BlockKind). */
    std::array<double, std::size_t(BlockKind::NumKinds)> weights = {
        4.0, // Straight
        2.0, // Diamond
        1.0, // Indirect
        1.5, // Loop
        1.0, // Call
        0.5, // Str
        1.0, // Div
        1.5, // Alias
        1.5, // Fp
        1.0, // Syscall
    };
};

/** Roll a random ProgramSpec from the mix knobs. Deterministic. */
ProgramSpec makeSpec(const GenParams &p);

/**
 * Assemble a spec into a loadable program. Deterministic, and the
 * program always terminates: every loop is counted, every indirect
 * target comes from a generator-built table, and the exit path is a
 * sysExit whose code hashes live register state.
 */
guest::Program build(const ProgramSpec &spec);

/** makeSpec + build. */
guest::Program generate(const GenParams &p);

} // namespace darco::fuzz

#endif // DARCO_FUZZ_GENERATOR_HH
