/**
 * @file
 * Greedy delta-debugging minimization of failing fuzz programs.
 *
 * Works on the generator's ProgramSpec, not on raw bytes: each block
 * carries a private RNG seed, so removing one block leaves every other
 * block's code identical — a reduction either keeps the failure alive
 * or it doesn't, with no accidental re-rolls. The passes, in order:
 *
 *  1. ddmin over the block list (chunked removal, halving chunks),
 *  2. outer-iteration reduction (halving, then a linear tail),
 *  3. per-block body-length reduction to 1,
 *  4. working-set reduction.
 *
 * The predicate is "diffRun still reports any failure"; when the
 * failure mutates into a different one during reduction, that is
 * accepted (classic ddmin behaviour — the minimized case is still a
 * real bug).
 */

#ifndef DARCO_FUZZ_SHRINK_HH
#define DARCO_FUZZ_SHRINK_HH

#include "fuzz/diffrun.hh"
#include "fuzz/generator.hh"

namespace darco::fuzz
{

/** Minimization outcome. */
struct ShrinkResult
{
    ProgramSpec spec;       //!< minimized spec
    guest::Program program; //!< build(spec)
    DiffResult failure;     //!< the failure the minimized case shows
    u32 attempts = 0;       //!< diffRun trials spent
    std::size_t instructions = 0; //!< static insts of the reproducer
};

/** Shrink knobs. */
struct ShrinkOptions
{
    u32 maxAttempts = 400; //!< hard cap on diffRun trials
};

/**
 * Reduce `failing` (a spec whose diffRun fails under `diff_opts`) to
 * a locally-minimal reproducer.
 *
 * Precondition: diffRun(build(failing), failing.seed, diff_opts)
 * fails; shrink() re-establishes this itself and returns the input
 * unchanged (with failure.ok == true) when it does not.
 */
ShrinkResult shrink(const ProgramSpec &failing,
                    const DiffOptions &diff_opts,
                    const ShrinkOptions &opts = ShrinkOptions());

} // namespace darco::fuzz

#endif // DARCO_FUZZ_SHRINK_HH
