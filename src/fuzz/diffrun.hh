/**
 * @file
 * Multi-config differential execution of one guest program.
 *
 * The fuzzer's oracle. One golden run of the reference component
 * provides the authoritative final state; the same program then runs
 * through the full Controller (co-designed component + sync protocol +
 * built-in validation) under a matrix of TOL configurations:
 *
 *   interp   IM only (no translation at all)
 *   noopt    BBM+SBM translation with every optimization disabled
 *   fullopt  the default, fully optimizing pipeline
 *   tinycc   fullopt squeezed into a tiny code cache (eviction storm)
 *
 * Every run is cross-checked against the golden state: architectural
 * registers, exit code, resident memory image, deterministic OS
 * output, and the stats invariants (retired instructions and dynamic
 * basic blocks equal across all configs; IM+BBM+SBM mode counts sum
 * to the retired-instruction count — so e.g. an eviction storm with
 * cc.evictions > 0 must still show zero divergence). When a cell runs
 * with BBV profiling enabled (tol.bbv_interval in the overrides), the
 * oracle additionally enforces the BBV conservation invariant: every
 * closed profiling interval sums to exactly the interval length and
 * the per-interval counts total the retired-instruction count
 * (Profiler::checkBbvInvariants). Hangs are caught
 * with an instruction budget derived from the golden run; divergence
 * exceptions thrown by the Controller's own validation are captured
 * as failures, and an optional lockstep replay (sim/debug.hh)
 * pinpoints the first divergent region for the report.
 */

#ifndef DARCO_FUZZ_DIFFRUN_HH
#define DARCO_FUZZ_DIFFRUN_HH

#include <string>
#include <vector>

#include "common/config.hh"
#include "guest/program.hh"
#include "guest/state.hh"

namespace darco::fuzz
{

/** One cell of the config matrix. */
struct DiffConfig
{
    std::string name;
    std::vector<std::string> overrides; //!< "key=value" strings
};

/** The standard four-config cross-validation matrix. */
std::vector<DiffConfig> defaultMatrix();

/**
 * The standard matrix plus `n` random cells ("rand0".."rand<n-1>"),
 * each drawn from the schema's declared fuzz ranges/domains
 * (deterministic in `seed`): every config is valid by construction,
 * widening coverage beyond the four hand-written presets.
 */
std::vector<DiffConfig> randomMatrix(u64 seed, unsigned n);

/** Per-config execution record. */
struct RunOutcome
{
    std::string config;
    bool finished = false; //!< program completed within budget
    std::string error;     //!< exception text (divergence, fault...)
    guest::CpuState state;
    u32 exitCode = 0;
    u64 insts = 0;
    u64 bbs = 0;
    u64 evictions = 0;
    u64 flushes = 0;
    u64 imInsts = 0, bbmInsts = 0, sbmInsts = 0;
    u64 bbvIntervals = 0; //!< closed BBV intervals (when profiling)
    bool bbvChecked = false; //!< conservation invariant was evaluated
    bool proofsChecked = false; //!< symbolic proofs ran (opts.proofs)
    u64 proved = 0, refuted = 0, unproven = 0; //!< proof verdicts
    std::string osOutput;
};

/** Result of one differential run. */
struct DiffResult
{
    bool ok = true;
    std::string failConfig; //!< config of the first failure
    std::string failure;    //!< human-readable description
    std::vector<RunOutcome> runs;

    /** Multi-line report (all configs + failure details). */
    std::string report() const;
};

/** Knobs for diffRun(). */
struct DiffOptions
{
    /** Budget for the golden reference run. */
    u64 maxRefInsts = 50'000'000;
    /** Co-designed budget = ref insts * slack + floor (hang catch). */
    u64 budgetSlack = 4;
    u64 budgetFloor = 100'000;
    /**
     * Extra "key=value" overrides applied to every matrix cell after
     * its own overrides (fault injection, threshold sweeps).
     */
    std::vector<std::string> extra;
    /** The config matrix; defaults to defaultMatrix(). */
    std::vector<DiffConfig> matrix;
    /**
     * On a state divergence, lockstep-replay the failing config with
     * sim::findFirstDivergence and append the guilty region's guest
     * pc and disassembly to the failure report.
     */
    bool pinpoint = false;
    /**
     * Discharge a symbolic equivalence proof for every translation
     * each cell installs (tol.verify=install) and cross-check the
     * verdicts against the differential oracle: a refuted/unknown
     * proof on a cell the oracle passed is a failure (a silent
     * miscompile the end-to-end comparison happened to miss), and an
     * oracle divergence with every proof clean is flagged in the
     * failure report (sync-protocol bug or verifier gap).
     */
    bool proofs = false;
};

/**
 * Build the effective Config for one matrix cell: fuzzing thresholds
 * (fast promotion so small programs reach SBM), the cell's overrides,
 * then `extra`, then the program seed.
 */
Config makeConfig(const DiffConfig &cell, u64 seed,
                  const std::vector<std::string> &extra);

/**
 * Execute `prog` under the whole matrix and cross-validate.
 * Never throws for program-level failures: they land in the result.
 */
DiffResult diffRun(const guest::Program &prog, u64 seed,
                   const DiffOptions &opts = DiffOptions());

} // namespace darco::fuzz

#endif // DARCO_FUZZ_DIFFRUN_HH
