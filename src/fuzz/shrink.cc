#include "fuzz/shrink.hh"

#include <algorithm>

namespace darco::fuzz
{

namespace
{

/** Stateful trial runner with an attempt budget. */
struct Shrinker
{
    const DiffOptions &diffOpts;
    const ShrinkOptions &opts;
    u32 attempts = 0;
    DiffResult lastFailure;

    bool
    budgetLeft() const
    {
        return attempts < opts.maxAttempts;
    }

    /** Does this candidate still fail? Records the failure if so. */
    bool
    fails(const ProgramSpec &cand)
    {
        if (!budgetLeft())
            return false;
        ++attempts;
        DiffResult r = diffRun(build(cand), cand.seed, diffOpts);
        bool failed = !r.ok;
        if (failed)
            lastFailure = std::move(r);
        return failed;
    }
};

} // namespace

ShrinkResult
shrink(const ProgramSpec &failing, const DiffOptions &diff_opts,
       const ShrinkOptions &opts)
{
    Shrinker sh{diff_opts, opts, 0, DiffResult()};
    ShrinkResult res;
    res.spec = failing;

    // Re-establish the failure (also seeds lastFailure for reports).
    if (!sh.fails(res.spec)) {
        res.program = build(res.spec);
        res.failure = DiffResult(); // ok == true: nothing to shrink
        res.attempts = sh.attempts;
        res.instructions = guest::countInstructions(res.program);
        return res;
    }

    // --- pass 1: ddmin over the block list ------------------------------
    std::size_t chunk = std::max<std::size_t>(1, res.spec.blocks.size() / 2);
    while (chunk >= 1 && sh.budgetLeft()) {
        bool removedAny = false;
        for (std::size_t at = 0;
             at + 1 <= res.spec.blocks.size() && sh.budgetLeft();) {
            if (res.spec.blocks.empty())
                break;
            ProgramSpec cand = res.spec;
            std::size_t n =
                std::min(chunk, cand.blocks.size() - at);
            cand.blocks.erase(cand.blocks.begin() + at,
                              cand.blocks.begin() + at + n);
            if (sh.fails(cand)) {
                res.spec = std::move(cand);
                removedAny = true;
                // keep `at`: the next chunk slid into place
            } else {
                at += chunk;
            }
        }
        if (chunk == 1 && !removedAny)
            break;
        if (chunk > 1)
            chunk /= 2;
    }

    // --- pass 2: outer-iteration reduction ------------------------------
    while (res.spec.outerIters > 1 && sh.budgetLeft()) {
        ProgramSpec cand = res.spec;
        cand.outerIters = std::max(1u, cand.outerIters / 2);
        if (sh.fails(cand))
            res.spec = std::move(cand);
        else
            break;
    }
    while (res.spec.outerIters > 1 && sh.budgetLeft()) {
        ProgramSpec cand = res.spec;
        cand.outerIters -= 1;
        if (sh.fails(cand))
            res.spec = std::move(cand);
        else
            break;
    }

    // --- pass 3: per-block body-length reduction ------------------------
    for (std::size_t i = 0;
         i < res.spec.blocks.size() && sh.budgetLeft(); ++i) {
        if (res.spec.blocks[i].len <= 1)
            continue;
        ProgramSpec cand = res.spec;
        cand.blocks[i].len = 1;
        if (sh.fails(cand))
            res.spec = std::move(cand);
    }

    // --- pass 4: working-set reduction ----------------------------------
    if (res.spec.dataWords > 64 && sh.budgetLeft()) {
        ProgramSpec cand = res.spec;
        cand.dataWords = 64;
        if (sh.fails(cand))
            res.spec = std::move(cand);
    }

    res.program = build(res.spec);
    res.failure = std::move(sh.lastFailure);
    res.attempts = sh.attempts;
    res.instructions = guest::countInstructions(res.program);
    return res;
}

} // namespace darco::fuzz
