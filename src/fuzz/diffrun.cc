#include "fuzz/diffrun.hh"

#include <cstring>
#include <memory>
#include <sstream>

#include "common/schema.hh"
#include "guest/semantics.hh"
#include "sim/controller.hh"
#include "sim/debug.hh"
#include "verify/verifier.hh"
#include "xemu/ref_component.hh"

namespace darco::fuzz
{

using namespace guest;

std::vector<DiffConfig>
defaultMatrix()
{
    return {
        {"interp", {"tol.enable_bbm=false", "tol.enable_sbm=false"}},
        {"noopt",
         {"tol.opt=false", "tol.sched=false", "tol.spec_mem=false",
          "tol.unroll=false", "tol.fuse_flags=false",
          "tol.chaining=false"}},
        {"fullopt", {}},
        // Region sizes are bounded (tol.max_sb_insts) well below the
        // capacity so the pressure produces evictions, never a
        // region-exceeds-cache panic.
        {"tinycc",
         {"cc.capacity_words=768", "cc.policy=evict",
          "tol.max_sb_insts=120"}},
        // Background translation with modeled concurrency: must be
        // architecturally identical to fullopt, only timing differs.
        {"async", {"tol.async.threads=2", "tol.async.vthreads=2"}},
        // Two guest cores sharing one TOL over a tiny code cache:
        // cross-core eviction storms and cross-core chaining, each
        // core validated against its own per-core golden run.
        {"mc",
         {"cores=2", "cc.capacity_words=768", "cc.policy=evict",
          "tol.max_sb_insts=120"}},
    };
}

std::vector<DiffConfig>
randomMatrix(u64 seed, unsigned n)
{
    std::vector<DiffConfig> matrix = defaultMatrix();
    for (unsigned k = 0; k < n; ++k) {
        DiffConfig cell;
        cell.name = "rand" + std::to_string(k);
        // Decorrelate the cell stream from the program-generator
        // stream (both are seeded from the same sweep seed).
        cell.overrides =
            conf::schema().randomOverrides(seed * 131 + k + 1);
        matrix.push_back(std::move(cell));
    }
    return matrix;
}

Config
makeConfig(const DiffConfig &cell, u64 seed,
           const std::vector<std::string> &extra)
{
    // Fast-promotion thresholds: fuzz programs are small, and the
    // point is to spend their dynamic length in translated code.
    Config cfg;
    cfg.set("tol.bb_threshold", s64(4));
    cfg.set("tol.sb_threshold", s64(12));
    cfg.set("tol.min_edge_total", s64(8));
    for (const std::string &kv : cell.overrides)
        cfg.parseLine(kv);
    for (const std::string &kv : extra)
        cfg.parseLine(kv);
    cfg.set("seed", s64(seed));
    return cfg;
}

namespace
{

/** Render a run header like "fullopt: insts=1234 exit=7". */
std::string
line(const RunOutcome &r)
{
    std::ostringstream os;
    os << r.config << ": ";
    if (!r.error.empty()) {
        os << "ERROR " << r.error;
    } else if (!r.finished) {
        os << "HANG (insts=" << r.insts << ")";
    } else {
        os << "insts=" << r.insts << " bbs=" << r.bbs
           << " exit=" << r.exitCode << " evict=" << r.evictions
           << " flush=" << r.flushes;
    }
    if (r.proofsChecked)
        os << " proofs=" << r.proved << "/" << r.refuted << "/"
           << r.unproven;
    return os.str();
}

} // namespace

std::string
DiffResult::report() const
{
    std::ostringstream os;
    os << (ok ? "OK" : "FAIL");
    if (!ok)
        os << " [" << failConfig << "] " << failure;
    os << '\n';
    for (const RunOutcome &r : runs)
        os << "  " << line(r) << '\n';
    return os.str();
}

DiffResult
diffRun(const Program &prog, u64 seed, const DiffOptions &opts)
{
    DiffResult res;
    auto fail = [&](const std::string &config, const std::string &what) {
        if (res.ok) {
            res.ok = false;
            res.failConfig = config;
            res.failure = what;
        }
    };

    // --- golden reference runs -----------------------------------------
    // One authoritative run per guest core: core i's golden is seeded
    // seed+i, matching the controller's per-core reference components
    // (every core runs its own instance of the program). Goldens above
    // core 0 are built lazily so single-core cells pay nothing.
    std::vector<std::unique_ptr<xemu::RefComponent>> goldens;
    std::string goldenErr;
    auto ensureGoldens = [&](u32 n) -> bool {
        while (goldens.size() < n) {
            auto g = std::make_unique<xemu::RefComponent>(
                seed + goldens.size());
            g->load(prog);
            try {
                g->runToCompletion(opts.maxRefInsts);
            } catch (const GuestFault &gf) {
                std::ostringstream os;
                os << "reference (core " << goldens.size()
                   << ") faulted at pc 0x" << std::hex << gf.pc
                   << ": " << gf.msg;
                goldenErr = os.str();
                return false;
            }
            if (!g->finished()) {
                goldenErr =
                    "reference (core " +
                    std::to_string(goldens.size()) + ") exceeded " +
                    std::to_string(opts.maxRefInsts) +
                    " insts (generator bug: non-terminating)";
                return false;
            }
            goldens.push_back(std::move(g));
        }
        return true;
    };
    if (!ensureGoldens(1)) {
        fail("reference", goldenErr);
        return res;
    }
    xemu::RefComponent &golden = *goldens[0];

    const std::vector<DiffConfig> matrix =
        opts.matrix.empty() ? defaultMatrix() : opts.matrix;

    // Proof mode verifies every translation as it is installed; an
    // explicit -c tol.verify=... still wins (extra applies later).
    std::vector<std::string> extra = opts.extra;
    if (opts.proofs)
        extra.insert(extra.begin(), "tol.verify=install");

    // --- config matrix --------------------------------------------------
    for (const DiffConfig &cell : matrix) {
        RunOutcome out;
        out.config = cell.name;
        Config cfg = makeConfig(cell, seed, extra);
        u32 ncores = u32(conf::getUint(cfg, "cores"));
        if (!ensureGoldens(ncores)) {
            fail(cell.name, goldenErr);
            res.runs.push_back(std::move(out));
            continue;
        }
        u64 goldenInsts = 0, goldenBbs = 0;
        for (u32 i = 0; i < ncores; ++i) {
            goldenInsts += goldens[i]->instCount();
            goldenBbs += goldens[i]->bbCount();
        }
        u64 budget = goldenInsts * opts.budgetSlack + opts.budgetFloor;

        sim::Controller ctl(cfg);
        try {
            ctl.load(prog);
            ctl.run(budget);
        } catch (const sim::DivergenceError &de) {
            out.error = std::string("divergence: ") + de.what();
        } catch (const GuestFault &gf) {
            std::ostringstream os;
            os << "guest fault at pc 0x" << std::hex << gf.pc << ": "
               << gf.msg;
            out.error = os.str();
        } catch (const std::exception &e) {
            out.error = e.what();
        }

        if (ctl.loaded()) {
            out.finished = ctl.finished();
            out.state = ctl.tol().state();
            out.insts = ctl.tol().completedInsts();
            out.bbs = ctl.tol().completedBBs();
            out.exitCode = ctl.exitCode();
            out.evictions = ctl.stats().value("cc.evictions");
            out.flushes = ctl.stats().value("cc.flushes");
            out.imInsts = ctl.stats().value("tol.guest_im");
            out.bbmInsts = ctl.stats().value("tol.guest_bbm");
            out.sbmInsts = ctl.stats().value("tol.guest_sbm");
            out.osOutput = ctl.ref().os().output();
        }

        // --- cross-checks against the golden run -----------------------
        if (!out.error.empty()) {
            fail(cell.name, out.error);
        } else if (!out.finished) {
            fail(cell.name,
                 "did not terminate within " + std::to_string(budget) +
                     " guest insts (golden: " +
                     std::to_string(goldenInsts) + ")");
        } else {
            if (out.insts != goldenInsts)
                fail(cell.name,
                     "retired insts " + std::to_string(out.insts) +
                         " != golden " + std::to_string(goldenInsts));
            if (out.bbs != goldenBbs)
                fail(cell.name,
                     "retired BBs " + std::to_string(out.bbs) +
                         " != golden " + std::to_string(goldenBbs));
            if (out.exitCode != golden.exitCode())
                fail(cell.name,
                     "exit code " + std::to_string(out.exitCode) +
                         " != golden " +
                         std::to_string(golden.exitCode()));
            // Per-core architectural checks: each core against its
            // own golden (state, retirement, exit code, OS output).
            for (u32 i = 0; i < ncores; ++i) {
                xemu::RefComponent &g = *goldens[i];
                std::string c = "core " + std::to_string(i);
                const CpuState &st = ctl.tol().state(i);
                if (!(st == g.state()))
                    fail(cell.name, c + " final state diverged: " +
                                        g.state().diff(st));
                if (ctl.tol().completedInsts(i) != g.instCount())
                    fail(cell.name,
                         c + " retired insts " +
                             std::to_string(
                                 ctl.tol().completedInsts(i)) +
                             " != golden " +
                             std::to_string(g.instCount()));
                if (ctl.tol().completedBBs(i) != g.bbCount())
                    fail(cell.name,
                         c + " retired BBs " +
                             std::to_string(
                                 ctl.tol().completedBBs(i)) +
                             " != golden " +
                             std::to_string(g.bbCount()));
                if (ctl.ref(i).exitCode() != g.exitCode())
                    fail(cell.name,
                         c + " exit code " +
                             std::to_string(ctl.ref(i).exitCode()) +
                             " != golden " +
                             std::to_string(g.exitCode()));
                if (ctl.ref(i).os().output() != g.os().output())
                    fail(cell.name, c + " OS output diverged");
            }
            // Chain-graph consistency, most interesting after the
            // tinycc cell's eviction/unchain storms.
            std::string inv = ctl.registry().checkInvariants();
            if (!inv.empty())
                fail(cell.name, "registry invariants broken: " + inv);
            if (out.imInsts + out.bbmInsts + out.sbmInsts != out.insts)
                fail(cell.name,
                     "mode accounting broken: im+bbm+sbm = " +
                         std::to_string(out.imInsts + out.bbmInsts +
                                        out.sbmInsts) +
                         " != retired " + std::to_string(out.insts));

            // BBV conservation: with profiling enabled, every retired
            // instruction must be attributed to exactly one BB in
            // exactly one interval (sampled simulation is built on
            // this accounting being airtight).
            const tol::Profiler &prof = ctl.tol().profiler();
            if (prof.bbvEnabled()) {
                out.bbvChecked = true;
                out.bbvIntervals = prof.bbvIntervals().size();
                std::string bbv =
                    prof.checkBbvInvariants(out.insts);
                if (!bbv.empty())
                    fail(cell.name,
                         "BBV conservation broken: " + bbv);
            }

            // Memory image: every page the co-designed side touched
            // must match the authoritative image bit-exactly, per
            // core. The scan is deliberately one-sided (paper Section
            // V-D): emulated memory is a demand-fetched cache of the
            // authoritative image, so a page it never fetched carries
            // no emulated claim to compare — materializing it as
            // zeros would false-positive on every never-read data
            // page.
            for (u32 i = 0; i < ncores; ++i) {
                for (GAddr page :
                     ctl.emulatedMemory(i).residentPages()) {
                    const u8 *mine = ctl.emulatedMemory(i).page(page);
                    const u8 *gold = goldens[i]->memory().page(page);
                    if (std::memcmp(mine, gold, pageSizeBytes) != 0) {
                        std::ostringstream os;
                        os << "memory diverged at core " << i
                           << " page 0x" << std::hex << page;
                        fail(cell.name, os.str());
                        break;
                    }
                }
            }
        }

        // --- proof / oracle cross-check ----------------------------------
        bool oracleFailed = !res.ok && res.failConfig == cell.name;
        if (opts.proofs && ctl.loaded() &&
            ctl.tol().verifyEnabled()) {
            std::string proofErr;
            try {
                // Drains+publishes due async work, then discharges
                // anything still accumulated (install mode verifies
                // eagerly, so this mostly covers end-of-run stragglers).
                ctl.tol().verifyFinal();
            } catch (const std::exception &e) {
                proofErr = e.what();
            }
            const verify::VerifyReport &rep = ctl.tol().verifyReport();
            out.proofsChecked = true;
            out.proved = rep.proved;
            out.refuted = rep.refuted;
            out.unproven = rep.unknown;
            if (!proofErr.empty())
                fail(cell.name, "proof pass aborted: " + proofErr);
            if (!rep.clean()) {
                // First refuted result if any (it carries a concrete
                // witness), otherwise the first unknown.
                const verify::VerifyResult *worst = nullptr;
                for (const verify::VerifyResult &vr : rep.results) {
                    if (vr.verdict == verify::Verdict::Proved)
                        continue;
                    if (!worst ||
                        (worst->verdict != verify::Verdict::Refuted &&
                         vr.verdict == verify::Verdict::Refuted))
                        worst = &vr;
                }
                std::ostringstream os;
                os << "translation proof failure with the oracle "
                   << (oracleFailed ? "also failing"
                                    : "PASSING (silent miscompile "
                                      "caught by the proof alone)")
                   << ": " << rep.summary();
                if (worst) {
                    os << "; first: region @0x" << std::hex
                       << worst->entry << std::dec << " — "
                       << worst->detail;
                    if (!worst->witness.empty())
                        os << "\n  " << worst->witness;
                }
                fail(cell.name, os.str());
            } else if (oracleFailed) {
                res.failure +=
                    "\n  every translation proof passed (" +
                    rep.summary() +
                    ") — divergence is outside the proved "
                    "translations (sync protocol, dispatch, or a "
                    "verifier gap)";
            }
        }

        bool thisCellFailed = !res.ok && res.failConfig == cell.name;
        // The divergence-pinpoint replay drives a single co-designed
        // core; multi-core cells report without it.
        if (thisCellFailed && opts.pinpoint && ncores == 1) {
            auto dp = sim::findFirstDivergence(prog, cfg, budget);
            if (dp) {
                std::ostringstream os;
                os << res.failure << "\n  first divergent region: pc 0x"
                   << std::hex << dp->regionEntryPc << std::dec
                   << " insts [" << dp->instFrom << ", " << dp->instTo
                   << "]\n"
                   << dp->disassembly;
                res.failure = os.str();
            }
        }

        res.runs.push_back(std::move(out));
    }

    return res;
}

} // namespace darco::fuzz
