#include "fuzz/generator.hh"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "common/logging.hh"
#include "common/rng.hh"
#include "guest/asm.hh"
#include "xemu/os.hh"

namespace darco::fuzz
{

using namespace guest;

const char *
blockKindName(BlockKind k)
{
    switch (k) {
      case BlockKind::Straight: return "straight";
      case BlockKind::Diamond: return "diamond";
      case BlockKind::Indirect: return "indirect";
      case BlockKind::Loop: return "loop";
      case BlockKind::Call: return "call";
      case BlockKind::Str: return "str";
      case BlockKind::Div: return "div";
      case BlockKind::Alias: return "alias";
      case BlockKind::Fp: return "fp";
      case BlockKind::Syscall: return "syscall";
      default: return "?";
    }
}

std::string
ProgramSpec::describe() const
{
    std::ostringstream os;
    os << name << ": seed=" << seed << " iters=" << outerIters
       << " coldMask=" << coldMask << " blocks=[";
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        if (i)
            os << ' ';
        os << blockKindName(blocks[i].kind) << '/' << blocks[i].len;
    }
    os << ']';
    return os.str();
}

ProgramSpec
makeSpec(const GenParams &p)
{
    Rng rng(p.seed * 0x9e3779b97f4a7c15ull + 0xf0220ull);
    ProgramSpec spec;
    spec.name = "fuzz" + std::to_string(p.seed);
    spec.seed = p.seed;
    spec.outerIters = u32(rng.range(p.minOuterIters, p.maxOuterIters));
    spec.coldMask = u32((1u << rng.range(2, 4)) - 1); // 3, 7 or 15
    spec.dataWords = p.dataWords;

    std::vector<double> w(p.weights.begin(), p.weights.end());
    u32 n = u32(rng.range(p.minBlocks, p.maxBlocks));
    for (u32 i = 0; i < n; ++i) {
        BlockSpec b;
        b.kind = BlockKind(rng.weighted(w));
        b.seed = rng.next();
        b.len = u32(rng.range(p.bodyLenMin, p.bodyLenMax));
        spec.blocks.push_back(b);
    }
    return spec;
}

namespace
{

u32
pow2ceil(u32 v)
{
    u32 p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

/**
 * Register discipline (mirrors workloads::synth):
 *   RSP stack, RBP data base, RBX outer counter, RSI phase counter;
 *   RAX, RCX, RDX, RDI are free block-body registers (counted loops
 *   reserve RCX, cold checks clobber RDI).
 */
struct Builder
{
    const ProgramSpec &spec;
    Assembler a;
    u32 wordMask;
    std::size_t fpArea;
    static constexpr u32 fpSlots = 16;
    std::size_t strArea;
    static constexpr u32 strLen = 24;

    std::vector<Assembler::Label> funcs;
    bool funcsUsed = false;

    struct ColdStub
    {
        Assembler::Label label;
        Assembler::Label back;
        u64 seed;
    };
    std::vector<ColdStub> coldStubs;

    struct IndirectSite
    {
        std::size_t tableOff;
        Assembler::Label cases[4];
    };
    std::vector<IndirectSite> indirectSites;

    explicit Builder(const ProgramSpec &s) : spec(s)
    {
        u32 words = pow2ceil(std::max(64u, spec.dataWords));
        wordMask = (words - 1) << 2;

        // Data image: int working set | fp slots | string buffers.
        // Pre-initialized in the image itself (no runtime init loop),
        // so minimized reproducers stay tiny.
        Rng drng(spec.seed ^ 0xda7a5eedull);
        for (u32 i = 0; i < words; ++i)
            a.dataU32(u32(drng.next()));
        fpArea = words * 4;
        for (u32 i = 0; i < fpSlots; ++i)
            a.dataF64(0.25 + 0.0625 * double(i));
        strArea = fpArea + fpSlots * 8;
        a.dataZero(2 * strLen + 16);

        for (u32 f = 0; f < 2; ++f)
            funcs.push_back(a.newLabel());
    }

    GReg
    bodyReg(Rng &rng, bool allow_rcx, bool allow_rdi = true)
    {
        for (;;) {
            switch (rng.range(0, 3)) {
              case 0: return RAX;
              case 1:
                if (allow_rcx)
                    return RCX;
                break;
              case 2: return RDX;
              default:
                if (allow_rdi)
                    return RDI;
                break;
            }
        }
    }

    /** Masked in-working-set memory operand through idx. */
    Mem
    dataRef(GReg idx)
    {
        a.andri(idx, s32(wordMask & ~3u));
        return memIdx(RBP, idx, 0, 0);
    }

    /** One random integer body instruction (flag-heavy mix). */
    void
    emitIntOp(Rng &rng, bool allow_rcx, bool mem_ok = true)
    {
        GReg d = bodyReg(rng, allow_rcx);
        GReg s = bodyReg(rng, allow_rcx);
        if (mem_ok && rng.chance(0.3)) {
            GReg idx = bodyReg(rng, allow_rcx);
            switch (rng.range(0, 4)) {
              case 0: a.movrm(d, dataRef(idx)); break;
              case 1: a.movmr(dataRef(idx), d); break;
              case 2: a.addrm(d, dataRef(idx)); break;
              case 3: a.movzx8(d, dataRef(idx)); break;
              default: a.addmr(dataRef(idx), d); break;
            }
            return;
        }
        switch (rng.range(0, 12)) {
          case 0: a.addrr(d, s); break;
          case 1: a.subrr(d, s); break;
          case 2: a.xorrr(d, s); break;
          case 3: a.imulrr(d, s); break;
          case 4: a.addri(d, s32(rng.range(0, 2000)) - 1000); break;
          case 5: a.shlri(d, s8(rng.range(1, 7))); break;
          case 6: a.sarri(d, s8(rng.range(1, 7))); break;
          case 7: a.inc(d); break;
          case 8: a.notr(d); break;
          case 9: {
            a.cmpri(d, s32(rng.range(0, 64)));
            a.cmovcc(GCond(rng.range(0, 11)), d, s);
            break;
          }
          case 10: {
            a.testrr(d, s);
            a.setcc(GCond(rng.range(0, 11)), d);
            break;
          }
          default: {
            a.push(d);
            a.movri(d, s32(rng.next() & 0xffff));
            a.pop(d);
            break;
          }
        }
    }

    void
    emitIntBody(Rng &rng, u32 len, bool allow_rcx, bool mem_ok = true)
    {
        for (u32 i = 0; i < len; ++i)
            emitIntOp(rng, allow_rcx, mem_ok);
    }

    void
    emitFpOp(Rng &rng)
    {
        u8 fd = u8(rng.range(0, 7));
        u8 fs = u8(rng.range(0, 7));
        switch (rng.range(0, 7)) {
          case 0:
            a.fld(fd, mem(RBP, s32(fpArea + 8 * rng.range(0, fpSlots - 1))));
            break;
          case 1:
            a.fst(mem(RBP, s32(fpArea + 8 * rng.range(0, fpSlots - 1))),
                  fs);
            break;
          case 2: a.fadd(fd, fs); break;
          case 3: a.fmul(fd, fs); break;
          case 4:
            if (rng.chance(0.4))
                a.fsin(fd, fs);
            else
                a.fsub(fd, fs);
            break;
          case 5:
            if (rng.chance(0.4)) {
                a.fcos(fd, fs);
            } else {
                a.fabs_(fd, fs);
                a.fsqrt(fd, fd);
            }
            break;
          default: {
            a.fcmp(fd, fs);
            a.setcc(GCond::B, bodyReg(rng, true));
            break;
          }
        }
    }

    // --- per-kind block emitters ---------------------------------------

    void
    emitBlock(const BlockSpec &b)
    {
        Rng rng(b.seed);
        switch (b.kind) {
          case BlockKind::Straight:
            emitIntBody(rng, std::max(1u, b.len), true);
            break;

          case BlockKind::Diamond: {
            // Biased branch: cold side every (coldMask+1) phases.
            emitIntBody(rng, std::max(1u, b.len / 2), true);
            ColdStub stub{a.newLabel(), a.newLabel(), rng.next()};
            a.inc(RSI);
            a.movrr(RDI, RSI);
            a.andri(RDI, s32(spec.coldMask));
            a.cmpri(RDI, 0);
            a.jcc(GCond::EQ, stub.label);
            a.bind(stub.back);
            coldStubs.push_back(stub);
            break;
          }

          case BlockKind::Indirect: {
            // Jump-table dispatch on the phase counter: IBTC traffic
            // with four rotating targets per site.
            IndirectSite site;
            site.tableOff = a.dataZero(16);
            auto join = a.newLabel();
            a.movrr(RDI, RSI);
            a.andri(RDI, 3);
            a.movri(RDX, s32(Program::dataAddr(site.tableOff)));
            a.movrm(RDX, memIdx(RDX, RDI, 2, 0));
            a.jmpr(RDX);
            for (int c = 0; c < 4; ++c) {
                site.cases[c] = a.newLabel();
                a.bind(site.cases[c]);
                emitIntBody(rng, 1, true, false);
                if (c != 3)
                    a.jmp(join);
            }
            a.bind(join);
            indirectSites.push_back(site);
            break;
          }

          case BlockKind::Loop: {
            u32 trip = u32(rng.range(3, 10));
            a.movri(RCX, s32(trip));
            auto l = a.newLabel();
            a.bind(l);
            emitIntBody(rng, std::max(1u, b.len), false);
            a.dec(RCX);
            a.jcc(GCond::NE, l);
            break;
          }

          case BlockKind::Call:
            emitIntBody(rng, std::max(1u, b.len / 2), true);
            a.call(funcs[rng.range(0, funcs.size() - 1)]);
            funcsUsed = true;
            break;

          case BlockKind::Str: {
            a.push(RSI);
            a.movri(RSI, s32(Program::dataAddr(strArea)));
            a.movri(RDI, s32(Program::dataAddr(strArea + strLen)));
            a.movri(RCX, s32(rng.range(4, strLen)));
            if (rng.chance(0.5)) {
                a.movsb(true);
            } else {
                a.movri(RAX, s32(rng.range(0, 255)));
                a.stosb(true);
            }
            a.pop(RSI);
            break;
          }

          case BlockKind::Div: {
            // Division guarded by a biased branch: the divisor
            // (phase & coldMask) is zero every (coldMask+1) phases, and
            // exactly then the guard skips the division. Superblocks
            // convert the guard into an assert; a scheduler that hoists
            // the division above it hits the speculative DivFault path.
            auto skip = a.newLabel();
            a.inc(RSI);
            a.movrr(RDI, RSI);
            a.andri(RDI, s32(spec.coldMask));
            a.cmpri(RDI, 0);
            a.jcc(GCond::EQ, skip);
            a.andri(RAX, 0x7fffffff);
            if (rng.chance(0.5))
                a.idivrr(RAX, RDI);
            else
                a.iremrr(RAX, RDI);
            a.bind(skip);
            break;
          }

          case BlockKind::Alias: {
            // load / store / re-load of one working-set address: a
            // speculatively hoisted second load aliases the store and
            // must trigger the checked-store rollback, not corruption.
            a.movrr(RDI, RSI);
            Mem m = dataRef(RDI);
            a.movrm(RAX, m);
            a.addri(RAX, s32(rng.range(1, 100)));
            a.movmr(m, RAX);
            a.movrm(RDX, m);
            a.addrr(RDX, RAX);
            break;
          }

          case BlockKind::Fp:
            for (u32 i = 0; i < std::max(1u, b.len); ++i)
                emitFpOp(rng);
            break;

          case BlockKind::Syscall: {
            switch (rng.range(0, 2)) {
              case 0:
                a.movri(RAX, s32(xemu::sysTime));
                break;
              case 1:
                a.movri(RAX, s32(xemu::sysRand));
                break;
              default:
                a.movri(RAX, s32(xemu::sysWriteInt));
                a.movrr(RCX, RDX);
                break;
            }
            a.syscall();
            a.addrr(RDX, RAX);
            break;
          }

          default:
            panic("unknown block kind");
        }
    }

    Program
    run()
    {
        // Prologue: base registers and the outer loop counter.
        a.movri(RBP, s32(layout::dataBase));
        a.movri(RBX, s32(std::max(1u, spec.outerIters)));
        a.movri(RSI, 0);
        a.movri(RDX, s32(spec.seed & 0xffff));

        auto chain = a.newLabel();
        a.bind(chain);
        for (const BlockSpec &b : spec.blocks)
            emitBlock(b);
        a.dec(RBX);
        a.jcc(GCond::NE, chain);

        // Exit: fold live state into the exit code so pure register
        // divergence is visible even without a final state compare.
        a.movrr(RCX, RDX);
        a.xorrr(RCX, RAX);
        a.andri(RCX, 0xff);
        a.movri(RAX, s32(xemu::sysExit));
        a.syscall();

        // Cold stubs (out of line, so the diamonds stay biased).
        for (const ColdStub &c : coldStubs) {
            a.bind(c.label);
            Rng crng(c.seed);
            emitIntBody(crng, u32(crng.range(1, 2)), true);
            a.jmp(c.back);
        }

        // Shared leaf functions (only when some block calls them).
        if (funcsUsed) {
            Rng frng(spec.seed ^ 0xf00dull);
            for (auto &f : funcs) {
                a.bind(f);
                emitIntBody(frng, u32(frng.range(1, 3)), true);
                a.ret();
            }
        } else {
            for (auto &f : funcs)
                a.bind(f); // keep labels bound; no code emitted
        }

        Program prog = a.finish(spec.name);

        // Patch the per-site jump tables with the case addresses.
        for (const IndirectSite &site : indirectSites) {
            u32 pcs[4];
            for (int c = 0; c < 4; ++c)
                pcs[c] =
                    u32(Program::codeAddr(a.labelOffset(site.cases[c])));
            std::memcpy(prog.data.data() + site.tableOff, pcs, 16);
        }
        return prog;
    }
};

} // namespace

Program
build(const ProgramSpec &spec)
{
    Builder b(spec);
    return b.run();
}

Program
generate(const GenParams &p)
{
    return build(makeSpec(p));
}

} // namespace darco::fuzz
