/**
 * @file
 * Set-associative cache model with LRU replacement and write-back,
 * write-allocate policy. Levels are chained (L1 -> L2 -> memory);
 * access() returns the total latency of servicing the request.
 *
 * The model is latency-oriented (no MSHR overlap): appropriate for
 * the paper's simple in-order core, where a miss stalls the pipeline.
 */

#ifndef DARCO_TIMING_CACHE_HH
#define DARCO_TIMING_CACHE_HH

#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"

namespace darco::timing
{

/** One cache level. */
class Cache
{
  public:
    /**
     * @param next next level, or nullptr (then miss_latency is the
     *        memory latency)
     */
    Cache(std::string name, u32 size_bytes, u32 assoc, u32 line_bytes,
          Cycle hit_latency, Cycle miss_latency, Cache *next,
          StatGroup &stats);

    /** Demand access; returns total latency in cycles. */
    Cycle access(u32 addr, bool write);

    /** Prefetch: fills the line, charged to the stats, no latency. */
    void prefetch(u32 addr);

    /** True if the address currently hits (no state change). */
    bool probe(u32 addr) const;

    u64 hits() const { return hits_->value(); }
    u64 misses() const { return misses_->value(); }

    u32 lineBytes() const { return lineBytes_; }

  private:
    struct Line
    {
        u64 tag = ~0ull;
        bool valid = false;
        bool dirty = false;
        u64 lru = 0;
    };

    /** Fill a line; returns extra latency from the next level. */
    Cycle fill(u32 addr, bool from_prefetch);

    u32 setIndex(u32 addr) const
    {
        return (addr / lineBytes_) & (numSets_ - 1);
    }
    u64 tagOf(u32 addr) const { return addr / lineBytes_ / numSets_; }

    std::string name_;
    u32 lineBytes_;
    u32 assoc_;
    u32 numSets_;
    Cycle hitLatency_;
    Cycle missLatency_;
    Cache *next_;
    std::vector<Line> lines_;
    u64 lruTick_ = 0;

    Counter *hits_;
    Counter *misses_;
    Counter *writebacks_;
    Counter *prefetches_;
};

} // namespace darco::timing

#endif // DARCO_TIMING_CACHE_HH
