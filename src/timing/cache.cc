#include "timing/cache.hh"

namespace darco::timing
{

namespace
{

constexpr bool
isPow2(u32 v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

Cache::Cache(std::string name, u32 size_bytes, u32 assoc,
             u32 line_bytes, Cycle hit_latency, Cycle miss_latency,
             Cache *next, StatGroup &stats)
    : name_(std::move(name)),
      lineBytes_(line_bytes),
      assoc_(assoc),
      numSets_(size_bytes / (line_bytes * assoc)),
      hitLatency_(hit_latency),
      missLatency_(miss_latency),
      next_(next)
{
    darco_assert(isPow2(lineBytes_) && isPow2(numSets_),
                 "cache geometry must be power-of-two: ", name_);
    lines_.resize(std::size_t(numSets_) * assoc_);
    hits_ = &stats.counter(name_ + ".hits");
    misses_ = &stats.counter(name_ + ".misses");
    writebacks_ = &stats.counter(name_ + ".writebacks");
    prefetches_ = &stats.counter(name_ + ".prefetches");
}

bool
Cache::probe(u32 addr) const
{
    u32 set = setIndex(addr);
    u64 tag = tagOf(addr);
    for (u32 w = 0; w < assoc_; ++w) {
        const Line &l = lines_[std::size_t(set) * assoc_ + w];
        if (l.valid && l.tag == tag)
            return true;
    }
    return false;
}

Cycle
Cache::fill(u32 addr, bool from_prefetch)
{
    u32 set = setIndex(addr);
    u64 tag = tagOf(addr);

    // Victim: invalid first, else LRU.
    Line *victim = nullptr;
    for (u32 w = 0; w < assoc_; ++w) {
        Line &l = lines_[std::size_t(set) * assoc_ + w];
        if (!l.valid) {
            victim = &l;
            break;
        }
        if (!victim || l.lru < victim->lru)
            victim = &l;
    }
    if (victim->valid && victim->dirty)
        writebacks_->inc(); // write-back absorbed by write buffers

    Cycle lat = 0;
    if (next_) {
        if (from_prefetch)
            next_->prefetch(addr);
        else
            lat = next_->access(addr, false);
    } else {
        lat = missLatency_;
    }
    victim->valid = true;
    victim->dirty = false;
    victim->tag = tag;
    victim->lru = ++lruTick_;
    return lat;
}

Cycle
Cache::access(u32 addr, bool write)
{
    u32 set = setIndex(addr);
    u64 tag = tagOf(addr);
    for (u32 w = 0; w < assoc_; ++w) {
        Line &l = lines_[std::size_t(set) * assoc_ + w];
        if (l.valid && l.tag == tag) {
            hits_->inc();
            l.lru = ++lruTick_;
            l.dirty |= write;
            return hitLatency_;
        }
    }
    misses_->inc();
    Cycle lat = hitLatency_ + fill(addr, false);
    if (write) {
        u32 s2 = setIndex(addr);
        u64 t2 = tagOf(addr);
        for (u32 w = 0; w < assoc_; ++w) {
            Line &l = lines_[std::size_t(s2) * assoc_ + w];
            if (l.valid && l.tag == t2)
                l.dirty = true;
        }
    }
    return lat;
}

void
Cache::prefetch(u32 addr)
{
    if (probe(addr))
        return;
    prefetches_->inc();
    fill(addr, true);
}

} // namespace darco::timing
