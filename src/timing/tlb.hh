/**
 * @file
 * Two-level TLB model (paper Section V-C: "two level TLB ...
 * hierarchies"). Fully-associative LRU levels; an L2 miss pays a
 * fixed page-walk latency.
 */

#ifndef DARCO_TIMING_TLB_HH
#define DARCO_TIMING_TLB_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace darco::timing
{

/** One fully-associative TLB level. */
class TlbLevel
{
  public:
    TlbLevel(std::string name, u32 entries, StatGroup &stats)
        : entries_(entries)
    {
        hits_ = &stats.counter(name + ".hits");
        misses_ = &stats.counter(name + ".misses");
    }

    bool
    access(u32 vpn)
    {
        for (auto &e : entries_) {
            if (e.valid && e.vpn == vpn) {
                e.lru = ++tick_;
                hits_->inc();
                return true;
            }
        }
        misses_->inc();
        // Fill (LRU victim).
        Entry *victim = &entries_[0];
        for (auto &e : entries_) {
            if (!e.valid) {
                victim = &e;
                break;
            }
            if (e.lru < victim->lru)
                victim = &e;
        }
        victim->valid = true;
        victim->vpn = vpn;
        victim->lru = ++tick_;
        return false;
    }

  private:
    struct Entry
    {
        u32 vpn = 0;
        bool valid = false;
        u64 lru = 0;
    };
    std::vector<Entry> entries_;
    u64 tick_ = 0;
    Counter *hits_;
    Counter *misses_;
};

/** L1 + L2 TLB with latencies. */
class Tlb
{
  public:
    Tlb(std::string name, u32 l1_entries, u32 l2_entries,
        Cycle l2_latency, Cycle walk_latency, StatGroup &stats)
        : l1_(name + ".l1", l1_entries, stats),
          l2_(name + ".l2", l2_entries, stats),
          l2Latency_(l2_latency), walkLatency_(walk_latency)
    {}

    /** @return added latency (0 on an L1 hit). */
    Cycle
    access(u32 addr)
    {
        u32 vpn = addr >> 12;
        if (l1_.access(vpn))
            return 0;
        if (l2_.access(vpn))
            return l2Latency_;
        return l2Latency_ + walkLatency_;
    }

  private:
    TlbLevel l1_;
    TlbLevel l2_;
    Cycle l2Latency_;
    Cycle walkLatency_;
};

} // namespace darco::timing

#endif // DARCO_TIMING_TLB_HH
