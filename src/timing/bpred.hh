/**
 * @file
 * Front-end predictors: gshare direction predictor and a
 * direct-mapped BTB (paper Section V-C: "equipped with a BTB and
 * gshare branch predictor").
 */

#ifndef DARCO_TIMING_BPRED_HH
#define DARCO_TIMING_BPRED_HH

#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"

namespace darco::timing
{

/** gshare: global history XOR pc indexing 2-bit counters. */
class Gshare
{
  public:
    Gshare(u32 entries, u32 history_bits, StatGroup &stats)
        : table_(entries, 1), mask_(entries - 1),
          histMask_((1u << history_bits) - 1)
    {
        darco_assert((entries & (entries - 1)) == 0,
                     "gshare table must be power-of-two");
        lookups_ = &stats.counter("bpred.lookups");
        mispredicts_ = &stats.counter("bpred.mispredicts");
    }

    bool
    predict(u32 pc) const
    {
        return table_[index(pc)] >= 2;
    }

    /** Update with the outcome; returns true on mispredict. */
    bool
    update(u32 pc, bool taken)
    {
        lookups_->inc();
        u32 i = index(pc);
        bool pred = table_[i] >= 2;
        if (taken && table_[i] < 3)
            ++table_[i];
        else if (!taken && table_[i] > 0)
            --table_[i];
        history_ = ((history_ << 1) | (taken ? 1 : 0)) & histMask_;
        bool miss = pred != taken;
        if (miss)
            mispredicts_->inc();
        return miss;
    }

  private:
    u32
    index(u32 pc) const
    {
        return ((pc >> 2) ^ history_) & mask_;
    }

    std::vector<u8> table_;
    u32 mask_;
    u32 histMask_;
    u32 history_ = 0;
    Counter *lookups_;
    Counter *mispredicts_;
};

/** Direct-mapped branch target buffer. */
class Btb
{
  public:
    Btb(u32 entries, StatGroup &stats)
        : entries_(entries), mask_(entries - 1)
    {
        darco_assert((entries & (entries - 1)) == 0,
                     "BTB must be power-of-two");
        hits_ = &stats.counter("btb.hits");
        misses_ = &stats.counter("btb.misses");
    }

    /** @return true and the target on hit. */
    bool
    lookup(u32 pc, u32 &target)
    {
        const Entry &e = entries_[(pc >> 2) & mask_];
        if (e.tag == pc) {
            hits_->inc();
            target = e.target;
            return true;
        }
        misses_->inc();
        return false;
    }

    void
    update(u32 pc, u32 target)
    {
        entries_[(pc >> 2) & mask_] = Entry{pc, target};
    }

  private:
    struct Entry
    {
        u32 tag = ~0u;
        u32 target = 0;
    };

    std::vector<Entry> entries_;
    u32 mask_;
    Counter *hits_;
    Counter *misses_;
};

} // namespace darco::timing

#endif // DARCO_TIMING_BPRED_HH
