#include "timing/core.hh"

#include <algorithm>

#include "common/schema.hh"

namespace darco::timing
{

using host::InstClass;
using host::InstRecord;
using host::noReg;

InOrderCore::InOrderCore(const Config &cfg, StatGroup &stats)
    : stats_(stats)
{
    issueWidth_ = u32(conf::getUint(cfg, "core.issue_width"));
    fetchWidth_ = u32(conf::getUint(cfg, "core.fetch_width"));
    iqSize_ = u32(conf::getUint(cfg, "core.iq_size"));
    frontendDepth_ = u32(conf::getUint(cfg, "core.frontend_depth"));
    latAlu_ = conf::getUint(cfg, "core.lat_alu");
    latMul_ = conf::getUint(cfg, "core.lat_mul");
    latDiv_ = conf::getUint(cfg, "core.lat_div");
    latFp_ = conf::getUint(cfg, "core.lat_fp");
    latFpDiv_ = conf::getUint(cfg, "core.lat_fpdiv");
    latBranch_ = conf::getUint(cfg, "core.lat_branch");

    u32 line = u32(conf::getUint(cfg, "cache.line"));
    l2_ = std::make_unique<Cache>(
        "l2", u32(conf::getUint(cfg, "l2.size")),
        u32(conf::getUint(cfg, "l2.assoc")), line,
        conf::getUint(cfg, "l2.lat"), conf::getUint(cfg, "mem.lat"), nullptr,
        stats);
    l1i_ = std::make_unique<Cache>(
        "l1i", u32(conf::getUint(cfg, "l1i.size")),
        u32(conf::getUint(cfg, "l1i.assoc")), line,
        conf::getUint(cfg, "l1i.lat"), 0, l2_.get(), stats);
    l1d_ = std::make_unique<Cache>(
        "l1d", u32(conf::getUint(cfg, "l1d.size")),
        u32(conf::getUint(cfg, "l1d.assoc")), line,
        conf::getUint(cfg, "l1d.lat"), 0, l2_.get(), stats);
    itlb_ = std::make_unique<Tlb>(
        "itlb", u32(conf::getUint(cfg, "tlb.l1_entries")),
        u32(conf::getUint(cfg, "tlb.l2_entries")),
        conf::getUint(cfg, "tlb.l2_lat"), conf::getUint(cfg, "tlb.walk_lat"),
        stats);
    dtlb_ = std::make_unique<Tlb>(
        "dtlb", u32(conf::getUint(cfg, "tlb.l1_entries")),
        u32(conf::getUint(cfg, "tlb.l2_entries")),
        conf::getUint(cfg, "tlb.l2_lat"), conf::getUint(cfg, "tlb.walk_lat"),
        stats);
    gshare_ = std::make_unique<Gshare>(
        u32(conf::getUint(cfg, "bpred.entries")),
        u32(conf::getUint(cfg, "bpred.history")), stats);
    btb_ = std::make_unique<Btb>(u32(conf::getUint(cfg, "btb.entries")),
                                 stats);
    prefetcher_ = std::make_unique<StridePrefetcher>(
        u32(conf::getUint(cfg, "prefetch.entries")),
        u32(conf::getUint(cfg, "prefetch.degree")),
        conf::getBool(cfg, "prefetch.enable") ? l1d_.get() : nullptr,
        stats);

    aluPool_.assign(conf::getUint(cfg, "core.num_alu"), 0);
    complexPool_.assign(conf::getUint(cfg, "core.num_complex"), 0);
    fpPool_.assign(conf::getUint(cfg, "core.num_fp"), 0);
    memPool_.assign(conf::getUint(cfg, "core.num_mem_ports"), 0);
    iqRing_.assign(iqSize_, 0);

    // Concurrent translator threads modeled for the overlap (the
    // async pipeline's virtual-time schedule uses the same knob).
    vthreads_ = u32(conf::getUint(cfg, "tol.async.vthreads"));
    if (vthreads_ == 0)
        vthreads_ = 1;

    cCycles_ = &stats.counter("core.cycles");
    cInsts_ = &stats.counter("core.instructions");
    cAluOps_ = &stats.counter("core.alu_ops");
    cMulOps_ = &stats.counter("core.mul_ops");
    cDivOps_ = &stats.counter("core.div_ops");
    cFpOps_ = &stats.counter("core.fp_ops");
    cMemOps_ = &stats.counter("core.mem_ops");
    cBranches_ = &stats.counter("core.branches");
    cFetchStallCycles_ = &stats.counter("core.fetch_stall_cycles");
    cTranslatorInsts_ = &stats.counter("core.translator_insts");
}

void
InOrderCore::recordConcurrent(u64 host_insts)
{
    translatorInsts_ += host_insts;
    cTranslatorInsts_->inc(host_insts);
    cCycles_->set(cycles());
}

Cycle
InOrderCore::reserveFu(std::vector<Cycle> &pool, Cycle when, Cycle busy)
{
    // Earliest-available unit; in-order issue waits for it.
    std::size_t best = 0;
    for (std::size_t u = 1; u < pool.size(); ++u) {
        if (pool[u] < pool[best])
            best = u;
    }
    Cycle start = std::max(when, pool[best]);
    pool[best] = start + busy;
    return start;
}

void
InOrderCore::record(const InstRecord &rec)
{
    ++instructions_;
    cInsts_->inc();

    // ---- front end -----------------------------------------------------
    u64 line = rec.pc / l1i_->lineBytes();
    if (line != lastFetchLine_) {
        lastFetchLine_ = line;
        Cycle lat = itlb_->access(rec.pc) + l1i_->access(rec.pc, false);
        Cycle ready = fetchCycle_ + lat;
        if (lat > 1)
            cFetchStallCycles_->inc(lat - 1);
        lineReady_ = std::max(lineReady_, ready);
    }
    if (fetchedThisCycle_ >= fetchWidth_) {
        fetchCycle_ += 1;
        fetchedThisCycle_ = 0;
    }
    fetchCycle_ = std::max(fetchCycle_, lineReady_);
    ++fetchedThisCycle_;

    // Enter the instruction queue (decode pipeline), bounded by IQ
    // occupancy: the slot of the instruction iq_size back must have
    // issued before we can enter.
    Cycle enter = fetchCycle_ + frontendDepth_;
    enter = std::max(enter, iqRing_[iqHead_]);

    // ---- back end: in-order issue --------------------------------------
    Cycle ready = enter;
    if (rec.src1 != noReg)
        ready = std::max(ready, regReady_[rec.src1]);
    if (rec.src2 != noReg)
        ready = std::max(ready, regReady_[rec.src2]);
    // In-order constraint.
    ready = std::max(ready, issueCycle_);

    Cycle lat = latAlu_;
    Cycle issue = ready;
    switch (rec.cls) {
      case InstClass::IntMul:
        issue = reserveFu(complexPool_, ready, 1);
        lat = latMul_;
        cMulOps_->inc();
        break;
      case InstClass::IntDiv:
        issue = reserveFu(complexPool_, ready, latDiv_); // unpipelined
        lat = latDiv_;
        cDivOps_->inc();
        break;
      case InstClass::FpAlu:
      case InstClass::FpMul:
        issue = reserveFu(fpPool_, ready, 1);
        lat = latFp_;
        cFpOps_->inc();
        break;
      case InstClass::FpDiv:
        issue = reserveFu(fpPool_, ready, latFpDiv_);
        lat = latFpDiv_;
        cFpOps_->inc();
        break;
      case InstClass::Load:
      case InstClass::Store: {
        issue = reserveFu(memPool_, ready, 1);
        Cycle mlat = dtlb_->access(rec.memAddr) +
                     l1d_->access(rec.memAddr,
                                  rec.cls == InstClass::Store);
        prefetcher_->observe(rec.pc, rec.memAddr);
        lat = mlat;
        cMemOps_->inc();
        break;
      }
      case InstClass::Branch:
      case InstClass::Jump: {
        issue = reserveFu(aluPool_, ready, 1);
        lat = latBranch_;
        cBranches_->inc();
        bool mispredict = false;
        if (rec.cls == InstClass::Branch) {
            mispredict = gshare_->update(rec.pc, rec.taken);
        }
        if (rec.taken) {
            u32 predicted;
            bool btb_hit = btb_->lookup(rec.pc, predicted);
            if (!btb_hit || predicted != rec.nextPc)
                mispredict = true;
            btb_->update(rec.pc, rec.nextPc);
        }
        if (mispredict) {
            // Redirect: the front end restarts after resolution.
            Cycle resolve = issue + lat;
            fetchCycle_ = std::max(fetchCycle_, resolve + 1);
            fetchedThisCycle_ = 0;
            lineReady_ = fetchCycle_;
            lastFetchLine_ = ~0ull;
        }
        break;
      }
      default:
        issue = reserveFu(aluPool_, ready, 1);
        lat = latAlu_;
        cAluOps_->inc();
        break;
    }

    // Issue-width accounting.
    if (issue == issueCycle_) {
        if (++issuedThisCycle_ > issueWidth_) {
            issue += 1;
            issuedThisCycle_ = 1;
        }
    } else {
        issuedThisCycle_ = 1;
    }
    issueCycle_ = issue;

    if (rec.dst != noReg)
        regReady_[rec.dst] = issue + lat;
    lastRetire_ = std::max(lastRetire_, issue + lat);

    // IQ slot recycles at issue.
    iqRing_[iqHead_] = issue;
    iqHead_ = (iqHead_ + 1) % iqSize_;

    cCycles_->set(cycles());
}

Cycle
InOrderCore::cycles() const
{
    // Translator threads run on spare hardware at ~1 IPC each; the
    // run ends when both the main core and the translators finish.
    Cycle translator = (translatorInsts_ + vthreads_ - 1) / vthreads_;
    return std::max(lastRetire_, translator);
}

} // namespace darco::timing
