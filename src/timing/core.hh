/**
 * @file
 * The DARCO timing simulator (paper Section V-C): a parameterized
 * in-order superscalar core with independent front- and back-ends
 * separated by an instruction queue.
 *
 *  - Front-end: fetches through ITLB + L1I, predicts with BTB +
 *    gshare, decodes into the instruction queue.
 *  - Back-end: issues in order up to issue_width per cycle, tracking
 *    dependencies and resource availability with scoreboarding;
 *    simple/complex/FP("vector") units with configurable counts and
 *    latencies; loads/stores go through DTLB + L1D + L2 with a stride
 *    prefetcher.
 *
 * The model is trace-driven from the co-designed component's dynamic
 * host instruction stream (TraceSink), per the paper's architecture.
 *
 * Config keys (defaults):
 *   core.issue_width (2), core.fetch_width (4), core.iq_size (16),
 *   core.frontend_depth (4), core.mispredict_penalty (+frontend),
 *   core.num_alu (2), core.num_complex (1), core.num_fp (1),
 *   core.num_mem_ports (1),
 *   core.lat_alu (1), core.lat_mul (3), core.lat_div (12),
 *   core.lat_fp (4), core.lat_fpdiv (12), core.lat_branch (1),
 *   l1i.size (32768), l1i.assoc (4), l1i.lat (1),
 *   l1d.size (32768), l1d.assoc (4), l1d.lat (2),
 *   l2.size (262144), l2.assoc (8), l2.lat (12),
 *   cache.line (64), mem.lat (120),
 *   tlb.l1_entries (32), tlb.l2_entries (256), tlb.l2_lat (4),
 *   tlb.walk_lat (40),
 *   bpred.entries (4096), bpred.history (8), btb.entries (1024),
 *   prefetch.entries (64), prefetch.degree (2)
 */

#ifndef DARCO_TIMING_CORE_HH
#define DARCO_TIMING_CORE_HH

#include <array>
#include <memory>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "host/trace.hh"
#include "timing/bpred.hh"
#include "timing/cache.hh"
#include "timing/prefetch.hh"
#include "timing/tlb.hh"

namespace darco::timing
{

/** In-order superscalar core consuming the host dynamic stream. */
class InOrderCore : public host::TraceSink
{
  public:
    InOrderCore(const Config &cfg, StatGroup &stats);

    // TraceSink
    void record(const host::InstRecord &rec) override;
    void recordConcurrent(u64 host_insts) override;

    /**
     * Total cycles including pipeline drain. Concurrent-translator
     * work is overlapped, not serialized: the modeled translator
     * threads (`tol.async.vthreads`) retire roughly one instruction
     * per cycle each, so the run takes
     * max(main-core cycles, translator insts / vthreads).
     */
    Cycle cycles() const;
    u64 instructions() const { return instructions_; }
    double ipc() const
    {
        Cycle c = cycles();
        return c ? double(instructions_) / double(c) : 0.0;
    }

    StatGroup &stats() { return stats_; }

  private:
    /** Reserve the earliest unit of a pool at or after `when`. */
    Cycle reserveFu(std::vector<Cycle> &pool, Cycle when, Cycle busy);

    StatGroup &stats_;

    // Parameters.
    u32 issueWidth_, fetchWidth_, iqSize_, frontendDepth_;
    Cycle latAlu_, latMul_, latDiv_, latFp_, latFpDiv_, latBranch_;

    // Structures.
    std::unique_ptr<Cache> l2_, l1i_, l1d_;
    std::unique_ptr<Tlb> itlb_, dtlb_;
    std::unique_ptr<Gshare> gshare_;
    std::unique_ptr<Btb> btb_;
    std::unique_ptr<StridePrefetcher> prefetcher_;

    // Front-end state.
    Cycle fetchCycle_ = 0;
    u32 fetchedThisCycle_ = 0;
    u64 lastFetchLine_ = ~0ull;
    Cycle lineReady_ = 0;

    // Instruction-queue occupancy: issue cycles of the last iq_size
    // instructions (entry blocks until the oldest leaves).
    std::vector<Cycle> iqRing_;
    std::size_t iqHead_ = 0;

    // Back-end state.
    Cycle issueCycle_ = 0;
    u32 issuedThisCycle_ = 0;
    std::array<Cycle, 128> regReady_{};
    std::vector<Cycle> aluPool_, complexPool_, fpPool_, memPool_;
    Cycle lastRetire_ = 0;

    u64 instructions_ = 0;

    // Concurrent-translator overlap model.
    u64 translatorInsts_ = 0;
    u32 vthreads_ = 1;

    // Event counters for the power model.
    Counter *cCycles_;
    Counter *cInsts_;
    Counter *cAluOps_;
    Counter *cMulOps_;
    Counter *cDivOps_;
    Counter *cFpOps_;
    Counter *cMemOps_;
    Counter *cBranches_;
    Counter *cFetchStallCycles_;
    Counter *cTranslatorInsts_;
};

} // namespace darco::timing

#endif // DARCO_TIMING_CORE_HH
