/**
 * @file
 * Per-PC stride data prefetcher (paper Section V-C: "a stride data
 * prefetcher"). A small table tracks the last address and stride for
 * each load/store pc; two consecutive matching strides arm the entry,
 * and further accesses prefetch `degree` lines ahead.
 */

#ifndef DARCO_TIMING_PREFETCH_HH
#define DARCO_TIMING_PREFETCH_HH

#include <vector>

#include "common/stats.hh"
#include "timing/cache.hh"

namespace darco::timing
{

/** Stride prefetcher in front of the data cache. */
class StridePrefetcher
{
  public:
    StridePrefetcher(u32 entries, u32 degree, Cache *target,
                     StatGroup &stats)
        : table_(entries), mask_(entries - 1), degree_(degree),
          target_(target)
    {
        issued_ = &stats.counter("prefetch.issued");
    }

    void
    observe(u32 pc, u32 addr)
    {
        Entry &e = table_[(pc >> 2) & mask_];
        if (e.tag != pc) {
            e = Entry{};
            e.tag = pc;
            e.lastAddr = addr;
            return;
        }
        s32 stride = s32(addr) - s32(e.lastAddr);
        if (stride != 0 && stride == e.stride) {
            if (e.confidence < 3)
                ++e.confidence;
        } else if (e.confidence > 0) {
            --e.confidence;
        }
        e.stride = stride;
        e.lastAddr = addr;
        if (e.confidence >= 2 && stride != 0 && target_) {
            for (u32 d = 1; d <= degree_; ++d) {
                target_->prefetch(u32(s32(addr) + stride * s32(d)));
                issued_->inc();
            }
        }
    }

  private:
    struct Entry
    {
        u32 tag = ~0u;
        u32 lastAddr = 0;
        s32 stride = 0;
        u8 confidence = 0;
    };

    std::vector<Entry> table_;
    u32 mask_;
    u32 degree_;
    Cache *target_;
    Counter *issued_;
};

} // namespace darco::timing

#endif // DARCO_TIMING_PREFETCH_HH
