/**
 * @file
 * Symbolic evaluation of a guest region's *unoptimized* IR (verify
 * side).
 *
 * The reference behavior a translation must match is defined by the
 * guest GISA semantics over the recorded construction path. Rather
 * than duplicating the frontend's per-opcode translation shapes, the
 * verifier rebuilds the region from its recipe with Frontend::build
 * (deterministic in the recorded inputs) and evaluates the *fresh,
 * unoptimized* IR symbolically. The per-opcode agreement sweep in
 * tests/test_verify.cc separately establishes that this IR evaluation
 * agrees with the concrete execInst interpreter for every GISA
 * instruction form — chaining the two gives: host region ≡ fresh IR ≡
 * reference semantics, with every optimizer/scheduler/codegen pass
 * inside the proof obligation.
 *
 * The evaluation produces, per region exit, the symbolic
 * architectural state (all IR locations + guest memory) plus the
 * ordered guard prefix (asserts, divs) and the side-exit condition
 * ladder the host path record is matched against.
 */

#ifndef DARCO_VERIFY_SYMGUEST_HH
#define DARCO_VERIFY_SYMGUEST_HH

#include <array>
#include <string>
#include <vector>

#include "tol/ir.hh"
#include "verify/expr.hh"
#include "verify/symhost.hh"

namespace darco::verify
{

/** Symbolic architectural state at one region exit. */
struct GuestExit
{
    /** Post-exit value of every IR location (live-outs applied,
     *  untouched locations keep their entry value). */
    std::array<ExprId, tol::numLocs> outs{};
    ExprId mem = nilExpr;       //!< guest memory at the exit point
    ExprId cond = nilExpr;      //!< side-exit condition (nil = final)
    bool condInvert = false;    //!< taken when cond == 0
    s32 traversalPos = -1;      //!< ordinal among cond-exit items
    u32 assertPrefix = 0;       //!< asserts before this exit
    u32 divPrefix = 0;          //!< divs before this exit
    ExprId targetVal = nilExpr; //!< Indirect dynamic target
};

/** The guest side of one equivalence proof. */
struct GuestSummary
{
    /** Indexed like Region::exits (and the registry exit table). */
    std::vector<GuestExit> exits;
    /** Cond-exit items in traversal order: Region::exits indices. */
    std::vector<u32> traversal;
    /** All asserts / divs in program order. */
    std::vector<AssertExec> asserts;
    std::vector<DivExec> divs;
    /** Nonempty: the IR used a shape the evaluator cannot model. */
    std::string error;
};

/** Evaluate `region` (typically freshly rebuilt and unoptimized). */
GuestSummary symEvalGuest(Ctx &ctx, const tol::Region &region);

} // namespace darco::verify

#endif // DARCO_VERIFY_SYMGUEST_HH
