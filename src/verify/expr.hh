/**
 * @file
 * Bitvector expression IR for the translation verifier (darco::verify).
 *
 * Hash-consed DAG of 32-bit integer terms, opaque double-precision FP
 * terms, and memory states (cons-lists of byte-ranged stores). Smart
 * constructors normalize aggressively — constant folding, commutative
 * operand ordering, algebraic identities, affine address folding —
 * so that two computations that the TOL pipeline derives from the
 * same IR value collapse to the *same node id*. Structural equality
 * of node ids is the verifier's primary proof rule; a substitution /
 * bounded-exhaustive-concretization fallback covers the residue.
 * There is deliberately no external SMT dependency.
 *
 * Soundness notes:
 *  - "Proved" is returned only for structural equality, equality
 *    under fact substitution, or exhaustive enumeration of the joint
 *    domain of all support variables (all must be declared
 *    single-bit, and the product must fit the configured budget).
 *  - Random sampling can only *refute* (producing a witness); it
 *    never upgrades to Proved. An undecided comparison is Unknown.
 *  - Memory disjointness is decided per root: two accesses off the
 *    same symbolic base with non-overlapping offset ranges are
 *    disjoint; accesses off different symbolic bases are only
 *    disjoint when a declared alias-guard fact says so (the runtime
 *    SBC/SWC/FSTC checks establish exactly those facts).
 */

#ifndef DARCO_VERIFY_EXPR_HH
#define DARCO_VERIFY_EXPR_HH

#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace darco::verify
{

using ExprId = u32;
constexpr ExprId nilExpr = ~0u;

/** Expression node operations. */
enum class XOp : u8
{
    // 32-bit integer sort.
    ConstI, //!< imm = value
    VarI,   //!< imm = variable index
    Add, Sub, Mul, MulH, Div, Rem,
    And, Or, Xor,
    Shl, Shr, Sar,       //!< amount masked & 31
    Eq, Ult, Slt,        //!< 0/1-valued comparisons
    // Double sort (opaque; folded with the exact hemu semantics).
    ConstF, //!< fimm = value
    VarF,   //!< imm = variable index
    FAdd, FSub, FMul, FDiv, FSqrt, FAbs, FNeg, FRnd,
    FCvtWD, //!< int -> double
    // Cross-sort.
    FCvtZW,        //!< double -> int (guest gcvtfi)
    FEq, FLt, FLe, //!< double compare -> 0/1
    // Memory states.
    MemInit, //!< the pre-region guest memory
    Store,   //!< a=mem, b=base, c=value; imm packs (off, size, isF)
    ReadI,   //!< a=mem, b=base; imm packs (off, size); zero-extended
    ReadF,   //!< a=mem, b=base; imm packs (off, 8); 8 bytes -> double
};

/** One DAG node. */
struct Node
{
    XOp op = XOp::ConstI;
    ExprId a = nilExpr;
    ExprId b = nilExpr;
    ExprId c = nilExpr;
    s64 imm = 0;
    double fimm = 0.0;
};

/** A declared leaf variable. */
struct VarInfo
{
    std::string name;
    bool isF = false;
    bool bit = false; //!< domain is {0, 1} (guest flag)
};

/** One path fact: the 0/1-valued expression `cond` equals `truth`. */
struct Fact
{
    ExprId cond = nilExpr;
    bool truth = true;
};

/** Tri-state comparison outcome. */
enum class Tri : u8
{
    Proved,
    Refuted,
    Unknown,
};

/**
 * A concrete assignment refuting an obligation: initial guest state
 * values plus the memory bytes the evaluation touched.
 */
struct Witness
{
    std::vector<std::pair<std::string, u32>> ints;
    std::vector<std::pair<std::string, double>> fps;
    std::vector<std::pair<u64, u8>> memBytes; //!< (address, byte)
    std::string diff; //!< human-readable diverging values
    std::string render() const;
};

/**
 * Concrete evaluation environment. Variables resolve through the
 * assignment maps; untouched memory bytes resolve through `byteAt`
 * (deterministic pseudo-random by default, or a caller-provided view
 * of real guest memory for the agreement sweep).
 */
struct Env
{
    Env();

    std::unordered_map<u32, u32> ivals;
    std::unordered_map<u32, double> fvals;
    std::function<u8(u64)> byteAt; //!< initial-memory byte source
    u64 seed = 0;                  //!< default byteAt stream
    u64 stamp = 0;                 //!< unique id (eval memo validity)

    u8 initialByte(u64 addr) const;
};

/** The hash-consing context plus per-unit assumption state. */
class Ctx
{
  public:
    Ctx();

    // --- leaves ---------------------------------------------------------
    ExprId constI(u32 v);
    ExprId constF(double v);
    ExprId varI(const std::string &name, bool bit = false);
    ExprId varF(const std::string &name);

    // --- integer constructors (normalizing) -----------------------------
    ExprId add(ExprId a, ExprId b);
    ExprId sub(ExprId a, ExprId b);
    ExprId mul(ExprId a, ExprId b);
    ExprId mulh(ExprId a, ExprId b);
    ExprId div(ExprId a, ExprId b);
    ExprId rem(ExprId a, ExprId b);
    ExprId and_(ExprId a, ExprId b);
    ExprId or_(ExprId a, ExprId b);
    ExprId xor_(ExprId a, ExprId b);
    ExprId shl(ExprId a, ExprId b);
    ExprId shr(ExprId a, ExprId b);
    ExprId sar(ExprId a, ExprId b);
    ExprId eq(ExprId a, ExprId b);
    ExprId ne(ExprId a, ExprId b) { return xor_(eq(a, b), one()); }
    ExprId ult(ExprId a, ExprId b);
    ExprId uge(ExprId a, ExprId b) { return xor_(ult(a, b), one()); }
    ExprId slt(ExprId a, ExprId b);
    ExprId sge(ExprId a, ExprId b) { return xor_(slt(a, b), one()); }

    // --- FP constructors -------------------------------------------------
    ExprId fbin(XOp op, ExprId a, ExprId b); //!< FAdd/FSub/FMul/FDiv
    ExprId fun(XOp op, ExprId a); //!< FSqrt/FAbs/FNeg/FRnd/FCvtWD/FCvtZW
    ExprId fcmp(XOp op, ExprId a, ExprId b); //!< FEq/FLt/FLe

    // --- memory ----------------------------------------------------------
    ExprId memInit();
    /** Affine view of an address expression: (root, byte offset). */
    std::pair<ExprId, u32> stripAddr(ExprId addr);
    ExprId store(ExprId mem, ExprId base, u32 off, u8 size, bool is_f,
                 ExprId val);
    /** Zero-extended little-endian read of `size` in {1,2,4}. */
    ExprId readI(ExprId mem, ExprId base, u32 off, u8 size);
    /** 8-byte read reinterpreted as a double. */
    ExprId readF(ExprId mem, ExprId base, u32 off);

    /** Declare an alias-guard fact: [a] and [b] byte ranges disjoint. */
    void assumeDisjoint(ExprId root_a, u32 off_a, u8 size_a,
                        ExprId root_b, u32 off_b, u8 size_b);
    /** Do the two accesses *provably* overlap (same symbolic root,
     *  intersecting byte ranges)? Assuming such a pair disjoint would
     *  be a contradiction — the assuming path is infeasible. */
    bool provablyOverlapping(ExprId root_a, u32 off_a, u8 size_a,
                             ExprId root_b, u32 off_b, u8 size_b) const;

    /** One store of a memory-state chain, in program order. */
    struct WriteRec
    {
        ExprId base; //!< stripAddr root
        u32 off;
        u8 size;
        bool isF;
        ExprId val;
    };
    /** The full store chain of `mem` back to MemInit, program order. */
    std::vector<WriteRec> writeList(ExprId mem) const;

    // --- inspection -------------------------------------------------------
    const Node &node(ExprId id) const { return nodes_[id]; }
    const VarInfo &var(u32 idx) const { return vars_[idx]; }
    std::size_t numVars() const { return vars_.size(); }
    ExprId zero() { return constI(0); }
    ExprId one() { return constI(1); }
    bool isConstI(ExprId id, u32 &v) const;
    /** Unpack a Store/ReadI imm. */
    static u32 accOff(s64 imm) { return u32(u64(imm) >> 8); }
    static u8 accSize(s64 imm) { return u8((imm >> 1) & 0x7f); }
    static bool accIsF(s64 imm) { return (imm & 1) != 0; }

    /** Render an expression (diagnostics, witness dumps). */
    std::string render(ExprId id) const;

    // --- known bits / intervals ------------------------------------------
    struct KnownBits
    {
        u32 zeros = 0; //!< bits known to be 0
        u32 ones = 0;  //!< bits known to be 1
    };
    KnownBits knownBits(ExprId id);
    /** Unsigned interval [lo, hi]; conservative. */
    std::pair<u32, u32> range(ExprId id);

    // --- concrete evaluation ----------------------------------------------
    u32 evalI(ExprId id, const Env &env);
    double evalF(ExprId id, const Env &env);

    // --- proving ----------------------------------------------------------
    /** Concretization budget (max joint enumeration size). */
    u32 concretizeBudget = 4096;
    /** Refutation sampling attempts. */
    u32 sampleTries = 128;

    /**
     * Is `a == b` under `facts`? Proved only by structural equality,
     * fact substitution, or exhaustive bit-domain enumeration;
     * Refuted comes with a minimized witness.
     */
    Tri proveEqI(ExprId a, ExprId b, const std::vector<Fact> &facts,
                 Witness *w);
    Tri proveEqF(ExprId a, ExprId b, const std::vector<Fact> &facts,
                 Witness *w);

    /** Do all facts hold under `env`? */
    bool factsHold(const std::vector<Fact> &facts, const Env &env);

    /** Support variables (indices into the var table) of `id`;
     *  `has_mem` is set when any memory read/state is reachable. */
    void support(ExprId id, std::vector<u32> &int_vars,
                 std::vector<u32> &fp_vars, bool &has_mem);

    /** Forget per-unit state (facts caches, eval memos) but keep the
     *  node table (it is append-only and shareable across units). */
    void resetAssumptions();

  private:
    ExprId intern(Node n);
    ExprId mkBin(XOp op, ExprId a, ExprId b);
    bool provablyDisjoint(ExprId root_a, u32 off_a, u8 size_a,
                          ExprId root_b, u32 off_b, u8 size_b) const;
    ExprId substitute(ExprId id,
                      const std::unordered_map<u32, u32> &int_env,
                      std::unordered_map<ExprId, ExprId> &memo);
    Tri enumerateOrSample(ExprId a, ExprId b,
                          const std::vector<Fact> &facts, bool fp_cmp,
                          Witness *w);
    void buildWitness(const Env &env, ExprId a, ExprId b, bool fp_cmp,
                      const std::vector<Fact> &facts, Witness *w);
    const std::map<u64, u8> &memBytes(ExprId mem, const Env &env);

    struct NodeHash
    {
        std::size_t operator()(const Node &n) const;
    };
    struct NodeEq
    {
        bool operator()(const Node &x, const Node &y) const;
    };

    std::vector<Node> nodes_;
    std::unordered_map<Node, ExprId, NodeHash, NodeEq> dedup_;
    std::vector<VarInfo> vars_;
    std::unordered_map<std::string, u32> varIdx_;
    ExprId memInit_ = nilExpr;

    /** One declared-disjoint access pair (matched symmetrically and
     *  exactly — no hashing, soundness depends on exact matches). */
    struct DisjPair
    {
        ExprId ra; u32 oa; u8 sa;
        ExprId rb; u32 ob; u8 sb;
    };
    std::vector<DisjPair> disjoint_;
    std::unordered_map<ExprId, KnownBits> kbMemo_;
    std::unordered_map<ExprId, std::pair<u32, u32>> rangeMemo_;

    // Per-eval memos (valid for evalStamp_ only).
    std::unordered_map<ExprId, u32> evalIMemo_;
    std::unordered_map<ExprId, double> evalFMemo_;
    std::unordered_map<ExprId, std::map<u64, u8>> memMemo_;
    u64 evalStamp_ = ~0ull;
};

} // namespace darco::verify

#endif // DARCO_VERIFY_EXPR_HH
