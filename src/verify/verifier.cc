#include "verify/verifier.hh"

#include <sstream>

#include "verify/locs.hh"
#include "verify/symguest.hh"
#include "verify/symhost.hh"

namespace darco::verify
{

namespace
{

using tol::RegionMode;

/** One obligation outcome folded into the unit verdict. */
struct Oblig
{
    Tri tri = Tri::Proved;
    std::string what;
    Witness witness;
};

class UnitVerifier
{
  public:
    UnitVerifier(const VerifyUnit &unit, const VerifyOptions &opts)
        : unit_(unit), opts_(opts)
    {
        ctx_.concretizeBudget = opts.concretizeBudget;
        ctx_.sampleTries = opts.sampleTries;
    }

    VerifyResult
    run()
    {
        VerifyResult res;
        res.entry = unit_.entry;
        res.mode = unit_.mode;
        res.tid = unit_.tid;

        // Host first: alias-guard pass facts recorded while walking
        // the paths must be visible to the guest chain walk.
        SymHostResult host = symExecHost(ctx_, unit_.words,
                                         unit_.fpPool, opts_.pathLimit);
        if (!host.error.empty()) {
            res.verdict = Verdict::Unknown;
            res.detail = "host enumeration: " + host.error;
            return res;
        }

        tol::Frontend fe(tol::FrontendOptions{unit_.fuseFlags});
        tol::Region region = fe.build(unit_.entry, unit_.mode,
                                      unit_.path, unit_.trip,
                                      unit_.end);
        GuestSummary guest = symEvalGuest(ctx_, region);
        if (!guest.error.empty()) {
            res.verdict = Verdict::Unknown;
            res.detail = "guest evaluation: " + guest.error;
            return res;
        }

        // Captured exit metadata must match the rebuilt region's —
        // the registry descriptors steer post-exit dispatch and
        // retirement accounting.
        if (unit_.exits.size() != region.exits.size()) {
            res.verdict = Verdict::Refuted;
            res.detail = "exit table size drift";
            return res;
        }
        for (std::size_t i = 0; i < unit_.exits.size(); ++i) {
            const tol::ExitDesc &d = unit_.exits[i];
            const tol::IRExit &x = region.exits[i];
            if (d.kind != x.kind || d.target != x.target ||
                d.instsRetired != x.instsRetired ||
                d.bbsRetired != x.bbsRetired) {
                res.verdict = Verdict::Refuted;
                res.detail =
                    "exit descriptor drift at exit " + std::to_string(i);
                return res;
            }
        }

        Oblig worst;
        for (const HostPath &p : host.paths) {
            Oblig o = checkPath(p, guest, region);
            if (o.tri == Tri::Refuted) {
                worst = std::move(o);
                break;
            }
            if (o.tri == Tri::Unknown && worst.tri == Tri::Proved)
                worst = std::move(o);
        }
        switch (worst.tri) {
          case Tri::Proved:
            res.verdict = Verdict::Proved;
            break;
          case Tri::Refuted:
            res.verdict = Verdict::Refuted;
            res.detail = worst.what;
            res.witness = worst.witness.render();
            break;
          case Tri::Unknown:
            res.verdict = Verdict::Unknown;
            res.detail = worst.what;
            break;
        }
        return res;
    }

  private:
    Oblig
    refuted(std::string what, Witness w = Witness())
    {
        return {Tri::Refuted, std::move(what), std::move(w)};
    }

    Oblig
    unknown(std::string what)
    {
        return {Tri::Unknown, std::move(what), {}};
    }

    /** Lift a proveEq outcome into an obligation result. */
    bool
    need(Oblig &o, Tri t, const std::string &what, Witness &&w)
    {
        if (t == Tri::Proved)
            return true;
        o.tri = t;
        o.what = what;
        o.witness = std::move(w);
        return false;
    }

    Oblig
    checkPath(const HostPath &p, const GuestSummary &guest,
              const tol::Region &region)
    {
        Oblig o;
        if (!p.structuralError.empty())
            return refuted("structural: " + p.structuralError);

        // The promote path: the profiling preamble hit its threshold,
        // committed nothing, and exited before any guest work. It
        // must preserve the entire pre-region state.
        if (unit_.profile && !p.indirect &&
            p.exitId == unit_.promoteExitId)
            return checkPromotePath(p);

        u32 ordinal = p.exitId - unit_.exitIdBase;
        if (ordinal >= region.exits.size())
            return refuted("exit id " + std::to_string(p.exitId) +
                           " out of range");
        const GuestExit &ge = guest.exits[ordinal];
        const tol::IRExit &gx = region.exits[ordinal];

        // --- branch ladder ---------------------------------------
        u32 pre = unit_.profile ? 1u : 0u;
        u32 ladder = ge.traversalPos >= 0 ? u32(ge.traversalPos) + 1
                                          : u32(guest.traversal.size());
        if (ge.traversalPos < 0 && u32(region.finalExit) != ordinal)
            return refuted("host reached exit " +
                           std::to_string(ordinal) +
                           " with no matching cond exit");
        if (p.branches.size() != pre + ladder)
            return refuted(
                "branch ladder length " +
                std::to_string(p.branches.size()) + " != expected " +
                std::to_string(pre + ladder) + " at exit " +
                std::to_string(ordinal));
        if (pre && !p.branches[0].taken)
            return refuted("promotion preamble fell through without "
                           "taking the promote exit");
        for (u32 j = 0; j < ladder; ++j) {
            const BranchExec &ev = p.branches[pre + j];
            const GuestExit &gj = guest.exits[guest.traversal[j]];
            bool expect_taken =
                ge.traversalPos >= 0 && j == u32(ge.traversalPos);
            if (ev.taken != expect_taken)
                return refuted("branch outcome mismatch at cond exit " +
                               std::to_string(j));
            ExprId want = gj.condInvert
                              ? ctx_.eq(gj.cond, ctx_.zero())
                              : ctx_.ne(gj.cond, ctx_.zero());
            Witness w;
            Tri t = ctx_.proveEqI(ev.cond, want, p.facts, &w);
            if (!need(o, t,
                      "cond-exit condition mismatch at cond exit " +
                          std::to_string(j) + " (exit " +
                          std::to_string(guest.traversal[j]) +
                          "): host " + ctx_.render(ev.cond) +
                          " vs guest " + ctx_.render(want),
                      std::move(w)))
                return o;
        }

        // --- assert pairing --------------------------------------
        for (u32 gi = 0; gi < ge.assertPrefix; ++gi) {
            const AssertExec &ga = guest.asserts[gi];
            const AssertExec *match = nullptr;
            for (const AssertExec &ha : p.asserts) {
                if (ha.assertId == ga.assertId) {
                    match = &ha;
                    break;
                }
            }
            if (!match) {
                // Witness: a concrete state that fires the missing
                // guard (refute "the guard condition always passes").
                ExprId pass = ga.expectNonZero
                                  ? ctx_.ne(ga.cond, ctx_.zero())
                                  : ctx_.eq(ga.cond, ctx_.zero());
                Witness w;
                Tri t = ctx_.proveEqI(pass, ctx_.constI(1), p.facts,
                                      &w);
                if (t == Tri::Proved)
                    continue; // provably never fires; drop is harmless
                return refuted("guard dropped: assert id " +
                                   std::to_string(ga.assertId) +
                                   " not enforced on host path to "
                                   "exit " +
                                   std::to_string(ordinal),
                               std::move(w));
            }
            if (match->expectNonZero != ga.expectNonZero)
                return refuted("assert polarity flipped: id " +
                               std::to_string(ga.assertId));
            Witness w;
            Tri t = ctx_.proveEqI(match->cond, ga.cond, p.facts, &w);
            if (!need(o, t,
                      "assert condition mismatch: id " +
                          std::to_string(ga.assertId),
                      std::move(w)))
                return o;
        }

        // --- div fault equivalence -------------------------------
        for (u32 gi = 0; gi < ge.divPrefix; ++gi) {
            const DivExec &gd = guest.divs[gi];
            bool found = false;
            for (const DivExec &hd : p.divs) {
                if (hd.a == gd.a && hd.b == gd.b) {
                    found = true;
                    break;
                }
                if (ctx_.proveEqI(hd.a, gd.a, p.facts, nullptr) ==
                        Tri::Proved &&
                    ctx_.proveEqI(hd.b, gd.b, p.facts, nullptr) ==
                        Tri::Proved) {
                    found = true;
                    break;
                }
            }
            if (found)
                continue;
            // A missing host div is fine iff the guest div provably
            // cannot fault — the condition foldConstants (constant
            // operands) and a scheduler sink past an exit both reduce
            // to.
            ExprId bad = ctx_.or_(
                ctx_.eq(gd.b, ctx_.zero()),
                ctx_.and_(ctx_.eq(gd.a, ctx_.constI(0x80000000u)),
                          ctx_.eq(gd.b, ctx_.constI(0xffffffffu))));
            if (ctx_.proveEqI(bad, ctx_.zero(), p.facts, nullptr) ==
                Tri::Proved)
                continue;
            return refuted("guest div without a host fault check at "
                           "exit " +
                           std::to_string(ordinal) + ": " +
                           ctx_.render(gd.a) + " / " +
                           ctx_.render(gd.b));
        }

        // --- architectural state ---------------------------------
        for (u16 loc = 0; loc < tol::numLocs; ++loc) {
            ExprId hv = hostLocValue(p, loc);
            ExprId gv = ge.outs[loc];
            Witness w;
            Tri t = tol::locIsFp(loc)
                        ? ctx_.proveEqF(hv, gv, p.facts, &w)
                        : ctx_.proveEqI(hv, gv, p.facts, &w);
            if (!need(o, t,
                      "location " + locName(loc) + " diverges at exit " +
                          std::to_string(ordinal) + ": host " +
                          ctx_.render(hv) + " vs guest " +
                          ctx_.render(gv),
                      std::move(w)))
                return o;
        }

        // --- memory ----------------------------------------------
        Oblig mo = checkMemory(p, ge, ordinal);
        if (mo.tri != Tri::Proved)
            return mo;

        // --- control transfer ------------------------------------
        if (p.indirect) {
            if (gx.kind != tol::ExitKind::Indirect)
                return refuted("IBTC at a non-indirect exit " +
                               std::to_string(ordinal));
            if (ge.targetVal == nilExpr)
                return refuted("indirect exit without a target value");
            Witness w;
            Tri t = ctx_.proveEqI(p.ibtcTarget, ge.targetVal, p.facts,
                                  &w);
            if (!need(o, t,
                      "indirect target diverges at exit " +
                          std::to_string(ordinal),
                      std::move(w)))
                return o;
        } else if (gx.kind == tol::ExitKind::Indirect) {
            return refuted("indirect exit " + std::to_string(ordinal) +
                           " left through EXITB");
        }
        return o;
    }

    Oblig
    checkPromotePath(const HostPath &p)
    {
        Oblig o;
        for (u16 loc = 0; loc < tol::numLocs; ++loc) {
            ExprId hv = hostLocValue(p, loc);
            ExprId iv = locVar(ctx_, loc);
            Witness w;
            Tri t = tol::locIsFp(loc)
                        ? ctx_.proveEqF(hv, iv, p.facts, &w)
                        : ctx_.proveEqI(hv, iv, p.facts, &w);
            if (!need(o, t,
                      "promote path clobbers " + locName(loc),
                      std::move(w)))
                return o;
        }
        if (!ctx_.writeList(p.mem).empty())
            return refuted("promote path stores to guest memory");
        return o;
    }

    ExprId
    hostLocValue(const HostPath &p, u16 loc)
    {
        using namespace tol;
        namespace regmap = host::regmap;
        if (loc >= locGpr0 && loc < locGpr0 + 8)
            return p.gpr[regmap::guestGprBase + (loc - locGpr0)];
        switch (loc) {
          case locFlagZ: return p.gpr[regmap::flagZ];
          case locFlagS: return p.gpr[regmap::flagS];
          case locFlagC: return p.gpr[regmap::flagC];
          case locFlagO: return p.gpr[regmap::flagO];
          default: break;
        }
        return p.fpr[regmap::guestFprBase + (loc - locFpr0)];
    }

    /**
     * Memory equality: identical state nodes, else identical
     * *normalized ordered write sequences*. A write is dead — and may
     * be dropped by either side — when a single later write to the
     * same root fully covers its byte range (DSE). Store order is
     * otherwise significant: the scheduler never reorders stores, so
     * demanding order-equality is complete, and it is what keeps the
     * comparison sound for stores whose roots may alias.
     */
    Oblig
    checkMemory(const HostPath &p, const GuestExit &ge, u32 ordinal)
    {
        Oblig o;
        if (p.mem == ge.mem)
            return o;
        auto normalize = [&](ExprId mem) {
            std::vector<Ctx::WriteRec> ws = ctx_.writeList(mem);
            std::vector<Ctx::WriteRec> out;
            for (std::size_t i = 0; i < ws.size(); ++i) {
                bool covered = false;
                for (std::size_t j = i + 1; j < ws.size() && !covered;
                     ++j) {
                    covered = ws[j].base == ws[i].base &&
                              u32(ws[i].off - ws[j].off) + ws[i].size <=
                                  u32(ws[j].size);
                }
                if (!covered)
                    out.push_back(ws[i]);
            }
            return out;
        };
        std::vector<Ctx::WriteRec> hw = normalize(p.mem);
        std::vector<Ctx::WriteRec> gw = normalize(ge.mem);
        if (hw.size() != gw.size())
            return refuted("store count mismatch at exit " +
                           std::to_string(ordinal) + ": host " +
                           std::to_string(hw.size()) + " vs guest " +
                           std::to_string(gw.size()));
        for (std::size_t i = 0; i < hw.size(); ++i) {
            const Ctx::WriteRec &h = hw[i];
            const Ctx::WriteRec &g = gw[i];
            std::string where = "store " + std::to_string(i) +
                                " at exit " + std::to_string(ordinal);
            if (h.off != g.off || h.size != g.size || h.isF != g.isF)
                return refuted(where + ": access shape mismatch");
            if (h.base != g.base) {
                Witness w;
                Tri t = ctx_.proveEqI(h.base, g.base, p.facts, &w);
                if (!need(o, t, where + ": address mismatch",
                          std::move(w)))
                    return o;
            }
            Witness w;
            Tri t;
            if (h.isF) {
                t = ctx_.proveEqF(h.val, g.val, p.facts, &w);
            } else {
                // Sub-word stores only commit their low bytes.
                u32 mask = h.size == 1   ? 0xffu
                           : h.size == 2 ? 0xffffu
                                         : 0xffffffffu;
                t = ctx_.proveEqI(ctx_.and_(h.val, ctx_.constI(mask)),
                                  ctx_.and_(g.val, ctx_.constI(mask)),
                                  p.facts, &w);
            }
            if (!need(o, t, where + ": value mismatch", std::move(w)))
                return o;
        }
        return o;
    }

    const VerifyUnit &unit_;
    const VerifyOptions &opts_;
    Ctx ctx_;
};

} // namespace

std::string
VerifyReport::summary() const
{
    std::ostringstream os;
    os << results.size() << " translations: " << proved << " proved, "
       << refuted << " refuted, " << unknown << " unknown";
    return os.str();
}

VerifyResult
verifyUnit(const VerifyUnit &unit, const VerifyOptions &opts)
{
    return UnitVerifier(unit, opts).run();
}

} // namespace darco::verify
