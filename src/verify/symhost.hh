/**
 * @file
 * Symbolic execution of a translated HISA region under the hemu
 * semantics (verify side).
 *
 * Walks the frozen (pre-chaining) host words of one translation and
 * enumerates every feasible control path by forking at conditional
 * branches with symbolic conditions. Each path carries:
 *
 *  - the symbolic final register file and guest-memory state,
 *  - the path constraints (branch outcomes, guard pass conditions),
 *  - the ordered event record (branches, asserts, divs) the verifier
 *    matches against the guest region's obligations, and
 *  - structural observations (CKPT/COMMIT discipline, guard
 *    placement) whose violation refutes the translation outright.
 *
 * Guard *failure* paths are not symbolically executed: a failing
 * ASSERT/DIV/alias-check/page-miss rolls back to the CKPT snapshot
 * and re-enters the TOL, so their correctness is the structural
 * rollback discipline (CKPT is the first word, every store in the
 * speculative window is buffered until the single COMMIT, guards
 * only execute speculatively) — checked here — plus the hemu runtime
 * itself, which the concrete differential oracle covers.
 *
 * Alias guards (checked stores) contribute their pass conditions as
 * declared-disjointness assumptions in the shared expression context:
 * a checked store that passed cannot overlap any speculative load
 * recorded before it on the same path.
 */

#ifndef DARCO_VERIFY_SYMHOST_HH
#define DARCO_VERIFY_SYMHOST_HH

#include <array>
#include <string>
#include <vector>

#include "verify/expr.hh"

namespace darco::verify
{

/** One conditional-branch occurrence on a path. */
struct BranchExec
{
    ExprId cond = nilExpr; //!< taken-condition (0/1-valued)
    bool taken = false;    //!< outcome on this path
};

/** One executed ASSERTZ/ASSERTNZ (the pass outcome). */
struct AssertExec
{
    u32 assertId = 0;
    ExprId cond = nilExpr; //!< the asserted operand value
    bool expectNonZero = false;
};

/** One executed DIV/REM (operands; the non-fault pass outcome). */
struct DivExec
{
    ExprId a = nilExpr;
    ExprId b = nilExpr;
};

/** One fully explored control path through the region. */
struct HostPath
{
    std::vector<Fact> facts;
    std::vector<BranchExec> branches;
    std::vector<AssertExec> asserts;
    std::vector<DivExec> divs;

    std::array<ExprId, 32> gpr{};
    std::array<ExprId, 32> fpr{};
    ExprId mem = nilExpr;

    u32 commits = 0;
    u32 exitId = ~0u;        //!< EXITB id, or RETIRE id for IBTC
    bool indirect = false;   //!< ended at IBTC
    ExprId ibtcTarget = nilExpr;

    /** Nonempty: the path violates the region's structural
     *  discipline; the translation is refuted. */
    std::string structuralError;
};

struct SymHostResult
{
    std::vector<HostPath> paths;
    /** Nonempty: enumeration itself failed (path explosion, decode
     *  anomaly); the verdict for the unit is Unknown. */
    std::string error;
};

/**
 * Enumerate all paths of `words`. `fp_pool` resolves FLDC; alias
 * guard facts are recorded into `ctx`. At most `path_limit` paths.
 */
SymHostResult symExecHost(Ctx &ctx, const std::vector<u32> &words,
                          const std::vector<double> &fp_pool,
                          u32 path_limit);

} // namespace darco::verify

#endif // DARCO_VERIFY_SYMHOST_HH
