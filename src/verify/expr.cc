#include "verify/expr.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <sstream>

#include "common/logging.hh"
#include "guest/semantics.hh"

namespace darco::verify
{

namespace
{

/** splitmix64: deterministic sample streams. */
u64
mix64(u64 x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

u64
dbits(double d)
{
    u64 b;
    std::memcpy(&b, &d, 8);
    return b;
}

double
bitsd(u64 b)
{
    double d;
    std::memcpy(&d, &b, 8);
    return d;
}

/** Circular (mod 2^32) overlap of [o1,o1+s1) and [o2,o2+s2). */
bool
circOverlap(u32 o1, u8 s1, u32 o2, u8 s2)
{
    return u32(o1 - o2) < s2 || u32(o2 - o1) < s1;
}

s64
packAcc(u32 off, u8 size, bool is_f)
{
    return s64((u64(off) << 8) | (u64(size) << 1) | (is_f ? 1 : 0));
}

std::atomic<u64> envStampCounter{1};

} // namespace

// ---------------------------------------------------------------------------
// Env / Witness

Env::Env() : stamp(envStampCounter.fetch_add(1)) {}

u8
Env::initialByte(u64 addr) const
{
    if (byteAt)
        return byteAt(addr);
    return u8(mix64(seed ^ (addr * 0x2545f4914f6cdd1dull)));
}

std::string
Witness::render() const
{
    std::ostringstream os;
    os << "witness:";
    for (const auto &[n, v] : ints)
        os << " " << n << "=0x" << std::hex << v << std::dec;
    for (const auto &[n, v] : fps)
        os << " " << n << "=" << v;
    if (!memBytes.empty()) {
        os << " mem[";
        std::size_t shown = 0;
        for (const auto &[a, b] : memBytes) {
            if (shown++ == 16) {
                os << " ...";
                break;
            }
            os << (shown > 1 ? " " : "") << "0x" << std::hex << a << "="
               << u32(b) << std::dec;
        }
        os << "]";
    }
    if (!diff.empty())
        os << " | " << diff;
    return os.str();
}

// ---------------------------------------------------------------------------
// Node interning

std::size_t
Ctx::NodeHash::operator()(const Node &n) const
{
    u64 h = u64(n.op);
    h = mix64(h ^ n.a);
    h = mix64(h ^ n.b);
    h = mix64(h ^ n.c);
    h = mix64(h ^ u64(n.imm));
    h = mix64(h ^ dbits(n.fimm));
    return std::size_t(h);
}

bool
Ctx::NodeEq::operator()(const Node &x, const Node &y) const
{
    return x.op == y.op && x.a == y.a && x.b == y.b && x.c == y.c &&
           x.imm == y.imm && dbits(x.fimm) == dbits(y.fimm);
}

Ctx::Ctx()
{
    nodes_.reserve(1024);
}

ExprId
Ctx::intern(Node n)
{
    auto it = dedup_.find(n);
    if (it != dedup_.end())
        return it->second;
    ExprId id = ExprId(nodes_.size());
    nodes_.push_back(n);
    dedup_.emplace(n, id);
    return id;
}

ExprId
Ctx::constI(u32 v)
{
    Node n;
    n.op = XOp::ConstI;
    n.imm = s64(v);
    return intern(n);
}

ExprId
Ctx::constF(double v)
{
    Node n;
    n.op = XOp::ConstF;
    n.fimm = v;
    return intern(n);
}

ExprId
Ctx::varI(const std::string &name, bool bit)
{
    auto it = varIdx_.find(name);
    if (it != varIdx_.end()) {
        Node n;
        n.op = XOp::VarI;
        n.imm = s64(it->second);
        return intern(n);
    }
    u32 idx = u32(vars_.size());
    vars_.push_back({name, false, bit});
    varIdx_.emplace(name, idx);
    Node n;
    n.op = XOp::VarI;
    n.imm = s64(idx);
    return intern(n);
}

ExprId
Ctx::varF(const std::string &name)
{
    auto it = varIdx_.find(name);
    if (it != varIdx_.end()) {
        Node n;
        n.op = XOp::VarF;
        n.imm = s64(it->second);
        return intern(n);
    }
    u32 idx = u32(vars_.size());
    vars_.push_back({name, true, false});
    varIdx_.emplace(name, idx);
    Node n;
    n.op = XOp::VarF;
    n.imm = s64(idx);
    return intern(n);
}

bool
Ctx::isConstI(ExprId id, u32 &v) const
{
    const Node &n = nodes_[id];
    if (n.op != XOp::ConstI)
        return false;
    v = u32(n.imm);
    return true;
}

ExprId
Ctx::mkBin(XOp op, ExprId a, ExprId b)
{
    // Canonical operand order for commutative integer ops: smaller
    // node id first (constants intern early but the dedicated
    // constructors already hoisted them out).
    switch (op) {
      case XOp::Add:
      case XOp::Mul:
      case XOp::MulH:
      case XOp::And:
      case XOp::Or:
      case XOp::Xor:
      case XOp::Eq:
        if (b < a)
            std::swap(a, b);
        break;
      default:
        break;
    }
    Node n;
    n.op = op;
    n.a = a;
    n.b = b;
    return intern(n);
}

// ---------------------------------------------------------------------------
// Integer constructors

ExprId
Ctx::add(ExprId a, ExprId b)
{
    u32 ca, cb;
    if (isConstI(a, ca) && isConstI(b, cb))
        return constI(ca + cb);

    // Affine decomposition: x (+ const tail) for each operand, so
    // (p + 4) + 8 and p + 12 intern to the same node and stripAddr
    // sees a flat `Add(root, ConstI)` shape.
    auto split = [&](ExprId e, ExprId &base, u32 &off) {
        u32 c;
        if (isConstI(e, c)) {
            base = nilExpr;
            off = c;
            return;
        }
        const Node &n = nodes_[e];
        if (n.op == XOp::Add && isConstI(n.b, c)) {
            base = n.a;
            off = c;
            return;
        }
        base = e;
        off = 0;
    };
    ExprId ba, bb;
    u32 oa, ob;
    split(a, ba, oa);
    split(b, bb, ob);
    u32 off = oa + ob;
    ExprId core;
    if (ba == nilExpr && bb == nilExpr)
        return constI(off);
    else if (ba == nilExpr)
        core = bb;
    else if (bb == nilExpr)
        core = ba;
    else
        core = mkBin(XOp::Add, ba, bb);
    if (off == 0)
        return core;
    Node n;
    n.op = XOp::Add;
    n.a = core;
    n.b = constI(off);
    return intern(n);
}

ExprId
Ctx::sub(ExprId a, ExprId b)
{
    u32 ca, cb;
    if (isConstI(a, ca) && isConstI(b, cb))
        return constI(ca - cb);
    if (a == b)
        return zero();
    if (isConstI(b, cb))
        return add(a, constI(u32(0) - cb));
    Node n;
    n.op = XOp::Sub;
    n.a = a;
    n.b = b;
    return intern(n);
}

ExprId
Ctx::mul(ExprId a, ExprId b)
{
    u32 ca, cb;
    if (isConstI(a, ca) && isConstI(b, cb))
        return constI(u32(s64(s32(ca)) * s64(s32(cb))));
    if (isConstI(a, ca))
        std::swap(a, b), std::swap(ca, cb);
    if (isConstI(b, cb)) {
        if (cb == 0)
            return zero();
        if (cb == 1)
            return a;
    }
    return mkBin(XOp::Mul, a, b);
}

ExprId
Ctx::mulh(ExprId a, ExprId b)
{
    u32 ca, cb;
    if (isConstI(a, ca) && isConstI(b, cb))
        return constI(u32(u64(s64(s32(ca)) * s64(s32(cb))) >> 32));
    return mkBin(XOp::MulH, a, b);
}

ExprId
Ctx::div(ExprId a, ExprId b)
{
    u32 ca, cb;
    bool ac = isConstI(a, ca), bc = isConstI(b, cb);
    if (ac && bc && cb != 0 && !(ca == 0x80000000u && s32(cb) == -1))
        return constI(u32(s32(ca) / s32(cb)));
    if (bc && cb == 1)
        return a;
    return mkBin(XOp::Div, a, b);
}

ExprId
Ctx::rem(ExprId a, ExprId b)
{
    u32 ca, cb;
    bool ac = isConstI(a, ca), bc = isConstI(b, cb);
    if (ac && bc && cb != 0 && !(ca == 0x80000000u && s32(cb) == -1))
        return constI(u32(s32(ca) % s32(cb)));
    if (bc && cb == 1)
        return zero();
    return mkBin(XOp::Rem, a, b);
}

ExprId
Ctx::and_(ExprId a, ExprId b)
{
    u32 ca, cb;
    if (isConstI(a, ca) && isConstI(b, cb))
        return constI(ca & cb);
    if (a == b)
        return a;
    if (isConstI(a, ca))
        std::swap(a, b), std::swap(ca, cb);
    if (isConstI(b, cb)) {
        if (cb == 0)
            return zero();
        if (cb == 0xffffffffu)
            return a;
        const Node &n = nodes_[a];
        u32 ci;
        // mkBin orders commutative operands by id, so a chained
        // constant can sit in either slot.
        if (n.op == XOp::And && isConstI(n.b, ci))
            return and_(n.a, constI(cb & ci));
        if (n.op == XOp::And && isConstI(n.a, ci))
            return and_(n.b, constI(cb & ci));
        // Mask no-op: every bit outside the mask already known zero.
        KnownBits kb = knownBits(a);
        if ((~cb & ~kb.zeros) == 0)
            return a;
    }
    return mkBin(XOp::And, a, b);
}

ExprId
Ctx::or_(ExprId a, ExprId b)
{
    u32 ca, cb;
    if (isConstI(a, ca) && isConstI(b, cb))
        return constI(ca | cb);
    if (a == b)
        return a;
    if (isConstI(a, ca))
        std::swap(a, b), std::swap(ca, cb);
    if (isConstI(b, cb)) {
        if (cb == 0)
            return a;
        if (cb == 0xffffffffu)
            return constI(0xffffffffu);
        const Node &n = nodes_[a];
        u32 ci;
        if (n.op == XOp::Or && isConstI(n.b, ci))
            return or_(n.a, constI(cb | ci));
        if (n.op == XOp::Or && isConstI(n.a, ci))
            return or_(n.b, constI(cb | ci));
    }
    return mkBin(XOp::Or, a, b);
}

ExprId
Ctx::xor_(ExprId a, ExprId b)
{
    u32 ca, cb;
    if (isConstI(a, ca) && isConstI(b, cb))
        return constI(ca ^ cb);
    if (a == b)
        return zero();
    if (isConstI(a, ca))
        std::swap(a, b), std::swap(ca, cb);
    if (isConstI(b, cb)) {
        if (cb == 0)
            return a;
        const Node &n = nodes_[a];
        u32 ci;
        if (n.op == XOp::Xor && isConstI(n.b, ci))
            return xor_(n.a, constI(cb ^ ci));
        if (n.op == XOp::Xor && isConstI(n.a, ci))
            return xor_(n.b, constI(cb ^ ci));
    }
    return mkBin(XOp::Xor, a, b);
}

ExprId
Ctx::shl(ExprId a, ExprId b)
{
    u32 ca, cb;
    if (isConstI(b, cb)) {
        cb &= 31;
        if (cb == 0)
            return a;
        if (isConstI(a, ca))
            return constI(ca << cb);
        b = constI(cb);
    }
    Node n;
    n.op = XOp::Shl;
    n.a = a;
    n.b = b;
    return intern(n);
}

ExprId
Ctx::shr(ExprId a, ExprId b)
{
    u32 ca, cb;
    if (isConstI(b, cb)) {
        cb &= 31;
        if (cb == 0)
            return a;
        if (isConstI(a, ca))
            return constI(ca >> cb);
        b = constI(cb);
    }
    Node n;
    n.op = XOp::Shr;
    n.a = a;
    n.b = b;
    return intern(n);
}

ExprId
Ctx::sar(ExprId a, ExprId b)
{
    u32 ca, cb;
    if (isConstI(b, cb)) {
        cb &= 31;
        if (cb == 0)
            return a;
        if (isConstI(a, ca))
            return constI(u32(s32(ca) >> cb));
        b = constI(cb);
    }
    Node n;
    n.op = XOp::Sar;
    n.a = a;
    n.b = b;
    return intern(n);
}

ExprId
Ctx::eq(ExprId a, ExprId b)
{
    u32 ca, cb;
    if (isConstI(a, ca) && isConstI(b, cb))
        return constI(ca == cb ? 1 : 0);
    if (a == b)
        return one();
    if (isConstI(a, ca))
        std::swap(a, b), std::swap(ca, cb);
    const Node &n = nodes_[a];
    if (isConstI(b, cb)) {
        // Eq(x, c) over {0,1}-valued x.
        KnownBits kb = knownBits(a);
        bool bit01 = (kb.zeros | 1u) == 0xffffffffu;
        if (bit01 && cb == 1)
            return a;
        if (bit01 && cb == 0)
            return xor_(a, one());
        if (bit01 && cb > 1)
            return zero();
        auto [lo, hi] = range(a);
        if (cb < lo || cb > hi)
            return zero();
        u32 ci;
        if (n.op == XOp::Add && isConstI(n.b, ci))
            return eq(n.a, constI(cb - ci));
        if (cb == 0 && n.op == XOp::Sub)
            return eq(n.a, n.b);
        if (cb == 0 && n.op == XOp::Xor)
            return eq(n.a, n.b);
    }
    return mkBin(XOp::Eq, a, b);
}

ExprId
Ctx::ult(ExprId a, ExprId b)
{
    u32 ca, cb;
    if (isConstI(a, ca) && isConstI(b, cb))
        return constI(ca < cb ? 1 : 0);
    if (a == b)
        return zero();
    auto [loa, hia] = range(a);
    auto [lob, hib] = range(b);
    if (hia < lob)
        return one();
    if (loa >= hib)
        return zero();
    Node n;
    n.op = XOp::Ult;
    n.a = a;
    n.b = b;
    return intern(n);
}

ExprId
Ctx::slt(ExprId a, ExprId b)
{
    u32 ca, cb;
    if (isConstI(a, ca) && isConstI(b, cb))
        return constI(s32(ca) < s32(cb) ? 1 : 0);
    if (a == b)
        return zero();
    Node n;
    n.op = XOp::Slt;
    n.a = a;
    n.b = b;
    return intern(n);
}

// ---------------------------------------------------------------------------
// FP constructors

ExprId
Ctx::fbin(XOp op, ExprId a, ExprId b)
{
    const Node &na = nodes_[a];
    const Node &nb = nodes_[b];
    if (na.op == XOp::ConstF && nb.op == XOp::ConstF) {
        double x = na.fimm, y = nb.fimm, r = 0.0;
        switch (op) {
          case XOp::FAdd: r = guest::gcanon(x + y); break;
          case XOp::FSub: r = guest::gcanon(x - y); break;
          case XOp::FMul: r = guest::gcanon(x * y); break;
          case XOp::FDiv: r = guest::gcanon(x / y); break;
          default: darco_assert(false, "fbin: bad op");
        }
        return constF(r);
    }
    // No commutation: FP ops keep textual operand order.
    Node n;
    n.op = op;
    n.a = a;
    n.b = b;
    return intern(n);
}

ExprId
Ctx::fun(XOp op, ExprId a)
{
    const Node &na = nodes_[a];
    if (op == XOp::FCvtWD) {
        u32 v;
        if (isConstI(a, v))
            return constF(double(s32(v)));
    } else if (op == XOp::FCvtZW) {
        if (na.op == XOp::ConstF)
            return constI(u32(guest::gcvtfi(na.fimm)));
    } else if (na.op == XOp::ConstF) {
        double x = na.fimm, r = 0.0;
        switch (op) {
          case XOp::FSqrt: r = guest::gcanon(std::sqrt(x)); break;
          case XOp::FAbs: r = std::fabs(x); break;
          case XOp::FNeg: r = -x; break;
          case XOp::FRnd: r = guest::gcanon(std::nearbyint(x)); break;
          default: darco_assert(false, "fun: bad op");
        }
        return constF(r);
    }
    Node n;
    n.op = op;
    n.a = a;
    return intern(n);
}

ExprId
Ctx::fcmp(XOp op, ExprId a, ExprId b)
{
    const Node &na = nodes_[a];
    const Node &nb = nodes_[b];
    if (na.op == XOp::ConstF && nb.op == XOp::ConstF) {
        double x = na.fimm, y = nb.fimm;
        bool r = false;
        switch (op) {
          case XOp::FEq: r = x == y; break;
          case XOp::FLt: r = x < y; break;
          case XOp::FLe: r = x <= y; break;
          default: darco_assert(false, "fcmp: bad op");
        }
        return constI(r ? 1 : 0);
    }
    Node n;
    n.op = op;
    n.a = a;
    n.b = b;
    return intern(n);
}

// ---------------------------------------------------------------------------
// Memory

ExprId
Ctx::memInit()
{
    if (memInit_ == nilExpr) {
        Node n;
        n.op = XOp::MemInit;
        memInit_ = intern(n);
    }
    return memInit_;
}

std::pair<ExprId, u32>
Ctx::stripAddr(ExprId addr)
{
    u32 c;
    if (isConstI(addr, c))
        return {zero(), c};
    const Node &n = nodes_[addr];
    if (n.op == XOp::Add && isConstI(n.b, c))
        return {n.a, c};
    return {addr, 0};
}

ExprId
Ctx::store(ExprId mem, ExprId base, u32 off, u8 size, bool is_f,
           ExprId val)
{
    // Dead-store canonicalization: reads resolve outermost-first, so
    // an earlier store off the same base root whose byte range this
    // store fully covers can never supply a byte again — drop it
    // (intervening unknown-alias stores are unaffected: their ranges
    // do not change). An optimizer-DSE'd chain and the unoptimized
    // guest chain then intern to the same node, preserving structural
    // equality as the main proof rule across dead-store elimination.
    for (ExprId m = mem; nodes_[m].op == XOp::Store; m = nodes_[m].a) {
        const Node &cand = nodes_[m];
        if (cand.b != base ||
            u32(accOff(cand.imm) - off) + accSize(cand.imm) > size)
            continue;
        struct Rec
        {
            ExprId base;
            u32 off;
            u8 size;
            bool isF;
            ExprId val;
        };
        std::vector<Rec> prefix;
        for (ExprId x = mem; x != m; x = nodes_[x].a) {
            const Node &n = nodes_[x];
            prefix.push_back({n.b, accOff(n.imm), accSize(n.imm),
                              accIsF(n.imm), n.c});
        }
        ExprId rebuilt = nodes_[m].a;
        // Recursive re-interning may grow nodes_: use the copies.
        for (std::size_t i = prefix.size(); i-- > 0;)
            rebuilt = store(rebuilt, prefix[i].base, prefix[i].off,
                            prefix[i].size, prefix[i].isF,
                            prefix[i].val);
        return store(rebuilt, base, off, size, is_f, val);
    }
    Node n;
    n.op = XOp::Store;
    n.a = mem;
    n.b = base;
    n.c = val;
    n.imm = packAcc(off, size, is_f);
    return intern(n);
}

bool
Ctx::provablyDisjoint(ExprId root_a, u32 off_a, u8 size_a,
                      ExprId root_b, u32 off_b, u8 size_b) const
{
    if (root_a == root_b)
        return !circOverlap(off_a, size_a, off_b, size_b);
    for (const DisjPair &p : disjoint_) {
        if (p.ra == root_a && p.oa == off_a && p.sa == size_a &&
            p.rb == root_b && p.ob == off_b && p.sb == size_b)
            return true;
        if (p.ra == root_b && p.oa == off_b && p.sa == size_b &&
            p.rb == root_a && p.ob == off_a && p.sb == size_a)
            return true;
    }
    return false;
}

void
Ctx::assumeDisjoint(ExprId root_a, u32 off_a, u8 size_a, ExprId root_b,
                    u32 off_b, u8 size_b)
{
    disjoint_.push_back({root_a, off_a, size_a, root_b, off_b, size_b});
}

bool
Ctx::provablyOverlapping(ExprId root_a, u32 off_a, u8 size_a,
                         ExprId root_b, u32 off_b, u8 size_b) const
{
    return root_a == root_b &&
           circOverlap(off_a, size_a, off_b, size_b);
}

ExprId
Ctx::readI(ExprId mem, ExprId base, u32 off, u8 size)
{
    ExprId m = mem;
    for (;;) {
        const Node &n = nodes_[m];
        if (n.op != XOp::Store)
            break;
        u32 soff = accOff(n.imm);
        u8 ssize = accSize(n.imm);
        bool sisf = accIsF(n.imm);
        if (n.b == base && soff == off && ssize == size && !sisf) {
            if (size == 4)
                return n.c;
            return and_(n.c, constI(size == 1 ? 0xffu : 0xffffu));
        }
        if (!provablyDisjoint(base, off, size, n.b, soff, ssize))
            break;
        m = n.a;
    }
    Node r;
    r.op = XOp::ReadI;
    r.a = m;
    r.b = base;
    r.imm = packAcc(off, size, false);
    return intern(r);
}

ExprId
Ctx::readF(ExprId mem, ExprId base, u32 off)
{
    ExprId m = mem;
    for (;;) {
        const Node &n = nodes_[m];
        if (n.op != XOp::Store)
            break;
        u32 soff = accOff(n.imm);
        u8 ssize = accSize(n.imm);
        bool sisf = accIsF(n.imm);
        if (n.b == base && soff == off && ssize == 8 && sisf)
            return n.c;
        if (!provablyDisjoint(base, off, 8, n.b, soff, ssize))
            break;
        m = n.a;
    }
    Node r;
    r.op = XOp::ReadF;
    r.a = m;
    r.b = base;
    r.imm = packAcc(off, 8, true);
    return intern(r);
}

std::vector<Ctx::WriteRec>
Ctx::writeList(ExprId mem) const
{
    std::vector<WriteRec> out;
    for (ExprId m = mem; nodes_[m].op == XOp::Store; m = nodes_[m].a) {
        const Node &n = nodes_[m];
        out.push_back({n.b, accOff(n.imm), accSize(n.imm),
                       accIsF(n.imm), n.c});
    }
    // Collected newest-first; return program order.
    std::reverse(out.begin(), out.end());
    return out;
}

// ---------------------------------------------------------------------------
// Known bits / ranges

Ctx::KnownBits
Ctx::knownBits(ExprId id)
{
    auto it = kbMemo_.find(id);
    if (it != kbMemo_.end())
        return it->second;
    const Node n = nodes_[id]; // copy: recursion may grow nodes_
    KnownBits r;
    auto bit01 = [] {
        return KnownBits{0xfffffffeu, 0};
    };
    switch (n.op) {
      case XOp::ConstI:
        r.ones = u32(n.imm);
        r.zeros = ~r.ones;
        break;
      case XOp::VarI:
        if (vars_[u32(n.imm)].bit)
            r = bit01();
        break;
      case XOp::Eq:
      case XOp::Ult:
      case XOp::Slt:
      case XOp::FEq:
      case XOp::FLt:
      case XOp::FLe:
        r = bit01();
        break;
      case XOp::And: {
        KnownBits a = knownBits(n.a), b = knownBits(n.b);
        r.zeros = a.zeros | b.zeros;
        r.ones = a.ones & b.ones;
        break;
      }
      case XOp::Or: {
        KnownBits a = knownBits(n.a), b = knownBits(n.b);
        r.zeros = a.zeros & b.zeros;
        r.ones = a.ones | b.ones;
        break;
      }
      case XOp::Xor: {
        KnownBits a = knownBits(n.a), b = knownBits(n.b);
        r.zeros = (a.zeros & b.zeros) | (a.ones & b.ones);
        r.ones = (a.zeros & b.ones) | (a.ones & b.zeros);
        break;
      }
      case XOp::Shl: {
        u32 c;
        if (isConstI(n.b, c)) {
            c &= 31;
            KnownBits a = knownBits(n.a);
            r.zeros = (a.zeros << c) | ((1u << c) - 1u);
            r.ones = a.ones << c;
        }
        break;
      }
      case XOp::Shr: {
        u32 c;
        if (isConstI(n.b, c)) {
            c &= 31;
            KnownBits a = knownBits(n.a);
            r.zeros = (a.zeros >> c) | ~(0xffffffffu >> c);
            r.ones = a.ones >> c;
        }
        break;
      }
      case XOp::ReadI: {
        u8 sz = accSize(n.imm);
        if (sz == 1)
            r.zeros = 0xffffff00u;
        else if (sz == 2)
            r.zeros = 0xffff0000u;
        break;
      }
      default:
        break;
    }
    kbMemo_.emplace(id, r);
    return r;
}

std::pair<u32, u32>
Ctx::range(ExprId id)
{
    auto it = rangeMemo_.find(id);
    if (it != rangeMemo_.end())
        return it->second;
    const Node n = nodes_[id];
    std::pair<u32, u32> r{0, 0xffffffffu};
    switch (n.op) {
      case XOp::ConstI:
        r = {u32(n.imm), u32(n.imm)};
        break;
      case XOp::Add: {
        auto [la, ha] = range(n.a);
        auto [lb, hb] = range(n.b);
        u64 lo = u64(la) + lb, hi = u64(ha) + hb;
        if (hi <= 0xffffffffull)
            r = {u32(lo), u32(hi)};
        break;
      }
      case XOp::And: {
        auto [la, ha] = range(n.a);
        auto [lb, hb] = range(n.b);
        (void)la;
        (void)lb;
        r = {0, std::min(ha, hb)};
        break;
      }
      default: {
        KnownBits kb = knownBits(id);
        r = {kb.ones, ~kb.zeros};
        break;
      }
    }
    rangeMemo_.emplace(id, r);
    return r;
}

// ---------------------------------------------------------------------------
// Concrete evaluation

const std::map<u64, u8> &
Ctx::memBytes(ExprId mem, const Env &env)
{
    auto it = memMemo_.find(mem);
    if (it != memMemo_.end())
        return it->second;
    std::map<u64, u8> bytes;
    const Node n = nodes_[mem];
    if (n.op == XOp::Store) {
        bytes = memBytes(n.a, env); // copy of the deeper overlay
        u32 base = evalI(n.b, env);
        u32 addr = base + accOff(n.imm);
        u8 sz = accSize(n.imm);
        if (accIsF(n.imm)) {
            u64 b = dbits(evalF(n.c, env));
            for (u8 i = 0; i < 8; ++i)
                bytes[u32(addr + i)] = u8(b >> (8 * i));
        } else {
            u32 v = evalI(n.c, env);
            for (u8 i = 0; i < sz; ++i)
                bytes[u32(addr + i)] = u8(v >> (8 * i));
        }
    }
    return memMemo_.emplace(mem, std::move(bytes)).first->second;
}

u32
Ctx::evalI(ExprId id, const Env &env)
{
    if (env.stamp != evalStamp_) {
        evalIMemo_.clear();
        evalFMemo_.clear();
        memMemo_.clear();
        evalStamp_ = env.stamp;
    }
    auto it = evalIMemo_.find(id);
    if (it != evalIMemo_.end())
        return it->second;
    const Node n = nodes_[id];
    u32 r = 0;
    switch (n.op) {
      case XOp::ConstI:
        r = u32(n.imm);
        break;
      case XOp::VarI: {
        auto vi = env.ivals.find(u32(n.imm));
        r = vi == env.ivals.end() ? 0 : vi->second;
        break;
      }
      case XOp::Add: r = evalI(n.a, env) + evalI(n.b, env); break;
      case XOp::Sub: r = evalI(n.a, env) - evalI(n.b, env); break;
      case XOp::Mul:
        r = u32(s64(s32(evalI(n.a, env))) * s64(s32(evalI(n.b, env))));
        break;
      case XOp::MulH:
        r = u32(u64(s64(s32(evalI(n.a, env))) *
                    s64(s32(evalI(n.b, env)))) >> 32);
        break;
      case XOp::Div: {
        u32 a = evalI(n.a, env), b = evalI(n.b, env);
        // Faulting inputs are excluded by path facts; keep the
        // evaluator total so rejected samples cannot trap.
        if (b == 0 || (a == 0x80000000u && s32(b) == -1))
            r = 0;
        else
            r = u32(s32(a) / s32(b));
        break;
      }
      case XOp::Rem: {
        u32 a = evalI(n.a, env), b = evalI(n.b, env);
        if (b == 0 || (a == 0x80000000u && s32(b) == -1))
            r = 0;
        else
            r = u32(s32(a) % s32(b));
        break;
      }
      case XOp::And: r = evalI(n.a, env) & evalI(n.b, env); break;
      case XOp::Or: r = evalI(n.a, env) | evalI(n.b, env); break;
      case XOp::Xor: r = evalI(n.a, env) ^ evalI(n.b, env); break;
      case XOp::Shl:
        r = evalI(n.a, env) << (evalI(n.b, env) & 31);
        break;
      case XOp::Shr:
        r = evalI(n.a, env) >> (evalI(n.b, env) & 31);
        break;
      case XOp::Sar:
        r = u32(s32(evalI(n.a, env)) >> (evalI(n.b, env) & 31));
        break;
      case XOp::Eq:
        r = evalI(n.a, env) == evalI(n.b, env) ? 1 : 0;
        break;
      case XOp::Ult:
        r = evalI(n.a, env) < evalI(n.b, env) ? 1 : 0;
        break;
      case XOp::Slt:
        r = s32(evalI(n.a, env)) < s32(evalI(n.b, env)) ? 1 : 0;
        break;
      case XOp::FCvtZW:
        r = u32(guest::gcvtfi(evalF(n.a, env)));
        break;
      case XOp::FEq:
        r = evalF(n.a, env) == evalF(n.b, env) ? 1 : 0;
        break;
      case XOp::FLt:
        r = evalF(n.a, env) < evalF(n.b, env) ? 1 : 0;
        break;
      case XOp::FLe:
        r = evalF(n.a, env) <= evalF(n.b, env) ? 1 : 0;
        break;
      case XOp::ReadI: {
        const auto &bytes = memBytes(n.a, env);
        u32 base = evalI(n.b, env);
        u32 addr = base + accOff(n.imm);
        u8 sz = accSize(n.imm);
        r = 0;
        for (u8 i = 0; i < sz; ++i) {
            u64 a = u32(addr + i);
            auto bi = bytes.find(a);
            u8 byte =
                bi == bytes.end() ? env.initialByte(a) : bi->second;
            r |= u32(byte) << (8 * i);
        }
        break;
      }
      default:
        darco_assert(false, "evalI: non-integer node");
    }
    evalIMemo_.emplace(id, r);
    return r;
}

double
Ctx::evalF(ExprId id, const Env &env)
{
    if (env.stamp != evalStamp_) {
        evalIMemo_.clear();
        evalFMemo_.clear();
        memMemo_.clear();
        evalStamp_ = env.stamp;
    }
    auto it = evalFMemo_.find(id);
    if (it != evalFMemo_.end())
        return it->second;
    const Node n = nodes_[id];
    double r = 0.0;
    switch (n.op) {
      case XOp::ConstF:
        r = n.fimm;
        break;
      case XOp::VarF: {
        auto vi = env.fvals.find(u32(n.imm));
        r = vi == env.fvals.end() ? 0.0 : vi->second;
        break;
      }
      case XOp::FAdd:
        r = guest::gcanon(evalF(n.a, env) + evalF(n.b, env));
        break;
      case XOp::FSub:
        r = guest::gcanon(evalF(n.a, env) - evalF(n.b, env));
        break;
      case XOp::FMul:
        r = guest::gcanon(evalF(n.a, env) * evalF(n.b, env));
        break;
      case XOp::FDiv:
        r = guest::gcanon(evalF(n.a, env) / evalF(n.b, env));
        break;
      case XOp::FSqrt:
        r = guest::gcanon(std::sqrt(evalF(n.a, env)));
        break;
      case XOp::FAbs:
        r = std::fabs(evalF(n.a, env));
        break;
      case XOp::FNeg:
        r = -evalF(n.a, env);
        break;
      case XOp::FRnd:
        r = guest::gcanon(std::nearbyint(evalF(n.a, env)));
        break;
      case XOp::FCvtWD:
        r = double(s32(evalI(n.a, env)));
        break;
      case XOp::ReadF: {
        const auto &bytes = memBytes(n.a, env);
        u32 base = evalI(n.b, env);
        u32 addr = base + accOff(n.imm);
        u64 b = 0;
        for (u8 i = 0; i < 8; ++i) {
            u64 a = u32(addr + i);
            auto bi = bytes.find(a);
            u8 byte =
                bi == bytes.end() ? env.initialByte(a) : bi->second;
            b |= u64(byte) << (8 * i);
        }
        r = bitsd(b);
        break;
      }
      default:
        darco_assert(false, "evalF: non-FP node");
    }
    evalFMemo_.emplace(id, r);
    return r;
}

bool
Ctx::factsHold(const std::vector<Fact> &facts, const Env &env)
{
    for (const Fact &f : facts) {
        if ((evalI(f.cond, env) != 0) != f.truth)
            return false;
    }
    return true;
}

// ---------------------------------------------------------------------------
// Support / substitution

void
Ctx::support(ExprId id, std::vector<u32> &int_vars,
             std::vector<u32> &fp_vars, bool &has_mem)
{
    std::vector<ExprId> stack{id};
    std::vector<bool> seen(nodes_.size(), false);
    while (!stack.empty()) {
        ExprId e = stack.back();
        stack.pop_back();
        if (seen[e])
            continue;
        seen[e] = true;
        const Node &n = nodes_[e];
        switch (n.op) {
          case XOp::VarI:
            if (std::find(int_vars.begin(), int_vars.end(),
                          u32(n.imm)) == int_vars.end())
                int_vars.push_back(u32(n.imm));
            break;
          case XOp::VarF:
            if (std::find(fp_vars.begin(), fp_vars.end(), u32(n.imm)) ==
                fp_vars.end())
                fp_vars.push_back(u32(n.imm));
            break;
          case XOp::MemInit:
          case XOp::Store:
          case XOp::ReadI:
          case XOp::ReadF:
            has_mem = true;
            break;
          default:
            break;
        }
        if (n.a != nilExpr)
            stack.push_back(n.a);
        if (n.b != nilExpr)
            stack.push_back(n.b);
        if (n.c != nilExpr)
            stack.push_back(n.c);
    }
}

ExprId
Ctx::substitute(ExprId id, const std::unordered_map<u32, u32> &int_env,
                std::unordered_map<ExprId, ExprId> &memo)
{
    auto it = memo.find(id);
    if (it != memo.end())
        return it->second;
    const Node n = nodes_[id];
    ExprId r;
    if (n.op == XOp::VarI) {
        auto vi = int_env.find(u32(n.imm));
        r = vi == int_env.end() ? id : constI(vi->second);
    } else if (n.op == XOp::VarF || n.op == XOp::ConstI ||
               n.op == XOp::ConstF || n.op == XOp::MemInit) {
        r = id;
    } else {
        ExprId a = n.a == nilExpr
                       ? nilExpr
                       : substitute(n.a, int_env, memo);
        ExprId b = n.b == nilExpr
                       ? nilExpr
                       : substitute(n.b, int_env, memo);
        ExprId c = n.c == nilExpr
                       ? nilExpr
                       : substitute(n.c, int_env, memo);
        switch (n.op) {
          case XOp::Add: r = add(a, b); break;
          case XOp::Sub: r = sub(a, b); break;
          case XOp::Mul: r = mul(a, b); break;
          case XOp::MulH: r = mulh(a, b); break;
          case XOp::Div: r = div(a, b); break;
          case XOp::Rem: r = rem(a, b); break;
          case XOp::And: r = and_(a, b); break;
          case XOp::Or: r = or_(a, b); break;
          case XOp::Xor: r = xor_(a, b); break;
          case XOp::Shl: r = shl(a, b); break;
          case XOp::Shr: r = shr(a, b); break;
          case XOp::Sar: r = sar(a, b); break;
          case XOp::Eq: r = eq(a, b); break;
          case XOp::Ult: r = ult(a, b); break;
          case XOp::Slt: r = slt(a, b); break;
          case XOp::FAdd:
          case XOp::FSub:
          case XOp::FMul:
          case XOp::FDiv: r = fbin(n.op, a, b); break;
          case XOp::FSqrt:
          case XOp::FAbs:
          case XOp::FNeg:
          case XOp::FRnd:
          case XOp::FCvtWD:
          case XOp::FCvtZW: r = fun(n.op, a); break;
          case XOp::FEq:
          case XOp::FLt:
          case XOp::FLe: r = fcmp(n.op, a, b); break;
          case XOp::Store:
            r = store(a, b, accOff(n.imm), accSize(n.imm),
                      accIsF(n.imm), c);
            break;
          case XOp::ReadI:
            r = readI(a, b, accOff(n.imm), accSize(n.imm));
            break;
          case XOp::ReadF:
            r = readF(a, b, accOff(n.imm));
            break;
          default:
            r = id;
            break;
        }
    }
    memo.emplace(id, r);
    return r;
}

// ---------------------------------------------------------------------------
// Proving

namespace
{

/** Interesting corner values mixed into random integer samples. */
constexpr u32 cornersI[] = {0u,          1u,          2u,
                            0xffffffffu, 0x7fffffffu, 0x80000000u,
                            0xffu,       0x100u,      0xfffeu};
constexpr double cornersF[] = {0.0, -0.0, 1.0,   -1.0, 0.5,
                               2.0, 1e9,  -1e-9, 1e300};

} // namespace

void
Ctx::buildWitness(const Env &env, ExprId a, ExprId b, bool fp_cmp,
                  const std::vector<Fact> &facts, Witness *w)
{
    if (!w)
        return;
    // Re-evaluate with a byte-logging environment so the witness
    // records exactly the initial-memory bytes the refutation needs.
    std::map<u64, u8> touched;
    Env le;
    le.ivals = env.ivals;
    le.fvals = env.fvals;
    le.seed = env.seed;
    le.byteAt = [&env, &touched](u64 addr) {
        u8 v = env.initialByte(addr);
        touched[addr] = v;
        return v;
    };
    std::ostringstream diff;
    if (fp_cmp) {
        double lv = evalF(a, le), rv = evalF(b, le);
        diff << "lhs=" << lv << " (0x" << std::hex << dbits(lv)
             << ") rhs=" << rv << " (0x" << dbits(rv) << ")" << std::dec;
    } else {
        u32 lv = evalI(a, le), rv = evalI(b, le);
        diff << "lhs=0x" << std::hex << lv << " rhs=0x" << rv
             << std::dec;
    }
    factsHold(facts, le); // log fact-relevant bytes too
    w->diff = diff.str();
    w->ints.clear();
    w->fps.clear();
    w->memBytes.clear();
    for (const auto &[idx, v] : env.ivals)
        w->ints.emplace_back(vars_[idx].name, v);
    for (const auto &[idx, v] : env.fvals)
        w->fps.emplace_back(vars_[idx].name, v);
    std::sort(w->ints.begin(), w->ints.end());
    std::sort(w->fps.begin(), w->fps.end());
    for (const auto &[addr, byte] : touched)
        w->memBytes.emplace_back(addr, byte);
}

Tri
Ctx::enumerateOrSample(ExprId a, ExprId b, const std::vector<Fact> &facts,
                       bool fp_cmp, Witness *w)
{
    std::vector<u32> ivars, fvars;
    bool has_mem = false;
    support(a, ivars, fvars, has_mem);
    support(b, ivars, fvars, has_mem);
    for (const Fact &f : facts)
        support(f.cond, ivars, fvars, has_mem);

    auto differ = [&](const Env &env) {
        if (fp_cmp)
            return dbits(evalF(a, env)) != dbits(evalF(b, env));
        return evalI(a, env) != evalI(b, env);
    };
    auto refute = [&](Env &env) {
        // Minimize: prefer 0 then 1 for each variable while the
        // assignment still satisfies the facts and still refutes.
        for (u32 idx : ivars) {
            u32 orig = env.ivals[idx];
            for (u32 cand : {0u, 1u}) {
                if (cand == orig)
                    continue;
                Env t;
                t.ivals = env.ivals;
                t.fvals = env.fvals;
                t.seed = env.seed;
                t.ivals[idx] = cand;
                if (factsHold(facts, t) && differ(t)) {
                    env = std::move(t);
                    break;
                }
            }
        }
        for (u32 idx : fvars) {
            double orig = env.fvals[idx];
            for (double cand : {0.0, 1.0}) {
                if (dbits(cand) == dbits(orig))
                    continue;
                Env t;
                t.ivals = env.ivals;
                t.fvals = env.fvals;
                t.seed = env.seed;
                t.fvals[idx] = cand;
                if (factsHold(facts, t) && differ(t)) {
                    env = std::move(t);
                    break;
                }
            }
        }
        buildWitness(env, a, b, fp_cmp, facts, w);
        return Tri::Refuted;
    };

    // Exhaustive concretization: a real proof, but only over pure
    // register expressions whose entire support is {0,1}-domain.
    bool all_bit = fvars.empty() && !has_mem;
    for (u32 idx : ivars)
        all_bit = all_bit && vars_[idx].bit;
    if (all_bit && ivars.size() < 31 &&
        (1ull << ivars.size()) <= concretizeBudget) {
        u64 count = 1ull << ivars.size();
        for (u64 mask = 0; mask < count; ++mask) {
            Env env;
            for (std::size_t i = 0; i < ivars.size(); ++i)
                env.ivals[ivars[i]] = u32((mask >> i) & 1);
            if (!factsHold(facts, env))
                continue;
            if (differ(env))
                return refute(env);
        }
        return Tri::Proved;
    }

    // Sampling: refutation only — never upgrades to Proved.
    for (u32 t = 0; t < sampleTries; ++t) {
        Env env;
        env.seed = mix64(0xda2c0ull ^ (u64(t) << 20) ^ a ^ (u64(b) << 32));
        u64 s = env.seed;
        for (u32 idx : ivars) {
            s = mix64(s);
            u32 v;
            if (vars_[idx].bit)
                v = u32(s & 1);
            else if ((s >> 8) % 3 == 0)
                v = cornersI[(s >> 16) %
                             (sizeof(cornersI) / sizeof(cornersI[0]))];
            else
                v = u32(s >> 16);
            env.ivals[idx] = v;
        }
        for (u32 idx : fvars) {
            s = mix64(s);
            double v;
            if ((s >> 8) % 2 == 0)
                v = cornersF[(s >> 16) %
                             (sizeof(cornersF) / sizeof(cornersF[0]))];
            else
                v = double(s64(mix64(s))) * 0x1p-32;
            env.fvals[idx] = v;
        }
        if (!factsHold(facts, env))
            continue;
        if (differ(env))
            return refute(env);
    }
    return Tri::Unknown;
}

Tri
Ctx::proveEqI(ExprId a, ExprId b, const std::vector<Fact> &facts,
              Witness *w)
{
    if (a == b)
        return Tri::Proved;
    // Equalities the path pins to constants rewrite both sides; if
    // the residue collapses structurally the equality is proved.
    std::unordered_map<u32, u32> env;
    for (const Fact &f : facts) {
        const Node &n = nodes_[f.cond];
        u32 c;
        if (f.truth && n.op == XOp::Eq && nodes_[n.a].op == XOp::VarI &&
            isConstI(n.b, c))
            env.emplace(u32(nodes_[n.a].imm), c);
        else if (n.op == XOp::VarI && vars_[u32(n.imm)].bit)
            env.emplace(u32(n.imm), f.truth ? 1 : 0);
    }
    if (!env.empty()) {
        std::unordered_map<ExprId, ExprId> memo;
        ExprId sa = substitute(a, env, memo);
        ExprId sb = substitute(b, env, memo);
        if (sa == sb)
            return Tri::Proved;
        a = sa;
        b = sb;
    }
    return enumerateOrSample(a, b, facts, false, w);
}

Tri
Ctx::proveEqF(ExprId a, ExprId b, const std::vector<Fact> &facts,
              Witness *w)
{
    if (a == b)
        return Tri::Proved;
    std::unordered_map<u32, u32> env;
    for (const Fact &f : facts) {
        const Node &n = nodes_[f.cond];
        u32 c;
        if (f.truth && n.op == XOp::Eq && nodes_[n.a].op == XOp::VarI &&
            isConstI(n.b, c))
            env.emplace(u32(nodes_[n.a].imm), c);
    }
    if (!env.empty()) {
        std::unordered_map<ExprId, ExprId> memo;
        ExprId sa = substitute(a, env, memo);
        ExprId sb = substitute(b, env, memo);
        if (sa == sb)
            return Tri::Proved;
        a = sa;
        b = sb;
    }
    return enumerateOrSample(a, b, facts, true, w);
}

void
Ctx::resetAssumptions()
{
    disjoint_.clear();
    evalIMemo_.clear();
    evalFMemo_.clear();
    memMemo_.clear();
    evalStamp_ = ~0ull;
}

// ---------------------------------------------------------------------------
// Rendering

std::string
Ctx::render(ExprId id) const
{
    static const char *names[] = {
        "constI", "varI", "add", "sub", "mul", "mulh", "div", "rem",
        "and", "or", "xor", "shl", "shr", "sar", "eq", "ult", "slt",
        "constF", "varF", "fadd", "fsub", "fmul", "fdiv", "fsqrt",
        "fabs", "fneg", "frnd", "fcvtwd", "fcvtzw", "feq", "flt",
        "fle", "meminit", "store", "readi", "readf"};
    std::function<std::string(ExprId, int)> go = [&](ExprId e,
                                                     int depth) {
        const Node &n = nodes_[e];
        std::ostringstream os;
        switch (n.op) {
          case XOp::ConstI:
            os << "0x" << std::hex << u32(n.imm);
            return os.str();
          case XOp::ConstF:
            os << n.fimm;
            return os.str();
          case XOp::VarI:
          case XOp::VarF:
            return vars_[u32(n.imm)].name;
          case XOp::MemInit:
            return std::string("mem0");
          default:
            break;
        }
        if (depth > 8)
            return std::string("...");
        os << "(" << names[u32(n.op)];
        if (n.op == XOp::Store || n.op == XOp::ReadI ||
            n.op == XOp::ReadF)
            os << "." << u32(accSize(n.imm)) << "@+" << accOff(n.imm);
        if (n.a != nilExpr)
            os << " " << go(n.a, depth + 1);
        if (n.b != nilExpr)
            os << " " << go(n.b, depth + 1);
        if (n.c != nilExpr)
            os << " " << go(n.c, depth + 1);
        os << ")";
        return os.str();
    };
    return go(id, 0);
}

} // namespace darco::verify
