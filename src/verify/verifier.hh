/**
 * @file
 * Per-translation equivalence proofs (the verify engine).
 *
 * For every installed translation the TOL captures a VerifyUnit: the
 * recorded construction path (entry, PathElems, trip check, end
 * spec), the frozen pre-chaining host words, the exit-table slice and
 * FP-pool snapshot the region was installed with. The verifier then
 *
 *  1. symbolically executes the host words under the hemu semantics,
 *     enumerating every feasible path with its constraints and guard
 *     events (symhost),
 *  2. rebuilds the region's *unoptimized* IR from the recorded path
 *     with Frontend::build — deterministic in the captured inputs —
 *     and evaluates it symbolically (symguest), and
 *  3. discharges, per host path, the obligations that make the
 *     translation architecturally invisible:
 *
 *     - the branch ladder matches the region's cond-exit ladder in
 *       order, outcome, and condition (catches flipped exits),
 *     - every guest assert in the exit's program-order prefix is
 *       enforced on the path with the same id/polarity/condition
 *       (catches dropped guards); hoisting extra asserts is sound,
 *     - every guest div in the prefix has a host div with equivalent
 *       operands (fault equivalence) unless it provably cannot fault,
 *     - every guest location and the guest memory state agree with
 *       the host's at the exit point, under the path constraints,
 *     - indirect exits produce an equivalent dynamic target, and
 *     - the promote path (profiling preamble) preserves the entire
 *       pre-region state.
 *
 *     Guard-failure paths are covered structurally: the region opens
 *     with CKPT, every guest-visible effect stays buffered until the
 *     single COMMIT, and guards only execute speculatively, so a
 *     firing guard rolls back to exactly the pre-region state
 *     (symhost refuses regions violating that discipline).
 *
 * A proof failure is Refuted and carries a concrete, minimized
 * counterexample witness; obligations the engine can neither prove
 * nor refute are reported Unknown, never silently passed.
 */

#ifndef DARCO_VERIFY_VERIFIER_HH
#define DARCO_VERIFY_VERIFIER_HH

#include <optional>
#include <string>
#include <vector>

#include "tol/frontend.hh"
#include "tol/ir.hh"
#include "tol/registry.hh"
#include "verify/expr.hh"

namespace darco::verify
{

/** Everything needed to re-derive and check one translation. */
struct VerifyUnit
{
    GAddr entry = 0;
    tol::RegionMode mode = tol::RegionMode::BB;
    std::vector<tol::PathElem> path;
    std::optional<tol::TripCheck> trip;
    std::optional<tol::Frontend::EndSpec> end;
    bool profile = false;   //!< promotion preamble present
    bool fuseFlags = true;  //!< frontend option at build time
    std::vector<u32> words; //!< frozen pre-chaining host words
    u32 exitIdBase = 0;
    u32 promoteExitId = ~0u; //!< global id of the promote exit
    std::vector<tol::ExitDesc> exits; //!< registry exit slice
    std::vector<double> fpPool;       //!< FLDC pool snapshot
    u32 tid = ~0u;
};

struct VerifyOptions
{
    u32 concretizeBudget = 4096; //!< verify.concretize
    u32 sampleTries = 128;       //!< verify.witness
    u32 pathLimit = 256;         //!< verify.paths
};

enum class Verdict : u8
{
    Proved,
    Refuted,
    Unknown,
};

struct VerifyResult
{
    Verdict verdict = Verdict::Proved;
    GAddr entry = 0;
    tol::RegionMode mode = tol::RegionMode::BB;
    u32 tid = ~0u;
    std::string detail;  //!< failed/undecided obligation
    std::string witness; //!< rendered counterexample (Refuted)
};

struct VerifyReport
{
    std::vector<VerifyResult> results;
    u32 proved = 0;
    u32 refuted = 0;
    u32 unknown = 0;

    void
    add(VerifyResult r)
    {
        switch (r.verdict) {
          case Verdict::Proved: ++proved; break;
          case Verdict::Refuted: ++refuted; break;
          case Verdict::Unknown: ++unknown; break;
        }
        results.push_back(std::move(r));
    }
    bool clean() const { return refuted == 0 && unknown == 0; }
    std::string summary() const;
};

/** Prove one translation equivalent to its guest path. */
VerifyResult verifyUnit(const VerifyUnit &unit,
                        const VerifyOptions &opts);

} // namespace darco::verify

#endif // DARCO_VERIFY_VERIFIER_HH
