/**
 * @file
 * Shared naming of the symbolic pre-region guest state.
 *
 * Both sides of an equivalence proof — the guest IR evaluator and the
 * host region executor — must agree on the leaf variables that denote
 * the architectural state at region entry. The guest side sees IR
 * locations (ir.hh locs); the host side sees the fixed register
 * mapping (hisa.hh regmap). This header pins one variable name per
 * location so the two sides intern the *same* expression leaves.
 *
 * Flag locations are declared {0,1}-domain: the dispatch loop always
 * materializes guest flags as 0/1 in r9..r12 (loadGuestState), and
 * the frontend only ever assigns 0/1-valued expressions to flag locs.
 * The bit domain is what makes exhaustive concretization of branch
 * conditions a real proof.
 */

#ifndef DARCO_VERIFY_LOCS_HH
#define DARCO_VERIFY_LOCS_HH

#include <string>

#include "tol/ir.hh"
#include "verify/expr.hh"

namespace darco::verify
{

/** Variable name for an IR location. */
inline std::string
locName(u16 loc)
{
    using namespace tol;
    if (loc >= locGpr0 && loc < locGpr0 + 8)
        return "g" + std::to_string(loc - locGpr0);
    switch (loc) {
      case locFlagZ: return "fZ";
      case locFlagS: return "fS";
      case locFlagC: return "fC";
      case locFlagO: return "fO";
      default: break;
    }
    if (loc >= locFpr0 && loc < locFpr0 + 8)
        return "f" + std::to_string(loc - locFpr0);
    return "loc" + std::to_string(loc);
}

/** The pre-region symbolic value of an IR location. */
inline ExprId
locVar(Ctx &ctx, u16 loc)
{
    bool flag = loc >= tol::locFlagZ && loc <= tol::locFlagO;
    if (tol::locIsFp(loc))
        return ctx.varF(locName(loc));
    return ctx.varI(locName(loc), flag);
}

} // namespace darco::verify

#endif // DARCO_VERIFY_LOCS_HH
