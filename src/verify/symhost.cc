#include "verify/symhost.hh"

#include <deque>
#include <map>

#include "host/hisa.hh"
#include "verify/locs.hh"

namespace darco::verify
{

using host::HInst;
using host::HOp;
namespace regmap = host::regmap;

namespace
{

/** One speculative-load record (alias-table entry). */
struct SpecLoad
{
    ExprId root;
    u32 off;
    u8 size;
};

/** In-flight DFS state. */
struct Machine
{
    u32 pc = 0;
    bool speculative = false;
    std::array<ExprId, 32> gpr{};
    std::array<ExprId, 32> fpr{};
    ExprId mem = nilExpr;
    /** TOL-local memory: concrete address -> value. */
    std::map<u32, ExprId> localI;
    std::map<u32, ExprId> localF;
    std::vector<SpecLoad> specLoads;
    HostPath out;
};

class HostExec
{
  public:
    HostExec(Ctx &ctx, const std::vector<u32> &words,
             const std::vector<double> &fp_pool, u32 path_limit)
        : ctx_(ctx), words_(words), fpPool_(fp_pool),
          pathLimit_(path_limit)
    {
    }

    SymHostResult
    run()
    {
        Machine m0;
        m0.mem = ctx_.memInit();
        m0.gpr[0] = ctx_.zero();
        for (unsigned i = 0; i < 8; ++i)
            m0.gpr[regmap::guestGprBase + i] =
                locVar(ctx_, u16(tol::locGpr0 + i));
        m0.gpr[regmap::flagZ] = locVar(ctx_, tol::locFlagZ);
        m0.gpr[regmap::flagS] = locVar(ctx_, tol::locFlagS);
        m0.gpr[regmap::flagC] = locVar(ctx_, tol::locFlagC);
        m0.gpr[regmap::flagO] = locVar(ctx_, tol::locFlagO);
        // Scratch and allocatable temps hold arbitrary values at
        // region entry; a translation must not let them leak into
        // guest-visible outputs.
        for (unsigned r = regmap::scratch0; r < host::numHRegs; ++r)
            m0.gpr[r] = ctx_.varI("hr" + std::to_string(r));
        for (unsigned i = 0; i < 8; ++i)
            m0.fpr[regmap::guestFprBase + i] =
                locVar(ctx_, u16(tol::locFpr0 + i));
        for (unsigned f = regmap::ftempBase; f < host::numHFRegs; ++f)
            m0.fpr[f] = ctx_.varF("hf" + std::to_string(f));

        std::deque<Machine> work;
        work.push_back(std::move(m0));
        while (!work.empty()) {
            if (res_.paths.size() + work.size() > pathLimit_) {
                res_.error = "path limit exceeded";
                res_.paths.clear();
                return std::move(res_);
            }
            Machine m = std::move(work.front());
            work.pop_front();
            step(std::move(m), work);
            if (!res_.error.empty()) {
                res_.paths.clear();
                return std::move(res_);
            }
        }
        return std::move(res_);
    }

  private:
    void
    finish(Machine &&m)
    {
        m.out.gpr = m.gpr;
        m.out.fpr = m.fpr;
        m.out.mem = m.mem;
        res_.paths.push_back(std::move(m.out));
    }

    void
    fail(Machine &&m, const std::string &why)
    {
        m.out.structuralError = why + " @word " + std::to_string(m.pc);
        finish(std::move(m));
    }

    void
    writeGpr(Machine &m, u8 rd, ExprId v)
    {
        m.gpr[rd] = v;
        m.gpr[0] = ctx_.zero(); // writes to r0 are discarded
    }

    bool
    localAddr(const Machine &m, const HInst &i, u32 &addr)
    {
        u32 base;
        if (!ctx_.isConstI(m.gpr[i.rs1], base))
            return false;
        addr = base + u32(i.imm);
        return true;
    }

    /** Unwritten TOL-local slots hold arbitrary (but fixed) values. */
    ExprId
    localReadI(Machine &m, u32 addr)
    {
        auto it = m.localI.find(addr);
        if (it != m.localI.end())
            return it->second;
        ExprId v = ctx_.varI("lm" + std::to_string(addr));
        m.localI.emplace(addr, v);
        return v;
    }

    ExprId
    localReadF(Machine &m, u32 addr)
    {
        auto it = m.localF.find(addr);
        if (it != m.localF.end())
            return it->second;
        ExprId v = ctx_.varF("lmf" + std::to_string(addr));
        m.localF.emplace(addr, v);
        return v;
    }

    /** Checked store: the alias table found no overlap with any
     *  recorded speculative load, or the region rolled back. On the
     *  surviving path that is a disjointness fact.
     *  @return false when the store *provably* overlaps a speculative
     *  load: the guard always fires, so the pass path is infeasible
     *  (the region invariably rolls back here and the runtime
     *  recreates it without speculation). */
    bool
    aliasPass(Machine &m, ExprId root, u32 off, u8 size)
    {
        for (const SpecLoad &l : m.specLoads) {
            if (ctx_.provablyOverlapping(root, off, size, l.root,
                                         l.off, l.size))
                return false;
            ctx_.assumeDisjoint(root, off, size, l.root, l.off, l.size);
        }
        return true;
    }

    void
    branch(Machine &&m, std::deque<Machine> &work, ExprId cond,
           s32 imm)
    {
        u32 taken_pc = m.pc + 1 + u32(imm);
        u32 fall_pc = m.pc + 1;
        if (taken_pc <= m.pc || taken_pc > u32(words_.size())) {
            // Backward or out-of-range branches never appear in
            // generated regions (single-pass forward codegen); a
            // bounded DFS depends on that.
            fail(std::move(m), "non-forward branch target");
            return;
        }
        u32 cv;
        if (ctx_.isConstI(cond, cv)) {
            m.out.branches.push_back({cond, cv != 0});
            m.pc = cv != 0 ? taken_pc : fall_pc;
            work.push_back(std::move(m));
            return;
        }
        Machine taken = m; // fork
        taken.out.branches.push_back({cond, true});
        taken.out.facts.push_back({cond, true});
        taken.pc = taken_pc;
        work.push_back(std::move(taken));
        m.out.branches.push_back({cond, false});
        m.out.facts.push_back({cond, false});
        m.pc = fall_pc;
        work.push_back(std::move(m));
    }

    void
    step(Machine &&m, std::deque<Machine> &work)
    {
        for (;;) {
            if (m.pc >= u32(words_.size())) {
                fail(std::move(m), "fell off region end");
                return;
            }
            if (m.pc == 0) {
                HInst first = host::hdecode(words_[0]);
                if (first.op != HOp::CKPT) {
                    fail(std::move(m),
                         "region does not open with CKPT");
                    return;
                }
            }
            const HInst i = host::hdecode(words_[m.pc]);
            // After COMMIT the only legal tail is RETIRE -> exit:
            // everything guest-visible must be inside the
            // speculative window for guard rollback to be exact.
            if (m.out.commits > 0 && i.op != HOp::RETIRE &&
                i.op != HOp::EXITB && i.op != HOp::IBTC &&
                i.op != HOp::COMMIT) {
                fail(std::move(m), "instruction after COMMIT");
                return;
            }
            ExprId a, addr;
            switch (i.op) {
              case HOp::NOP:
                break;

              // --- integer ALU ------------------------------------
              case HOp::ADD:
                writeGpr(m, i.rd, ctx_.add(m.gpr[i.rs1], m.gpr[i.rs2]));
                break;
              case HOp::SUB:
                writeGpr(m, i.rd, ctx_.sub(m.gpr[i.rs1], m.gpr[i.rs2]));
                break;
              case HOp::MUL:
                writeGpr(m, i.rd, ctx_.mul(m.gpr[i.rs1], m.gpr[i.rs2]));
                break;
              case HOp::MULH:
                writeGpr(m, i.rd,
                         ctx_.mulh(m.gpr[i.rs1], m.gpr[i.rs2]));
                break;
              case HOp::DIV:
              case HOp::REM: {
                ExprId da = m.gpr[i.rs1], db = m.gpr[i.rs2];
                if (!m.speculative) {
                    fail(std::move(m), "DIV outside CKPT window");
                    return;
                }
                m.out.divs.push_back({da, db});
                // Surviving the instruction means no fault.
                m.out.facts.push_back({ctx_.eq(db, ctx_.zero()), false});
                m.out.facts.push_back(
                    {ctx_.and_(ctx_.eq(da, ctx_.constI(0x80000000u)),
                               ctx_.eq(db, ctx_.constI(0xffffffffu))),
                     false});
                writeGpr(m, i.rd,
                         i.op == HOp::DIV ? ctx_.div(da, db)
                                          : ctx_.rem(da, db));
                break;
              }
              case HOp::AND:
                writeGpr(m, i.rd,
                         ctx_.and_(m.gpr[i.rs1], m.gpr[i.rs2]));
                break;
              case HOp::OR:
                writeGpr(m, i.rd, ctx_.or_(m.gpr[i.rs1], m.gpr[i.rs2]));
                break;
              case HOp::XOR:
                writeGpr(m, i.rd,
                         ctx_.xor_(m.gpr[i.rs1], m.gpr[i.rs2]));
                break;
              case HOp::SLL:
                writeGpr(m, i.rd, ctx_.shl(m.gpr[i.rs1], m.gpr[i.rs2]));
                break;
              case HOp::SRL:
                writeGpr(m, i.rd, ctx_.shr(m.gpr[i.rs1], m.gpr[i.rs2]));
                break;
              case HOp::SRA:
                writeGpr(m, i.rd, ctx_.sar(m.gpr[i.rs1], m.gpr[i.rs2]));
                break;
              case HOp::SLT:
                writeGpr(m, i.rd, ctx_.slt(m.gpr[i.rs1], m.gpr[i.rs2]));
                break;
              case HOp::SLTU:
                writeGpr(m, i.rd, ctx_.ult(m.gpr[i.rs1], m.gpr[i.rs2]));
                break;
              case HOp::SEQ:
                writeGpr(m, i.rd, ctx_.eq(m.gpr[i.rs1], m.gpr[i.rs2]));
                break;
              case HOp::SNE:
                writeGpr(m, i.rd, ctx_.ne(m.gpr[i.rs1], m.gpr[i.rs2]));
                break;
              case HOp::SGE:
                writeGpr(m, i.rd, ctx_.sge(m.gpr[i.rs1], m.gpr[i.rs2]));
                break;
              case HOp::SGEU:
                writeGpr(m, i.rd, ctx_.uge(m.gpr[i.rs1], m.gpr[i.rs2]));
                break;
              case HOp::ADDI:
                writeGpr(m, i.rd,
                         ctx_.add(m.gpr[i.rs1], ctx_.constI(u32(i.imm))));
                break;
              case HOp::ANDI:
                writeGpr(m, i.rd,
                         ctx_.and_(m.gpr[i.rs1],
                                   ctx_.constI(u32(i.imm) & 0x3fffu)));
                break;
              case HOp::ORI:
                writeGpr(m, i.rd,
                         ctx_.or_(m.gpr[i.rs1],
                                  ctx_.constI(u32(i.imm) & 0x3fffu)));
                break;
              case HOp::XORI:
                writeGpr(m, i.rd,
                         ctx_.xor_(m.gpr[i.rs1],
                                   ctx_.constI(u32(i.imm) & 0x3fffu)));
                break;
              case HOp::SLLI:
                writeGpr(m, i.rd,
                         ctx_.shl(m.gpr[i.rs1],
                                  ctx_.constI(u32(i.imm) & 31u)));
                break;
              case HOp::SRLI:
                writeGpr(m, i.rd,
                         ctx_.shr(m.gpr[i.rs1],
                                  ctx_.constI(u32(i.imm) & 31u)));
                break;
              case HOp::SRAI:
                writeGpr(m, i.rd,
                         ctx_.sar(m.gpr[i.rs1],
                                  ctx_.constI(u32(i.imm) & 31u)));
                break;
              case HOp::SLTI:
                writeGpr(m, i.rd,
                         ctx_.slt(m.gpr[i.rs1], ctx_.constI(u32(i.imm))));
                break;
              case HOp::SEQI:
                writeGpr(m, i.rd,
                         ctx_.eq(m.gpr[i.rs1],
                                 ctx_.constI(u32(i.imm) & 0x3fffu)));
                break;
              case HOp::SNEI:
                writeGpr(m, i.rd,
                         ctx_.ne(m.gpr[i.rs1],
                                 ctx_.constI(u32(i.imm) & 0x3fffu)));
                break;
              case HOp::LUI:
                writeGpr(m, i.rd, ctx_.constI(u32(i.imm) << 13));
                break;

              // --- guest memory -----------------------------------
              case HOp::LB:
              case HOp::LBU:
              case HOp::LH:
              case HOp::LHU:
              case HOp::LW:
              case HOp::LWS: {
                addr = ctx_.add(m.gpr[i.rs1], ctx_.constI(u32(i.imm)));
                auto [root, off] = ctx_.stripAddr(addr);
                u8 size = (i.op == HOp::LB || i.op == HOp::LBU) ? 1
                          : (i.op == HOp::LH || i.op == HOp::LHU)
                              ? 2
                              : 4;
                ExprId v = ctx_.readI(m.mem, root, off, size);
                if (i.op == HOp::LB)
                    v = ctx_.sar(ctx_.shl(v, ctx_.constI(24)),
                                 ctx_.constI(24));
                else if (i.op == HOp::LH)
                    v = ctx_.sar(ctx_.shl(v, ctx_.constI(16)),
                                 ctx_.constI(16));
                if (i.op == HOp::LWS) {
                    if (!m.speculative) {
                        fail(std::move(m),
                             "LWS outside CKPT window");
                        return;
                    }
                    m.specLoads.push_back({root, off, 4});
                }
                writeGpr(m, i.rd, v);
                break;
              }
              case HOp::FLD:
              case HOp::FLDS: {
                addr = ctx_.add(m.gpr[i.rs1], ctx_.constI(u32(i.imm)));
                auto [root, off] = ctx_.stripAddr(addr);
                if (i.op == HOp::FLDS) {
                    if (!m.speculative) {
                        fail(std::move(m),
                             "FLDS outside CKPT window");
                        return;
                    }
                    m.specLoads.push_back({root, off, 8});
                }
                m.fpr[i.rd] = ctx_.readF(m.mem, root, off);
                break;
              }
              case HOp::SB:
              case HOp::SH:
              case HOp::SW:
              case HOp::SBC:
              case HOp::SHC:
              case HOp::SWC: {
                addr = ctx_.add(m.gpr[i.rs1], ctx_.constI(u32(i.imm)));
                auto [root, off] = ctx_.stripAddr(addr);
                u8 size = (i.op == HOp::SB || i.op == HOp::SBC) ? 1
                          : (i.op == HOp::SH || i.op == HOp::SHC)
                              ? 2
                              : 4;
                bool checked = i.op == HOp::SBC || i.op == HOp::SHC ||
                               i.op == HOp::SWC;
                if (checked && !aliasPass(m, root, off, size))
                    return; // pass path infeasible: always rolls back
                m.mem = ctx_.store(m.mem, root, off, size, false,
                                   m.gpr[i.rs2]);
                break;
              }
              case HOp::FST:
              case HOp::FSTC: {
                addr = ctx_.add(m.gpr[i.rs1], ctx_.constI(u32(i.imm)));
                auto [root, off] = ctx_.stripAddr(addr);
                if (i.op == HOp::FSTC && !aliasPass(m, root, off, 8))
                    return; // pass path infeasible: always rolls back
                m.mem = ctx_.store(m.mem, root, off, 8, true,
                                   m.fpr[i.rs2]);
                break;
              }

              // --- TOL-local memory -------------------------------
              case HOp::LWL: {
                u32 la;
                if (!localAddr(m, i, la)) {
                    fail(std::move(m), "LWL with symbolic address");
                    return;
                }
                writeGpr(m, i.rd, localReadI(m, la));
                break;
              }
              case HOp::SWL: {
                u32 la;
                if (!localAddr(m, i, la)) {
                    fail(std::move(m), "SWL with symbolic address");
                    return;
                }
                m.localI[la] = m.gpr[i.rs2];
                break;
              }
              case HOp::FLDL: {
                u32 la;
                if (!localAddr(m, i, la)) {
                    fail(std::move(m), "FLDL with symbolic address");
                    return;
                }
                m.fpr[i.rd] = localReadF(m, la);
                break;
              }
              case HOp::FSTL: {
                u32 la;
                if (!localAddr(m, i, la)) {
                    fail(std::move(m), "FSTL with symbolic address");
                    return;
                }
                m.localF[la] = m.fpr[i.rs2];
                break;
              }
              case HOp::FLDC:
                if (u32(i.imm) >= fpPool_.size()) {
                    fail(std::move(m), "FLDC out of pool bounds");
                    return;
                }
                m.fpr[i.rd] = ctx_.constF(fpPool_[u32(i.imm)]);
                break;

              // --- FP ---------------------------------------------
              case HOp::FADD:
                m.fpr[i.rd] =
                    ctx_.fbin(XOp::FAdd, m.fpr[i.rs1], m.fpr[i.rs2]);
                break;
              case HOp::FSUB:
                m.fpr[i.rd] =
                    ctx_.fbin(XOp::FSub, m.fpr[i.rs1], m.fpr[i.rs2]);
                break;
              case HOp::FMUL:
                m.fpr[i.rd] =
                    ctx_.fbin(XOp::FMul, m.fpr[i.rs1], m.fpr[i.rs2]);
                break;
              case HOp::FDIV:
                m.fpr[i.rd] =
                    ctx_.fbin(XOp::FDiv, m.fpr[i.rs1], m.fpr[i.rs2]);
                break;
              case HOp::FSQRT:
                m.fpr[i.rd] = ctx_.fun(XOp::FSqrt, m.fpr[i.rs1]);
                break;
              case HOp::FABS:
                m.fpr[i.rd] = ctx_.fun(XOp::FAbs, m.fpr[i.rs1]);
                break;
              case HOp::FNEG:
                m.fpr[i.rd] = ctx_.fun(XOp::FNeg, m.fpr[i.rs1]);
                break;
              case HOp::FMOV:
                m.fpr[i.rd] = m.fpr[i.rs1];
                break;
              case HOp::FRND:
                m.fpr[i.rd] = ctx_.fun(XOp::FRnd, m.fpr[i.rs1]);
                break;
              case HOp::FCVTWD:
                m.fpr[i.rd] = ctx_.fun(XOp::FCvtWD, m.gpr[i.rs1]);
                break;
              case HOp::FCVTZW:
                writeGpr(m, i.rd, ctx_.fun(XOp::FCvtZW, m.fpr[i.rs1]));
                break;
              case HOp::FEQ:
                writeGpr(m, i.rd,
                         ctx_.fcmp(XOp::FEq, m.fpr[i.rs1],
                                   m.fpr[i.rs2]));
                break;
              case HOp::FLT:
                writeGpr(m, i.rd,
                         ctx_.fcmp(XOp::FLt, m.fpr[i.rs1],
                                   m.fpr[i.rs2]));
                break;
              case HOp::FLE:
                writeGpr(m, i.rd,
                         ctx_.fcmp(XOp::FLe, m.fpr[i.rs1],
                                   m.fpr[i.rs2]));
                break;

              // --- branches ---------------------------------------
              case HOp::BEQ:
                branch(std::move(m), work,
                       ctx_.eq(m.gpr[i.rs1], m.gpr[i.rs2]), i.imm);
                return;
              case HOp::BNE:
                branch(std::move(m), work,
                       ctx_.ne(m.gpr[i.rs1], m.gpr[i.rs2]), i.imm);
                return;
              case HOp::BLT:
                branch(std::move(m), work,
                       ctx_.slt(m.gpr[i.rs1], m.gpr[i.rs2]), i.imm);
                return;
              case HOp::BGE:
                branch(std::move(m), work,
                       ctx_.sge(m.gpr[i.rs1], m.gpr[i.rs2]), i.imm);
                return;
              case HOp::BLTU:
                branch(std::move(m), work,
                       ctx_.ult(m.gpr[i.rs1], m.gpr[i.rs2]), i.imm);
                return;
              case HOp::BGEU:
                branch(std::move(m), work,
                       ctx_.uge(m.gpr[i.rs1], m.gpr[i.rs2]), i.imm);
                return;
              case HOp::J:
                // Frozen install-time words are pre-chaining; a J can
                // only appear in live (patched) cache words.
                fail(std::move(m), "J in frozen region words");
                return;

              // --- co-design primitives ---------------------------
              case HOp::CKPT:
                if (m.pc != 0 || m.speculative) {
                    fail(std::move(m), "CKPT not the region opener");
                    return;
                }
                m.speculative = true;
                m.specLoads.clear();
                break;
              case HOp::COMMIT:
                if (!m.speculative) {
                    fail(std::move(m), "COMMIT outside CKPT window");
                    return;
                }
                m.speculative = false;
                ++m.out.commits;
                break;
              case HOp::ASSERTZ:
              case HOp::ASSERTNZ: {
                if (!m.speculative) {
                    fail(std::move(m), "ASSERT outside CKPT window");
                    return;
                }
                a = m.gpr[i.rs1];
                bool nz = i.op == HOp::ASSERTNZ;
                m.out.asserts.push_back({u32(i.imm), a, nz});
                // Surviving means the asserted disposition held.
                m.out.facts.push_back({ctx_.eq(a, ctx_.zero()), !nz});
                break;
              }
              case HOp::IBTC:
                if (m.out.commits != 1) {
                    fail(std::move(m), "IBTC without single COMMIT");
                    return;
                }
                m.out.indirect = true;
                m.out.ibtcTarget = m.gpr[i.rs1];
                finish(std::move(m));
                return;
              case HOp::EXITB:
                if (m.out.commits != 1) {
                    fail(std::move(m), "EXITB without single COMMIT");
                    return;
                }
                m.out.exitId = u32(i.imm);
                finish(std::move(m));
                return;
              case HOp::RETIRE:
                m.out.exitId = u32(i.imm);
                break;

              default:
                fail(std::move(m), "undecodable host word");
                return;
            }
            ++m.pc;
        }
    }

    Ctx &ctx_;
    const std::vector<u32> &words_;
    const std::vector<double> &fpPool_;
    u32 pathLimit_;
    SymHostResult res_;
};

} // namespace

SymHostResult
symExecHost(Ctx &ctx, const std::vector<u32> &words,
            const std::vector<double> &fp_pool, u32 path_limit)
{
    return HostExec(ctx, words, fp_pool, path_limit).run();
}

} // namespace darco::verify
