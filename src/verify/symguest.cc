#include "verify/symguest.hh"

#include "verify/locs.hh"

namespace darco::verify
{

using tol::IRItem;
using tol::IROp;

GuestSummary
symEvalGuest(Ctx &ctx, const tol::Region &region)
{
    GuestSummary out;
    std::vector<ExprId> val(std::size_t(region.numValues), nilExpr);
    ExprId mem = ctx.memInit();
    out.exits.resize(region.exits.size());

    auto snapshot = [&](u32 exit_idx, ExprId cond, bool invert,
                        s32 traversal_pos) {
        const tol::IRExit &x = region.exits[exit_idx];
        GuestExit &ge = out.exits[exit_idx];
        for (u16 loc = 0; loc < tol::numLocs; ++loc)
            ge.outs[loc] = locVar(ctx, loc);
        for (auto [loc, v] : x.liveOuts)
            ge.outs[loc] = val[std::size_t(v)];
        ge.mem = mem;
        ge.cond = cond;
        ge.condInvert = invert;
        ge.traversalPos = traversal_pos;
        ge.assertPrefix = u32(out.asserts.size());
        ge.divPrefix = u32(out.divs.size());
        if (x.targetVal >= 0)
            ge.targetVal = val[std::size_t(x.targetVal)];
    };

    for (const IRItem &it : region.items) {
        if (it.kind == IRItem::Kind::CondExit) {
            s32 pos = s32(out.traversal.size());
            out.traversal.push_back(it.exitIdx);
            snapshot(it.exitIdx, val[std::size_t(it.cond)],
                     it.condInvert, pos);
            continue;
        }
        const tol::IRInst &i = it.inst;
        auto s1 = [&] { return val[std::size_t(i.src1)]; };
        auto s2 = [&] {
            return i.src2Imm ? ctx.constI(u32(i.imm))
                             : val[std::size_t(i.src2)];
        };
        ExprId r = nilExpr;
        switch (i.op) {
          case IROp::LiveIn: r = locVar(ctx, i.loc); break;
          case IROp::Movi: r = ctx.constI(u32(i.imm)); break;
          case IROp::Mov: r = s1(); break;
          case IROp::Add: r = ctx.add(s1(), s2()); break;
          case IROp::Sub: r = ctx.sub(s1(), s2()); break;
          case IROp::Mul: r = ctx.mul(s1(), s2()); break;
          case IROp::MulH: r = ctx.mulh(s1(), s2()); break;
          case IROp::Div:
          case IROp::Rem: {
            ExprId a = s1(), b = s2();
            out.divs.push_back({a, b});
            r = i.op == IROp::Div ? ctx.div(a, b) : ctx.rem(a, b);
            break;
          }
          case IROp::And: r = ctx.and_(s1(), s2()); break;
          case IROp::Or: r = ctx.or_(s1(), s2()); break;
          case IROp::Xor: r = ctx.xor_(s1(), s2()); break;
          case IROp::Sll: r = ctx.shl(s1(), s2()); break;
          case IROp::Srl: r = ctx.shr(s1(), s2()); break;
          case IROp::Sra: r = ctx.sar(s1(), s2()); break;
          case IROp::Slt: r = ctx.slt(s1(), s2()); break;
          case IROp::Sltu: r = ctx.ult(s1(), s2()); break;
          case IROp::Seq: r = ctx.eq(s1(), s2()); break;
          case IROp::Sne: r = ctx.ne(s1(), s2()); break;
          case IROp::Sge: r = ctx.sge(s1(), s2()); break;
          case IROp::Sgeu: r = ctx.uge(s1(), s2()); break;
          case IROp::Ld8u:
          case IROp::Ld8s:
          case IROp::Ld16u:
          case IROp::Ld16s:
          case IROp::Ld32: {
            ExprId addr = ctx.add(s1(), ctx.constI(u32(i.imm)));
            auto [root, off] = ctx.stripAddr(addr);
            u8 size = (i.op == IROp::Ld8u || i.op == IROp::Ld8s) ? 1
                      : (i.op == IROp::Ld16u || i.op == IROp::Ld16s)
                          ? 2
                          : 4;
            r = ctx.readI(mem, root, off, size);
            if (i.op == IROp::Ld8s)
                r = ctx.sar(ctx.shl(r, ctx.constI(24)),
                            ctx.constI(24));
            else if (i.op == IROp::Ld16s)
                r = ctx.sar(ctx.shl(r, ctx.constI(16)),
                            ctx.constI(16));
            break;
          }
          case IROp::St8:
          case IROp::St16:
          case IROp::St32: {
            ExprId addr = ctx.add(s1(), ctx.constI(u32(i.imm)));
            auto [root, off] = ctx.stripAddr(addr);
            u8 size = i.op == IROp::St8    ? 1
                      : i.op == IROp::St16 ? 2
                                           : 4;
            mem = ctx.store(mem, root, off, size, false,
                            val[std::size_t(i.src2)]);
            break;
          }
          case IROp::FConst: r = ctx.constF(i.fimm); break;
          case IROp::FAdd:
            r = ctx.fbin(XOp::FAdd, s1(), val[std::size_t(i.src2)]);
            break;
          case IROp::FSub:
            r = ctx.fbin(XOp::FSub, s1(), val[std::size_t(i.src2)]);
            break;
          case IROp::FMul:
            r = ctx.fbin(XOp::FMul, s1(), val[std::size_t(i.src2)]);
            break;
          case IROp::FDiv:
            r = ctx.fbin(XOp::FDiv, s1(), val[std::size_t(i.src2)]);
            break;
          case IROp::FSqrt: r = ctx.fun(XOp::FSqrt, s1()); break;
          case IROp::FAbs: r = ctx.fun(XOp::FAbs, s1()); break;
          case IROp::FNeg: r = ctx.fun(XOp::FNeg, s1()); break;
          case IROp::FMov: r = s1(); break;
          case IROp::FRnd: r = ctx.fun(XOp::FRnd, s1()); break;
          case IROp::FCvtWD: r = ctx.fun(XOp::FCvtWD, s1()); break;
          case IROp::FCvtZW: r = ctx.fun(XOp::FCvtZW, s1()); break;
          case IROp::FEq:
            r = ctx.fcmp(XOp::FEq, s1(), val[std::size_t(i.src2)]);
            break;
          case IROp::FLt:
            r = ctx.fcmp(XOp::FLt, s1(), val[std::size_t(i.src2)]);
            break;
          case IROp::FLe:
            r = ctx.fcmp(XOp::FLe, s1(), val[std::size_t(i.src2)]);
            break;
          case IROp::FLd: {
            ExprId addr = ctx.add(s1(), ctx.constI(u32(i.imm)));
            auto [root, off] = ctx.stripAddr(addr);
            r = ctx.readF(mem, root, off);
            break;
          }
          case IROp::FSt: {
            ExprId addr = ctx.add(s1(), ctx.constI(u32(i.imm)));
            auto [root, off] = ctx.stripAddr(addr);
            mem = ctx.store(mem, root, off, 8, true,
                            val[std::size_t(i.src2)]);
            break;
          }
          case IROp::Assert:
            out.asserts.push_back(
                {i.assertId, s1(), i.expectNonZero});
            break;
          default:
            out.error = "unmodeled IR op";
            return out;
        }
        if (i.dst >= 0)
            val[std::size_t(i.dst)] = r;
    }
    snapshot(region.finalExit, nilExpr, false, -1);
    return out;
}

} // namespace darco::verify
