/**
 * @file
 * Distributed campaign service: coordinator + worker fleet.
 *
 * Scales the campaign engine past one process: a long-lived
 * Coordinator owns the expanded job matrix and shards it over TCP to
 * any number of worker processes (darco_campaign --worker), which run
 * each job through exactly the same runJob path as a local campaign —
 * so distributed result rows and stats are byte-identical to local
 * ones (provenance columns aside).
 *
 * Robustness is structural, not best-effort:
 *
 *  - Registration + heartbeats. A worker introduces itself (hello →
 *    welcome) and pings at the negotiated interval while executing.
 *    A worker silent for `deadAfterMs` — or whose connection drops —
 *    is declared dead and its in-flight job returns to the queue.
 *
 *  - Per-job leases. Every assignment carries a deadline
 *    (assign time + leaseMs, NOT renewed by heartbeats: a live worker
 *    stuck in a pathological job must not pin it forever). On expiry
 *    the job is reassigned; a late result from the original worker is
 *    accepted if it still arrives first, and dropped as a duplicate
 *    otherwise — completion is recorded exactly once per job.
 *
 *  - Bounded in-flight window (backpressure). Job i is dispatched
 *    only while i < emitted + window, which bounds the submission-
 *    order reorder buffer; workers asking for work beyond the window
 *    are told to wait. window >= worker count keeps everyone busy.
 *
 *  - Campaign manifest. With a manifest path configured, the
 *    coordinator journals one framed record per completed job
 *    (flushed before the row is emitted). A restarted coordinator
 *    replays the journal — validating that it belongs to this exact
 *    campaign via a content hash, and discarding a torn tail from a
 *    mid-write crash — re-emits the recorded rows, and only runs the
 *    remainder.
 *
 *  - Content-addressed checkpoint store. With a store directory
 *    configured, workers fetch-or-compute functional-prefix
 *    checkpoints keyed by jobKeyString over the wire (images are
 *    host-agnostic, so heterogeneous workers share them); the
 *    coordinator persists images with exclusive-create tmp+rename
 *    writes, so racing publishers never tear an entry.
 *
 * Result rows stream to the onRow callback incrementally, strictly in
 * job-submission order (identical to local runCampaign report order).
 */

#ifndef DARCO_CAMPAIGN_SERVICE_HH
#define DARCO_CAMPAIGN_SERVICE_HH

#include <memory>

#include "campaign/campaign.hh"
#include "common/types.hh"

namespace darco::campaign
{

/** Coordinator configuration. */
struct ServiceOptions
{
    /** Bind address; default loopback only (opt into exposure). */
    std::string bind = "127.0.0.1";
    /** Listen port; 0 picks an ephemeral port (see Coordinator::port). */
    u16 port = 0;

    /**
     * Campaign manifest journal; empty disables resume. The file is
     * created on first run and replayed on restart; resuming with a
     * manifest recorded for a *different* campaign (any change to the
     * job list or run options) is refused.
     */
    std::string manifestPath;

    /**
     * Content-addressed checkpoint-store directory; empty disables
     * the over-the-wire store (workers then fall back to their own
     * local --checkpoint-dir, if any).
     */
    std::string storeDir;

    /** Per-job lease; an assignment older than this is reassigned. */
    u64 leaseMs = 5 * 60 * 1000;
    /** Worker heartbeat interval handed out at registration. */
    u64 heartbeatMs = 1000;
    /** A worker silent this long is dead (covers lost heartbeats). */
    u64 deadAfterMs = 10 * 1000;
    /** In-flight dispatch window past the last emitted row. */
    unsigned window = 64;
    /** Delay carried by `wait` replies when nothing is runnable. */
    u64 waitDelayMs = 200;

    /**
     * Campaign-level execution knobs forwarded to every worker
     * (timing, sample mode/parameters). Local-only fields (jobs,
     * checkpointDir, traceDir, store) are ignored here.
     */
    RunOptions run;

    /**
     * Invoked once per job, strictly in submission order, as soon as
     * the row becomes emittable (manifest-resumed rows replay through
     * it too). Called on an internal thread with internal locks held:
     * keep it fast and do not call back into the Coordinator.
     */
    std::function<void(std::size_t index, const JobResult &r)> onRow;
};

/**
 * The campaign coordinator. Construction binds the listener, replays
 * the manifest (when configured), and starts serving; wait() blocks
 * until every job has completed and returns the full campaign result
 * in submission order.
 */
class Coordinator
{
  public:
    Coordinator(std::vector<Job> jobs, ServiceOptions opts);
    ~Coordinator();

    Coordinator(const Coordinator &) = delete;
    Coordinator &operator=(const Coordinator &) = delete;

    /** The bound port (useful with ServiceOptions::port == 0). */
    u16 port() const;

    /**
     * Block until the campaign completes (or stop() abandons it),
     * shut the service down, and return all results. After a stop()
     * the result holds only the completed prefix semantics — callers
     * resume via the manifest instead of consuming it.
     */
    CampaignResult wait();

    /**
     * Abandon the campaign: stop accepting, wake every connection.
     * Safe to call from any thread, including the onRow callback
     * (threads are joined later, in wait()/the destructor). The
     * manifest keeps everything completed so far.
     */
    void stop();

    // --- introspection (tests, daemon status line) -------------------
    std::size_t totalJobs() const;
    std::size_t completedJobs() const;
    /** Jobs returned to the queue after lease expiry / worker death. */
    u64 reassignments() const;
    /** Results dropped because the job had already completed. */
    u64 duplicateResults() const;
    /** `wait` replies issued (backpressure + idle workers). */
    u64 waitsIssued() const;
    /** Jobs restored from the manifest instead of re-running. */
    std::size_t resumedFromManifest() const;
    /** Workers that ever registered. */
    u64 workersSeen() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** Worker-process configuration. */
struct WorkerOptions
{
    std::string host = "127.0.0.1";
    u16 port = 0;
    /** Advisory name; the coordinator may assign its own. */
    std::string workerId;
    /** Local scratch for sampled-mode (per-simpoint) checkpoints. */
    std::string checkpointDir;
    /** Connection attempts before giving up (250 ms apart). */
    unsigned connectRetries = 40;
};

/**
 * Run one worker: connect, register, then execute assigned jobs until
 * the coordinator says shutdown. Heartbeats run on a background
 * thread for the whole session.
 *
 * @return 0 on an orderly shutdown, 1 when the connection was lost or
 *         could not be established.
 */
int runWorker(const WorkerOptions &opts);

} // namespace darco::campaign

#endif // DARCO_CAMPAIGN_SERVICE_HH
