/**
 * @file
 * Wire encoding for the distributed campaign service.
 *
 * Every protocol message is one network frame (net/frame.hh) whose
 * payload is a snapshot container (snapshot::Serializer) holding
 * exactly one section. The section *name* is the message type; the
 * payload carries the message fields. Reusing the checkpoint
 * container buys three things for free: little-endian portability,
 * bounds-checked parsing hardened against hostile input, and version
 * gating (a peer built against a different snapshot version is
 * rejected by the Deserializer's header check before any field is
 * read).
 *
 * Message vocabulary (worker → coordinator):
 *   hello     proto u32, advisory worker id
 *   next      request an assignment
 *   result    job index + full JobResult (then awaits the next
 *             assignment in the same reply slot)
 *   ckpt.get  checkpoint-store key
 *   ckpt.put  checkpoint-store key + image bytes
 *   ping      heartbeat; no reply
 *
 * Coordinator → worker (always a reply to the message above it):
 *   welcome   proto u32, assigned worker id, campaign RunOptions
 *             subset, heartbeat interval, store-enabled flag
 *   job       job index + full Job
 *   wait      nothing runnable now; retry after the carried delay
 *   shutdown  campaign complete, disconnect
 *   ckpt.hit  image bytes / ckpt.miss (no payload)
 *   ok        ckpt.put acknowledged
 *   error     human-readable refusal (protocol mismatch, ...)
 *
 * The worker is the only reader of its socket and serializes its
 * writes under a mutex (the heartbeat thread shares the socket), so
 * the strict request/reply discipline — `ping` excepted, which has no
 * reply — keeps both sides trivially in sync.
 */

#ifndef DARCO_CAMPAIGN_WIRE_HH
#define DARCO_CAMPAIGN_WIRE_HH

#include <functional>
#include <sstream>
#include <string>

#include "campaign/campaign.hh"
#include "snapshot/io.hh"

namespace darco::campaign::wire
{

/** Bumped on any message-vocabulary or field-layout change. */
constexpr u32 protoVersion = 1;

/** Message-type section names. */
namespace msg
{
constexpr const char *hello = "hello";
constexpr const char *next = "next";
constexpr const char *result = "result";
constexpr const char *ckptGet = "ckpt.get";
constexpr const char *ckptPut = "ckpt.put";
constexpr const char *ping = "ping";
constexpr const char *welcome = "welcome";
constexpr const char *job = "job";
constexpr const char *wait = "wait";
constexpr const char *shutdown = "shutdown";
constexpr const char *ckptHit = "ckpt.hit";
constexpr const char *ckptMiss = "ckpt.miss";
constexpr const char *ok = "ok";
constexpr const char *error = "error";
} // namespace msg

/**
 * Build one message payload: a snapshot container with a single
 * section named `type`, fields written by `body` (null for messages
 * with no fields).
 */
std::string
encode(const std::string &type,
       const std::function<void(snapshot::Serializer &)> &body = {});

/**
 * Parse one received payload. Construction decodes the container
 * header (throwing snapshot::SnapshotError on garbage or a version
 * mismatch) and opens the message section; read the fields through
 * `d`. Messages whose fields are fully consumed can be close()d to
 * assert exact framing, but partial reads are legal (forward
 * compatibility).
 */
class Decoder
{
  private:
    std::istringstream is_; //!< must precede d (init order)

  public:
    snapshot::Deserializer d;
    std::string type;

    explicit Decoder(const std::string &payload)
        : is_(payload), d(is_), type(d.nextSection())
    {}
};

// --- field codecs ------------------------------------------------------

void writeProgram(snapshot::Serializer &s, const guest::Program &p);
guest::Program readProgram(snapshot::Deserializer &d);

void writeConfig(snapshot::Serializer &s, const Config &cfg);
Config readConfig(snapshot::Deserializer &d);

void writeJob(snapshot::Serializer &s, const Job &job);
Job readJob(snapshot::Deserializer &d);

void writeResult(snapshot::Serializer &s, const JobResult &r);
JobResult readResult(snapshot::Deserializer &d);

/**
 * The campaign-level execution knobs a worker must mirror (timing,
 * sample mode/parameters). Local-only fields — jobs, checkpointDir,
 * traceDir, store — are deliberately not shipped: each worker owns
 * its local scratch, and the remote store is wired separately.
 */
void writeRunOptions(snapshot::Serializer &s, const RunOptions &o);
void readRunOptions(snapshot::Deserializer &d, RunOptions &o);

} // namespace darco::campaign::wire

#endif // DARCO_CAMPAIGN_WIRE_HH
