#include "campaign/service.hh"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include <sys/socket.h>

#include "campaign/wire.hh"
#include "common/logging.hh"
#include "net/frame.hh"
#include "net/socket.hh"

namespace darco::campaign
{

namespace
{

using Clock = std::chrono::steady_clock;

u64
msSince(Clock::time_point t0)
{
    return u64(std::chrono::duration_cast<std::chrono::milliseconds>(
                   Clock::now() - t0)
                   .count());
}

void
sleepMs(u64 ms)
{
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/**
 * Content hash of the whole campaign definition: the manifest refuses
 * to resume against a different job list or different run options
 * (which would silently mix incompatible rows into one report).
 */
u64
campaignHash(const std::vector<Job> &jobs, const RunOptions &run)
{
    u64 h = 0xcbf29ce484222325ull;
    auto mix = [&h](u64 v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ull;
        }
    };
    auto mixStr = [&](const std::string &s) {
        for (char c : s) {
            h ^= u8(c);
            h *= 0x100000001b3ull;
        }
        h ^= 0xff;
        h *= 0x100000001b3ull;
    };
    mix(jobs.size());
    for (const Job &j : jobs) {
        mix(jobKeyHash(j));
        mixStr(j.workload);
        mixStr(j.configName);
        mix(j.maxInsts);
    }
    mix(run.timing ? 1 : 0);
    mix(run.sampleMode == SampleMode::SimPoint ? 1 : 0);
    mix(run.sampleInterval);
    mix(run.sampleMaxK);
    mix(run.sampleSeed);
    mix(run.sampleWarmup);
    return h;
}

/** A store key is a bare hex hash — anything else is path traversal. */
bool
validStoreKey(const std::string &key)
{
    if (key.empty() || key.size() > 16)
        return false;
    for (char c : key)
        if (!std::isxdigit(u8(c)) || std::isupper(u8(c)))
            return false;
    return true;
}

constexpr const char *manifestRecCampaign = "manifest";
constexpr const char *manifestRecDone = "done";

/** [len u32 LE][payload] — the manifest uses the network framing. */
void
appendRecord(std::ostream &os, const std::string &payload)
{
    u8 hdr[4];
    u32 len = u32(payload.size());
    hdr[0] = u8(len);
    hdr[1] = u8(len >> 8);
    hdr[2] = u8(len >> 16);
    hdr[3] = u8(len >> 24);
    os.write(reinterpret_cast<const char *>(hdr), 4);
    os.write(payload.data(), std::streamsize(payload.size()));
    os.flush();
}

} // namespace

// ---------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------

struct Coordinator::Impl
{
    std::vector<Job> jobs;
    ServiceOptions opts;
    Clock::time_point t0 = Clock::now();

    // Locking: emitMutex > mutex (complete() takes both in that
    // order). onRow runs under emitMutex only, so a callback may call
    // stop() (which takes mutex) without deadlocking.
    std::mutex mutex;
    std::mutex emitMutex;
    std::condition_variable cv;

    std::deque<std::size_t> pending;            // runnable job indices
    std::vector<std::optional<JobResult>> results;
    std::size_t completedCount = 0;
    std::size_t emitted = 0;
    std::size_t resumed = 0;
    bool stopped = false;

    u64 reassignments = 0;
    u64 duplicates = 0;
    u64 waits = 0;
    u64 workersSeen = 0;

    std::ofstream manifest;
    u64 manifestHash = 0;

    std::optional<net::Listener> listener;
    std::thread acceptThread;
    std::vector<std::thread> connThreads;
    std::vector<int> liveFds; // guarded by mutex; for stop() wakeups
    bool joined = false;

    bool
    allDone() const
    {
        return completedCount == results.size();
    }

    // --- manifest ----------------------------------------------------

    /**
     * Replay an existing manifest: validate the campaign header, load
     * completed rows, drop a torn tail (truncating the file to the
     * last whole record so the journal stays clean for appending).
     */
    void
    resumeManifest()
    {
        std::ifstream in(opts.manifestPath, std::ios::binary);
        if (!in)
            return; // fresh campaign
        std::ostringstream buf;
        buf << in.rdbuf();
        std::string bytes = buf.str();
        if (bytes.empty())
            return;

        std::size_t pos = 0, goodEnd = 0;
        bool sawHeader = false;
        for (;;) {
            if (pos + 4 > bytes.size())
                break; // torn length
            u32 len = u32(u8(bytes[pos])) |
                      (u32(u8(bytes[pos + 1])) << 8) |
                      (u32(u8(bytes[pos + 2])) << 16) |
                      (u32(u8(bytes[pos + 3])) << 24);
            if (len > net::maxFrameBytes ||
                pos + 4 + len > bytes.size())
                break; // torn payload
            std::string payload = bytes.substr(pos + 4, len);
            try {
                wire::Decoder rec(payload);
                if (!sawHeader) {
                    if (rec.type != manifestRecCampaign)
                        throw FatalError(
                            "manifest '" + opts.manifestPath +
                            "' does not start with a campaign header");
                    u32 proto = rec.d.r32();
                    u64 hash = rec.d.r64();
                    u64 count = rec.d.r64();
                    if (proto != wire::protoVersion ||
                        hash != manifestHash ||
                        count != jobs.size())
                        throw FatalError(
                            "manifest '" + opts.manifestPath +
                            "' records a different campaign "
                            "(refusing to resume)");
                    sawHeader = true;
                } else if (rec.type == manifestRecDone) {
                    u64 idx = rec.d.r64();
                    JobResult r = wire::readResult(rec.d);
                    if (idx < results.size() && !results[idx]) {
                        results[idx] = std::move(r);
                        ++completedCount;
                        ++resumed;
                    }
                }
                // Unknown record types are skipped (forward compat).
            } catch (const snapshot::SnapshotError &) {
                break; // torn/corrupt record: drop it and the rest
            }
            pos += 4 + len;
            goodEnd = pos;
        }
        if (!sawHeader)
            throw FatalError("manifest '" + opts.manifestPath +
                             "' is not a campaign manifest");
        if (goodEnd < bytes.size()) {
            std::error_code ec;
            std::filesystem::resize_file(opts.manifestPath, goodEnd,
                                         ec);
            warn("manifest: dropped ", bytes.size() - goodEnd,
                 " trailing bytes (torn record from a crashed "
                 "coordinator)");
        }
    }

    void
    openManifest()
    {
        if (opts.manifestPath.empty())
            return;
        manifestHash = campaignHash(jobs, opts.run);
        resumeManifest();
        bool fresh = !std::filesystem::exists(opts.manifestPath) ||
                     std::filesystem::file_size(opts.manifestPath) == 0;
        manifest.open(opts.manifestPath,
                      std::ios::binary | std::ios::app);
        if (!manifest)
            throw FatalError("cannot open manifest '" +
                             opts.manifestPath + "' for append");
        if (fresh) {
            appendRecord(
                manifest,
                wire::encode(manifestRecCampaign,
                             [&](snapshot::Serializer &s) {
                                 s.w32(wire::protoVersion);
                                 s.w64(manifestHash);
                                 s.w64(jobs.size());
                             }));
        }
    }

    // --- completion & emission ---------------------------------------

    /**
     * Record one finished job (exactly once), journal it, and emit
     * every newly in-order row. Caller must hold NEITHER lock.
     */
    void
    complete(std::size_t idx, JobResult r)
    {
        std::unique_lock<std::mutex> eg(emitMutex);
        std::vector<std::pair<std::size_t, const JobResult *>> emit;
        {
            std::lock_guard<std::mutex> g(mutex);
            if (idx >= results.size() || results[idx]) {
                ++duplicates;
                return;
            }
            results[idx] = std::move(r);
            ++completedCount;
            if (manifest.is_open()) {
                appendRecord(
                    manifest,
                    wire::encode(manifestRecDone,
                                 [&](snapshot::Serializer &s) {
                                     s.w64(idx);
                                     wire::writeResult(
                                         s, *results[idx]);
                                 }));
            }
            while (emitted < results.size() && results[emitted]) {
                emit.emplace_back(emitted, &*results[emitted]);
                ++emitted;
            }
            cv.notify_all();
        }
        if (opts.onRow)
            for (const auto &[i, jr] : emit)
                opts.onRow(i, *jr);
    }

    /** Emit rows already satisfied (manifest resume), before serving. */
    void
    emitResumedPrefix()
    {
        std::unique_lock<std::mutex> eg(emitMutex);
        std::vector<std::pair<std::size_t, const JobResult *>> emit;
        {
            std::lock_guard<std::mutex> g(mutex);
            while (emitted < results.size() && results[emitted]) {
                emit.emplace_back(emitted, &*results[emitted]);
                ++emitted;
            }
        }
        if (opts.onRow)
            for (const auto &[i, jr] : emit)
                opts.onRow(i, *jr);
    }

    // --- dispatch ----------------------------------------------------

    /**
     * Pick the next runnable job for a worker. Returns the reply
     * payload; sets *assignedOut / *deadlineOut on a job grant and
     * *isShutdown when the campaign is complete.
     */
    std::string
    nextAssignment(std::optional<std::size_t> *assignedOut,
                   Clock::time_point *deadlineOut, bool *isShutdown)
    {
        std::lock_guard<std::mutex> g(mutex);
        *isShutdown = false;
        if (allDone() || stopped) {
            *isShutdown = true;
            return wire::encode(wire::msg::shutdown);
        }
        for (auto it = pending.begin(); it != pending.end();) {
            std::size_t idx = *it;
            if (results[idx]) {
                // Completed while queued (late result beat the
                // reassigned copy): drop the stale queue entry.
                it = pending.erase(it);
                continue;
            }
            if (idx < emitted + opts.window) {
                pending.erase(it);
                *assignedOut = idx;
                *deadlineOut =
                    Clock::now() +
                    std::chrono::milliseconds(opts.leaseMs);
                const Job &job = jobs[idx];
                return wire::encode(
                    wire::msg::job, [&](snapshot::Serializer &s) {
                        s.w64(idx);
                        wire::writeJob(s, job);
                    });
            }
            ++it; // outside the in-flight window: keep for later
        }
        ++waits;
        return wire::encode(wire::msg::wait,
                            [&](snapshot::Serializer &s) {
                                s.w64(opts.waitDelayMs);
                            });
    }

    /** Return a leased job to the head of the queue. */
    void
    requeueLocked(std::size_t idx)
    {
        if (!results[idx]) {
            pending.push_front(idx);
            ++reassignments;
            cv.notify_all();
        }
    }

    // --- per-connection protocol loop --------------------------------

    void
    serveConnection(net::Socket sock)
    {
        {
            std::lock_guard<std::mutex> g(mutex);
            if (stopped)
                return;
            liveFds.push_back(sock.fd());
        }
        std::string workerId;
        std::optional<std::size_t> assigned;
        Clock::time_point deadline{};
        bool leaseReturned = false; // assigned already requeued
        Clock::time_point lastSeen = Clock::now();

        try {
            for (;;) {
                // Campaign-state gate, every iteration: frames keep
                // arriving from live workers (pings, requests), so
                // end-of-campaign must not hide in the timeout branch.
                {
                    std::unique_lock<std::mutex> g(mutex);
                    if (stopped)
                        break;
                    if (allDone()) {
                        g.unlock();
                        try {
                            net::sendFrame(
                                sock,
                                wire::encode(wire::msg::shutdown));
                        } catch (const net::NetError &) {
                        }
                        break;
                    }
                }

                std::string payload;
                net::RecvStatus st =
                    net::recvFrame(sock, payload, 250);
                Clock::time_point now = Clock::now();

                // Lease check on *every* iteration: a worker pinging
                // away while stuck in a pathological job keeps frames
                // flowing, so the timeout branch alone would never
                // notice the expired lease.
                if (assigned && !leaseReturned && now >= deadline) {
                    // Lease expired: hand the job to someone else but
                    // keep the connection — a late result is still
                    // accepted if it comes first.
                    std::lock_guard<std::mutex> g(mutex);
                    requeueLocked(*assigned);
                    leaseReturned = true;
                }

                if (st == net::RecvStatus::Timeout) {
                    u64 silentMs = u64(
                        std::chrono::duration_cast<
                            std::chrono::milliseconds>(now - lastSeen)
                            .count());
                    if (silentMs > opts.deadAfterMs)
                        break; // silent worker: dead
                    continue;
                }
                if (st == net::RecvStatus::Eof)
                    break;
                lastSeen = now;

                wire::Decoder m(payload);
                if (m.type == wire::msg::hello) {
                    u32 proto = m.d.r32();
                    std::string advisory = m.d.rstr();
                    if (proto != wire::protoVersion) {
                        net::sendFrame(
                            sock,
                            wire::encode(
                                wire::msg::error,
                                [&](snapshot::Serializer &s) {
                                    s.wstr(
                                        "protocol version mismatch");
                                }));
                        break;
                    }
                    {
                        std::lock_guard<std::mutex> g(mutex);
                        ++workersSeen;
                        workerId =
                            !advisory.empty()
                                ? advisory
                                : "w" + std::to_string(workersSeen);
                    }
                    bool storeOn = !opts.storeDir.empty();
                    net::sendFrame(
                        sock,
                        wire::encode(
                            wire::msg::welcome,
                            [&](snapshot::Serializer &s) {
                                s.w32(wire::protoVersion);
                                s.wstr(workerId);
                                wire::writeRunOptions(s, opts.run);
                                s.w64(opts.heartbeatMs);
                                s.wbool(storeOn);
                            }));
                } else if (m.type == wire::msg::ping) {
                    // Heartbeat: lastSeen already refreshed above.
                } else if (m.type == wire::msg::next ||
                           m.type == wire::msg::result) {
                    if (m.type == wire::msg::result) {
                        u64 idx = m.d.r64();
                        JobResult r = wire::readResult(m.d);
                        r.workerId = workerId; // enforce provenance
                        assigned.reset();
                        leaseReturned = false;
                        complete(std::size_t(idx), std::move(r));
                    }
                    bool isShutdown = false;
                    std::string reply = nextAssignment(
                        &assigned, &deadline, &isShutdown);
                    net::sendFrame(sock, reply);
                    if (isShutdown)
                        break;
                } else if (m.type == wire::msg::ckptGet) {
                    std::string key = m.d.rstr();
                    std::string image;
                    bool hit = false;
                    if (!opts.storeDir.empty() &&
                        validStoreKey(key)) {
                        std::ifstream in(opts.storeDir + "/" + key +
                                             ".ckpt",
                                         std::ios::binary);
                        if (in) {
                            std::ostringstream buf;
                            buf << in.rdbuf();
                            image = buf.str();
                            hit = true;
                        }
                    }
                    net::sendFrame(
                        sock,
                        hit ? wire::encode(
                                  wire::msg::ckptHit,
                                  [&](snapshot::Serializer &s) {
                                      s.wstr(image);
                                  })
                            : wire::encode(wire::msg::ckptMiss));
                } else if (m.type == wire::msg::ckptPut) {
                    std::string key = m.d.rstr();
                    std::string image = m.d.rstr();
                    if (!opts.storeDir.empty() && validStoreKey(key))
                        writeCheckpointBytes(opts.storeDir,
                                             opts.storeDir + "/" +
                                                 key + ".ckpt",
                                             image);
                    net::sendFrame(sock,
                                   wire::encode(wire::msg::ok));
                } else {
                    net::sendFrame(
                        sock,
                        wire::encode(wire::msg::error,
                                     [&](snapshot::Serializer &s) {
                                         s.wstr("unknown message '" +
                                                m.type + "'");
                                     }));
                }
            }
        } catch (const net::NetError &) {
            // Connection-level failure: treated as worker death.
        } catch (const snapshot::SnapshotError &) {
            // Malformed message from the peer: drop the connection.
        }

        {
            std::lock_guard<std::mutex> g(mutex);
            if (assigned && !leaseReturned && !stopped)
                requeueLocked(*assigned);
            liveFds.erase(std::remove(liveFds.begin(), liveFds.end(),
                                      sock.fd()),
                          liveFds.end());
        }
    }

    void
    acceptLoop()
    {
        for (;;) {
            {
                std::lock_guard<std::mutex> g(mutex);
                if (stopped || allDone())
                    return;
            }
            std::optional<net::Socket> s = listener->accept(200);
            if (!s)
                continue;
            std::lock_guard<std::mutex> g(mutex);
            if (stopped)
                return;
            connThreads.emplace_back(
                [this, sock = std::make_shared<net::Socket>(
                           std::move(*s))]() mutable {
                    serveConnection(std::move(*sock));
                });
        }
    }
};

Coordinator::Coordinator(std::vector<Job> jobs, ServiceOptions opts)
    : impl_(std::make_unique<Impl>())
{
    impl_->jobs = std::move(jobs);
    impl_->opts = std::move(opts);
    if (impl_->opts.window == 0)
        impl_->opts.window = 1;
    impl_->results.resize(impl_->jobs.size());
    if (!impl_->opts.storeDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(impl_->opts.storeDir, ec);
    }
    impl_->openManifest(); // may load completed rows
    for (std::size_t i = 0; i < impl_->results.size(); ++i)
        if (!impl_->results[i])
            impl_->pending.push_back(i);
    impl_->emitResumedPrefix();
    impl_->listener.emplace(impl_->opts.bind, impl_->opts.port);
    impl_->acceptThread =
        std::thread([this]() { impl_->acceptLoop(); });
}

u16
Coordinator::port() const
{
    return impl_->listener->port();
}

CampaignResult
Coordinator::wait()
{
    {
        std::unique_lock<std::mutex> g(impl_->mutex);
        impl_->cv.wait(g, [&] {
            return impl_->stopped || impl_->allDone();
        });
    }
    // Tear the service down: the accept loop sees done/stopped, and
    // every connection thread either hands its worker a shutdown or
    // notices the closed socket.
    impl_->listener->close();
    if (!impl_->joined) {
        impl_->joined = true;
        if (impl_->acceptThread.joinable())
            impl_->acceptThread.join();
        for (auto &t : impl_->connThreads)
            if (t.joinable())
                t.join();
    }

    CampaignResult res;
    res.results.reserve(impl_->results.size());
    for (const auto &r : impl_->results)
        res.results.push_back(r ? *r : JobResult{});
    res.wallMs = double(msSince(impl_->t0));
    for (const JobResult &r : res.results) {
        if (r.checkpointHit)
            ++res.checkpointHits;
        if (r.checkpointStored)
            ++res.checkpointMisses;
    }
    return res;
}

void
Coordinator::stop()
{
    std::lock_guard<std::mutex> g(impl_->mutex);
    impl_->stopped = true;
    impl_->listener->close();
    for (int fd : impl_->liveFds)
        ::shutdown(fd, SHUT_RDWR);
    impl_->cv.notify_all();
}

Coordinator::~Coordinator()
{
    {
        std::lock_guard<std::mutex> g(impl_->mutex);
        impl_->stopped = true;
        impl_->listener->close();
        for (int fd : impl_->liveFds)
            ::shutdown(fd, SHUT_RDWR);
        impl_->cv.notify_all();
    }
    if (!impl_->joined) {
        if (impl_->acceptThread.joinable())
            impl_->acceptThread.join();
        for (auto &t : impl_->connThreads)
            if (t.joinable())
                t.join();
    }
}

std::size_t
Coordinator::totalJobs() const
{
    return impl_->jobs.size();
}

std::size_t
Coordinator::completedJobs() const
{
    std::lock_guard<std::mutex> g(impl_->mutex);
    return impl_->completedCount;
}

u64
Coordinator::reassignments() const
{
    std::lock_guard<std::mutex> g(impl_->mutex);
    return impl_->reassignments;
}

u64
Coordinator::duplicateResults() const
{
    std::lock_guard<std::mutex> g(impl_->mutex);
    return impl_->duplicates;
}

u64
Coordinator::waitsIssued() const
{
    std::lock_guard<std::mutex> g(impl_->mutex);
    return impl_->waits;
}

std::size_t
Coordinator::resumedFromManifest() const
{
    std::lock_guard<std::mutex> g(impl_->mutex);
    return impl_->resumed;
}

u64
Coordinator::workersSeen() const
{
    std::lock_guard<std::mutex> g(impl_->mutex);
    return impl_->workersSeen;
}

// ---------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------

namespace
{

/**
 * CheckpointStore speaking the ckpt.get/ckpt.put protocol over the
 * worker's coordinator connection. Runs on the worker main thread —
 * the connection's only reader — so a request's reply is simply the
 * next frame (pings carry no reply).
 */
class RemoteStore : public CheckpointStore
{
  public:
    RemoteStore(net::Socket &sock, std::mutex &sendMu)
        : sock_(sock), sendMu_(sendMu)
    {}

    bool
    fetch(const std::string &key, std::string *image) override
    {
        {
            std::lock_guard<std::mutex> g(sendMu_);
            net::sendFrame(sock_,
                           wire::encode(wire::msg::ckptGet,
                                        [&](snapshot::Serializer &s) {
                                            s.wstr(key);
                                        }));
        }
        std::string payload;
        if (net::recvFrame(sock_, payload, 120'000) !=
            net::RecvStatus::Ok)
            throw net::NetError("checkpoint fetch: no reply");
        wire::Decoder m(payload);
        if (m.type == wire::msg::ckptHit) {
            *image = m.d.rstr();
            return true;
        }
        return false; // miss (or an unexpected type: treat as miss)
    }

    void
    store(const std::string &key, const std::string &image) override
    {
        {
            std::lock_guard<std::mutex> g(sendMu_);
            net::sendFrame(sock_,
                           wire::encode(wire::msg::ckptPut,
                                        [&](snapshot::Serializer &s) {
                                            s.wstr(key);
                                            s.wstr(image);
                                        }));
        }
        std::string payload;
        if (net::recvFrame(sock_, payload, 120'000) !=
            net::RecvStatus::Ok)
            throw net::NetError("checkpoint store: no ack");
        // Reply is `ok`; anything else is tolerated (best effort).
    }

  private:
    net::Socket &sock_;
    std::mutex &sendMu_;
};

} // namespace

int
runWorker(const WorkerOptions &wopts)
{
    net::Socket sock;
    for (unsigned attempt = 0;; ++attempt) {
        try {
            sock = net::connectTo(wopts.host, wopts.port, 2000);
            break;
        } catch (const net::NetError &) {
            if (attempt + 1 >= wopts.connectRetries)
                return 1;
            sleepMs(250);
        }
    }

    std::mutex sendMu;
    auto send = [&](const std::string &payload) {
        std::lock_guard<std::mutex> g(sendMu);
        net::sendFrame(sock, payload);
    };

    int rc = 1;
    std::atomic<bool> hbStop{false};
    std::thread hb;
    try {
        send(wire::encode(wire::msg::hello,
                          [&](snapshot::Serializer &s) {
                              s.w32(wire::protoVersion);
                              s.wstr(wopts.workerId);
                          }));
        std::string payload;
        if (net::recvFrame(sock, payload, 30'000) !=
            net::RecvStatus::Ok)
            return 1;
        wire::Decoder welcome(payload);
        if (welcome.type != wire::msg::welcome)
            return 1;
        if (welcome.d.r32() != wire::protoVersion)
            return 1;
        std::string myId = welcome.d.rstr();
        RunOptions ropts;
        wire::readRunOptions(welcome.d, ropts);
        u64 heartbeatMs = welcome.d.r64();
        bool storeEnabled = welcome.d.rbool();
        ropts.jobs = 1;
        ropts.checkpointDir = wopts.checkpointDir;
        RemoteStore remote(sock, sendMu);
        if (storeEnabled)
            ropts.store = &remote;

        // Heartbeats keep the registration alive across long jobs.
        // Short sleep slices keep teardown prompt.
        hb = std::thread([&, heartbeatMs]() {
            u64 elapsed = 0;
            while (!hbStop.load(std::memory_order_relaxed)) {
                sleepMs(50);
                elapsed += 50;
                if (elapsed < heartbeatMs)
                    continue;
                elapsed = 0;
                try {
                    send(wire::encode(wire::msg::ping));
                } catch (const net::NetError &) {
                    return; // connection gone; main loop notices
                }
            }
        });

        send(wire::encode(wire::msg::next));
        for (;;) {
            if (net::recvFrame(sock, payload, -1) !=
                net::RecvStatus::Ok)
                break; // coordinator gone
            wire::Decoder m(payload);
            if (m.type == wire::msg::job) {
                u64 idx = m.d.r64();
                Job job = wire::readJob(m.d);
                JobResult r = runJob(job, ropts);
                r.workerId = myId;
                send(wire::encode(wire::msg::result,
                                  [&](snapshot::Serializer &s) {
                                      s.w64(idx);
                                      wire::writeResult(s, r);
                                  }));
            } else if (m.type == wire::msg::wait) {
                sleepMs(m.d.r64());
                send(wire::encode(wire::msg::next));
            } else if (m.type == wire::msg::shutdown) {
                rc = 0;
                break;
            } else if (m.type == wire::msg::error) {
                break;
            }
            // Stray ckpt replies cannot appear here: RemoteStore
            // consumes them inline during runJob.
        }
    } catch (const net::NetError &) {
        rc = 1;
    } catch (const snapshot::SnapshotError &) {
        rc = 1;
    }
    hbStop.store(true, std::memory_order_relaxed);
    if (hb.joinable())
        hb.join();
    return rc;
}

} // namespace darco::campaign
