#include "campaign/campaign.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>

#include <fcntl.h>
#include <unistd.h>

#include "common/logging.hh"
#include "common/schema.hh"
#include "power/power.hh"
#include "sampling/simpoint.hh"
#include "sim/controller.hh"
#include "snapshot/io.hh"
#include "timing/core.hh"

namespace darco::campaign
{

// ---------------------------------------------------------------------
// Pool
// ---------------------------------------------------------------------

Pool::Pool(unsigned workers) : workers_(workers ? workers : 1) {}

namespace
{

/** Shared state of one Pool::run() invocation. */
struct PoolRun
{
    std::vector<std::deque<std::function<void()>>> queues;
    std::vector<std::unique_ptr<std::mutex>> locks;

    explicit PoolRun(unsigned n) : queues(n)
    {
        for (unsigned i = 0; i < n; ++i)
            locks.push_back(std::make_unique<std::mutex>());
    }

    /** Pop from own deque (LIFO) or steal from a victim (FIFO). */
    bool
    take(unsigned self, std::function<void()> &out)
    {
        {
            std::lock_guard<std::mutex> g(*locks[self]);
            if (!queues[self].empty()) {
                out = std::move(queues[self].back());
                queues[self].pop_back();
                return true;
            }
        }
        for (unsigned k = 1; k < queues.size(); ++k) {
            unsigned victim = (self + k) % queues.size();
            std::lock_guard<std::mutex> g(*locks[victim]);
            if (!queues[victim].empty()) {
                out = std::move(queues[victim].front());
                queues[victim].pop_front();
                return true;
            }
        }
        return false;
    }
};

} // namespace

void
Pool::run(std::vector<std::function<void()>> tasks)
{
    if (tasks.empty())
        return;
    if (workers_ == 1) {
        for (auto &t : tasks)
            t();
        return;
    }

    unsigned n = std::min<unsigned>(workers_, unsigned(tasks.size()));
    PoolRun state(n);
    for (std::size_t i = 0; i < tasks.size(); ++i)
        state.queues[i % n].push_back(std::move(tasks[i]));

    auto worker = [&state](unsigned self) {
        std::function<void()> task;
        while (state.take(self, task))
            task();
    };

    std::vector<std::thread> threads;
    threads.reserve(n - 1);
    for (unsigned i = 1; i < n; ++i)
        threads.emplace_back(worker, i);
    worker(0);
    for (auto &t : threads)
        t.join();
}

// ---------------------------------------------------------------------
// Matrix expansion & presets
// ---------------------------------------------------------------------

std::vector<Job>
expandMatrix(const std::vector<std::pair<std::string,
                                         guest::Program>> &workloads,
             const std::vector<std::pair<std::string, Config>> &configs,
             u64 max_insts, u64 skip)
{
    // Fail the whole campaign now, naming the offending variant, so
    // a typo'd sweep key can never burn a matrix worth of simulation
    // on the default experiment.
    for (const auto &[cname, cfg] : configs)
        conf::schema().validate(cfg, "campaign config '" + cname + "'");

    std::vector<Job> jobs;
    jobs.reserve(workloads.size() * configs.size());
    for (const auto &[wname, prog] : workloads) {
        for (const auto &[cname, cfg] : configs) {
            Job j;
            j.workload = wname;
            j.configName = cname;
            j.program = prog;
            j.config = cfg;
            j.maxInsts = max_insts;
            j.skip = skip;
            jobs.push_back(std::move(j));
        }
    }
    return jobs;
}

std::vector<std::pair<std::string, Config>>
presetConfigs(const std::vector<std::string> &names,
              const std::vector<std::string> &extra)
{
    std::vector<std::pair<std::string, Config>> out;
    for (const std::string &name : names) {
        Config cfg;
        if (name == "interp") {
            cfg.parseLine("tol.enable_bbm=false");
            cfg.parseLine("tol.enable_sbm=false");
        } else if (name == "noopt") {
            cfg.parseLine("tol.opt=false");
            cfg.parseLine("tol.sched=false");
            cfg.parseLine("tol.spec_mem=false");
            cfg.parseLine("tol.unroll=false");
            cfg.parseLine("tol.fuse_flags=false");
            cfg.parseLine("tol.chaining=false");
        } else if (name == "fullopt") {
            // defaults
        } else if (name == "tinycc") {
            cfg.parseLine("cc.capacity_words=768");
            cfg.parseLine("cc.policy=evict");
            cfg.parseLine("tol.max_sb_insts=120");
        } else if (name == "async") {
            cfg.parseLine("tol.async.threads=2");
            cfg.parseLine("tol.async.vthreads=2");
        } else {
            fatal("unknown config preset '", name,
                  "' (expected interp|noopt|fullopt|tinycc|async)");
        }
        for (const std::string &kv : extra)
            cfg.parseLine(kv);
        out.emplace_back(name, std::move(cfg));
    }
    return out;
}

// ---------------------------------------------------------------------
// Checkpoint cache
// ---------------------------------------------------------------------

/**
 * FNV-1a over the job identity (program bytes, config, skip). The
 * config contribution is the schema-normalized execution-relevant
 * effective map, so jobs differing only cosmetically (validation
 * toggles, timing/power parameters) share one functional-prefix
 * checkpoint — matching what restoreCheckpoint accepts.
 */
u64
jobKeyHash(const Job &job)
{
    u64 h = 0xcbf29ce484222325ull;
    auto mix = [&h](const void *data, std::size_t len) {
        const u8 *p = static_cast<const u8 *>(data);
        for (std::size_t i = 0; i < len; ++i) {
            h ^= p[i];
            h *= 0x100000001b3ull;
        }
    };
    auto mixStr = [&](const std::string &s) {
        mix(s.data(), s.size());
        mix("\0", 1);
    };
    mixStr(job.program.name);
    mix(job.program.code.data(), job.program.code.size());
    mix(job.program.data.data(), job.program.data.size());
    mix(&job.program.entry, sizeof(job.program.entry));
    for (const auto &[k, v] : conf::schema().executionRelevant(job.config)) {
        mixStr(k);
        mixStr(v);
    }
    mix(&job.skip, sizeof(job.skip));
    return h;
}

std::string
jobKeyString(const Job &job)
{
    std::ostringstream os;
    os << std::hex << jobKeyHash(job);
    return os.str();
}

namespace
{

/** File names must survive workload names like "400.perlbench". */
std::string
sanitize(const std::string &s)
{
    std::string out;
    for (char c : s)
        out += (std::isalnum(u8(c)) || c == '.' || c == '-') ? c : '_';
    return out;
}

} // namespace

std::string
checkpointPath(const std::string &dir, const Job &job)
{
    std::ostringstream os;
    os << dir << '/' << sanitize(job.workload) << '-'
       << sanitize(job.configName) << '-' << std::hex << jobKeyHash(job)
       << ".ckpt";
    return os.str();
}

std::string
simpointCheckpointPath(const std::string &dir, const Job &job,
                       u64 interval, u64 warmup, u32 interval_index)
{
    std::ostringstream os;
    os << dir << '/' << sanitize(job.workload) << '-'
       << sanitize(job.configName) << '-' << std::hex << jobKeyHash(job)
       << std::dec << "-i" << interval << "-w" << warmup << "-sp"
       << interval_index << ".ckpt";
    return os.str();
}

// ---------------------------------------------------------------------
// Job execution
// ---------------------------------------------------------------------

bool
writeCheckpointBytes(const std::string &dir, const std::string &path,
                     const std::string &image)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    // Temp name carries pid *and* thread id: a thread-id hash alone
    // collides across processes (and can repeat after a thread
    // exits), letting two writers interleave into one temp file and
    // rename a torn image into place. O_EXCL makes any remaining
    // collision (e.g. a stale temp from a crashed run) fail the
    // create instead of silently appending to another writer's file.
    std::string base =
        path + ".tmp." + std::to_string(::getpid()) + "." +
        std::to_string(
            std::hash<std::thread::id>{}(std::this_thread::get_id()));
    std::string tmp;
    int fd = -1;
    for (unsigned attempt = 0; attempt < 16 && fd < 0; ++attempt) {
        tmp = attempt == 0 ? base
                           : base + "." + std::to_string(attempt);
        fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
        if (fd < 0 && errno != EEXIST)
            return false;
    }
    if (fd < 0)
        return false;
    bool written = true;
    const char *pos = image.data();
    std::size_t left = image.size();
    while (left > 0) {
        ssize_t n = ::write(fd, pos, left);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            written = false;
            break;
        }
        pos += n;
        left -= std::size_t(n);
    }
    if (::close(fd) != 0)
        written = false;
    bool stored = false;
    if (written) {
        std::filesystem::rename(tmp, path, ec);
        stored = !ec;
    }
    if (!stored)
        std::filesystem::remove(tmp, ec);
    return stored;
}

namespace
{

/** Serialize + tmp/rename-store a controller checkpoint. */
bool
storeCheckpointFile(const std::string &dir, const std::string &path,
                    sim::Controller &ctl)
{
    std::ostringstream os;
    ctl.saveCheckpoint(os);
    return writeCheckpointBytes(dir, path, os.str());
}

/** Fill the timing/power result fields from a measured window. */
void
fillTimingResult(JobResult &r, const Job &job,
                 const timing::InOrderCore &core,
                 const StatGroup &tstats)
{
    r.cycles = double(core.cycles());
    r.ipc = core.ipc();
    power::PowerReport pr = power::PowerModel(job.config).analyze(tstats);
    r.energyJ = pr.totalEnergyJ;
    r.avgPowerW = pr.avgPowerW;
}

JobResult runSampledJob(const Job &job, const RunOptions &opts);

} // namespace

JobResult
runJob(const Job &job, const RunOptions &opts)
{
    if (opts.sampleMode == SampleMode::SimPoint)
        return runSampledJob(job, opts);

    JobResult r;
    r.workload = job.workload;
    r.configName = job.configName;
    r.effectiveConfig = conf::schema().effective(job.config);
    auto t0 = std::chrono::steady_clock::now();

    // Per-job observability outputs: with a trace directory, inject
    // the (cosmetic, so checkpoint-compatible) obs.* paths unless the
    // job config already names its own.
    Config cfg = job.config;
    if (!opts.traceDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(opts.traceDir, ec);
        std::string base = opts.traceDir + '/' +
                           sanitize(job.workload) + '-' +
                           sanitize(job.configName);
        if (conf::getString(cfg, "obs.trace.path").empty())
            cfg.set("obs.trace.path", base + ".trace.json");
        if (conf::getString(cfg, "obs.metrics.path").empty())
            cfg.set("obs.metrics.path", base + ".metrics.jsonl");
    }

    try {
        // optional<> so a partially-restored controller can be torn
        // down and rebuilt in place (Controller is self-referential:
        // its Tol holds references into it, so it is not movable).
        std::optional<sim::Controller> holder;
        auto makeCtl = [&]() {
            holder.emplace(cfg);
            if (holder->obsSession())
                holder->obsSession()->setJobLabel(
                    job.workload + "/" + job.configName);
        };
        makeCtl();
        sim::Controller &ctl = *holder;
        u64 done = 0; // guest insts already covered

        bool use_store = opts.store && job.skip > 0;
        bool use_ckpt =
            !use_store && !opts.checkpointDir.empty() && job.skip > 0;
        if (use_store) {
            // Content-addressed fetch-or-compute: any worker that
            // already paid for this prefix (same execution-relevant
            // identity) published the image; everyone else
            // fast-forwards from it.
            std::string key = jobKeyString(job);
            std::string image;
            bool restored = false;
            if (opts.store->fetch(key, &image)) {
                try {
                    std::istringstream is(image);
                    ctl.restoreCheckpoint(is);
                    restored = true;
                } catch (const snapshot::SnapshotError &) {
                    // A bad entry is a miss: recompute and republish.
                    makeCtl();
                }
            }
            if (restored) {
                r.checkpointHit = true;
                done = job.skip;
            } else {
                ctl.load(job.program);
                ctl.run(job.skip);
                done = job.skip;
                std::ostringstream os;
                ctl.saveCheckpoint(os);
                opts.store->store(key, os.str());
                r.checkpointStored = true;
            }
        } else if (use_ckpt) {
            std::string path =
                checkpointPath(opts.checkpointDir, job);
            bool restored = false;
            {
                std::ifstream in(path, std::ios::binary);
                if (in) {
                    try {
                        ctl.restoreCheckpoint(in);
                        restored = true;
                    } catch (const snapshot::SnapshotError &) {
                        // A bad cache entry (torn write, stale
                        // version) is a miss, not a job failure:
                        // fall through to the cold path, which
                        // overwrites it.
                        makeCtl();
                    }
                }
            }
            if (restored) {
                r.checkpointHit = true;
                done = job.skip;
            } else {
                ctl.load(job.program);
                ctl.run(job.skip);
                done = job.skip;
                r.checkpointStored = storeCheckpointFile(
                    opts.checkpointDir, path, ctl);
            }
        } else {
            ctl.load(job.program);
            if (job.skip > 0) {
                ctl.run(job.skip);
                done = job.skip;
            }
        }

        // Detailed models over the measured region (post-prefix).
        // Attaching after the prefix keeps results identical whether
        // the prefix was simulated or restored from the cache.
        std::unique_ptr<StatGroup> tstats;
        std::unique_ptr<timing::InOrderCore> core;
        if (opts.timing) {
            tstats = std::make_unique<StatGroup>("timing");
            core = std::make_unique<timing::InOrderCore>(job.config,
                                                         *tstats);
            ctl.tol().setTraceSink(core.get());
        }
        u64 measureFrom = ctl.tol().completedInsts();

        if (!ctl.finished()) {
            u64 remaining = job.maxInsts == ~0ull
                                ? ~0ull
                                : (job.maxInsts > done
                                       ? job.maxInsts - done
                                       : 0);
            if (remaining > 0)
                ctl.run(remaining);
        }

        r.ok = true;
        r.finished = ctl.finished();
        r.exitCode = ctl.exitCode();
        r.insts = ctl.tol().completedInsts();
        r.bbs = ctl.tol().completedBBs();
        if (core) {
            fillTimingResult(r, job, *core, *tstats);
            r.sampledInsts = ctl.tol().completedInsts() - measureFrom;
        }
        for (const auto &[name, c] : ctl.stats().counters())
            r.stats[name] = c.value();
        std::ostringstream sj;
        ctl.stats().dumpJson(sj);
        r.statsJson = sj.str();
    } catch (const std::exception &e) {
        r.ok = false;
        r.error = e.what();
    }

    auto t1 = std::chrono::steady_clock::now();
    r.wallMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    return r;
}

/**
 * SimPoint-sampled execution of one job:
 *
 *  1. a functional BBV-profiling Controller run over the whole
 *     budget (tol.bbv_interval = opts.sampleInterval) supplies the
 *     job's functional results (insts, bbs, exit code, stats) and
 *     the phase profile;
 *  2. pickSimPoints clusters the profile (seeded, deterministic);
 *  3. a measurement pass walks the simpoints in ascending order,
 *     fast-forwarding functionally (or restoring a per-simpoint
 *     checkpoint from `checkpointDir`), quiescing, then running the
 *     detailed timing + power models over just that interval.
 *
 * The runtime always quiesces at a sample start — saveCheckpoint
 * does so implicitly, and the no-checkpoint path does so explicitly —
 * so the measured window is bit-identical whether the fast-forward
 * was simulated or restored, keeping results independent of the
 * checkpoint-cache state and of the worker count.
 *
 * Whole-program estimates are weight-combined per-instruction rates:
 * est_cycles = total_insts * Σ w_i · CPI_i, and likewise for energy.
 */
namespace
{

JobResult
runSampledJob(const Job &job, const RunOptions &opts)
{
    JobResult r;
    r.workload = job.workload;
    r.configName = job.configName;
    r.sampleMode = "simpoint";
    r.effectiveConfig = conf::schema().effective(job.config);
    auto t0 = std::chrono::steady_clock::now();

    try {
        // Sampled mode picks its own measurement regions; a skip
        // prefix would make its rows cover a different region than
        // full-mode rows of the same matrix. Refuse rather than
        // silently produce apples-to-oranges estimates.
        if (job.skip != 0)
            throw std::runtime_error(
                "sampled (simpoint) mode does not support a skip "
                "prefix: simpoints cover the whole run");

        // --- 1: BBV profiling (functional) --------------------------
        Config pcfg = job.config;
        pcfg.set("tol.bbv_interval", s64(opts.sampleInterval));
        sampling::BbvProfile profile;
        {
            sim::Controller prof(pcfg);
            prof.load(job.program);
            prof.run(job.maxInsts);
            r.finished = prof.finished();
            r.exitCode = prof.exitCode();
            r.insts = prof.tol().completedInsts();
            r.bbs = prof.tol().completedBBs();
            for (const auto &[name, c] : prof.stats().counters())
                r.stats[name] = c.value();
            std::ostringstream sj;
            prof.stats().dumpJson(sj);
            r.statsJson = sj.str();
            profile = sampling::harvestBbv(prof.tol().profiler());
        }

        // --- 2: phase selection -------------------------------------
        sampling::SimPointOptions so;
        so.interval = opts.sampleInterval;
        so.maxK = opts.sampleMaxK;
        so.seed = opts.sampleSeed;
        sampling::SimPointResult sp = sampling::pickSimPoints(profile, so);
        r.simpoints = u32(sp.points.size());

        // --- 3: detailed measurement over each simpoint -------------
        if (opts.timing && !sp.points.empty()) {
            std::optional<sim::Controller> holder;
            holder.emplace(job.config);
            holder->load(job.program);

            // Every sample is measured from checkpoint state at
            // (start - warmup): the image either comes from the
            // cache directory or is created by walking forward and
            // immediately restored in place. Measuring a *walked*
            // runtime instead would make the estimate depend on
            // whether the fast-forward was simulated or restored
            // (walked state carries warm chain/IBTC microstate that
            // a restore rebuilds lazily — inside the warm-up).
            //
            // `lastImage` is the most recent checkpoint (its position
            // is <= every later point's target): when consecutive
            // sample windows overlap their successors' warm-up
            // leads, the walk resumes from it instead of
            // instruction 0.
            std::string lastImage;

            double wSum = 0, wCpi = 0, wHpi = 0, wEpi = 0;
            for (const sampling::SimPoint &p : sp.points) {
                u64 ffTarget = p.startInst > opts.sampleWarmup
                                   ? p.startInst - opts.sampleWarmup
                                   : 0;
                bool restored = false;
                std::string path;
                if (!opts.checkpointDir.empty()) {
                    path = simpointCheckpointPath(opts.checkpointDir,
                                                  job,
                                                  opts.sampleInterval,
                                                  opts.sampleWarmup,
                                                  p.intervalIndex);
                    std::ifstream in(path, std::ios::binary);
                    if (in) {
                        std::ostringstream buf;
                        buf << in.rdbuf();
                        std::string image = buf.str();
                        try {
                            std::istringstream is(image);
                            holder->restoreCheckpoint(is);
                            restored = true;
                            r.checkpointHit = true;
                            lastImage = std::move(image);
                        } catch (const snapshot::SnapshotError &) {
                            // A torn cache entry is a miss: rebuild
                            // from the nearest good state below (the
                            // in-memory lastImage when one exists,
                            // else a fresh load) and overwrite the
                            // entry.
                            holder.emplace(job.config);
                            if (lastImage.empty()) {
                                holder->load(job.program);
                            } else {
                                std::istringstream is(lastImage);
                                holder->restoreCheckpoint(is);
                            }
                        }
                    }
                }
                sim::Controller &ctl = *holder;
                if (!restored) {
                    if (ctl.loaded() &&
                        ctl.tol().completedInsts() > ffTarget) {
                        // Overlap with the previous sample window:
                        // back up to the last checkpoint.
                        if (lastImage.empty()) {
                            holder.emplace(job.config);
                            holder->load(job.program);
                        } else {
                            std::istringstream is(lastImage);
                            holder->restoreCheckpoint(is);
                        }
                    }
                    u64 done = ctl.tol().completedInsts();
                    if (ffTarget > done && !ctl.finished())
                        ctl.run(ffTarget - done);
                    std::ostringstream os;
                    ctl.saveCheckpoint(os);
                    std::string image = os.str();
                    if (!path.empty() &&
                        writeCheckpointBytes(opts.checkpointDir, path,
                                             image))
                        r.checkpointStored = true;
                    std::istringstream is(image);
                    ctl.restoreCheckpoint(is);
                    lastImage = std::move(image);
                }

                // Warm-up: detailed models attached, stats discarded
                // through the delta snapshot below.
                StatGroup tstats("timing");
                timing::InOrderCore core(job.config, tstats);
                ctl.tol().setTraceSink(&core);
                u64 warmFrom = ctl.tol().completedInsts();
                if (p.startInst > warmFrom && !ctl.finished())
                    ctl.run(p.startInst - warmFrom);

                u64 at = ctl.tol().completedInsts();
                Cycle cyc0 = core.cycles();
                u64 hin0 = core.instructions();
                std::map<std::string, u64> snap;
                for (const auto &[name, c] : tstats.counters())
                    snap[name] = c.value();

                u64 end = std::min(p.startInst + profile.interval,
                                   profile.totalInsts);
                if (end > at && !ctl.finished())
                    ctl.run(end - at);
                ctl.tol().setTraceSink(nullptr);

                u64 measured = ctl.tol().completedInsts() - at;
                r.sampledInsts +=
                    ctl.tol().completedInsts() - warmFrom;
                if (measured == 0)
                    continue; // window swallowed by quiesce overshoot

                // Per-window deltas: cold-start effects stay in the
                // warm-up, the estimate sees only the window.
                StatGroup delta("timing-delta");
                for (const auto &[name, c] : tstats.counters()) {
                    auto it = snap.find(name);
                    u64 before = it == snap.end() ? 0 : it->second;
                    delta.counter(name).set(c.value() - before);
                }
                double cycles = double(core.cycles() - cyc0);
                double hostInsts = double(core.instructions() - hin0);
                power::PowerReport pr =
                    power::PowerModel(job.config).analyze(delta);
                wSum += p.weight;
                wCpi += p.weight * (cycles / double(measured));
                wHpi += p.weight * (hostInsts / double(measured));
                wEpi += p.weight *
                        (pr.totalEnergyJ / double(measured));
            }

            if (wSum > 0) {
                double total = double(profile.totalInsts);
                r.cycles = wCpi / wSum * total;
                // IPC as the ratio of estimated totals (host insts /
                // cycles), matching the full-run definition.
                double hostInsts = wHpi / wSum * total;
                r.ipc = r.cycles > 0 ? hostInsts / r.cycles : 0.0;
                r.energyJ = wEpi / wSum * total;
                double freq =
                    conf::getFloat(job.config, "power.freq_ghz");
                double seconds = r.cycles / (freq * 1e9);
                r.avgPowerW = seconds > 0 ? r.energyJ / seconds : 0.0;
            }
        }

        r.ok = true;
    } catch (const std::exception &e) {
        r.ok = false;
        r.error = e.what();
    }

    auto t1 = std::chrono::steady_clock::now();
    r.wallMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    return r;
}

} // namespace

CampaignResult
runCampaign(const std::vector<Job> &jobs, const RunOptions &opts)
{
    CampaignResult res;
    res.results.resize(jobs.size());
    auto t0 = std::chrono::steady_clock::now();

    std::vector<std::function<void()>> tasks;
    tasks.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        tasks.push_back([i, &jobs, &opts, &res]() {
            res.results[i] = runJob(jobs[i], opts);
        });
    }
    Pool(opts.jobs).run(std::move(tasks));

    auto t1 = std::chrono::steady_clock::now();
    res.wallMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    for (const JobResult &r : res.results) {
        if (r.checkpointHit)
            ++res.checkpointHits;
        if (r.checkpointStored)
            ++res.checkpointMisses;
    }
    return res;
}

// ---------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------

namespace
{

/** The stable per-job stat columns every report carries. */
const std::vector<std::string> reportStats = {
    "tol.guest_im",      "tol.guest_bbm",     "tol.guest_sbm",
    "tol.translations_bb", "tol.translations_sb", "cc.evictions",
    "cc.flushes",        "sync.syscalls",
};

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += c;
        }
    }
    return out;
}

u64
statOr0(const JobResult &r, const std::string &name)
{
    auto it = r.stats.find(name);
    return it == r.stats.end() ? 0 : it->second;
}

/** Deterministic fixed-precision rendering for report doubles. */
std::string
fmtF(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

/** cycles,ipc,energy_j,avg_w — shared by the CSV and JSON writers. */
std::string
timingCells(const JobResult &r, char sep)
{
    std::ostringstream os;
    os << fmtF(r.cycles, 0) << sep << fmtF(r.ipc, 4) << sep
       << fmtF(r.energyJ * 1e6, 3) /* µJ resolution, J units */
       << "e-06" << sep << fmtF(r.avgPowerW, 4);
    return os.str();
}

/** The full effective config as one CSV cell ("k=v;k=v;..."). */
std::string
effectiveConfigCell(const JobResult &r)
{
    std::string out;
    for (const auto &[k, v] : r.effectiveConfig) {
        if (!out.empty())
            out += ';';
        out += k + '=' + v;
    }
    return out;
}

} // namespace

std::string
CampaignResult::csvHeader()
{
    std::string h = "workload,config,ok,finished,exit_code,insts,bbs"
                    ",cycles,ipc,energy_j,avg_w"
                    ",sample_mode,simpoints,sampled_insts";
    for (const std::string &s : reportStats)
        h += ',' + s;
    h += ",effective_config,checkpoint,error,worker,wall_ms";
    return h;
}

std::string
csvRow(const JobResult &r)
{
    std::ostringstream os;
    os << r.workload << ',' << r.configName << ',' << (r.ok ? 1 : 0)
       << ',' << (r.finished ? 1 : 0) << ',' << r.exitCode << ','
       << r.insts << ',' << r.bbs << ',' << timingCells(r, ',') << ','
       << r.sampleMode << ',' << r.simpoints << ',' << r.sampledInsts;
    for (const std::string &s : reportStats)
        os << ',' << statOr0(r, s);
    os << ',' << effectiveConfigCell(r) << ','
       << (r.checkpointHit ? "hit"
                           : r.checkpointStored ? "stored" : "-");
    std::string err = r.error;
    for (char &c : err)
        if (c == ',' || c == '\n')
            c = ';';
    // Provenance cells last, so byte-identity comparisons can strip
    // them with a prefix cut (everything through `error` is
    // deterministic).
    os << ',' << err << ',' << r.workerId << ','
       << fmtF(r.wallMs, 1);
    return os.str();
}

std::string
CampaignResult::csv() const
{
    std::ostringstream os;
    os << csvHeader() << '\n';
    for (const JobResult &r : results)
        os << csvRow(r) << '\n';
    return os.str();
}

std::string
CampaignResult::json() const
{
    std::ostringstream os;
    os << "[\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const JobResult &r = results[i];
        os << "  {\"workload\": \"" << jsonEscape(r.workload)
           << "\", \"config\": \"" << jsonEscape(r.configName)
           << "\", \"ok\": " << (r.ok ? "true" : "false")
           << ", \"finished\": " << (r.finished ? "true" : "false")
           << ", \"exit_code\": " << r.exitCode
           << ", \"insts\": " << r.insts << ", \"bbs\": " << r.bbs
           << ", \"cycles\": " << fmtF(r.cycles, 0)
           << ", \"ipc\": " << fmtF(r.ipc, 4)
           << ", \"energy_j\": " << fmtF(r.energyJ * 1e6, 3) << "e-06"
           << ", \"avg_w\": " << fmtF(r.avgPowerW, 4)
           << ", \"sample_mode\": \"" << r.sampleMode
           << "\", \"simpoints\": " << r.simpoints
           << ", \"sampled_insts\": " << r.sampledInsts
           << ", \"checkpoint\": \""
           << (r.checkpointHit ? "hit"
                               : r.checkpointStored ? "stored" : "-")
           << "\", \"worker\": \"" << jsonEscape(r.workerId)
           << "\", \"wall_ms\": " << fmtF(r.wallMs, 1)
           << ", \"stats\": {";
        bool first = true;
        for (const std::string &s : reportStats) {
            os << (first ? "" : ", ") << '"' << s
               << "\": " << statOr0(r, s);
            first = false;
        }
        os << "}, \"effective_config\": {";
        first = true;
        for (const auto &[k, v] : r.effectiveConfig) {
            os << (first ? "" : ", ") << '"' << jsonEscape(k)
               << "\": \"" << jsonEscape(v) << '"';
            first = false;
        }
        os << "}, \"stats_full\": "
           << (r.statsJson.empty() ? "null" : r.statsJson)
           << ", \"error\": \"" << jsonEscape(r.error) << "\"}"
           << (i + 1 < results.size() ? "," : "") << '\n';
    }
    os << "]\n";
    return os.str();
}

} // namespace darco::campaign
