#include "campaign/campaign.hh"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>

#include "common/logging.hh"
#include "sim/controller.hh"
#include "snapshot/io.hh"

namespace darco::campaign
{

// ---------------------------------------------------------------------
// Pool
// ---------------------------------------------------------------------

Pool::Pool(unsigned workers) : workers_(workers ? workers : 1) {}

namespace
{

/** Shared state of one Pool::run() invocation. */
struct PoolRun
{
    std::vector<std::deque<std::function<void()>>> queues;
    std::vector<std::unique_ptr<std::mutex>> locks;

    explicit PoolRun(unsigned n) : queues(n)
    {
        for (unsigned i = 0; i < n; ++i)
            locks.push_back(std::make_unique<std::mutex>());
    }

    /** Pop from own deque (LIFO) or steal from a victim (FIFO). */
    bool
    take(unsigned self, std::function<void()> &out)
    {
        {
            std::lock_guard<std::mutex> g(*locks[self]);
            if (!queues[self].empty()) {
                out = std::move(queues[self].back());
                queues[self].pop_back();
                return true;
            }
        }
        for (unsigned k = 1; k < queues.size(); ++k) {
            unsigned victim = (self + k) % queues.size();
            std::lock_guard<std::mutex> g(*locks[victim]);
            if (!queues[victim].empty()) {
                out = std::move(queues[victim].front());
                queues[victim].pop_front();
                return true;
            }
        }
        return false;
    }
};

} // namespace

void
Pool::run(std::vector<std::function<void()>> tasks)
{
    if (tasks.empty())
        return;
    if (workers_ == 1) {
        for (auto &t : tasks)
            t();
        return;
    }

    unsigned n = std::min<unsigned>(workers_, unsigned(tasks.size()));
    PoolRun state(n);
    for (std::size_t i = 0; i < tasks.size(); ++i)
        state.queues[i % n].push_back(std::move(tasks[i]));

    auto worker = [&state](unsigned self) {
        std::function<void()> task;
        while (state.take(self, task))
            task();
    };

    std::vector<std::thread> threads;
    threads.reserve(n - 1);
    for (unsigned i = 1; i < n; ++i)
        threads.emplace_back(worker, i);
    worker(0);
    for (auto &t : threads)
        t.join();
}

// ---------------------------------------------------------------------
// Matrix expansion & presets
// ---------------------------------------------------------------------

std::vector<Job>
expandMatrix(const std::vector<std::pair<std::string,
                                         guest::Program>> &workloads,
             const std::vector<std::pair<std::string, Config>> &configs,
             u64 max_insts, u64 skip)
{
    std::vector<Job> jobs;
    jobs.reserve(workloads.size() * configs.size());
    for (const auto &[wname, prog] : workloads) {
        for (const auto &[cname, cfg] : configs) {
            Job j;
            j.workload = wname;
            j.configName = cname;
            j.program = prog;
            j.config = cfg;
            j.maxInsts = max_insts;
            j.skip = skip;
            jobs.push_back(std::move(j));
        }
    }
    return jobs;
}

std::vector<std::pair<std::string, Config>>
presetConfigs(const std::vector<std::string> &names,
              const std::vector<std::string> &extra)
{
    std::vector<std::pair<std::string, Config>> out;
    for (const std::string &name : names) {
        Config cfg;
        if (name == "interp") {
            cfg.parseLine("tol.enable_bbm=false");
            cfg.parseLine("tol.enable_sbm=false");
        } else if (name == "noopt") {
            cfg.parseLine("tol.opt=false");
            cfg.parseLine("tol.sched=false");
            cfg.parseLine("tol.spec_mem=false");
            cfg.parseLine("tol.unroll=false");
            cfg.parseLine("tol.fuse_flags=false");
            cfg.parseLine("tol.chaining=false");
        } else if (name == "fullopt") {
            // defaults
        } else if (name == "tinycc") {
            cfg.parseLine("cc.capacity_words=768");
            cfg.parseLine("cc.policy=evict");
            cfg.parseLine("tol.max_sb_insts=120");
        } else {
            fatal("unknown config preset '", name,
                  "' (expected interp|noopt|fullopt|tinycc)");
        }
        for (const std::string &kv : extra)
            cfg.parseLine(kv);
        out.emplace_back(name, std::move(cfg));
    }
    return out;
}

// ---------------------------------------------------------------------
// Checkpoint cache
// ---------------------------------------------------------------------

namespace
{

/** FNV-1a over the job identity (program bytes, config, skip). */
u64
jobKeyHash(const Job &job)
{
    u64 h = 0xcbf29ce484222325ull;
    auto mix = [&h](const void *data, std::size_t len) {
        const u8 *p = static_cast<const u8 *>(data);
        for (std::size_t i = 0; i < len; ++i) {
            h ^= p[i];
            h *= 0x100000001b3ull;
        }
    };
    auto mixStr = [&](const std::string &s) {
        mix(s.data(), s.size());
        mix("\0", 1);
    };
    mixStr(job.program.name);
    mix(job.program.code.data(), job.program.code.size());
    mix(job.program.data.data(), job.program.data.size());
    mix(&job.program.entry, sizeof(job.program.entry));
    for (const auto &[k, v] : job.config.entries()) {
        mixStr(k);
        mixStr(v);
    }
    mix(&job.skip, sizeof(job.skip));
    return h;
}

/** File names must survive workload names like "400.perlbench". */
std::string
sanitize(const std::string &s)
{
    std::string out;
    for (char c : s)
        out += (std::isalnum(u8(c)) || c == '.' || c == '-') ? c : '_';
    return out;
}

} // namespace

std::string
checkpointPath(const std::string &dir, const Job &job)
{
    std::ostringstream os;
    os << dir << '/' << sanitize(job.workload) << '-'
       << sanitize(job.configName) << '-' << std::hex << jobKeyHash(job)
       << ".ckpt";
    return os.str();
}

// ---------------------------------------------------------------------
// Job execution
// ---------------------------------------------------------------------

namespace
{

JobResult
runJob(const Job &job, const RunOptions &opts)
{
    JobResult r;
    r.workload = job.workload;
    r.configName = job.configName;
    auto t0 = std::chrono::steady_clock::now();

    try {
        // optional<> so a partially-restored controller can be torn
        // down and rebuilt in place (Controller is self-referential:
        // its Tol holds references into it, so it is not movable).
        std::optional<sim::Controller> holder;
        holder.emplace(job.config);
        sim::Controller &ctl = *holder;
        u64 done = 0; // guest insts already covered

        bool use_ckpt = !opts.checkpointDir.empty() && job.skip > 0;
        if (use_ckpt) {
            std::string path =
                checkpointPath(opts.checkpointDir, job);
            bool restored = false;
            {
                std::ifstream in(path, std::ios::binary);
                if (in) {
                    try {
                        ctl.restoreCheckpoint(in);
                        restored = true;
                    } catch (const snapshot::SnapshotError &) {
                        // A bad cache entry (torn write, stale
                        // version) is a miss, not a job failure:
                        // fall through to the cold path, which
                        // overwrites it.
                        holder.emplace(job.config);
                    }
                }
            }
            if (restored) {
                r.checkpointHit = true;
                done = job.skip;
            } else {
                ctl.load(job.program);
                ctl.run(job.skip);
                done = job.skip;
                // Write via a temp file + rename so a concurrent
                // writer of the same key can never expose a torn
                // checkpoint; only a fully-written image is renamed
                // into place.
                std::error_code ec;
                std::filesystem::create_directories(
                    opts.checkpointDir, ec);
                std::string tmp =
                    path + ".tmp." +
                    std::to_string(
                        std::hash<std::thread::id>{}(
                            std::this_thread::get_id()));
                bool written = false;
                {
                    std::ofstream out(tmp, std::ios::binary);
                    if (out) {
                        ctl.saveCheckpoint(out);
                        out.flush();
                        written = out.good();
                    }
                }
                if (written) {
                    std::filesystem::rename(tmp, path, ec);
                    r.checkpointStored = !ec;
                }
                if (!r.checkpointStored)
                    std::filesystem::remove(tmp, ec);
            }
        } else {
            ctl.load(job.program);
            if (job.skip > 0) {
                ctl.run(job.skip);
                done = job.skip;
            }
        }

        if (!ctl.finished()) {
            u64 remaining = job.maxInsts == ~0ull
                                ? ~0ull
                                : (job.maxInsts > done
                                       ? job.maxInsts - done
                                       : 0);
            if (remaining > 0)
                ctl.run(remaining);
        }

        r.ok = true;
        r.finished = ctl.finished();
        r.exitCode = ctl.exitCode();
        r.insts = ctl.tol().completedInsts();
        r.bbs = ctl.tol().completedBBs();
        for (const auto &[name, c] : ctl.stats().counters())
            r.stats[name] = c.value();
    } catch (const std::exception &e) {
        r.ok = false;
        r.error = e.what();
    }

    auto t1 = std::chrono::steady_clock::now();
    r.wallMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    return r;
}

} // namespace

CampaignResult
runCampaign(const std::vector<Job> &jobs, const RunOptions &opts)
{
    CampaignResult res;
    res.results.resize(jobs.size());
    auto t0 = std::chrono::steady_clock::now();

    std::vector<std::function<void()>> tasks;
    tasks.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        tasks.push_back([i, &jobs, &opts, &res]() {
            res.results[i] = runJob(jobs[i], opts);
        });
    }
    Pool(opts.jobs).run(std::move(tasks));

    auto t1 = std::chrono::steady_clock::now();
    res.wallMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    for (const JobResult &r : res.results) {
        if (r.checkpointHit)
            ++res.checkpointHits;
        if (r.checkpointStored)
            ++res.checkpointMisses;
    }
    return res;
}

// ---------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------

namespace
{

/** The stable per-job stat columns every report carries. */
const std::vector<std::string> reportStats = {
    "tol.guest_im",      "tol.guest_bbm",     "tol.guest_sbm",
    "tol.translations_bb", "tol.translations_sb", "cc.evictions",
    "cc.flushes",        "sync.syscalls",
};

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += c;
        }
    }
    return out;
}

u64
statOr0(const JobResult &r, const std::string &name)
{
    auto it = r.stats.find(name);
    return it == r.stats.end() ? 0 : it->second;
}

} // namespace

std::string
CampaignResult::csv() const
{
    std::ostringstream os;
    os << "workload,config,ok,finished,exit_code,insts,bbs";
    for (const std::string &s : reportStats)
        os << ',' << s;
    os << ",checkpoint,error\n";
    for (const JobResult &r : results) {
        os << r.workload << ',' << r.configName << ',' << (r.ok ? 1 : 0)
           << ',' << (r.finished ? 1 : 0) << ',' << r.exitCode << ','
           << r.insts << ',' << r.bbs;
        for (const std::string &s : reportStats)
            os << ',' << statOr0(r, s);
        os << ','
           << (r.checkpointHit ? "hit"
                               : r.checkpointStored ? "stored" : "-");
        std::string err = r.error;
        for (char &c : err)
            if (c == ',' || c == '\n')
                c = ';';
        os << ',' << err << '\n';
    }
    return os.str();
}

std::string
CampaignResult::json() const
{
    std::ostringstream os;
    os << "[\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const JobResult &r = results[i];
        os << "  {\"workload\": \"" << jsonEscape(r.workload)
           << "\", \"config\": \"" << jsonEscape(r.configName)
           << "\", \"ok\": " << (r.ok ? "true" : "false")
           << ", \"finished\": " << (r.finished ? "true" : "false")
           << ", \"exit_code\": " << r.exitCode
           << ", \"insts\": " << r.insts << ", \"bbs\": " << r.bbs
           << ", \"checkpoint\": \""
           << (r.checkpointHit ? "hit"
                               : r.checkpointStored ? "stored" : "-")
           << "\", \"stats\": {";
        bool first = true;
        for (const std::string &s : reportStats) {
            os << (first ? "" : ", ") << '"' << s
               << "\": " << statOr0(r, s);
            first = false;
        }
        os << "}, \"error\": \"" << jsonEscape(r.error) << "\"}"
           << (i + 1 < results.size() ? "," : "") << '\n';
    }
    os << "]\n";
    return os.str();
}

} // namespace darco::campaign
