/**
 * @file
 * Parallel experiment-campaign engine.
 *
 * The paper's evaluation is a large workload×config matrix (Fig. 4-7,
 * the ablations, the warm-up study): dozens of independent simulations
 * that today run one after another. This subsystem executes such a
 * matrix on a work-stealing thread pool with one fully isolated
 * Controller per job (the library keeps no global mutable state), and
 * aggregates every job's stats into a CSV/JSON report.
 *
 * Checkpoint integration: a job may declare a `skip` prefix of guest
 * instructions; with a checkpoint directory configured, the state at
 * the end of that prefix is saved through Controller::saveCheckpoint
 * keyed by (workload, config, skip), and later invocations of the
 * same cell restore it instead of re-simulating the prefix.
 *
 * The pool itself is generic (std::function tasks), so other drivers
 * — darco_fuzz --jobs N — reuse it for their own fan-out.
 */

#ifndef DARCO_CAMPAIGN_CAMPAIGN_HH
#define DARCO_CAMPAIGN_CAMPAIGN_HH

#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/config.hh"
#include "guest/program.hh"

namespace darco::campaign
{

/**
 * Work-stealing thread pool. Tasks are dealt round-robin onto
 * per-worker deques; each worker drains its own deque LIFO and steals
 * FIFO from the others when empty. run() blocks until every task has
 * finished. Tasks must not throw (wrap and capture failures).
 *
 * workers == 1 executes inline on the calling thread, so a serial
 * campaign is exactly a plain loop (byte-identical results is the
 * contract the tests pin down).
 */
class Pool
{
  public:
    explicit Pool(unsigned workers);

    unsigned workers() const { return workers_; }

    /** Execute all tasks; returns when the last one completes. */
    void run(std::vector<std::function<void()>> tasks);

  private:
    unsigned workers_;
};

/** One cell of the campaign matrix. */
struct Job
{
    std::string workload;   //!< workload display name
    std::string configName; //!< config-variant display name
    guest::Program program;
    Config config;          //!< full effective Config for the run
    u64 maxInsts = ~0ull;   //!< total guest-instruction budget
    u64 skip = 0;           //!< checkpointable fast-forward prefix
};

/** Per-job outcome + stats snapshot. */
struct JobResult
{
    std::string workload;
    std::string configName;
    bool ok = false;
    std::string error;
    u32 exitCode = 0;
    u64 insts = 0; //!< retired guest instructions
    u64 bbs = 0;   //!< retired dynamic basic blocks
    bool finished = false;
    bool checkpointHit = false;    //!< prefix restored from cache
    bool checkpointStored = false; //!< prefix saved to cache
    double wallMs = 0;             //!< per-job wall clock (not compared)
    std::map<std::string, u64> stats; //!< full counter snapshot
};

/** Execution knobs. */
struct RunOptions
{
    unsigned jobs = 1;
    /** Directory for fast-forward checkpoints; empty disables. */
    std::string checkpointDir;
};

/** Whole-campaign outcome. */
struct CampaignResult
{
    std::vector<JobResult> results; //!< in job-submission order
    double wallMs = 0;
    u64 checkpointHits = 0;
    u64 checkpointMisses = 0;

    /** results as CSV (header + one row per job, stable column set). */
    std::string csv() const;
    /** results as a JSON array of objects. */
    std::string json() const;
};

/**
 * Run every job (isolated Controller each) on `opts.jobs` workers.
 * Results are independent of the worker count and of scheduling
 * order: results[i] always corresponds to jobs[i].
 */
CampaignResult runCampaign(const std::vector<Job> &jobs,
                           const RunOptions &opts);

/**
 * Expand a workload×config matrix into jobs (row-major: all configs
 * of workload 0, then workload 1, ...).
 */
std::vector<Job>
expandMatrix(const std::vector<std::pair<std::string,
                                         guest::Program>> &workloads,
             const std::vector<std::pair<std::string, Config>> &configs,
             u64 max_insts, u64 skip);

/**
 * Named config presets for campaign matrices: interp, noopt, fullopt,
 * tinycc — the same design points the differential fuzzer validates,
 * at production promotion thresholds.
 */
std::vector<std::pair<std::string, Config>>
presetConfigs(const std::vector<std::string> &names,
              const std::vector<std::string> &extra = {});

/** The checkpoint-cache file for one job (diagnostics, tests). */
std::string checkpointPath(const std::string &dir, const Job &job);

} // namespace darco::campaign

#endif // DARCO_CAMPAIGN_CAMPAIGN_HH
