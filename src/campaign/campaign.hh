/**
 * @file
 * Parallel experiment-campaign engine.
 *
 * The paper's evaluation is a large workload×config matrix (Fig. 4-7,
 * the ablations, the warm-up study): dozens of independent simulations
 * that today run one after another. This subsystem executes such a
 * matrix on a work-stealing thread pool with one fully isolated
 * Controller per job (the library keeps no global mutable state), and
 * aggregates every job's stats into a CSV/JSON report.
 *
 * Checkpoint integration: a job may declare a `skip` prefix of guest
 * instructions; with a checkpoint directory configured, the state at
 * the end of that prefix is saved through Controller::saveCheckpoint
 * keyed by (workload, config, skip), and later invocations of the
 * same cell restore it instead of re-simulating the prefix.
 *
 * Timing/power: every job attaches the detailed timing model
 * (timing::InOrderCore) and the power model over its measured region
 * (everything after the skip prefix), so reports carry cycles, IPC,
 * energy and average power for all run modes. RunOptions::timing
 * turns this off for functional-only campaigns.
 *
 * Sampled runs (SampleMode::SimPoint) replace the full detailed run
 * with the SimPoint pipeline (src/sampling/simpoint.hh): a functional
 * BBV-profiling pass, seeded k-means phase selection, then detailed
 * timing/power only over each representative interval, fast-forwarded
 * through per-simpoint checkpoints (created in `checkpointDir` on
 * first use, restored afterwards). The reported cycles/energy are
 * weight-combined whole-program estimates; results are byte-identical
 * across worker counts and checkpoint-cache states.
 *
 * Report schema (the column order is stable and covered by a
 * regression test; new columns are only ever appended *within* their
 * group, never reordered):
 *
 *   CSV:  workload,config,ok,finished,exit_code,insts,bbs,
 *         cycles,ipc,energy_j,avg_w,
 *         sample_mode,simpoints,sampled_insts,
 *         <stat columns: tol.guest_im,tol.guest_bbm,tol.guest_sbm,
 *          tol.translations_bb,tol.translations_sb,cc.evictions,
 *          cc.flushes,sync.syscalls>,
 *         effective_config,checkpoint,error,worker,wall_ms
 *
 * The two trailing columns are *provenance*, not simulation results:
 * `worker` names the campaign-service worker that ran the job (empty
 * in local mode) and `wall_ms` is the job's host wall clock. Tools
 * comparing reports for byte-identity strip them (everything up to
 * and including `error` is deterministic).
 *
 *   JSON: an array of objects with the same fields in the same order
 *         ("stats" is a nested object over the stat columns;
 *         "effective_config" is a nested object too), plus
 *         "stats_full": the job's complete StatGroup::dumpJson
 *         snapshot — every counter and histogram, not just the stable
 *         stat columns (null for failed jobs).
 *
 * effective_config is the job's full default-resolved configuration
 * (every schema parameter mapped to its canonical value, see
 * docs/CONFIG.md), rendered as semicolon-joined key=value pairs in
 * the CSV — a row is reproducible from the report alone, without
 * knowing which build defaults it ran against. Job configs are
 * schema-validated when the matrix is expanded: a misspelled or
 * out-of-range key fails fast (with a did-you-mean suggestion), not
 * after hours of simulation.
 *
 * The pool itself is generic (std::function tasks), so other drivers
 * — darco_fuzz --jobs N — reuse it for their own fan-out.
 */

#ifndef DARCO_CAMPAIGN_CAMPAIGN_HH
#define DARCO_CAMPAIGN_CAMPAIGN_HH

#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/config.hh"
#include "guest/program.hh"

namespace darco::campaign
{

/**
 * Work-stealing thread pool. Tasks are dealt round-robin onto
 * per-worker deques; each worker drains its own deque LIFO and steals
 * FIFO from the others when empty. run() blocks until every task has
 * finished. Tasks must not throw (wrap and capture failures).
 *
 * workers == 1 executes inline on the calling thread, so a serial
 * campaign is exactly a plain loop (byte-identical results is the
 * contract the tests pin down).
 */
class Pool
{
  public:
    explicit Pool(unsigned workers);

    unsigned workers() const { return workers_; }

    /** Execute all tasks; returns when the last one completes. */
    void run(std::vector<std::function<void()>> tasks);

  private:
    unsigned workers_;
};

/** One cell of the campaign matrix. */
struct Job
{
    std::string workload;   //!< workload display name
    std::string configName; //!< config-variant display name
    guest::Program program;
    Config config;          //!< full effective Config for the run
    u64 maxInsts = ~0ull;   //!< total guest-instruction budget
    u64 skip = 0;           //!< checkpointable fast-forward prefix
};

/**
 * How a job's detailed (timing/power) measurement is obtained.
 * SimPoint mode picks its own measurement regions over the whole
 * run, so it rejects jobs with a skip prefix (the job fails with a
 * clear error instead of silently measuring a different region than
 * a full-mode row of the same matrix).
 */
enum class SampleMode
{
    Full,     //!< detailed models over the whole measured region
    SimPoint, //!< BBV profile + k-means + per-simpoint measurement
};

/** Per-job outcome + stats snapshot. */
struct JobResult
{
    std::string workload;
    std::string configName;
    bool ok = false;
    std::string error;
    u32 exitCode = 0;
    u64 insts = 0; //!< retired guest instructions
    u64 bbs = 0;   //!< retired dynamic basic blocks
    bool finished = false;
    bool checkpointHit = false;    //!< prefix restored from cache
    bool checkpointStored = false; //!< prefix saved to cache
    double wallMs = 0;             //!< per-job wall clock (not compared)

    /**
     * Campaign-service worker that executed the job; empty when the
     * job ran in-process (local runCampaign). Provenance only — never
     * part of byte-identity comparisons.
     */
    std::string workerId;

    // Timing/power over the measured region. In sampled mode these
    // are weight-combined whole-program *estimates*; in full mode,
    // direct measurements. Zero when RunOptions::timing is off.
    double cycles = 0;   //!< total (estimated) core cycles
    double ipc = 0;      //!< host-instruction IPC
    double energyJ = 0;  //!< total (estimated) energy, joules
    double avgPowerW = 0;

    std::string sampleMode = "full"; //!< "full" | "simpoint"
    u32 simpoints = 0;     //!< representative intervals measured
    u64 sampledInsts = 0;  //!< guest insts under the detailed models

    std::map<std::string, u64> stats; //!< full counter snapshot

    /**
     * The job's full stats as one StatGroup::dumpJson object (every
     * counter plus histograms); empty for failed jobs. Embedded raw
     * as "stats_full" in the JSON report.
     */
    std::string statsJson;

    /**
     * The full effective (default-resolved, schema-normalized)
     * config the job ran under; populated for failed jobs too.
     */
    std::map<std::string, std::string> effectiveConfig;
};

/**
 * Content-addressed checkpoint store interface. Keys are the hex
 * jobKeyHash of the job whose functional prefix the image captures
 * (see jobKeyString), so any two jobs with identical
 * execution-relevant identity — across processes and hosts, since
 * checkpoints are host-agnostic — share one image. The campaign
 * service implements this over the coordinator connection
 * (fetch-or-compute over the wire); tests implement it in memory.
 */
class CheckpointStore
{
  public:
    virtual ~CheckpointStore() = default;

    /**
     * Look up an image.
     * @return true (with *image filled) on a hit. A returned image is
     *         complete but not necessarily valid: callers treat a
     *         failing restore as a miss.
     */
    virtual bool fetch(const std::string &key, std::string *image) = 0;

    /** Publish a computed image (last complete write wins). */
    virtual void store(const std::string &key,
                       const std::string &image) = 0;
};

/** Execution knobs. */
struct RunOptions
{
    unsigned jobs = 1;
    /** Directory for fast-forward checkpoints; empty disables. */
    std::string checkpointDir;
    /**
     * Content-addressed store for fast-forward prefix checkpoints;
     * takes precedence over `checkpointDir` for the prefix image when
     * set (sampled-mode per-simpoint checkpoints always use the local
     * directory). Not owned; must outlive the run.
     */
    CheckpointStore *store = nullptr;
    /**
     * Directory for per-job observability outputs; empty disables.
     * Full-mode jobs get `<workload>-<config>.trace.json` (Chrome
     * trace events) and `<workload>-<config>.metrics.jsonl`
     * (interval metrics) unless the job config already sets its own
     * obs.* paths. Sampled jobs are not traced (one job runs many
     * short Controllers that would overwrite one file).
     */
    std::string traceDir;
    /** Attach the timing + power models (cycles/ipc/energy columns). */
    bool timing = true;
    /** Full detailed run vs SimPoint-sampled estimation. */
    SampleMode sampleMode = SampleMode::Full;
    /** SimPoint knobs (sampled mode only). */
    u64 sampleInterval = 100'000; //!< BBV interval (guest insts)
    u32 sampleMaxK = 16;          //!< k-means sweep upper bound
    u64 sampleSeed = 42;          //!< clustering/projection seed
    /**
     * Detailed (timing-model) warm-up ahead of each measured window:
     * the core model is attached `sampleWarmup` guest instructions
     * before the sample start and the window is measured as counter
     * deltas, so cold caches / predictor state land in the warm-up,
     * not the estimate. The software-layer (translation) state needs
     * no such warm-up — the functional fast-forward runs through the
     * Tol, so translations are naturally warm (cf. the Section VI-E
     * methodology in sampling/warmup.hh, which exists because
     * *checkpoint-free* sampling lacks exactly this property).
     */
    u64 sampleWarmup = 25'000;
};

/** Whole-campaign outcome. */
struct CampaignResult
{
    std::vector<JobResult> results; //!< in job-submission order
    double wallMs = 0;
    u64 checkpointHits = 0;
    u64 checkpointMisses = 0;

    /** results as CSV (header + one row per job, stable column set). */
    std::string csv() const;
    /** results as a JSON array of objects. */
    std::string json() const;

    /**
     * The exact CSV header line (no trailing newline). Pinned by a
     * regression test: treat any change as a report-schema break.
     */
    static std::string csvHeader();
};

/**
 * Run every job (isolated Controller each) on `opts.jobs` workers.
 * Results are independent of the worker count and of scheduling
 * order: results[i] always corresponds to jobs[i].
 */
CampaignResult runCampaign(const std::vector<Job> &jobs,
                           const RunOptions &opts);

/**
 * Expand a workload×config matrix into jobs (row-major: all configs
 * of workload 0, then workload 1, ...). Every config is validated
 * against the parameter schema up front: unknown keys (with a
 * nearest-match suggestion), out-of-range values and bad enum
 * strings raise FatalError before any job runs.
 */
std::vector<Job>
expandMatrix(const std::vector<std::pair<std::string,
                                         guest::Program>> &workloads,
             const std::vector<std::pair<std::string, Config>> &configs,
             u64 max_insts, u64 skip);

/**
 * Named config presets for campaign matrices: interp, noopt, fullopt,
 * tinycc — the same design points the differential fuzzer validates,
 * at production promotion thresholds.
 */
std::vector<std::pair<std::string, Config>>
presetConfigs(const std::vector<std::string> &names,
              const std::vector<std::string> &extra = {});

/**
 * Execute one job in-process with an isolated Controller. This is the
 * single job-execution path: local runCampaign and campaign-service
 * workers both funnel through it, which is what makes distributed
 * results byte-identical to local ones.
 */
JobResult runJob(const Job &job, const RunOptions &opts);

/**
 * FNV-1a over the job's execution-relevant identity: program bytes,
 * schema-normalized execution-relevant config, and skip prefix.
 * Cosmetically different jobs (validation toggles, obs/timing params)
 * hash equal, so they share checkpoint-store entries.
 */
u64 jobKeyHash(const Job &job);

/** jobKeyHash as the canonical hex store key. */
std::string jobKeyString(const Job &job);

/** One job's CSV report row (no trailing newline). */
std::string csvRow(const JobResult &r);

/** The checkpoint-cache file for one job (diagnostics, tests). */
std::string checkpointPath(const std::string &dir, const Job &job);

/**
 * Atomically store checkpoint bytes at `path` (inside `dir`, which is
 * created if needed): the image goes to an exclusively-created temp
 * file — named with the pid and thread id so concurrent writers in
 * the same or different processes never share one — then renames into
 * place. A reader (or a racing writer's rename) therefore only ever
 * observes a complete image. @return true when stored.
 */
bool writeCheckpointBytes(const std::string &dir,
                          const std::string &path,
                          const std::string &image);

/**
 * The per-simpoint checkpoint file for one job's sampled run
 * (diagnostics, tests). Keyed like checkpointPath plus the sampling
 * interval, the timing warm-up length (the saved position is
 * start - warmup), and the simpoint's interval index.
 */
std::string simpointCheckpointPath(const std::string &dir,
                                   const Job &job, u64 interval,
                                   u64 warmup, u32 interval_index);

} // namespace darco::campaign

#endif // DARCO_CAMPAIGN_CAMPAIGN_HH
