#include "campaign/wire.hh"

namespace darco::campaign::wire
{

std::string
encode(const std::string &type,
       const std::function<void(snapshot::Serializer &)> &body)
{
    std::ostringstream os;
    {
        snapshot::Serializer s(os);
        s.beginSection(type);
        if (body)
            body(s);
        s.endSection();
        s.finish();
    }
    return os.str();
}

// ---------------------------------------------------------------------
// Field codecs
// ---------------------------------------------------------------------

namespace
{

void
writeByteVec(snapshot::Serializer &s, const std::vector<u8> &v)
{
    s.w64(v.size());
    s.wbytes(v.data(), v.size());
}

std::vector<u8>
readByteVec(snapshot::Deserializer &d)
{
    u64 n = d.r64();
    std::vector<u8> v(n);
    d.rbytes(v.data(), n);
    return v;
}

void
writeStrMap(snapshot::Serializer &s,
            const std::map<std::string, std::string> &m)
{
    s.w64(m.size());
    for (const auto &[k, v] : m) {
        s.wstr(k);
        s.wstr(v);
    }
}

std::map<std::string, std::string>
readStrMap(snapshot::Deserializer &d)
{
    std::map<std::string, std::string> m;
    u64 n = d.r64();
    for (u64 i = 0; i < n; ++i) {
        std::string k = d.rstr();
        m[k] = d.rstr();
    }
    return m;
}

} // namespace

void
writeProgram(snapshot::Serializer &s, const guest::Program &p)
{
    s.wstr(p.name);
    s.w32(p.entry);
    writeByteVec(s, p.code);
    writeByteVec(s, p.data);
}

guest::Program
readProgram(snapshot::Deserializer &d)
{
    guest::Program p;
    p.name = d.rstr();
    p.entry = d.r32();
    p.code = readByteVec(d);
    p.data = readByteVec(d);
    return p;
}

void
writeConfig(snapshot::Serializer &s, const Config &cfg)
{
    writeStrMap(s, cfg.entries());
}

Config
readConfig(snapshot::Deserializer &d)
{
    Config cfg;
    for (const auto &[k, v] : readStrMap(d))
        cfg.set(k, v);
    return cfg;
}

void
writeJob(snapshot::Serializer &s, const Job &job)
{
    s.wstr(job.workload);
    s.wstr(job.configName);
    writeProgram(s, job.program);
    writeConfig(s, job.config);
    s.w64(job.maxInsts);
    s.w64(job.skip);
}

Job
readJob(snapshot::Deserializer &d)
{
    Job job;
    job.workload = d.rstr();
    job.configName = d.rstr();
    job.program = readProgram(d);
    job.config = readConfig(d);
    job.maxInsts = d.r64();
    job.skip = d.r64();
    return job;
}

void
writeResult(snapshot::Serializer &s, const JobResult &r)
{
    s.wstr(r.workload);
    s.wstr(r.configName);
    s.wbool(r.ok);
    s.wstr(r.error);
    s.w32(r.exitCode);
    s.w64(r.insts);
    s.w64(r.bbs);
    s.wbool(r.finished);
    s.wbool(r.checkpointHit);
    s.wbool(r.checkpointStored);
    s.wf64(r.wallMs);
    s.wstr(r.workerId);
    s.wf64(r.cycles);
    s.wf64(r.ipc);
    s.wf64(r.energyJ);
    s.wf64(r.avgPowerW);
    s.wstr(r.sampleMode);
    s.w32(r.simpoints);
    s.w64(r.sampledInsts);
    s.w64(r.stats.size());
    for (const auto &[k, v] : r.stats) {
        s.wstr(k);
        s.w64(v);
    }
    s.wstr(r.statsJson);
    writeStrMap(s, r.effectiveConfig);
}

JobResult
readResult(snapshot::Deserializer &d)
{
    JobResult r;
    r.workload = d.rstr();
    r.configName = d.rstr();
    r.ok = d.rbool();
    r.error = d.rstr();
    r.exitCode = d.r32();
    r.insts = d.r64();
    r.bbs = d.r64();
    r.finished = d.rbool();
    r.checkpointHit = d.rbool();
    r.checkpointStored = d.rbool();
    r.wallMs = d.rf64();
    r.workerId = d.rstr();
    r.cycles = d.rf64();
    r.ipc = d.rf64();
    r.energyJ = d.rf64();
    r.avgPowerW = d.rf64();
    r.sampleMode = d.rstr();
    r.simpoints = d.r32();
    r.sampledInsts = d.r64();
    u64 nstats = d.r64();
    for (u64 i = 0; i < nstats; ++i) {
        std::string k = d.rstr();
        r.stats[k] = d.r64();
    }
    r.statsJson = d.rstr();
    r.effectiveConfig = readStrMap(d);
    return r;
}

void
writeRunOptions(snapshot::Serializer &s, const RunOptions &o)
{
    s.wbool(o.timing);
    s.w8(o.sampleMode == SampleMode::SimPoint ? 1 : 0);
    s.w64(o.sampleInterval);
    s.w32(o.sampleMaxK);
    s.w64(o.sampleSeed);
    s.w64(o.sampleWarmup);
}

void
readRunOptions(snapshot::Deserializer &d, RunOptions &o)
{
    o.timing = d.rbool();
    o.sampleMode =
        d.r8() ? SampleMode::SimPoint : SampleMode::Full;
    o.sampleInterval = d.r64();
    o.sampleMaxK = d.r32();
    o.sampleSeed = d.r64();
    o.sampleWarmup = d.r64();
}

} // namespace darco::campaign::wire
