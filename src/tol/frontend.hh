/**
 * @file
 * TOL front end: guest instructions -> IR regions.
 *
 * This is the per-guest-ISA part of TOL (paper Section V-D "Support
 * for multiple ISA"): everything downstream of the IR — optimizer,
 * scheduler, allocator, code generator — is guest-agnostic.
 *
 * Flag handling implements the paper's "writes to the flag registers
 * only if the written value is really going to be consumed": flag
 * side effects are tracked symbolically as a *thunk* (the operands of
 * the last flag-setting operation); conditions fuse into single host
 * compares (cmp+jcc -> slt+bne) and full flag materialization happens
 * only at region exits.
 */

#ifndef DARCO_TOL_FRONTEND_HH
#define DARCO_TOL_FRONTEND_HH

#include <optional>
#include <vector>

#include "guest/gisa.hh"
#include "tol/ir.hh"

namespace darco::tol
{

/** What to do with a conditional branch (or JMP) inside a path. */
enum class BranchDisp : u8
{
    Final,          //!< region-terminating branch: exit both ways
    AssertTaken,    //!< speculate taken: convert to assert, continue
    AssertNotTaken, //!< speculate not-taken
    ExitTaken,      //!< multi-exit SB: side exit if taken
    ExitNotTaken,   //!< multi-exit SB: side exit if not taken
    ElideTaken,     //!< retire with no code (JMP glue, unrolled body)
};

/** One guest instruction on a translation path. */
struct PathElem
{
    guest::GInst inst;
    GAddr pc = 0;
    BranchDisp disp = BranchDisp::Final;
};

/** Leading counted-loop trip check (loop unrolling support). */
struct TripCheck
{
    u8 reg;     //!< loop counter register
    u32 factor; //!< unroll factor: exit to IM when reg < factor
};

/** Frontend tuning knobs (ablations). */
struct FrontendOptions
{
    bool fuseFlags = true; //!< thunk fusion (off = naive flag reads)
};

/**
 * Translate a straight-line guest path into an IR region.
 *
 * The path must be non-empty. If the last element is a CTI with
 * disp=Final the region ends through it; otherwise `end` must give
 * the fall-off exit (REP boundary, syscall, hlt).
 */
class Frontend
{
  public:
    explicit Frontend(const FrontendOptions &opts = FrontendOptions());

    struct EndSpec
    {
        ExitKind kind = ExitKind::Interp;
        GAddr target = 0;
    };

    Region build(GAddr entry_pc, RegionMode mode,
                 const std::vector<PathElem> &path,
                 std::optional<TripCheck> trip = std::nullopt,
                 std::optional<EndSpec> end = std::nullopt);

  private:
    struct Impl;
    FrontendOptions opts_;
};

} // namespace darco::tol

#endif // DARCO_TOL_FRONTEND_HH
