/**
 * @file
 * The translation registry.
 *
 * Owns every installed translation and all bookkeeping around it:
 *
 *  - the Translation table (tids are never reused within a cache
 *    generation; a full flush starts a new generation);
 *  - the guest-entry -> tid and host-base-pc -> tid maps the dispatch
 *    loop and rollback handling use;
 *  - the global exit table (EXITB operands -> per-region exit
 *    descriptors);
 *  - chaining: patching EXITB sites into J words, the incoming-chain
 *    lists, and the symmetric unchaining when either side dies;
 *  - region-granular invalidation: unchain both directions, drop the
 *    maps, invalidate IBTC entries (by guest entry and by host range,
 *    since released words may be reused), and return the region's
 *    words to the code cache's free list;
 *  - the LRU clock (second-chance) the eviction policy sweeps when
 *    the code cache fills.
 *
 * Extracted from the Tol monolith so the cache policy is a swappable
 * design choice: Tol decides *when* to evict or flush; the registry
 * knows *how*.
 *
 * Thread safety: every structural operation (add/lookup/chain/
 * invalidate/evict/clear/clock) takes an internal shared_mutex —
 * lookups and invariant checks share, mutations are exclusive. This
 * is the atomic-publish point for the async translator: a region's
 * code-cache words are fully stored before add() makes the entry
 * visible, so any thread that observes the tid through lookup() also
 * observes the finished region. get()/exit() hand out references
 * into growable tables and are therefore reserved for the owning
 * (main/publish) thread; worker threads must restrict themselves to
 * the locked query surface. Lock ordering: registry before code
 * cache (the cache never calls back into the registry).
 */

#ifndef DARCO_TOL_REGISTRY_HH
#define DARCO_TOL_REGISTRY_HH

#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "host/code_cache.hh"
#include "host/hemu.hh"
#include "tol/ir.hh"

namespace darco::obs
{
class Tracer;
} // namespace darco::obs

namespace darco::tol
{

/** One region exit as the runtime tracks it. */
struct ExitDesc
{
    ExitKind kind = ExitKind::Direct;
    GAddr target = 0;
    u32 instsRetired = 0;
    u32 bbsRetired = 0;
    u32 siteWord = ~0u;   //!< global code-cache word of the EXITB
    bool chained = false;
    u32 chainedTo = ~0u;  //!< tid this exit is chained into
};

/** An installed translation. */
struct Translation
{
    GAddr entry = 0;
    RegionMode mode = RegionMode::BB;
    u32 hostPc = 0;
    u32 words = 0;
    u32 exitIdBase = 0;
    std::vector<ExitDesc> exits;
    bool valid = true;
    bool refBit = true; //!< second-chance bit for the eviction clock
    u32 clockIdx = ~0u; //!< slot in the registry's live-clock list
    u32 assertFails = 0;
    u32 aliasFails = 0;

    /** Chain sites in other regions that jump into this one. */
    struct InChain
    {
        u32 site;
        u32 exitId;
        u32 fromTrans;
        u32 fromExit;
    };
    std::vector<InChain> incoming;
};

/** Global exit-table entry (EXITB operand decoding). */
struct GlobalExit
{
    u32 trans = 0;
    u32 exitIdx = 0;
    bool promote = false;
    GAddr promoteTarget = 0;
};

/**
 * Translation table + maps + chaining + eviction mechanics.
 *
 * Stats written here: tol.chains, tol.invalidations, tol.unchains,
 * cc.evictions, cc.bytes_reclaimed.
 */
class TranslationRegistry
{
  public:
    static constexpr u32 npos = ~0u;

    TranslationRegistry(host::CodeCache &cache, host::IbtcTable &ibtc,
                        StatGroup &stats);

    /**
     * Whether invalidation returns a region's words to the free list
     * (true, the evict policy) or leaves them as dead occupancy until
     * a full flush (false — the classic policy, where invalidated
     * regions are garbage the paper's TOL never reclaims).
     */
    void setReclaimOnInvalidate(bool on) { reclaim_ = on; }

    /**
     * Attach the event tracer (cc.install/chain/invalidate/evict/
     * flush instants); null detaches. Mutations happen on the
     * main/publish thread only, and the tracer's own lock is a leaf,
     * so emitting under mu_ is safe.
     */
    void setTracer(obs::Tracer *t) { trace_ = t; }

    /** tid the next add() will return (exit descriptors need it). */
    u32
    nextTid() const
    {
        std::shared_lock<std::shared_mutex> g(mu_);
        return u32(trans_.size());
    }

    /** Register an installed translation (maps entry and host base). */
    u32 add(Translation t);

    /**
     * Drop the entry->tid mapping but keep the translation alive
     * (the unrolled-loop residual BB: reachable only via its chain).
     */
    void unmapEntry(u32 tid);

    u32 lookup(GAddr entry) const;
    u32 atHostBase(u32 host_pc) const;

    /** Owning-thread only: references into a growable table. */
    Translation &get(u32 tid) { return trans_[tid]; }
    const Translation &get(u32 tid) const { return trans_[tid]; }

    bool
    valid(u32 tid) const
    {
        std::shared_lock<std::shared_mutex> g(mu_);
        return tid < trans_.size() && trans_[tid].valid;
    }

    /** Currently-installed translations (flushes/evictions excluded). */
    std::size_t
    liveCount() const
    {
        std::shared_lock<std::shared_mutex> g(mu_);
        return live_;
    }
    /** All tids handed out this cache generation. */
    std::size_t
    totalCount() const
    {
        std::shared_lock<std::shared_mutex> g(mu_);
        return trans_.size();
    }

    // --- global exit table ---------------------------------------------
    u32
    exitCount() const
    {
        std::shared_lock<std::shared_mutex> g(mu_);
        return u32(exits_.size());
    }
    u32 addExit(const GlobalExit &ge);
    /** Owning-thread only (reference into a growable table). */
    const GlobalExit &exit(u32 id) const { return exits_[id]; }

    // --- chaining -------------------------------------------------------
    /**
     * Patch from's exit site into a direct jump to to's entry and
     * record the incoming chain on the target. The exit must have a
     * patchable site and not already be chained.
     */
    void chain(u32 from_tid, u32 exit_idx, u32 to_tid);

    // --- invalidation & eviction ---------------------------------------
    /**
     * Invalidate one translation: unchain incoming sites (restoring
     * their EXITBs), detach outgoing chains from targets' incoming
     * lists, drop the maps, invalidate IBTC, release the words.
     * @return number of incoming chain sites restored.
     */
    u32 invalidate(u32 tid);

    /** Invalidate as a capacity eviction (counts cc.* stats).
     *  @return words reclaimed. */
    u32 evict(u32 tid);

    /** Forget everything (after a full code-cache flush). */
    void clear();

    // --- LRU clock ------------------------------------------------------
    /** Mark a translation recently used (dispatch/retire/IBTC fill). */
    void
    touch(u32 tid)
    {
        std::unique_lock<std::shared_mutex> g(mu_);
        if (tid < trans_.size())
            trans_[tid].refBit = true;
    }

    /**
     * Second-chance sweep for a cold translation to evict.
     * @param pinned0/1 tids that must survive (e.g. the residual BB a
     *        superblock being installed will chain into).
     * @return victim tid, or npos when nothing is evictable.
     */
    u32 pickVictim(u32 pinned0 = npos, u32 pinned1 = npos);

    /**
     * Structural consistency check for tests: every chained exit's
     * target must be live and point back at the exit's site; every
     * incoming record's source must be live and marked chained.
     * @return empty string when consistent, else a description.
     */
    std::string checkInvariants() const;

  private:
    /** invalidate() body; caller holds mu_ exclusively (lets evict()
     *  wrap it without recursive locking). */
    u32 invalidateLocked(u32 tid);

    mutable std::shared_mutex mu_;
    host::CodeCache &cache_;
    host::IbtcTable &ibtc_;
    StatGroup &stats_;
    obs::Tracer *trace_ = nullptr;

    std::vector<Translation> trans_;
    std::unordered_map<GAddr, u32> entryMap_;  //!< entry -> tid
    std::unordered_map<u32, u32> hostPcMap_;   //!< region base -> tid
    std::vector<GlobalExit> exits_;
    std::size_t live_ = 0;
    /**
     * Live tids in clock order (swap-removed on invalidation), so
     * victim sweeps cost O(live translations) — dead tids, which
     * accumulate across a cache generation, are never scanned.
     */
    std::vector<u32> clock_;
    u32 hand_ = 0; //!< clock hand: index into clock_
    bool reclaim_ = true;
};

} // namespace darco::tol

#endif // DARCO_TOL_REGISTRY_HH
