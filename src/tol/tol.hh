/**
 * @file
 * The Translation Optimization Layer runtime.
 *
 * Implements the paper's three-mode execution flow (Fig. 3):
 *
 *  - IM: interpret guest instructions, profile BB repetition with
 *    software counters, promote hot BBs to BBM;
 *  - BBM: basic-block translations with profiling instrumentation
 *    (execution + edge counters) and a promotion-threshold check;
 *  - SBM: superblocks built along biased branch directions, with
 *    branches converted to asserts, single-BB counted loops unrolled
 *    behind a runtime trip check, and the full optimization pipeline
 *    (SSA-form IR, forward passes, DCE, DDG memory optimization,
 *    list scheduling with memory speculation, linear-scan allocation).
 *
 * Tol itself is the mode-transition state machine; the subsystems it
 * coordinates are factored out:
 *
 *  - tol::Profiler: IM repetition counters, profiling-slot
 *    allocation, edge-counter readback;
 *  - tol::TranslationRegistry: the translation table, entry/host-pc
 *    maps, global exit table, chaining and invalidation mechanics,
 *    and the LRU eviction clock;
 *  - host::CodeCache: region-allocating host-code store.
 *
 * The runtime still owns policy: promotion thresholds, the IBTC fill
 * policy, speculation-failure handling (assert/alias failure counting
 * and superblock recreation), the code-cache capacity policy
 * (cc.policy = evict | flush), and the seven-category overhead cost
 * model.
 */

#ifndef DARCO_TOL_TOL_HH
#define DARCO_TOL_TOL_HH

#include <array>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "guest/memory.hh"
#include "guest/state.hh"
#include "host/code_cache.hh"
#include "host/hemu.hh"
#include "tol/async.hh"
#include "tol/cost_model.hh"
#include "tol/frontend.hh"
#include "tol/profiler.hh"
#include "tol/registry.hh"
#include "verify/verifier.hh"
#include "xemu/os.hh"

namespace darco::snapshot
{
class Serializer;
class Deserializer;
} // namespace darco::snapshot

namespace darco::obs
{
class Tracer;
class MetricsWriter;
} // namespace darco::obs

namespace darco::tol
{

/** A decoded basic block (TOL-internal granularity). */
struct BBInfo
{
    GAddr entry = 0;
    std::vector<PathElem> elems;
    bool endsWithCti = false;
    GAddr endPc = 0;      //!< IM continuation point when !endsWithCti
    bool translatable = true;
};

/**
 * The TOL.
 *
 * Config keys (defaults in parentheses):
 *   tol.bb_threshold (10)      IM->BBM repetition threshold
 *   tol.sb_threshold (50)      BBM->SBM execution threshold
 *   tol.bias_threshold (0.85)  branch bias to extend a superblock
 *   tol.cum_threshold (0.40)   min cumulative path probability
 *   tol.min_edge_total (16)    edge samples needed to trust a bias
 *   tol.max_sb_insts (200)     superblock size caps
 *   tol.max_sb_bbs (16)
 *   tol.max_bb_insts (128)
 *   tol.max_assert_fails (6)   recreate SB without asserts beyond this
 *   tol.max_alias_fails (6)    recreate SB without speculation
 *   tol.unroll (true)          unroll single-BB counted loops
 *   tol.unroll_factor (4)
 *   tol.enable_bbm (true)      ablation switches
 *   tol.enable_sbm (true)
 *   tol.chaining (true)
 *   tol.spec_mem (true)
 *   tol.sched (true)
 *   tol.opt (true)
 *   tol.fuse_flags (true)
 *   tol.bbv_interval (0)       BBV profiling interval in guest insts
 *                              (0 disables; see Profiler BBV hooks)
 *   tol.async.threads (0)      background translator workers
 *                              (0 = translate synchronously inline)
 *   tol.async.vthreads (1)     modeled concurrent translator threads
 *                              (virtual-time completion divisor)
 *   tol.async.queue (16)       bounded queue capacity (full queue
 *                              falls back to inline translation)
 *   tol.async.rate (8)         modeled translator host insts retired
 *                              per guest instruction
 *   tol.verify ("off")         per-translation equivalence proofs:
 *                              "install" proves each region as it is
 *                              published, "final" accumulates units
 *                              and proves them in verifyFinal()
 *   verify.concretize (4096)   exhaustive-concretization budget
 *   verify.witness (128)       counterexample sampling tries
 *   verify.paths (256)         host symbolic path limit per region
 *   cc.capacity_words (1<<22)
 *   cc.policy ("evict")        full cache: "evict" cold regions one
 *                              at a time, or "flush" everything
 */
class Tol : public host::RetireSink
{
  public:
    /** Controller-side services (the co-designed component's view).
     *  `core` selects which guest context (and which reference
     *  component) the request is for; `completed_insts` is that
     *  core's own retirement count, the sync point for its
     *  reference. */
    class Env
    {
      public:
        virtual ~Env() = default;
        /** Fetch a guest page as of `completed_insts` into memory. */
        virtual void dataRequest(u32 core, GAddr page,
                                 u64 completed_insts) = 0;
        /**
         * Execute the syscall at the current guest pc (in the
         * reference component) and apply its effects to the
         * co-designed state. @return false when the program exited.
         */
        virtual bool syscall(u32 core, u64 completed_insts) = 0;
    };

    enum class RunResult
    {
        Finished,
        Budget,
    };

    Tol(guest::PagedMemory &mem, const Config &cfg, StatGroup &stats);

    void setEnv(Env *env) { env_ = env; }

    /** Guest hardware contexts sharing this TOL (`cores` param). */
    u32 numCores() const { return u32(cores_.size()); }

    /**
     * Attach core i's guest address space (core 0 uses the memory
     * passed at construction). Must be called for every extra core
     * before run().
     */
    void setCoreMemory(u32 core, guest::PagedMemory &mem);

    /** Initialize guest architectural state (Initialization phase). */
    void setState(const guest::CpuState &st) { cores_[0].state = st; }
    void
    setState(u32 core, const guest::CpuState &st)
    {
        cores_[core].state = st;
    }
    guest::CpuState &state() { return cores_[0].state; }
    const guest::CpuState &state() const { return cores_[0].state; }
    guest::CpuState &state(u32 core) { return cores_[core].state; }
    const guest::CpuState &state(u32 core) const
    {
        return cores_[core].state;
    }

    /** Execute up to max_guest_insts more guest instructions
     *  (multi-core: total across all cores). */
    RunResult run(u64 max_guest_insts = ~0ull);

    /** All cores finished? */
    bool
    finished() const
    {
        for (const CoreCtx &c : cores_) {
            if (!c.finished)
                return false;
        }
        return true;
    }
    bool finished(u32 core) const { return cores_[core].finished; }

    /** Total retired guest instructions / BBs (all cores). */
    u64 completedInsts() const { return completedInsts_; }
    u64 completedBBs() const { return completedBBs_; }
    /** Core-local retirement counters. */
    u64 completedInsts(u32 core) const { return cores_[core].insts; }
    u64 completedBBs(u32 core) const { return cores_[core].bbs; }

    host::HostEmu &hostEmu() { return emu_; }
    host::CodeCache &codeCache() { return cache_; }
    CostModel &costModel() { return cost_; }
    Profiler &profiler() { return profiler_; }
    TranslationRegistry &registry() { return registry_; }
    const TranslationRegistry &registry() const { return registry_; }
    StatGroup &stats() { return stats_; }

    /** Attach the timing stream (application + synthesized TOL). */
    void setTraceSink(host::TraceSink *sink);

    /**
     * Attach the observability outputs (either may be null). Called
     * by the Controller after construction — and again after a
     * checkpoint restore, so the replayed installs are never traced.
     * All events are emitted on the simulation thread at virtual
     * (retired-guest-inst) timestamps; async jobs appear as spans on
     * virtual translator tracks keyed by enqueue order, keeping the
     * stream byte-identical across positive tol.async.threads counts.
     */
    void attachObs(obs::Tracer *tracer, obs::MetricsWriter *metrics);

    /**
     * Close the open mode span and emit the final partial metrics
     * row. Called at end of run / before the session writes files;
     * idempotent between retirements.
     */
    void flushObs();

    /**
     * Downscale promotion thresholds by `factor` (the warm-up
     * methodology of Section VI-E). factor=1 restores the originals.
     */
    void scaleThresholds(u32 factor);

    // RetireSink
    void onRetire(u32 exit_id, u64 host_insts) override;

    // --- checkpointing ---------------------------------------------------
    /**
     * Run to the next region boundary if execution paused inside a
     * translated region (a budget stop mid-region leaves host-pc
     * resume state a checkpoint cannot carry). May advance guest
     * execution by up to one region's remainder; no-op otherwise.
     */
    void quiesce();

    /**
     * Serialize runtime state: retirement counts, mode/threshold
     * state, guest architectural state, profiling counters, the
     * discovered-BB set, and per-entry translation metadata. Host
     * code is *not* saved — restore() re-materializes it by
     * retranslating every registered region, so checkpoints stay
     * host-agnostic. Requires a quiescent runtime (see quiesce()).
     */
    void save(snapshot::Serializer &s) const;

    /**
     * Restore into a freshly-constructed Tol (same Config, env
     * already attached). Replays translation installation in original
     * order against the restored memory image and profile counters.
     */
    void restore(snapshot::Deserializer &d);

    // Introspection for tests and benches.
    std::size_t translationCount() const
    {
        return registry_.liveCount();
    }
    const Translation *translationFor(GAddr pc) const;

    /** Async pipeline on (tol.async.threads >= 1)? */
    bool asyncEnabled() const { return async_ != nullptr; }
    /** In-flight (enqueued, unpublished) async translations. */
    std::size_t
    asyncPending() const
    {
        return async_ ? async_->pendingCount() : 0;
    }

    // --- translation verification (tol.verify) ---------------------------
    /** Equivalence proofs enabled (tol.verify != off)? */
    bool verifyEnabled() const { return verifyMode_ != VerifyMode::Off; }
    /**
     * Discharge every accumulated proof obligation (tol.verify=final).
     * Quiesces first so install-time capture observed only fully
     * published regions; also flushes the due part of the async
     * publish queue for the same reason. Idempotent.
     */
    void verifyFinal();
    /** Proof outcomes so far (populated per tol.verify mode). */
    const verify::VerifyReport &verifyReport() const
    {
        return verifyReport_;
    }

  private:
    // --- decode / BB cache ------------------------------------------------
    guest::GInst fetchGuest(GAddr pc);
    BBInfo &getBB(GAddr entry);

    // --- execution ---------------------------------------------------------
    /** BBV attribution of `insts` retired insts to region `entry`. */
    void
    recordBbv(GAddr entry, u64 insts)
    {
        if (bbvOn_ && insts)
            profiler_.recordBbvRetire(entry, insts);
    }
    void interpretStep();
    void executeTranslation(u32 tid, u32 host_pc, bool resuming);
    void handleSyscall();
    void servicePageMiss(GAddr page);
    /** One seeded interleaver draw: schedule the next runnable core
     *  (no-op, and no RNG draw, with a single core). */
    void pickNextCore();

    // --- translation -----------------------------------------------------
    // (SBRecipe — the superblock construction record checkpoint
    // restore and async SB jobs replay from — lives in tol/async.hh.)

    void translateBB(BBInfo &bb);
    void buildSuperblock(GAddr entry);
    /** Rebuild an SB from its recipe (checkpoint-restore replay). */
    void replaySuperblock(GAddr entry);
    /** Shared tail: frontend build + invalidate/retain + install. */
    void installSuperblock(GAddr entry, std::vector<PathElem> &path,
                           const std::optional<TripCheck> &trip,
                           const std::optional<Frontend::EndSpec> &end);
    std::vector<PathElem> collectSBPath(GAddr start, bool use_asserts,
                                        std::optional<TripCheck> &trip,
                                        std::optional<Frontend::EndSpec>
                                            &end,
                                        std::vector<std::pair<GAddr, u8>>
                                            &steps);
    /** Reconstruct an SB build's inputs from its recipe. */
    std::vector<PathElem> pathFromRecipe(const SBRecipe &rc,
                                         std::optional<TripCheck> &trip,
                                         std::optional<Frontend::EndSpec>
                                             &end);
    u32 install(Region &region, RegionMode mode, bool profile,
                GAddr prof_bb,
                u32 pinned_tid = TranslationRegistry::npos);
    /**
     * Install tail shared by the synchronous path and the async
     * publish: codegen, capacity policy, registry/cost bookkeeping.
     * `conc` charges the translation to the concurrent-translator
     * overhead category instead of the critical-path one.
     */
    u32 installPrepared(Region &region, const Allocation &alloc,
                        RegionMode mode, bool profile, GAddr prof_bb,
                        u32 pinned_tid, u64 pass_work, u32 spec_loads,
                        bool conc);
    /** Superblock install tail (previous-translation replacement,
     *  residual-BB retention/chaining), shared with async publish. */
    void finishSuperblockInstall(GAddr entry, Region &region,
                                 const Allocation &alloc,
                                 const std::optional<TripCheck> &trip,
                                 u64 pass_work, u32 spec_loads,
                                 std::size_t path_len, bool conc);

    // --- async pipeline ---------------------------------------------------
    /** Worker-thread callback: the pure part of a translation. */
    void prepareJob(TranslationJob &job) const;
    /** Virtual-time latency of a modeled translation. */
    u64 asyncLatency(u64 est_cost) const;
    /** @return false when the queue is full (caller translates
     *  inline); true when enqueued or already pending. */
    bool enqueueBBAsync(const BBInfo &bb);
    bool enqueueSBAsync(GAddr entry);
    /** Publish every job due at the current virtual time. */
    void pumpAsyncPublishes();
    void publishJob(TranslationJob &job);
    /** Evict cold regions until `need` contiguous words fit. */
    void evictFor(u32 need, u32 pinned_tid);
    void flushAll();
    u32 regionAt(u32 host_pc) const;
    u32 poolIndex(double v);
    void maybeChain(u32 from_tid, u32 exit_idx);

    // --- verification -----------------------------------------------------
    /**
     * Attach the construction inputs to the VerifyUnit installPrepared
     * captured and hand it to the verifier (install mode) or the
     * accumulator (final mode). Called on the main thread, after the
     * install — including the superblock residual chaining — is fully
     * published, so the proof never observes a half-installed region.
     */
    void noteInstall(const std::vector<PathElem> &path,
                     const std::optional<TripCheck> &trip,
                     const std::optional<Frontend::EndSpec> &end);

    // --- observability -----------------------------------------------------
    /** Open/extend/close the current mode span (0=IM 1=BBM 2=SBM). */
    void obsNoteMode(u8 mode);
    /** Emit one interval row covering [obsSnap_.vt, completedInsts_). */
    void obsEmitMetricsRow();

    // --- members -----------------------------------------------------------
    /**
     * One guest hardware context. N of these share everything else in
     * the TOL — registry, code cache, eviction clock, profiler, async
     * translator — which is the paper's runtime viewed as a system
     * service rather than a per-thread library. Core i's OS stream is
     * seeded seed+i so the contexts desynchronize naturally.
     */
    struct CoreCtx
    {
        explicit CoreCtx(u64 os_seed) : os(os_seed) {}

        guest::CpuState state;
        xemu::GuestOS os; //!< standalone mode (no controller)
        guest::PagedMemory *mem = nullptr;
        bool finished = false;
        bool forceInterp = false;
        // Resume state for guest-budget pauses inside a region. At
        // most one core can hold this (a budget pause exits run()
        // immediately), and the dispatch loop resumes it before the
        // interleaver runs again.
        bool inRegionResume = false;
        u32 resumeHostPc = 0;
        u64 insts = 0; //!< core-local retirements
        u64 bbs = 0;
        u64 im = 0, bbm = 0, sbm = 0; //!< core-local mode attribution
        // Per-core open mode span (observability).
        u8 obsMode = 0;
        bool obsModeOpen = false;
        u64 obsModeStart = 0;
    };

    guest::PagedMemory &mem_; //!< core 0's guest address space
    Config cfg_;
    StatGroup &stats_;
    host::CodeCache cache_;
    host::HostEmu emu_;
    Profiler profiler_;
    TranslationRegistry registry_;
    CostModel cost_;
    Frontend frontend_;
    Env *env_ = nullptr;

    std::vector<CoreCtx> cores_;
    u32 cur_ = 0;      //!< core the dispatch loop is serving
    u64 ivRng_ = 1;    //!< interleaver xorshift64 state (never 0)

    CoreCtx &cur() { return cores_[cur_]; }
    const CoreCtx &cur() const { return cores_[cur_]; }
    guest::PagedMemory &curMem() { return *cores_[cur_].mem; }

    bool initCharged_ = false;
    bool inRestore_ = false; //!< suppress BBV hooks during replay

    u64 completedInsts_ = 0; //!< shared virtual clock (all cores)
    u64 completedBBs_ = 0;
    u64 runTarget_ = ~0ull;

    std::unordered_map<GAddr, guest::GInst> decodeCache_;
    std::unordered_map<GAddr, BBInfo> bbCache_;

    struct SBFlags
    {
        bool noAsserts = false;
        bool noSpec = false;
        u32 residualBb = ~0u; //!< retained BB for unrolled residuals
    };
    std::unordered_map<GAddr, SBFlags> sbFlags_;
    std::unordered_map<GAddr, SBRecipe> sbRecipes_;

    std::unordered_map<u64, u32> fpPoolMap_;

    // Cached stat counters (hot paths).
    Counter *cGuestIm_, *cGuestBbm_, *cGuestSbm_;
    Counter *cBbIm_, *cBbBbm_, *cBbSbm_;
    Counter *cHostBbm_, *cHostSbm_;
    Counter *cChainTouches_;

    // Config snapshot.
    u32 bbThreshold_, sbThreshold_;
    u32 baseBbThreshold_, baseSbThreshold_;
    double biasThreshold_, cumThreshold_;
    u32 minEdgeTotal_, maxSbInsts_, maxSbBbs_, maxBbInsts_;
    u32 maxAssertFails_, maxAliasFails_;
    bool unroll_;
    u32 unrollFactor_;
    bool useAsserts_;
    bool bbmEnabled_, sbmEnabled_, chaining_, specMem_, sched_, opt_;
    bool fuseFlags_;
    bool bbvOn_; //!< tol.bbv_interval != 0
    bool flipCondExits_; //!< hidden fault injection (fuzzer self-test)
    bool dropGuard_; //!< hidden fault injection (verifier self-test)
    bool ccEvict_; //!< cc.policy == "evict"
    u64 hostChunk_;

    // Translation verification (tol.verify).
    enum class VerifyMode : u8 { Off, Install, Final };
    VerifyMode verifyMode_ = VerifyMode::Off;
    verify::VerifyOptions verifyOpts_;
    verify::VerifyReport verifyReport_;
    std::vector<verify::VerifyUnit> verifyUnits_; //!< final mode
    /** Machine-level half of a unit, set by installPrepared and
     *  consumed by noteInstall right after the publish completes. */
    std::optional<verify::VerifyUnit> lastInstall_;

    // Async pipeline configuration (tol.async.*).
    u32 asyncVthreads_ = 1;
    u64 asyncRate_ = 8;

    // Observability (obs.*): raw pointers owned by the Controller's
    // obs::Session; null when disabled, so the hot paths pay a single
    // pointer test and no counters exist at all.
    obs::Tracer *trace_ = nullptr;
    obs::MetricsWriter *metrics_ = nullptr;
    u64 obsAsyncSeq_ = 0;     //!< deterministic translator-track cursor
    u64 metricsNext_ = ~0ull; //!< next interval boundary (virtual)
    /** Trace track for core i's mode spans (track 0 single-core). */
    u16 coreTrack(u32 core) const;
    /** Counter snapshot at the last emitted interval boundary. */
    struct ObsSnap
    {
        u64 vt = 0;
        u64 im = 0, bbm = 0, sbm = 0;
        u64 ovh[unsigned(Overhead::NumCats)] = {};
        u64 instBb = 0, instSb = 0, evict = 0, flush = 0;
        /** Per-core im/bbm/sbm at the boundary (cores > 1 only). */
        std::vector<std::array<u64, 3>> core;
    };
    ObsSnap obsSnap_;

    /**
     * The background translator pool; null when tol.async.threads=0
     * (the legacy synchronous path). Declared last so its destructor
     * joins the workers before anything they read is torn down.
     */
    std::unique_ptr<AsyncTranslator> async_;
};

} // namespace darco::tol

#endif // DARCO_TOL_TOL_HH
