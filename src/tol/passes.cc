#include "tol/passes.hh"

#include <cstring>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"

namespace darco::tol
{

namespace
{

/** Apply a value-replacement map to every use in the region. */
void
applyReplacements(Region &r, const std::vector<s32> &rep)
{
    auto fix = [&](s32 &v) {
        while (v >= 0 && rep[v] >= 0 && rep[v] != v)
            v = rep[v];
    };
    for (IRItem &it : r.items) {
        if (it.kind == IRItem::Kind::CondExit) {
            fix(it.cond);
            continue;
        }
        fix(it.inst.src1);
        if (!it.inst.src2Imm)
            fix(it.inst.src2);
    }
    for (IRExit &x : r.exits) {
        fix(x.targetVal);
        for (auto &[loc, v] : x.liveOuts)
            fix(v);
    }
}

} // namespace

u32
foldConstants(Region &r)
{
    u32 changes = 0;
    std::vector<std::optional<u32>> k(r.numValues);
    std::vector<s32> rep(r.numValues, -1);

    auto cval = [&](s32 v) -> std::optional<u32> {
        return v >= 0 ? k[v] : std::nullopt;
    };

    for (IRItem &it : r.items) {
        if (it.kind != IRItem::Kind::Inst)
            continue;
        IRInst &i = it.inst;
        // Rewrite uses through earlier replacements first.
        auto fix = [&](s32 &v) {
            while (v >= 0 && rep[v] >= 0 && rep[v] != v)
                v = rep[v];
        };
        fix(i.src1);
        if (!i.src2Imm)
            fix(i.src2);

        if (i.op == IROp::Movi) {
            k[i.dst] = u32(i.imm);
            continue;
        }
        if (i.op == IROp::Mov) {
            if (auto c = cval(i.src1)) {
                i.op = IROp::Movi;
                i.imm = s32(*c);
                i.src1 = -1;
                k[i.dst] = *c;
                ++changes;
            }
            continue;
        }

        auto a = cval(i.src1);
        std::optional<u32> b;
        if (i.src2Imm)
            b = u32(i.imm);
        else
            b = cval(i.src2);

        // Fold fully-constant pure integer ALU ops.
        std::optional<u32> result;
        if (a && b) {
            u32 x = *a, y = *b;
            switch (i.op) {
              case IROp::Add: result = x + y; break;
              case IROp::Sub: result = x - y; break;
              case IROp::Mul:
                result = u32(s64(s32(x)) * s64(s32(y)));
                break;
              case IROp::MulH:
                result = u32(u64(s64(s32(x)) * s64(s32(y))) >> 32);
                break;
              case IROp::Div:
                if (y != 0 && !(x == 0x80000000u && s32(y) == -1))
                    result = u32(s32(x) / s32(y));
                break;
              case IROp::Rem:
                if (y != 0 && !(x == 0x80000000u && s32(y) == -1))
                    result = u32(s32(x) % s32(y));
                break;
              case IROp::And: result = x & y; break;
              case IROp::Or: result = x | y; break;
              case IROp::Xor: result = x ^ y; break;
              case IROp::Sll: result = x << (y & 31); break;
              case IROp::Srl: result = x >> (y & 31); break;
              case IROp::Sra:
                result = u32(s32(x) >> (y & 31));
                break;
              case IROp::Slt: result = s32(x) < s32(y) ? 1 : 0; break;
              case IROp::Sltu: result = x < y ? 1 : 0; break;
              case IROp::Seq: result = x == y ? 1 : 0; break;
              case IROp::Sne: result = x != y ? 1 : 0; break;
              case IROp::Sge: result = s32(x) >= s32(y) ? 1 : 0; break;
              case IROp::Sgeu: result = x >= y ? 1 : 0; break;
              default:
                break;
            }
        }
        if (result) {
            i.op = IROp::Movi;
            i.imm = s32(*result);
            i.src1 = i.src2 = -1;
            i.src2Imm = false;
            k[i.dst] = *result;
            ++changes;
            continue;
        }

        // Algebraic identities with one constant operand.
        if (b && i.dst >= 0) {
            u32 y = *b;
            bool identity =
                ((i.op == IROp::Add || i.op == IROp::Sub ||
                  i.op == IROp::Or || i.op == IROp::Xor ||
                  i.op == IROp::Sll || i.op == IROp::Srl ||
                  i.op == IROp::Sra) &&
                 y == 0);
            if (identity) {
                rep[i.dst] = i.src1;
                i.op = IROp::Mov;
                i.src2 = -1;
                i.src2Imm = false;
                i.imm = 0;
                ++changes;
                continue;
            }
            if (i.op == IROp::And && y == 0) {
                i.op = IROp::Movi;
                i.imm = 0;
                i.src1 = i.src2 = -1;
                i.src2Imm = false;
                k[i.dst] = 0;
                ++changes;
                continue;
            }
        }

        // Constant operand propagation into the imm slot (canonical
        // form feeds later CSE and better host immediates).
        if (!i.src2Imm && i.src2 >= 0) {
            if (auto c2 = cval(i.src2)) {
                switch (i.op) {
                  case IROp::Add:
                  case IROp::Sub:
                  case IROp::Mul:
                  case IROp::MulH:
                  case IROp::And:
                  case IROp::Or:
                  case IROp::Xor:
                  case IROp::Sll:
                  case IROp::Srl:
                  case IROp::Sra:
                  case IROp::Slt:
                  case IROp::Sltu:
                  case IROp::Seq:
                  case IROp::Sne:
                  case IROp::Sge:
                  case IROp::Sgeu:
                    i.src2 = -1;
                    i.src2Imm = true;
                    i.imm = s32(*c2);
                    ++changes;
                    break;
                  default:
                    break;
                }
            }
        }
    }

    applyReplacements(r, rep);
    return changes;
}

u32
copyPropagate(Region &r)
{
    u32 changes = 0;
    std::vector<s32> rep(r.numValues, -1);
    for (IRItem &it : r.items) {
        if (it.kind != IRItem::Kind::Inst)
            continue;
        IRInst &i = it.inst;
        auto fix = [&](s32 &v) {
            while (v >= 0 && rep[v] >= 0 && rep[v] != v)
                v = rep[v];
        };
        fix(i.src1);
        if (!i.src2Imm)
            fix(i.src2);
        if ((i.op == IROp::Mov || i.op == IROp::FMov) && i.src1 >= 0) {
            rep[i.dst] = i.src1;
            ++changes;
        }
    }
    applyReplacements(r, rep);
    return changes;
}

u32
eliminateCommonSubexprs(Region &r)
{
    u32 changes = 0;
    std::vector<s32> rep(r.numValues, -1);

    struct Key
    {
        IROp op;
        s32 src1, src2, imm;
        bool src2Imm;
        u64 fbits;

        bool
        operator==(const Key &o) const
        {
            return op == o.op && src1 == o.src1 && src2 == o.src2 &&
                   imm == o.imm && src2Imm == o.src2Imm &&
                   fbits == o.fbits;
        }
    };
    struct KeyHash
    {
        std::size_t
        operator()(const Key &x) const
        {
            u64 h = u64(x.op) * 0x9e3779b97f4a7c15ull;
            h ^= u64(u32(x.src1)) + (h << 6);
            h ^= u64(u32(x.src2)) + (h >> 3);
            h ^= u64(u32(x.imm)) * 0x2545f4914f6cdd1dull;
            h ^= x.fbits;
            h ^= x.src2Imm ? 0x55555 : 0;
            return std::size_t(h);
        }
    };
    std::unordered_map<Key, s32, KeyHash> table;

    for (IRItem &it : r.items) {
        if (it.kind != IRItem::Kind::Inst)
            continue;
        IRInst &i = it.inst;
        auto fix = [&](s32 &v) {
            while (v >= 0 && rep[v] >= 0 && rep[v] != v)
                v = rep[v];
        };
        fix(i.src1);
        if (!i.src2Imm)
            fix(i.src2);
        if (!irInfo(i.op).pure || i.dst < 0)
            continue;
        // LiveIn is pure but keyed on loc; fold it via imm slot.
        Key key;
        key.op = i.op;
        key.src1 = i.src1;
        key.src2 = i.src2;
        key.imm = i.op == IROp::LiveIn ? s32(i.loc) : i.imm;
        key.src2Imm = i.src2Imm;
        u64 fb = 0;
        if (i.op == IROp::FConst)
            std::memcpy(&fb, &i.fimm, 8);
        key.fbits = fb;

        auto [pos, inserted] = table.emplace(key, i.dst);
        if (!inserted) {
            rep[i.dst] = pos->second;
            ++changes;
        }
    }
    applyReplacements(r, rep);
    return changes;
}

u32
eliminateDeadCode(Region &r)
{
    std::vector<bool> live(r.numValues, false);
    auto markVal = [&](s32 v) {
        if (v >= 0)
            live[v] = true;
    };

    // Roots: exits and side-effecting items.
    for (const IRExit &x : r.exits) {
        markVal(x.targetVal);
        for (auto [loc, v] : x.liveOuts)
            markVal(v);
    }

    // Backward propagation.
    for (auto it = r.items.rbegin(); it != r.items.rend(); ++it) {
        if (it->kind == IRItem::Kind::CondExit) {
            markVal(it->cond);
            continue;
        }
        IRInst &i = it->inst;
        bool keep = false;
        switch (i.op) {
          case IROp::St8:
          case IROp::St16:
          case IROp::St32:
          case IROp::FSt:
          case IROp::Assert:
          case IROp::Div: // guest-visible fault
          case IROp::Rem:
            keep = true;
            break;
          default:
            keep = i.dst >= 0 && live[i.dst];
            break;
        }
        if (keep) {
            markVal(i.src1);
            if (!i.src2Imm)
                markVal(i.src2);
        }
    }

    // Sweep.
    u32 removed = 0;
    std::vector<IRItem> kept;
    kept.reserve(r.items.size());
    for (IRItem &it : r.items) {
        bool drop = false;
        if (it.kind == IRItem::Kind::Inst) {
            const IRInst &i = it.inst;
            switch (i.op) {
              case IROp::St8:
              case IROp::St16:
              case IROp::St32:
              case IROp::FSt:
              case IROp::Assert:
              case IROp::Div:
              case IROp::Rem:
                break;
              default:
                drop = i.dst < 0 || !live[i.dst];
                break;
            }
        }
        if (drop)
            ++removed;
        else
            kept.push_back(it);
    }
    r.items = std::move(kept);
    return removed;
}

Alias
aliasCheck(const IRInst &a, const IRInst &b)
{
    const IROpInfo &ia = irInfo(a.op);
    const IROpInfo &ib = irInfo(b.op);
    darco_assert((ia.isLoad || ia.isStore) && (ib.isLoad || ib.isStore));
    if (a.src1 != b.src1)
        return Alias::May; // different symbolic bases
    s64 alo = a.imm, ahi = a.imm + ia.memSize;
    s64 blo = b.imm, bhi = b.imm + ib.memSize;
    if (ahi <= blo || bhi <= alo)
        return Alias::Never;
    if (alo == blo && ia.memSize == ib.memSize)
        return Alias::Always;
    return Alias::May;
}

u32
optimizeMemory(Region &r)
{
    u32 changes = 0;
    std::vector<s32> rep(r.numValues, -1);

    // Indices (into r.items) of still-visible memory ops, in order.
    std::vector<std::size_t> window;
    // Stores that a side exit has made mandatory.
    std::vector<bool> protect(r.items.size(), false);
    std::vector<bool> removed(r.items.size(), false);

    auto isStore = [&](std::size_t k) {
        return r.items[k].kind == IRItem::Kind::Inst &&
               irInfo(r.items[k].inst.op).isStore;
    };

    for (std::size_t k = 0; k < r.items.size(); ++k) {
        IRItem &it = r.items[k];
        if (it.kind == IRItem::Kind::CondExit) {
            // Stores before a side exit must stay (the exit commits).
            for (std::size_t w : window) {
                if (isStore(w))
                    protect[w] = true;
            }
            continue;
        }
        IRInst &i = it.inst;
        auto fix = [&](s32 &v) {
            while (v >= 0 && rep[v] >= 0 && rep[v] != v)
                v = rep[v];
        };
        fix(i.src1);
        if (!i.src2Imm)
            fix(i.src2);

        const IROpInfo &oi = irInfo(i.op);
        if (!oi.isLoad && !oi.isStore)
            continue;
        if (i.op == IROp::LiveIn) // LiveIn isLoad? (it is not) safety
            continue;

        if (oi.isLoad) {
            // Search backward for a forwarding or redundancy source.
            for (auto wit = window.rbegin(); wit != window.rend();
                 ++wit) {
                IRInst &m = r.items[*wit].inst;
                Alias al = aliasCheck(i, m);
                if (al == Alias::Never)
                    continue;
                if (al == Alias::May)
                    break;
                const IROpInfo &mi = irInfo(m.op);
                if (mi.isStore) {
                    // Store -> load forwarding: exact type match only.
                    bool ok = (i.op == IROp::Ld32 &&
                               m.op == IROp::St32) ||
                              (i.op == IROp::FLd && m.op == IROp::FSt);
                    if (ok) {
                        rep[i.dst] = m.src2;
                        removed[k] = true;
                        ++changes;
                    }
                } else if (m.op == i.op) {
                    // Redundant load elimination.
                    rep[i.dst] = m.dst;
                    removed[k] = true;
                    ++changes;
                }
                break;
            }
            if (!removed[k])
                window.push_back(k);
        } else {
            // Dead-store elimination: the nearest Always-aliasing
            // store with nothing reading it in between is dead.
            for (auto wit = window.rbegin(); wit != window.rend();
                 ++wit) {
                IRInst &m = r.items[*wit].inst;
                Alias al = aliasCheck(i, m);
                if (al == Alias::Never)
                    continue;
                if (al == Alias::Always && isStore(*wit) &&
                    !protect[*wit] && m.op == i.op) {
                    removed[*wit] = true;
                    ++changes;
                    // Drop it from the visibility window so later ops
                    // can't forward from a store that no longer exists.
                    window.erase(std::next(wit).base());
                }
                break; // any overlap stops the scan
            }
            window.push_back(k);
        }
    }

    if (changes) {
        std::vector<IRItem> kept;
        kept.reserve(r.items.size());
        for (std::size_t k = 0; k < r.items.size(); ++k) {
            if (!removed[k])
                kept.push_back(r.items[k]);
        }
        r.items = std::move(kept);
        applyReplacements(r, rep);
    }
    return changes;
}

} // namespace darco::tol
