#include "tol/ir.hh"

#include <sstream>

#include "common/logging.hh"

namespace darco::tol
{

namespace
{

constexpr IROpInfo
info(const char *name, bool dst, bool fp = false, bool ld = false,
     bool st = false, u8 ms = 0, bool pure = true)
{
    return IROpInfo{name, dst, fp, ld, st, ms, pure};
}

const IROpInfo table[] = {
    info("livein", true),  // fpDst depends on loc; see irInfo note
    info("movi", true),
    info("mov", true),
    info("add", true), info("sub", true), info("mul", true),
    info("mulh", true),
    info("div", true, false, false, false, 0, false), // may fault
    info("rem", true, false, false, false, 0, false),
    info("and", true), info("or", true), info("xor", true),
    info("sll", true), info("srl", true), info("sra", true),
    info("slt", true), info("sltu", true), info("seq", true),
    info("sne", true), info("sge", true), info("sgeu", true),
    info("ld8u", true, false, true, false, 1, false),
    info("ld8s", true, false, true, false, 1, false),
    info("ld16u", true, false, true, false, 2, false),
    info("ld16s", true, false, true, false, 2, false),
    info("ld32", true, false, true, false, 4, false),
    info("st8", false, false, false, true, 1, false),
    info("st16", false, false, false, true, 2, false),
    info("st32", false, false, false, true, 4, false),
    info("fconst", true, true),
    info("fadd", true, true), info("fsub", true, true),
    info("fmul", true, true), info("fdiv", true, true),
    info("fsqrt", true, true), info("fabs", true, true),
    info("fneg", true, true), info("fmov", true, true),
    info("frnd", true, true),
    info("fcvtwd", true, true),
    info("fcvtzw", true, false),
    info("feq", true, false), info("flt", true, false),
    info("fle", true, false),
    info("fld", true, true, true, false, 8, false),
    info("fst", false, false, false, true, 8, false),
    info("assert", false, false, false, false, 0, false),
};

static_assert(sizeof(table) / sizeof(table[0]) == std::size_t(IROp::NumOps),
              "IR opcode table out of sync");

} // namespace

const IROpInfo &
irInfo(IROp op)
{
    auto i = std::size_t(op);
    darco_assert(i < std::size_t(IROp::NumOps));
    return table[i];
}

std::string
dumpRegion(const Region &r)
{
    std::ostringstream os;
    os << "region @0x" << std::hex << r.entryPc << std::dec << " ("
       << (r.mode == RegionMode::BB ? "BB" : "SB") << ") "
       << r.items.size() << " items, " << r.exits.size() << " exits\n";
    auto val = [](s32 v) { return "v" + std::to_string(v); };
    for (std::size_t k = 0; k < r.items.size(); ++k) {
        const IRItem &it = r.items[k];
        os << "  " << k << ": ";
        if (it.kind == IRItem::Kind::CondExit) {
            os << "condexit " << (it.condInvert ? "!" : "") << val(it.cond)
               << " -> exit#" << it.exitIdx << "\n";
            continue;
        }
        const IRInst &i = it.inst;
        const IROpInfo &oi = irInfo(i.op);
        if (oi.hasDst)
            os << val(i.dst) << " = ";
        os << oi.name;
        if (i.op == IROp::LiveIn) {
            os << " loc" << i.loc;
        } else if (i.op == IROp::Movi) {
            os << " " << i.imm;
        } else if (i.op == IROp::FConst) {
            os << " " << i.fimm;
        } else if (i.op == IROp::Assert) {
            os << (i.expectNonZero ? " nz " : " z ") << val(i.src1)
               << " #" << i.assertId;
        } else if (oi.isLoad) {
            os << " [" << val(i.src1) << (i.imm >= 0 ? "+" : "") << i.imm
               << "]";
            if (i.speculative)
                os << " (spec)";
        } else if (oi.isStore) {
            os << " [" << val(i.src1) << (i.imm >= 0 ? "+" : "") << i.imm
               << "] = " << val(i.src2);
        } else {
            if (i.src1 >= 0)
                os << " " << val(i.src1);
            if (i.src2Imm)
                os << ", " << i.imm;
            else if (i.src2 >= 0)
                os << ", " << val(i.src2);
        }
        if (i.guestPc)
            os << "   ; pc=0x" << std::hex << i.guestPc << std::dec;
        os << "\n";
    }
    for (std::size_t e = 0; e < r.exits.size(); ++e) {
        const IRExit &x = r.exits[e];
        os << "  exit#" << e << ": ";
        switch (x.kind) {
          case ExitKind::Direct: os << "direct"; break;
          case ExitKind::Indirect: os << "indirect"; break;
          case ExitKind::Syscall: os << "syscall"; break;
          case ExitKind::Halt: os << "halt"; break;
          case ExitKind::Interp: os << "interp"; break;
          case ExitKind::Promote: os << "promote"; break;
        }
        if (x.kind == ExitKind::Indirect)
            os << " " << val(x.targetVal);
        else
            os << " 0x" << std::hex << x.target << std::dec;
        os << " retired=" << x.instsRetired << " liveouts={";
        for (auto [loc, v] : x.liveOuts)
            os << "loc" << loc << "=" << val(v) << " ";
        os << "}";
        if (e == r.finalExit)
            os << " (final)";
        os << "\n";
    }
    return os.str();
}

std::string
verifyRegion(const Region &r)
{
    std::ostringstream err;
    std::vector<s8> defined(r.numValues, 0); // 0 undef, 1 int, 2 fp
    auto checkUse = [&](s32 v, bool want_fp, const char *what,
                        std::size_t k) {
        if (v < 0 || v >= r.numValues) {
            err << "item " << k << ": " << what << " value " << v
                << " out of range; ";
            return;
        }
        if (!defined[v]) {
            err << "item " << k << ": use of undefined v" << v << "; ";
            return;
        }
        if (defined[v] != (want_fp ? 2 : 1)) {
            err << "item " << k << ": v" << v << " type mismatch ("
                << what << "); ";
        }
    };

    for (std::size_t k = 0; k < r.items.size(); ++k) {
        const IRItem &it = r.items[k];
        if (it.kind == IRItem::Kind::CondExit) {
            checkUse(it.cond, false, "cond", k);
            if (it.exitIdx >= r.exits.size())
                err << "item " << k << ": exit index OOB; ";
            continue;
        }
        const IRInst &i = it.inst;
        const IROpInfo &oi = irInfo(i.op);
        bool fp_dst = oi.fpDst;
        bool fp_src = false;
        switch (i.op) {
          case IROp::LiveIn:
            fp_dst = locIsFp(i.loc);
            break;
          case IROp::FCvtZW:
          case IROp::FEq:
          case IROp::FLt:
          case IROp::FLe:
          case IROp::FAdd:
          case IROp::FSub:
          case IROp::FMul:
          case IROp::FDiv:
          case IROp::FSqrt:
          case IROp::FAbs:
          case IROp::FNeg:
          case IROp::FMov:
          case IROp::FRnd:
          case IROp::FSt:
            fp_src = true;
            break;
          default:
            break;
        }
        if (i.op == IROp::Mov && i.dst >= 0 && i.src1 >= 0 &&
            i.src1 < s32(defined.size()) && defined[i.src1] == 2) {
            fp_dst = true; // int Mov is polymorphic in principle; keep
            fp_src = true; // consistent with its source
        }
        if (i.src1 >= 0) {
            bool s1fp = fp_src;
            if (i.op == IROp::FCvtWD)
                s1fp = false; // int source
            if (oi.isLoad || oi.isStore)
                s1fp = false; // address
            if (i.op == IROp::Assert)
                s1fp = false;
            checkUse(i.src1, s1fp, "src1", k);
        }
        if (i.src2 >= 0 && !i.src2Imm) {
            bool s2fp = fp_src;
            if (oi.isStore)
                s2fp = i.op == IROp::FSt;
            checkUse(i.src2, s2fp, "src2", k);
        }
        if (oi.hasDst) {
            if (i.dst < 0 || i.dst >= r.numValues) {
                err << "item " << k << ": dst out of range; ";
            } else if (defined[i.dst]) {
                err << "item " << k << ": v" << i.dst
                    << " defined twice (SSA violation); ";
            } else {
                defined[i.dst] = fp_dst ? 2 : 1;
            }
        }
    }

    if (r.finalExit >= r.exits.size())
        err << "finalExit OOB; ";
    for (std::size_t e = 0; e < r.exits.size(); ++e) {
        const IRExit &x = r.exits[e];
        for (auto [loc, v] : x.liveOuts) {
            if (loc >= numLocs) {
                err << "exit " << e << ": bad loc; ";
                continue;
            }
            if (v < 0 || v >= r.numValues || !defined[v]) {
                err << "exit " << e << ": liveout v" << v
                    << " undefined; ";
            } else if ((defined[v] == 2) != locIsFp(loc)) {
                err << "exit " << e << ": liveout loc" << loc
                    << " type mismatch; ";
            }
        }
        if (x.kind == ExitKind::Indirect) {
            if (x.targetVal < 0 || x.targetVal >= r.numValues ||
                (x.targetVal < s32(defined.size()) &&
                 defined[x.targetVal] != 1)) {
                err << "exit " << e << ": bad indirect target; ";
            }
        }
    }
    return err.str();
}

} // namespace darco::tol
