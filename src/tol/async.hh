/**
 * @file
 * Asynchronous translation pipeline (concurrent translator threads).
 *
 * A real co-designed VM hides translation overhead by running BBM/SBM
 * translation on spare hardware threads while the guest keeps
 * executing — under IM for a first translation, or under the stale BB
 * translation while its superblock is being built. This module
 * provides the machinery: a bounded queue of TranslationJobs consumed
 * by a pool of background worker threads, and a *virtual-time
 * completion schedule* that decides when each finished region becomes
 * architecturally visible.
 *
 * Determinism contract. Simulated results must not depend on the host
 * machine, the worker count, or scheduling luck, so the pipeline
 * splits wall clock from virtual time:
 *
 *  - Workers run only the *pure* part of a translation (frontend
 *    build, optimization passes, scheduling, verification, register
 *    allocation) from inputs frozen at enqueue time. The artifact is
 *    a deterministic function of those inputs no matter which thread
 *    computes it or when.
 *  - The publish point is virtual: a job completes at
 *    `enqueuedAt + ceil(estCost / (tol.async.rate * tol.async.vthreads))`
 *    retired guest instructions, where estCost is the cost model's
 *    enqueue-time latency estimate. takeDue() hands jobs back in
 *    (completesAt, seq) order; it *blocks* (wall clock only) when a
 *    due job's worker has not finished yet.
 *
 * Thus `tol.async.threads` (real workers) only changes how much wall
 * clock the main thread spends waiting; `tol.async.vthreads` (modeled
 * translator threads) is what shortens the virtual completion window.
 *
 * The queue bound is part of the simulated model: full() is computed
 * from enqueue/publish events only (never from worker progress), so
 * backpressure — and the synchronous-translation fallback it forces —
 * is bit-reproducible.
 */

#ifndef DARCO_TOL_ASYNC_HH
#define DARCO_TOL_ASYNC_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "tol/frontend.hh"
#include "tol/ir.hh"
#include "tol/regalloc.hh"

namespace darco::tol
{

/**
 * Construction recipe of a superblock: the exact BB sequence and
 * branch dispositions it was built from. Checkpoint restore replays
 * from the recipe so the rebuilt region is structurally identical to
 * the saved one — re-deriving the path from profile counters would
 * use their *end-state* values and pick different speculation/
 * unrolling decisions than the original promotion-time build,
 * changing the restored run's host instruction stream (and thus its
 * timing) persistently. An in-flight async SB job carries its recipe
 * and commits it at publish.
 */
struct SBRecipe
{
    bool hasTrip = false;
    u8 tripReg = 0;
    u32 tripFactor = 0;
    bool hasEnd = false;
    u8 endKind = 0;
    GAddr endTarget = 0;
    /** (BB entry, terminator BranchDisp; stepWholeBB = all of the
     *  BB's instructions, region then ends via the end spec). */
    std::vector<std::pair<GAddr, u8>> steps;
};
constexpr u8 stepWholeBB = 0xff;

/**
 * One translation request in flight.
 *
 * Inputs are frozen on the main thread at enqueue; the worker fills
 * the outputs; the main thread consumes them at the virtual publish
 * point. Nothing here aliases live runtime state, so a job can be
 * prepared on any thread at any wall-clock moment.
 */
struct TranslationJob
{
    enum class Kind : u8 { BB, SB };
    Kind kind = Kind::BB;
    u64 seq = 0;         //!< enqueue order (publish tie-breaker)
    u64 enqueuedAt = 0;  //!< virtual time (retired guest insts)
    u64 completesAt = 0; //!< virtual publish point
    u64 estCost = 0;     //!< modeled translator host instructions
    GAddr entry = 0;

    // Inputs.
    std::vector<PathElem> path;
    std::optional<TripCheck> trip;
    std::optional<Frontend::EndSpec> end;
    bool profile = false; //!< BB: attach promotion instrumentation
    bool specOk = true;   //!< SB: memory speculation allowed
    SBRecipe recipe;      //!< SB: committed to the recipe map at publish

    // Outputs (written by the worker, read after takeDue()).
    Region region;
    Allocation alloc;
    u64 passWork = 0;
    u32 specLoads = 0;
    std::string verifyError;

    bool ready = false; //!< guarded by the translator's mutex
};

/**
 * The background translator pool.
 *
 * Owns the bounded job queue and the worker threads. The prepare
 * callback supplied at construction runs on worker threads and must
 * only read the job's inputs plus immutable configuration. Workers
 * are started lazily on the first enqueue (most configurations never
 * translate asynchronously).
 */
class AsyncTranslator
{
  public:
    using PrepareFn = std::function<void(TranslationJob &)>;

    AsyncTranslator(u32 threads, u32 queue_cap, PrepareFn prepare);
    ~AsyncTranslator();

    AsyncTranslator(const AsyncTranslator &) = delete;
    AsyncTranslator &operator=(const AsyncTranslator &) = delete;

    /**
     * Largest publishable virtual completion point: one below the
     * ~0 idle sentinel of nextDue_. enqueue() clamps completesAt
     * here, so a completion time that saturated or wrapped (enqueue
     * near the end of a very long campaign) can never alias "no job
     * due" and park the publish pump forever.
     */
    static constexpr u64 maxCompletesAt = ~0ull - 1;

    /** Backpressure: unpublished jobs at the queue bound. Depends
     *  only on enqueue/publish history, never on worker progress. */
    bool full() const { return pending_.size() >= cap_; }
    std::size_t pendingCount() const { return pending_.size(); }
    bool
    pendingFor(GAddr entry) const
    {
        return pendingEntries_.count(entry) != 0;
    }

    /** Hand a job to the pool (assigns its seq). */
    void enqueue(std::unique_ptr<TranslationJob> job);

    /**
     * Remove and return every job with completesAt <= vnow, ordered
     * by (completesAt, seq). Blocks — wall clock only — until each
     * returned job's worker has finished preparing it.
     */
    std::vector<std::unique_ptr<TranslationJob>> takeDue(u64 vnow);

    /** Wait until every queued job has been prepared (quiesce before
     *  checkpointing; publishes nothing). */
    void drain();

    /** Iterate in-flight jobs in seq order (checkpoint serialization;
     *  call drain() first so workers are not writing outputs). */
    void
    forEachPending(const std::function<void(const TranslationJob &)> &fn)
        const
    {
        for (const auto &j : pending_)
            fn(*j);
    }

  private:
    void workerLoop();
    void startWorkers();

    PrepareFn prepare_;
    u32 nthreads_;
    std::size_t cap_;

    mutable std::mutex mu_;       //!< guards work_, ready flags, stop_
    std::condition_variable cv_;  //!< worker wake-up
    std::condition_variable doneCv_; //!< main-thread wait for ready
    std::deque<TranslationJob *> work_;
    bool stop_ = false;

    /** In-flight jobs in seq order. Owned and mutated (push/pop) by
     *  the main thread only; workers reach jobs through work_. */
    std::vector<std::unique_ptr<TranslationJob>> pending_;
    /** entry -> in-flight job count (O(1) pendingFor on the
     *  interpreter's promotion-trigger path). */
    std::unordered_map<GAddr, u32> pendingEntries_;
    /** Earliest completesAt among pending jobs (~0 when none): makes
     *  the dispatch loop's publish pump a single compare. */
    u64 nextDue_ = ~0ull;
    std::vector<std::thread> threads_;
    u64 seq_ = 0;
};

} // namespace darco::tol

#endif // DARCO_TOL_ASYNC_HH
