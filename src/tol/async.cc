#include "tol/async.hh"

#include <algorithm>

#include "common/logging.hh"

namespace darco::tol
{

AsyncTranslator::AsyncTranslator(u32 threads, u32 queue_cap,
                                 PrepareFn prepare)
    : prepare_(std::move(prepare)),
      nthreads_(threads),
      cap_(queue_cap == 0 ? 1 : queue_cap)
{
    darco_assert(nthreads_ >= 1,
                 "AsyncTranslator needs at least one worker");
}

AsyncTranslator::~AsyncTranslator()
{
    {
        std::lock_guard<std::mutex> g(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
AsyncTranslator::startWorkers()
{
    threads_.reserve(nthreads_);
    for (u32 i = 0; i < nthreads_; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

void
AsyncTranslator::workerLoop()
{
    for (;;) {
        TranslationJob *job;
        {
            std::unique_lock<std::mutex> g(mu_);
            cv_.wait(g, [this] { return stop_ || !work_.empty(); });
            if (stop_ && work_.empty())
                return;
            job = work_.front();
            work_.pop_front();
        }
        // Pure work: inputs are frozen, outputs are only read after
        // `ready`. Exceptions (e.g. a verifier darco_assert) must not
        // kill the process from a worker; surface them at publish.
        try {
            prepare_(*job);
        } catch (const std::exception &e) {
            if (job->verifyError.empty())
                job->verifyError = e.what();
        } catch (...) {
            if (job->verifyError.empty())
                job->verifyError = "unknown worker exception";
        }
        {
            std::lock_guard<std::mutex> g(mu_);
            job->ready = true;
        }
        doneCv_.notify_all();
    }
}

void
AsyncTranslator::enqueue(std::unique_ptr<TranslationJob> job)
{
    darco_assert(!full(), "enqueue on a full translation queue");
    if (threads_.empty())
        startWorkers();
    job->seq = seq_++;
    ++pendingEntries_[job->entry];
    // A completesAt computed as enqueuedAt + latency can wrap (past
    // ~0) or land on the ~0 idle sentinel near the end of a very long
    // run; either would make `vnow < nextDue_` hold forever and the
    // publish pump skip a due job permanently. Saturate just below
    // the sentinel instead.
    if (job->completesAt < job->enqueuedAt ||
        job->completesAt > maxCompletesAt)
        job->completesAt = maxCompletesAt;
    nextDue_ = std::min(nextDue_, job->completesAt);
    TranslationJob *raw = job.get();
    pending_.push_back(std::move(job));
    {
        std::lock_guard<std::mutex> g(mu_);
        work_.push_back(raw);
    }
    cv_.notify_one();
}

std::vector<std::unique_ptr<TranslationJob>>
AsyncTranslator::takeDue(u64 vnow)
{
    std::vector<std::unique_ptr<TranslationJob>> due;
    // Hot path: the dispatch loop pumps on every iteration, so the
    // nothing-due case must not allocate.
    if (vnow < nextDue_)
        return due;

    // Collect due jobs preserving seq order, then order the publish
    // schedule by (completesAt, seq). pending_ is seq-sorted, so a
    // stable sort on completesAt gives exactly that.
    std::vector<std::unique_ptr<TranslationJob>> keep;
    keep.reserve(pending_.size());
    nextDue_ = ~0ull;
    for (auto &j : pending_) {
        if (j->completesAt <= vnow) {
            auto it = pendingEntries_.find(j->entry);
            if (--it->second == 0)
                pendingEntries_.erase(it);
            due.push_back(std::move(j));
        } else {
            nextDue_ = std::min(nextDue_, j->completesAt);
            keep.push_back(std::move(j));
        }
    }
    pending_.swap(keep);
    std::stable_sort(due.begin(), due.end(),
                     [](const auto &a, const auto &b) {
                         return a->completesAt < b->completesAt;
                     });

    // Virtual time says these are finished; if a worker is still on
    // one, the *simulation* waits for the *simulated hardware* — a
    // pure wall-clock stall with no simulated effect.
    for (auto &j : due) {
        std::unique_lock<std::mutex> g(mu_);
        doneCv_.wait(g, [&] { return j->ready; });
    }
    return due;
}

void
AsyncTranslator::drain()
{
    std::unique_lock<std::mutex> g(mu_);
    doneCv_.wait(g, [this] {
        for (const auto &j : pending_) {
            if (!j->ready)
                return false;
        }
        return true;
    });
}

} // namespace darco::tol
