/**
 * @file
 * Linear Scan Register Allocation (paper Section V-B3).
 *
 * Values are allocated to host temporaries (r15..r31, f8..f29) over
 * the scheduled item order. LiveIn values are homed in their fixed
 * guest-mapped host registers (r1..r12 / f0..f7), which generated code
 * never clobbers before the exit stubs. When the temp pool runs out,
 * the live value with the furthest next use spills to a TOL-local
 * memory slot; r13/r14 (f30/f31) are codegen scratch for reloads.
 */

#ifndef DARCO_TOL_REGALLOC_HH
#define DARCO_TOL_REGALLOC_HH

#include <vector>

#include "tol/ir.hh"

namespace darco::tol
{

/** Where a value lives. */
struct ValueLoc
{
    enum class Kind : u8 { None, Reg, Spill } kind = Kind::None;
    u8 reg = 0;   //!< host register number (int or fp file)
    u32 slot = 0; //!< spill slot index (8 bytes each)
    bool fp = false;
};

/** Allocation result. */
struct Allocation
{
    std::vector<ValueLoc> val;
    u32 spillSlots = 0;
    u32 spillCount = 0; //!< values that ended up spilled
};

/** Run linear scan over the region's current item order. */
Allocation allocateRegisters(const Region &r);

} // namespace darco::tol

#endif // DARCO_TOL_REGALLOC_HH
