#include "tol/profiler.hh"

namespace darco::tol
{

Profiler::Profiler(host::HostEmu &emu, u32 base)
    : emu_(emu), next_(base)
{
}

u32
Profiler::bumpIm(GAddr entry)
{
    return ++imCounters_[entry];
}

void
Profiler::resetIm(GAddr entry)
{
    imCounters_.erase(entry);
}

Profiler::Slots
Profiler::slots(GAddr bb_entry)
{
    auto it = slotMap_.find(bb_entry);
    if (it != slotMap_.end())
        return it->second;
    Slots s{next_, next_ + 4, next_ + 8};
    next_ += 12;
    slotMap_.emplace(bb_entry, s);
    return s;
}

u32
Profiler::edgeTaken(GAddr bb_entry)
{
    return emu_.readLocal32(slots(bb_entry).taken);
}

u32
Profiler::edgeFall(GAddr bb_entry)
{
    return emu_.readLocal32(slots(bb_entry).fall);
}

} // namespace darco::tol
