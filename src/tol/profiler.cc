#include "tol/profiler.hh"

#include <algorithm>
#include <vector>

#include "snapshot/io.hh"

namespace darco::tol
{

void
Profiler::save(snapshot::Serializer &s) const
{
    // Sorted orders keep the byte stream deterministic.
    std::vector<std::pair<GAddr, u32>> im(imCounters_.begin(),
                                          imCounters_.end());
    std::sort(im.begin(), im.end());
    s.w64(im.size());
    for (auto &[entry, count] : im) {
        s.w32(entry);
        s.w32(count);
    }

    std::vector<std::pair<GAddr, Slots>> sm(slotMap_.begin(),
                                            slotMap_.end());
    std::sort(sm.begin(), sm.end(),
              [](const auto &a, const auto &b) {
                  return a.second.exec < b.second.exec;
              });
    s.w64(sm.size());
    for (auto &[entry, sl] : sm) {
        s.w32(entry);
        s.w32(sl.exec);
        s.w32(emu_.readLocal32(sl.exec));
        s.w32(emu_.readLocal32(sl.taken));
        s.w32(emu_.readLocal32(sl.fall));
    }
    s.w32(next_);
}

void
Profiler::restore(snapshot::Deserializer &d)
{
    imCounters_.clear();
    u64 nim = d.r64();
    for (u64 i = 0; i < nim; ++i) {
        GAddr entry = d.r32();
        imCounters_[entry] = d.r32();
    }

    slotMap_.clear();
    u64 nsl = d.r64();
    for (u64 i = 0; i < nsl; ++i) {
        GAddr entry = d.r32();
        u32 exec = d.r32();
        // Slot addresses come from untrusted input: every slot the
        // allocator can hand out lies in [base_, base_ + 12*count).
        if (exec < base_ || u64(exec) + 12 > u64(base_) + 12 * nsl)
            throw snapshot::SnapshotError(
                "profiling slot address out of range");
        Slots sl{exec, exec + 4, exec + 8};
        emu_.writeLocal32(sl.exec, d.r32());
        emu_.writeLocal32(sl.taken, d.r32());
        emu_.writeLocal32(sl.fall, d.r32());
        slotMap_.emplace(entry, sl);
    }
    next_ = d.r32();
}

Profiler::Profiler(host::HostEmu &emu, u32 base)
    : emu_(emu), base_(base), next_(base)
{
}

u32
Profiler::bumpIm(GAddr entry)
{
    return ++imCounters_[entry];
}

void
Profiler::resetIm(GAddr entry)
{
    imCounters_.erase(entry);
}

Profiler::Slots
Profiler::slots(GAddr bb_entry)
{
    auto it = slotMap_.find(bb_entry);
    if (it != slotMap_.end())
        return it->second;
    Slots s{next_, next_ + 4, next_ + 8};
    next_ += 12;
    slotMap_.emplace(bb_entry, s);
    return s;
}

u32
Profiler::edgeTaken(GAddr bb_entry)
{
    return emu_.readLocal32(slots(bb_entry).taken);
}

u32
Profiler::edgeFall(GAddr bb_entry)
{
    return emu_.readLocal32(slots(bb_entry).fall);
}

} // namespace darco::tol
