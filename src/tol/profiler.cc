#include "tol/profiler.hh"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/logging.hh"
#include "snapshot/io.hh"

namespace darco::tol
{

// ---------------------------------------------------------------------
// BBV collection
// ---------------------------------------------------------------------

void
Profiler::enableBbv(u64 interval_insts)
{
    darco_assert(interval_insts > 0, "BBV interval must be positive");
    bbvInterval_ = interval_insts;
}

void
Profiler::closeBbvInterval()
{
    BbvInterval iv;
    iv.counts.assign(bbvCur_.begin(), bbvCur_.end());
    std::sort(iv.counts.begin(), iv.counts.end());
    iv.insts = bbvCurInsts_;
    iv.overhead = bbvCurOverhead_;
    bbvClosed_.push_back(std::move(iv));
    bbvCur_.clear();
    bbvCurInsts_ = 0;
    bbvCurOverhead_ = 0;
}

void
Profiler::recordBbvRetire(GAddr bb_entry, u64 insts)
{
    bbvTotal_ += insts;
    while (insts > 0) {
        u64 room = bbvInterval_ - bbvCurInsts_;
        u64 take = std::min(insts, room);
        bbvCur_[bb_entry] += take;
        bbvCurInsts_ += take;
        insts -= take;
        if (bbvCurInsts_ == bbvInterval_)
            closeBbvInterval();
    }
}

void
Profiler::recordBbvOverhead(u64 units)
{
    bbvCurOverhead_ += units;
}

Profiler::BbvInterval
Profiler::bbvPartial() const
{
    BbvInterval iv;
    iv.counts.assign(bbvCur_.begin(), bbvCur_.end());
    std::sort(iv.counts.begin(), iv.counts.end());
    iv.insts = bbvCurInsts_;
    iv.overhead = bbvCurOverhead_;
    return iv;
}

std::string
Profiler::checkBbvInvariants(u64 retired_insts) const
{
    std::ostringstream os;
    u64 sum = 0;
    for (std::size_t i = 0; i < bbvClosed_.size(); ++i) {
        const BbvInterval &iv = bbvClosed_[i];
        u64 s = 0;
        for (const auto &[_, n] : iv.counts)
            s += n;
        if (s != iv.insts || s != bbvInterval_) {
            os << "interval " << i << " sums to " << s << " (recorded "
               << iv.insts << ", interval length " << bbvInterval_
               << ")";
            return os.str();
        }
        sum += s;
    }
    u64 partial = 0;
    for (const auto &[_, n] : bbvCur_)
        partial += n;
    if (partial != bbvCurInsts_) {
        os << "partial interval sums to " << partial << " (recorded "
           << bbvCurInsts_ << ")";
        return os.str();
    }
    sum += partial;
    if (sum != bbvTotal_ || sum != retired_insts) {
        os << "BBV total " << sum << " (running total " << bbvTotal_
           << ") != retired instructions " << retired_insts;
        return os.str();
    }
    return "";
}

// ---------------------------------------------------------------------
// Checkpointing
// ---------------------------------------------------------------------

void
Profiler::save(snapshot::Serializer &s) const
{
    // Sorted orders keep the byte stream deterministic.
    std::vector<std::pair<GAddr, u32>> im(imCounters_.begin(),
                                          imCounters_.end());
    std::sort(im.begin(), im.end());
    s.w64(im.size());
    for (auto &[entry, count] : im) {
        s.w32(entry);
        s.w32(count);
    }

    std::vector<std::pair<GAddr, Slots>> sm(slotMap_.begin(),
                                            slotMap_.end());
    std::sort(sm.begin(), sm.end(),
              [](const auto &a, const auto &b) {
                  return a.second.exec < b.second.exec;
              });
    s.w64(sm.size());
    for (auto &[entry, sl] : sm) {
        s.w32(entry);
        s.w32(sl.exec);
        s.w32(emu_.readLocal32(sl.exec));
        s.w32(emu_.readLocal32(sl.taken));
        s.w32(emu_.readLocal32(sl.fall));
    }
    s.w32(next_);

    // BBV collection state. The open partial interval is serialized
    // sorted so the byte stream stays deterministic.
    s.w64(bbvInterval_);
    s.w64(bbvTotal_);
    s.w64(bbvClosed_.size());
    for (const BbvInterval &iv : bbvClosed_) {
        s.w64(iv.insts);
        s.w64(iv.overhead);
        s.w64(iv.counts.size());
        for (const auto &[entry, n] : iv.counts) {
            s.w32(entry);
            s.w64(n);
        }
    }
    BbvInterval part = bbvPartial();
    s.w64(part.insts);
    s.w64(part.overhead);
    s.w64(part.counts.size());
    for (const auto &[entry, n] : part.counts) {
        s.w32(entry);
        s.w64(n);
    }
}

void
Profiler::restore(snapshot::Deserializer &d)
{
    imCounters_.clear();
    u64 nim = d.r64();
    for (u64 i = 0; i < nim; ++i) {
        GAddr entry = d.r32();
        imCounters_[entry] = d.r32();
    }

    slotMap_.clear();
    u64 nsl = d.r64();
    for (u64 i = 0; i < nsl; ++i) {
        GAddr entry = d.r32();
        u32 exec = d.r32();
        // Slot addresses come from untrusted input: every slot the
        // allocator can hand out lies in [base_, base_ + 12*count).
        if (exec < base_ || u64(exec) + 12 > u64(base_) + 12 * nsl)
            throw snapshot::SnapshotError(
                "profiling slot address out of range");
        Slots sl{exec, exec + 4, exec + 8};
        emu_.writeLocal32(sl.exec, d.r32());
        emu_.writeLocal32(sl.taken, d.r32());
        emu_.writeLocal32(sl.fall, d.r32());
        slotMap_.emplace(entry, sl);
    }
    next_ = d.r32();

    bbvInterval_ = d.r64();
    bbvTotal_ = d.r64();
    bbvClosed_.clear();
    u64 nclosed = d.r64();
    for (u64 i = 0; i < nclosed; ++i) {
        BbvInterval iv;
        iv.insts = d.r64();
        iv.overhead = d.r64();
        u64 ncounts = d.r64();
        iv.counts.reserve(ncounts);
        for (u64 k = 0; k < ncounts; ++k) {
            GAddr entry = d.r32();
            iv.counts.emplace_back(entry, d.r64());
        }
        bbvClosed_.push_back(std::move(iv));
    }
    bbvCur_.clear();
    bbvCurInsts_ = d.r64();
    bbvCurOverhead_ = d.r64();
    u64 npart = d.r64();
    for (u64 k = 0; k < npart; ++k) {
        GAddr entry = d.r32();
        bbvCur_[entry] = d.r64();
    }
}

Profiler::Profiler(host::HostEmu &emu, u32 base)
    : emu_(emu), base_(base), next_(base)
{
}

u32
Profiler::bumpIm(GAddr entry)
{
    return ++imCounters_[entry];
}

void
Profiler::resetIm(GAddr entry)
{
    imCounters_.erase(entry);
}

Profiler::Slots
Profiler::slots(GAddr bb_entry)
{
    auto it = slotMap_.find(bb_entry);
    if (it != slotMap_.end())
        return it->second;
    Slots s{next_, next_ + 4, next_ + 8};
    next_ += 12;
    slotMap_.emplace(bb_entry, s);
    return s;
}

u32
Profiler::edgeTaken(GAddr bb_entry)
{
    return emu_.readLocal32(slots(bb_entry).taken);
}

u32
Profiler::edgeFall(GAddr bb_entry)
{
    return emu_.readLocal32(slots(bb_entry).fall);
}

} // namespace darco::tol
