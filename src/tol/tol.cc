#include "tol/tol.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"
#include "common/schema.hh"
#include "guest/semantics.hh"
#include "obs/metrics.hh"
#include "obs/tracer.hh"
#include "snapshot/io.hh"
#include "tol/codegen.hh"
#include "tol/ddg.hh"
#include "tol/passes.hh"
#include "tol/regalloc.hh"

namespace darco::tol
{

using namespace guest;
using host::ExitInfo;
using host::HInst;
using host::HOp;
// NB: host::ExitKind (emulator exits) is kept fully qualified to avoid
// colliding with tol::ExitKind (IR exit kinds).
using HExit = host::ExitKind;

namespace
{
/** Local-memory base of the profiling counter area (below: spills). */
constexpr u32 profBase = 0x4000;
} // namespace

Tol::Tol(PagedMemory &mem, const Config &cfg, StatGroup &stats)
    : mem_(mem),
      cfg_(cfg),
      stats_(stats),
      cache_(u32(conf::getUint(cfg, "cc.capacity_words"))),
      emu_(cache_, mem, cfg),
      profiler_(emu_, profBase),
      registry_(cache_, emu_.ibtc(), stats),
      cost_(cfg, stats),
      frontend_(FrontendOptions{conf::getBool(cfg, "tol.fuse_flags")})
{
    emu_.setRetireSink(this);

    // Guest hardware contexts. Core i's OS stream is seeded seed+i
    // (core 0 keeps the plain seed, so cores=1 is bit-identical to
    // the single-context runtime). Extra cores get their address
    // space via setCoreMemory().
    const u64 seed = conf::getUint(cfg, "seed");
    const u32 ncores = u32(conf::getUint(cfg, "cores"));
    cores_.reserve(ncores);
    for (u32 i = 0; i < ncores; ++i)
        cores_.emplace_back(seed + i);
    cores_[0].mem = &mem_;
    // Interleaver RNG: part of the simulated model, so it is seeded
    // from config only (tol.interleave_seed, or derived from `seed`)
    // and never from host state. xorshift64 needs a nonzero state.
    u64 ivseed = conf::getUint(cfg, "tol.interleave_seed");
    if (ivseed == 0)
        ivseed = seed ^ 0x6a09e667f3bcc909ull;
    ivRng_ = ivseed ? ivseed : 0x9e3779b97f4a7c15ull;

    bbThreshold_ = u32(conf::getUint(cfg, "tol.bb_threshold"));
    sbThreshold_ = u32(conf::getUint(cfg, "tol.sb_threshold"));
    baseBbThreshold_ = bbThreshold_;
    baseSbThreshold_ = sbThreshold_;
    biasThreshold_ = conf::getFloat(cfg, "tol.bias_threshold");
    cumThreshold_ = conf::getFloat(cfg, "tol.cum_threshold");
    minEdgeTotal_ = u32(conf::getUint(cfg, "tol.min_edge_total"));
    maxSbInsts_ = u32(conf::getUint(cfg, "tol.max_sb_insts"));
    maxSbBbs_ = u32(conf::getUint(cfg, "tol.max_sb_bbs"));
    maxBbInsts_ = u32(conf::getUint(cfg, "tol.max_bb_insts"));
    maxAssertFails_ = u32(conf::getUint(cfg, "tol.max_assert_fails"));
    maxAliasFails_ = u32(conf::getUint(cfg, "tol.max_alias_fails"));
    unroll_ = conf::getBool(cfg, "tol.unroll");
    unrollFactor_ = u32(conf::getUint(cfg, "tol.unroll_factor"));
    useAsserts_ = conf::getBool(cfg, "tol.asserts");
    bbmEnabled_ = conf::getBool(cfg, "tol.enable_bbm");
    sbmEnabled_ = conf::getBool(cfg, "tol.enable_sbm");
    chaining_ = conf::getBool(cfg, "tol.chaining");
    specMem_ = conf::getBool(cfg, "tol.spec_mem");
    sched_ = conf::getBool(cfg, "tol.sched");
    opt_ = conf::getBool(cfg, "tol.opt");
    fuseFlags_ = conf::getBool(cfg, "tol.fuse_flags");
    hostChunk_ = conf::getUint(cfg, "tol.host_chunk");

    u32 async_threads = u32(conf::getUint(cfg, "tol.async.threads"));
    asyncVthreads_ =
        std::max<u32>(1, u32(conf::getUint(cfg, "tol.async.vthreads")));
    asyncRate_ = std::max<u64>(1, conf::getUint(cfg, "tol.async.rate"));
    if (async_threads > 0 && bbmEnabled_) {
        async_ = std::make_unique<AsyncTranslator>(
            async_threads, u32(conf::getUint(cfg, "tol.async.queue")),
            [this](TranslationJob &j) { prepareJob(j); });
    }
    u64 bbv_interval = conf::getUint(cfg, "tol.bbv_interval");
    bbvOn_ = bbv_interval != 0;
    if (bbvOn_)
        profiler_.enableBbv(bbv_interval);
    // Hidden fault-injection hooks for the differential fuzzer's and
    // the verifier's self-tests (see CodegenOptions::flipCondExits /
    // CodegenOptions::dropGuard).
    flipCondExits_ = conf::getBool(cfg, "debug.flip_cond_exits");
    dropGuard_ = conf::getBool(cfg, "debug.drop_guard");

    {
        const std::string &vm = conf::getEnum(cfg, "tol.verify");
        verifyMode_ = vm == "install" ? VerifyMode::Install
                      : vm == "final" ? VerifyMode::Final
                                      : VerifyMode::Off;
        verifyOpts_.concretizeBudget =
            u32(conf::getUint(cfg, "verify.concretize"));
        verifyOpts_.sampleTries =
            u32(conf::getUint(cfg, "verify.witness"));
        verifyOpts_.pathLimit = u32(conf::getUint(cfg, "verify.paths"));
    }

    ccEvict_ = conf::getEnum(cfg, "cc.policy") == "evict";
    // The classic policy never reclaims invalidated regions: they
    // stay as dead occupancy until the next full flush.
    registry_.setReclaimOnInvalidate(ccEvict_);

    cGuestIm_ = &stats_.counter("tol.guest_im");
    cGuestBbm_ = &stats_.counter("tol.guest_bbm");
    cGuestSbm_ = &stats_.counter("tol.guest_sbm");
    cBbIm_ = &stats_.counter("tol.bb_im");
    cBbBbm_ = &stats_.counter("tol.bb_bbm");
    cBbSbm_ = &stats_.counter("tol.bb_sbm");
    cHostBbm_ = &stats_.counter("tol.host_app_bbm");
    cHostSbm_ = &stats_.counter("tol.host_app_sbm");
    cChainTouches_ = &stats_.counter("tol.chain_target_touches");
}

void
Tol::setTraceSink(host::TraceSink *sink)
{
    emu_.setTraceSink(sink);
    cost_.setTraceSink(sink);
}

void
Tol::setCoreMemory(u32 core, PagedMemory &mem)
{
    darco_assert(core < cores_.size(), "setCoreMemory: bad core");
    cores_[core].mem = &mem;
    if (core == cur_ && cores_.size() > 1)
        emu_.setMemory(mem);
}

void
Tol::pickNextCore()
{
    if (cores_.size() == 1)
        return; // single-core: zero interleaver draws, bit-identical
    u32 alive = 0;
    for (const CoreCtx &c : cores_)
        alive += c.finished ? 0 : 1;
    darco_assert(alive > 0, "pickNextCore with all cores finished");
    ivRng_ ^= ivRng_ << 13;
    ivRng_ ^= ivRng_ >> 7;
    ivRng_ ^= ivRng_ << 17;
    u32 pick = u32(ivRng_ % alive);
    for (u32 i = 0; i < u32(cores_.size()); ++i) {
        if (cores_[i].finished)
            continue;
        if (pick == 0) {
            if (i != cur_) {
                cur_ = i;
                emu_.setMemory(*cores_[i].mem);
            }
            return;
        }
        --pick;
    }
}

// ---------------------------------------------------------------------
// Observability (obs.*)
// ---------------------------------------------------------------------

namespace
{
const char *
obsModeName(u8 mode)
{
    return mode == 0 ? "IM" : mode == 1 ? "BBM" : "SBM";
}
} // namespace

void
Tol::attachObs(obs::Tracer *tracer, obs::MetricsWriter *metrics)
{
    trace_ = tracer;
    metrics_ = metrics;
    registry_.setTracer(tracer);
    if (trace_) {
        trace_->setVirtualClock(&completedInsts_);
        if (async_) {
            for (u32 i = 1; i <= asyncVthreads_; ++i)
                trace_->setTrackName(u16(i),
                                     "translator-" + std::to_string(i));
        }
        if (cores_.size() > 1) {
            for (u32 i = 0; i < u32(cores_.size()); ++i)
                trace_->setTrackName(coreTrack(i),
                                     "core-" + std::to_string(i));
        }
    }
    for (CoreCtx &c : cores_)
        c.obsModeOpen = false;
    if (metrics_) {
        obsSnap_ = ObsSnap{};
        obsSnap_.vt = completedInsts_;
        obsSnap_.im = cGuestIm_->value();
        obsSnap_.bbm = cGuestBbm_->value();
        obsSnap_.sbm = cGuestSbm_->value();
        for (unsigned c = 0; c < unsigned(Overhead::NumCats); ++c)
            obsSnap_.ovh[c] = cost_.total(Overhead(c));
        obsSnap_.instBb = stats_.value("tol.translations_bb");
        obsSnap_.instSb = stats_.value("tol.translations_sb");
        obsSnap_.evict = stats_.value("cc.evictions");
        obsSnap_.flush = stats_.value("cc.flushes");
        if (cores_.size() > 1) {
            for (const CoreCtx &c : cores_)
                obsSnap_.core.push_back({c.im, c.bbm, c.sbm});
        }
        u64 iv = metrics_->interval();
        metricsNext_ = (completedInsts_ / iv + 1) * iv;
    } else {
        metricsNext_ = ~0ull;
    }
}

u16
Tol::coreTrack(u32 core) const
{
    // Single-core keeps today's layout: mode spans on track 0.
    // Multi-core puts core i's spans on its own named track, above
    // the translator tracks (tol.async.vthreads <= 64).
    return cores_.size() == 1 ? u16(0) : u16(65 + core);
}

void
Tol::obsNoteMode(u8 mode)
{
    CoreCtx &c = cur();
    if (!c.obsModeOpen) {
        c.obsMode = mode;
        c.obsModeStart = completedInsts_;
        c.obsModeOpen = true;
        return;
    }
    if (mode == c.obsMode)
        return;
    u64 dur = completedInsts_ - c.obsModeStart;
    if (dur)
        trace_->complete("mode", obsModeName(c.obsMode), c.obsModeStart,
                         dur, coreTrack(cur_));
    c.obsMode = mode;
    c.obsModeStart = completedInsts_;
}

void
Tol::obsEmitMetricsRow()
{
    ObsSnap now;
    now.vt = completedInsts_;
    now.im = cGuestIm_->value();
    now.bbm = cGuestBbm_->value();
    now.sbm = cGuestSbm_->value();
    for (unsigned c = 0; c < unsigned(Overhead::NumCats); ++c)
        now.ovh[c] = cost_.total(Overhead(c));
    now.instBb = stats_.value("tol.translations_bb");
    now.instSb = stats_.value("tol.translations_sb");
    now.evict = stats_.value("cc.evictions");
    now.flush = stats_.value("cc.flushes");

    const u64 span = now.vt - obsSnap_.vt;
    darco_assert(span > 0, "empty metrics interval");
    obs::MetricsWriter::Row row;
    row.ints.emplace_back("vt_start", obsSnap_.vt);
    row.ints.emplace_back("vt_end", now.vt);
    row.ints.emplace_back("im", now.im - obsSnap_.im);
    row.ints.emplace_back("bbm", now.bbm - obsSnap_.bbm);
    row.ints.emplace_back("sbm", now.sbm - obsSnap_.sbm);
    for (unsigned c = 0; c < unsigned(Overhead::NumCats); ++c)
        row.ints.emplace_back(std::string("ovh_") +
                                  overheadName(Overhead(c)),
                              now.ovh[c] - obsSnap_.ovh[c]);
    row.ints.emplace_back("installs_bb", now.instBb - obsSnap_.instBb);
    row.ints.emplace_back("installs_sb", now.instSb - obsSnap_.instSb);
    row.ints.emplace_back("evictions", now.evict - obsSnap_.evict);
    row.ints.emplace_back("flushes", now.flush - obsSnap_.flush);
    // Per-core retirement attribution (multi-core runs only, so
    // single-core metrics streams keep their exact column set).
    if (cores_.size() > 1) {
        for (u32 i = 0; i < u32(cores_.size()); ++i) {
            const CoreCtx &c = cores_[i];
            now.core.push_back({c.im, c.bbm, c.sbm});
            const std::string p = "c" + std::to_string(i) + "_";
            const auto &prev = obsSnap_.core[i];
            row.ints.emplace_back(p + "im", c.im - prev[0]);
            row.ints.emplace_back(p + "bbm", c.bbm - prev[1]);
            row.ints.emplace_back(p + "sbm", c.sbm - prev[2]);
        }
    }
    row.reals.emplace_back("share_im",
                           double(now.im - obsSnap_.im) / span);
    row.reals.emplace_back("share_bbm",
                           double(now.bbm - obsSnap_.bbm) / span);
    row.reals.emplace_back("share_sbm",
                           double(now.sbm - obsSnap_.sbm) / span);
    metrics_->append(std::move(row));
    obsSnap_ = now;
}

void
Tol::flushObs()
{
    if (trace_) {
        for (u32 i = 0; i < u32(cores_.size()); ++i) {
            CoreCtx &c = cores_[i];
            if (!c.obsModeOpen)
                continue;
            u64 dur = completedInsts_ - c.obsModeStart;
            if (dur)
                trace_->complete("mode", obsModeName(c.obsMode),
                                 c.obsModeStart, dur, coreTrack(i));
            c.obsModeOpen = false;
        }
    }
    // The trailing *partial* interval: emitted so the row deltas
    // conserve the full retired-instruction count (EOF conservation),
    // not just the closed interval-aligned prefix.
    if (metrics_ && completedInsts_ > obsSnap_.vt)
        obsEmitMetricsRow();
}

void
Tol::scaleThresholds(u32 factor)
{
    darco_assert(factor >= 1, "bad threshold scale");
    bbThreshold_ = std::max(1u, baseBbThreshold_ / factor);
    sbThreshold_ = std::max(2u, baseSbThreshold_ / factor);
}

const Translation *
Tol::translationFor(GAddr pc) const
{
    u32 tid = registry_.lookup(pc);
    return tid == TranslationRegistry::npos ? nullptr
                                            : &registry_.get(tid);
}

u32
Tol::poolIndex(double v)
{
    u64 bits;
    std::memcpy(&bits, &v, 8);
    auto it = fpPoolMap_.find(bits);
    if (it != fpPoolMap_.end())
        return it->second;
    u32 idx = u32(emu_.fpPool().size());
    emu_.fpPool().push_back(v);
    fpPoolMap_.emplace(bits, idx);
    return idx;
}

// ---------------------------------------------------------------------
// Decode & BB discovery
// ---------------------------------------------------------------------

GInst
Tol::fetchGuest(GAddr pc)
{
    auto it = decodeCache_.find(pc);
    if (it != decodeCache_.end())
        return it->second;
    for (;;) {
        try {
            GInst gi = fetchInst(curMem(), pc);
            decodeCache_.emplace(pc, gi);
            return gi;
        } catch (const PageMiss &pm) {
            servicePageMiss(pm.page);
        }
    }
}

BBInfo &
Tol::getBB(GAddr entry)
{
    auto it = bbCache_.find(entry);
    if (it != bbCache_.end())
        return it->second;

    BBInfo bb;
    bb.entry = entry;
    GAddr pc = entry;
    for (u32 n = 0; n < maxBbInsts_; ++n) {
        GInst gi = fetchGuest(pc);
        if (gi.rep) {
            // Complex string instruction: handled by IM (the paper's
            // "corner cases moved up to the software layer").
            bb.endsWithCti = false;
            bb.endPc = pc;
            break;
        }
        bb.elems.push_back(PathElem{gi, pc, BranchDisp::Final});
        if (gi.isCti()) {
            bb.endsWithCti = true;
            break;
        }
        pc += gi.length;
    }
    if (!bb.endsWithCti && bb.endPc == 0)
        bb.endPc = pc; // size-capped straight-line run

    if (bb.elems.empty()) {
        bb.translatable = false; // starts with a REP op
    } else if (bb.elems.size() == 1 &&
               (bb.elems[0].inst.op == GOp::SYSCALL ||
                bb.elems[0].inst.op == GOp::HLT)) {
        bb.translatable = false; // no forward progress possible
    }
    return bbCache_.emplace(entry, std::move(bb)).first->second;
}

// ---------------------------------------------------------------------
// Retirement accounting
// ---------------------------------------------------------------------

void
Tol::onRetire(u32 exit_id, u64 host_insts)
{
    darco_assert(exit_id < registry_.exitCount(), "bad RETIRE id");
    const GlobalExit &ge = registry_.exit(exit_id);
    registry_.touch(ge.trans);
    if (ge.promote) {
        cHostBbm_->inc(host_insts);
        return;
    }
    const Translation &t = registry_.get(ge.trans);
    const ExitDesc &d = t.exits[ge.exitIdx];
    // Eviction-clock blind spot: control now transfers into the chain
    // target inside the code cache; if the target later leaves through
    // a rollback (assert/alias/div/page-miss) instead of its own
    // RETIRE, this entry mark is its only refBit touch.
    if (d.chained) {
        registry_.touch(d.chainedTo);
        cChainTouches_->inc();
    }
    recordBbv(t.entry, d.instsRetired);
    completedInsts_ += d.instsRetired;
    completedBBs_ += d.bbsRetired;
    CoreCtx &c = cur();
    c.insts += d.instsRetired;
    c.bbs += d.bbsRetired;
    if (t.mode == RegionMode::BB) {
        c.bbm += d.instsRetired;
        cGuestBbm_->inc(d.instsRetired);
        cBbBbm_->inc(d.bbsRetired);
        cHostBbm_->inc(host_insts);
    } else {
        c.sbm += d.instsRetired;
        cGuestSbm_->inc(d.instsRetired);
        cBbSbm_->inc(d.bbsRetired);
        cHostSbm_->inc(host_insts);
    }
}

// ---------------------------------------------------------------------
// Page miss / syscall services
// ---------------------------------------------------------------------

void
Tol::servicePageMiss(GAddr page)
{
    stats_.counter("tol.page_requests").inc();
    darco_assert(env_, "page miss without a controller environment: "
                       "co-designed memory must use AllocateZero in "
                       "standalone mode");
    env_->dataRequest(cur_, page, cur().insts);
    darco_assert(curMem().hasPage(page),
                 "controller failed to install requested page");
}

void
Tol::handleSyscall()
{
    stats_.counter("tol.syscalls").inc();
    CoreCtx &c = cur();
    // The syscall instruction is its own dynamic BB; attribute it
    // before the environment rewrites the core's pc.
    recordBbv(c.state.pc, 1);
    bool cont;
    if (env_) {
        cont = env_->syscall(cur_, c.insts);
    } else {
        // Standalone mode: run the core's deterministic OS model.
        GInst gi = fetchGuest(c.state.pc);
        auto eff = c.os.execute(c.state, curMem(), gi.length);
        cont = !eff.exited;
        if (eff.exited && cur_ == 0)
            stats_.counter("tol.exit_code").set(eff.exitCode);
    }
    ++completedInsts_;
    ++completedBBs_;
    ++c.insts;
    ++c.bbs;
    ++c.im;
    cGuestIm_->inc();
    cBbIm_->inc();
    if (!cont)
        c.finished = true;
}

// ---------------------------------------------------------------------
// Interpreter mode
// ---------------------------------------------------------------------

void
Tol::interpretStep()
{
    cost_.chargeInterpDispatch();
    CoreCtx &core = cur();
    GAddr entry = core.state.pc;
    BBInfo &bb = getBB(entry);

    if (bbmEnabled_ && bb.translatable &&
        registry_.lookup(entry) == TranslationRegistry::npos &&
        !(async_ && async_->pendingFor(entry))) {
        u32 c = profiler_.bumpIm(entry);
        if (c >= bbThreshold_) {
            // Async: hand the hot BB to a background translator and
            // keep interpreting it — IM covers the virtual completion
            // window. A full queue falls back to the inline path.
            if (!async_ || !enqueueBBAsync(bb)) {
                translateBB(bb);
                return; // next dispatch enters the fresh translation
            }
        }
    }

    // Interpret one dynamic basic block. Everything retired before
    // the exit point is attributed to `entry` in the BBV (the syscall
    // path attributes its own instruction in handleSyscall).
    u64 bbvBefore = completedInsts_;
    for (;;) {
        GInst gi = fetchGuest(core.state.pc);
        ExecOut out;
        for (;;) {
            try {
                out = execInst(gi, core.state, curMem());
            } catch (const PageMiss &pm) {
                servicePageMiss(pm.page);
                continue;
            }
            if (out.status == ExecStatus::Again) {
                cost_.charge(Overhead::Interp, 4 * out.repIters);
                continue;
            }
            break;
        }
        if (out.repIters)
            cost_.charge(Overhead::Interp, 4 * out.repIters);

        switch (out.status) {
          case ExecStatus::Ok:
          case ExecStatus::CtiTaken:
          case ExecStatus::CtiNotTaken:
            ++completedInsts_;
            ++core.insts;
            ++core.im;
            cGuestIm_->inc();
            cost_.chargeInterp(1);
            if (gi.isCti()) {
                ++completedBBs_;
                ++core.bbs;
                cBbIm_->inc();
                recordBbv(entry, completedInsts_ - bbvBefore);
                return;
            }
            // Hand over early if translated code exists for the next
            // instruction (e.g. the tail after a REP boundary).
            if (registry_.lookup(core.state.pc) !=
                TranslationRegistry::npos) {
                recordBbv(entry, completedInsts_ - bbvBefore);
                return;
            }
            break;

          case ExecStatus::Syscall:
            recordBbv(entry, completedInsts_ - bbvBefore);
            handleSyscall();
            return;

          case ExecStatus::Halt:
            recordBbv(entry, completedInsts_ - bbvBefore);
            core.finished = true;
            return;

          case ExecStatus::Fault:
            recordBbv(entry, completedInsts_ - bbvBefore);
            throw GuestFault{core.state.pc, out.faultMsg};

          default:
            panic("unexpected exec status in IM");
        }
    }
}

// ---------------------------------------------------------------------
// Translation installation, eviction & flush
// ---------------------------------------------------------------------

void
Tol::evictFor(u32 need, u32 pinned_tid)
{
    while (!cache_.hasSpace(need)) {
        u32 victim = registry_.pickVictim(pinned_tid);
        if (victim == TranslationRegistry::npos)
            return; // nothing evictable: the caller falls back to flush
        cost_.chargeEviction(registry_.get(victim).incoming.size());
        // The evicted BB must re-earn promotion from scratch:
        // leaving its IM counter at the threshold would retranslate
        // it on its next interpreted execution and thrash the cache.
        profiler_.resetIm(registry_.get(victim).entry);
        registry_.evict(victim);
    }
}

namespace
{

/**
 * The pure middle of a translation: optimization passes, scheduling,
 * verification preconditions. Touches only the region and its
 * explicit inputs, so it runs identically on the main thread (inline
 * path) and on async translator workers.
 */
void
prepareRegionWork(Region &region, RegionMode mode, bool opt, bool sched,
                  bool spec_ok, u64 &pass_work, u32 &spec_loads)
{
    pass_work = 0;
    spec_loads = 0;
    if (opt) {
        if (mode == RegionMode::BB) {
            pass_work += foldConstants(region) + region.items.size();
            pass_work += eliminateDeadCode(region) + region.items.size();
        } else {
            pass_work += foldConstants(region) + region.items.size();
            pass_work += copyPropagate(region) + region.items.size();
            pass_work +=
                eliminateCommonSubexprs(region) + region.items.size();
            pass_work += eliminateDeadCode(region) + region.items.size();
            pass_work += optimizeMemory(region) + region.items.size();
            pass_work += eliminateDeadCode(region) + region.items.size();
        }
    }
    if (mode == RegionMode::SB && sched) {
        SchedOptions so;
        so.speculateMem = spec_ok;
        spec_loads = scheduleRegion(region, so);
        pass_work += region.items.size() * 2; // DDG + scan
    }
}

} // namespace

u32
Tol::install(Region &region, RegionMode mode, bool profile,
             GAddr prof_bb, u32 pinned_tid)
{
    u64 pass_work = 0;
    u32 spec_loads = 0;
    bool spec_ok = mode == RegionMode::SB && sched_
                       ? specMem_ && !sbFlags_[region.entryPc].noSpec
                       : false;
    prepareRegionWork(region, mode, opt_, sched_, spec_ok, pass_work,
                      spec_loads);

    std::string err = verifyRegion(region);
    darco_assert(err.empty(), "optimized region invalid: ", err);

    Allocation alloc = allocateRegisters(region);
    return installPrepared(region, alloc, mode, profile, prof_bb,
                           pinned_tid, pass_work, spec_loads, false);
}

u32
Tol::installPrepared(Region &region, const Allocation &alloc,
                     RegionMode mode, bool profile, GAddr prof_bb,
                     u32 pinned_tid, u64 pass_work, u32 spec_loads,
                     bool conc)
{
    // BBV overhead dimension: everything this installation charges
    // (codegen, evictions, the translation itself) is software-layer
    // activity of the open profiling interval. Suppressed during
    // checkpoint-restore replay, whose charges are overwritten by the
    // restored cost/stats sections anyway.
    u64 bbvCost0 = bbvOn_ && !inRestore_ ? cost_.totalAll() : 0;
    if (mode == RegionMode::SB && sched_)
        stats_.counter("tol.spec_loads").inc(spec_loads);
    stats_.counter("tol.spills").inc(alloc.spillCount);

    // Two attempts: when the code cache cannot fit the region even
    // after evictions, a full flush renumbers the global exit-id
    // space and we must regenerate. Region-granular eviction keeps
    // the exit-id space intact, so the first attempt normally lands.
    for (int attempt = 0; attempt < 2; ++attempt) {
        CodegenOptions co;
        co.exitIdBase = registry_.exitCount();
        co.profile = profile;
        co.flipCondExits = flipCondExits_;
        co.dropGuard = dropGuard_;
        if (profile) {
            Profiler::Slots pa = profiler_.slots(prof_bb);
            co.execCounterAddr = pa.exec;
            co.promoteExitId = co.exitIdBase + u32(region.exits.size());
            co.sbThreshold = sbThreshold_;
            co.exitCounterAddr.assign(region.exits.size(), -1);
            // Edge counters on the final conditional branch's exits.
            if (region.exits.size() >= 2 &&
                region.exits[region.finalExit].kind ==
                    ExitKind::Direct) {
                u32 taken_idx = u32(region.exits.size()) - 2;
                if (taken_idx != region.finalExit &&
                    region.exits[taken_idx].kind == ExitKind::Direct) {
                    co.exitCounterAddr[taken_idx] = s32(pa.taken);
                    co.exitCounterAddr[region.finalExit] = s32(pa.fall);
                }
            }
        }

        CodegenResult cg = generateCode(
            region, alloc, co, [this](double v) { return poolIndex(v); });

        u32 need = u32(cg.words.size());
        if (!cache_.hasSpace(need) && ccEvict_)
            evictFor(need, pinned_tid);
        if (!cache_.hasSpace(need)) {
            darco_assert(attempt == 0, "region exceeds code cache");
            flushAll();
            continue;
        }

        u32 base = cache_.install(cg.words);
        darco_assert(base != host::CodeCache::npos,
                     "code cache install failed after space check");
        u32 tid = registry_.nextTid();
        Translation t;
        t.entry = region.entryPc;
        t.mode = mode;
        t.hostPc = base;
        t.words = need;
        t.exitIdBase = co.exitIdBase;
        for (std::size_t e = 0; e < region.exits.size(); ++e) {
            const IRExit &x = region.exits[e];
            ExitDesc d;
            d.kind = x.kind;
            d.target = x.target;
            d.instsRetired = x.instsRetired;
            d.bbsRetired = x.bbsRetired;
            if (cg.exitSite[e] != ~0u)
                d.siteWord = base + cg.exitSite[e];
            t.exits.push_back(d);
            registry_.addExit(GlobalExit{tid, u32(e), false, 0});
        }
        if (profile) {
            registry_.addExit(GlobalExit{tid, 0, true, region.entryPc});
        }

        u32 added = registry_.add(std::move(t));
        darco_assert(added == tid, "registry tid drifted");

        // Capture the machine-level half of this region's proof
        // obligation: the frozen pre-chaining words and the exit-id
        // layout codegen committed to. The construction inputs (path,
        // trip, end) are attached by noteInstall at the call site that
        // owns them, after the publish fully completes.
        if (verifyMode_ != VerifyMode::Off) {
            verify::VerifyUnit u;
            u.entry = region.entryPc;
            u.mode = mode;
            u.profile = profile;
            u.fuseFlags = fuseFlags_;
            u.words = cg.words;
            u.exitIdBase = co.exitIdBase;
            if (profile)
                u.promoteExitId = co.promoteExitId;
            u.exits = registry_.get(tid).exits;
            u.fpPool = emu_.fpPool();
            u.tid = tid;
            lastInstall_ = std::move(u);
        }

        u64 guest_insts =
            region.exits[region.finalExit].instsRetired;
        if (mode == RegionMode::BB) {
            if (conc)
                cost_.chargeBBTranslationConc(guest_insts, need);
            else
                cost_.chargeBBTranslation(guest_insts, need);
            stats_.counter("tol.translations_bb").inc();
        } else {
            if (conc)
                cost_.chargeSBTranslationConc(guest_insts, pass_work,
                                              need);
            else
                cost_.chargeSBTranslation(guest_insts, pass_work, need);
            stats_.counter("tol.translations_sb").inc();
        }
        if (bbvOn_ && !inRestore_)
            profiler_.recordBbvOverhead(cost_.totalAll() - bbvCost0);
        if (trace_) {
            const bool bb = mode == RegionMode::BB;
            trace_->complete("trans",
                             bb ? "translate.bb" : "translate.sb",
                             completedInsts_, 0, 0,
                             {{"entry", region.entryPc},
                              {"tid", tid},
                              {"words", need},
                              {"conc", conc ? 1 : 0}});
            // Per-stage work units (the pipeline runs atomically in
            // virtual time; the args carry its measured breakdown).
            trace_->instant("trans", "stage.frontend", 0,
                            {{"tid", tid}, {"guest_insts", guest_insts}});
            trace_->instant("trans", "stage.opt", 0,
                            {{"tid", tid}, {"pass_work", pass_work}});
            trace_->instant("trans", "stage.schedule", 0,
                            {{"tid", tid}, {"spec_loads", spec_loads}});
            trace_->instant("trans", "stage.regalloc", 0,
                            {{"tid", tid}, {"spills", alloc.spillCount}});
        }
        return tid;
    }
    panic("unreachable");
}

void
Tol::flushAll()
{
    cache_.flush();
    registry_.clear();
    emu_.ibtc().clear();
    for (CoreCtx &c : cores_)
        c.inRegionResume = false;
    for (auto &[_, f] : sbFlags_)
        f.residualBb = ~0u; // translation ids are gone
    stats_.counter("cc.flushes").inc();
}

void
Tol::maybeChain(u32 from_tid, u32 exit_idx)
{
    if (!chaining_)
        return;
    ExitDesc &d = registry_.get(from_tid).exits[exit_idx];
    if (d.chained || d.siteWord == ~0u || d.kind != tol::ExitKind::Direct)
        return;
    cost_.chargeChainAttempt();
    u32 to_tid = registry_.lookup(d.target);
    if (to_tid == TranslationRegistry::npos)
        return;
    registry_.chain(from_tid, exit_idx, to_tid);
}

// ---------------------------------------------------------------------
// BB translation (BBM)
// ---------------------------------------------------------------------

void
Tol::translateBB(BBInfo &bb)
{
    std::optional<Frontend::EndSpec> end;
    if (!bb.endsWithCti)
        end = Frontend::EndSpec{tol::ExitKind::Interp, bb.endPc};
    Region region = frontend_.build(bb.entry, RegionMode::BB, bb.elems,
                                    std::nullopt, end);
    install(region, RegionMode::BB, sbmEnabled_, bb.entry);
    noteInstall(bb.elems, std::nullopt, end);
}

// ---------------------------------------------------------------------
// Superblock construction (SBM)
// ---------------------------------------------------------------------

std::vector<PathElem>
Tol::collectSBPath(GAddr start, bool use_asserts,
                   std::optional<TripCheck> &trip,
                   std::optional<Frontend::EndSpec> &end,
                   std::vector<std::pair<GAddr, u8>> &steps)
{
    std::vector<PathElem> path;
    trip.reset();
    end.reset();
    steps.clear();

    // Single-BB counted-loop unrolling: "dec r; jccne back-to-entry".
    BBInfo &first = getBB(start);
    if (unroll_ && first.endsWithCti && first.elems.size() >= 3) {
        const PathElem &last = first.elems.back();
        const PathElem &prev = first.elems[first.elems.size() - 2];
        bool counted = (last.inst.op == GOp::JCC_REL8 ||
                        last.inst.op == GOp::JCC_REL32) &&
                       last.inst.cond == GCond::NE &&
                       last.inst.target(last.pc) == start &&
                       prev.inst.op == GOp::DEC;
        if (counted) {
            u32 tk = profiler_.edgeTaken(start);
            u32 fl = profiler_.edgeFall(start);
            double bias =
                tk + fl ? double(tk) / double(tk + fl) : 0.0;
            if (tk + fl >= minEdgeTotal_ && bias >= biasThreshold_) {
                trip = TripCheck{prev.inst.rd, unrollFactor_};
                for (u32 u = 0; u < unrollFactor_; ++u) {
                    for (std::size_t k = 0; k + 1 < first.elems.size();
                         ++k) {
                        path.push_back(first.elems[k]);
                    }
                    PathElem back = first.elems.back();
                    back.disp = u + 1 < unrollFactor_
                                    ? BranchDisp::ElideTaken
                                    : BranchDisp::Final;
                    steps.emplace_back(start, u8(back.disp));
                    path.push_back(back);
                }
                stats_.counter("tol.unrolled_loops").inc();
                return path;
            }
        }
    }

    GAddr cur = start;
    u32 bbs = 0;
    u32 insts = 0;
    double cum = 1.0;

    for (;;) {
        auto bit = bbCache_.find(cur);
        darco_assert(bit != bbCache_.end(),
                     "SB path walked into an unknown BB");
        BBInfo &bb = bit->second;

        if (!bb.endsWithCti) {
            // REP or size-capped boundary: body then continue in IM.
            for (const PathElem &e : bb.elems)
                path.push_back(e);
            end = Frontend::EndSpec{tol::ExitKind::Interp, bb.endPc};
            steps.emplace_back(cur, stepWholeBB);
            return path;
        }

        for (std::size_t k = 0; k + 1 < bb.elems.size(); ++k)
            path.push_back(bb.elems[k]);
        PathElem last = bb.elems.back();
        ++bbs;
        insts += u32(bb.elems.size());

        const GInst &li = last.inst;
        bool stop = bbs >= maxSbBbs_ || insts >= maxSbInsts_;

        if (!stop &&
            (li.op == GOp::JMP_REL8 || li.op == GOp::JMP_REL32)) {
            GAddr target = li.target(last.pc);
            if (bbCache_.count(target)) {
                last.disp = BranchDisp::ElideTaken;
                steps.emplace_back(cur, u8(last.disp));
                path.push_back(last);
                cur = target;
                continue;
            }
        } else if (!stop && (li.op == GOp::JCC_REL8 ||
                             li.op == GOp::JCC_REL32)) {
            u32 tk = profiler_.edgeTaken(cur);
            u32 fl = profiler_.edgeFall(cur);
            u32 total = tk + fl;
            if (total >= minEdgeTotal_) {
                bool taken_dir = tk >= fl;
                double bias = double(std::max(tk, fl)) / double(total);
                GAddr next = taken_dir ? li.target(last.pc)
                                       : last.pc + li.length;
                if (bias >= biasThreshold_ &&
                    cum * bias >= cumThreshold_ &&
                    bbCache_.count(next)) {
                    cum *= bias;
                    if (use_asserts) {
                        last.disp = taken_dir
                                        ? BranchDisp::AssertTaken
                                        : BranchDisp::AssertNotTaken;
                    } else {
                        last.disp = taken_dir
                                        ? BranchDisp::ExitNotTaken
                                        : BranchDisp::ExitTaken;
                    }
                    steps.emplace_back(cur, u8(last.disp));
                    path.push_back(last);
                    cur = next;
                    continue;
                }
            }
        }

        // Terminate the superblock with this CTI.
        last.disp = BranchDisp::Final;
        steps.emplace_back(cur, u8(last.disp));
        path.push_back(last);
        return path;
    }
}

void
Tol::buildSuperblock(GAddr entry)
{
    if (!sbmEnabled_)
        return;
    SBFlags flags = sbFlags_[entry];
    std::optional<TripCheck> trip;
    std::optional<Frontend::EndSpec> end;
    std::vector<std::pair<GAddr, u8>> steps;
    std::vector<PathElem> path = collectSBPath(
        entry, useAsserts_ && !flags.noAsserts, trip, end, steps);
    if (path.empty())
        return;

    // Record the recipe so checkpoint restore can rebuild this exact
    // region (recreations overwrite it with their new shape).
    SBRecipe rc;
    rc.hasTrip = trip.has_value();
    if (trip) {
        rc.tripReg = trip->reg;
        rc.tripFactor = trip->factor;
    }
    rc.hasEnd = end.has_value();
    if (end) {
        rc.endKind = u8(end->kind);
        rc.endTarget = end->target;
    }
    rc.steps = std::move(steps);
    sbRecipes_[entry] = std::move(rc);

    installSuperblock(entry, path, trip, end);
}

void
Tol::replaySuperblock(GAddr entry)
{
    if (!sbmEnabled_)
        return;
    auto it = sbRecipes_.find(entry);
    if (it == sbRecipes_.end()) {
        // Defensive: every saved SB should carry a recipe (snapshot
        // v2+); fall back to a fresh build from restored counters.
        buildSuperblock(entry);
        return;
    }
    std::optional<TripCheck> trip;
    std::optional<Frontend::EndSpec> end;
    std::vector<PathElem> path = pathFromRecipe(it->second, trip, end);
    if (path.empty())
        return;
    installSuperblock(entry, path, trip, end);
}

std::vector<PathElem>
Tol::pathFromRecipe(const SBRecipe &rc, std::optional<TripCheck> &trip,
                    std::optional<Frontend::EndSpec> &end)
{
    trip.reset();
    end.reset();
    if (rc.hasTrip)
        trip = TripCheck{rc.tripReg, rc.tripFactor};
    if (rc.hasEnd)
        end = Frontend::EndSpec{tol::ExitKind(rc.endKind),
                                rc.endTarget};

    std::vector<PathElem> path;
    for (const auto &[bbe, code] : rc.steps) {
        BBInfo &bb = getBB(bbe);
        if (code == stepWholeBB) {
            for (const PathElem &e : bb.elems)
                path.push_back(e);
        } else {
            darco_assert(!bb.elems.empty() && bb.endsWithCti,
                         "SB recipe step does not match decoded BB");
            for (std::size_t k = 0; k + 1 < bb.elems.size(); ++k)
                path.push_back(bb.elems[k]);
            PathElem last = bb.elems.back();
            last.disp = BranchDisp(code);
            path.push_back(last);
        }
    }
    return path;
}

void
Tol::installSuperblock(GAddr entry, std::vector<PathElem> &path,
                       const std::optional<TripCheck> &trip,
                       const std::optional<Frontend::EndSpec> &end)
{
    Region region =
        frontend_.build(entry, RegionMode::SB, path, trip, end);

    u64 pass_work = 0;
    u32 spec_loads = 0;
    bool spec_ok = false;
    if (sched_)
        spec_ok = specMem_ && !sbFlags_[entry].noSpec;
    prepareRegionWork(region, RegionMode::SB, opt_, sched_, spec_ok,
                      pass_work, spec_loads);
    std::string err = verifyRegion(region);
    darco_assert(err.empty(), "optimized region invalid: ", err);
    Allocation alloc = allocateRegisters(region);

    finishSuperblockInstall(entry, region, alloc, trip, pass_work,
                            spec_loads, path.size(), false);
    noteInstall(path, trip, end);
}

void
Tol::finishSuperblockInstall(GAddr entry, Region &region,
                             const Allocation &alloc,
                             const std::optional<TripCheck> &trip,
                             u64 pass_work, u32 spec_loads,
                             std::size_t path_len, bool conc)
{
    // Replace the BB translation for this entry (paper: "the previous
    // entry in the code cache ... is invalidated"). For unrolled
    // loops the BB translation is kept alive but unmapped: it becomes
    // the paper's "original loop" that follows the unrolled version,
    // executing the residual iterations when the runtime trip check
    // fails (instead of falling back to IM).
    u32 bb_tid = TranslationRegistry::npos;
    u32 prev = registry_.lookup(entry);
    if (prev != TranslationRegistry::npos) {
        // Only a genuine BB translation can serve as the residual
        // "original loop"; a previous superblock (recreation path)
        // must be invalidated as usual.
        if (trip && registry_.get(prev).mode == RegionMode::BB) {
            bb_tid = prev;
            registry_.unmapEntry(prev);
            sbFlags_[entry].residualBb = bb_tid;
        } else {
            registry_.invalidate(prev);
        }
    }
    // Recreations reuse the BB retained by the first promotion.
    if (trip && bb_tid == TranslationRegistry::npos) {
        u32 kept = sbFlags_[entry].residualBb;
        if (kept != ~0u && registry_.valid(kept))
            bb_tid = kept;
    }

    u32 sb_tid =
        installPrepared(region, alloc, RegionMode::SB, false, entry,
                        bb_tid, pass_work, spec_loads, conc);

    // The install may have fallen back to a full flush, which kills
    // the retained BB (eviction cannot: it is pinned). Re-read the
    // flag, which flushAll resets.
    if (trip && sbFlags_[entry].residualBb == ~0u)
        bb_tid = TranslationRegistry::npos;

    if (trip && bb_tid != TranslationRegistry::npos) {
        // Pre-chain the trip-check exit (exit #0) into the retained
        // BB translation.
        Translation &sb = registry_.get(sb_tid);
        darco_assert(!sb.exits.empty() &&
                         sb.exits[0].kind == tol::ExitKind::Interp &&
                         sb.exits[0].target == entry,
                     "unrolled SB exit layout unexpected");
        if (sb.exits[0].siteWord != ~0u) {
            registry_.chain(sb_tid, 0, bb_tid);
            stats_.counter("tol.residual_chains").inc();
        }
    }
    stats_.histogram("tol.sb_path_len", {2, 4, 8, 16, 32, 64, 128})
        .sample(path_len);
}

// ---------------------------------------------------------------------
// Asynchronous translation pipeline
// ---------------------------------------------------------------------

u64
Tol::asyncLatency(u64 est_cost) const
{
    // est_cost modeled translator host insts, retired at
    // `rate * vthreads` per guest instruction the main core retires.
    u64 div = asyncRate_ * asyncVthreads_;
    return std::max<u64>(1, (est_cost + div - 1) / div);
}

void
Tol::prepareJob(TranslationJob &job) const
{
    // Worker-thread context: only the job and immutable configuration
    // may be touched. A job-local Frontend keeps build state private.
    Frontend fe(FrontendOptions{fuseFlags_});
    RegionMode mode = job.kind == TranslationJob::Kind::BB
                          ? RegionMode::BB
                          : RegionMode::SB;
    job.region = fe.build(job.entry, mode, job.path, job.trip, job.end);
    prepareRegionWork(job.region, mode, opt_, sched_, job.specOk,
                      job.passWork, job.specLoads);
    job.verifyError = verifyRegion(job.region);
    if (job.verifyError.empty())
        job.alloc = allocateRegisters(job.region);
}

bool
Tol::enqueueBBAsync(const BBInfo &bb)
{
    if (async_->full()) {
        stats_.counter("tol.async.queue_full").inc();
        stats_.counter("tol.async.sync_fallbacks").inc();
        if (trace_)
            trace_->instant("async", "async.queue_full", 0,
                            {{"entry", bb.entry}});
        return false;
    }
    auto job = std::make_unique<TranslationJob>();
    job->kind = TranslationJob::Kind::BB;
    job->entry = bb.entry;
    job->path = bb.elems;
    if (!bb.endsWithCti)
        job->end = Frontend::EndSpec{tol::ExitKind::Interp, bb.endPc};
    job->profile = sbmEnabled_;
    job->estCost = cost_.estBBCost(bb.elems.size());
    job->enqueuedAt = completedInsts_;
    job->completesAt = completedInsts_ + asyncLatency(job->estCost);
    const u64 eAt = job->enqueuedAt, cAt = job->completesAt;
    const u64 est = job->estCost;
    async_->enqueue(std::move(job));
    stats_.counter("tol.async.enqueued_bb").inc();
    if (trace_) {
        // Emitted at the (deterministic) enqueue point: the virtual
        // completion is already fixed, and the track is a pure
        // function of the enqueue sequence — never of host threads.
        u16 track = u16(1 + (obsAsyncSeq_++ % asyncVthreads_));
        trace_->complete("async", "async.bb", eAt, cAt - eAt, track,
                         {{"entry", bb.entry}, {"est_cost", est}});
    }
    return true;
}

bool
Tol::enqueueSBAsync(GAddr entry)
{
    if (!sbmEnabled_)
        return true; // nothing to build
    // Evict + re-promote can re-fire the promotion for an entry whose
    // superblock is already in flight; one build is enough.
    if (async_->pendingFor(entry))
        return true;
    if (async_->full()) {
        stats_.counter("tol.async.queue_full").inc();
        stats_.counter("tol.async.sync_fallbacks").inc();
        if (trace_)
            trace_->instant("async", "async.queue_full", 0,
                            {{"entry", entry}});
        return false;
    }
    // The path is collected *now*, at the deterministic promotion
    // point, from the same profile state the synchronous build would
    // see; only the install moves into the future.
    SBFlags flags = sbFlags_[entry];
    std::optional<TripCheck> trip;
    std::optional<Frontend::EndSpec> end;
    std::vector<std::pair<GAddr, u8>> steps;
    std::vector<PathElem> path = collectSBPath(
        entry, useAsserts_ && !flags.noAsserts, trip, end, steps);
    if (path.empty())
        return true;

    auto job = std::make_unique<TranslationJob>();
    job->kind = TranslationJob::Kind::SB;
    job->entry = entry;
    job->path = std::move(path);
    job->trip = trip;
    job->end = end;
    job->specOk = sched_ && specMem_ && !flags.noSpec;
    job->recipe.hasTrip = trip.has_value();
    if (trip) {
        job->recipe.tripReg = trip->reg;
        job->recipe.tripFactor = trip->factor;
    }
    job->recipe.hasEnd = end.has_value();
    if (end) {
        job->recipe.endKind = u8(end->kind);
        job->recipe.endTarget = end->target;
    }
    job->recipe.steps = std::move(steps);
    job->estCost = cost_.estSBCost(job->path.size());
    job->enqueuedAt = completedInsts_;
    job->completesAt = completedInsts_ + asyncLatency(job->estCost);
    const u64 eAt = job->enqueuedAt, cAt = job->completesAt;
    const u64 est = job->estCost;
    async_->enqueue(std::move(job));
    stats_.counter("tol.async.enqueued_sb").inc();
    if (trace_) {
        u16 track = u16(1 + (obsAsyncSeq_++ % asyncVthreads_));
        trace_->complete("async", "async.sb", eAt, cAt - eAt, track,
                         {{"entry", entry}, {"est_cost", est}});
    }
    return true;
}

void
Tol::pumpAsyncPublishes()
{
    auto due = async_->takeDue(completedInsts_);
    for (auto &job : due)
        publishJob(*job);
}

void
Tol::publishJob(TranslationJob &job)
{
    darco_assert(job.verifyError.empty(),
                 "async-prepared region invalid: ", job.verifyError);
    if (job.kind == TranslationJob::Kind::BB) {
        // The entry may have gained a translation inside the window
        // (inline fallback under backpressure); never shadow it.
        if (registry_.lookup(job.entry) != TranslationRegistry::npos) {
            stats_.counter("tol.async.dropped_stale").inc();
            if (trace_)
                trace_->instant("async", "async.dropped_stale", 0,
                                {{"entry", job.entry}});
            return;
        }
        installPrepared(job.region, job.alloc, RegionMode::BB,
                        job.profile, job.entry,
                        TranslationRegistry::npos, job.passWork,
                        job.specLoads, true);
        noteInstall(job.path, std::nullopt, job.end);
        stats_.counter("tol.async.published_bb").inc();
        if (trace_)
            trace_->instant("async", "async.publish", 0,
                            {{"entry", job.entry}, {"sb", 0}});
    } else {
        // A recreation in the window would have installed a fresh SB;
        // do not resurrect the older build over it.
        u32 prev = registry_.lookup(job.entry);
        if (prev != TranslationRegistry::npos &&
            registry_.get(prev).mode == RegionMode::SB) {
            stats_.counter("tol.async.dropped_stale").inc();
            if (trace_)
                trace_->instant("async", "async.dropped_stale", 0,
                                {{"entry", job.entry}});
            return;
        }
        sbRecipes_[job.entry] = job.recipe;
        finishSuperblockInstall(job.entry, job.region, job.alloc,
                                job.trip, job.passWork, job.specLoads,
                                job.path.size(), true);
        noteInstall(job.path, job.trip, job.end);
        stats_.counter("tol.async.published_sb").inc();
        if (trace_)
            trace_->instant("async", "async.publish", 0,
                            {{"entry", job.entry}, {"sb", 1}});
    }
}

// ---------------------------------------------------------------------
// Translated-code execution
// ---------------------------------------------------------------------

void
Tol::executeTranslation(u32 tid, u32 host_pc, bool resuming)
{
    CoreCtx &core = cur();
    if (!resuming) {
        emu_.loadGuestState(core.state);
        cost_.chargePrologue();
        emu_.resetMark();
    }
    core.inRegionResume = false;
    u32 pc = host_pc;
    (void)tid;

    for (;;) {
        ExitInfo exit = emu_.run(pc, hostChunk_);
        switch (exit.kind) {
          case HExit::Budget:
            if (completedInsts_ >= runTarget_) {
                core.inRegionResume = true;
                core.resumeHostPc = emu_.ctx().pc;
                return;
            }
            pc = emu_.ctx().pc;
            continue;

          case HExit::Exit: {
            darco_assert(exit.exitId < registry_.exitCount(),
                         "EXITB id out of range");
            const GlobalExit ge = registry_.exit(exit.exitId);
            if (ge.promote) {
                emu_.storeGuestState(core.state);
                core.state.pc = ge.promoteTarget;
                // Async: queue the SB build (path collected now, at
                // the deterministic promotion point) and keep running
                // the stale BB translation until the publish; a full
                // queue falls back to the inline build.
                if (!async_ || !enqueueSBAsync(ge.promoteTarget))
                    buildSuperblock(ge.promoteTarget);
                return;
            }
            const ExitDesc &d =
                registry_.get(ge.trans).exits[ge.exitIdx];
            emu_.storeGuestState(core.state);
            core.state.pc = d.target;
            switch (d.kind) {
              case tol::ExitKind::Direct:
                maybeChain(ge.trans, ge.exitIdx);
                return;
              case tol::ExitKind::Syscall:
                handleSyscall();
                return;
              case tol::ExitKind::Halt:
                core.finished = true;
                return;
              case tol::ExitKind::Interp:
                // Normal dispatch: the continuation (e.g. the tail of
                // a size-capped straight-line run) gets its own
                // translation; only untranslatable code (REP string
                // ops) actually lands in IM. Exception: an unchained
                // trip-check exit targets its own entry — re-entering
                // the region would spin, so IM must absorb one BB.
                if (d.target == registry_.get(ge.trans).entry)
                    core.forceInterp = true;
                return;
              default:
                panic("unexpected exit kind from EXITB");
            }
          }

          case HExit::IbtcMiss: {
            emu_.storeGuestState(core.state);
            core.state.pc = exit.guestTarget;
            cost_.chargeLookup();
            u32 target = registry_.lookup(core.state.pc);
            if (target != TranslationRegistry::npos) {
                emu_.ibtc().insert(core.state.pc,
                                   registry_.get(target).hostPc);
                registry_.touch(target);
                stats_.counter("tol.ibtc_fills").inc();
            }
            return;
          }

          case HExit::AssertFail:
          case HExit::AliasFail: {
            u32 rtid = regionAt(emu_.ctx().pc);
            // The region executed (hot) but never reaches its RETIRE:
            // keep the eviction clock honest.
            registry_.touch(rtid);
            Translation &t = registry_.get(rtid);
            emu_.storeGuestState(core.state);
            core.state.pc = t.entry;
            // Wasted speculative work still ran in this mode.
            (t.mode == RegionMode::BB ? cHostBbm_ : cHostSbm_)
                ->inc(emu_.instsSinceMark());
            emu_.resetMark();

            bool is_assert = exit.kind == HExit::AssertFail;
            stats_
                .counter(is_assert ? "tol.assert_fails"
                                   : "tol.alias_fails")
                .inc();
            if (trace_)
                trace_->instant("rollback",
                                is_assert ? "rollback.assert"
                                          : "rollback.alias",
                                0, {{"entry", t.entry}});
            u32 fails = is_assert ? ++t.assertFails : ++t.aliasFails;
            u32 limit = is_assert ? maxAssertFails_ : maxAliasFails_;
            if (fails > limit && t.mode == RegionMode::SB) {
                if (is_assert) {
                    sbFlags_[t.entry].noAsserts = true;
                    stats_.counter("tol.sb_recreated_noassert").inc();
                } else {
                    sbFlags_[t.entry].noSpec = true;
                    stats_.counter("tol.sb_recreated_nospec").inc();
                }
                GAddr entry = t.entry;
                registry_.invalidate(rtid);
                buildSuperblock(entry);
            }
            // IM is the safety net for forward progress (paper V-B1).
            core.forceInterp = true;
            return;
          }

          case HExit::DivFault: {
            u32 rtid = regionAt(emu_.ctx().pc);
            registry_.touch(rtid);
            const Translation &t = registry_.get(rtid);
            emu_.storeGuestState(core.state);
            core.state.pc = t.entry;
            (t.mode == RegionMode::BB ? cHostBbm_ : cHostSbm_)
                ->inc(emu_.instsSinceMark());
            emu_.resetMark();
            if (trace_)
                trace_->instant("rollback", "rollback.div", 0,
                                {{"entry", t.entry}});
            // Re-execute in IM for a precise architectural fault.
            core.forceInterp = true;
            return;
          }

          case HExit::PageMiss: {
            u32 rtid = regionAt(emu_.ctx().pc);
            registry_.touch(rtid);
            const Translation &t = registry_.get(rtid);
            emu_.storeGuestState(core.state);
            core.state.pc = t.entry;
            (t.mode == RegionMode::BB ? cHostBbm_ : cHostSbm_)
                ->inc(emu_.instsSinceMark());
            emu_.resetMark();
            if (trace_)
                trace_->instant("rollback", "rollback.page_miss", 0,
                                {{"entry", t.entry},
                                 {"page", exit.missPage}});
            servicePageMiss(exit.missPage);
            return; // dispatch retries the translation
          }
        }
    }
}

u32
Tol::regionAt(u32 host_pc) const
{
    u32 tid = registry_.atHostBase(host_pc);
    darco_assert(tid != TranslationRegistry::npos,
                 "rollback landed outside any region base");
    return tid;
}

// ---------------------------------------------------------------------
// Main dispatch loop (Fig. 3)
// ---------------------------------------------------------------------

Tol::RunResult
Tol::run(u64 max_guest_insts)
{
    if (!initCharged_) {
        cost_.chargeInit();
        initCharged_ = true;
    }
    runTarget_ = max_guest_insts == ~0ull
                     ? ~0ull
                     : completedInsts_ + max_guest_insts;

    while (!finished()) {
        if (completedInsts_ >= runTarget_)
            return RunResult::Budget;
        // Publish async translations that completed (in virtual time)
        // by now. Not while a budget pause left a region mid-flight:
        // a publish can evict the very region about to be resumed,
        // and an uninterrupted run would only publish after the
        // region finished anyway.
        if (async_ && !cur().inRegionResume)
            pumpAsyncPublishes();
        if (metrics_ && completedInsts_ >= metricsNext_) {
            // Rows close at the first dispatch at/after the interval
            // boundary — a deterministic virtual-time point.
            obsEmitMetricsRow();
            u64 iv = metrics_->interval();
            metricsNext_ = (completedInsts_ / iv + 1) * iv;
        }
        cost_.chargeDispatch();

        // A budget pause inside a translated region pins the next
        // dispatch to the paused core: the shared host emulator still
        // holds its mid-region register context, which a core switch
        // would clobber. Only after the region completes does the
        // interleaver run again.
        if (cur().inRegionResume) {
            executeTranslation(0, cur().resumeHostPc, true);
            continue;
        }
        // The interleaver draw: a core switch only ever happens here,
        // at a region/interpreter-step boundary, where the only live
        // per-core state is the architectural CpuState.
        pickNextCore();
        CoreCtx &core = cur();
        if (!core.forceInterp) {
            cost_.chargeLookup();
            u32 tid = registry_.lookup(core.state.pc);
            if (tid != TranslationRegistry::npos) {
                registry_.touch(tid);
                if (trace_)
                    obsNoteMode(registry_.get(tid).mode == RegionMode::BB
                                    ? 1
                                    : 2);
                executeTranslation(tid, registry_.get(tid).hostPc,
                                   false);
                continue;
            }
        }
        core.forceInterp = false;
        if (trace_)
            obsNoteMode(0);
        interpretStep();
    }
    return RunResult::Finished;
}

// ---------------------------------------------------------------------
// Checkpointing
// ---------------------------------------------------------------------

void
Tol::quiesce()
{
    if (cur().inRegionResume) {
        runTarget_ = ~0ull;
        executeTranslation(0, cur().resumeHostPc, true);
        darco_assert(!cur().inRegionResume,
                     "quiesce left mid-region resume state");
    }
    // Wall-clock quiesce of the translator pool: wait until every
    // in-flight job is prepared. Publishes nothing — the jobs stay
    // pending with their virtual completion points intact, and save()
    // serializes them so the restored run publishes identically.
    if (async_) {
        async_->drain();
        // Verification ordering: proofs may only observe *fully
        // published* regions, and they must observe every region that
        // is virtually complete — the dispatch loop pumps publishes at
        // the top of each iteration, so a run that finishes (or
        // budget-pauses) can strand due-but-unpublished jobs which
        // would otherwise escape the install-time proof pass. Publish
        // them now, on the main thread, after the drain above
        // guaranteed their outputs are complete. Off the verify path
        // the legacy publish-nothing contract (and its checkpoint
        // timing) is preserved.
        if (verifyMode_ != VerifyMode::Off)
            pumpAsyncPublishes();
    }
}

// ---------------------------------------------------------------------
// Translation verification (tol.verify)
// ---------------------------------------------------------------------

void
Tol::noteInstall(const std::vector<PathElem> &path,
                 const std::optional<TripCheck> &trip,
                 const std::optional<Frontend::EndSpec> &end)
{
    if (verifyMode_ == VerifyMode::Off || !lastInstall_)
        return;
    verify::VerifyUnit u = std::move(*lastInstall_);
    lastInstall_.reset();
    u.path = path;
    u.trip = trip;
    u.end = end;
    if (verifyMode_ == VerifyMode::Final) {
        verifyUnits_.push_back(std::move(u));
        return;
    }
    verify::VerifyResult r;
    try {
        r = verify::verifyUnit(u, verifyOpts_);
    } catch (const std::exception &e) {
        r.verdict = verify::Verdict::Unknown;
        r.entry = u.entry;
        r.mode = u.mode;
        r.tid = u.tid;
        r.detail = std::string("verifier exception: ") + e.what();
    }
    if (trace_)
        trace_->instant("verify", "verify.proof", 0,
                        {{"entry", u.entry},
                         {"verdict", u64(r.verdict)}});
    verifyReport_.add(std::move(r));
}

void
Tol::verifyFinal()
{
    if (verifyMode_ == VerifyMode::Off)
        return;
    quiesce();
    std::vector<verify::VerifyUnit> units;
    units.swap(verifyUnits_);
    for (const verify::VerifyUnit &u : units) {
        verify::VerifyResult r;
        try {
            r = verify::verifyUnit(u, verifyOpts_);
        } catch (const std::exception &e) {
            r.verdict = verify::Verdict::Unknown;
            r.entry = u.entry;
            r.mode = u.mode;
            r.tid = u.tid;
            r.detail = std::string("verifier exception: ") + e.what();
        }
        if (trace_)
            trace_->instant("verify", "verify.proof", 0,
                            {{"entry", u.entry},
                             {"verdict", u64(r.verdict)}});
        verifyReport_.add(std::move(r));
    }
}

void
Tol::save(snapshot::Serializer &s) const
{
    darco_assert(!cur().inRegionResume,
                 "Tol::save requires a quiescent runtime "
                 "(call quiesce() first)");

    s.w64(completedInsts_);
    s.w64(completedBBs_);
    s.wbool(initCharged_);
    s.w32(bbThreshold_);
    s.w32(sbThreshold_);

    // Per-core guest contexts (snapshot v5) plus the interleaver
    // state, so a restored multi-core run resumes the exact same
    // dispatch schedule.
    s.w32(u32(cores_.size()));
    s.w32(cur_);
    s.w64(ivRng_);
    for (const CoreCtx &c : cores_) {
        s.wbool(c.finished);
        s.wbool(c.forceInterp);
        s.w64(c.insts);
        s.w64(c.bbs);
        s.w64(c.im);
        s.w64(c.bbm);
        s.w64(c.sbm);
        c.state.save(s);
    }
    profiler_.save(s);

    // The discovered-BB set: superblock replay walks paths through
    // bbCache_, so restore must re-decode these before retranslating.
    std::vector<GAddr> bbs;
    bbs.reserve(bbCache_.size());
    for (const auto &[entry, _] : bbCache_)
        bbs.push_back(entry);
    std::sort(bbs.begin(), bbs.end());
    s.w64(bbs.size());
    for (GAddr e : bbs)
        s.w32(e);

    // Superblock recreation flags (residual tids are re-established
    // by the replay itself).
    std::vector<std::pair<GAddr, SBFlags>> flags(sbFlags_.begin(),
                                                 sbFlags_.end());
    std::sort(flags.begin(), flags.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    s.w64(flags.size());
    for (auto &[entry, f] : flags) {
        s.w32(entry);
        s.wbool(f.noAsserts);
        s.wbool(f.noSpec);
    }

    // Superblock recipes: restore rebuilds each SB from its recorded
    // path instead of re-deriving it from (end-state) edge counters,
    // keeping restored translations structurally identical.
    std::vector<std::pair<GAddr, const SBRecipe *>> recipes;
    recipes.reserve(sbRecipes_.size());
    for (const auto &[entry, rc] : sbRecipes_)
        recipes.emplace_back(entry, &rc);
    std::sort(recipes.begin(), recipes.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    s.w64(recipes.size());
    for (const auto &[entry, rc] : recipes) {
        s.w32(entry);
        s.wbool(rc->hasTrip);
        s.w8(rc->tripReg);
        s.w32(rc->tripFactor);
        s.wbool(rc->hasEnd);
        s.w8(rc->endKind);
        s.w32(rc->endTarget);
        s.w64(rc->steps.size());
        for (const auto &[bbe, code] : rc->steps) {
            s.w32(bbe);
            s.w8(code);
        }
    }

    // Live translations in installation (tid) order: enough metadata
    // to retranslate each region from the restored memory image.
    std::vector<u32> live;
    for (u32 tid = 0; tid < registry_.totalCount(); ++tid) {
        if (registry_.valid(tid))
            live.push_back(tid);
    }
    s.w64(live.size());
    for (u32 tid : live) {
        const Translation &t = registry_.get(tid);
        s.w32(t.entry);
        s.w8(u8(t.mode));
        s.wbool(registry_.lookup(t.entry) == tid);
        s.w32(t.assertFails);
        s.w32(t.aliasFails);
    }

    // In-flight async translations (snapshot v4): inputs plus the
    // preserved virtual completion point, in seq order, so the
    // restored run re-prepares identical artifacts and publishes them
    // at identical virtual times. BB jobs re-derive their path from
    // the (already saved) discovered-BB set; SB jobs carry their
    // recipe. Empty when the async pipeline is off.
    std::vector<const TranslationJob *> jobs;
    if (async_) {
        async_->forEachPending(
            [&](const TranslationJob &j) { jobs.push_back(&j); });
    }
    s.w64(jobs.size());
    for (const TranslationJob *j : jobs) {
        s.w8(u8(j->kind));
        s.w32(j->entry);
        s.w64(j->enqueuedAt);
        s.w64(j->completesAt);
        if (j->kind == TranslationJob::Kind::SB) {
            const SBRecipe &rc = j->recipe;
            s.wbool(rc.hasTrip);
            s.w8(rc.tripReg);
            s.w32(rc.tripFactor);
            s.wbool(rc.hasEnd);
            s.w8(rc.endKind);
            s.w32(rc.endTarget);
            s.w64(rc.steps.size());
            for (const auto &[bbe, code] : rc.steps) {
                s.w32(bbe);
                s.w8(code);
            }
        }
    }

    cost_.save(s);
}

void
Tol::restore(snapshot::Deserializer &d)
{
    // Exception-safe: a SnapshotError mid-restore must not leave the
    // replay suppression stuck on (it would silently disable BBV
    // overhead recording for the rest of the runtime's life).
    struct RestoreGuard
    {
        bool &flag;
        explicit RestoreGuard(bool &f) : flag(f) { flag = true; }
        ~RestoreGuard() { flag = false; }
    } guard(inRestore_);

    completedInsts_ = d.r64();
    completedBBs_ = d.r64();
    initCharged_ = d.rbool();
    bbThreshold_ = d.r32();
    sbThreshold_ = d.r32();

    u32 ncores = d.r32();
    if (ncores != u32(cores_.size())) {
        // The controller's exec-relevant config comparison refuses a
        // core-count mismatch before we get here; this guards direct
        // Tol::restore users and corrupt images.
        throw snapshot::SnapshotError(
            "checkpoint has " + std::to_string(ncores) +
            " cores, config has " + std::to_string(cores_.size()));
    }
    cur_ = d.r32();
    ivRng_ = d.r64();
    for (CoreCtx &c : cores_) {
        c.finished = d.rbool();
        c.forceInterp = d.rbool();
        c.insts = d.r64();
        c.bbs = d.r64();
        c.im = d.r64();
        c.bbm = d.r64();
        c.sbm = d.r64();
        c.state.restore(d);
    }
    if (cores_.size() > 1)
        emu_.setMemory(*cores_[cur_].mem);
    profiler_.restore(d);

    u64 nbbs = d.r64();
    for (u64 i = 0; i < nbbs; ++i)
        getBB(d.r32());

    u64 nflags = d.r64();
    for (u64 i = 0; i < nflags; ++i) {
        GAddr entry = d.r32();
        SBFlags f;
        f.noAsserts = d.rbool();
        f.noSpec = d.rbool();
        sbFlags_[entry] = f;
    }

    u64 nrecipes = d.r64();
    for (u64 i = 0; i < nrecipes; ++i) {
        GAddr entry = d.r32();
        SBRecipe rc;
        rc.hasTrip = d.rbool();
        rc.tripReg = d.r8();
        rc.tripFactor = d.r32();
        rc.hasEnd = d.rbool();
        rc.endKind = d.r8();
        rc.endTarget = d.r32();
        u64 nsteps = d.r64();
        rc.steps.reserve(nsteps);
        for (u64 k = 0; k < nsteps; ++k) {
            GAddr bbe = d.r32();
            rc.steps.emplace_back(bbe, d.r8());
        }
        sbRecipes_[entry] = std::move(rc);
    }

    // Re-materialize host code: replay installation in tid order.
    // The BB/SB builders run against the restored memory image and
    // profile counters, so regenerated code is deterministic; the
    // translation/cost charges this produces are overwritten by the
    // cost and stats sections restored afterwards.
    u64 ntrans = d.r64();
    for (u64 i = 0; i < ntrans; ++i) {
        GAddr entry = d.r32();
        RegionMode mode = RegionMode(d.r8());
        (void)d.rbool(); // mapped flag: re-established by the replay
        u32 assert_fails = d.r32();
        u32 alias_fails = d.r32();
        if (mode == RegionMode::BB) {
            BBInfo &bb = getBB(entry);
            if (bb.translatable &&
                registry_.lookup(entry) == TranslationRegistry::npos)
                translateBB(bb);
        } else {
            replaySuperblock(entry);
            u32 tid = registry_.lookup(entry);
            if (tid != TranslationRegistry::npos &&
                registry_.get(tid).mode == RegionMode::SB) {
                registry_.get(tid).assertFails = assert_fails;
                registry_.get(tid).aliasFails = alias_fails;
            }
        }
    }

    // Re-enqueue in-flight async translations in original seq order;
    // preserved completion points keep the publish schedule (and its
    // tie-breaking) bit-identical to the uninterrupted run.
    u64 npend = d.r64();
    if (npend != 0 && !async_) {
        throw snapshot::SnapshotError(
            "checkpoint holds in-flight async translations but the "
            "async pipeline is disabled");
    }
    for (u64 i = 0; i < npend; ++i) {
        auto kind = TranslationJob::Kind(d.r8());
        auto job = std::make_unique<TranslationJob>();
        job->kind = kind;
        job->entry = d.r32();
        job->enqueuedAt = d.r64();
        job->completesAt = d.r64();
        if (kind == TranslationJob::Kind::BB) {
            BBInfo &bb = getBB(job->entry);
            job->path = bb.elems;
            if (!bb.endsWithCti)
                job->end =
                    Frontend::EndSpec{tol::ExitKind::Interp, bb.endPc};
            job->profile = sbmEnabled_;
            job->estCost = cost_.estBBCost(bb.elems.size());
        } else {
            SBRecipe rc;
            rc.hasTrip = d.rbool();
            rc.tripReg = d.r8();
            rc.tripFactor = d.r32();
            rc.hasEnd = d.rbool();
            rc.endKind = d.r8();
            rc.endTarget = d.r32();
            u64 nsteps = d.r64();
            rc.steps.reserve(nsteps);
            for (u64 k = 0; k < nsteps; ++k) {
                GAddr bbe = d.r32();
                rc.steps.emplace_back(bbe, d.r8());
            }
            std::optional<TripCheck> trip;
            std::optional<Frontend::EndSpec> end;
            job->path = pathFromRecipe(rc, trip, end);
            job->trip = trip;
            job->end = end;
            job->specOk =
                sched_ && specMem_ && !sbFlags_[job->entry].noSpec;
            job->estCost = cost_.estSBCost(job->path.size());
            job->recipe = std::move(rc);
        }
        async_->enqueue(std::move(job));
    }

    cost_.restore(d);
}

} // namespace darco::tol
