/**
 * @file
 * TOL-overhead cost model.
 *
 * The paper measures TOL overhead *in host instructions* grouped into
 * seven categories (Fig. 7): Interpreter, BB Translator, SB
 * Translator, Prologue, Chaining, Code-Cache Lookup, Others. Our TOL
 * logic is C++, so its host-instruction footprint is charged by this
 * model, proportional to the real work the components perform (guest
 * instructions interpreted, IR items processed per pass, host words
 * emitted, ...). Constants are configurable for calibration sweeps
 * (see the DESIGN.md substitution table).
 *
 * When a trace sink is attached, charged instructions are synthesized
 * into the dynamic stream with PCs in the TOL code region, so the
 * timing/power models see TOL/application interference (paper
 * Section III, "Interaction between TOL and application").
 */

#ifndef DARCO_TOL_COST_MODEL_HH
#define DARCO_TOL_COST_MODEL_HH

#include <array>

#include "common/config.hh"
#include "common/stats.hh"
#include "host/trace.hh"

namespace darco::snapshot
{
class Serializer;
class Deserializer;
} // namespace darco::snapshot

namespace darco::tol
{

/**
 * The paper's seven overhead categories (Fig. 7), plus the
 * concurrent-translator category introduced by the async pipeline:
 * translation work that has been moved off the guest critical path
 * onto a background translator thread. ConcTranslator charges are
 * *not* synthesized into the core's dynamic stream — the timing
 * model overlaps them (TraceSink::recordConcurrent) — and they are
 * excluded from totalCritical().
 */
enum class Overhead : u8
{
    Interp,
    BBTranslator,
    SBTranslator,
    Prologue,
    Chaining,
    Lookup,
    Other,
    ConcTranslator,
    NumCats,
};

/** Number of categories that sit on the guest critical path. */
constexpr unsigned numCriticalOverheads = unsigned(Overhead::ConcTranslator);

const char *overheadName(Overhead c);

/**
 * Charge accumulator + synthetic stream generator.
 *
 * Config keys (all host-instruction counts):
 *  cost.interp_inst (default 20)     per guest instruction interpreted
 *  cost.interp_dispatch (9)         per IM entry
 *  cost.bb_fixed (180)               per BB translation
 *  cost.bb_guest_inst (70)           per guest instruction translated
 *  cost.sb_fixed (700)               per SB construction
 *  cost.sb_work_unit (9)            per IR item processed per pass
 *  cost.prologue (14)                per TOL->code-cache transition
 *  cost.chain (30)                   per chaining attempt
 *  cost.lookup (15)                  per code-cache lookup
 *  cost.dispatch (9)                 per dispatch-loop iteration
 *  cost.init (40000)                 one-time TOL initialization
 *  cost.evict (150)                  per code-cache region eviction
 *  cost.unchain (24)                 per incoming chain site restored
 */
class CostModel
{
  public:
    CostModel(const Config &cfg, StatGroup &stats);

    void charge(Overhead cat, u64 host_insts);

    // Convenience entry points used by the TOL runtime.
    void chargeInterp(u64 guest_insts);
    void chargeInterpDispatch();
    void chargeBBTranslation(u64 guest_insts, u64 host_words);
    void chargeSBTranslation(u64 guest_insts, u64 pass_work,
                             u64 host_words);
    /** Same work, charged to the concurrent-translator category
     *  (async pipeline: off the guest critical path). */
    void chargeBBTranslationConc(u64 guest_insts, u64 host_words);
    void chargeSBTranslationConc(u64 guest_insts, u64 pass_work,
                                 u64 host_words);
    /**
     * Enqueue-time latency estimates for the async completion
     * schedule. Host-word terms are excluded: the emitted word count
     * is unknown until codegen, and the completion point must be a
     * pure function of enqueue-time inputs.
     */
    u64 estBBCost(u64 guest_insts) const;
    u64 estSBCost(u64 path_guest_insts) const;
    void chargePrologue();
    void chargeChainAttempt();
    void chargeLookup();
    void chargeDispatch();
    void chargeInit();
    /** Evicting one region: victim selection + unchaining its
     *  incoming sites. */
    void chargeEviction(u64 unchained_sites);

    u64 total(Overhead cat) const { return totals_[unsigned(cat)]; }
    u64 totalAll() const;
    /** All categories except ConcTranslator: overhead that actually
     *  delays the guest. */
    u64 totalCritical() const;

    /** Checkpoint hooks: the per-category accumulated totals. */
    void save(snapshot::Serializer &s) const;
    void restore(snapshot::Deserializer &d);

    /** Synthesize charged instructions into the timing stream. */
    void setTraceSink(host::TraceSink *sink) { sink_ = sink; }

  private:
    void synthesize(u64 n);

    StatGroup &stats_;
    std::array<u64, unsigned(Overhead::NumCats)> totals_{};
    host::TraceSink *sink_ = nullptr;
    u32 synthPc_ = 0;

    u64 cInterpInst_, cInterpDispatch_;
    u64 cBbFixed_, cBbGuestInst_;
    u64 cSbFixed_, cSbWorkUnit_;
    u64 cPrologue_, cChain_, cLookup_, cDispatch_, cInit_;
    u64 cWordEmit_;
    u64 cEvict_, cUnchain_;
};

} // namespace darco::tol

#endif // DARCO_TOL_COST_MODEL_HH
