#include "tol/registry.hh"

#include <sstream>

#include "common/logging.hh"
#include "host/hisa.hh"
#include "obs/tracer.hh"

namespace darco::tol
{

using host::HInst;
using host::HOp;

TranslationRegistry::TranslationRegistry(host::CodeCache &cache,
                                         host::IbtcTable &ibtc,
                                         StatGroup &stats)
    : cache_(cache), ibtc_(ibtc), stats_(stats)
{
}

u32
TranslationRegistry::add(Translation t)
{
    std::unique_lock<std::shared_mutex> g(mu_);
    u32 tid = u32(trans_.size());
    entryMap_[t.entry] = tid;
    hostPcMap_[t.hostPc] = tid;
    t.clockIdx = u32(clock_.size());
    clock_.push_back(tid);
    trans_.push_back(std::move(t));
    ++live_;
    if (trace_) {
        const Translation &added = trans_[tid];
        trace_->instant("cc", "cc.install", 0,
                        {{"tid", tid},
                         {"entry", added.entry},
                         {"words", added.words},
                         {"sb", added.mode == RegionMode::SB ? 1 : 0}});
    }
    return tid;
}

void
TranslationRegistry::unmapEntry(u32 tid)
{
    std::unique_lock<std::shared_mutex> g(mu_);
    const Translation &t = trans_[tid];
    auto it = entryMap_.find(t.entry);
    if (it != entryMap_.end() && it->second == tid)
        entryMap_.erase(it);
}

u32
TranslationRegistry::lookup(GAddr entry) const
{
    std::shared_lock<std::shared_mutex> g(mu_);
    auto it = entryMap_.find(entry);
    return it == entryMap_.end() ? npos : it->second;
}

u32
TranslationRegistry::atHostBase(u32 host_pc) const
{
    std::shared_lock<std::shared_mutex> g(mu_);
    auto it = hostPcMap_.find(host_pc);
    return it == hostPcMap_.end() ? npos : it->second;
}

u32
TranslationRegistry::addExit(const GlobalExit &ge)
{
    std::unique_lock<std::shared_mutex> g(mu_);
    exits_.push_back(ge);
    return u32(exits_.size()) - 1;
}

void
TranslationRegistry::chain(u32 from_tid, u32 exit_idx, u32 to_tid)
{
    std::unique_lock<std::shared_mutex> g(mu_);
    Translation &from = trans_[from_tid];
    Translation &to = trans_[to_tid];
    ExitDesc &d = from.exits[exit_idx];
    darco_assert(d.siteWord != ~0u && !d.chained,
                 "chain on an unpatchable or already-chained exit");
    HInst j;
    j.op = HOp::J;
    j.imm = s32(to.hostPc);
    cache_.setWord(d.siteWord, host::hencode(j));
    d.chained = true;
    d.chainedTo = to_tid;
    to.incoming.push_back(Translation::InChain{
        d.siteWord, from.exitIdBase + exit_idx, from_tid, exit_idx});
    stats_.counter("tol.chains").inc();
    if (trace_)
        trace_->instant("cc", "cc.chain", 0,
                        {{"from", from_tid}, {"to", to_tid}});
}

u32
TranslationRegistry::invalidate(u32 tid)
{
    std::unique_lock<std::shared_mutex> g(mu_);
    return invalidateLocked(tid);
}

u32
TranslationRegistry::invalidateLocked(u32 tid)
{
    Translation &t = trans_[tid];
    if (!t.valid)
        return 0;
    t.valid = false;
    --live_;

    auto it = entryMap_.find(t.entry);
    if (it != entryMap_.end() && it->second == tid)
        entryMap_.erase(it);
    hostPcMap_.erase(t.hostPc);

    // Unchain everyone who jumps into this region: restore their
    // EXITB words so control returns to TOL instead of running into
    // freed (and possibly reused) cache words.
    u32 unchained = 0;
    for (const Translation::InChain &c : t.incoming) {
        HInst restore;
        restore.op = HOp::EXITB;
        restore.imm = s32(c.exitId);
        cache_.setWord(c.site, host::hencode(restore));
        ExitDesc &src = trans_[c.fromTrans].exits[c.fromExit];
        src.chained = false;
        src.chainedTo = npos;
        ++unchained;
    }
    t.incoming.clear();

    // Detach this region's outgoing chains: its sites are about to be
    // freed, so targets must not try to restore them later.
    for (std::size_t e = 0; e < t.exits.size(); ++e) {
        ExitDesc &d = t.exits[e];
        if (!d.chained)
            continue;
        if (d.chainedTo != npos && trans_[d.chainedTo].valid) {
            auto &inc = trans_[d.chainedTo].incoming;
            for (std::size_t k = 0; k < inc.size(); ++k) {
                if (inc[k].fromTrans == tid && inc[k].fromExit == e) {
                    inc.erase(inc.begin() + k);
                    break;
                }
            }
        }
        d.chained = false;
        d.chainedTo = npos;
    }

    ibtc_.invalidate(t.entry);
    ibtc_.invalidateHostRange(t.hostPc, t.words);
    if (reclaim_)
        cache_.release(t.hostPc, t.words);

    // Swap-remove from the live clock list.
    u32 last = clock_.back();
    clock_[t.clockIdx] = last;
    trans_[last].clockIdx = t.clockIdx;
    clock_.pop_back();
    t.clockIdx = ~0u;
    if (hand_ >= clock_.size())
        hand_ = 0;

    // Dead translations keep their slot (tids are indices into
    // trans_) but drop their bulk: a long evict-policy run never
    // flushes, so per-generation garbage must stay small. The
    // GlobalExit rows stay too — EXITB ids are baked into emitted
    // code, so the exit-id space is append-only within a generation.
    t.exits.clear();
    t.exits.shrink_to_fit();

    stats_.counter("tol.invalidations").inc();
    stats_.counter("tol.unchains").inc(unchained);
    if (trace_)
        trace_->instant("cc", "cc.invalidate", 0,
                        {{"tid", tid}, {"unchained", unchained}});
    return unchained;
}

u32
TranslationRegistry::evict(u32 tid)
{
    std::unique_lock<std::shared_mutex> g(mu_);
    u32 words = trans_[tid].words;
    u32 unchained = invalidateLocked(tid);
    stats_.counter("cc.evictions").inc();
    stats_.counter("cc.evict_unchains").inc(unchained);
    stats_.counter("cc.bytes_reclaimed").inc(u64(words) * 4);
    if (trace_)
        trace_->instant("cc", "cc.evict", 0,
                        {{"tid", tid},
                         {"words", words},
                         {"unchained", unchained}});
    return words;
}

void
TranslationRegistry::clear()
{
    std::unique_lock<std::shared_mutex> g(mu_);
    trans_.clear();
    entryMap_.clear();
    hostPcMap_.clear();
    exits_.clear();
    clock_.clear();
    live_ = 0;
    hand_ = 0;
    if (trace_)
        trace_->instant("cc", "cc.flush");
}

u32
TranslationRegistry::pickVictim(u32 pinned0, u32 pinned1)
{
    std::unique_lock<std::shared_mutex> g(mu_);
    u32 n = u32(clock_.size());
    if (n == 0)
        return npos;
    // Two full sweeps: the first pass clears reference bits, the
    // second finds a cold translation.
    for (u32 scanned = 0; scanned < 2 * n; ++scanned) {
        u32 tid = clock_[hand_];
        hand_ = (hand_ + 1) % n;
        Translation &t = trans_[tid];
        if (tid == pinned0 || tid == pinned1)
            continue;
        if (t.refBit) {
            t.refBit = false;
            continue;
        }
        return tid;
    }
    // Everything kept getting touched between sweeps (can't happen
    // within one install) or everything is pinned: take any live
    // unpinned translation rather than fail.
    for (u32 tid : clock_) {
        if (tid != pinned0 && tid != pinned1)
            return tid;
    }
    return npos;
}

std::string
TranslationRegistry::checkInvariants() const
{
    std::shared_lock<std::shared_mutex> g(mu_);
    std::ostringstream os;
    for (u32 tid = 0; tid < trans_.size(); ++tid) {
        const Translation &t = trans_[tid];
        if (!t.valid) {
            // A dead translation must be fully detached.
            if (!t.incoming.empty()) {
                os << "dead tid " << tid << " still has incoming chains";
                return os.str();
            }
            continue;
        }
        for (std::size_t e = 0; e < t.exits.size(); ++e) {
            const ExitDesc &d = t.exits[e];
            if (!d.chained)
                continue;
            if (d.chainedTo == npos || d.chainedTo >= trans_.size() ||
                !trans_[d.chainedTo].valid) {
                os << "tid " << tid << " exit " << e
                   << " chained into a dead translation";
                return os.str();
            }
            // The patched word must be a J to the live target's base.
            const HInst w = host::hdecode(cache_.word(d.siteWord));
            if (w.op != HOp::J ||
                u32(w.imm) != trans_[d.chainedTo].hostPc) {
                os << "tid " << tid << " exit " << e
                   << " chain site does not jump at its target";
                return os.str();
            }
        }
        for (const Translation::InChain &c : t.incoming) {
            if (!trans_[c.fromTrans].valid) {
                os << "tid " << tid
                   << " has an incoming chain from dead tid "
                   << c.fromTrans;
                return os.str();
            }
            const ExitDesc &src = trans_[c.fromTrans].exits[c.fromExit];
            if (!src.chained || src.chainedTo != tid) {
                os << "tid " << tid
                   << " incoming record disagrees with source exit";
                return os.str();
            }
        }
    }
    return "";
}

} // namespace darco::tol
