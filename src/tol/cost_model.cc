#include "tol/cost_model.hh"

#include "common/schema.hh"
#include "snapshot/io.hh"

namespace darco::tol
{

namespace
{

/** Base of the synthetic TOL code region fed to the timing model. */
constexpr u32 tolCodeBase = 0xf000'0000u;
/** TOL's own data region (tables, IR buffers). */
constexpr u32 tolDataBase = 0xf400'0000u;

} // namespace

const char *
overheadName(Overhead c)
{
    switch (c) {
      case Overhead::Interp: return "interpreter";
      case Overhead::BBTranslator: return "bb_translator";
      case Overhead::SBTranslator: return "sb_translator";
      case Overhead::Prologue: return "prologue";
      case Overhead::Chaining: return "chaining";
      case Overhead::Lookup: return "code_cache_lookup";
      case Overhead::Other: return "others";
      case Overhead::ConcTranslator: return "concurrent_translator";
      default: return "?";
    }
}

CostModel::CostModel(const Config &cfg, StatGroup &stats)
    : stats_(stats),
      cInterpInst_(conf::getUint(cfg, "cost.interp_inst")),
      cInterpDispatch_(conf::getUint(cfg, "cost.interp_dispatch")),
      cBbFixed_(conf::getUint(cfg, "cost.bb_fixed")),
      cBbGuestInst_(conf::getUint(cfg, "cost.bb_guest_inst")),
      cSbFixed_(conf::getUint(cfg, "cost.sb_fixed")),
      cSbWorkUnit_(conf::getUint(cfg, "cost.sb_work_unit")),
      cPrologue_(conf::getUint(cfg, "cost.prologue")),
      cChain_(conf::getUint(cfg, "cost.chain")),
      cLookup_(conf::getUint(cfg, "cost.lookup")),
      cDispatch_(conf::getUint(cfg, "cost.dispatch")),
      cInit_(conf::getUint(cfg, "cost.init")),
      cWordEmit_(conf::getUint(cfg, "cost.word_emit")),
      cEvict_(conf::getUint(cfg, "cost.evict")),
      cUnchain_(conf::getUint(cfg, "cost.unchain"))
{
}

void
CostModel::charge(Overhead cat, u64 n)
{
    totals_[unsigned(cat)] += n;
    stats_.counter(std::string("tol.ov_") + overheadName(cat)).inc(n);
    if (!sink_)
        return;
    // Critical-path charges join the core's dynamic stream; work on a
    // concurrent translator thread is reported out-of-band so the
    // timing model can overlap it with guest execution.
    if (cat == Overhead::ConcTranslator)
        sink_->recordConcurrent(n);
    else
        synthesize(n);
}

void
CostModel::synthesize(u64 n)
{
    // Deterministic representative mix: ~25% loads, 10% stores,
    // 12% branches, the rest integer ALU. PCs walk a 64 KiB TOL code
    // footprint; data accesses walk a 256 KiB table region.
    for (u64 k = 0; k < n; ++k) {
        host::InstRecord rec;
        rec.pc = tolCodeBase + (synthPc_ & 0xffff);
        u32 sel = synthPc_ % 100;
        synthPc_ += 4;
        rec.nextPc = tolCodeBase + (synthPc_ & 0xffff);
        if (sel < 25) {
            rec.cls = host::InstClass::Load;
            rec.memAddr = tolDataBase + ((synthPc_ * 37) & 0x3ffff);
            rec.memSize = 4;
        } else if (sel < 35) {
            rec.cls = host::InstClass::Store;
            rec.memAddr = tolDataBase + ((synthPc_ * 53) & 0x3ffff);
            rec.memSize = 4;
        } else if (sel < 47) {
            rec.cls = host::InstClass::Branch;
            rec.taken = (sel & 1) != 0;
        } else {
            rec.cls = host::InstClass::IntAlu;
        }
        sink_->record(rec);
    }
}

void
CostModel::chargeInterp(u64 guest_insts)
{
    charge(Overhead::Interp, cInterpInst_ * guest_insts);
}

void
CostModel::chargeInterpDispatch()
{
    charge(Overhead::Interp, cInterpDispatch_);
}

void
CostModel::chargeBBTranslation(u64 guest_insts, u64 host_words)
{
    charge(Overhead::BBTranslator,
           cBbFixed_ + cBbGuestInst_ * guest_insts +
               cWordEmit_ * host_words);
}

void
CostModel::chargeSBTranslation(u64 guest_insts, u64 pass_work,
                               u64 host_words)
{
    charge(Overhead::SBTranslator,
           cSbFixed_ + cBbGuestInst_ * guest_insts +
               cSbWorkUnit_ * pass_work + cWordEmit_ * host_words);
}

void
CostModel::chargeBBTranslationConc(u64 guest_insts, u64 host_words)
{
    charge(Overhead::ConcTranslator,
           cBbFixed_ + cBbGuestInst_ * guest_insts +
               cWordEmit_ * host_words);
}

void
CostModel::chargeSBTranslationConc(u64 guest_insts, u64 pass_work,
                                   u64 host_words)
{
    charge(Overhead::ConcTranslator,
           cSbFixed_ + cBbGuestInst_ * guest_insts +
               cSbWorkUnit_ * pass_work + cWordEmit_ * host_words);
}

u64
CostModel::estBBCost(u64 guest_insts) const
{
    return cBbFixed_ + cBbGuestInst_ * guest_insts;
}

u64
CostModel::estSBCost(u64 path_guest_insts) const
{
    return cSbFixed_ + cBbGuestInst_ * path_guest_insts;
}

void
CostModel::chargePrologue()
{
    charge(Overhead::Prologue, cPrologue_);
}

void
CostModel::chargeChainAttempt()
{
    charge(Overhead::Chaining, cChain_);
}

void
CostModel::chargeLookup()
{
    charge(Overhead::Lookup, cLookup_);
}

void
CostModel::chargeDispatch()
{
    charge(Overhead::Other, cDispatch_);
}

void
CostModel::chargeInit()
{
    charge(Overhead::Other, cInit_);
}

void
CostModel::chargeEviction(u64 unchained_sites)
{
    charge(Overhead::Other, cEvict_ + cUnchain_ * unchained_sites);
}

u64
CostModel::totalAll() const
{
    u64 t = 0;
    for (u64 v : totals_)
        t += v;
    return t;
}

u64
CostModel::totalCritical() const
{
    return totalAll() - totals_[unsigned(Overhead::ConcTranslator)];
}

void
CostModel::save(snapshot::Serializer &s) const
{
    s.w64(totals_.size());
    for (u64 v : totals_)
        s.w64(v);
    s.w32(synthPc_);
}

void
CostModel::restore(snapshot::Deserializer &d)
{
    u64 n = d.r64();
    if (n != totals_.size())
        throw snapshot::SnapshotError("overhead category count changed");
    for (u64 &v : totals_)
        v = d.r64();
    synthPc_ = d.r32();
}

} // namespace darco::tol
