/**
 * @file
 * Data Dependence Graph construction and list scheduling (paper
 * Section V-B3: "The DDG is then fed to the instruction scheduler
 * that uses a conventional list scheduling algorithm").
 *
 * Nodes are region items. Edges:
 *  - value dependences (def -> use) with producer latency,
 *  - memory ordering: store->load (breakable if only may-alias;
 *    breaking hoists the load and marks it speculative -> LWS/FLDS),
 *    store->store and load->store (never broken: stores execute in
 *    order, and stores never hoist above prior loads),
 *  - control ordering around side exits: stores and other side exits
 *    may not cross a CondExit in either direction; asserts may hoist
 *    above a CondExit but must not sink below one.
 */

#ifndef DARCO_TOL_DDG_HH
#define DARCO_TOL_DDG_HH

#include <vector>

#include "tol/ir.hh"

namespace darco::tol
{

/** One dependence edge. */
struct DDGEdge
{
    u32 to;
    u8 latency;
    bool breakable; //!< may-alias store->load, removable by speculation
};

/** The dependence graph over region items. */
struct DDG
{
    std::vector<std::vector<DDGEdge>> succs;
    std::vector<u32> predCount;      //!< unbreakable preds
    std::vector<u32> breakablePreds; //!< breakable preds
    std::vector<u32> priority;       //!< critical-path height
    u64 edgeCount = 0;
};

/** Producer latency model used for scheduling priorities. */
u8 irLatency(IROp op);

/** Build the DDG for a region. */
DDG buildDDG(const Region &r);

/** Scheduler knobs. */
struct SchedOptions
{
    bool enable = true;
    bool speculateMem = true; //!< allow breaking store->load edges
};

/**
 * List-schedule the region in place. Returns the number of loads
 * converted to speculative loads.
 */
u32 scheduleRegion(Region &r, const SchedOptions &opts);

} // namespace darco::tol

#endif // DARCO_TOL_DDG_HH
