/**
 * @file
 * Host code generation: allocated IR regions -> HISA words.
 *
 * Region layout:
 *
 *   CKPT
 *   [BBM: execution-counter increment + promotion-threshold check]
 *   body (scheduled items; CondExits become branches to stubs)
 *   final exit stub
 *   side exit stubs...
 *
 * Every exit stub materializes the region's live-out guest state into
 * the fixed guest-mapped host registers (a parallel-copy problem: the
 * destinations are registers that other copies may still read),
 * optionally bumps a BBM edge-profiling counter, COMMITs the
 * speculative region, and leaves through a chainable EXITB or an IBTC
 * probe.
 */

#ifndef DARCO_TOL_CODEGEN_HH
#define DARCO_TOL_CODEGEN_HH

#include <functional>
#include <vector>

#include "host/hisa.hh"
#include "tol/ir.hh"
#include "tol/regalloc.hh"

namespace darco::tol
{

/** Code generation parameters for one region. */
struct CodegenOptions
{
    u32 exitIdBase = 0;    //!< global EXITB id of exits[0]
    // BBM profiling instrumentation:
    bool profile = false;
    u32 execCounterAddr = 0; //!< local-mem addr of the exec counter
    u32 promoteExitId = 0;   //!< EXITB id fired at the SBM threshold
    u32 sbThreshold = 0;
    /** Per-exit edge-counter local-mem address (-1 = none). */
    std::vector<s32> exitCounterAddr;
    /**
     * Fault injection (fuzzer self-test): emit every conditional exit
     * with the opposite branch sense, so the region commits down the
     * wrong path. Driven by the hidden `debug.flip_cond_exits` config
     * key; must never be set outside tests.
     */
    bool flipCondExits = false;
    /**
     * Fault injection (verifier self-test): silently skip every
     * speculation-guard assert, so a mispredicted branch disposition
     * commits instead of rolling back. Driven by the hidden
     * `debug.drop_guard` config key; must never be set outside tests.
     */
    bool dropGuard = false;
};

/** Generated region code. */
struct CodegenResult
{
    std::vector<u32> words;
    /** Per exit: word offset of its EXITB within the region
     *  (~0u when the exit leaves through IBTC or has no site). */
    std::vector<u32> exitSite;
    u32 specLoads = 0;
};

/**
 * Generate host code for an allocated region.
 * @param pool_index interns an FP constant, returning its FLDC index.
 */
CodegenResult generateCode(const Region &r, const Allocation &alloc,
                           const CodegenOptions &opts,
                           const std::function<u32(double)> &pool_index);

} // namespace darco::tol

#endif // DARCO_TOL_CODEGEN_HH
