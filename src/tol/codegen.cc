#include "tol/codegen.hh"

#include <algorithm>

#include "common/logging.hh"

namespace darco::tol
{

using namespace host;
using host::regmap::scratch0; // r13
using host::regmap::scratch1; // r14

namespace
{

constexpr u8 fpScratch0 = 30;
constexpr u8 fpScratch1 = 31;

/** Host register for a guest location. */
u8
mappedReg(u16 loc)
{
    if (loc < 8)
        return u8(regmap::guestGprBase + loc);
    if (loc < 12)
        return u8(regmap::flagZ + (loc - 8));
    return u8(regmap::guestFprBase + (loc - 12));
}

struct Gen
{
    const Region &r;
    const Allocation &alloc;
    const CodegenOptions &opts;
    const std::function<u32(double)> &poolIndex;
    HAsm a;
    CodegenResult res;

    Gen(const Region &reg, const Allocation &al,
        const CodegenOptions &op, const std::function<u32(double)> &pi)
        : r(reg), alloc(al), opts(op), poolIndex(pi)
    {
    }

    const ValueLoc &
    loc(s32 v) const
    {
        darco_assert(v >= 0 && v < s32(alloc.val.size()),
                     "codegen: bad value id");
        return alloc.val[v];
    }

    /** Integer source: returns the register holding value v. */
    u8
    srcInt(s32 v, u8 scratch)
    {
        const ValueLoc &l = loc(v);
        if (l.kind == ValueLoc::Kind::Reg)
            return l.reg;
        darco_assert(l.kind == ValueLoc::Kind::Spill,
                     "use of unallocated value v", v);
        a.emit(HOp::LWL, scratch, 0, 0, s32(l.slot * 8));
        return scratch;
    }

    u8
    srcFp(s32 v, u8 scratch)
    {
        const ValueLoc &l = loc(v);
        if (l.kind == ValueLoc::Kind::Reg)
            return l.reg;
        darco_assert(l.kind == ValueLoc::Kind::Spill);
        a.emit(HOp::FLDL, scratch, 0, 0, s32(l.slot * 8));
        return scratch;
    }

    /** Destination register (scratch when spilled or dead). */
    u8
    dstInt(s32 v) const
    {
        if (v < 0)
            return scratch0;
        const ValueLoc &l = alloc.val[v];
        return l.kind == ValueLoc::Kind::Reg ? l.reg : scratch0;
    }

    u8
    dstFp(s32 v) const
    {
        if (v < 0)
            return fpScratch0;
        const ValueLoc &l = alloc.val[v];
        return l.kind == ValueLoc::Kind::Reg ? l.reg : fpScratch0;
    }

    /** Store a spilled destination back to its slot. */
    void
    finishDst(s32 v, bool fp)
    {
        if (v < 0)
            return;
        const ValueLoc &l = alloc.val[v];
        if (l.kind != ValueLoc::Kind::Spill)
            return;
        if (fp)
            a.emit(HOp::FSTL, 0, 0, fpScratch0, s32(l.slot * 8));
        else
            a.emit(HOp::SWL, 0, 0, scratch0, s32(l.slot * 8));
    }

    /** Is value v's location entirely dead (no register, no slot)? */
    bool
    deadDst(s32 v) const
    {
        return v >= 0 && alloc.val[v].kind == ValueLoc::Kind::None;
    }

    // --- instruction emission ------------------------------------------

    void
    emitIntAlu(const IRInst &i)
    {
        struct Mapping
        {
            HOp rr;
            HOp ri;       //!< NOP = no immediate form
            bool immSigned;
        };
        auto m = [&]() -> Mapping {
            switch (i.op) {
              case IROp::Add: return {HOp::ADD, HOp::ADDI, true};
              case IROp::Sub: return {HOp::SUB, HOp::NOP, true};
              case IROp::Mul: return {HOp::MUL, HOp::NOP, true};
              case IROp::MulH: return {HOp::MULH, HOp::NOP, true};
              case IROp::Div: return {HOp::DIV, HOp::NOP, true};
              case IROp::Rem: return {HOp::REM, HOp::NOP, true};
              case IROp::And: return {HOp::AND, HOp::ANDI, false};
              case IROp::Or: return {HOp::OR, HOp::ORI, false};
              case IROp::Xor: return {HOp::XOR, HOp::XORI, false};
              case IROp::Sll: return {HOp::SLL, HOp::SLLI, false};
              case IROp::Srl: return {HOp::SRL, HOp::SRLI, false};
              case IROp::Sra: return {HOp::SRA, HOp::SRAI, false};
              case IROp::Slt: return {HOp::SLT, HOp::SLTI, true};
              case IROp::Sltu: return {HOp::SLTU, HOp::NOP, true};
              case IROp::Seq: return {HOp::SEQ, HOp::SEQI, false};
              case IROp::Sne: return {HOp::SNE, HOp::SNEI, false};
              case IROp::Sge: return {HOp::SGE, HOp::NOP, true};
              case IROp::Sgeu: return {HOp::SGEU, HOp::NOP, true};
              default: panic("not an int ALU op");
            }
        }();

        // Dead pure results are skipped, but Div/Rem must execute for
        // their guest-visible fault even when the quotient is unused.
        const bool faulting = i.op == IROp::Div || i.op == IROp::Rem;
        if (deadDst(i.dst) && !faulting)
            return;
        u8 rd = dstInt(i.dst);
        u8 rs1 = srcInt(i.src1, scratch0);

        if (i.src2Imm) {
            const bool shift = i.op == IROp::Sll || i.op == IROp::Srl ||
                               i.op == IROp::Sra;
            s32 imm = shift ? (i.imm & 31) : i.imm;
            bool immOk =
                m.ri != HOp::NOP &&
                (m.immSigned ? (imm >= -8192 && imm <= 8191)
                             : (imm >= 0 && imm < 16384));
            // SUB with an immediate becomes ADDI of the negation.
            if (i.op == IROp::Sub && -i.imm >= -8192 && -i.imm <= 8191) {
                a.emit(HOp::ADDI, rd, rs1, 0, -i.imm);
                finishDst(i.dst, false);
                return;
            }
            if (immOk) {
                a.emit(m.ri, rd, rs1, 0, imm);
                finishDst(i.dst, false);
                return;
            }
            a.loadImm(scratch1, u32(i.imm));
            a.emit(m.rr, rd, rs1, scratch1);
            finishDst(i.dst, false);
            return;
        }
        u8 rs2 = srcInt(i.src2, scratch1);
        a.emit(m.rr, rd, rs1, rs2);
        finishDst(i.dst, false);
    }

    void
    emitInst(const IRInst &i)
    {
        switch (i.op) {
          case IROp::LiveIn:
            // Homed in the mapped register: no code.
            return;

          case IROp::Movi:
            if (deadDst(i.dst))
                return;
            a.loadImm(dstInt(i.dst), u32(i.imm));
            finishDst(i.dst, false);
            return;

          case IROp::Mov:
            if (deadDst(i.dst))
                return;
            a.emit(HOp::ADDI, dstInt(i.dst), srcInt(i.src1, scratch0),
                   0, 0);
            finishDst(i.dst, false);
            return;

          case IROp::FConst:
            if (deadDst(i.dst))
                return;
            a.emit(HOp::FLDC, dstFp(i.dst), 0, 0,
                   s32(poolIndex(i.fimm)));
            finishDst(i.dst, true);
            return;

          case IROp::Assert:
            if (opts.dropGuard)
                return; // injected bug: guard silently dropped
            a.emit(i.expectNonZero ? HOp::ASSERTNZ : HOp::ASSERTZ, 0,
                   srcInt(i.src1, scratch0), 0, s32(i.assertId));
            return;

          // Loads.
          case IROp::Ld8u:
          case IROp::Ld8s:
          case IROp::Ld16u:
          case IROp::Ld16s:
          case IROp::Ld32: {
            // Dead loads were removed by DCE; an unallocated dst here
            // means "execute for the page-touch only", use scratch.
            HOp op = i.op == IROp::Ld8u    ? HOp::LBU
                     : i.op == IROp::Ld8s  ? HOp::LB
                     : i.op == IROp::Ld16u ? HOp::LHU
                     : i.op == IROp::Ld16s ? HOp::LH
                                           : HOp::LW;
            if (i.speculative) {
                darco_assert(i.op == IROp::Ld32,
                             "only word loads speculate");
                op = HOp::LWS;
                ++res.specLoads;
            }
            u8 rs1 = srcInt(i.src1, scratch0);
            a.emit(op, dstInt(i.dst), rs1, 0, i.imm);
            finishDst(i.dst, false);
            return;
          }
          case IROp::FLd: {
            u8 rs1 = srcInt(i.src1, scratch0);
            a.emit(i.speculative ? HOp::FLDS : HOp::FLD, dstFp(i.dst),
                   rs1, 0, i.imm);
            if (i.speculative)
                ++res.specLoads;
            finishDst(i.dst, true);
            return;
          }

          // Stores.
          case IROp::St8:
          case IROp::St16:
          case IROp::St32: {
            // speculative == a load was hoisted across this store:
            // emit the alias-checking variant.
            HOp op;
            if (i.speculative) {
                op = i.op == IROp::St8    ? HOp::SBC
                     : i.op == IROp::St16 ? HOp::SHC
                                          : HOp::SWC;
            } else {
                op = i.op == IROp::St8    ? HOp::SB
                     : i.op == IROp::St16 ? HOp::SH
                                          : HOp::SW;
            }
            u8 rs1 = srcInt(i.src1, scratch0);
            u8 rs2 = srcInt(i.src2, scratch1);
            a.emit(op, 0, rs1, rs2, i.imm);
            return;
          }
          case IROp::FSt: {
            u8 rs1 = srcInt(i.src1, scratch0);
            u8 rs2 = srcFp(i.src2, fpScratch0);
            a.emit(i.speculative ? HOp::FSTC : HOp::FST, 0, rs1, rs2,
                   i.imm);
            return;
          }

          // FP.
          case IROp::FAdd:
          case IROp::FSub:
          case IROp::FMul:
          case IROp::FDiv: {
            if (deadDst(i.dst))
                return;
            HOp op = i.op == IROp::FAdd   ? HOp::FADD
                     : i.op == IROp::FSub ? HOp::FSUB
                     : i.op == IROp::FMul ? HOp::FMUL
                                          : HOp::FDIV;
            u8 rs1 = srcFp(i.src1, fpScratch0);
            u8 rs2 = srcFp(i.src2, fpScratch1);
            a.emit(op, dstFp(i.dst), rs1, rs2);
            finishDst(i.dst, true);
            return;
          }
          case IROp::FSqrt:
          case IROp::FAbs:
          case IROp::FNeg:
          case IROp::FMov:
          case IROp::FRnd: {
            if (deadDst(i.dst))
                return;
            HOp op = i.op == IROp::FSqrt  ? HOp::FSQRT
                     : i.op == IROp::FAbs ? HOp::FABS
                     : i.op == IROp::FNeg ? HOp::FNEG
                     : i.op == IROp::FMov ? HOp::FMOV
                                          : HOp::FRND;
            a.emit(op, dstFp(i.dst), srcFp(i.src1, fpScratch0), 0);
            finishDst(i.dst, true);
            return;
          }
          case IROp::FCvtWD:
            if (deadDst(i.dst))
                return;
            a.emit(HOp::FCVTWD, dstFp(i.dst), srcInt(i.src1, scratch0),
                   0);
            finishDst(i.dst, true);
            return;
          case IROp::FCvtZW:
            if (deadDst(i.dst))
                return;
            a.emit(HOp::FCVTZW, dstInt(i.dst), srcFp(i.src1, fpScratch0),
                   0);
            finishDst(i.dst, false);
            return;
          case IROp::FEq:
          case IROp::FLt:
          case IROp::FLe: {
            if (deadDst(i.dst))
                return;
            HOp op = i.op == IROp::FEq   ? HOp::FEQ
                     : i.op == IROp::FLt ? HOp::FLT
                                         : HOp::FLE;
            u8 rs1 = srcFp(i.src1, fpScratch0);
            u8 rs2 = srcFp(i.src2, fpScratch1);
            a.emit(op, dstInt(i.dst), rs1, rs2);
            finishDst(i.dst, false);
            return;
          }

          default:
            emitIntAlu(i);
            return;
        }
    }

    // --- profiling helpers ------------------------------------------------

    void
    emitCounterBump(u32 addr)
    {
        a.loadImm(scratch0, addr);
        a.emit(HOp::LWL, scratch1, scratch0, 0, 0);
        a.emit(HOp::ADDI, scratch1, scratch1, 0, 1);
        a.emit(HOp::SWL, 0, scratch0, scratch1, 0);
    }

    // --- exit stubs -------------------------------------------------------

    /** Emit one exit stub; returns the word offset of its EXITB. */
    u32
    emitStub(u32 exit_idx)
    {
        const IRExit &x = r.exits[exit_idx];

        if (opts.profile && exit_idx < opts.exitCounterAddr.size() &&
            opts.exitCounterAddr[exit_idx] >= 0) {
            emitCounterBump(u32(opts.exitCounterAddr[exit_idx]));
        }

        // Stage the indirect target first: r13 is never a copy
        // destination or source below.
        if (x.kind == ExitKind::Indirect) {
            const ValueLoc &l = loc(x.targetVal);
            if (l.kind == ValueLoc::Kind::Reg)
                a.emit(HOp::ADDI, scratch0, l.reg, 0, 0);
            else
                a.emit(HOp::LWL, scratch0, 0, 0, s32(l.slot * 8));
        }

        emitParallelCopies(x.liveOuts);
        a.emit(HOp::COMMIT);
        a.emit(HOp::RETIRE, 0, 0, 0, s32(opts.exitIdBase + exit_idx));

        if (x.kind == ExitKind::Indirect) {
            a.emit(HOp::IBTC, 0, scratch0, 0);
            return ~0u;
        }
        u32 site = a.size();
        a.emit(HOp::EXITB, 0, 0, 0, s32(opts.exitIdBase + exit_idx));
        return site;
    }

    /**
     * Materialize live-outs into the guest-mapped registers. The
     * destinations are mapped registers that other pending copies may
     * still read (LiveIn sources), so this is a parallel copy:
     * cycles are broken through r14/f31.
     */
    void
    emitParallelCopies(const std::vector<std::pair<u16, s32>> &outs)
    {
        struct Copy
        {
            u8 dst;
            bool fp;
            ValueLoc src;
        };
        std::vector<Copy> pend;
        for (auto [l, v] : outs) {
            Copy c;
            c.dst = mappedReg(l);
            c.fp = locIsFp(l);
            c.src = loc(v);
            if (c.src.kind == ValueLoc::Kind::Reg && c.src.reg == c.dst)
                continue; // already in place
            pend.push_back(c);
        }

        auto emitCopy = [&](const Copy &c) {
            if (c.src.kind == ValueLoc::Kind::Spill) {
                if (c.fp)
                    a.emit(HOp::FLDL, c.dst, 0, 0, s32(c.src.slot * 8));
                else
                    a.emit(HOp::LWL, c.dst, 0, 0, s32(c.src.slot * 8));
            } else if (c.fp) {
                a.emit(HOp::FMOV, c.dst, c.src.reg, 0);
            } else {
                a.emit(HOp::ADDI, c.dst, c.src.reg, 0, 0);
            }
        };

        while (!pend.empty()) {
            bool progress = false;
            for (std::size_t j = 0; j < pend.size();) {
                const Copy &c = pend[j];
                bool blocked = false;
                for (const Copy &o : pend) {
                    if (&o != &c && o.src.kind == ValueLoc::Kind::Reg &&
                        o.fp == c.fp && o.src.reg == c.dst) {
                        blocked = true;
                        break;
                    }
                }
                if (!blocked) {
                    emitCopy(c);
                    pend[j] = pend.back();
                    pend.pop_back();
                    progress = true;
                } else {
                    ++j;
                }
            }
            if (progress || pend.empty())
                continue;
            // Cycle among mapped registers: save one destination.
            Copy &c0 = pend.front();
            u8 tmp = c0.fp ? fpScratch1 : scratch1;
            if (c0.fp)
                a.emit(HOp::FMOV, tmp, c0.dst, 0);
            else
                a.emit(HOp::ADDI, tmp, c0.dst, 0, 0);
            for (Copy &o : pend) {
                if (o.src.kind == ValueLoc::Kind::Reg &&
                    o.fp == c0.fp && o.src.reg == c0.dst) {
                    o.src.reg = tmp;
                }
            }
        }
    }

    CodegenResult
    run()
    {
        res.exitSite.assign(r.exits.size(), ~0u);

        a.emit(HOp::CKPT);

        if (opts.profile) {
            // Execution counter + promotion threshold (equality trip
            // fires exactly once).
            emitCounterBump(opts.execCounterAddr);
            darco_assert(opts.sbThreshold < 16384,
                         "SB threshold exceeds SEQI range");
            a.emit(HOp::SEQI, scratch1, scratch1, 0,
                   s32(opts.sbThreshold));
            a.emit(HOp::BEQ, 0, scratch1, 0, 3);
            a.emit(HOp::COMMIT);
            a.emit(HOp::RETIRE, 0, 0, 0, s32(opts.promoteExitId));
            a.emit(HOp::EXITB, 0, 0, 0, s32(opts.promoteExitId));
        }

        // Body: conditional exits branch forward to stubs.
        struct PendingBranch
        {
            u32 site;
            u32 exitIdx;
        };
        std::vector<PendingBranch> branches;

        for (const IRItem &it : r.items) {
            if (it.kind == IRItem::Kind::CondExit) {
                u8 c = srcInt(it.cond, scratch0);
                bool inv = it.condInvert != opts.flipCondExits;
                u32 site = a.emit(inv ? HOp::BEQ : HOp::BNE,
                                  0, c, 0, 0);
                branches.push_back(PendingBranch{site, it.exitIdx});
                continue;
            }
            emitInst(it.inst);
        }

        // Final exit falls through into its stub.
        res.exitSite[r.finalExit] = emitStub(r.finalExit);

        // Side-exit stubs.
        for (const PendingBranch &pb : branches) {
            u32 stub_start = a.size();
            res.exitSite[pb.exitIdx] = emitStub(pb.exitIdx);
            // Patch the branch displacement (relative to site+1).
            s32 disp = s32(stub_start) - s32(pb.site + 1);
            darco_assert(disp >= -8192 && disp <= 8191,
                         "exit stub out of branch range");
            HInst b = hdecode(a.words()[pb.site]);
            b.imm = disp;
            a.words()[pb.site] = hencode(b);
        }

        res.words = std::move(a.words());
        return std::move(res);
    }
};

} // namespace

CodegenResult
generateCode(const Region &r, const Allocation &alloc,
             const CodegenOptions &opts,
             const std::function<u32(double)> &pool_index)
{
    Gen g(r, alloc, opts, pool_index);
    return g.run();
}

} // namespace darco::tol
