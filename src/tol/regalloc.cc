#include "tol/regalloc.hh"

#include <algorithm>

#include "common/logging.hh"
#include "host/hisa.hh"

namespace darco::tol
{

namespace
{

using host::regmap::ftempBase;
using host::regmap::guestFprBase;
using host::regmap::guestGprBase;
using host::regmap::tempBase;

constexpr u8 intTempLo = tempBase;      // r15
constexpr u8 intTempHi = 31;            // r31
constexpr u8 fpTempLo = ftempBase;      // f8
constexpr u8 fpTempHi = 29;             // f29 (f30/f31 scratch)

/** Fixed host register for a guest location's LiveIn. */
u8
mappedReg(u16 loc)
{
    if (loc < 8)
        return u8(guestGprBase + loc);
    if (loc < 12)
        return u8(host::regmap::flagZ + (loc - 8));
    return u8(guestFprBase + (loc - 12));
}

} // namespace

Allocation
allocateRegisters(const Region &r)
{
    const std::size_t n = r.items.size();
    Allocation a;
    a.val.resize(r.numValues);

    // Live ranges: def index and last use index. Uses by exits attach
    // to the referencing item (CondExit) or the end of the region
    // (final exit and any exit not referenced by a CondExit).
    std::vector<s32> defAt(r.numValues, -1);
    std::vector<s32> lastUse(r.numValues, -1);
    std::vector<bool> isFp(r.numValues, false);

    auto use = [&](s32 v, s32 at) {
        if (v >= 0)
            lastUse[v] = std::max(lastUse[v], at);
    };

    std::vector<bool> exitSeen(r.exits.size(), false);
    for (std::size_t k = 0; k < n; ++k) {
        const IRItem &it = r.items[k];
        if (it.kind == IRItem::Kind::CondExit) {
            use(it.cond, s32(k));
            const IRExit &x = r.exits[it.exitIdx];
            for (auto [loc, v] : x.liveOuts)
                use(v, s32(k));
            use(x.targetVal, s32(k));
            exitSeen[it.exitIdx] = true;
            continue;
        }
        const IRInst &i = it.inst;
        use(i.src1, s32(k));
        if (!i.src2Imm)
            use(i.src2, s32(k));
        if (i.dst >= 0) {
            defAt[i.dst] = s32(k);
            isFp[i.dst] = irInfo(i.op).fpDst ||
                          (i.op == IROp::LiveIn && locIsFp(i.loc));
            if (i.op == IROp::Mov && i.src1 >= 0)
                isFp[i.dst] = isFp[i.src1];
        }
    }
    for (std::size_t e = 0; e < r.exits.size(); ++e) {
        if (exitSeen[e])
            continue;
        const IRExit &x = r.exits[e];
        for (auto [loc, v] : x.liveOuts)
            use(v, s32(n));
        use(x.targetVal, s32(n));
    }

    // LiveIn values are pinned to the guest-mapped registers.
    for (std::size_t k = 0; k < n; ++k) {
        const IRItem &it = r.items[k];
        if (it.kind == IRItem::Kind::Inst &&
            it.inst.op == IROp::LiveIn) {
            ValueLoc &vl = a.val[it.inst.dst];
            vl.kind = ValueLoc::Kind::Reg;
            vl.reg = mappedReg(it.inst.loc);
            vl.fp = locIsFp(it.inst.loc);
        }
    }

    // Linear scan over the two temp pools.
    struct Active
    {
        s32 value;
        s32 lastUse;
        u8 reg;
    };
    std::vector<u8> freeInt, freeFp;
    for (u8 g = intTempHi; g >= intTempLo; --g)
        freeInt.push_back(g);
    for (u8 f = fpTempHi; f >= fpTempLo; --f)
        freeFp.push_back(f);
    std::vector<Active> activeInt, activeFp;

    auto expire = [&](std::vector<Active> &act, std::vector<u8> &pool,
                      s32 now) {
        for (std::size_t j = 0; j < act.size();) {
            if (act[j].lastUse < now) {
                pool.push_back(act[j].reg);
                act[j] = act.back();
                act.pop_back();
            } else {
                ++j;
            }
        }
    };

    for (std::size_t k = 0; k < n; ++k) {
        const IRItem &it = r.items[k];
        if (it.kind != IRItem::Kind::Inst)
            continue;
        const IRInst &i = it.inst;
        if (i.dst < 0 || i.op == IROp::LiveIn)
            continue;
        if (lastUse[i.dst] < 0)
            continue; // dead value (possible pre-DCE); no register

        const bool fp = isFp[i.dst];
        auto &pool = fp ? freeFp : freeInt;
        auto &act = fp ? activeFp : activeInt;
        expire(act, pool, s32(k));

        ValueLoc &vl = a.val[i.dst];
        vl.fp = fp;
        if (!pool.empty()) {
            vl.kind = ValueLoc::Kind::Reg;
            vl.reg = pool.back();
            pool.pop_back();
            act.push_back(Active{i.dst, lastUse[i.dst], vl.reg});
            continue;
        }
        // Spill the value with the furthest last use (it or a live one).
        std::size_t victim = act.size();
        s32 far = lastUse[i.dst];
        for (std::size_t j = 0; j < act.size(); ++j) {
            if (act[j].lastUse > far) {
                far = act[j].lastUse;
                victim = j;
            }
        }
        if (victim == act.size()) {
            // New value is the furthest: spill it directly.
            vl.kind = ValueLoc::Kind::Spill;
            vl.slot = a.spillSlots++;
            ++a.spillCount;
        } else {
            // Evict the victim to a slot; reuse its register.
            ValueLoc &ev = a.val[act[victim].value];
            u8 reg = act[victim].reg;
            ev.kind = ValueLoc::Kind::Spill;
            ev.slot = a.spillSlots++;
            ++a.spillCount;
            vl.kind = ValueLoc::Kind::Reg;
            vl.reg = reg;
            act[victim] = Active{i.dst, lastUse[i.dst], reg};
        }
    }

    return a;
}

} // namespace darco::tol
