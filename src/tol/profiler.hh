/**
 * @file
 * TOL profiling subsystem.
 *
 * Owns everything the runtime uses to decide promotions:
 *
 *  - the IM repetition counters (software counters bumped by the
 *    interpreter dispatch loop; reaching tol.bb_threshold promotes a
 *    BB to BBM);
 *  - the profiling-slot allocator: each profiled BB gets three 32-bit
 *    TOL-local-memory slots (execution counter, taken-edge counter,
 *    fall-through counter) that BBM instrumentation code increments
 *    inline;
 *  - edge-counter readback used by the superblock builder to measure
 *    branch bias.
 *
 * Extracted from the Tol monolith so profiling policy can evolve (and
 * be swapped) independently of mode transitions and translation
 * bookkeeping.
 */

#ifndef DARCO_TOL_PROFILER_HH
#define DARCO_TOL_PROFILER_HH

#include <unordered_map>

#include "common/types.hh"
#include "host/hemu.hh"

namespace darco::snapshot
{
class Serializer;
class Deserializer;
} // namespace darco::snapshot

namespace darco::tol
{

/** Profiling counters and slot allocation for the TOL runtime. */
class Profiler
{
  public:
    /** TOL-local-memory addresses of one BB's profiling counters. */
    struct Slots
    {
        u32 exec, taken, fall;
    };

    /**
     * @param emu  host emulator owning the TOL-local memory the
     *             profiling counters live in
     * @param base first local-memory address available for counters;
     *             spill slots grow upward from address 0, so base
     *             also caps the spill area
     */
    explicit Profiler(host::HostEmu &emu, u32 base = 0x4000);

    /** Bump the IM repetition counter for a BB. @return new count. */
    u32 bumpIm(GAddr entry);

    /** Forget the IM counter for a BB (after promotion). */
    void resetIm(GAddr entry);

    /** Profiling slots for a BB, allocated on first use. */
    Slots slots(GAddr bb_entry);

    /** Taken-edge count of the BB's terminating conditional branch. */
    u32 edgeTaken(GAddr bb_entry);

    /** Fall-through count of the BB's terminating branch. */
    u32 edgeFall(GAddr bb_entry);

    std::size_t profiledBBs() const { return slotMap_.size(); }

    /**
     * Checkpoint hooks: IM repetition counters, the slot map (with
     * each BB's counter *values*, read from / written back to the
     * emulator's TOL-local memory), and the allocation cursor.
     */
    void save(snapshot::Serializer &s) const;
    void restore(snapshot::Deserializer &d);

  private:
    host::HostEmu &emu_;
    std::unordered_map<GAddr, u32> imCounters_;
    std::unordered_map<GAddr, Slots> slotMap_;
    u32 base_;
    u32 next_;
};

} // namespace darco::tol

#endif // DARCO_TOL_PROFILER_HH
