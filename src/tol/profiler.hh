/**
 * @file
 * TOL profiling subsystem.
 *
 * Owns everything the runtime uses to decide promotions:
 *
 *  - the IM repetition counters (software counters bumped by the
 *    interpreter dispatch loop; reaching tol.bb_threshold promotes a
 *    BB to BBM);
 *  - the profiling-slot allocator: each profiled BB gets three 32-bit
 *    TOL-local-memory slots (execution counter, taken-edge counter,
 *    fall-through counter) that BBM instrumentation code increments
 *    inline;
 *  - edge-counter readback used by the superblock builder to measure
 *    branch bias;
 *  - optional basic-block-vector (BBV) collection for SimPoint-style
 *    sampled simulation: retired guest instructions are attributed to
 *    the entry address of the retiring region over fixed-length
 *    instruction intervals. A retirement chunk that crosses an
 *    interval boundary is split exactly, so every closed interval
 *    sums to precisely the interval length and the grand total equals
 *    the retired-instruction count (the fuzz oracle's conservation
 *    invariant).
 *
 * Extracted from the Tol monolith so profiling policy can evolve (and
 * be swapped) independently of mode transitions and translation
 * bookkeeping.
 */

#ifndef DARCO_TOL_PROFILER_HH
#define DARCO_TOL_PROFILER_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "host/hemu.hh"

namespace darco::snapshot
{
class Serializer;
class Deserializer;
} // namespace darco::snapshot

namespace darco::tol
{

/** Profiling counters and slot allocation for the TOL runtime. */
class Profiler
{
  public:
    /** TOL-local-memory addresses of one BB's profiling counters. */
    struct Slots
    {
        u32 exec, taken, fall;
    };

    /**
     * @param emu  host emulator owning the TOL-local memory the
     *             profiling counters live in
     * @param base first local-memory address available for counters;
     *             spill slots grow upward from address 0, so base
     *             also caps the spill area
     */
    explicit Profiler(host::HostEmu &emu, u32 base = 0x4000);

    /** Bump the IM repetition counter for a BB. @return new count. */
    u32 bumpIm(GAddr entry);

    /** Forget the IM counter for a BB (after promotion). */
    void resetIm(GAddr entry);

    /** Profiling slots for a BB, allocated on first use. */
    Slots slots(GAddr bb_entry);

    /** Taken-edge count of the BB's terminating conditional branch. */
    u32 edgeTaken(GAddr bb_entry);

    /** Fall-through count of the BB's terminating branch. */
    u32 edgeFall(GAddr bb_entry);

    std::size_t profiledBBs() const { return slotMap_.size(); }

    // --- BBV collection (SimPoint-style sampled simulation) --------------

    /** One closed profiling interval's basic-block vector. */
    struct BbvInterval
    {
        /** (BB entry, retired insts attributed) sorted by entry. */
        std::vector<std::pair<GAddr, u64>> counts;
        u64 insts = 0; //!< sum of counts (== interval length once closed)
        /**
         * Software-layer (TOL) activity in this interval, in
         * cost-model units (translation, eviction, recreation work).
         * Guest BBVs alone cannot see these events — the same guest
         * code mix can execute with or without a translation burst —
         * yet they dominate a co-designed processor's timing, so the
         * clusterer treats this as an extra phase dimension. Kept
         * separate from `counts`: the conservation invariant covers
         * retired instructions only.
         */
        u64 overhead = 0;
    };

    /**
     * Enable BBV collection with fixed-length instruction intervals.
     * Must be called before the first retirement (the Tol constructor
     * does, from tol.bbv_interval).
     */
    void enableBbv(u64 interval_insts);

    bool bbvEnabled() const { return bbvInterval_ != 0; }
    u64 bbvIntervalLen() const { return bbvInterval_; }

    /**
     * Attribute `insts` retired guest instructions to the region
     * entered at `bb_entry`. Chunks are split exactly across interval
     * boundaries.
     */
    void recordBbvRetire(GAddr bb_entry, u64 insts);

    /**
     * Attribute software-layer work (cost-model units) to the open
     * interval. Not instruction-conserved: never split.
     */
    void recordBbvOverhead(u64 units);

    /** Closed intervals, in execution order. */
    const std::vector<BbvInterval> &bbvIntervals() const
    {
        return bbvClosed_;
    }

    /** The open (partial) interval, materialized and sorted. */
    BbvInterval bbvPartial() const;

    /** Total retired instructions attributed since enableBbv(). */
    u64 bbvTotalInsts() const { return bbvTotal_; }

    /**
     * Conservation invariant (the fuzz oracle): every closed interval
     * sums to exactly the interval length, the partial interval sums
     * to its remainder, and the grand total equals `retired_insts`.
     * @return empty string when the invariant holds, else a diagnosis.
     */
    std::string checkBbvInvariants(u64 retired_insts) const;

    /**
     * Checkpoint hooks: IM repetition counters, the slot map (with
     * each BB's counter *values*, read from / written back to the
     * emulator's TOL-local memory), the allocation cursor, and the
     * full BBV collection state (closed intervals + open partial).
     */
    void save(snapshot::Serializer &s) const;
    void restore(snapshot::Deserializer &d);

  private:
    void closeBbvInterval();

    host::HostEmu &emu_;
    std::unordered_map<GAddr, u32> imCounters_;
    std::unordered_map<GAddr, Slots> slotMap_;
    u32 base_;
    u32 next_;

    u64 bbvInterval_ = 0; //!< interval length in insts; 0 = disabled
    u64 bbvTotal_ = 0;
    u64 bbvCurInsts_ = 0;
    u64 bbvCurOverhead_ = 0;
    std::unordered_map<GAddr, u64> bbvCur_;
    std::vector<BbvInterval> bbvClosed_;
};

} // namespace darco::tol

#endif // DARCO_TOL_PROFILER_HH
