#include "tol/ddg.hh"

#include <algorithm>

#include "common/logging.hh"
#include "tol/passes.hh"

namespace darco::tol
{

u8
irLatency(IROp op)
{
    switch (op) {
      case IROp::Mul:
      case IROp::MulH:
        return 3;
      case IROp::Div:
      case IROp::Rem:
        return 12;
      case IROp::Ld8u:
      case IROp::Ld8s:
      case IROp::Ld16u:
      case IROp::Ld16s:
      case IROp::Ld32:
      case IROp::FLd:
        return 3;
      case IROp::FAdd:
      case IROp::FSub:
      case IROp::FCvtWD:
      case IROp::FCvtZW:
      case IROp::FRnd:
        return 3;
      case IROp::FMul:
        return 4;
      case IROp::FDiv:
      case IROp::FSqrt:
        return 12;
      default:
        return 1;
    }
}

DDG
buildDDG(const Region &r)
{
    const std::size_t n = r.items.size();
    DDG g;
    g.succs.resize(n);
    g.predCount.assign(n, 0);
    g.breakablePreds.assign(n, 0);
    g.priority.assign(n, 0);

    auto addEdge = [&](std::size_t from, std::size_t to, u8 lat,
                       bool breakable) {
        g.succs[from].push_back(DDGEdge{u32(to), lat, breakable});
        if (breakable)
            ++g.breakablePreds[to];
        else
            ++g.predCount[to];
        ++g.edgeCount;
    };

    // Value definition sites.
    std::vector<s32> defSite(r.numValues, -1);
    for (std::size_t k = 0; k < n; ++k) {
        if (r.items[k].kind == IRItem::Kind::Inst &&
            r.items[k].inst.dst >= 0) {
            defSite[r.items[k].inst.dst] = s32(k);
        }
    }

    auto valueDep = [&](std::size_t user, s32 v) {
        if (v < 0)
            return;
        s32 d = defSite[v];
        if (d >= 0)
            addEdge(std::size_t(d), user, irLatency(r.items[d].inst.op),
                    false);
    };

    std::vector<std::size_t> memOps;
    std::vector<std::size_t> condExits;
    std::vector<std::size_t> asserts;

    for (std::size_t k = 0; k < n; ++k) {
        const IRItem &it = r.items[k];
        if (it.kind == IRItem::Kind::CondExit) {
            valueDep(k, it.cond);
            // Live-out values must be computed before the exit.
            for (auto [loc, v] : r.exits[it.exitIdx].liveOuts)
                valueDep(k, v);
            valueDep(k, r.exits[it.exitIdx].targetVal);
            // Order with earlier memory ops: stores cannot sink below,
            // and the exit cannot hoist above a store that precedes it
            // (the committed state must include it).
            for (std::size_t m : memOps) {
                if (irInfo(r.items[m].inst.op).isStore)
                    addEdge(m, k, 1, false);
            }
            // Preserve order among side exits.
            for (std::size_t c : condExits)
                addEdge(c, k, 1, false);
            // Asserts must not sink below a later side exit; record
            // and wire when the exit appears.
            for (std::size_t a : asserts)
                addEdge(a, k, 1, false);
            condExits.push_back(k);
            continue;
        }

        const IRInst &i = it.inst;
        valueDep(k, i.src1);
        if (!i.src2Imm)
            valueDep(k, i.src2);

        if (i.op == IROp::Assert) {
            asserts.push_back(k);
            continue;
        }

        const IROpInfo &oi = irInfo(i.op);
        if (oi.isLoad || oi.isStore) {
            for (std::size_t m : memOps) {
                const IRInst &prev = r.items[m].inst;
                const IROpInfo &pi = irInfo(prev.op);
                if (!pi.isStore && !oi.isStore)
                    continue; // load-load: no ordering
                Alias al = aliasCheck(i, prev);
                if (al == Alias::Never)
                    continue;
                if (pi.isStore && oi.isLoad) {
                    // store -> load: breakable when only may-alias.
                    addEdge(m, k, 1, al == Alias::May);
                } else {
                    // store->store or load->store: fixed order.
                    addEdge(m, k, 1, false);
                }
            }
            // Stores may not hoist above an earlier side exit.
            if (oi.isStore) {
                for (std::size_t c : condExits)
                    addEdge(c, k, 1, false);
            }
            memOps.push_back(k);
        }
    }

    // Critical-path priorities (reverse topological over item order —
    // edges always point forward in the original order). Breakable
    // edges are excluded: they are exactly the edges speculation can
    // cut, and including them would make every store outrank the
    // loads it blocks.
    for (std::size_t k = n; k-- > 0;) {
        u32 best = 0;
        for (const DDGEdge &e : g.succs[k]) {
            if (!e.breakable)
                best = std::max(best, g.priority[e.to] + e.latency);
        }
        g.priority[k] = best;
    }
    return g;
}

u32
scheduleRegion(Region &r, const SchedOptions &opts)
{
    if (!opts.enable || r.items.size() < 2)
        return 0;

    DDG g = buildDDG(r);
    const std::size_t n = r.items.size();

    std::vector<u32> pred = g.predCount;
    std::vector<u32> bpred = g.breakablePreds;
    std::vector<bool> scheduled(n, false);
    std::vector<IRItem> out;
    out.reserve(n);
    u32 speculated = 0;

    auto canSpeculate = [&](std::size_t k) {
        if (!opts.speculateMem)
            return false;
        const IRItem &it = r.items[k];
        if (it.kind != IRItem::Kind::Inst)
            return false;
        // Only word/double loads have speculative host encodings.
        return it.inst.op == IROp::Ld32 || it.inst.op == IROp::FLd;
    };

    for (std::size_t step = 0; step < n; ++step) {
        // Pick the highest-priority ready item; an item whose only
        // remaining predecessors are breakable store->load edges is
        // spec-ready.
        s32 best = -1;
        bool bestSpec = false;
        for (std::size_t k = 0; k < n; ++k) {
            if (scheduled[k] || pred[k] != 0)
                continue;
            bool needsBreak = bpred[k] != 0;
            if (needsBreak && !canSpeculate(k))
                continue;
            if (best < 0 || g.priority[k] > g.priority[best] ||
                (g.priority[k] == g.priority[best] &&
                 k < std::size_t(best))) {
                best = s32(k);
                bestSpec = needsBreak;
            }
        }
        darco_assert(best >= 0, "scheduler deadlock");
        std::size_t k = std::size_t(best);
        scheduled[k] = true;
        IRItem item = r.items[k];
        if (bestSpec) {
            item.inst.speculative = true;
            ++speculated;
            // Every store this load was hoisted across must run the
            // alias check (the paper's sequence-number discipline,
            // resolved statically here).
            for (std::size_t s2 = 0; s2 < n; ++s2) {
                if (scheduled[s2])
                    continue;
                for (const DDGEdge &e : g.succs[s2]) {
                    if (e.to == k && e.breakable)
                        r.items[s2].inst.speculative = true;
                }
            }
        }
        out.push_back(item);
        for (const DDGEdge &e : g.succs[k]) {
            if (scheduled[e.to])
                continue; // already hoisted past this edge
            if (e.breakable)
                --bpred[e.to];
            else
                --pred[e.to];
        }
    }

    r.items = std::move(out);
    return speculated;
}

} // namespace darco::tol
