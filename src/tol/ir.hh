/**
 * @file
 * The TOL intermediate representation.
 *
 * Regions (translated basic blocks or superblocks) are straight-line
 * sequences of IR items in SSA form by construction: every value is
 * defined exactly once, and because regions have no internal joins
 * (superblock branches become asserts or side exits) no phi nodes are
 * needed — this is the paper's "transforming the IR of a superblock
 * into SSA format".
 *
 * Guest architectural state appears only at the region boundary:
 * LiveIn reads a guest location at entry; each exit carries a
 * live-out list materializing dirty locations. Between the two,
 * values float freely, which is what the checkpoint/rollback
 * execution model buys (paper Section V-B3).
 */

#ifndef DARCO_TOL_IR_HH
#define DARCO_TOL_IR_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace darco::tol
{

/**
 * Guest locations: 0..7 GPRs, 8..11 flags (Z,S,C,O), 12..19 FPRs.
 */
constexpr u16 locGpr0 = 0;
constexpr u16 locFlagZ = 8;
constexpr u16 locFlagS = 9;
constexpr u16 locFlagC = 10;
constexpr u16 locFlagO = 11;
constexpr u16 locFpr0 = 12;
constexpr u16 numLocs = 20;

/** True if a location holds a double. */
constexpr bool
locIsFp(u16 loc)
{
    return loc >= locFpr0;
}

/** IR operations. */
enum class IROp : u8
{
    LiveIn,  //!< dst = guest location `loc` at region entry
    Movi,    //!< dst = imm
    Mov,     //!< dst = src1
    // Integer ALU; src2 may be an immediate (src2Imm).
    Add, Sub, Mul, MulH, Div, Rem,
    And, Or, Xor,
    Sll, Srl, Sra,
    Slt, Sltu, Seq, Sne, Sge, Sgeu,
    // Guest memory (address = src1 + imm; value = src2 for stores).
    Ld8u, Ld8s, Ld16u, Ld16s, Ld32,
    St8, St16, St32,
    // Floating point.
    FConst, //!< dst = fimm
    FAdd, FSub, FMul, FDiv, FSqrt, FAbs, FNeg, FMov, FRnd,
    FCvtWD, //!< fp dst = double(int src1)
    FCvtZW, //!< int dst = gcvtfi(fp src1)
    FEq, FLt, FLe, //!< int dst = compare(fp src1, fp src2)
    FLd, FSt,      //!< 64-bit guest memory
    // Control/speculation support.
    Assert,  //!< fail+rollback unless src1 matches expectation
    NumOps,
};

/** Static IR opcode properties. */
struct IROpInfo
{
    const char *name;
    bool hasDst;
    bool fpDst;     //!< dst is a double
    bool isLoad;
    bool isStore;
    u8 memSize;
    bool pure;      //!< freely removable/CSE-able
};

const IROpInfo &irInfo(IROp op);

/** One IR instruction. */
struct IRInst
{
    IROp op = IROp::Movi;
    s32 dst = -1;   //!< value id (-1 = none)
    s32 src1 = -1;
    s32 src2 = -1;
    bool src2Imm = false; //!< ALU src2 is `imm` instead of a value
    s32 imm = 0;          //!< immediate / mem displacement / loc
    u16 loc = 0;          //!< guest location (LiveIn)
    double fimm = 0.0;    //!< FConst value
    GAddr guestPc = 0;    //!< originating guest instruction
    u32 assertId = 0;
    bool expectNonZero = false; //!< Assert: fail when src1==0
    bool speculative = false;   //!< load hoisted across a store
};

/** How control leaves a region through a given exit. */
enum class ExitKind : u8
{
    Direct,   //!< continue at static guest pc `target`
    Indirect, //!< continue at dynamic pc in `targetVal` (IBTC)
    Syscall,  //!< stopped before a SYSCALL at `target`
    Halt,     //!< stopped before HLT
    Interp,   //!< must continue in IM at `target` (REP, residual loop)
    Promote,  //!< BBM threshold trip: build a superblock for `target`
};

/** One region exit: target + architectural materialization. */
struct IRExit
{
    ExitKind kind = ExitKind::Direct;
    GAddr target = 0;
    s32 targetVal = -1;   //!< Indirect only
    u32 instsRetired = 0; //!< guest instructions completed here
    u32 bbsRetired = 0;   //!< guest basic blocks completed here
    /** (location, value) pairs to write back. */
    std::vector<std::pair<u16, s32>> liveOuts;
    bool chainable = false; //!< Direct exits can be chained
};

/** A region item: an instruction or a conditional side exit. */
struct IRItem
{
    enum class Kind : u8 { Inst, CondExit } kind = Kind::Inst;
    IRInst inst;
    // CondExit: taken when cond != 0 (condInvert -> taken when == 0).
    s32 cond = -1;
    bool condInvert = false;
    u32 exitIdx = 0;
};

/** Translation granularity of a region. */
enum class RegionMode : u8
{
    BB, //!< basic-block translation (BBM)
    SB, //!< superblock (SBM)
};

/** A translation unit flowing through the optimizer pipeline. */
struct Region
{
    GAddr entryPc = 0;
    RegionMode mode = RegionMode::BB;
    std::vector<IRItem> items;
    std::vector<IRExit> exits;
    u32 finalExit = 0; //!< exits index taken by falling off the end
    s32 numValues = 0; //!< value-id space size
    bool hasAsserts = false;

    IRInst &
    append(IRInst inst)
    {
        IRItem it;
        it.kind = IRItem::Kind::Inst;
        it.inst = inst;
        items.push_back(it);
        return items.back().inst;
    }
};

/** Render a region for the debug toolchain. */
std::string dumpRegion(const Region &r);

/**
 * Structural verifier: SSA single-def, def-before-use, operand type
 * agreement, exit indices in range. Returns "" or a diagnostic.
 */
std::string verifyRegion(const Region &r);

} // namespace darco::tol

#endif // DARCO_TOL_IR_HH
