/**
 * @file
 * The TOL optimization passes (paper Section V-B3).
 *
 * BBM runs the "basic optimizations": constant folding/propagation and
 * dead-code elimination. SBM additionally runs copy propagation, CSE,
 * and the DDG-phase memory optimizations (redundant-load elimination,
 * store forwarding, dead-store elimination) before scheduling.
 *
 * All passes return the number of changes made; the cost model charges
 * TOL overhead proportional to items processed (see cost_model.hh).
 */

#ifndef DARCO_TOL_PASSES_HH
#define DARCO_TOL_PASSES_HH

#include "tol/ir.hh"

namespace darco::tol
{

/** Constant folding + constant propagation (one forward pass). */
u32 foldConstants(Region &r);

/** Copy propagation: uses of Mov/FMov results use the source. */
u32 copyPropagate(Region &r);

/** Common-subexpression elimination over pure ops. */
u32 eliminateCommonSubexprs(Region &r);

/**
 * Dead-code elimination (backward pass). Keeps stores, asserts,
 * division (guest-visible faults), exits and everything they need.
 */
u32 eliminateDeadCode(Region &r);

/**
 * DDG-phase memory optimization: store->load forwarding, redundant
 * load elimination, dead-store elimination, driven by the same
 * base+displacement disambiguation the scheduler uses.
 */
u32 optimizeMemory(Region &r);

/** Aliasing verdict between two memory operations. */
enum class Alias : u8
{
    Never,
    Always, //!< identical address and size
    May,
};

/** Disambiguate two memory instructions (same-base interval test). */
Alias aliasCheck(const IRInst &a, const IRInst &b);

} // namespace darco::tol

#endif // DARCO_TOL_PASSES_HH
