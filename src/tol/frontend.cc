#include "tol/frontend.hh"

#include "common/logging.hh"
#include "guest/semantics.hh"

namespace darco::tol
{

using namespace guest;

namespace
{

/** Symbolic record of the last flag-setting operation. */
struct Thunk
{
    enum class Kind : u8
    {
        None, Sub, Add, Logic, ShiftL, ShiftR, Mul, IncDec, Neg, Fcmp,
    };
    Kind kind = Kind::None;
    s32 a = -1;          //!< first operand value
    s32 b = -1;          //!< second operand value (or imm)
    bool bImm = false;
    s32 bImmVal = 0;
    s32 r = -1;          //!< result value (lazily built for CMP)
    s32 hi = -1;         //!< Mul: high 32 bits
    s32 shiftAmt = -1;   //!< Shift: amount value (-1 if immediate)
    s32 shiftImm = 0;
    s32 cfVal = -1;      //!< IncDec: carried-over CF value
    bool isInc = false;
    // Cached materialized flag bits.
    s32 zf = -1, sf = -1, cf = -1, of = -1;
};

struct Builder
{
    Region r;
    FrontendOptions opts;
    std::array<s32, numLocs> locVal;
    std::array<bool, numLocs> locDirty;
    Thunk thunk;
    u32 instsDone = 0;
    u32 bbsDone = 0;
    u32 nextAssertId = 0;
    GAddr curPc = 0;

    explicit Builder(const FrontendOptions &o) : opts(o)
    {
        locVal.fill(-1);
        locDirty.fill(false);
    }

    s32
    newVal()
    {
        return r.numValues++;
    }

    // --- emit helpers ---------------------------------------------------

    s32
    emit(IROp op, s32 src1 = -1, s32 src2 = -1)
    {
        IRInst i;
        i.op = op;
        i.src1 = src1;
        i.src2 = src2;
        i.guestPc = curPc;
        if (irInfo(op).hasDst)
            i.dst = newVal();
        r.append(i);
        return i.dst;
    }

    /** ALU op with immediate second operand. */
    s32
    emitI(IROp op, s32 src1, s32 imm)
    {
        IRInst i;
        i.op = op;
        i.src1 = src1;
        i.src2Imm = true;
        i.imm = imm;
        i.guestPc = curPc;
        i.dst = newVal();
        r.append(i);
        return i.dst;
    }

    s32
    movi(s32 v)
    {
        IRInst i;
        i.op = IROp::Movi;
        i.imm = v;
        i.guestPc = curPc;
        i.dst = newVal();
        r.append(i);
        return i.dst;
    }

    s32
    fconst(double v)
    {
        IRInst i;
        i.op = IROp::FConst;
        i.fimm = v;
        i.guestPc = curPc;
        i.dst = newVal();
        r.append(i);
        return i.dst;
    }

    s32
    load(IROp op, s32 base, s32 disp)
    {
        IRInst i;
        i.op = op;
        i.src1 = base;
        i.imm = disp;
        i.guestPc = curPc;
        i.dst = newVal();
        r.append(i);
        return i.dst;
    }

    void
    store(IROp op, s32 base, s32 disp, s32 val)
    {
        IRInst i;
        i.op = op;
        i.src1 = base;
        i.src2 = val;
        i.imm = disp;
        i.guestPc = curPc;
        r.append(i);
    }

    // --- guest location tracking ---------------------------------------

    s32
    getLoc(u16 loc)
    {
        if (locVal[loc] < 0) {
            IRInst i;
            i.op = IROp::LiveIn;
            i.loc = loc;
            i.guestPc = curPc;
            i.dst = newVal();
            r.append(i);
            locVal[loc] = i.dst;
        }
        return locVal[loc];
    }

    void
    setLoc(u16 loc, s32 v)
    {
        locVal[loc] = v;
        locDirty[loc] = true;
    }

    s32 getGpr(u8 g) { return getLoc(locGpr0 + g); }
    void setGpr(u8 g, s32 v) { setLoc(locGpr0 + g, v); }
    s32 getFpr(u8 f) { return getLoc(locFpr0 + f); }
    void setFpr(u8 f, s32 v) { setLoc(locFpr0 + f, v); }

    // --- flag thunk -----------------------------------------------------

    void
    setThunk(Thunk t)
    {
        thunk = t;
    }

    /** Operand b of the thunk as a value id (materializing an imm). */
    s32
    thunkB()
    {
        if (thunk.bImm) {
            thunk.b = movi(thunk.bImmVal);
            thunk.bImm = false;
        }
        return thunk.b;
    }

    /** Thunk result value (materialize for CMP-style thunks). */
    s32
    thunkR()
    {
        if (thunk.r < 0) {
            darco_assert(thunk.kind == Thunk::Kind::Sub,
                         "only Sub thunks have lazy results");
            thunk.r = thunk.bImm ? emitI(IROp::Sub, thunk.a, thunk.bImmVal)
                                 : emit(IROp::Sub, thunk.a, thunk.b);
        }
        return thunk.r;
    }

    /** Materialize one flag (GFlag bit) from the thunk. */
    s32
    getFlag(u8 flag)
    {
        using K = Thunk::Kind;
        s32 *cache = flag == flagZ   ? &thunk.zf
                     : flag == flagS ? &thunk.sf
                     : flag == flagC ? &thunk.cf
                                     : &thunk.of;
        if (*cache >= 0)
            return *cache;

        s32 v = -1;
        if (thunk.kind == K::None) {
            u16 loc = flag == flagZ   ? locFlagZ
                      : flag == flagS ? locFlagS
                      : flag == flagC ? locFlagC
                                      : locFlagO;
            return getLoc(loc);
        }

        switch (flag) {
          case flagZ:
            if (thunk.kind == K::Sub) {
                v = thunk.bImm ? emitI(IROp::Seq, thunk.a, thunk.bImmVal)
                               : emit(IROp::Seq, thunk.a, thunk.b);
            } else if (thunk.kind == K::Fcmp) {
                v = emit(IROp::FEq, thunk.a, thunk.b);
            } else {
                v = emitI(IROp::Seq, thunkR(), 0);
            }
            break;

          case flagS:
            if (thunk.kind == K::Fcmp)
                v = movi(0);
            else
                v = emitI(IROp::Srl, thunkR(), 31);
            break;

          case flagC:
            switch (thunk.kind) {
              case K::Sub:
                v = thunk.bImm
                        ? emitI(IROp::Sltu, thunk.a, thunk.bImmVal)
                        : emit(IROp::Sltu, thunk.a, thunk.b);
                break;
              case K::Add:
                v = emit(IROp::Sltu, thunkR(), thunk.a);
                break;
              case K::Logic:
                v = movi(0);
                break;
              case K::ShiftL: {
                // last bit shifted out: (a >> ((32-s)&31)) & 1, and 0
                // when s == 0.
                if (thunk.shiftAmt < 0) {
                    if (thunk.shiftImm == 0) {
                        v = movi(0);
                    } else {
                        s32 t = emitI(IROp::Srl, thunk.a,
                                      32 - thunk.shiftImm);
                        v = emitI(IROp::And, t, 1);
                    }
                } else {
                    s32 v32 = movi(32);
                    s32 d = emit(IROp::Sub, v32, thunk.shiftAmt);
                    s32 t = emit(IROp::Srl, thunk.a, d);
                    s32 bit = emitI(IROp::And, t, 1);
                    s32 am = emitI(IROp::And, thunk.shiftAmt, 31);
                    s32 m = emitI(IROp::Sne, am, 0);
                    v = emit(IROp::And, bit, m);
                }
                break;
              }
              case K::ShiftR: {
                if (thunk.shiftAmt < 0) {
                    if (thunk.shiftImm == 0) {
                        v = movi(0);
                    } else {
                        s32 t = emitI(IROp::Srl, thunk.a,
                                      thunk.shiftImm - 1);
                        v = emitI(IROp::And, t, 1);
                    }
                } else {
                    s32 d = emitI(IROp::Add, thunk.shiftAmt, -1);
                    s32 t = emit(IROp::Srl, thunk.a, d);
                    s32 bit = emitI(IROp::And, t, 1);
                    s32 am = emitI(IROp::And, thunk.shiftAmt, 31);
                    s32 m = emitI(IROp::Sne, am, 0);
                    v = emit(IROp::And, bit, m);
                }
                break;
              }
              case K::Mul: {
                s32 t = emitI(IROp::Sra, thunkR(), 31);
                v = emit(IROp::Sne, thunk.hi, t);
                break;
              }
              case K::IncDec:
                v = thunk.cfVal;
                break;
              case K::Neg:
                v = emitI(IROp::Sne, thunk.a, 0);
                break;
              case K::Fcmp: {
                // Guest FCMP sets CF for "less OR unordered" (like
                // x86 ucomisd). FLt alone misses the unordered case,
                // so compute !(b <= a).
                s32 t = emit(IROp::FLe, thunk.b, thunk.a);
                v = emitI(IROp::Xor, t, 1);
                break;
              }
              default:
                panic("bad thunk kind for CF");
            }
            break;

          case flagO:
            switch (thunk.kind) {
              case K::Sub: {
                s32 t1 = thunk.bImm
                             ? emitI(IROp::Xor, thunk.a, thunk.bImmVal)
                             : emit(IROp::Xor, thunk.a, thunk.b);
                s32 t2 = emit(IROp::Xor, thunk.a, thunkR());
                s32 t3 = emit(IROp::And, t1, t2);
                v = emitI(IROp::Srl, t3, 31);
                break;
              }
              case K::Add: {
                s32 t1 = thunk.bImm
                             ? emitI(IROp::Xor, thunk.a, thunk.bImmVal)
                             : emit(IROp::Xor, thunk.a, thunk.b);
                s32 t1n = emitI(IROp::Xor, t1, -1);
                s32 t2 = emit(IROp::Xor, thunk.a, thunkR());
                s32 t3 = emit(IROp::And, t1n, t2);
                v = emitI(IROp::Srl, t3, 31);
                break;
              }
              case K::Logic:
              case K::ShiftL:
              case K::ShiftR:
              case K::Fcmp:
                v = movi(0);
                break;
              case K::Mul:
                v = getFlag(flagC);
                break;
              case K::IncDec:
                v = emitI(IROp::Seq, thunkR(),
                          thunk.isInc ? s32(0x80000000) : 0x7fffffff);
                break;
              case K::Neg:
                v = emitI(IROp::Seq, thunk.a, s32(0x80000000));
                break;
              default:
                panic("bad thunk kind for OF");
            }
            break;
        }
        *cache = v;
        return v;
    }

    /** Value that is 1 iff condition c holds. */
    s32
    getCond(GCond c)
    {
        using K = Thunk::Kind;
        // Fast path: fuse against a subtract/compare thunk.
        if (opts.fuseFlags && thunk.kind == K::Sub) {
            s32 a = thunk.a;
            switch (c) {
              case GCond::EQ:
                return thunk.bImm ? emitI(IROp::Seq, a, thunk.bImmVal)
                                  : emit(IROp::Seq, a, thunk.b);
              case GCond::NE:
                return thunk.bImm ? emitI(IROp::Sne, a, thunk.bImmVal)
                                  : emit(IROp::Sne, a, thunk.b);
              case GCond::LT:
                return thunk.bImm ? emitI(IROp::Slt, a, thunk.bImmVal)
                                  : emit(IROp::Slt, a, thunk.b);
              case GCond::GE:
                return thunk.bImm ? emitI(IROp::Sge, a, thunk.bImmVal)
                                  : emit(IROp::Sge, a, thunk.b);
              case GCond::LE:
                return emit(IROp::Sge, thunkB(), a);
              case GCond::GT:
                return emit(IROp::Slt, thunkB(), a);
              case GCond::B:
                return thunk.bImm ? emitI(IROp::Sltu, a, thunk.bImmVal)
                                  : emit(IROp::Sltu, a, thunk.b);
              case GCond::AE:
                return thunk.bImm ? emitI(IROp::Sgeu, a, thunk.bImmVal)
                                  : emit(IROp::Sgeu, a, thunk.b);
              case GCond::BE:
                return emit(IROp::Sgeu, thunkB(), a);
              case GCond::A:
                return emit(IROp::Sltu, thunkB(), a);
              case GCond::S:
                return getFlag(flagS);
              case GCond::NS:
                return emitI(IROp::Xor, getFlag(flagS), 1);
              default:
                break;
            }
        }
        // Generic path via individual flags.
        switch (c) {
          case GCond::EQ:
            return getFlag(flagZ);
          case GCond::NE:
            return emitI(IROp::Xor, getFlag(flagZ), 1);
          case GCond::LT:
            return emit(IROp::Xor, getFlag(flagS), getFlag(flagO));
          case GCond::GE: {
            s32 lt = emit(IROp::Xor, getFlag(flagS), getFlag(flagO));
            return emitI(IROp::Xor, lt, 1);
          }
          case GCond::LE: {
            s32 lt = emit(IROp::Xor, getFlag(flagS), getFlag(flagO));
            return emit(IROp::Or, getFlag(flagZ), lt);
          }
          case GCond::GT: {
            s32 lt = emit(IROp::Xor, getFlag(flagS), getFlag(flagO));
            s32 le = emit(IROp::Or, getFlag(flagZ), lt);
            return emitI(IROp::Xor, le, 1);
          }
          case GCond::B:
            return getFlag(flagC);
          case GCond::AE:
            return emitI(IROp::Xor, getFlag(flagC), 1);
          case GCond::BE:
            return emit(IROp::Or, getFlag(flagC), getFlag(flagZ));
          case GCond::A: {
            s32 be = emit(IROp::Or, getFlag(flagC), getFlag(flagZ));
            return emitI(IROp::Xor, be, 1);
          }
          case GCond::S:
            return getFlag(flagS);
          case GCond::NS:
            return emitI(IROp::Xor, getFlag(flagS), 1);
          default:
            panic("bad condition");
        }
    }

    // --- memory operands -------------------------------------------------

    /** Effective address as (base value, folded displacement). */
    std::pair<s32, s32>
    ea(const GInst &i)
    {
        auto fold = [&](s32 base, s32 disp) -> std::pair<s32, s32> {
            if (disp >= -8192 && disp <= 8191)
                return {base, disp};
            s32 d = movi(disp);
            return {emit(IROp::Add, base, d), 0};
        };
        switch (i.memMode) {
          case memBase:
            return {getGpr(i.memBase), 0};
          case memBaseD8:
          case memBaseD32:
            return fold(getGpr(i.memBase), i.disp);
          case memSib: {
            s32 idx = getGpr(i.memIndex);
            s32 scaled =
                i.memScale ? emitI(IROp::Sll, idx, i.memScale) : idx;
            s32 base = emit(IROp::Add, getGpr(i.memBase), scaled);
            return fold(base, i.disp);
          }
          case memAbs:
            return {movi(i.disp), 0};
          default:
            panic("ea: bad memMode");
        }
    }

    /** Full effective address as a single value (LEA). */
    s32
    eaValue(const GInst &i)
    {
        auto [base, disp] = ea(i);
        return disp ? emitI(IROp::Add, base, disp) : base;
    }

    // --- exits -----------------------------------------------------------

    /** Materialize flags (if touched) and collect dirty locations. */
    std::vector<std::pair<u16, s32>>
    collectLiveOuts()
    {
        if (thunk.kind != Thunk::Kind::None) {
            setLoc(locFlagZ, getFlag(flagZ));
            setLoc(locFlagS, getFlag(flagS));
            setLoc(locFlagC, getFlag(flagC));
            setLoc(locFlagO, getFlag(flagO));
        }
        std::vector<std::pair<u16, s32>> outs;
        for (u16 loc = 0; loc < numLocs; ++loc) {
            if (locDirty[loc])
                outs.emplace_back(loc, locVal[loc]);
        }
        return outs;
    }

    u32
    makeExit(ExitKind kind, GAddr target, s32 target_val,
             u32 extra_insts, u32 extra_bbs)
    {
        IRExit x;
        x.kind = kind;
        x.target = target;
        x.targetVal = target_val;
        x.instsRetired = instsDone + extra_insts;
        x.bbsRetired = bbsDone + extra_bbs;
        x.liveOuts = collectLiveOuts();
        x.chainable = kind == ExitKind::Direct;
        r.exits.push_back(x);
        return u32(r.exits.size() - 1);
    }

    void
    condExit(s32 cond, bool invert, u32 exit_idx)
    {
        IRItem it;
        it.kind = IRItem::Kind::CondExit;
        it.cond = cond;
        it.condInvert = invert;
        it.exitIdx = exit_idx;
        r.items.push_back(it);
    }

    void
    assertCond(s32 cond, bool expect_nonzero)
    {
        IRInst i;
        i.op = IROp::Assert;
        i.src1 = cond;
        i.expectNonZero = expect_nonzero;
        i.assertId = nextAssertId++;
        i.guestPc = curPc;
        r.append(i);
        r.hasAsserts = true;
    }

    // --- instruction translation ------------------------------------------

    /** Translate one non-CTI instruction. */
    void translateBody(const GInst &i);

    /** Trig expansion shared by FSIN/FCOS. */
    s32
    trigExpand(s32 x, bool is_sin)
    {
        s32 inv = fconst(trig::invTwoPi);
        s32 t = emit(IROp::FMul, x, inv);
        s32 k = emit(IROp::FRnd, t);
        s32 tp = fconst(trig::twoPi);
        s32 m = emit(IROp::FMul, k, tp);
        s32 red = emit(IROp::FSub, x, m);
        s32 r2 = emit(IROp::FMul, red, red);
        const double *c = is_sin ? trig::sinC : trig::cosC;
        unsigned n = is_sin ? trig::sinTerms : trig::cosTerms;
        s32 p = fconst(c[n - 1]);
        for (int j = int(n) - 2; j >= 0; --j) {
            s32 pm = emit(IROp::FMul, p, r2);
            s32 ck = fconst(c[j]);
            p = emit(IROp::FAdd, pm, ck);
        }
        return is_sin ? emit(IROp::FMul, p, red) : p;
    }
};

void
Builder::translateBody(const GInst &i)
{
    using K = Thunk::Kind;

    auto aluRR = [&](IROp op, K tk) {
        s32 a = getGpr(i.rd);
        s32 b = getGpr(i.rs);
        s32 res = emit(op, a, b);
        setGpr(i.rd, res);
        Thunk t;
        t.kind = tk;
        t.a = a;
        t.b = b;
        t.r = res;
        setThunk(t);
    };
    auto aluRI = [&](IROp op, K tk) {
        s32 a = getGpr(i.rd);
        s32 res = emitI(op, a, i.imm);
        setGpr(i.rd, res);
        Thunk t;
        t.kind = tk;
        t.a = a;
        t.bImm = true;
        t.bImmVal = i.imm;
        t.r = res;
        setThunk(t);
    };

    switch (i.op) {
      case GOp::NOP:
        break;

      case GOp::MOVSB:
      case GOp::MOVSW:
      case GOp::STOSB:
      case GOp::STOSW: {
        darco_assert(!i.rep, "REP ops never reach translateBody");
        const bool isMov = i.op == GOp::MOVSB || i.op == GOp::MOVSW;
        const bool byte = i.info().memWidth == 1;
        s32 rdi = getGpr(RDI);
        s32 v;
        if (isMov) {
            s32 rsi = getGpr(RSI);
            v = load(byte ? IROp::Ld8u : IROp::Ld32, rsi, 0);
            setGpr(RSI, emitI(IROp::Add, rsi, byte ? 1 : 4));
        } else {
            v = getGpr(RAX);
        }
        store(byte ? IROp::St8 : IROp::St32, rdi, 0, v);
        setGpr(RDI, emitI(IROp::Add, rdi, byte ? 1 : 4));
        break;
      }

      case GOp::NOT: {
        s32 a = getGpr(i.rd);
        setGpr(i.rd, emitI(IROp::Xor, a, -1));
        break;
      }
      case GOp::NEG: {
        s32 a = getGpr(i.rd);
        s32 z = movi(0);
        s32 res = emit(IROp::Sub, z, a);
        setGpr(i.rd, res);
        Thunk t;
        t.kind = K::Neg;
        t.a = a;
        t.r = res;
        setThunk(t);
        break;
      }
      case GOp::INC:
      case GOp::DEC: {
        s32 cf_prev = getFlag(flagC); // capture before replacing thunk
        s32 a = getGpr(i.rd);
        bool inc = i.op == GOp::INC;
        s32 res = emitI(IROp::Add, a, inc ? 1 : -1);
        setGpr(i.rd, res);
        Thunk t;
        t.kind = K::IncDec;
        t.a = a;
        t.r = res;
        t.isInc = inc;
        t.cfVal = cf_prev;
        setThunk(t);
        break;
      }
      case GOp::PUSH: {
        s32 v = getGpr(i.rd);
        s32 sp = getGpr(RSP);
        store(IROp::St32, sp, -4, v);
        setGpr(RSP, emitI(IROp::Add, sp, -4));
        break;
      }
      case GOp::POP: {
        s32 sp = getGpr(RSP);
        s32 v = load(IROp::Ld32, sp, 0);
        setGpr(i.rd, v);
        setGpr(RSP, emitI(IROp::Add, getGpr(RSP), 4));
        break;
      }

      case GOp::MOV_RR:
        setGpr(i.rd, getGpr(i.rs));
        break;
      case GOp::MOV_RI:
        setGpr(i.rd, movi(i.imm));
        break;

      case GOp::ADD_RR:
        aluRR(IROp::Add, K::Add);
        break;
      case GOp::ADD_RI:
      case GOp::ADD_RI8:
        aluRI(IROp::Add, K::Add);
        break;
      case GOp::SUB_RR:
        aluRR(IROp::Sub, K::Sub);
        break;
      case GOp::SUB_RI:
        aluRI(IROp::Sub, K::Sub);
        break;
      case GOp::AND_RR:
        aluRR(IROp::And, K::Logic);
        break;
      case GOp::AND_RI:
        aluRI(IROp::And, K::Logic);
        break;
      case GOp::OR_RR:
        aluRR(IROp::Or, K::Logic);
        break;
      case GOp::OR_RI:
        aluRI(IROp::Or, K::Logic);
        break;
      case GOp::XOR_RR:
        aluRR(IROp::Xor, K::Logic);
        break;
      case GOp::XOR_RI:
        aluRI(IROp::Xor, K::Logic);
        break;

      case GOp::CMP_RR: {
        s32 a = getGpr(i.rd);
        s32 b = getGpr(i.rs);
        Thunk t;
        t.kind = K::Sub;
        t.a = a;
        t.b = b;
        setThunk(t);
        break;
      }
      case GOp::CMP_RI:
      case GOp::CMP_RI8: {
        s32 a = getGpr(i.rd);
        Thunk t;
        t.kind = K::Sub;
        t.a = a;
        t.bImm = true;
        t.bImmVal = i.imm;
        setThunk(t);
        break;
      }
      case GOp::TEST_RR: {
        s32 a = getGpr(i.rd);
        s32 b = getGpr(i.rs);
        s32 res = emit(IROp::And, a, b);
        Thunk t;
        t.kind = K::Logic;
        t.r = res;
        setThunk(t);
        break;
      }
      case GOp::TEST_RI: {
        s32 a = getGpr(i.rd);
        s32 res = emitI(IROp::And, a, i.imm);
        Thunk t;
        t.kind = K::Logic;
        t.r = res;
        setThunk(t);
        break;
      }

      case GOp::IMUL_RR:
      case GOp::IMUL_RI: {
        s32 a = getGpr(i.rd);
        s32 b, res, hi;
        if (i.op == GOp::IMUL_RR) {
            b = getGpr(i.rs);
            res = emit(IROp::Mul, a, b);
            hi = emit(IROp::MulH, a, b);
        } else {
            b = -1;
            res = emitI(IROp::Mul, a, i.imm);
            hi = emitI(IROp::MulH, a, i.imm);
        }
        setGpr(i.rd, res);
        Thunk t;
        t.kind = K::Mul;
        t.a = a;
        t.r = res;
        t.hi = hi;
        setThunk(t);
        break;
      }

      case GOp::IDIV_RR: {
        s32 a = getGpr(i.rd);
        s32 b = getGpr(i.rs);
        setGpr(i.rd, emit(IROp::Div, a, b));
        break;
      }
      case GOp::IREM_RR: {
        s32 a = getGpr(i.rd);
        s32 b = getGpr(i.rs);
        setGpr(i.rd, emit(IROp::Rem, a, b));
        break;
      }

      case GOp::SHL_RR:
      case GOp::SHR_RR:
      case GOp::SAR_RR: {
        s32 a = getGpr(i.rd);
        s32 s = getGpr(i.rs);
        IROp op = i.op == GOp::SHL_RR   ? IROp::Sll
                  : i.op == GOp::SHR_RR ? IROp::Srl
                                        : IROp::Sra;
        s32 res = emit(op, a, s);
        setGpr(i.rd, res);
        Thunk t;
        t.kind = i.op == GOp::SHL_RR ? K::ShiftL : K::ShiftR;
        t.a = a;
        t.r = res;
        t.shiftAmt = s;
        setThunk(t);
        break;
      }
      case GOp::SHL_RI8:
      case GOp::SHR_RI8:
      case GOp::SAR_RI8: {
        s32 a = getGpr(i.rd);
        s32 amt = i.imm & 31;
        IROp op = i.op == GOp::SHL_RI8   ? IROp::Sll
                  : i.op == GOp::SHR_RI8 ? IROp::Srl
                                         : IROp::Sra;
        s32 res = emitI(op, a, amt);
        setGpr(i.rd, res);
        Thunk t;
        t.kind = i.op == GOp::SHL_RI8 ? K::ShiftL : K::ShiftR;
        t.a = a;
        t.r = res;
        t.shiftImm = amt;
        setThunk(t);
        break;
      }

      // --- loads ----------------------------------------------------------
      case GOp::MOV_RM: {
        auto [b, d] = ea(i);
        setGpr(i.rd, load(IROp::Ld32, b, d));
        break;
      }
      case GOp::MOVZX8_RM: {
        auto [b, d] = ea(i);
        setGpr(i.rd, load(IROp::Ld8u, b, d));
        break;
      }
      case GOp::MOVZX16_RM: {
        auto [b, d] = ea(i);
        setGpr(i.rd, load(IROp::Ld16u, b, d));
        break;
      }
      case GOp::MOVSX8_RM: {
        auto [b, d] = ea(i);
        setGpr(i.rd, load(IROp::Ld8s, b, d));
        break;
      }
      case GOp::MOVSX16_RM: {
        auto [b, d] = ea(i);
        setGpr(i.rd, load(IROp::Ld16s, b, d));
        break;
      }
      case GOp::LEA:
        setGpr(i.rd, eaValue(i));
        break;
      case GOp::ADD_RM: {
        auto [b, d] = ea(i);
        s32 m = load(IROp::Ld32, b, d);
        s32 a = getGpr(i.rd);
        s32 res = emit(IROp::Add, a, m);
        setGpr(i.rd, res);
        Thunk t;
        t.kind = K::Add;
        t.a = a;
        t.b = m;
        t.r = res;
        setThunk(t);
        break;
      }
      case GOp::CMP_RM: {
        auto [b, d] = ea(i);
        s32 m = load(IROp::Ld32, b, d);
        s32 a = getGpr(i.rd);
        Thunk t;
        t.kind = K::Sub;
        t.a = a;
        t.b = m;
        setThunk(t);
        break;
      }

      // --- stores ----------------------------------------------------------
      case GOp::MOV_MR: {
        auto [b, d] = ea(i);
        store(IROp::St32, b, d, getGpr(i.rd));
        break;
      }
      case GOp::MOV8_MR: {
        auto [b, d] = ea(i);
        store(IROp::St8, b, d, getGpr(i.rd));
        break;
      }
      case GOp::MOV16_MR: {
        auto [b, d] = ea(i);
        store(IROp::St16, b, d, getGpr(i.rd));
        break;
      }
      case GOp::ADD_MR: {
        auto [b, d] = ea(i);
        s32 m = load(IROp::Ld32, b, d);
        s32 a = getGpr(i.rd);
        s32 res = emit(IROp::Add, m, a);
        store(IROp::St32, b, d, res);
        Thunk t;
        t.kind = K::Add;
        t.a = m;
        t.b = a;
        t.r = res;
        setThunk(t);
        break;
      }

      // --- conditional data --------------------------------------------------
      case GOp::SETCC:
        setGpr(i.rd, getCond(i.cond));
        break;
      case GOp::CMOVCC: {
        s32 c = getCond(i.cond);
        s32 z = movi(0);
        s32 mask = emit(IROp::Sub, z, c);
        s32 t1 = emit(IROp::And, getGpr(i.rs), mask);
        s32 nm = emitI(IROp::Xor, mask, -1);
        s32 t2 = emit(IROp::And, getGpr(i.rd), nm);
        setGpr(i.rd, emit(IROp::Or, t1, t2));
        break;
      }

      // --- floating point ------------------------------------------------------
      case GOp::FMOV:
        setFpr(i.rd, getFpr(i.rs));
        break;
      case GOp::FADD:
        setFpr(i.rd, emit(IROp::FAdd, getFpr(i.rd), getFpr(i.rs)));
        break;
      case GOp::FSUB:
        setFpr(i.rd, emit(IROp::FSub, getFpr(i.rd), getFpr(i.rs)));
        break;
      case GOp::FMUL:
        setFpr(i.rd, emit(IROp::FMul, getFpr(i.rd), getFpr(i.rs)));
        break;
      case GOp::FDIV:
        setFpr(i.rd, emit(IROp::FDiv, getFpr(i.rd), getFpr(i.rs)));
        break;
      case GOp::FSQRT:
        setFpr(i.rd, emit(IROp::FSqrt, getFpr(i.rs)));
        break;
      case GOp::FABS:
        setFpr(i.rd, emit(IROp::FAbs, getFpr(i.rs)));
        break;
      case GOp::FNEG:
        setFpr(i.rd, emit(IROp::FNeg, getFpr(i.rs)));
        break;
      case GOp::FSIN:
        setFpr(i.rd, trigExpand(getFpr(i.rs), true));
        break;
      case GOp::FCOS:
        setFpr(i.rd, trigExpand(getFpr(i.rs), false));
        break;
      case GOp::FCMP: {
        s32 a = getFpr(i.rd);
        s32 b = getFpr(i.rs);
        Thunk t;
        t.kind = K::Fcmp;
        t.a = a;
        t.b = b;
        setThunk(t);
        break;
      }
      case GOp::CVTIF:
        setFpr(i.rd, emit(IROp::FCvtWD, getGpr(i.rs)));
        break;
      case GOp::CVTFI:
        setGpr(i.rd, emit(IROp::FCvtZW, getFpr(i.rs)));
        break;
      case GOp::FLD: {
        auto [b, d] = ea(i);
        setFpr(i.rd, load(IROp::FLd, b, d));
        break;
      }
      case GOp::FST: {
        auto [b, d] = ea(i);
        store(IROp::FSt, b, d, getFpr(i.rd));
        break;
      }

      default:
        panic("translateBody: unexpected opcode ", gopName(i.op));
    }
}

} // namespace

Frontend::Frontend(const FrontendOptions &opts) : opts_(opts) {}

Region
Frontend::build(GAddr entry_pc, RegionMode mode,
                const std::vector<PathElem> &path,
                std::optional<TripCheck> trip,
                std::optional<EndSpec> end)
{
    darco_assert(!path.empty(), "empty translation path");
    Builder b(opts_);
    b.r.entryPc = entry_pc;
    b.r.mode = mode;
    b.curPc = entry_pc;

    if (trip) {
        // if (counter < factor) exit to IM at the entry pc: the
        // residual ("original loop") executes in the interpreter.
        s32 cnt = b.getGpr(trip->reg);
        s32 c = b.emitI(IROp::Sltu, cnt, s32(trip->factor));
        u32 x = b.makeExit(ExitKind::Interp, entry_pc, -1, 0, 0);
        b.condExit(c, false, x);
    }

    bool terminated = false;
    for (std::size_t k = 0; k < path.size(); ++k) {
        const PathElem &e = path[k];
        const GInst &i = e.inst;
        b.curPc = e.pc;
        darco_assert(!terminated, "path continues past terminator");

        if (!i.isCti()) {
            b.translateBody(i);
            ++b.instsDone;
            continue;
        }

        const GAddr next_pc = e.pc + i.length;
        switch (i.op) {
          case GOp::JMP_REL8:
          case GOp::JMP_REL32:
            if (e.disp == BranchDisp::ElideTaken) {
                ++b.instsDone;
                ++b.bbsDone;
            } else {
                u32 x = b.makeExit(ExitKind::Direct, i.target(e.pc), -1,
                                   1, 1);
                b.r.finalExit = x;
                terminated = true;
            }
            break;

          case GOp::CALL_REL32: {
            s32 ret = b.movi(s32(next_pc));
            s32 sp = b.getGpr(RSP);
            b.store(IROp::St32, sp, -4, ret);
            b.setGpr(RSP, b.emitI(IROp::Add, sp, -4));
            u32 x =
                b.makeExit(ExitKind::Direct, i.target(e.pc), -1, 1, 1);
            b.r.finalExit = x;
            terminated = true;
            break;
          }

          case GOp::CALLR: {
            s32 target = b.getGpr(i.rd);
            s32 ret = b.movi(s32(next_pc));
            s32 sp = b.getGpr(RSP);
            b.store(IROp::St32, sp, -4, ret);
            b.setGpr(RSP, b.emitI(IROp::Add, sp, -4));
            u32 x = b.makeExit(ExitKind::Indirect, 0, target, 1, 1);
            b.r.finalExit = x;
            terminated = true;
            break;
          }

          case GOp::JMPR: {
            s32 target = b.getGpr(i.rd);
            u32 x = b.makeExit(ExitKind::Indirect, 0, target, 1, 1);
            b.r.finalExit = x;
            terminated = true;
            break;
          }

          case GOp::RET: {
            s32 sp = b.getGpr(RSP);
            s32 target = b.load(IROp::Ld32, sp, 0);
            b.setGpr(RSP, b.emitI(IROp::Add, sp, 4));
            u32 x = b.makeExit(ExitKind::Indirect, 0, target, 1, 1);
            b.r.finalExit = x;
            terminated = true;
            break;
          }

          case GOp::SYSCALL: {
            u32 x = b.makeExit(ExitKind::Syscall, e.pc, -1, 0, 0);
            b.r.finalExit = x;
            terminated = true;
            break;
          }
          case GOp::HLT: {
            u32 x = b.makeExit(ExitKind::Halt, e.pc, -1, 0, 0);
            b.r.finalExit = x;
            terminated = true;
            break;
          }

          case GOp::JCC_REL8:
          case GOp::JCC_REL32: {
            const GAddr taken_pc = i.target(e.pc);
            switch (e.disp) {
              case BranchDisp::Final: {
                s32 c = b.getCond(i.cond);
                u32 xt =
                    b.makeExit(ExitKind::Direct, taken_pc, -1, 1, 1);
                b.condExit(c, false, xt);
                u32 xf =
                    b.makeExit(ExitKind::Direct, next_pc, -1, 1, 1);
                b.r.finalExit = xf;
                terminated = true;
                break;
              }
              case BranchDisp::AssertTaken: {
                s32 c = b.getCond(i.cond);
                b.assertCond(c, true);
                ++b.instsDone;
                ++b.bbsDone;
                break;
              }
              case BranchDisp::AssertNotTaken: {
                s32 c = b.getCond(i.cond);
                b.assertCond(c, false);
                ++b.instsDone;
                ++b.bbsDone;
                break;
              }
              case BranchDisp::ExitTaken: {
                s32 c = b.getCond(i.cond);
                u32 x =
                    b.makeExit(ExitKind::Direct, taken_pc, -1, 1, 1);
                b.condExit(c, false, x);
                ++b.instsDone;
                ++b.bbsDone;
                break;
              }
              case BranchDisp::ExitNotTaken: {
                s32 c = b.getCond(i.cond);
                u32 x =
                    b.makeExit(ExitKind::Direct, next_pc, -1, 1, 1);
                b.condExit(c, true, x);
                ++b.instsDone;
                ++b.bbsDone;
                break;
              }
              case BranchDisp::ElideTaken:
                ++b.instsDone;
                ++b.bbsDone;
                break;
            }
            break;
          }

          default:
            panic("unhandled CTI ", gopName(i.op));
        }
    }

    if (!terminated) {
        darco_assert(end.has_value(),
                     "path fell off the end without an EndSpec");
        u32 x = b.makeExit(end->kind, end->target, -1, 0, 0);
        b.r.finalExit = x;
    }

    std::string err = verifyRegion(b.r);
    darco_assert(err.empty(), "frontend produced invalid IR: ", err,
                 "\n", dumpRegion(b.r));
    return std::move(b.r);
}

} // namespace darco::tol
