/**
 * @file
 * SimPoint-style sampled simulation (Sherwood et al., ASPLOS'02),
 * built on DARCO's BBV profiler and checkpoint infrastructure.
 *
 * Detailed (timing + power) simulation of a full workload is the cost
 * the paper's evaluation methodology fights; sampled simulation runs
 * the detailed models only over a handful of *representative*
 * intervals and weight-combines their measurements into a
 * whole-program estimate. The pipeline:
 *
 *  1. BBV profiling — a functional run with tol.bbv_interval set
 *     collects one basic-block vector per fixed-length instruction
 *     interval (tol::Profiler attributes every retired instruction to
 *     the entry of the retiring region, so interval sums are exact);
 *  2. projection — each BBV is frequency-normalized, randomly
 *     projected to a low dimension (deterministic ±1 projection keyed
 *     by (seed, bb entry, dim), independent of discovery order), and
 *     L2-normalized;
 *  3. clustering — seeded k-means (k-means++ initialization off a
 *     fixed Rng stream, deterministic tie-breaking) swept over
 *     k = 1..maxK and scored with the BIC; the smallest k within
 *     bicTheta of the best score wins;
 *  4. selection — per cluster, the interval closest to the centroid
 *     becomes a simpoint, weighted by the cluster's *instruction*
 *     share of the program (not interval count), so the final
 *     partial interval contributes exactly its true fraction;
 *  5. checkpointing — one Controller pass saves a checkpoint at each
 *     simpoint's start (Controller::saveCheckpoint), so later
 *     detailed runs fast-forward by restoring instead of simulating.
 *
 * Every stage is deterministic for a fixed seed: repeated runs, runs
 * after a profiler snapshot round-trip, and runs on different worker
 * counts all produce identical simpoints.
 */

#ifndef DARCO_SAMPLING_SIMPOINT_HH
#define DARCO_SAMPLING_SIMPOINT_HH

#include <string>
#include <vector>

#include "common/config.hh"
#include "common/rng.hh"
#include "guest/program.hh"
#include "tol/profiler.hh"

namespace darco::sampling
{

/** A workload's interval-granular BBV profile. */
struct BbvProfile
{
    u64 interval = 0;   //!< guest instructions per interval
    u64 totalInsts = 0; //!< retired instructions covered
    /** Closed intervals plus the final partial one (if non-empty). */
    std::vector<tol::Profiler::BbvInterval> intervals;

    std::size_t numIntervals() const { return intervals.size(); }
};

/**
 * Read the collected profile out of a BBV-enabled Profiler
 * (tol.bbv_interval must have been set on that run's config).
 * Appends the open partial interval when non-empty.
 */
BbvProfile harvestBbv(const tol::Profiler &prof);

/**
 * Profile `prog` functionally: full run (standalone Tol, no timing)
 * with BBV collection at `interval`, up to `max_insts`.
 */
BbvProfile collectBbvProfile(const guest::Program &prog,
                             const Config &cfg, u64 interval,
                             u64 max_insts = ~0ull);

/** Clustering/selection knobs. */
struct SimPointOptions
{
    u64 interval = 100'000; //!< BBV interval length (guest insts)
    u32 maxK = 16;          //!< k-sweep upper bound
    u32 projDim = 16;       //!< random-projection dimensionality
    u32 kmeansIters = 64;   //!< Lloyd iteration cap
    u64 seed = 42;          //!< Rng stream for init; projection key
    /**
     * k selection: smallest k whose BIC reaches
     * bicMin + bicTheta * (bicMax - bicMin) over the sweep (the
     * SimPoint "90% of best BIC" rule, rescaled so it is robust to
     * negative scores).
     */
    double bicTheta = 0.9;
};

/** One representative interval. */
struct SimPoint
{
    u32 intervalIndex = 0; //!< which profiling interval
    u32 cluster = 0;
    double weight = 0;     //!< cluster instruction share, sums to 1
    u64 startInst = 0;     //!< intervalIndex * interval
};

/** Result of clustering + selection. */
struct SimPointResult
{
    std::vector<SimPoint> points; //!< sorted by intervalIndex
    u32 k = 0;                    //!< chosen cluster count
    double bic = 0;               //!< score of the chosen k
    std::vector<std::pair<u32, double>> bicSweep; //!< (k, BIC) tried
    std::vector<u32> assignment;  //!< per-interval cluster id
    u64 interval = 0;
    u64 totalInsts = 0;
};

/**
 * Project every interval's BBV: frequency-normalize, apply the
 * deterministic ±1 random projection keyed by `seed`, L2-normalize.
 */
std::vector<std::vector<double>> projectBbvs(const BbvProfile &profile,
                                             u32 dim, u64 seed);

/** Plain k-means (k-means++ init off `rng`, deterministic ties). */
struct KMeans
{
    std::vector<u32> assignment;
    std::vector<std::vector<double>> centroids;
    double sse = 0;
};
KMeans kmeans(const std::vector<std::vector<double>> &points, u32 k,
              Rng &rng, u32 iters);

/** BIC of a clustering (spherical-Gaussian likelihood, X-means). */
double bicScore(const KMeans &km,
                const std::vector<std::vector<double>> &points);

/** The full pipeline stages 2-4 over a collected profile. */
SimPointResult pickSimPoints(const BbvProfile &profile,
                             const SimPointOptions &opts);

/** One emitted simpoint checkpoint. */
struct SimPointCheckpoint
{
    u32 intervalIndex = 0;
    double weight = 0;
    u64 startInst = 0;  //!< nominal sample start
    u64 actualInst = 0; //!< saved position (quiesce may overshoot)
    std::string image;  //!< serialized Controller checkpoint
};

/**
 * Stage 5: one Controller pass over `prog` under `cfg`, saving a
 * checkpoint at every simpoint start (ascending). The saved position
 * can overshoot startInst by up to one region's remainder
 * (Tol::quiesce); consumers measure from actualInst and shorten the
 * window accordingly.
 */
std::vector<SimPointCheckpoint>
emitCheckpoints(const guest::Program &prog, const Config &cfg,
                const SimPointResult &sp);

} // namespace darco::sampling

#endif // DARCO_SAMPLING_SIMPOINT_HH
