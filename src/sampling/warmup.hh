/**
 * @file
 * Warm-up simulation methodology for HW/SW co-designed processors
 * (the paper's Section VI-E case study; Brankovic et al. [20]).
 *
 * Sampling-based simulation fast-forwards functionally to a sample,
 * warms up state, then collects detailed statistics. For co-designed
 * processors the *software-layer* state (translations, profile
 * counters) needs a warm-up 3-4 orders of magnitude longer than the
 * microarchitectural state — a mispredicted code region costs a
 * translation (thousands of cycles), not a cache miss (hundreds).
 *
 * The methodology here reproduces the paper's solution: *downscale
 * the promotion thresholds* during warm-up so code is promoted to
 * higher optimization levels quickly, then restore the original
 * thresholds while collecting statistics. An offline heuristic picks
 * the (scale factor, warm-up length) pair whose sample-window
 * execution distribution best matches the authoritative (full,
 * no-fast-forward) execution.
 */

#ifndef DARCO_SAMPLING_WARMUP_HH
#define DARCO_SAMPLING_WARMUP_HH

#include <vector>

#include "common/config.hh"
#include "guest/program.hh"

namespace darco::sampling
{

/** The sample to measure: guest instructions [skip, skip+length). */
struct SampleSpec
{
    u64 skip = 0;
    u64 length = 100'000;
};

/** One warm-up configuration candidate. */
struct WarmupCandidate
{
    u64 warmupLen = 0; //!< guest instructions simulated before sample
    u32 scale = 1;     //!< promotion-threshold downscale factor
};

/** Metrics collected over the sample window. */
struct SampleMetrics
{
    double imFrac = 0;   //!< guest-instruction share per mode
    double bbmFrac = 0;
    double sbmFrac = 0;
    double tolOverheadFrac = 0; //!< TOL overhead share of host stream
    u64 detailedInsts = 0; //!< warm-up + sample (the simulation cost)
    u64 ffInsts = 0;       //!< functional fast-forward insts executed
    u64 translationsAtSampleStart = 0;
    double ipc = 0;        //!< only when with_timing
};

/**
 * A reference-component snapshot at a shared fast-forward point, so a
 * candidate sweep pays the functional fast-forward once instead of
 * once per candidate (see pickWarmup). The image is a snapshot/io.hh
 * container holding a "ref" section.
 */
struct FastForwardCheckpoint
{
    u64 ffPoint = 0;   //!< guest-instruction count of the snapshot
    std::string image; //!< serialized RefComponent snapshot

    bool valid() const { return !image.empty(); }
};

/** Fast-forward `prog` to `ff_point` once and snapshot the state. */
FastForwardCheckpoint makeFastForwardCheckpoint(
    const guest::Program &prog, const Config &cfg, u64 ff_point);

/**
 * Run one sampled simulation: functional fast-forward to
 * (skip - warmup), warm up with thresholds downscaled by
 * `scale`, restore thresholds, measure the sample.
 *
 * warmupLen > skip is clamped (warm-up starts at program start).
 *
 * When `ckpt` is given and lies at or before this run's fast-forward
 * point, the reference component restores from it and only executes
 * the remaining (ff - ckpt->ffPoint) instructions; SampleMetrics::
 * ffInsts reports the fast-forward instructions actually executed.
 */
SampleMetrics runSample(const guest::Program &prog, const Config &cfg,
                        const SampleSpec &spec, u64 warmup_len,
                        u32 scale, bool with_timing = false,
                        const FastForwardCheckpoint *ckpt = nullptr);

/** The authoritative measurement: full detailed run, no fast-forward. */
SampleMetrics runAuthoritative(const guest::Program &prog,
                               const Config &cfg,
                               const SampleSpec &spec,
                               bool with_timing = false);

/** Mode-distribution distance (L1 on mode fractions; the paper's
 *  "execution distribution" correlation, lower is better). */
double modeError(const SampleMetrics &a, const SampleMetrics &b);

/** Offline heuristic result. */
struct HeuristicResult
{
    WarmupCandidate best;
    double bestError = 0;
    /** (candidate, error) for every configuration tried. */
    std::vector<std::pair<WarmupCandidate, double>> scores;
    SampleMetrics authoritative;
    /**
     * Fast-forward instructions actually executed across the whole
     * sweep (shared checkpoint + per-candidate deltas) vs what the
     * pre-checkpoint implementation would have executed (every
     * candidate fast-forwarding from instruction 0).
     */
    u64 ffInstsExecuted = 0;
    u64 ffInstsNaive = 0;
};

/**
 * The paper's offline heuristic: evaluate every candidate's sample
 * execution distribution against the authoritative distribution and
 * pick the best match (ties go to the cheaper configuration).
 *
 * The functional fast-forward is shared: one checkpoint is taken at
 * skip - max(warmupLen) and every candidate restores from it, paying
 * only its delta instead of re-running from instruction 0.
 */
HeuristicResult pickWarmup(const guest::Program &prog, const Config &cfg,
                           const SampleSpec &spec,
                           const std::vector<WarmupCandidate> &cands);

} // namespace darco::sampling

#endif // DARCO_SAMPLING_WARMUP_HH
