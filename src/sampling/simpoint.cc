#include "sampling/simpoint.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "sim/controller.hh"
#include "tol/tol.hh"

namespace darco::sampling
{

using namespace guest;

// ---------------------------------------------------------------------
// Profiling
// ---------------------------------------------------------------------

BbvProfile
harvestBbv(const tol::Profiler &prof)
{
    darco_assert(prof.bbvEnabled(),
                 "harvestBbv needs a BBV-enabled profiler "
                 "(set tol.bbv_interval)");
    BbvProfile p;
    p.interval = prof.bbvIntervalLen();
    p.totalInsts = prof.bbvTotalInsts();
    p.intervals = prof.bbvIntervals();
    tol::Profiler::BbvInterval part = prof.bbvPartial();
    if (part.insts > 0)
        p.intervals.push_back(std::move(part));
    return p;
}

BbvProfile
collectBbvProfile(const Program &prog, const Config &cfg, u64 interval,
                  u64 max_insts)
{
    Config pcfg = cfg;
    pcfg.set("tol.bbv_interval", s64(interval));

    PagedMemory mem(MissPolicy::AllocateZero);
    StatGroup stats("bbv");
    tol::Tol t(mem, pcfg, stats);
    t.setState(prog.load(mem));
    t.run(max_insts);
    return harvestBbv(t.profiler());
}

// ---------------------------------------------------------------------
// Projection
// ---------------------------------------------------------------------

namespace
{

/** SplitMix64 finalizer: the projection-matrix hash. */
u64
mix64(u64 x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Deterministic ±1 projection entry for (seed, bb entry, dim). */
double
projSign(u64 seed, GAddr entry, u32 dim)
{
    u64 h = mix64(seed ^ (u64(entry) * 0x100000001b3ULL + dim));
    return (h & 1) ? 1.0 : -1.0;
}

double
dist2(const std::vector<double> &a, const std::vector<double> &b)
{
    double s = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        double d = a[i] - b[i];
        s += d * d;
    }
    return s;
}

} // namespace

std::vector<std::vector<double>>
projectBbvs(const BbvProfile &profile, u32 dim, u64 seed)
{
    std::vector<std::vector<double>> out;
    out.reserve(profile.intervals.size());
    for (const tol::Profiler::BbvInterval &iv : profile.intervals) {
        // dim projected-BBV coordinates + one software-layer
        // coordinate (below).
        std::vector<double> v(dim + 1, 0.0);
        double total = iv.insts ? double(iv.insts) : 1.0;
        for (const auto &[entry, n] : iv.counts) {
            double f = double(n) / total;
            for (u32 d = 0; d < dim; ++d)
                v[d] += f * projSign(seed, entry, d);
        }
        double norm = 0;
        for (double x : v)
            norm += x * x;
        if (norm > 0) {
            norm = std::sqrt(norm);
            for (double &x : v)
                x /= norm;
        }
        // The TOL-activity dimension, appended after normalization:
        // the guest-code BBV cannot distinguish an interval that
        // paid a translation/recreation burst from one running the
        // same code out of warm translations, but their timing
        // differs by an order of magnitude. overhead/(overhead+insts)
        // is bounded in [0,1): ~0 in steady state, large in bursts —
        // comparable in scale to the unit-norm BBV part, so bursts
        // form their own clusters and carry only their true weight.
        v[dim] = double(iv.overhead) /
                 double(iv.overhead + std::max<u64>(iv.insts, 1));
        out.push_back(std::move(v));
    }
    return out;
}

// ---------------------------------------------------------------------
// k-means
// ---------------------------------------------------------------------

KMeans
kmeans(const std::vector<std::vector<double>> &points, u32 k, Rng &rng,
       u32 iters)
{
    KMeans km;
    std::size_t n = points.size();
    darco_assert(k >= 1 && k <= n, "kmeans: need 1 <= k <= n");
    std::size_t dim = points[0].size();

    // k-means++ seeding off the deterministic Rng stream.
    std::vector<std::vector<double>> &c = km.centroids;
    c.push_back(points[rng.range(0, n - 1)]);
    std::vector<double> d2(n, 0.0);
    while (c.size() < k) {
        double total = 0;
        for (std::size_t i = 0; i < n; ++i) {
            double best = std::numeric_limits<double>::max();
            for (const auto &cc : c)
                best = std::min(best, dist2(points[i], cc));
            d2[i] = best;
            total += best;
        }
        std::size_t pick = 0;
        if (total > 0) {
            double r = rng.uniform() * total;
            for (std::size_t i = 0; i < n; ++i) {
                r -= d2[i];
                if (r < 0) {
                    pick = i;
                    break;
                }
                pick = i; // floating-point tail: last index wins
            }
        } else {
            // All remaining points coincide with a centroid: any
            // choice yields the same clustering; take index 0.
            pick = 0;
        }
        c.push_back(points[pick]);
    }

    km.assignment.assign(n, 0);
    for (u32 it = 0; it < iters; ++it) {
        // Assign: strict < keeps the lowest centroid index on ties.
        bool changed = false;
        for (std::size_t i = 0; i < n; ++i) {
            u32 best = 0;
            double bestD = dist2(points[i], c[0]);
            for (u32 j = 1; j < k; ++j) {
                double d = dist2(points[i], c[j]);
                if (d < bestD) {
                    bestD = d;
                    best = j;
                }
            }
            if (km.assignment[i] != best) {
                km.assignment[i] = best;
                changed = true;
            }
        }
        if (!changed && it > 0)
            break;

        // Update.
        std::vector<std::vector<double>> sum(
            k, std::vector<double>(dim, 0.0));
        std::vector<u64> cnt(k, 0);
        for (std::size_t i = 0; i < n; ++i) {
            ++cnt[km.assignment[i]];
            for (std::size_t d = 0; d < dim; ++d)
                sum[km.assignment[i]][d] += points[i][d];
        }
        for (u32 j = 0; j < k; ++j) {
            if (cnt[j] == 0) {
                // Empty cluster: reseed to the point farthest from
                // its centroid (lowest index on ties).
                std::size_t far = 0;
                double farD = -1;
                for (std::size_t i = 0; i < n; ++i) {
                    double d =
                        dist2(points[i], c[km.assignment[i]]);
                    if (d > farD) {
                        farD = d;
                        far = i;
                    }
                }
                c[j] = points[far];
                continue;
            }
            for (std::size_t d = 0; d < dim; ++d)
                c[j][d] = sum[j][d] / double(cnt[j]);
        }
    }

    km.sse = 0;
    for (std::size_t i = 0; i < n; ++i)
        km.sse += dist2(points[i], c[km.assignment[i]]);
    return km;
}

double
bicScore(const KMeans &km,
         const std::vector<std::vector<double>> &points)
{
    double n = double(points.size());
    double d = double(points[0].size());
    double k = double(km.centroids.size());

    std::vector<u64> sizes(km.centroids.size(), 0);
    for (u32 a : km.assignment)
        ++sizes[a];

    // Spherical-Gaussian MLE variance (Pelleg & Moore, X-means).
    double var = n > k ? km.sse / (d * (n - k)) : 0.0;
    var = std::max(var, 1e-12);

    double ll = 0;
    for (u64 sz : sizes)
        if (sz > 0)
            ll += double(sz) * std::log(double(sz));
    ll -= n * std::log(n);
    ll -= n * d / 2.0 * std::log(2.0 * M_PI * var);
    ll -= d * (n - k) / 2.0;

    double params = k * (d + 1.0);
    return ll - params / 2.0 * std::log(n);
}

// ---------------------------------------------------------------------
// Selection
// ---------------------------------------------------------------------

SimPointResult
pickSimPoints(const BbvProfile &profile, const SimPointOptions &opts)
{
    SimPointResult r;
    r.interval = profile.interval;
    r.totalInsts = profile.totalInsts;
    std::size_t n = profile.intervals.size();
    if (n == 0)
        return r;

    std::vector<std::vector<double>> pts =
        projectBbvs(profile, opts.projDim, opts.seed);

    // k sweep. Each k gets its own seeded Rng stream so a sweep with
    // a different maxK still produces identical per-k clusterings.
    u32 kmax = u32(std::min<std::size_t>(opts.maxK, n));
    std::vector<KMeans> runs;
    double bicMin = 0, bicMax = 0;
    for (u32 k = 1; k <= kmax; ++k) {
        Rng rng(opts.seed ^ (u64(k) * 0x9e3779b97f4a7c15ULL));
        runs.push_back(kmeans(pts, k, rng, opts.kmeansIters));
        double bic = bicScore(runs.back(), pts);
        r.bicSweep.emplace_back(k, bic);
        if (k == 1) {
            bicMin = bicMax = bic;
        } else {
            bicMin = std::min(bicMin, bic);
            bicMax = std::max(bicMax, bic);
        }
    }

    double threshold = bicMin + opts.bicTheta * (bicMax - bicMin);
    u32 chosen = 1;
    for (const auto &[k, bic] : r.bicSweep) {
        if (bic >= threshold) {
            chosen = k;
            break;
        }
    }

    const KMeans &km = runs[chosen - 1];
    r.k = chosen;
    r.bic = r.bicSweep[chosen - 1].second;
    r.assignment = km.assignment;

    // Representatives: closest interval to each centroid; weights by
    // instruction share so the final (partial) interval contributes
    // its true fraction of the program.
    for (u32 j = 0; j < chosen; ++j) {
        std::size_t best = n; // sentinel: empty cluster
        double bestD = std::numeric_limits<double>::max();
        u64 clusterInsts = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (km.assignment[i] != j)
                continue;
            clusterInsts += profile.intervals[i].insts;
            double d = dist2(pts[i], km.centroids[j]);
            if (d < bestD) {
                bestD = d;
                best = i;
            }
        }
        if (best == n)
            continue;
        SimPoint p;
        p.intervalIndex = u32(best);
        p.cluster = j;
        p.weight = profile.totalInsts
                       ? double(clusterInsts) / double(profile.totalInsts)
                       : 0.0;
        p.startInst = u64(best) * profile.interval;
        r.points.push_back(p);
    }
    std::sort(r.points.begin(), r.points.end(),
              [](const SimPoint &a, const SimPoint &b) {
                  return a.intervalIndex < b.intervalIndex;
              });
    return r;
}

// ---------------------------------------------------------------------
// Checkpoint emission
// ---------------------------------------------------------------------

std::vector<SimPointCheckpoint>
emitCheckpoints(const Program &prog, const Config &cfg,
                const SimPointResult &sp)
{
    std::vector<SimPointCheckpoint> out;
    sim::Controller ctl(cfg);
    ctl.load(prog);
    for (const SimPoint &p : sp.points) {
        u64 done = ctl.tol().completedInsts();
        if (p.startInst > done && !ctl.finished())
            ctl.run(p.startInst - done);
        std::ostringstream os;
        ctl.saveCheckpoint(os);
        SimPointCheckpoint c;
        c.intervalIndex = p.intervalIndex;
        c.weight = p.weight;
        c.startInst = p.startInst;
        c.actualInst = ctl.tol().completedInsts();
        c.image = os.str();
        out.push_back(std::move(c));
    }
    return out;
}

} // namespace darco::sampling
