#include "sampling/warmup.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/schema.hh"
#include "timing/core.hh"
#include "tol/tol.hh"
#include "xemu/ref_component.hh"

namespace darco::sampling
{

using namespace guest;

namespace
{

/** Snapshot of mode counters for window deltas. */
struct ModeSnap
{
    u64 im, bbm, sbm, hostApp, overhead;

    static ModeSnap
    of(tol::Tol &t)
    {
        StatGroup &s = t.stats();
        return ModeSnap{
            s.value("tol.guest_im"),
            s.value("tol.guest_bbm"),
            s.value("tol.guest_sbm"),
            s.value("tol.host_app_bbm") + s.value("tol.host_app_sbm"),
            t.costModel().totalAll(),
        };
    }
};

/**
 * Measure one window on a prepared Tol. Mode fractions are deltas
 * between snapshots.
 */
void
measureWindow(tol::Tol &t, u64 length, SampleMetrics &m,
              timing::InOrderCore *core)
{
    ModeSnap before = ModeSnap::of(t);
    u64 cyc0 = 0, ins0 = 0;
    if (core) {
        cyc0 = core->cycles();
        ins0 = core->instructions();
    }

    t.run(length);

    ModeSnap after = ModeSnap::of(t);
    double im = double(after.im - before.im);
    double bbm = double(after.bbm - before.bbm);
    double sbm = double(after.sbm - before.sbm);
    double total = std::max(1.0, im + bbm + sbm);
    m.imFrac = im / total;
    m.bbmFrac = bbm / total;
    m.sbmFrac = sbm / total;
    double host_app = double(after.hostApp - before.hostApp);
    double ov = double(after.overhead - before.overhead);
    m.tolOverheadFrac = (host_app + ov) > 0 ? ov / (host_app + ov) : 0;
    if (core) {
        u64 dc = core->cycles() - cyc0;
        u64 di = core->instructions() - ins0;
        m.ipc = dc ? double(di) / double(dc) : 0;
    }
}

} // namespace

FastForwardCheckpoint
makeFastForwardCheckpoint(const Program &prog, const Config &cfg,
                          u64 ff_point)
{
    xemu::RefComponent ref(conf::getUint(cfg, "seed"));
    ref.load(prog);
    ref.runUntilInstCount(ff_point);
    FastForwardCheckpoint ckpt;
    ckpt.ffPoint = ff_point;
    std::ostringstream os;
    xemu::saveRefSnapshot(os, ref);
    ckpt.image = os.str();
    return ckpt;
}

SampleMetrics
runSample(const Program &prog, const Config &cfg,
          const SampleSpec &spec, u64 warmup_len, u32 scale,
          bool with_timing, const FastForwardCheckpoint *ckpt)
{
    SampleMetrics m;
    warmup_len = std::min(warmup_len, spec.skip);
    u64 ff = spec.skip - warmup_len;

    // Functional fast-forward in the reference component (the cheap
    // part of sampled simulation) — from a shared checkpoint when one
    // covers this run's fast-forward point.
    xemu::RefComponent ref(conf::getUint(cfg, "seed"));
    if (ckpt && ckpt->valid() && ckpt->ffPoint <= ff) {
        std::istringstream is(ckpt->image);
        xemu::restoreRefSnapshot(is, ref);
        m.ffInsts = ff - ckpt->ffPoint;
    } else {
        ref.load(prog);
        m.ffInsts = ff;
    }
    ref.runUntilInstCount(ff);

    // Seed a co-designed instance with the fast-forward state.
    PagedMemory mem(MissPolicy::AllocateZero);
    for (GAddr page : ref.memory().residentPages())
        mem.installPage(page, ref.memory().page(page));
    StatGroup stats("sample");
    tol::Tol t(mem, cfg, stats);
    t.setState(ref.state());

    StatGroup tstats("timing");
    std::unique_ptr<timing::InOrderCore> core;
    if (with_timing) {
        core = std::make_unique<timing::InOrderCore>(cfg, tstats);
        t.setTraceSink(core.get());
    }

    // Warm-up with downscaled thresholds (the methodology's key move).
    t.scaleThresholds(scale);
    t.run(warmup_len);
    t.scaleThresholds(1);

    m.translationsAtSampleStart = t.translationCount();
    measureWindow(t, spec.length, m, core.get());
    m.detailedInsts = warmup_len + spec.length;
    return m;
}

SampleMetrics
runAuthoritative(const Program &prog, const Config &cfg,
                 const SampleSpec &spec, bool with_timing)
{
    SampleMetrics m;
    PagedMemory mem(MissPolicy::AllocateZero);
    StatGroup stats("auth");
    tol::Tol t(mem, cfg, stats);
    t.setState(prog.load(mem));

    StatGroup tstats("timing");
    std::unique_ptr<timing::InOrderCore> core;
    if (with_timing) {
        core = std::make_unique<timing::InOrderCore>(cfg, tstats);
        t.setTraceSink(core.get());
    }

    t.run(spec.skip);
    m.translationsAtSampleStart = t.translationCount();
    measureWindow(t, spec.length, m, core.get());
    m.detailedInsts = spec.skip + spec.length;
    return m;
}

double
modeError(const SampleMetrics &a, const SampleMetrics &b)
{
    return std::fabs(a.imFrac - b.imFrac) +
           std::fabs(a.bbmFrac - b.bbmFrac) +
           std::fabs(a.sbmFrac - b.sbmFrac);
}

HeuristicResult
pickWarmup(const Program &prog, const Config &cfg,
           const SampleSpec &spec,
           const std::vector<WarmupCandidate> &cands)
{
    HeuristicResult r;
    r.authoritative = runAuthoritative(prog, cfg, spec, false);

    // Share the functional fast-forward: snapshot the reference
    // component at the earliest point any candidate needs
    // (skip - max warm-up length) and let every candidate restore
    // from it, so the common prefix is simulated once, not per
    // candidate.
    u64 max_warmup = 0;
    for (const WarmupCandidate &c : cands)
        max_warmup = std::max(max_warmup, c.warmupLen);
    max_warmup = std::min(max_warmup, spec.skip);
    FastForwardCheckpoint ckpt = makeFastForwardCheckpoint(
        prog, cfg, spec.skip - max_warmup);
    r.ffInstsExecuted = ckpt.ffPoint;

    bool first = true;
    for (const WarmupCandidate &c : cands) {
        SampleMetrics m = runSample(prog, cfg, spec, c.warmupLen,
                                    c.scale, false, &ckpt);
        r.ffInstsExecuted += m.ffInsts;
        r.ffInstsNaive += spec.skip - std::min(c.warmupLen, spec.skip);
        double err = modeError(m, r.authoritative);
        r.scores.emplace_back(c, err);
        // Within-noise ties go to the cheaper configuration: the
        // whole point of the methodology is minimum simulation cost
        // at equivalent fidelity.
        constexpr double noise = 0.005;
        bool better =
            first || err < r.bestError - noise ||
            (err <= r.bestError + noise &&
             c.warmupLen < r.best.warmupLen);
        if (better) {
            r.best = c;
            r.bestError = err;
            first = false;
        }
    }
    return r;
}

} // namespace darco::sampling
