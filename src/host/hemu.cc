#include "host/hemu.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/schema.hh"
#include "guest/semantics.hh"

namespace darco::host
{

using guest::PageMiss;

namespace
{

/** Power-of-two check for the IBTC size. */
constexpr bool
isPow2(u32 v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

InstClass
classify(HOp op)
{
    switch (op) {
      case HOp::MUL:
      case HOp::MULH:
        return InstClass::IntMul;
      case HOp::DIV:
      case HOp::REM:
        return InstClass::IntDiv;
      case HOp::FADD:
      case HOp::FSUB:
      case HOp::FABS:
      case HOp::FNEG:
      case HOp::FMOV:
      case HOp::FRND:
      case HOp::FCVTWD:
      case HOp::FCVTZW:
      case HOp::FEQ:
      case HOp::FLT:
      case HOp::FLE:
        return InstClass::FpAlu;
      case HOp::FMUL:
        return InstClass::FpMul;
      case HOp::FDIV:
      case HOp::FSQRT:
        return InstClass::FpDiv;
      case HOp::LB:
      case HOp::LBU:
      case HOp::LH:
      case HOp::LHU:
      case HOp::LW:
      case HOp::LWS:
      case HOp::FLD:
      case HOp::FLDS:
      case HOp::LWL:
      case HOp::FLDL:
      case HOp::FLDC:
        return InstClass::Load;
      case HOp::SB:
      case HOp::SH:
      case HOp::SW:
      case HOp::FST:
      case HOp::SBC:
      case HOp::SHC:
      case HOp::SWC:
      case HOp::FSTC:
      case HOp::SWL:
      case HOp::FSTL:
        return InstClass::Store;
      case HOp::BEQ:
      case HOp::BNE:
      case HOp::BLT:
      case HOp::BGE:
      case HOp::BLTU:
      case HOp::BGEU:
        return InstClass::Branch;
      case HOp::J:
      case HOp::IBTC:
      case HOp::EXITB:
        return InstClass::Jump;
      case HOp::CKPT:
      case HOp::COMMIT:
      case HOp::ASSERTZ:
      case HOp::ASSERTNZ:
      case HOp::RETIRE:
        return InstClass::Other;
      default:
        return InstClass::IntAlu;
    }
}

IbtcTable::IbtcTable(u32 entries)
{
    darco_assert(isPow2(entries), "IBTC size must be a power of two");
    entries_.resize(entries);
    mask_ = entries - 1;
}

bool
IbtcTable::lookup(GAddr guest_pc, u32 &host_pc) const
{
    const Entry &e = entries_[index(guest_pc)];
    if (e.tag == guest_pc) {
        ++hits_;
        host_pc = e.hostPc;
        return true;
    }
    ++misses_;
    return false;
}

void
IbtcTable::insert(GAddr guest_pc, u32 host_pc)
{
    entries_[index(guest_pc)] = Entry{guest_pc, host_pc};
}

void
IbtcTable::invalidate(GAddr guest_pc)
{
    Entry &e = entries_[index(guest_pc)];
    if (e.tag == guest_pc)
        e = Entry{};
}

void
IbtcTable::invalidateHostRange(u32 base, u32 words)
{
    for (auto &e : entries_) {
        if (e.tag != ~0u && e.hostPc >= base && e.hostPc < base + words)
            e = Entry{};
    }
}

void
IbtcTable::clear()
{
    for (auto &e : entries_)
        e = Entry{};
}

HostEmu::HostEmu(CodeCache &cache, guest::PagedMemory &guest_mem,
                 const Config &cfg)
    : cache_(cache),
      mem_(&guest_mem),
      ibtc_(u32(conf::getUint(cfg, "hemu.ibtc_entries"))),
      localMem_(conf::getUint(cfg, "hemu.local_mem_bytes"), 0),
      ibtcHitCost_(u32(conf::getUint(cfg, "hemu.ibtc_hit_cost")))
{
}

void
HostEmu::loadGuestState(const guest::CpuState &st)
{
    using namespace regmap;
    for (unsigned i = 0; i < guest::numGRegs; ++i)
        ctx_.gpr[guestGprBase + i] = st.gpr[i];
    ctx_.gpr[flagZ] = (st.flags & guest::flagZ) ? 1 : 0;
    ctx_.gpr[flagS] = (st.flags & guest::flagS) ? 1 : 0;
    ctx_.gpr[flagC] = (st.flags & guest::flagC) ? 1 : 0;
    ctx_.gpr[flagO] = (st.flags & guest::flagO) ? 1 : 0;
    for (unsigned i = 0; i < guest::numFRegs; ++i)
        ctx_.fpr[guestFprBase + i] = st.fpr[i];
}

void
HostEmu::storeGuestState(guest::CpuState &st) const
{
    using namespace regmap;
    for (unsigned i = 0; i < guest::numGRegs; ++i)
        st.gpr[i] = ctx_.gpr[guestGprBase + i];
    u8 f = 0;
    if (ctx_.gpr[flagZ])
        f |= guest::flagZ;
    if (ctx_.gpr[flagS])
        f |= guest::flagS;
    if (ctx_.gpr[flagC])
        f |= guest::flagC;
    if (ctx_.gpr[flagO])
        f |= guest::flagO;
    st.flags = f;
    for (unsigned i = 0; i < guest::numFRegs; ++i)
        st.fpr[i] = ctx_.fpr[guestFprBase + i];
}

u32
HostEmu::readLocal32(u32 addr) const
{
    // u64 arithmetic: addr + 4 must not wrap for addresses near 2^32.
    darco_assert(u64(addr) + 4 <= localMem_.size(),
                 "local mem OOB read");
    u32 v;
    __builtin_memcpy(&v, localMem_.data() + addr, 4);
    return v;
}

void
HostEmu::writeLocal32(u32 addr, u32 v)
{
    darco_assert(u64(addr) + 4 <= localMem_.size(),
                 "local mem OOB write");
    __builtin_memcpy(localMem_.data() + addr, &v, 4);
}

void
HostEmu::rollback()
{
    if (speculative_) {
        ctx_ = ckpt_;
        storeBuf_.clear();
        specLoads_.clear();
        speculative_ = false;
        ++rollbacks_;
    }
}

u8
HostEmu::specRead8(GAddr a)
{
    if (speculative_) {
        auto it = storeBuf_.find(a);
        if (it != storeBuf_.end())
            return it->second;
    }
    return mem_->read8(a);
}

void
HostEmu::specWrite8(GAddr a, u8 v)
{
    storeBuf_[a] = v;
}

u32
HostEmu::specRead(GAddr a, unsigned size)
{
    if (!speculative_ || storeBuf_.empty()) {
        switch (size) {
          case 1: return mem_->read8(a);
          case 2: return mem_->read16(a);
          default: return mem_->read32(a);
        }
    }
    u32 v = 0;
    for (unsigned i = 0; i < size; ++i)
        v |= u32(specRead8(a + i)) << (8 * i);
    return v;
}

void
HostEmu::specWrite(GAddr a, u32 v, unsigned size)
{
    if (!speculative_) {
        switch (size) {
          case 1: mem_->write8(a, u8(v)); return;
          case 2: mem_->write16(a, u16(v)); return;
          default: mem_->write32(a, v); return;
        }
    }
    probePages(a, size);
    for (unsigned i = 0; i < size; ++i)
        specWrite8(a + i, u8(v >> (8 * i)));
}

u64
HostEmu::specRead64(GAddr a)
{
    if (!speculative_ || storeBuf_.empty())
        return mem_->read64(a);
    u64 v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= u64(specRead8(a + i)) << (8 * i);
    return v;
}

void
HostEmu::specWrite64(GAddr a, u64 v)
{
    if (!speculative_) {
        mem_->write64(a, v);
        return;
    }
    probePages(a, 8);
    for (unsigned i = 0; i < 8; ++i)
        specWrite8(a + i, u8(v >> (8 * i)));
}

void
HostEmu::probePages(GAddr a, unsigned size)
{
    if (!mem_->hasPage(a))
        throw PageMiss{pageBase(a)};
    GAddr last = a + size - 1;
    if (pageBase(last) != pageBase(a) && !mem_->hasPage(last))
        throw PageMiss{pageBase(last)};
}

bool
HostEmu::aliasesSpecLoad(GAddr a, unsigned size) const
{
    for (const SpecLoad &l : specLoads_) {
        if (a < l.addr + l.size && l.addr < a + size)
            return true;
    }
    return false;
}

ExitInfo
HostEmu::run(u32 host_pc, u64 max_insts)
{
    ExitInfo exit;
    u64 n = 0;
    u32 pc = host_pc;
    auto &gpr = ctx_.gpr;
    auto &fpr = ctx_.fpr;

    auto finish = [&](ExitKind k) -> ExitInfo & {
        exit.kind = k;
        exit.instsExecuted = n;
        totalInsts_ += n;
        ctx_.pc = pc;
        return exit;
    };

    auto setReg = [&](u8 rd, u32 v) {
        gpr[rd] = v;
        gpr[0] = 0;
    };

    try {
        for (;;) {
            if (n >= max_insts)
                return finish(ExitKind::Budget);

            const HInst i = hdecode(cache_.word(pc));
            u32 next = pc + 1;
            ++n;
            ++sinceMark_;

            InstRecord rec;
            const bool tracing = sink_ != nullptr;
            if (tracing) {
                rec.pc = pc * 4;
                rec.cls = classify(i.op);
                rec.isFp = i.info().isFp;
                fillRegs(i, rec);
            }

            switch (i.op) {
              case HOp::NOP:
                break;

              // --- integer ALU, R-format ---
              case HOp::ADD:
                setReg(i.rd, gpr[i.rs1] + gpr[i.rs2]);
                break;
              case HOp::SUB:
                setReg(i.rd, gpr[i.rs1] - gpr[i.rs2]);
                break;
              case HOp::MUL:
                setReg(i.rd, u32(s64(s32(gpr[i.rs1])) *
                                 s64(s32(gpr[i.rs2]))));
                break;
              case HOp::MULH:
                setReg(i.rd, u32(u64(s64(s32(gpr[i.rs1])) *
                                     s64(s32(gpr[i.rs2]))) >> 32));
                break;
              case HOp::DIV:
              case HOp::REM: {
                s32 a = s32(gpr[i.rs1]);
                s32 b = s32(gpr[i.rs2]);
                if (b == 0 || (a == s32(0x80000000) && b == -1)) {
                    bool was_spec = speculative_;
                    rollback();
                    if (was_spec)
                        pc = ctx_.pc; // resume point = checkpoint
                    return finish(ExitKind::DivFault);
                }
                setReg(i.rd, i.op == HOp::DIV ? u32(a / b) : u32(a % b));
                break;
              }
              case HOp::AND:
                setReg(i.rd, gpr[i.rs1] & gpr[i.rs2]);
                break;
              case HOp::OR:
                setReg(i.rd, gpr[i.rs1] | gpr[i.rs2]);
                break;
              case HOp::XOR:
                setReg(i.rd, gpr[i.rs1] ^ gpr[i.rs2]);
                break;
              case HOp::SLL:
                setReg(i.rd, gpr[i.rs1] << (gpr[i.rs2] & 31));
                break;
              case HOp::SRL:
                setReg(i.rd, gpr[i.rs1] >> (gpr[i.rs2] & 31));
                break;
              case HOp::SRA:
                setReg(i.rd, u32(s32(gpr[i.rs1]) >> (gpr[i.rs2] & 31)));
                break;
              case HOp::SLT:
                setReg(i.rd, s32(gpr[i.rs1]) < s32(gpr[i.rs2]) ? 1 : 0);
                break;
              case HOp::SLTU:
                setReg(i.rd, gpr[i.rs1] < gpr[i.rs2] ? 1 : 0);
                break;
              case HOp::SEQ:
                setReg(i.rd, gpr[i.rs1] == gpr[i.rs2] ? 1 : 0);
                break;
              case HOp::SNE:
                setReg(i.rd, gpr[i.rs1] != gpr[i.rs2] ? 1 : 0);
                break;
              case HOp::SGE:
                setReg(i.rd, s32(gpr[i.rs1]) >= s32(gpr[i.rs2]) ? 1 : 0);
                break;
              case HOp::SGEU:
                setReg(i.rd, gpr[i.rs1] >= gpr[i.rs2] ? 1 : 0);
                break;

              // --- integer ALU, I-format ---
              case HOp::ADDI:
                setReg(i.rd, gpr[i.rs1] + u32(i.imm));
                break;
              case HOp::ANDI:
                setReg(i.rd, gpr[i.rs1] & (u32(i.imm) & 0x3fff));
                break;
              case HOp::ORI:
                setReg(i.rd, gpr[i.rs1] | (u32(i.imm) & 0x3fff));
                break;
              case HOp::XORI:
                setReg(i.rd, gpr[i.rs1] ^ (u32(i.imm) & 0x3fff));
                break;
              case HOp::SLLI:
                setReg(i.rd, gpr[i.rs1] << (i.imm & 31));
                break;
              case HOp::SRLI:
                setReg(i.rd, gpr[i.rs1] >> (i.imm & 31));
                break;
              case HOp::SRAI:
                setReg(i.rd, u32(s32(gpr[i.rs1]) >> (i.imm & 31)));
                break;
              case HOp::SLTI:
                setReg(i.rd, s32(gpr[i.rs1]) < i.imm ? 1 : 0);
                break;
              case HOp::SEQI:
                setReg(i.rd,
                       gpr[i.rs1] == (u32(i.imm) & 0x3fff) ? 1 : 0);
                break;
              case HOp::SNEI:
                setReg(i.rd,
                       gpr[i.rs1] != (u32(i.imm) & 0x3fff) ? 1 : 0);
                break;
              case HOp::LUI:
                setReg(i.rd, u32(i.imm) << 13);
                break;

              // --- guest memory ---
              case HOp::LB: {
                GAddr a = gpr[i.rs1] + u32(i.imm);
                if (tracing) { rec.memAddr = a; rec.memSize = 1; }
                setReg(i.rd, u32(s32(s8(specRead(a, 1)))));
                break;
              }
              case HOp::LBU: {
                GAddr a = gpr[i.rs1] + u32(i.imm);
                if (tracing) { rec.memAddr = a; rec.memSize = 1; }
                setReg(i.rd, specRead(a, 1));
                break;
              }
              case HOp::LH: {
                GAddr a = gpr[i.rs1] + u32(i.imm);
                if (tracing) { rec.memAddr = a; rec.memSize = 2; }
                setReg(i.rd, u32(s32(s16(specRead(a, 2)))));
                break;
              }
              case HOp::LHU: {
                GAddr a = gpr[i.rs1] + u32(i.imm);
                if (tracing) { rec.memAddr = a; rec.memSize = 2; }
                setReg(i.rd, specRead(a, 2));
                break;
              }
              case HOp::LW: {
                GAddr a = gpr[i.rs1] + u32(i.imm);
                if (tracing) { rec.memAddr = a; rec.memSize = 4; }
                setReg(i.rd, specRead(a, 4));
                break;
              }
              case HOp::LWS: {
                GAddr a = gpr[i.rs1] + u32(i.imm);
                if (tracing) { rec.memAddr = a; rec.memSize = 4; }
                setReg(i.rd, specRead(a, 4));
                if (speculative_)
                    specLoads_.push_back(SpecLoad{a, 4});
                break;
              }
              case HOp::FLD: {
                GAddr a = gpr[i.rs1] + u32(i.imm);
                if (tracing) { rec.memAddr = a; rec.memSize = 8; }
                u64 b = specRead64(a);
                double d;
                __builtin_memcpy(&d, &b, 8);
                fpr[i.rd] = d;
                break;
              }
              case HOp::FLDS: {
                GAddr a = gpr[i.rs1] + u32(i.imm);
                if (tracing) { rec.memAddr = a; rec.memSize = 8; }
                u64 b = specRead64(a);
                double d;
                __builtin_memcpy(&d, &b, 8);
                fpr[i.rd] = d;
                if (speculative_)
                    specLoads_.push_back(SpecLoad{a, 8});
                break;
              }
              case HOp::SB:
              case HOp::SH:
              case HOp::SW:
              case HOp::SBC:
              case HOp::SHC:
              case HOp::SWC: {
                unsigned size =
                    (i.op == HOp::SB || i.op == HOp::SBC)   ? 1
                    : (i.op == HOp::SH || i.op == HOp::SHC) ? 2
                                                            : 4;
                const bool checked = i.op == HOp::SBC ||
                                     i.op == HOp::SHC ||
                                     i.op == HOp::SWC;
                GAddr a = gpr[i.rs1] + u32(i.imm);
                if (tracing) { rec.memAddr = a; rec.memSize = u8(size); }
                if (checked && speculative_ &&
                    aliasesSpecLoad(a, size)) {
                    rollback();
                    pc = ctx_.pc;
                    return finish(ExitKind::AliasFail);
                }
                specWrite(a, gpr[i.rs2], size);
                break;
              }
              case HOp::FST:
              case HOp::FSTC: {
                GAddr a = gpr[i.rs1] + u32(i.imm);
                if (tracing) { rec.memAddr = a; rec.memSize = 8; }
                if (i.op == HOp::FSTC && speculative_ &&
                    aliasesSpecLoad(a, 8)) {
                    rollback();
                    pc = ctx_.pc;
                    return finish(ExitKind::AliasFail);
                }
                u64 b;
                double d = fpr[i.rs2];
                __builtin_memcpy(&b, &d, 8);
                specWrite64(a, b);
                break;
              }

              // --- TOL-local memory ---
              case HOp::LWL: {
                u32 a = gpr[i.rs1] + u32(i.imm);
                if (tracing) {
                    rec.memAddr = 0xf800'0000u + a;
                    rec.memSize = 4;
                }
                setReg(i.rd, readLocal32(a));
                break;
              }
              case HOp::SWL: {
                u32 a = gpr[i.rs1] + u32(i.imm);
                if (tracing) {
                    rec.memAddr = 0xf800'0000u + a;
                    rec.memSize = 4;
                }
                writeLocal32(a, gpr[i.rs2]);
                break;
              }
              case HOp::FLDL: {
                u32 a = gpr[i.rs1] + u32(i.imm);
                darco_assert(a + 8 <= localMem_.size());
                if (tracing) {
                    rec.memAddr = 0xf800'0000u + a;
                    rec.memSize = 8;
                }
                double d;
                __builtin_memcpy(&d, localMem_.data() + a, 8);
                fpr[i.rd] = d;
                break;
              }
              case HOp::FSTL: {
                u32 a = gpr[i.rs1] + u32(i.imm);
                darco_assert(a + 8 <= localMem_.size());
                if (tracing) {
                    rec.memAddr = 0xf800'0000u + a;
                    rec.memSize = 8;
                }
                double d = fpr[i.rs2];
                __builtin_memcpy(localMem_.data() + a, &d, 8);
                break;
              }
              case HOp::FLDC:
                darco_assert(u32(i.imm) < fpPool_.size(),
                             "FLDC pool index OOB");
                if (tracing) {
                    rec.memAddr = 0xfc00'0000u + u32(i.imm) * 8;
                    rec.memSize = 8;
                }
                fpr[i.rd] = fpPool_[u32(i.imm)];
                break;

              // --- FP ---
              case HOp::FADD:
                fpr[i.rd] = guest::gcanon(fpr[i.rs1] + fpr[i.rs2]);
                break;
              case HOp::FSUB:
                fpr[i.rd] = guest::gcanon(fpr[i.rs1] - fpr[i.rs2]);
                break;
              case HOp::FMUL:
                fpr[i.rd] = guest::gcanon(fpr[i.rs1] * fpr[i.rs2]);
                break;
              case HOp::FDIV:
                fpr[i.rd] = guest::gcanon(fpr[i.rs1] / fpr[i.rs2]);
                break;
              case HOp::FSQRT:
                fpr[i.rd] = guest::gcanon(std::sqrt(fpr[i.rs1]));
                break;
              case HOp::FABS:
                fpr[i.rd] = std::fabs(fpr[i.rs1]);
                break;
              case HOp::FNEG:
                fpr[i.rd] = -fpr[i.rs1];
                break;
              case HOp::FMOV:
                fpr[i.rd] = fpr[i.rs1];
                break;
              case HOp::FRND:
                fpr[i.rd] = guest::gcanon(std::nearbyint(fpr[i.rs1]));
                break;
              case HOp::FCVTWD:
                fpr[i.rd] = double(s32(gpr[i.rs1]));
                break;
              case HOp::FCVTZW:
                setReg(i.rd, u32(guest::gcvtfi(fpr[i.rs1])));
                break;
              case HOp::FEQ:
                setReg(i.rd, fpr[i.rs1] == fpr[i.rs2] ? 1 : 0);
                break;
              case HOp::FLT:
                setReg(i.rd, fpr[i.rs1] < fpr[i.rs2] ? 1 : 0);
                break;
              case HOp::FLE:
                setReg(i.rd, fpr[i.rs1] <= fpr[i.rs2] ? 1 : 0);
                break;

              // --- control ---
              case HOp::BEQ:
              case HOp::BNE:
              case HOp::BLT:
              case HOp::BGE:
              case HOp::BLTU:
              case HOp::BGEU: {
                bool t = false;
                switch (i.op) {
                  case HOp::BEQ: t = gpr[i.rs1] == gpr[i.rs2]; break;
                  case HOp::BNE: t = gpr[i.rs1] != gpr[i.rs2]; break;
                  case HOp::BLT:
                    t = s32(gpr[i.rs1]) < s32(gpr[i.rs2]);
                    break;
                  case HOp::BGE:
                    t = s32(gpr[i.rs1]) >= s32(gpr[i.rs2]);
                    break;
                  case HOp::BLTU: t = gpr[i.rs1] < gpr[i.rs2]; break;
                  default: t = gpr[i.rs1] >= gpr[i.rs2]; break;
                }
                if (tracing)
                    rec.taken = t;
                if (t)
                    next = u32(s32(pc) + 1 + i.imm);
                break;
              }
              case HOp::J:
                next = u32(i.imm);
                if (tracing)
                    rec.taken = true;
                break;

              // --- co-design primitives ---
              case HOp::CKPT:
                darco_assert(!speculative_,
                             "nested CKPT in translated code");
                ckpt_ = ctx_;
                ckpt_.pc = pc;
                storeBuf_.clear();
                specLoads_.clear();
                speculative_ = true;
                break;

              case HOp::COMMIT:
                for (const auto &[a, v] : storeBuf_)
                    mem_->write8(a, v);
                storeBuf_.clear();
                specLoads_.clear();
                speculative_ = false;
                break;

              case HOp::ASSERTZ:
              case HOp::ASSERTNZ: {
                bool fail = i.op == HOp::ASSERTZ ? gpr[i.rs1] != 0
                                                 : gpr[i.rs1] == 0;
                if (fail) {
                    exit.assertId = u32(i.imm);
                    bool was_spec = speculative_;
                    rollback();
                    if (was_spec)
                        pc = ctx_.pc;
                    return finish(ExitKind::AssertFail);
                }
                break;
              }

              case HOp::IBTC: {
                GAddr target = gpr[i.rs1];
                u32 host_target;
                // The inlined probe sequence costs more than one
                // instruction; charge the configured cost.
                n += ibtcHitCost_ - 1;
                sinceMark_ += ibtcHitCost_ - 1;
                if (ibtc_.lookup(target, host_target)) {
                    next = host_target;
                    if (tracing)
                        rec.taken = true;
                } else {
                    exit.guestTarget = target;
                    if (tracing) {
                        rec.nextPc = next * 4;
                        sink_->record(rec);
                    }
                    pc = next;
                    return finish(ExitKind::IbtcMiss);
                }
                break;
              }

              case HOp::RETIRE:
                if (retireSink_) {
                    retireSink_->onRetire(u32(i.imm), sinceMark_);
                }
                sinceMark_ = 0;
                break;

              case HOp::EXITB:
                exit.exitId = u32(i.imm);
                if (tracing) {
                    rec.nextPc = next * 4;
                    sink_->record(rec);
                }
                pc = next;
                return finish(ExitKind::Exit);

              default:
                panic("host emulator: unimplemented opcode ",
                      int(i.op));
            }

            if (tracing) {
                rec.nextPc = next * 4;
                sink_->record(rec);
            }
            pc = next;
        }
    } catch (const PageMiss &pm) {
        bool was_spec = speculative_;
        rollback();
        if (was_spec)
            pc = ctx_.pc;
        exit.missPage = pm.page;
        return finish(ExitKind::PageMiss);
    }
}

} // namespace darco::host
