#include "host/hisa.hh"

#include <sstream>

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace darco::host
{

namespace
{

constexpr HOpInfo
op(const char *name, HFmt fmt, bool ld = false, bool st = false,
   bool fp = false, bool br = false)
{
    return HOpInfo{name, fmt, ld, st, fp, br};
}

const HOpInfo table[] = {
    op("nop", HFmt::N),
    // R ALU
    op("add", HFmt::R), op("sub", HFmt::R), op("mul", HFmt::R),
    op("mulh", HFmt::R),
    op("div", HFmt::R), op("rem", HFmt::R),
    op("and", HFmt::R), op("or", HFmt::R), op("xor", HFmt::R),
    op("sll", HFmt::R), op("srl", HFmt::R), op("sra", HFmt::R),
    op("slt", HFmt::R), op("sltu", HFmt::R), op("seq", HFmt::R),
    op("sne", HFmt::R), op("sge", HFmt::R), op("sgeu", HFmt::R),
    // I ALU
    op("addi", HFmt::I), op("andi", HFmt::I), op("ori", HFmt::I),
    op("xori", HFmt::I),
    op("slli", HFmt::I), op("srli", HFmt::I), op("srai", HFmt::I),
    op("slti", HFmt::I), op("seqi", HFmt::I), op("snei", HFmt::I),
    // U
    op("lui", HFmt::U),
    // guest loads
    op("lb", HFmt::I, true), op("lbu", HFmt::I, true),
    op("lh", HFmt::I, true), op("lhu", HFmt::I, true),
    op("lw", HFmt::I, true),
    op("lw.s", HFmt::I, true),
    op("fld", HFmt::I, true, false, true),
    op("fld.s", HFmt::I, true, false, true),
    // guest stores
    op("sb", HFmt::B, false, true), op("sh", HFmt::B, false, true),
    op("sw", HFmt::B, false, true),
    op("fst", HFmt::B, false, true, true),
    op("sb.c", HFmt::B, false, true), op("sh.c", HFmt::B, false, true),
    op("sw.c", HFmt::B, false, true),
    op("fst.c", HFmt::B, false, true, true),
    // TOL-local memory
    op("lwl", HFmt::I, true), op("swl", HFmt::B, false, true),
    op("fldl", HFmt::I, true, false, true),
    op("fstl", HFmt::B, false, true, true),
    // constant pool
    op("fldc", HFmt::U, true, false, true),
    // FP
    op("fadd", HFmt::R, false, false, true),
    op("fsub", HFmt::R, false, false, true),
    op("fmul", HFmt::R, false, false, true),
    op("fdiv", HFmt::R, false, false, true),
    op("fsqrt", HFmt::R, false, false, true),
    op("fabs", HFmt::R, false, false, true),
    op("fneg", HFmt::R, false, false, true),
    op("fmov", HFmt::R, false, false, true),
    op("frnd", HFmt::R, false, false, true),
    op("fcvtwd", HFmt::R, false, false, true),
    op("fcvtzw", HFmt::R, false, false, true),
    op("feq", HFmt::R, false, false, true),
    op("flt", HFmt::R, false, false, true),
    op("fle", HFmt::R, false, false, true),
    // branches
    op("beq", HFmt::B, false, false, false, true),
    op("bne", HFmt::B, false, false, false, true),
    op("blt", HFmt::B, false, false, false, true),
    op("bge", HFmt::B, false, false, false, true),
    op("bltu", HFmt::B, false, false, false, true),
    op("bgeu", HFmt::B, false, false, false, true),
    // jump
    op("j", HFmt::J),
    // co-design
    op("ckpt", HFmt::N),
    op("commit", HFmt::N),
    op("assertz", HFmt::B),
    op("assertnz", HFmt::B),
    op("ibtc", HFmt::R),
    op("exitb", HFmt::J),
    op("retire", HFmt::J),
};

static_assert(sizeof(table) / sizeof(table[0]) ==
                  std::size_t(HOp::NumOps),
              "host opcode table out of sync");

} // namespace

const HOpInfo &
hopInfo(HOp o)
{
    auto idx = std::size_t(o);
    darco_assert(idx < std::size_t(HOp::NumOps), "bad host opcode ", idx);
    return table[idx];
}

u32
hencode(const HInst &i)
{
    const HOpInfo &info = hopInfo(i.op);
    u32 w = u32(i.op) << 24;
    switch (info.fmt) {
      case HFmt::N:
        break;
      case HFmt::R:
        w |= u32(i.rd & 31) << 19;
        w |= u32(i.rs1 & 31) << 14;
        w |= u32(i.rs2 & 31) << 9;
        break;
      case HFmt::I:
        darco_assert(fitsSigned(i.imm, 14) ||
                         (i.imm >= 0 && i.imm < (1 << 14)),
                     "imm14 out of range: ", i.imm);
        w |= u32(i.rd & 31) << 19;
        w |= u32(i.rs1 & 31) << 14;
        w |= u32(i.imm) & 0x3fff;
        break;
      case HFmt::B:
        darco_assert(fitsSigned(i.imm, 14) ||
                         (i.imm >= 0 && i.imm < (1 << 14)),
                     "imm14 out of range: ", i.imm);
        w |= u32(i.rs1 & 31) << 19;
        w |= u32(i.rs2 & 31) << 14;
        w |= u32(i.imm) & 0x3fff;
        break;
      case HFmt::U:
        darco_assert(i.imm >= 0 && i.imm < (1 << 19),
                     "imm19 out of range: ", i.imm);
        w |= u32(i.rd & 31) << 19;
        w |= u32(i.imm) & 0x7ffff;
        break;
      case HFmt::J:
        darco_assert(i.imm >= 0 && i.imm < (1 << 24),
                     "imm24 out of range: ", i.imm);
        w |= u32(i.imm) & 0xffffff;
        break;
    }
    return w;
}

HInst
hdecode(u32 w)
{
    HInst i;
    u32 opb = w >> 24;
    darco_assert(opb < u32(HOp::NumOps), "bad host opcode byte ", opb);
    i.op = HOp(opb);
    const HOpInfo &info = hopInfo(i.op);
    switch (info.fmt) {
      case HFmt::N:
        break;
      case HFmt::R:
        i.rd = u8(bits(w, 19, 5));
        i.rs1 = u8(bits(w, 14, 5));
        i.rs2 = u8(bits(w, 9, 5));
        break;
      case HFmt::I:
        i.rd = u8(bits(w, 19, 5));
        i.rs1 = u8(bits(w, 14, 5));
        i.imm = sext(bits(w, 0, 14), 14);
        break;
      case HFmt::B:
        i.rs1 = u8(bits(w, 19, 5));
        i.rs2 = u8(bits(w, 14, 5));
        i.imm = sext(bits(w, 0, 14), 14);
        break;
      case HFmt::U:
        i.rd = u8(bits(w, 19, 5));
        i.imm = s32(bits(w, 0, 19));
        break;
      case HFmt::J:
        i.imm = s32(bits(w, 0, 24));
        break;
    }
    return i;
}

std::string
hdisasm(const HInst &i, u32 pc)
{
    const HOpInfo &info = i.info();
    std::ostringstream os;
    os << info.name;
    auto r = [](u8 n) { return "r" + std::to_string(n); };
    auto fr = [](u8 n) { return "f" + std::to_string(n); };
    switch (info.fmt) {
      case HFmt::N:
        break;
      case HFmt::R:
        if (info.isFp) {
            // compares write an integer rd
            if (i.op == HOp::FEQ || i.op == HOp::FLT || i.op == HOp::FLE)
                os << " " << r(i.rd) << ", " << fr(i.rs1) << ", "
                   << fr(i.rs2);
            else if (i.op == HOp::FCVTWD)
                os << " " << fr(i.rd) << ", " << r(i.rs1);
            else if (i.op == HOp::FCVTZW)
                os << " " << r(i.rd) << ", " << fr(i.rs1);
            else
                os << " " << fr(i.rd) << ", " << fr(i.rs1) << ", "
                   << fr(i.rs2);
        } else if (i.op == HOp::IBTC) {
            os << " " << r(i.rs1);
        } else {
            os << " " << r(i.rd) << ", " << r(i.rs1) << ", " << r(i.rs2);
        }
        break;
      case HFmt::I:
        if (info.isLoad) {
            os << " " << (info.isFp ? fr(i.rd) : r(i.rd)) << ", "
               << i.imm << "(" << r(i.rs1) << ")";
        } else {
            os << " " << r(i.rd) << ", " << r(i.rs1) << ", " << i.imm;
        }
        break;
      case HFmt::B:
        if (info.isStore) {
            os << " " << (info.isFp ? fr(i.rs2) : r(i.rs2)) << ", "
               << i.imm << "(" << r(i.rs1) << ")";
        } else if (info.isBranch) {
            os << " " << r(i.rs1) << ", " << r(i.rs2) << ", "
               << (pc + 1 + i.imm);
        } else {
            // asserts: rs1 + id
            os << " " << r(i.rs1) << ", #" << i.imm;
        }
        break;
      case HFmt::U:
        os << " " << (info.isFp ? fr(i.rd) : r(i.rd)) << ", " << i.imm;
        break;
      case HFmt::J:
        os << " " << i.imm;
        break;
    }
    return os.str();
}

} // namespace darco::host
