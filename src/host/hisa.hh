/**
 * @file
 * HISA: the co-designed host ISA.
 *
 * A PowerPC-flavoured 32-register RISC with fixed 32-bit encodings,
 * extended with the co-design primitives the paper's architecture
 * requires:
 *
 *  - CKPT/COMMIT region checkpointing (speculative stores are gated
 *    in a store buffer until commit; rollback restores registers),
 *  - ASSERTZ/ASSERTNZ, the "asserts" that superblock branches are
 *    converted into (failure means rollback + re-execution in IM),
 *  - LWS/FLDS speculative loads that record entries in an alias table
 *    checked by every store in the region (speculative memory
 *    reordering detection, Section III),
 *  - IBTC, the inlined indirect-branch translation cache probe,
 *  - EXITB, a patchable exit-to-TOL used for chaining,
 *  - LWL/SWL..., access to TOL-private local memory (profiling
 *    counters, spill slots), and FLDC, an FP constant-pool load.
 *
 * Encodings (op is always bits [31:24]):
 *   R: rd[23:19] rs1[18:14] rs2[13:9]
 *   I: rd[23:19] rs1[18:14] imm14[13:0]
 *   B: rs1[23:19] rs2[18:14] imm14[13:0]
 *   U: rd[23:19] imm19[18:0]
 *   J: imm24[23:0]
 *
 * imm14 is sign-extended for arithmetic/memory/branches and
 * zero-extended for ANDI/ORI/XORI/SEQI/SNEI. LUI places imm19 at
 * bits [31:13]; LUI+ORI therefore materializes any 32-bit constant
 * in two instructions.
 */

#ifndef DARCO_HOST_HISA_HH
#define DARCO_HOST_HISA_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace darco::host
{

/** Number of host integer registers. */
constexpr unsigned numHRegs = 32;
/** Number of host FP registers. */
constexpr unsigned numHFRegs = 32;

/**
 * Fixed register-mapping convention between guest and host state
 * (the paper's "maps guest architectural registers directly on the
 * host registers").
 */
namespace regmap
{
constexpr u8 zero = 0;            //!< hardwired zero
constexpr u8 guestGprBase = 1;    //!< guest r0..r7 -> host r1..r8
constexpr u8 flagZ = 9;           //!< guest ZF as 0/1
constexpr u8 flagS = 10;
constexpr u8 flagC = 11;
constexpr u8 flagO = 12;
constexpr u8 scratch0 = 13;       //!< TOL runtime scratch
constexpr u8 scratch1 = 14;
constexpr u8 tempBase = 15;       //!< r15..r31 allocatable temps
constexpr u8 guestFprBase = 0;    //!< guest f0..f7 -> host f0..f7
constexpr u8 ftempBase = 8;       //!< f8..f31 allocatable temps
} // namespace regmap

/** Host opcodes. */
enum class HOp : u8
{
    NOP = 0,
    // R-format integer ALU
    ADD, SUB, MUL, MULH, DIV, REM,
    AND, OR, XOR,
    SLL, SRL, SRA,
    SLT, SLTU, SEQ, SNE, SGE, SGEU,
    // I-format integer ALU
    ADDI, ANDI, ORI, XORI,
    SLLI, SRLI, SRAI,
    SLTI, SEQI, SNEI,
    // U-format
    LUI,
    // guest-memory loads (I-format; address = rs1 + imm)
    LB, LBU, LH, LHU, LW,
    LWS,   //!< speculative load word: records an alias-table entry
    FLD,   //!< load double to FP rd
    FLDS,  //!< speculative FP load
    // guest-memory stores (B-format; address = rs1 + imm, value rs2)
    SB, SH, SW,
    FST,
    // checked stores: probe the alias table for speculative loads
    // hoisted across this store (the paper's sequence-number check,
    // resolved statically by the scheduler)
    SBC, SHC, SWC, FSTC,
    // TOL-local memory (I/B-format): profiling counters, spill slots
    LWL, SWL, FLDL, FSTL,
    // FP constant pool (U-format: fd <- pool[imm19])
    FLDC,
    // FP R-format
    FADD, FSUB, FMUL, FDIV, FSQRT, FABS, FNEG, FMOV,
    FRND,    //!< round to nearest integral (trig range reduction)
    FCVTWD,  //!< FP rd <- s32(gpr rs1)
    FCVTZW,  //!< gpr rd <- trunc(FP rs1) (guest CVTFI semantics)
    FEQ, FLT, FLE, //!< gpr rd <- compare(FP rs1, FP rs2)
    // branches (B-format; target = pc + 1 + imm, in words)
    BEQ, BNE, BLT, BGE, BLTU, BGEU,
    // unconditional direct jump (J-format; absolute word index)
    J,
    // co-design primitives
    CKPT,     //!< open a speculative region (snapshot registers)
    COMMIT,   //!< drain store buffer, close region
    ASSERTZ,  //!< B-format: fail (rollback) if rs1 != 0; imm = id
    ASSERTNZ, //!< B-format: fail (rollback) if rs1 == 0; imm = id
    IBTC,     //!< R-format: indirect jump via IBTC on guest pc rs1
    EXITB,    //!< J-format: exit to TOL with exit-table id (patchable)
    RETIRE,   //!< J-format: guest-retirement marker (imm = exit id)
    NumOps,
};

/** Encoding format classes. */
enum class HFmt : u8
{
    R, I, B, U, J, N,
};

/** Static opcode properties. */
struct HOpInfo
{
    const char *name;
    HFmt fmt;
    bool isLoad;
    bool isStore;
    bool isFp;       //!< uses the FP pipeline
    bool isBranch;   //!< conditional branch
};

const HOpInfo &hopInfo(HOp op);

/** A decoded host instruction. */
struct HInst
{
    HOp op = HOp::NOP;
    u8 rd = 0;
    u8 rs1 = 0;
    u8 rs2 = 0;
    s32 imm = 0;

    const HOpInfo &info() const { return hopInfo(op); }
};

/** Encode to a 32-bit word. */
u32 hencode(const HInst &inst);
/** Decode a 32-bit word. */
HInst hdecode(u32 word);
/** Disassemble (host debug toolchain). */
std::string hdisasm(const HInst &inst, u32 pc);

/**
 * Host instruction stream builder.
 *
 * Thin emitter used by the TOL code generator; labels are word
 * offsets resolved by the caller (generation is single-pass with
 * local back-patching).
 */
class HAsm
{
  public:
    std::vector<u32> &words() { return words_; }
    const std::vector<u32> &words() const { return words_; }
    u32 size() const { return u32(words_.size()); }

    u32
    emit(HOp op, u8 rd = 0, u8 rs1 = 0, u8 rs2 = 0, s32 imm = 0)
    {
        HInst i;
        i.op = op;
        i.rd = rd;
        i.rs1 = rs1;
        i.rs2 = rs2;
        i.imm = imm;
        words_.push_back(hencode(i));
        return u32(words_.size() - 1);
    }

    /** Overwrite a previously emitted word (local back-patching). */
    void
    patch(u32 index, HOp op, u8 rd = 0, u8 rs1 = 0, u8 rs2 = 0,
          s32 imm = 0)
    {
        HInst i;
        i.op = op;
        i.rd = rd;
        i.rs1 = rs1;
        i.rs2 = rs2;
        i.imm = imm;
        words_[index] = hencode(i);
    }

    /**
     * Materialize a 32-bit constant into rd.
     * @return number of instructions emitted (1 or 2).
     */
    unsigned
    loadImm(u8 rd, u32 value)
    {
        s32 sv = s32(value);
        if (sv >= -8192 && sv <= 8191) {
            emit(HOp::ADDI, rd, regmap::zero, 0, sv);
            return 1;
        }
        emit(HOp::LUI, rd, 0, 0, s32(value >> 13));
        if (value & 0x1fff) {
            emit(HOp::ORI, rd, rd, 0, s32(value & 0x1fff));
            return 2;
        }
        return 1;
    }

  private:
    std::vector<u32> words_;
};

} // namespace darco::host

#endif // DARCO_HOST_HISA_HH
