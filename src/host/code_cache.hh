/**
 * @file
 * The translation code cache.
 *
 * A flat array of host instruction words. TOL appends translated
 * regions and patches EXITB words into J words when chaining; the
 * cache tracks occupancy and supports a full flush (the classic
 * "code cache full" policy).
 */

#ifndef DARCO_HOST_CODE_CACHE_HH
#define DARCO_HOST_CODE_CACHE_HH

#include <vector>

#include "common/types.hh"
#include "host/hisa.hh"

namespace darco::host
{

/** Flat host-code store addressed by word index. */
class CodeCache
{
  public:
    explicit CodeCache(u32 capacity_words = 1u << 20)
        : capacity_(capacity_words)
    {
        words_.reserve(1024);
    }

    bool
    hasSpace(u32 n) const
    {
        return u32(words_.size()) + n <= capacity_;
    }

    /**
     * Append a translated region.
     * @return base word index of the region.
     */
    u32
    append(const std::vector<u32> &region)
    {
        u32 base = u32(words_.size());
        words_.insert(words_.end(), region.begin(), region.end());
        return base;
    }

    u32 word(u32 idx) const { return words_[idx]; }
    void setWord(u32 idx, u32 w) { words_[idx] = w; }
    const u32 *raw() const { return words_.data(); }

    u32 used() const { return u32(words_.size()); }
    u32 capacity() const { return capacity_; }

    /** Drop every translation (TOL must reset its maps too). */
    void
    flush()
    {
        words_.clear();
        ++flushCount_;
    }

    u64 flushCount() const { return flushCount_; }

  private:
    u32 capacity_;
    std::vector<u32> words_;
    u64 flushCount_ = 0;
};

} // namespace darco::host

#endif // DARCO_HOST_CODE_CACHE_HH
