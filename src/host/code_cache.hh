/**
 * @file
 * The translation code cache.
 *
 * A word-addressed host-code store with a region allocator: TOL
 * installs translated regions into contiguous word ranges obtained
 * from a first-fit free list, and releases them individually when a
 * translation is evicted or invalidated (region-granular eviction).
 * Released ranges coalesce with free neighbours. The classic
 * "code cache full -> flush everything" policy remains available via
 * flush(), which returns the whole cache to a single free hole.
 *
 * The cache only manages words; translation bookkeeping (entry maps,
 * chaining, the LRU eviction clock) lives in tol::TranslationRegistry.
 *
 * Thread safety: structural operations (alloc/release/install/flush
 * and the occupancy queries) serialize on an internal mutex; the word
 * store itself is an array of relaxed atomics, so readers (the host
 * emulator's fetch path, invariant checkers) never race writers. The
 * publication edge for freshly-installed regions is the registry's
 * lock: a region's words are fully stored before its translation is
 * added, and every consumer discovers the region through a registry
 * lookup.
 */

#ifndef DARCO_HOST_CODE_CACHE_HH
#define DARCO_HOST_CODE_CACHE_HH

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "common/types.hh"

namespace darco::host
{

/** Region-allocating host-code store addressed by word index. */
class CodeCache
{
  public:
    static constexpr u32 npos = ~0u;

    explicit CodeCache(u32 capacity_words = 1u << 20)
        : capacity_(capacity_words),
          words_(new std::atomic<u32>[capacity_words]())
    {
        holes_.push_back(Hole{0, capacity_});
    }

    /** Can a contiguous block of n words be allocated right now? */
    bool
    hasSpace(u32 n) const
    {
        std::lock_guard<std::mutex> g(mu_);
        return largestFreeLocked() >= n;
    }

    /**
     * Allocate a contiguous region of n words (first fit).
     * @return base word index, or npos when no hole fits.
     */
    u32
    alloc(u32 n)
    {
        std::lock_guard<std::mutex> g(mu_);
        return allocLocked(n);
    }

    /** Return a region to the free list, coalescing neighbours. */
    void
    release(u32 base, u32 n)
    {
        if (n == 0)
            return;
        std::lock_guard<std::mutex> g(mu_);
        used_ -= n;
        ++releases_;
        // Insert sorted by base.
        std::size_t h = 0;
        while (h < holes_.size() && holes_[h].base < base)
            ++h;
        holes_.insert(holes_.begin() + h, Hole{base, n});
        // Coalesce with successor, then predecessor.
        if (h + 1 < holes_.size() &&
            holes_[h].base + holes_[h].size == holes_[h + 1].base) {
            holes_[h].size += holes_[h + 1].size;
            holes_.erase(holes_.begin() + h + 1);
        }
        if (h > 0 &&
            holes_[h - 1].base + holes_[h - 1].size == holes_[h].base) {
            holes_[h - 1].size += holes_[h].size;
            holes_.erase(holes_.begin() + h);
        }
    }

    /**
     * Allocate and copy a translated region.
     * @return base word index, or npos when the cache cannot fit it.
     */
    u32
    install(const std::vector<u32> &region)
    {
        std::lock_guard<std::mutex> g(mu_);
        u32 base = allocLocked(u32(region.size()));
        if (base == npos)
            return npos;
        for (std::size_t i = 0; i < region.size(); ++i)
            words_[base + i].store(region[i], std::memory_order_relaxed);
        return base;
    }

    u32
    word(u32 idx) const
    {
        return words_[idx].load(std::memory_order_relaxed);
    }

    void
    setWord(u32 idx, u32 w)
    {
        words_[idx].store(w, std::memory_order_relaxed);
    }

    u32
    used() const
    {
        std::lock_guard<std::mutex> g(mu_);
        return used_;
    }

    u32 capacity() const { return capacity_; }

    u32
    largestFree() const
    {
        std::lock_guard<std::mutex> g(mu_);
        return largestFreeLocked();
    }

    u32
    freeWords() const
    {
        std::lock_guard<std::mutex> g(mu_);
        return capacity_ - used_;
    }

    /** Number of free-list fragments (fragmentation diagnostics). */
    std::size_t
    holeCount() const
    {
        std::lock_guard<std::mutex> g(mu_);
        return holes_.size();
    }

    /** Drop every translation (TOL must reset its maps too). */
    void
    flush()
    {
        std::lock_guard<std::mutex> g(mu_);
        holes_.clear();
        holes_.push_back(Hole{0, capacity_});
        used_ = 0;
        ++flushCount_;
    }

    u64
    flushCount() const
    {
        std::lock_guard<std::mutex> g(mu_);
        return flushCount_;
    }

    u64
    releaseCount() const
    {
        std::lock_guard<std::mutex> g(mu_);
        return releases_;
    }

  private:
    /** One free range; the list is sorted by base and coalesced. */
    struct Hole
    {
        u32 base;
        u32 size;
    };

    u32
    allocLocked(u32 n)
    {
        if (n == 0)
            return npos;
        for (std::size_t h = 0; h < holes_.size(); ++h) {
            if (holes_[h].size < n)
                continue;
            u32 base = holes_[h].base;
            holes_[h].base += n;
            holes_[h].size -= n;
            if (holes_[h].size == 0)
                holes_.erase(holes_.begin() + h);
            used_ += n;
            return base;
        }
        return npos;
    }

    u32
    largestFreeLocked() const
    {
        u32 best = 0;
        for (const Hole &h : holes_)
            best = h.size > best ? h.size : best;
        return best;
    }

    mutable std::mutex mu_; //!< guards the free list and counters
    u32 capacity_;
    u32 used_ = 0;
    /** Fixed-size atomic word store (no lazy growth: atomics cannot
     *  be moved by a vector resize while readers are live). */
    std::unique_ptr<std::atomic<u32>[]> words_;
    std::vector<Hole> holes_;
    u64 flushCount_ = 0;
    u64 releases_ = 0;
};

} // namespace darco::host

#endif // DARCO_HOST_CODE_CACHE_HH
