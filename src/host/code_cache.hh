/**
 * @file
 * The translation code cache.
 *
 * A word-addressed host-code store with a region allocator: TOL
 * installs translated regions into contiguous word ranges obtained
 * from a first-fit free list, and releases them individually when a
 * translation is evicted or invalidated (region-granular eviction).
 * Released ranges coalesce with free neighbours. The classic
 * "code cache full -> flush everything" policy remains available via
 * flush(), which returns the whole cache to a single free hole.
 *
 * The cache only manages words; translation bookkeeping (entry maps,
 * chaining, the LRU eviction clock) lives in tol::TranslationRegistry.
 */

#ifndef DARCO_HOST_CODE_CACHE_HH
#define DARCO_HOST_CODE_CACHE_HH

#include <algorithm>
#include <vector>

#include "common/types.hh"

namespace darco::host
{

/** Region-allocating host-code store addressed by word index. */
class CodeCache
{
  public:
    static constexpr u32 npos = ~0u;

    explicit CodeCache(u32 capacity_words = 1u << 20)
        : capacity_(capacity_words)
    {
        holes_.push_back(Hole{0, capacity_});
    }

    /** Can a contiguous block of n words be allocated right now? */
    bool hasSpace(u32 n) const { return largestFree() >= n; }

    /**
     * Allocate a contiguous region of n words (first fit).
     * @return base word index, or npos when no hole fits.
     */
    u32
    alloc(u32 n)
    {
        if (n == 0)
            return npos;
        for (std::size_t h = 0; h < holes_.size(); ++h) {
            if (holes_[h].size < n)
                continue;
            u32 base = holes_[h].base;
            holes_[h].base += n;
            holes_[h].size -= n;
            if (holes_[h].size == 0)
                holes_.erase(holes_.begin() + h);
            if (words_.size() < base + n)
                words_.resize(base + n, 0);
            used_ += n;
            return base;
        }
        return npos;
    }

    /** Return a region to the free list, coalescing neighbours. */
    void
    release(u32 base, u32 n)
    {
        if (n == 0)
            return;
        used_ -= n;
        ++releases_;
        // Insert sorted by base.
        std::size_t h = 0;
        while (h < holes_.size() && holes_[h].base < base)
            ++h;
        holes_.insert(holes_.begin() + h, Hole{base, n});
        // Coalesce with successor, then predecessor.
        if (h + 1 < holes_.size() &&
            holes_[h].base + holes_[h].size == holes_[h + 1].base) {
            holes_[h].size += holes_[h + 1].size;
            holes_.erase(holes_.begin() + h + 1);
        }
        if (h > 0 &&
            holes_[h - 1].base + holes_[h - 1].size == holes_[h].base) {
            holes_[h - 1].size += holes_[h].size;
            holes_.erase(holes_.begin() + h);
        }
    }

    /**
     * Allocate and copy a translated region.
     * @return base word index, or npos when the cache cannot fit it.
     */
    u32
    install(const std::vector<u32> &region)
    {
        u32 base = alloc(u32(region.size()));
        if (base == npos)
            return npos;
        std::copy(region.begin(), region.end(), words_.begin() + base);
        return base;
    }

    u32 word(u32 idx) const { return words_[idx]; }
    void setWord(u32 idx, u32 w) { words_[idx] = w; }
    const u32 *raw() const { return words_.data(); }

    u32 used() const { return used_; }
    u32 capacity() const { return capacity_; }

    u32
    largestFree() const
    {
        u32 best = 0;
        for (const Hole &h : holes_)
            best = h.size > best ? h.size : best;
        return best;
    }

    u32 freeWords() const { return capacity_ - used_; }

    /** Number of free-list fragments (fragmentation diagnostics). */
    std::size_t holeCount() const { return holes_.size(); }

    /** Drop every translation (TOL must reset its maps too). */
    void
    flush()
    {
        words_.clear();
        holes_.clear();
        holes_.push_back(Hole{0, capacity_});
        used_ = 0;
        ++flushCount_;
    }

    u64 flushCount() const { return flushCount_; }
    u64 releaseCount() const { return releases_; }

  private:
    /** One free range; the list is sorted by base and coalesced. */
    struct Hole
    {
        u32 base;
        u32 size;
    };

    u32 capacity_;
    u32 used_ = 0;
    std::vector<u32> words_; //!< grows lazily to the high-water mark
    std::vector<Hole> holes_;
    u64 flushCount_ = 0;
    u64 releases_ = 0;
};

} // namespace darco::host

#endif // DARCO_HOST_CODE_CACHE_HH
