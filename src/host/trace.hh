/**
 * @file
 * Dynamic host-instruction trace interface.
 *
 * The co-designed component feeds its dynamic instruction stream to
 * the (optional) timing simulator through this interface, mirroring
 * the paper's "receives the dynamic instruction stream from the
 * co-designed component". TOL-overhead instructions are fed through
 * the same interface by the cost model (with PCs in the TOL code
 * region) so that TOL/application interaction is visible to the
 * timing and power models.
 */

#ifndef DARCO_HOST_TRACE_HH
#define DARCO_HOST_TRACE_HH

#include "common/types.hh"
#include "host/hisa.hh"

namespace darco::host
{

/** Broad execution class of an instruction (drives FU selection). */
enum class InstClass : u8
{
    IntAlu,
    IntMul,
    IntDiv,
    FpAlu,
    FpMul,
    FpDiv,
    Load,
    Store,
    Branch,   //!< conditional
    Jump,     //!< unconditional / indirect
    Other,
};

/**
 * Register operand encoding for InstRecord: low 6 bits are the
 * register number; bit 6 marks the FP file; noReg means absent.
 */
constexpr u8 regFpBit = 0x40;
constexpr u8 noReg = 0xff;

/** One dynamic host instruction, as seen by the timing simulator. */
struct InstRecord
{
    u32 pc = 0;         //!< host byte address (word index * 4)
    InstClass cls = InstClass::IntAlu;
    u32 memAddr = 0;    //!< effective address for Load/Store
    u8 memSize = 0;     //!< access width in bytes
    bool taken = false; //!< branch outcome
    u32 nextPc = 0;     //!< byte address of the next instruction
    bool isFp = false;
    u8 dst = noReg;     //!< destination register (scoreboard)
    u8 src1 = noReg;
    u8 src2 = noReg;
};

/** Fill the dst/src fields of a record from a decoded instruction. */
void fillRegs(const HInst &inst, InstRecord &rec);

/** Consumer of the dynamic instruction stream. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void record(const InstRecord &rec) = 0;

    /**
     * Account host instructions executed by a concurrent translator
     * thread. Unlike record(), these do not join the core's dynamic
     * stream — they run on spare hardware off the guest critical
     * path; a timing model overlaps them (e.g. cycles = max(main,
     * translator/threads)) instead of serializing them. Default: no
     * timing model attached, drop on the floor.
     */
    virtual void recordConcurrent(u64 host_insts) { (void)host_insts; }
};

/** Map a host opcode to its execution class. */
InstClass classify(HOp op);

} // namespace darco::host

#endif // DARCO_HOST_TRACE_HH
