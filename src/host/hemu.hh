/**
 * @file
 * The host functional emulator.
 *
 * Executes translated HISA code from the code cache against the
 * emulated guest memory. Implements the co-design primitives:
 * CKPT/COMMIT regions with store gating, the speculative-load alias
 * table, assert rollback, and the IBTC probe. Every control exit
 * (EXITB, IBTC miss, assert/alias failure, page miss, division fault)
 * returns to TOL with a populated ExitInfo.
 */

#ifndef DARCO_HOST_HEMU_HH
#define DARCO_HOST_HEMU_HH

#include <unordered_map>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "guest/memory.hh"
#include "guest/state.hh"
#include "host/code_cache.hh"
#include "host/hisa.hh"
#include "host/trace.hh"

namespace darco::host
{

/**
 * Observer of RETIRE markers (guest-retirement accounting).
 *
 * Chained regions and IBTC hits transfer control inside the code
 * cache without returning to TOL, so retirement must be observed at
 * the emulator level: each exit stub executes RETIRE with its global
 * exit id just before leaving the region.
 */
class RetireSink
{
  public:
    virtual ~RetireSink() = default;
    /**
     * @param exit_id    global exit-table id from the RETIRE operand
     * @param host_insts host instructions executed since the previous
     *                   retirement mark (attribution for Fig. 5/6)
     */
    virtual void onRetire(u32 exit_id, u64 host_insts) = 0;
};

/** Why the emulator returned control to TOL. */
enum class ExitKind : u8
{
    Exit,       //!< EXITB executed (normal region exit)
    IbtcMiss,   //!< indirect branch target not in the IBTC
    AssertFail, //!< assert failed; state rolled back to checkpoint
    AliasFail,  //!< speculative load/store aliased; rolled back
    DivFault,   //!< division fault; rolled back if speculative
    PageMiss,   //!< guest page absent; rolled back
    Budget,     //!< instruction budget exhausted mid-execution
};

/** Exit report from HostEmu::run(). */
struct ExitInfo
{
    ExitKind kind = ExitKind::Exit;
    u32 exitId = 0;        //!< EXITB operand
    GAddr guestTarget = 0; //!< IBTC-miss guest pc
    u32 assertId = 0;      //!< failing assert's id
    GAddr missPage = 0;    //!< PageMiss page base
    u64 instsExecuted = 0; //!< host instructions retired this run
};

/**
 * The Indirect Branch Translation Cache (IBTC), after Scott et al.
 * [17]: a direct-mapped software cache from guest target pc to host
 * code-cache pc, probed inline by the IBTC instruction.
 */
class IbtcTable
{
  public:
    explicit IbtcTable(u32 entries = 512);

    bool lookup(GAddr guest_pc, u32 &host_pc) const;
    void insert(GAddr guest_pc, u32 host_pc);
    /** Drop the entry for one guest pc (translation invalidated). */
    void invalidate(GAddr guest_pc);
    /**
     * Drop every entry whose host target lies in [base, base+words):
     * required when a code-cache region is evicted and its words may
     * be reused by a different translation.
     */
    void invalidateHostRange(u32 base, u32 words);
    void clear();

    u64 hits() const { return hits_; }
    u64 misses() const { return misses_; }

  private:
    friend class HostEmu;

    struct Entry
    {
        GAddr tag = ~0u;
        u32 hostPc = 0;
    };

    u32
    index(GAddr pc) const
    {
        return (pc ^ (pc >> 7)) & mask_;
    }

    std::vector<Entry> entries_;
    u32 mask_;
    mutable u64 hits_ = 0;
    mutable u64 misses_ = 0;
};

/** Host register context. */
struct HostContext
{
    std::array<u32, numHRegs> gpr{};
    std::array<double, numHFRegs> fpr{};
    u32 pc = 0; //!< word index into the code cache
};

/**
 * Functional emulator for HISA.
 *
 * Configuration keys:
 *  - hemu.local_mem_bytes (default 1 MiB): TOL-local memory size
 *  - hemu.ibtc_entries (default 512)
 *  - hemu.ibtc_hit_cost (default 6): host instructions charged per
 *    inlined IBTC probe (represents the hash/compare/jump sequence)
 */
class HostEmu
{
  public:
    HostEmu(CodeCache &cache, guest::PagedMemory &guest_mem,
            const Config &cfg = Config());

    /**
     * Run from host pc until an exit condition or max_insts.
     * Never throws PageMiss: misses roll back and report.
     */
    ExitInfo run(u32 host_pc, u64 max_insts = ~0ull);

    HostContext &ctx() { return ctx_; }
    const HostContext &ctx() const { return ctx_; }

    /** Copy guest architectural state into the mapped host registers. */
    void loadGuestState(const guest::CpuState &st);
    /** Extract guest architectural state (pc is not represented). */
    void storeGuestState(guest::CpuState &st) const;

    IbtcTable &ibtc() { return ibtc_; }

    /**
     * Retarget the emulator at another guest address space (multi-core
     * guest: the TOL switches the shared emulator to the scheduled
     * core's memory at core-switch boundaries, never mid-region).
     */
    void setMemory(guest::PagedMemory &mem) { mem_ = &mem; }

    /** FP constant pool backing FLDC. */
    std::vector<double> &fpPool() { return fpPool_; }

    /** TOL-local memory (profiling counters, spill slots). */
    u32 readLocal32(u32 addr) const;
    void writeLocal32(u32 addr, u32 v);

    void setTraceSink(TraceSink *sink) { sink_ = sink; }
    void setRetireSink(RetireSink *sink) { retireSink_ = sink; }

    u64 instsExecuted() const { return totalInsts_; }
    u64 rollbacks() const { return rollbacks_; }

    /** Host instructions since the last RETIRE (rollback attribution). */
    u64 instsSinceMark() const { return sinceMark_; }
    void resetMark() { sinceMark_ = 0; }

  private:
    /** Discard speculative state and restore the checkpoint. */
    void rollback();

    /** Buffered (gated) store of one byte. */
    void specWrite8(GAddr a, u8 v);
    /** Read through the store buffer. */
    u8 specRead8(GAddr a);
    u32 specRead(GAddr a, unsigned size);
    void specWrite(GAddr a, u32 v, unsigned size);
    u64 specRead64(GAddr a);
    void specWrite64(GAddr a, u64 v);

    /** Raise PageMiss if the page backing [a, a+size) is absent. */
    void probePages(GAddr a, unsigned size);

    /** Check a store against recorded speculative loads. */
    bool aliasesSpecLoad(GAddr a, unsigned size) const;

    CodeCache &cache_;
    guest::PagedMemory *mem_; //!< current core's guest memory
    HostContext ctx_;

    // Speculative region state.
    bool speculative_ = false;
    HostContext ckpt_;
    std::unordered_map<GAddr, u8> storeBuf_;
    struct SpecLoad
    {
        GAddr addr;
        u8 size;
    };
    std::vector<SpecLoad> specLoads_;

    IbtcTable ibtc_;
    std::vector<double> fpPool_;
    std::vector<u8> localMem_;
    TraceSink *sink_ = nullptr;
    RetireSink *retireSink_ = nullptr;

    u32 ibtcHitCost_;
    u64 totalInsts_ = 0;
    u64 rollbacks_ = 0;
    u64 sinceMark_ = 0;
};

} // namespace darco::host

#endif // DARCO_HOST_HEMU_HH
