#include "host/trace.hh"

namespace darco::host
{

void
fillRegs(const HInst &i, InstRecord &rec)
{
    const HOpInfo &info = i.info();
    auto ir = [](u8 r) { return r; };
    auto fr = [](u8 r) { return u8(r | regFpBit); };

    switch (info.fmt) {
      case HFmt::N:
        break;
      case HFmt::R:
        switch (i.op) {
          case HOp::IBTC:
            rec.src1 = ir(i.rs1);
            break;
          case HOp::FEQ:
          case HOp::FLT:
          case HOp::FLE:
            rec.dst = ir(i.rd);
            rec.src1 = fr(i.rs1);
            rec.src2 = fr(i.rs2);
            break;
          case HOp::FCVTWD:
            rec.dst = fr(i.rd);
            rec.src1 = ir(i.rs1);
            break;
          case HOp::FCVTZW:
            rec.dst = ir(i.rd);
            rec.src1 = fr(i.rs1);
            break;
          case HOp::FSQRT:
          case HOp::FABS:
          case HOp::FNEG:
          case HOp::FMOV:
          case HOp::FRND:
            rec.dst = fr(i.rd);
            rec.src1 = fr(i.rs1);
            break;
          default:
            if (info.isFp) {
                rec.dst = fr(i.rd);
                rec.src1 = fr(i.rs1);
                rec.src2 = fr(i.rs2);
            } else {
                rec.dst = ir(i.rd);
                rec.src1 = ir(i.rs1);
                rec.src2 = ir(i.rs2);
            }
            break;
        }
        break;
      case HFmt::I:
        rec.dst = info.isFp ? fr(i.rd) : ir(i.rd);
        rec.src1 = ir(i.rs1);
        break;
      case HFmt::B:
        if (info.isStore) {
            rec.src1 = ir(i.rs1);
            rec.src2 = info.isFp ? fr(i.rs2) : ir(i.rs2);
        } else if (info.isBranch) {
            rec.src1 = ir(i.rs1);
            rec.src2 = ir(i.rs2);
        } else {
            // asserts
            rec.src1 = ir(i.rs1);
        }
        break;
      case HFmt::U:
        rec.dst = info.isFp ? fr(i.rd) : ir(i.rd);
        break;
      case HFmt::J:
        break;
    }
    // r0 is hardwired zero: no dependency through it.
    if (rec.dst == 0)
        rec.dst = noReg;
    if (rec.src1 == 0)
        rec.src1 = noReg;
    if (rec.src2 == 0)
        rec.src2 = noReg;
}

} // namespace darco::host
