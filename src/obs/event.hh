/**
 * @file
 * Trace-event model for the observability subsystem.
 *
 * Every event is stamped with *virtual time* — the number of retired
 * guest instructions at emission — which is a pure function of the
 * simulated execution and therefore byte-identical across host
 * schedules and `tol.async.threads` worker counts. Wall-clock stamps
 * are optional (obs.trace.clock=wall) and zeroed in the default
 * deterministic mode so traces are diffable.
 */

#ifndef DARCO_OBS_EVENT_HH
#define DARCO_OBS_EVENT_HH

#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace darco::obs
{

/** Chrome-trace-event phases we emit. */
enum class Phase : u8
{
    Complete, //!< a duration span ("X": ts + dur)
    Instant,  //!< a point event ("i")
};

/**
 * One trace event. `track` selects the timeline row: track 0 is the
 * main guest-execution thread; tracks 1..vthreads are the virtual
 * translator workers of the async pipeline (deterministic assignment
 * by enqueue sequence, never by host thread identity).
 */
struct TraceEvent
{
    Phase phase = Phase::Instant;
    u16 track = 0;
    const char *component = ""; //!< static category string ("mode", ...)
    std::string name;
    u64 vtime = 0;  //!< retired guest insts at event start
    u64 vdur = 0;   //!< virtual duration (Complete only)
    u64 wallNs = 0; //!< host ns at emission; 0 in deterministic mode
    std::vector<std::pair<std::string, u64>> args;
};

} // namespace darco::obs

#endif // DARCO_OBS_EVENT_HH
