#include "obs/metrics.hh"

#include <cstdio>

namespace darco::obs
{

void
MetricsWriter::writeTo(std::ostream &os) const
{
    for (const Row &row : rows_) {
        os << "{";
        bool first = true;
        for (const auto &[k, v] : row.ints) {
            if (!first)
                os << ",";
            first = false;
            os << "\"" << k << "\":" << v;
        }
        for (const auto &[k, v] : row.reals) {
            if (!first)
                os << ",";
            first = false;
            // Fixed precision: shares are ratios of worker-invariant
            // integer counts, so the text is deterministic too.
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.6f", v);
            os << "\"" << k << "\":" << buf;
        }
        os << "}\n";
    }
}

} // namespace darco::obs
