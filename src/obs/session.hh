/**
 * @file
 * obs::Session — config-driven ownership of one run's tracer and
 * interval-metrics stream.
 *
 * Built by the Controller from the `obs.*` parameters; null when both
 * outputs are disabled, so components pay a single pointer test on
 * the hot path and nothing else. The session outlives Tol rebuilds
 * (checkpoint restore) and writes its files once, at teardown or on
 * an explicit write().
 */

#ifndef DARCO_OBS_SESSION_HH
#define DARCO_OBS_SESSION_HH

#include <memory>
#include <string>

#include "obs/metrics.hh"
#include "obs/tracer.hh"

namespace darco
{
class Config;
}

namespace darco::obs
{

class Session
{
  public:
    /**
     * Build from `obs.trace.path` / `obs.metrics.path` (and their
     * sibling parameters); nullptr when both paths are empty.
     */
    static std::unique_ptr<Session> fromConfig(const Config &cfg);

    ~Session();

    /** nullptr when event tracing is off (metrics-only session). */
    Tracer *tracer() { return tracer_.get(); }
    /** nullptr when interval metrics are off (trace-only session). */
    MetricsWriter *metrics() { return metrics_.get(); }

    /** Label the trace's process row (campaign job identity). */
    void setJobLabel(const std::string &label);

    /** Write both output files; idempotent (second call is a no-op). */
    void write();

  private:
    Session() = default;

    std::unique_ptr<Tracer> tracer_;
    std::unique_ptr<MetricsWriter> metrics_;
    std::string tracePath_;
    std::string metricsPath_;
    bool written_ = false;
};

} // namespace darco::obs

#endif // DARCO_OBS_SESSION_HH
