/**
 * @file
 * obs::MetricsWriter — a JSONL interval-metrics stream.
 *
 * Every `obs.metrics.interval` retired guest instructions the
 * simulation emits one row with the interval's mode distribution and
 * overhead breakdown — the paper's Fig. 4/6/7 as live timelines from
 * any run. Rows are buffered in memory and written at session
 * teardown; field values are integers plus derived shares, all pure
 * functions of virtual time, so the stream is byte-identical across
 * worker counts.
 */

#ifndef DARCO_OBS_METRICS_HH
#define DARCO_OBS_METRICS_HH

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace darco::obs
{

class MetricsWriter
{
  public:
    /** One JSONL row: ordered integer fields plus derived ratios. */
    struct Row
    {
        std::vector<std::pair<std::string, u64>> ints;
        std::vector<std::pair<std::string, double>> reals;
    };

    explicit MetricsWriter(u64 interval) : interval_(interval ? interval : 1)
    {}

    /** Interval length in retired guest instructions. */
    u64 interval() const { return interval_; }

    void append(Row row) { rows_.push_back(std::move(row)); }

    const std::vector<Row> &rows() const { return rows_; }

    /** One JSON object per line, fields in append order. */
    void writeTo(std::ostream &os) const;

  private:
    u64 interval_;
    std::vector<Row> rows_;
};

} // namespace darco::obs

#endif // DARCO_OBS_METRICS_HH
