/**
 * @file
 * obs::Tracer — deterministic in-memory event recorder with a Chrome
 * trace-event JSON exporter (loadable in Perfetto / chrome://tracing).
 *
 * Determinism contract (mirrors the async translator's): all events
 * are emitted from the simulation thread at deterministic points in
 * the guest's virtual time; async translation jobs appear as spans on
 * virtual worker tracks computed from the enqueue sequence number, so
 * the recorded stream is byte-identical for any positive
 * `tol.async.threads`. Wall-clock stamps are only taken when the
 * tracer is constructed in wall mode (obs.trace.clock=wall); the
 * default virtual mode zeroes them so traces are diffable.
 *
 * Components hold a raw `Tracer *` that is nullptr when tracing is
 * disabled — the disabled path is a single pointer test, and no
 * counters or allocations exist at all.
 */

#ifndef DARCO_OBS_TRACER_HH
#define DARCO_OBS_TRACER_HH

#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/event.hh"

namespace darco::obs
{

/** Which timestamp the Chrome exporter writes into `ts`. */
enum class TraceClock : u8
{
    Virtual, //!< retired guest insts (1 tick = 1 inst); deterministic
    Wall,    //!< host ns / 1000 since tracer construction
};

class Tracer
{
  public:
    explicit Tracer(TraceClock clock = TraceClock::Virtual);

    TraceClock clock() const { return clock_; }

    /**
     * Point the tracer at the simulation's retired-instruction
     * counter. Re-pointable (the Tol is rebuilt on checkpoint
     * restore); events emitted while unset are stamped 0.
     */
    void setVirtualClock(const u64 *vclock) { vclock_ = vclock; }

    /** Retired guest instructions right now (0 before attach). */
    u64 now() const { return vclock_ ? *vclock_ : 0; }

    /** Name a timeline row ("main", "translator-1", ...). */
    void setTrackName(u16 track, std::string name);
    /** Name the whole process row (campaign job identity). */
    void setProcessName(std::string name);

    /** Record a point event at the current virtual time. */
    void instant(const char *component, std::string name, u16 track = 0,
                 std::vector<std::pair<std::string, u64>> args = {});

    /** Record a duration span [start, start + dur). */
    void complete(const char *component, std::string name, u64 start,
                  u64 dur, u16 track = 0,
                  std::vector<std::pair<std::string, u64>> args = {});

    /** Recorded events, in emission order (test access). */
    const std::vector<TraceEvent> &events() const { return events_; }

    const std::string &processName() const { return process_; }

    /**
     * Emit {"traceEvents": [...]} — metadata rows first (process and
     * track names), then every event in emission order. `ts`/`dur`
     * are virtual ticks in Virtual mode, microseconds in Wall mode
     * (with the virtual stamps preserved under `args`).
     */
    void exportChromeJson(std::ostream &os) const;

  private:
    void push(TraceEvent ev);
    u64 wallNowNs() const;

    TraceClock clock_;
    const u64 *vclock_ = nullptr;
    std::string process_ = "darco";
    std::map<u16, std::string> trackNames_;
    std::vector<TraceEvent> events_;
    u64 epochNs_ = 0;
    // Emission is simulation-thread-only by design; the mutex is a
    // cheap defensive guarantee for tests that poke the tracer from
    // helper threads.
    mutable std::mutex mu_;
};

} // namespace darco::obs

#endif // DARCO_OBS_TRACER_HH
