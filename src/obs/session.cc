#include "obs/session.hh"

#include <fstream>

#include "common/logging.hh"
#include "common/schema.hh"

namespace darco::obs
{

std::unique_ptr<Session>
Session::fromConfig(const Config &cfg)
{
    const std::string tracePath = conf::getString(cfg, "obs.trace.path");
    const std::string metricsPath = conf::getString(cfg, "obs.metrics.path");
    if (tracePath.empty() && metricsPath.empty())
        return nullptr;

    std::unique_ptr<Session> s(new Session());
    if (!tracePath.empty()) {
        const TraceClock clock =
            conf::getEnum(cfg, "obs.trace.clock") == "wall"
                ? TraceClock::Wall
                : TraceClock::Virtual;
        s->tracer_ = std::make_unique<Tracer>(clock);
        s->tracePath_ = tracePath;
    }
    if (!metricsPath.empty()) {
        s->metrics_ = std::make_unique<MetricsWriter>(
            conf::getUint(cfg, "obs.metrics.interval"));
        s->metricsPath_ = metricsPath;
    }
    return s;
}

Session::~Session()
{
    write();
}

void
Session::setJobLabel(const std::string &label)
{
    if (tracer_)
        tracer_->setProcessName(label);
}

void
Session::write()
{
    if (written_)
        return;
    written_ = true;
    if (tracer_ && !tracePath_.empty()) {
        std::ofstream f(tracePath_);
        if (f)
            tracer_->exportChromeJson(f);
        else
            warn("obs: cannot write trace to ", tracePath_);
    }
    if (metrics_ && !metricsPath_.empty()) {
        std::ofstream f(metricsPath_);
        if (f)
            metrics_->writeTo(f);
        else
            warn("obs: cannot write metrics to ", metricsPath_);
    }
}

} // namespace darco::obs
