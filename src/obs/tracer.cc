#include "obs/tracer.hh"

#include <chrono>
#include <cstdio>

namespace darco::obs
{

namespace
{

u64
steadyNs()
{
    return u64(std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now().time_since_epoch())
                   .count());
}

/** JSON string escape (names are controlled ASCII, but be safe). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (u8(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", unsigned(u8(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
writeMeta(std::ostream &os, const char *what, u16 tid,
          const std::string &name, bool &first)
{
    if (!first)
        os << ",\n";
    first = false;
    os << "{\"name\":\"" << what << "\",\"ph\":\"M\",\"pid\":1,\"tid\":"
       << tid << ",\"args\":{\"name\":\"" << jsonEscape(name) << "\"}}";
}

} // namespace

Tracer::Tracer(TraceClock clock) : clock_(clock)
{
    if (clock_ == TraceClock::Wall)
        epochNs_ = steadyNs();
    trackNames_[0] = "main";
}

u64
Tracer::wallNowNs() const
{
    if (clock_ != TraceClock::Wall)
        return 0;
    return steadyNs() - epochNs_;
}

void
Tracer::setTrackName(u16 track, std::string name)
{
    std::lock_guard<std::mutex> lock(mu_);
    trackNames_[track] = std::move(name);
}

void
Tracer::setProcessName(std::string name)
{
    std::lock_guard<std::mutex> lock(mu_);
    process_ = std::move(name);
}

void
Tracer::push(TraceEvent ev)
{
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(std::move(ev));
}

void
Tracer::instant(const char *component, std::string name, u16 track,
                std::vector<std::pair<std::string, u64>> args)
{
    TraceEvent ev;
    ev.phase = Phase::Instant;
    ev.track = track;
    ev.component = component;
    ev.name = std::move(name);
    ev.vtime = now();
    ev.wallNs = wallNowNs();
    ev.args = std::move(args);
    push(std::move(ev));
}

void
Tracer::complete(const char *component, std::string name, u64 start,
                 u64 dur, u16 track,
                 std::vector<std::pair<std::string, u64>> args)
{
    TraceEvent ev;
    ev.phase = Phase::Complete;
    ev.track = track;
    ev.component = component;
    ev.name = std::move(name);
    ev.vtime = start;
    ev.vdur = dur;
    ev.wallNs = wallNowNs();
    ev.args = std::move(args);
    push(std::move(ev));
}

void
Tracer::exportChromeJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mu_);
    os << "{\"traceEvents\":[\n";
    bool first = true;
    writeMeta(os, "process_name", 0, process_, first);
    for (const auto &[tid, name] : trackNames_)
        writeMeta(os, "thread_name", tid, name, first);
    for (const TraceEvent &ev : events_) {
        if (!first)
            os << ",\n";
        first = false;
        const bool wall = clock_ == TraceClock::Wall;
        const u64 ts = wall ? ev.wallNs / 1000 : ev.vtime;
        os << "{\"name\":\"" << jsonEscape(ev.name) << "\",\"cat\":\""
           << ev.component << "\",\"ph\":\""
           << (ev.phase == Phase::Complete ? "X" : "i")
           << "\",\"pid\":1,\"tid\":" << ev.track << ",\"ts\":" << ts;
        if (ev.phase == Phase::Complete)
            os << ",\"dur\":" << (wall ? 0 : ev.vdur);
        else
            os << ",\"s\":\"t\"";
        if (!ev.args.empty() || wall) {
            os << ",\"args\":{";
            bool firstArg = true;
            if (wall) {
                os << "\"vtime\":" << ev.vtime << ",\"vdur\":" << ev.vdur;
                firstArg = false;
            }
            for (const auto &[k, v] : ev.args) {
                if (!firstArg)
                    os << ",";
                firstArg = false;
                os << "\"" << jsonEscape(k) << "\":" << v;
            }
            os << "}";
        }
        os << "}";
    }
    os << "\n]}\n";
}

} // namespace darco::obs
