#include "power/power.hh"

#include <sstream>

#include "common/schema.hh"

namespace darco::power
{

std::string
PowerReport::toString() const
{
    std::ostringstream os;
    os << "energy " << totalEnergyJ * 1e3 << " mJ, power " << avgPowerW
       << " W, EPI " << epiNj << " nJ\n";
    for (const auto &[k, v] : breakdownJ)
        os << "  " << k << ": " << v * 1e3 << " mJ\n";
    return os.str();
}

PowerModel::PowerModel(const Config &cfg)
    : eFrontend_(conf::getFloat(cfg, "power.e_frontend")),
      eIssue_(conf::getFloat(cfg, "power.e_issue")),
      eAlu_(conf::getFloat(cfg, "power.e_alu")),
      eMul_(conf::getFloat(cfg, "power.e_mul")),
      eDiv_(conf::getFloat(cfg, "power.e_div")),
      eFp_(conf::getFloat(cfg, "power.e_fp")),
      eMemPort_(conf::getFloat(cfg, "power.e_mem_port")),
      eL1_(conf::getFloat(cfg, "power.e_l1")),
      eL2_(conf::getFloat(cfg, "power.e_l2")),
      eDram_(conf::getFloat(cfg, "power.e_dram")),
      eTlb_(conf::getFloat(cfg, "power.e_tlb")),
      eBpred_(conf::getFloat(cfg, "power.e_bpred")),
      ePrefetch_(conf::getFloat(cfg, "power.e_prefetch")),
      leakageW_(conf::getFloat(cfg, "power.leakage_w")),
      freqGhz_(conf::getFloat(cfg, "power.freq_ghz"))
{
}

PowerReport
PowerModel::analyze(const StatGroup &s) const
{
    constexpr double nJ = 1e-9;
    auto v = [&](const char *name) { return double(s.value(name)); };

    PowerReport r;
    auto add = [&](const std::string &name, double joules) {
        r.breakdownJ.emplace_back(name, joules);
        r.totalEnergyJ += joules;
    };

    double insts = v("core.instructions");
    add("frontend", insts * eFrontend_ * nJ);
    add("issue+regfile", insts * eIssue_ * nJ);
    add("int_alu", v("core.alu_ops") * eAlu_ * nJ);
    add("int_mul", v("core.mul_ops") * eMul_ * nJ);
    add("int_div", v("core.div_ops") * eDiv_ * nJ);
    add("fp_vec", v("core.fp_ops") * eFp_ * nJ);
    add("mem_ports", v("core.mem_ops") * eMemPort_ * nJ);

    double l1 = v("l1i.hits") + v("l1i.misses") + v("l1d.hits") +
                v("l1d.misses");
    add("l1_caches", l1 * eL1_ * nJ);
    double l2 = v("l2.hits") + v("l2.misses");
    add("l2_cache", l2 * eL2_ * nJ);
    add("dram", v("l2.misses") * eDram_ * nJ);

    double tlb = v("itlb.l1.hits") + v("itlb.l1.misses") +
                 v("dtlb.l1.hits") + v("dtlb.l1.misses");
    add("tlbs", tlb * eTlb_ * nJ);
    add("bpred+btb",
        (v("bpred.lookups") + v("btb.hits") + v("btb.misses")) *
            eBpred_ * nJ);
    add("prefetcher", v("prefetch.issued") * ePrefetch_ * nJ);

    r.timeSeconds = v("core.cycles") / (freqGhz_ * 1e9);
    double leakJ = leakageW_ * r.timeSeconds;
    add("leakage", leakJ);

    r.avgPowerW =
        r.timeSeconds > 0 ? r.totalEnergyJ / r.timeSeconds : 0.0;
    r.epiNj = insts > 0 ? r.totalEnergyJ / insts / nJ : 0.0;
    return r;
}

} // namespace darco::power
