/**
 * @file
 * powerlite: the event-energy power/energy model standing in for the
 * paper's McPAT integration (see DESIGN.md substitution table).
 *
 * Like the paper's use of McPAT, the model is fed by the activity
 * counters the timing simulator produces and reports per-structure
 * dynamic energy plus leakage, total average power, and energy per
 * instruction. Per-event energies are configurable so technology
 * assumptions can be swept.
 */

#ifndef DARCO_POWER_POWER_HH
#define DARCO_POWER_POWER_HH

#include <string>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"

namespace darco::power
{

/** Energy/power summary for one simulated run. */
struct PowerReport
{
    double totalEnergyJ = 0;
    double timeSeconds = 0;
    double avgPowerW = 0;
    double epiNj = 0; //!< energy per host instruction (nJ)
    std::vector<std::pair<std::string, double>> breakdownJ;

    std::string toString() const;
};

/**
 * Event-energy model.
 *
 * Config keys (per-event energies in nJ; defaults in parentheses):
 *   power.e_frontend (0.022)  per instruction (fetch+decode)
 *   power.e_issue (0.014)     per instruction (issue+regfile)
 *   power.e_alu (0.028)
 *   power.e_mul (0.10)
 *   power.e_div (0.24)
 *   power.e_fp (0.12)
 *   power.e_mem_port (0.02)
 *   power.e_l1 (0.075)        per L1 access (I or D)
 *   power.e_l2 (0.34)         per L2 access
 *   power.e_dram (7.5)        per memory access (L2 miss)
 *   power.e_tlb (0.004)
 *   power.e_bpred (0.0035)
 *   power.e_prefetch (0.075)
 *   power.leakage_w (0.25)    static power in watts
 *   power.freq_ghz (2.0)
 */
class PowerModel
{
  public:
    explicit PowerModel(const Config &cfg = Config());

    /** Analyze the counters produced by timing::InOrderCore. */
    PowerReport analyze(const StatGroup &timing_stats) const;

  private:
    double eFrontend_, eIssue_, eAlu_, eMul_, eDiv_, eFp_, eMemPort_;
    double eL1_, eL2_, eDram_, eTlb_, eBpred_, ePrefetch_;
    double leakageW_, freqGhz_;
};

} // namespace darco::power

#endif // DARCO_POWER_POWER_HH
