/**
 * @file
 * The Controller: DARCO's main user interface (paper Section V).
 *
 * Owns both components and implements the three-phase execution flow:
 *
 *  1. Initialization — load the program into the reference component,
 *     transfer the initial architectural state to the co-designed
 *     component;
 *  2. Execution — the co-designed component (TOL + host emulator)
 *     makes forward progress while the reference component idles;
 *  3. Synchronization — on data requests (first touch of a guest
 *     page), syscalls (executed only by the reference component), and
 *     end of application. The reference component runs forward to the
 *     same execution point (completed-instruction count), then pages /
 *     syscall effects / final state cross the boundary.
 *
 * The controller also owns correctness validation: the co-designed
 * component's emulated state is compared against the reference
 * component's authoritative state at syscalls and at program end
 * (configurable), and the divergence debug toolchain (debug.hh) can
 * pinpoint the first bad region.
 */

#ifndef DARCO_SIM_CONTROLLER_HH
#define DARCO_SIM_CONTROLLER_HH

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "guest/program.hh"
#include "obs/session.hh"
#include "tol/tol.hh"
#include "xemu/ref_component.hh"

namespace darco::sim
{

/** Raised when validation finds reference/co-designed divergence. */
class DivergenceError : public std::runtime_error
{
  public:
    explicit DivergenceError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/**
 * The DARCO controller.
 *
 * Configuration: every parameter (the sync.* validation toggles, all
 * forwarded Tol/HostEmu/CostModel/timing/power keys) is declared in
 * the central schema (src/common/schema.cc); see the generated
 * reference in docs/CONFIG.md or `darco_campaign --list-config`. The
 * constructor validates the whole Config against that schema:
 * unknown keys (with a nearest-match suggestion), out-of-range
 * values and bad enum strings raise FatalError.
 */
class Controller : public tol::Tol::Env
{
  public:
    explicit Controller(const Config &cfg = Config());
    /** Flushes and writes the observability outputs (if enabled). */
    ~Controller();

    /**
     * Initialization phase. Builds the co-designed component (Tol):
     * the controller is inert until the first load(), and loading
     * again restarts cleanly with a fresh Tol and emulated memory.
     */
    void load(const guest::Program &prog);

    /** Has load() been called yet? */
    bool loaded() const { return tol_ != nullptr; }

    /** Execution phase; returns when the program finishes. */
    void run(u64 max_guest_insts = ~0ull);

    /** One bounded execution slice; false once finished. */
    bool step(u64 guest_insts);

    bool finished() const { return tol_ && tol_->finished(); }
    /** Core 0's exit code (the single-core exit code). */
    u32 exitCode() const { return refs_[0]->exitCode(); }

    /** Guest hardware contexts (`cores` parameter). */
    u32 numCores() const { return cores_; }

    /**
     * Compare co-designed vs authoritative state now (both sides must
     * be at the same completed-instruction count).
     * @return empty string if equal, else a diff description.
     */
    std::string validateState(u32 core = 0);

    /** Full end-of-application validation (registers + memory),
     *  applied to every core. */
    void validateFinal();

    xemu::RefComponent &ref(u32 core = 0) { return *refs_[core]; }

    tol::Tol &
    tol()
    {
        darco_assert(tol_, "Controller::load() must run first");
        return *tol_;
    }

    /** Code-cache / translation introspection (tests, debug tools). */
    host::CodeCache &codeCache() { return tol().codeCache(); }
    tol::TranslationRegistry &registry() { return tol().registry(); }

    guest::PagedMemory &emulatedMemory(u32 core = 0)
    {
        return *mems_[core];
    }
    StatGroup &stats() { return stats_; }
    const Config &config() const { return cfg_; }

    /**
     * Attach a per-controller log sink: messages emitted while this
     * controller executes (load/run/step/checkpoint paths) route here
     * instead of the process-global sink, so concurrent campaign jobs
     * keep their warnings apart. nullptr (the default) falls back to
     * the global sink. The sink must outlive the controller.
     */
    void setLogSink(LogSink *sink) { logSink_ = sink; }

    /** The run's tracing/metrics session; null when obs.* disabled. */
    obs::Session *obsSession() { return obs_.get(); }

    // --- checkpoint/restore ----------------------------------------------
    /**
     * Serialize the full simulation state (both components, stats)
     * as a versioned checkpoint. Host code is not serialized:
     * restoreCheckpoint() retranslates every registered region, so
     * the image is host-agnostic. If execution paused inside a
     * translated region, the runtime first runs to the next region
     * boundary (Tol::quiesce), so the saved point can overshoot a
     * step() budget by up to one region's remainder.
     */
    void saveCheckpoint(std::ostream &os);

    /**
     * Restore a checkpoint written by saveCheckpoint(). Works on a
     * fresh Controller (no load() needed — the memory images carry
     * the program). The Controller's *execution-relevant* effective
     * config (see docs/CONFIG.md) must match the checkpoint's
     * exactly; parameters that only affect measurement or validation
     * (sync.*, core.*, power.*, ...) may differ freely. A mismatch
     * is refused naming the offending parameter and both values;
     * bad magic/version/truncated streams also throw
     * snapshot::SnapshotError.
     */
    void restoreCheckpoint(std::istream &is);

    // --- Tol::Env (Synchronization phase) --------------------------------
    void dataRequest(u32 core, GAddr page, u64 completed_insts) override;
    bool syscall(u32 core, u64 completed_insts) override;

  private:
    /** Point the Tol at the session's tracer/metrics (if any). */
    void attachObs();
    /** Wire per-core memories into the (fresh) Tol. */
    void attachCoreMemories();

    Config cfg_;
    StatGroup stats_;
    u32 cores_; //!< guest hardware contexts (`cores` parameter)
    /** One authoritative reference component per core (core i seeded
     *  seed+i, matching the Tol's per-core GuestOS streams). */
    std::vector<std::unique_ptr<xemu::RefComponent>> refs_;
    /** One co-designed (demand-paged) memory image per core. */
    std::vector<std::unique_ptr<guest::PagedMemory>> mems_;
    std::unique_ptr<tol::Tol> tol_;
    /** Outlives Tol rebuilds (load/restore); declared before tol_'s
     *  users is irrelevant — tol_ only borrows raw pointers. */
    std::unique_ptr<obs::Session> obs_;
    bool validateSyscalls_;
    bool validateEnd_;
    bool validateMemory_;
    LogLevel logLevel_;           //!< this controller's `log.level`
    LogSink *logSink_ = nullptr;  //!< per-controller sink (optional)
};

} // namespace darco::sim

#endif // DARCO_SIM_CONTROLLER_HH
