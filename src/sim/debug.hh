/**
 * @file
 * Divergence debug toolchain (paper Sections IV/V-D).
 *
 * When validation detects a mismatch between the co-designed and
 * authoritative states, this tool re-executes both components in
 * lockstep at region granularity and pinpoints the first region whose
 * retirement produced divergent state — reporting its guest entry pc,
 * the covered instruction range, the state diff, and a disassembly of
 * the guilty guest code ("pinpoints the exact basic block where the
 * problem originated").
 *
 * Deterministic re-execution makes this reliable: a divergence seen
 * once reproduces identically.
 */

#ifndef DARCO_SIM_DEBUG_HH
#define DARCO_SIM_DEBUG_HH

#include <functional>
#include <optional>
#include <string>

#include "common/config.hh"
#include "guest/program.hh"
#include "tol/tol.hh"

namespace darco::sim
{

/** Report for the first divergent region. */
struct DivergencePoint
{
    GAddr regionEntryPc = 0;   //!< guest pc the bad region started at
    u64 instFrom = 0;          //!< completed insts at region entry
    u64 instTo = 0;            //!< completed insts after retirement
    std::string stateDiff;     //!< authoritative vs emulated
    std::string disassembly;   //!< guest code of the region's first BB
};

/**
 * Lockstep-replay a program and locate the first divergent region.
 *
 * @param sabotage optional fault-injection hook called after every
 *        co-designed execution slice with (tol, completed_insts) —
 *        used by tests and the debug example to emulate a translator
 *        bug.
 * @return nullopt if the run completes with no divergence.
 */
std::optional<DivergencePoint> findFirstDivergence(
    const guest::Program &prog, const Config &cfg, u64 max_insts,
    const std::function<void(tol::Tol &, u64)> &sabotage = {});

} // namespace darco::sim

#endif // DARCO_SIM_DEBUG_HH
