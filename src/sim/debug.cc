#include "sim/debug.hh"

#include <sstream>

#include "common/schema.hh"
#include "guest/semantics.hh"
#include "xemu/ref_component.hh"

namespace darco::sim
{

using namespace guest;

std::optional<DivergencePoint>
findFirstDivergence(const Program &prog, const Config &cfg,
                    u64 max_insts,
                    const std::function<void(tol::Tol &, u64)> &sabotage)
{
    conf::schema().validate(cfg, "divergence debugger");
    xemu::RefComponent ref(conf::getUint(cfg, "seed"));
    ref.load(prog);

    // Standalone co-designed rig (zero-fill memory): the debugger
    // compares architectural state only, so the data-request protocol
    // is unnecessary here and lockstep is much simpler.
    PagedMemory mem(MissPolicy::AllocateZero);
    StatGroup stats("debug");
    tol::Tol tol(mem, cfg, stats);
    tol.setState(prog.load(mem));

    GAddr region_pc = tol.state().pc;
    u64 prev = 0;

    while (!tol.finished() && tol.completedInsts() < max_insts) {
        tol.run(1); // one region / one BB per slice
        if (sabotage)
            sabotage(tol, tol.completedInsts());
        ref.runUntilInstCount(tol.completedInsts());

        CpuState a = ref.state();
        CpuState b = tol.state();
        if (!(a == b)) {
            DivergencePoint d;
            d.regionEntryPc = region_pc;
            d.instFrom = prev;
            d.instTo = tol.completedInsts();
            d.stateDiff = a.diff(b);
            std::ostringstream os;
            GAddr pc = region_pc;
            for (int k = 0; k < 64; ++k) {
                GInst gi;
                try {
                    gi = fetchInst(ref.memory(), pc);
                } catch (const GuestFault &) {
                    break;
                }
                os << "  0x" << std::hex << pc << std::dec << ": "
                   << disasm(gi, pc) << "\n";
                if (gi.isCti())
                    break;
                pc += gi.length;
            }
            d.disassembly = os.str();
            return d;
        }
        region_pc = b.pc;
        prev = tol.completedInsts();
    }
    return std::nullopt;
}

} // namespace darco::sim
