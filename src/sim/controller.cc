#include "sim/controller.hh"

#include <cstring>
#include <sstream>

#include "common/logging.hh"
#include "common/schema.hh"
#include "snapshot/io.hh"

namespace darco::sim
{

using namespace guest;

namespace
{

/**
 * Validation choke point: every key must be declared, in range, and
 * inside its enum domain before anything reads it — a typo'd sweep
 * key ("tol.sb_treshold") must never silently run the default
 * experiment. Runs in a member-initializer so it precedes every
 * schema-bound read in the initializer list.
 */
const Config &
validated(const Config &cfg)
{
    cfg.validate(conf::schema(), "controller");
    return cfg;
}

} // namespace

Controller::Controller(const Config &cfg)
    : cfg_(validated(cfg)),
      stats_("darco"),
      ref_(conf::getUint(cfg_, "seed")),
      validateSyscalls_(conf::getBool(cfg_, "sync.validate_syscalls")),
      validateEnd_(conf::getBool(cfg_, "sync.validate_end")),
      validateMemory_(conf::getBool(cfg_, "sync.validate_memory"))
{
    // The co-designed component is built lazily in load(): it holds a
    // reference to the emulated memory, which load() replaces, so an
    // eagerly-built Tol would be discarded unused.
    setLogLevel(parseLogLevel(conf::getEnum(cfg_, "log.level")));
    obs_ = obs::Session::fromConfig(cfg_);
}

Controller::~Controller()
{
    if (!obs_)
        return;
    if (tol_)
        tol_->flushObs();
    obs_->write();
}

void
Controller::attachObs()
{
    if (obs_ && tol_)
        tol_->attachObs(obs_->tracer(), obs_->metrics());
}

void
Controller::load(const Program &prog)
{
    // The reference component launches the application and produces
    // the initial architectural state; the controller forwards it to
    // the co-designed component (which starts with an empty memory
    // image and demand-fetches every page).
    ref_.load(prog);
    mem_ = PagedMemory(MissPolicy::Signal);
    tol_ = std::make_unique<tol::Tol>(mem_, cfg_, stats_);
    tol_->setEnv(this);
    tol_->setState(ref_.state());
    attachObs();
}

void
Controller::dataRequest(GAddr page, u64 completed_insts)
{
    // The reference component runs forward to the same execution
    // point, then the requested page crosses to the co-designed side.
    ref_.runUntilInstCount(completed_insts);
    mem_.installPage(page, ref_.memory().page(page));
    stats_.counter("sync.pages_transferred").inc();
}

bool
Controller::syscall(u64 completed_insts)
{
    ref_.runUntilInstCount(completed_insts);
    stats_.counter("sync.syscalls").inc();

    if (validateSyscalls_) {
        std::string diff = validateState();
        if (!diff.empty()) {
            throw DivergenceError(
                "state validation failed at syscall (inst " +
                std::to_string(completed_insts) + "): " + diff);
        }
        stats_.counter("sync.validations").inc();
    }

    // System code executes only in the reference component; its
    // effects then cross the boundary.
    CpuState before = ref_.state();
    (void)before;
    GInst gi = fetchInst(ref_.memory(), ref_.state().pc);
    darco_assert(gi.op == GOp::SYSCALL,
                 "syscall sync at a non-syscall pc");
    ref_.step();

    // Register effects: the syscall ABI clobbers RAX only; pc advances.
    tol_->state().gpr[RAX] = ref_.state().gpr[RAX];
    tol_->state().pc = ref_.state().pc;

    // Memory effects: pages the OS wrote (e.g. sysRead) that the
    // co-designed side already holds must be refreshed; absent pages
    // are fetched later with correct content by the data-request path.
    for (GAddr page : ref_.lastSyscallDirtiedPages()) {
        if (mem_.hasPage(page))
            mem_.installPage(page, ref_.memory().page(page));
    }

    return !ref_.finished();
}

std::string
Controller::validateState()
{
    darco_assert(tol_, "Controller::load() must run first");
    CpuState a = ref_.state();
    CpuState b = tol_->state();
    if (a == b)
        return "";
    return a.diff(b);
}

void
Controller::validateFinal()
{
    // Bring the reference component to the co-designed component's
    // final execution point (it may be exactly one HLT behind).
    ref_.runUntilInstCount(tol_->completedInsts());
    if (!ref_.finished())
        ref_.step(); // consume a trailing HLT

    std::string diff = validateState();
    if (!diff.empty())
        throw DivergenceError("final state validation failed: " + diff);
    if (ref_.instCount() != tol_->completedInsts()) {
        throw DivergenceError(
            "retired-instruction mismatch: ref " +
            std::to_string(ref_.instCount()) + " vs co-designed " +
            std::to_string(tol_->completedInsts()));
    }

    if (validateMemory_) {
        for (GAddr page : mem_.residentPages()) {
            const u8 *mine = mem_.page(page);
            const u8 *theirs = ref_.memory().page(page);
            if (std::memcmp(mine, theirs, pageSizeBytes) != 0) {
                std::ostringstream os;
                os << "memory validation failed at page 0x" << std::hex
                   << page;
                throw DivergenceError(os.str());
            }
        }
        stats_.counter("sync.pages_validated").inc(mem_.pageCount());
    }
}

bool
Controller::step(u64 guest_insts)
{
    darco_assert(tol_, "Controller::load() must run first");
    if (tol_->finished())
        return false;
    tol_->run(guest_insts);
    if (tol_->finished() && validateEnd_)
        validateFinal();
    return !tol_->finished();
}

void
Controller::run(u64 max_guest_insts)
{
    darco_assert(tol_, "Controller::load() must run first");
    tol_->run(max_guest_insts);
    if (tol_->finished() && validateEnd_)
        validateFinal();
}

// ---------------------------------------------------------------------
// Checkpoint/restore
// ---------------------------------------------------------------------

void
Controller::saveCheckpoint(std::ostream &os)
{
    darco_assert(tol_, "Controller::load() must run first");
    tol_->quiesce();
    if (obs_ && obs_->tracer())
        obs_->tracer()->instant("ckpt", "checkpoint.save");

    snapshot::Serializer s(os);

    // Config snapshot: the schema-normalized effective values of the
    // *execution-relevant* parameters only. Restore refuses a
    // mismatch on any of them (the replayed translations depend on
    // them), but measurement/validation parameters — sync toggles,
    // timing and power models — may differ freely, so e.g. a
    // checkpoint taken with validation on restores into a campaign
    // running with it off. Default-resolved comparison also makes
    // "explicitly set to the default" equal to "unset".
    s.beginSection("cfg");
    std::map<std::string, std::string> exec =
        conf::schema().executionRelevant(cfg_);
    s.w64(exec.size());
    for (const auto &[k, v] : exec) {
        s.wstr(k);
        s.wstr(v);
    }
    s.endSection();

    s.beginSection("ref");
    ref_.save(s);
    s.endSection();

    s.beginSection("emem");
    mem_.save(s);
    s.endSection();

    s.beginSection("tol");
    tol_->save(s);
    s.endSection();

    s.beginSection("stats");
    s.w64(stats_.counters().size());
    for (const auto &[name, c] : stats_.counters()) {
        s.wstr(name);
        s.w64(c.value());
    }
    s.endSection();

    s.finish();
}

void
Controller::restoreCheckpoint(std::istream &is)
{
    snapshot::Deserializer d(is);

    // Schema-aware compatibility check: compare the checkpoint's
    // execution-relevant effective config against ours, parameter by
    // parameter, and name the exact offender on refusal. Cosmetic
    // differences (sync/timing/power parameters) never appear here.
    d.expectSection("cfg");
    std::map<std::string, std::string> mine =
        conf::schema().executionRelevant(cfg_);
    u64 ncfg = d.r64();
    std::map<std::string, std::string> theirs;
    for (u64 i = 0; i < ncfg; ++i) {
        std::string k = d.rstr();
        std::string v = d.rstr();
        theirs[k] = std::move(v);
    }
    d.endSection();
    for (const auto &[k, v] : theirs) {
        auto it = mine.find(k);
        if (it == mine.end())
            throw snapshot::SnapshotError(
                "checkpoint execution-relevant parameter '" + k +
                "' (value '" + v + "') is not declared in this "
                "build's schema");
        if (it->second != v)
            throw snapshot::SnapshotError(
                "config mismatch at execution-relevant parameter '" +
                k + "': checkpoint '" + v + "' vs controller '" +
                it->second + "'");
    }
    for (const auto &[k, v] : mine) {
        if (!theirs.count(k))
            throw snapshot::SnapshotError(
                "execution-relevant parameter '" + k +
                "' (controller value '" + v +
                "') is missing from the checkpoint");
    }

    d.expectSection("ref");
    ref_.restore(d);
    d.endSection();

    d.expectSection("emem");
    mem_.restore(d);
    d.endSection();

    // Fresh co-designed component over the restored memory image; its
    // restore() replays translation installation (host code is
    // re-materialized, not deserialized).
    tol_ = std::make_unique<tol::Tol>(mem_, cfg_, stats_);
    tol_->setEnv(this);
    d.expectSection("tol");
    tol_->restore(d);
    d.endSection();

    // Attach only after restore: the install replay above must not be
    // traced (it reconstructs pre-checkpoint history, not new events).
    attachObs();
    if (obs_ && obs_->tracer())
        obs_->tracer()->instant("ckpt", "checkpoint.restore");

    // Last: overwrite every counter the replay bumped with the
    // checkpointed values.
    d.expectSection("stats");
    stats_.resetAll();
    u64 nstats = d.r64();
    for (u64 i = 0; i < nstats; ++i) {
        std::string name = d.rstr();
        stats_.counter(name).set(d.r64());
    }
    d.endSection();
}

} // namespace darco::sim
