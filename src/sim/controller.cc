#include "sim/controller.hh"

#include <cstring>
#include <sstream>

#include "common/logging.hh"
#include "common/schema.hh"
#include "snapshot/io.hh"

namespace darco::sim
{

using namespace guest;

namespace
{

/**
 * Validation choke point: every key must be declared, in range, and
 * inside its enum domain before anything reads it — a typo'd sweep
 * key ("tol.sb_treshold") must never silently run the default
 * experiment. Runs in a member-initializer so it precedes every
 * schema-bound read in the initializer list.
 */
const Config &
validated(const Config &cfg)
{
    cfg.validate(conf::schema(), "controller");
    return cfg;
}

} // namespace

Controller::Controller(const Config &cfg)
    : cfg_(validated(cfg)),
      stats_("darco"),
      cores_(u32(conf::getUint(cfg_, "cores"))),
      validateSyscalls_(conf::getBool(cfg_, "sync.validate_syscalls")),
      validateEnd_(conf::getBool(cfg_, "sync.validate_end")),
      validateMemory_(conf::getBool(cfg_, "sync.validate_memory")),
      logLevel_(parseLogLevel(conf::getEnum(cfg_, "log.level")))
{
    // One reference component and one demand-paged memory image per
    // guest core. Core i's reference is seeded seed+i, matching the
    // Tol's per-core GuestOS streams, so every core runs its own
    // deterministic instance of the workload. Built here (not in
    // load()) because restoreCheckpoint() works on a fresh controller.
    u64 seed = conf::getUint(cfg_, "seed");
    for (u32 i = 0; i < cores_; ++i) {
        refs_.push_back(std::make_unique<xemu::RefComponent>(seed + i));
        mems_.push_back(
            std::make_unique<PagedMemory>(MissPolicy::Signal));
    }
    // The co-designed component is built lazily in load(): it holds a
    // reference to the emulated memory, which load() replaces, so an
    // eagerly-built Tol would be discarded unused.
    //
    // Note: the log level is *not* installed globally here — it is
    // applied via a thread-local ScopedLogScope inside every entry
    // point, so two controllers on different threads (campaign
    // workers) never race on process-global logging state.
    obs_ = obs::Session::fromConfig(cfg_);
}

Controller::~Controller()
{
    ScopedLogScope scope(logSink_, logLevel_);
    if (!obs_)
        return;
    if (tol_)
        tol_->flushObs();
    obs_->write();
}

void
Controller::attachObs()
{
    if (obs_ && tol_)
        tol_->attachObs(obs_->tracer(), obs_->metrics());
}

void
Controller::attachCoreMemories()
{
    // Core 0's memory is bound by the Tol constructor; the extra
    // cores' images are wired here. Must run before Tol::restore(),
    // which re-targets the shared host emulator at the restored
    // current core's memory.
    for (u32 i = 1; i < cores_; ++i)
        tol_->setCoreMemory(i, *mems_[i]);
}

void
Controller::load(const Program &prog)
{
    ScopedLogScope scope(logSink_, logLevel_);
    // Each reference component launches its own instance of the
    // application and produces the initial architectural state; the
    // controller forwards it to the co-designed component's matching
    // core (which starts with an empty memory image and demand-fetches
    // every page).
    for (u32 i = 0; i < cores_; ++i) {
        refs_[i]->load(prog);
        mems_[i] = std::make_unique<PagedMemory>(MissPolicy::Signal);
    }
    tol_ = std::make_unique<tol::Tol>(*mems_[0], cfg_, stats_);
    tol_->setEnv(this);
    attachCoreMemories();
    for (u32 i = 0; i < cores_; ++i)
        tol_->setState(i, refs_[i]->state());
    attachObs();
}

void
Controller::dataRequest(u32 core, GAddr page, u64 completed_insts)
{
    // The core's reference component runs forward to the same
    // execution point (the core's own completed-instruction count),
    // then the requested page crosses to the co-designed side.
    refs_[core]->runUntilInstCount(completed_insts);
    mems_[core]->installPage(page, refs_[core]->memory().page(page));
    stats_.counter("sync.pages_transferred").inc();
}

bool
Controller::syscall(u32 core, u64 completed_insts)
{
    xemu::RefComponent &ref = *refs_[core];
    PagedMemory &mem = *mems_[core];
    ref.runUntilInstCount(completed_insts);
    stats_.counter("sync.syscalls").inc();

    if (validateSyscalls_) {
        std::string diff = validateState(core);
        if (!diff.empty()) {
            throw DivergenceError(
                "state validation failed at syscall (core " +
                std::to_string(core) + ", inst " +
                std::to_string(completed_insts) + "): " + diff);
        }
        stats_.counter("sync.validations").inc();
    }

    // System code executes only in the reference component; its
    // effects then cross the boundary.
    GInst gi = fetchInst(ref.memory(), ref.state().pc);
    darco_assert(gi.op == GOp::SYSCALL,
                 "syscall sync at a non-syscall pc");
    ref.step();

    // Register effects: the syscall ABI clobbers RAX only; pc advances.
    tol_->state(core).gpr[RAX] = ref.state().gpr[RAX];
    tol_->state(core).pc = ref.state().pc;

    // Memory effects: pages the OS wrote (e.g. sysRead) that the
    // co-designed side already holds must be refreshed; absent pages
    // are fetched later with correct content by the data-request path.
    for (GAddr page : ref.lastSyscallDirtiedPages()) {
        if (mem.hasPage(page))
            mem.installPage(page, ref.memory().page(page));
    }

    return !ref.finished();
}

std::string
Controller::validateState(u32 core)
{
    darco_assert(tol_, "Controller::load() must run first");
    CpuState a = refs_[core]->state();
    CpuState b = tol_->state(core);
    if (a == b)
        return "";
    return a.diff(b);
}

void
Controller::validateFinal()
{
    ScopedLogScope scope(logSink_, logLevel_);
    for (u32 core = 0; core < cores_; ++core) {
        xemu::RefComponent &ref = *refs_[core];
        PagedMemory &mem = *mems_[core];

        // Bring the core's reference component to the co-designed
        // core's final execution point (it may be one HLT behind).
        ref.runUntilInstCount(tol_->completedInsts(core));
        if (!ref.finished())
            ref.step(); // consume a trailing HLT

        std::string diff = validateState(core);
        if (!diff.empty())
            throw DivergenceError("final state validation failed "
                                  "(core " + std::to_string(core) +
                                  "): " + diff);
        if (ref.instCount() != tol_->completedInsts(core)) {
            throw DivergenceError(
                "retired-instruction mismatch (core " +
                std::to_string(core) + "): ref " +
                std::to_string(ref.instCount()) + " vs co-designed " +
                std::to_string(tol_->completedInsts(core)));
        }

        if (!validateMemory_)
            continue;
        for (GAddr page : mem.residentPages()) {
            const u8 *mine = mem.page(page);
            const u8 *theirs = ref.memory().page(page);
            if (std::memcmp(mine, theirs, pageSizeBytes) != 0) {
                std::ostringstream os;
                os << "memory validation failed at core " << core
                   << " page 0x" << std::hex << page;
                throw DivergenceError(os.str());
            }
        }
        stats_.counter("sync.pages_validated").inc(mem.pageCount());
    }
}

bool
Controller::step(u64 guest_insts)
{
    ScopedLogScope scope(logSink_, logLevel_);
    darco_assert(tol_, "Controller::load() must run first");
    if (tol_->finished())
        return false;
    tol_->run(guest_insts);
    if (tol_->finished() && validateEnd_)
        validateFinal();
    return !tol_->finished();
}

void
Controller::run(u64 max_guest_insts)
{
    ScopedLogScope scope(logSink_, logLevel_);
    darco_assert(tol_, "Controller::load() must run first");
    tol_->run(max_guest_insts);
    if (tol_->finished() && validateEnd_)
        validateFinal();
}

// ---------------------------------------------------------------------
// Checkpoint/restore
// ---------------------------------------------------------------------

void
Controller::saveCheckpoint(std::ostream &os)
{
    ScopedLogScope scope(logSink_, logLevel_);
    darco_assert(tol_, "Controller::load() must run first");
    tol_->quiesce();
    if (obs_ && obs_->tracer())
        obs_->tracer()->instant("ckpt", "checkpoint.save");

    snapshot::Serializer s(os);

    // Config snapshot: the schema-normalized effective values of the
    // *execution-relevant* parameters only. Restore refuses a
    // mismatch on any of them (the replayed translations depend on
    // them), but measurement/validation parameters — sync toggles,
    // timing and power models — may differ freely, so e.g. a
    // checkpoint taken with validation on restores into a campaign
    // running with it off. Default-resolved comparison also makes
    // "explicitly set to the default" equal to "unset".
    s.beginSection("cfg");
    std::map<std::string, std::string> exec =
        conf::schema().executionRelevant(cfg_);
    s.w64(exec.size());
    for (const auto &[k, v] : exec) {
        s.wstr(k);
        s.wstr(v);
    }
    s.endSection();

    // One ref/emem section pair per core; core 0 keeps the
    // unsuffixed v4 names so single-core images look unchanged.
    for (u32 i = 0; i < cores_; ++i) {
        std::string suffix = i == 0 ? "" : std::to_string(i);
        s.beginSection("ref" + suffix);
        refs_[i]->save(s);
        s.endSection();

        s.beginSection("emem" + suffix);
        mems_[i]->save(s);
        s.endSection();
    }

    s.beginSection("tol");
    tol_->save(s);
    s.endSection();

    s.beginSection("stats");
    s.w64(stats_.counters().size());
    for (const auto &[name, c] : stats_.counters()) {
        s.wstr(name);
        s.w64(c.value());
    }
    s.endSection();

    s.finish();
}

void
Controller::restoreCheckpoint(std::istream &is)
{
    ScopedLogScope scope(logSink_, logLevel_);
    snapshot::Deserializer d(is);

    // Schema-aware compatibility check: compare the checkpoint's
    // execution-relevant effective config against ours, parameter by
    // parameter, and name the exact offender on refusal. Cosmetic
    // differences (sync/timing/power parameters) never appear here.
    d.expectSection("cfg");
    std::map<std::string, std::string> mine =
        conf::schema().executionRelevant(cfg_);
    u64 ncfg = d.r64();
    std::map<std::string, std::string> theirs;
    for (u64 i = 0; i < ncfg; ++i) {
        std::string k = d.rstr();
        std::string v = d.rstr();
        theirs[k] = std::move(v);
    }
    d.endSection();
    for (const auto &[k, v] : theirs) {
        auto it = mine.find(k);
        if (it == mine.end())
            throw snapshot::SnapshotError(
                "checkpoint execution-relevant parameter '" + k +
                "' (value '" + v + "') is not declared in this "
                "build's schema");
        if (it->second != v)
            throw snapshot::SnapshotError(
                "config mismatch at execution-relevant parameter '" +
                k + "': checkpoint '" + v + "' vs controller '" +
                it->second + "'");
    }
    for (const auto &[k, v] : mine) {
        if (!theirs.count(k))
            throw snapshot::SnapshotError(
                "execution-relevant parameter '" + k +
                "' (controller value '" + v +
                "') is missing from the checkpoint");
    }

    // Per-core sections. The `cores` parameter is execution-relevant,
    // so the cfg comparison above already refused any count mismatch.
    for (u32 i = 0; i < cores_; ++i) {
        std::string suffix = i == 0 ? "" : std::to_string(i);
        d.expectSection("ref" + suffix);
        refs_[i]->restore(d);
        d.endSection();

        d.expectSection("emem" + suffix);
        mems_[i]->restore(d);
        d.endSection();
    }

    // Fresh co-designed component over the restored memory images; its
    // restore() replays translation installation (host code is
    // re-materialized, not deserialized). Core memories must be wired
    // first: restore re-targets the emulator at the current core.
    tol_ = std::make_unique<tol::Tol>(*mems_[0], cfg_, stats_);
    tol_->setEnv(this);
    attachCoreMemories();
    d.expectSection("tol");
    tol_->restore(d);
    d.endSection();

    // Attach only after restore: the install replay above must not be
    // traced (it reconstructs pre-checkpoint history, not new events).
    attachObs();
    if (obs_ && obs_->tracer())
        obs_->tracer()->instant("ckpt", "checkpoint.restore");

    // Last: overwrite every counter the replay bumped with the
    // checkpointed values.
    d.expectSection("stats");
    stats_.resetAll();
    u64 nstats = d.r64();
    for (u64 i = 0; i < nstats; ++i) {
        std::string name = d.rstr();
        stats_.counter(name).set(d.r64());
    }
    d.endSection();
}

} // namespace darco::sim
