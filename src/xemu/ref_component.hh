/**
 * @file
 * The reference component (the paper's "x86 component").
 *
 * A full-program functional interpreter for GISA that owns the
 * authoritative architectural and memory state. It is the only
 * component that executes system code (syscalls), and it is the
 * correctness oracle the controller validates the co-designed
 * component against.
 */

#ifndef DARCO_XEMU_REF_COMPONENT_HH
#define DARCO_XEMU_REF_COMPONENT_HH

#include <unordered_map>

#include "common/stats.hh"
#include "guest/program.hh"
#include "guest/semantics.hh"
#include <iosfwd>

#include "xemu/os.hh"

namespace darco::xemu
{

class RefComponent;

/** Section name RefComponent snapshots are framed under. */
constexpr const char *refSectionName = "ref";

/** Save one framed ref-only snapshot (header + "ref" section). */
void saveRefSnapshot(std::ostream &os, const RefComponent &ref);

/** Restore a ref-only snapshot written by saveRefSnapshot(). */
void restoreRefSnapshot(std::istream &is, RefComponent &ref);

/**
 * Authoritative guest interpreter + OS.
 *
 * Instruction counting contract (shared with the co-designed
 * component so the sync protocol can align execution points):
 *  - an instruction counts when it completes (REP continuations with
 *    ExecStatus::Again do not count),
 *  - a completed CTI (and a completed SYSCALL) also counts one
 *    dynamic basic block,
 *  - HLT counts neither: it terminates the program.
 */
class RefComponent
{
  public:
    explicit RefComponent(u64 seed = 1) : os_(seed) {}

    /** Load a program; resets all execution state. */
    void load(const guest::Program &prog);

    /**
     * Execute exactly one guest instruction (REP continuations are
     * driven to completion). Handles syscalls through the OS model.
     *
     * @return false once the program has finished.
     */
    bool step();

    /** Run until `n` instructions have completed (or program end). */
    void runUntilInstCount(u64 n);

    /** Run to program end (HLT or sysExit), bounded by maxInsts. */
    void runToCompletion(u64 max_insts = ~0ull);

    const guest::CpuState &state() const { return state_; }
    guest::CpuState &state() { return state_; }
    guest::PagedMemory &memory() { return mem_; }
    GuestOS &os() { return os_; }

    u64 instCount() const { return instCount_; }
    u64 bbCount() const { return bbCount_; }
    bool finished() const { return finished_; }
    u32 exitCode() const { return exitCode_; }

    /** Pages dirtied by the most recent syscall (sync protocol). */
    const std::vector<GAddr> &
    lastSyscallDirtiedPages() const
    {
        return lastDirtied_;
    }

    /**
     * Checkpoint hooks: the complete authoritative execution state
     * (registers, memory image, OS, counts). restore() replaces the
     * current state; no load() is needed first.
     */
    void save(snapshot::Serializer &s) const;
    void restore(snapshot::Deserializer &d);

  private:
    const guest::GInst &fetch(GAddr pc);

    guest::PagedMemory mem_{guest::MissPolicy::AllocateZero};
    guest::CpuState state_;
    GuestOS os_;
    std::unordered_map<GAddr, guest::GInst> decodeCache_;

    u64 instCount_ = 0;
    u64 bbCount_ = 0;
    bool finished_ = false;
    u32 exitCode_ = 0;
    std::vector<GAddr> lastDirtied_;
};

} // namespace darco::xemu

#endif // DARCO_XEMU_REF_COMPONENT_HH
