#include "xemu/os.hh"

#include <algorithm>

#include "common/logging.hh"
#include "snapshot/io.hh"

namespace darco::xemu
{

void
GuestOS::save(snapshot::Serializer &s) const
{
    s.wstr(output_);
    s.wstr(input_);
    s.w64(inputPos_);
    s.w32(brk_);
    s.w64(virtualTime_);
    for (u64 w : rng_.stateWords())
        s.w64(w);
}

void
GuestOS::restore(snapshot::Deserializer &d)
{
    output_ = d.rstr();
    input_ = d.rstr();
    inputPos_ = d.r64();
    brk_ = d.r32();
    virtualTime_ = d.r64();
    std::array<u64, 4> w;
    for (u64 &x : w)
        x = d.r64();
    rng_.setStateWords(w);
}

using namespace guest;

SyscallEffect
GuestOS::execute(CpuState &st, PagedMemory &mem, u8 inst_len)
{
    SyscallEffect eff;
    const u32 nr = st.gpr[RAX];
    const u32 a1 = st.gpr[RCX];
    const u32 a2 = st.gpr[RDX];
    u32 ret = 0;

    auto markDirty = [&](GAddr lo, u32 len) {
        for (GAddr p = pageBase(lo); p < lo + len; p += pageSizeBytes)
            eff.dirtiedPages.push_back(p);
    };

    switch (nr) {
      case sysExit:
        eff.exited = true;
        eff.exitCode = a1;
        break;

      case sysWrite: {
        std::string buf(a2, '\0');
        if (a2 > 0)
            mem.readBlock(a1, buf.data(), a2);
        output_ += buf;
        ret = a2;
        break;
      }

      case sysRead: {
        u32 n = u32(std::min<std::size_t>(a2, input_.size() - inputPos_));
        if (n > 0) {
            mem.writeBlock(a1, input_.data() + inputPos_, n);
            inputPos_ += n;
            markDirty(a1, n);
        }
        ret = n;
        break;
      }

      case sysBrk:
        if (a1 != 0) {
            if (a1 < layout::heapBase || a1 >= layout::stackTop - (1 << 20))
                ret = brk_; // refused; return current brk
            else
                brk_ = a1;
        }
        ret = brk_;
        break;

      case sysTime:
        virtualTime_ += 10;
        ret = u32(virtualTime_);
        break;

      case sysRand:
        ret = u32(rng_.next());
        break;

      case sysWriteInt: {
        output_ += std::to_string(s32(a1));
        output_ += '\n';
        ret = a1;
        break;
      }

      default:
        // Unknown syscalls return -1 (like ENOSYS), deterministically.
        ret = u32(-1);
        break;
    }

    st.gpr[RAX] = ret;
    st.pc += inst_len;
    return eff;
}

} // namespace darco::xemu
