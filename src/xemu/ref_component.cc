#include "xemu/ref_component.hh"

#include "common/logging.hh"
#include "snapshot/io.hh"

namespace darco::xemu
{

using namespace guest;

void
RefComponent::save(snapshot::Serializer &s) const
{
    state_.save(s);
    mem_.save(s);
    os_.save(s);
    s.w64(instCount_);
    s.w64(bbCount_);
    s.wbool(finished_);
    s.w32(exitCode_);
}

void
RefComponent::restore(snapshot::Deserializer &d)
{
    state_.restore(d);
    mem_.restore(d);
    os_.restore(d);
    instCount_ = d.r64();
    bbCount_ = d.r64();
    finished_ = d.rbool();
    exitCode_ = d.r32();
    decodeCache_.clear();
    lastDirtied_.clear();
}

void
saveRefSnapshot(std::ostream &os, const RefComponent &ref)
{
    snapshot::Serializer s(os);
    s.beginSection(refSectionName);
    ref.save(s);
    s.endSection();
    s.finish();
}

void
restoreRefSnapshot(std::istream &is, RefComponent &ref)
{
    snapshot::Deserializer d(is);
    d.expectSection(refSectionName);
    ref.restore(d);
    d.endSection();
}

void
RefComponent::load(const Program &prog)
{
    mem_ = PagedMemory(MissPolicy::AllocateZero);
    state_ = prog.load(mem_);
    decodeCache_.clear();
    instCount_ = 0;
    bbCount_ = 0;
    finished_ = false;
    exitCode_ = 0;
}

const GInst &
RefComponent::fetch(GAddr pc)
{
    auto it = decodeCache_.find(pc);
    if (it != decodeCache_.end())
        return it->second;
    GInst inst = fetchInst(mem_, pc);
    return decodeCache_.emplace(pc, inst).first->second;
}

bool
RefComponent::step()
{
    if (finished_)
        return false;

    const GInst &inst = fetch(state_.pc);

    ExecOut out = execInst(inst, state_, mem_);
    while (out.status == ExecStatus::Again)
        out = execInst(inst, state_, mem_);

    switch (out.status) {
      case ExecStatus::Ok:
      case ExecStatus::CtiNotTaken:
        ++instCount_;
        if (inst.isCti())
            ++bbCount_;
        return true;

      case ExecStatus::CtiTaken:
        ++instCount_;
        ++bbCount_;
        return true;

      case ExecStatus::Syscall: {
        SyscallEffect eff = os_.execute(state_, mem_, inst.length);
        lastDirtied_ = eff.dirtiedPages;
        ++instCount_;
        ++bbCount_;
        if (eff.exited) {
            finished_ = true;
            exitCode_ = eff.exitCode;
        }
        return !finished_;
      }

      case ExecStatus::Halt:
        finished_ = true;
        return false;

      case ExecStatus::Fault:
        throw GuestFault{state_.pc, out.faultMsg};

      default:
        panic("unexpected exec status");
    }
}

void
RefComponent::runUntilInstCount(u64 n)
{
    while (instCount_ < n && !finished_)
        step();
}

void
RefComponent::runToCompletion(u64 max_insts)
{
    while (!finished_ && instCount_ < max_insts)
        step();
}

} // namespace darco::xemu
