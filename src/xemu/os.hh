/**
 * @file
 * Guest OS model.
 *
 * The paper's x86 component runs an unmodified operating system; only
 * user-level state ever crosses the component boundary. We model the
 * OS as a deterministic syscall emulation layer owned by the reference
 * component: the co-designed component never executes system code
 * (paper Section V-A), it synchronizes around it.
 */

#ifndef DARCO_XEMU_OS_HH
#define DARCO_XEMU_OS_HH

#include <string>
#include <vector>

#include "common/rng.hh"
#include "guest/memory.hh"
#include "guest/program.hh"
#include "guest/state.hh"

namespace darco::snapshot
{
class Serializer;
class Deserializer;
} // namespace darco::snapshot

namespace darco::xemu
{

/** Syscall numbers (passed in RAX). */
enum Sysno : u32
{
    sysExit = 0,     //!< rcx = exit code
    sysWrite = 1,    //!< rcx = buf, rdx = len; returns len
    sysRead = 2,     //!< rcx = buf, rdx = len; returns bytes read
    sysBrk = 3,      //!< rcx = new brk (0 queries); returns brk
    sysTime = 4,     //!< returns deterministic virtual time
    sysRand = 5,     //!< returns deterministic pseudo-random u32
    sysWriteInt = 6, //!< rcx = value; writes decimal + '\n'
};

/** Effects of one executed syscall (for the sync protocol). */
struct SyscallEffect
{
    bool exited = false;
    u32 exitCode = 0;
    /** Guest pages the syscall wrote (must be re-synced). */
    std::vector<GAddr> dirtiedPages;
};

/**
 * Deterministic OS model.
 *
 * All observable behaviour (time, random, input) is derived from the
 * seed so that reference and repeated runs agree exactly.
 */
class GuestOS
{
  public:
    explicit GuestOS(u64 seed = 1)
        : rng_(seed ^ 0x05a1ce5cull)
    {}

    /**
     * Execute the syscall selected by st (RAX = number). Writes the
     * return value to RAX and advances st.pc past the instruction.
     *
     * @param inst_len length of the SYSCALL instruction.
     */
    SyscallEffect execute(guest::CpuState &st, guest::PagedMemory &mem,
                          u8 inst_len);

    /** Provide bytes for sysRead. */
    void setInput(std::string data) { input_ = std::move(data); }

    const std::string &output() const { return output_; }

    u32 brk() const { return brk_; }

    /** Checkpoint hooks: all deterministic OS state (output, input
     *  cursor, brk, virtual time, RNG). */
    void save(snapshot::Serializer &s) const;
    void restore(snapshot::Deserializer &d);

  private:
    std::string output_;
    std::string input_;
    std::size_t inputPos_ = 0;
    u32 brk_ = guest::layout::heapBase;
    u64 virtualTime_ = 1000;
    Rng rng_;
};

} // namespace darco::xemu

#endif // DARCO_XEMU_OS_HH
