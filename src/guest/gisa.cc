#include "guest/gisa.hh"

#include "common/logging.hh"

namespace darco::guest
{

namespace
{

// Shorthand for table entries.
constexpr GOpInfo
op(const char *name, GFmt fmt, u8 fw = 0, bool rf = false, bool cti = false,
   u8 mw = 0, bool fp = false)
{
    return GOpInfo{name, fmt, fw, rf, cti, mw, fp};
}

const GOpInfo opTable[] = {
    // no-operand
    op("nop", GFmt::None),
    op("hlt", GFmt::None, 0, false, true),
    op("ret", GFmt::None, 0, false, true, 4),
    op("syscall", GFmt::None, 0, false, true),
    // string
    op("movsb", GFmt::Str, 0, false, false, 1),
    op("movsw", GFmt::Str, 0, false, false, 4),
    op("stosb", GFmt::Str, 0, false, false, 1),
    op("stosw", GFmt::Str, 0, false, false, 4),
    // one GPR
    op("not", GFmt::R),
    op("neg", GFmt::R, flagAll),
    op("inc", GFmt::R, flagZSO),
    op("dec", GFmt::R, flagZSO),
    op("push", GFmt::R, 0, false, false, 4),
    op("pop", GFmt::R, 0, false, false, 4),
    op("jmpr", GFmt::R, 0, false, true),
    op("callr", GFmt::R, 0, false, true, 4),
    // reg, reg
    op("mov", GFmt::RR),
    op("add", GFmt::RR, flagAll),
    op("sub", GFmt::RR, flagAll),
    op("and", GFmt::RR, flagAll),
    op("or", GFmt::RR, flagAll),
    op("xor", GFmt::RR, flagAll),
    op("cmp", GFmt::RR, flagAll),
    op("test", GFmt::RR, flagAll),
    op("imul", GFmt::RR, flagAll),
    op("idiv", GFmt::RR),
    op("irem", GFmt::RR),
    op("shl", GFmt::RR, flagAll),
    op("shr", GFmt::RR, flagAll),
    op("sar", GFmt::RR, flagAll),
    // reg, imm32
    op("mov", GFmt::RI),
    op("add", GFmt::RI, flagAll),
    op("sub", GFmt::RI, flagAll),
    op("and", GFmt::RI, flagAll),
    op("or", GFmt::RI, flagAll),
    op("xor", GFmt::RI, flagAll),
    op("cmp", GFmt::RI, flagAll),
    op("test", GFmt::RI, flagAll),
    op("imul", GFmt::RI, flagAll),
    // reg, imm8
    op("add", GFmt::RI8, flagAll),
    op("cmp", GFmt::RI8, flagAll),
    op("shl", GFmt::RI8, flagAll),
    op("shr", GFmt::RI8, flagAll),
    op("sar", GFmt::RI8, flagAll),
    // loads
    op("mov", GFmt::RM, 0, false, false, 4),
    op("movzx8", GFmt::RM, 0, false, false, 1),
    op("movzx16", GFmt::RM, 0, false, false, 2),
    op("movsx8", GFmt::RM, 0, false, false, 1),
    op("movsx16", GFmt::RM, 0, false, false, 2),
    op("lea", GFmt::RM),
    op("add", GFmt::RM, flagAll, false, false, 4),
    op("cmp", GFmt::RM, flagAll, false, false, 4),
    // stores
    op("mov", GFmt::MR, 0, false, false, 4),
    op("mov8", GFmt::MR, 0, false, false, 1),
    op("mov16", GFmt::MR, 0, false, false, 2),
    op("add", GFmt::MR, flagAll, false, false, 4),
    // control transfer
    op("jmp", GFmt::Rel8, 0, false, true),
    op("jmp", GFmt::Rel32, 0, false, true),
    op("call", GFmt::Rel32, 0, false, true, 4),
    op("jcc", GFmt::Jcc8, 0, true, true),
    op("jcc", GFmt::Jcc32, 0, true, true),
    // conditional data
    op("setcc", GFmt::SetCC, 0, true),
    op("cmovcc", GFmt::CmovCC, 0, true),
    // floating point
    op("fmov", GFmt::FP, 0, false, false, 0, true),
    op("fadd", GFmt::FP, 0, false, false, 0, true),
    op("fsub", GFmt::FP, 0, false, false, 0, true),
    op("fmul", GFmt::FP, 0, false, false, 0, true),
    op("fdiv", GFmt::FP, 0, false, false, 0, true),
    op("fsqrt", GFmt::FP, 0, false, false, 0, true),
    op("fsin", GFmt::FP, 0, false, false, 0, true),
    op("fcos", GFmt::FP, 0, false, false, 0, true),
    op("fabs", GFmt::FP, 0, false, false, 0, true),
    op("fneg", GFmt::FP, 0, false, false, 0, true),
    op("fcmp", GFmt::FP, flagAll, false, false, 0, true),
    op("cvtif", GFmt::FInt, 0, false, false, 0, true),
    op("cvtfi", GFmt::FInt, 0, false, false, 0, true),
    op("fld", GFmt::RM, 0, false, false, 8, true),
    op("fst", GFmt::MR, 0, false, false, 8, true),
};

static_assert(sizeof(opTable) / sizeof(opTable[0]) ==
                  static_cast<std::size_t>(GOp::NumOps),
              "opcode table out of sync with GOp enum");

const char *condNames[] = {
    "eq", "ne", "lt", "ge", "le", "gt", "b", "ae", "be", "a", "s", "ns",
};

} // namespace

const GOpInfo &
gopInfo(GOp o)
{
    auto idx = static_cast<std::size_t>(o);
    darco_assert(idx < static_cast<std::size_t>(GOp::NumOps),
                 "bad opcode ", idx);
    return opTable[idx];
}

const char *
gopName(GOp o)
{
    return gopInfo(o).name;
}

const char *
gcondName(GCond c)
{
    auto idx = static_cast<std::size_t>(c);
    darco_assert(idx < static_cast<std::size_t>(GCond::NumConds));
    return condNames[idx];
}

bool
evalCond(GCond c, u8 f)
{
    const bool zf = f & flagZ;
    const bool sf = f & flagS;
    const bool cf = f & flagC;
    const bool of = f & flagO;
    switch (c) {
      case GCond::EQ: return zf;
      case GCond::NE: return !zf;
      case GCond::LT: return sf != of;
      case GCond::GE: return sf == of;
      case GCond::LE: return zf || sf != of;
      case GCond::GT: return !zf && sf == of;
      case GCond::B:  return cf;
      case GCond::AE: return !cf;
      case GCond::BE: return cf || zf;
      case GCond::A:  return !cf && !zf;
      case GCond::S:  return sf;
      case GCond::NS: return !sf;
      default: panic("bad condition ", int(c));
    }
}

} // namespace darco::guest
