/**
 * @file
 * GISA instruction semantics.
 *
 * One executor implements the architectural semantics of every GISA
 * instruction; the reference component and TOL's interpreter mode both
 * use it. The translated path (BBM/SBM host code) re-implements the
 * semantics independently through IR + code generation, which is what
 * makes reference-vs-co-designed state comparison a meaningful
 * correctness check (paper Section IV "Correctness").
 *
 * Restartability contract: execInst() never mutates CpuState before
 * all memory accesses of the instruction have succeeded, except for
 * REP string ops, which update RSI/RDI/RCX per completed iteration
 * (x86-style restartable semantics). A PageMiss thrown mid-instruction
 * therefore leaves the state valid for a retry of the same pc.
 */

#ifndef DARCO_GUEST_SEMANTICS_HH
#define DARCO_GUEST_SEMANTICS_HH

#include "guest/gisa.hh"
#include "guest/memory.hh"
#include "guest/state.hh"

namespace darco::guest
{

/** Outcome class of one executed instruction. */
enum class ExecStatus : u8
{
    Ok,          //!< fell through; pc advanced
    Again,       //!< REP partially done; re-execute at the same pc
    CtiTaken,    //!< control transfer happened (pc = target)
    CtiNotTaken, //!< conditional branch not taken (pc advanced)
    Syscall,     //!< stopped AT a syscall; pc unchanged; not executed
    Halt,        //!< stopped AT hlt; pc unchanged
    Fault,       //!< architectural fault (e.g. division by zero)
};

/** Result of executing one instruction. */
struct ExecOut
{
    ExecStatus status = ExecStatus::Ok;
    u64 repIters = 0;          //!< iterations a REP string op performed
    const char *faultMsg = nullptr;
};

/** An architectural guest fault (division by zero, bad opcode...). */
struct GuestFault
{
    GAddr pc;
    const char *msg;
};

/**
 * Execute one decoded instruction against architectural state.
 *
 * Updates st.pc for every status except Syscall/Halt/Fault (pc stays
 * at the current instruction so the caller can handle it).
 * May throw PageMiss if mem uses MissPolicy::Signal.
 */
ExecOut execInst(const GInst &inst, CpuState &st, PagedMemory &mem);

/**
 * Fetch and decode the instruction at pc.
 *
 * Reads only the bytes that are actually part of the instruction, so
 * a Signal-policy memory faults exactly on the pages the instruction
 * occupies (code pages participate in the data-request protocol too).
 *
 * @throws GuestFault on undecodable bytes.
 */
GInst fetchInst(PagedMemory &mem, GAddr pc);

/** Effective address of a memory-operand instruction. */
GAddr effectiveAddr(const GInst &inst, const CpuState &st);

// --- Flag computation helpers (shared with the TOL translator) -------

/** Flags for add: a + b = r. */
u8 flagsAdd(u32 a, u32 b, u32 r);
/** Flags for sub/cmp: a - b = r. */
u8 flagsSub(u32 a, u32 b, u32 r);
/** ZF/SF from a result; CF=OF=0 (logic ops). */
u8 flagsLogic(u32 r);
/** FCMP flags: ZF=equal, CF=less (unordered treated as less). */
u8 flagsFcmp(double a, double b);

// --- Deterministic transcendental definitions --------------------------
//
// GISA *defines* FSIN/FCOS as the polynomial below (range reduction by
// round-to-nearest, then a fixed Horner evaluation). The TOL code
// generator expands the same operation sequence into host FP
// instructions, so interpreter and translated code produce bit-equal
// results. See tol/codegen for the expansion.

namespace trig
{
constexpr double twoPi = 6.283185307179586476925286766559;
constexpr double invTwoPi = 0.15915494309189533576888376337251;

/** sin Horner coefficients for r * P(r^2), r in [-pi, pi]. */
constexpr double sinC[] = {
    1.0,                        // r^1
    -1.6666666666666666e-01,    // r^3
    8.3333333333333332e-03,     // r^5
    -1.9841269841269841e-04,    // r^7
    2.7557319223985893e-06,     // r^9
    -2.5052108385441720e-08,    // r^11
    1.6059043836821613e-10,     // r^13
};
constexpr unsigned sinTerms = sizeof(sinC) / sizeof(sinC[0]);

/** cos Horner coefficients for P(r^2). */
constexpr double cosC[] = {
    1.0,                        // r^0
    -5.0000000000000000e-01,    // r^2
    4.1666666666666664e-02,     // r^4
    -1.3888888888888889e-03,    // r^6
    2.4801587301587302e-05,     // r^8
    -2.7557319223985888e-07,    // r^10
    2.0876756987868099e-09,     // r^12
};
constexpr unsigned cosTerms = sizeof(cosC) / sizeof(cosC[0]);
} // namespace trig

/**
 * NaN canonicalization (RISC-V style). GISA and HISA FP arithmetic
 * produce the canonical quiet NaN for any NaN result: ISO C++ leaves
 * *which* operand's NaN propagates unspecified, so without this the
 * interpreter and the host emulator (compiled separately) could
 * legally disagree on NaN sign/payload and break state comparison.
 */
inline double
gcanon(double x)
{
    if (__builtin_isnan(x)) {
        u64 bits = 0x7ff8'0000'0000'0000ull;
        double q;
        __builtin_memcpy(&q, &bits, 8);
        return q;
    }
    return x;
}

/** GISA-defined sine (see trig above). */
double gsin(double x);
/** GISA-defined cosine. */
double gcos(double x);
/** GISA-defined double -> s32 conversion (truncate; overflow -> MIN). */
s32 gcvtfi(double x);

} // namespace darco::guest

#endif // DARCO_GUEST_SEMANTICS_HH
