#include "guest/program.hh"

#include "common/logging.hh"

namespace darco::guest
{

CpuState
Program::load(PagedMemory &mem) const
{
    darco_assert(!code.empty(), "loading empty program");
    mem.writeBlock(layout::codeBase, code.data(), code.size());
    if (!data.empty())
        mem.writeBlock(layout::dataBase, data.data(), data.size());

    // Touch the top stack page so the first PUSH doesn't fault in the
    // reference component (the co-designed side still requests it).
    if (mem.policy() == MissPolicy::AllocateZero)
        mem.page(layout::stackTop - 4);

    CpuState st;
    st.pc = entry;
    st.gpr[RSP] = layout::stackTop;
    return st;
}

} // namespace darco::guest
