#include "guest/program.hh"

#include <cstdlib>
#include <sstream>

#include "common/logging.hh"
#include "guest/gisa.hh"

namespace darco::guest
{

CpuState
Program::load(PagedMemory &mem) const
{
    darco_assert(!code.empty(), "loading empty program");
    mem.writeBlock(layout::codeBase, code.data(), code.size());
    if (!data.empty())
        mem.writeBlock(layout::dataBase, data.data(), data.size());

    // Touch the top stack page so the first PUSH doesn't fault in the
    // reference component (the co-designed side still requests it).
    if (mem.policy() == MissPolicy::AllocateZero)
        mem.page(layout::stackTop - 4);

    CpuState st;
    st.pc = entry;
    st.gpr[RSP] = layout::stackTop;
    return st;
}

namespace
{

void
hexDump(std::ostringstream &os, const char *tag,
        const std::vector<u8> &bytes)
{
    static const char digits[] = "0123456789abcdef";
    for (std::size_t i = 0; i < bytes.size(); i += 32) {
        os << tag << ' ';
        for (std::size_t j = i; j < std::min(i + 32, bytes.size()); ++j) {
            os << digits[bytes[j] >> 4] << digits[bytes[j] & 0xf];
        }
        os << '\n';
    }
}

bool
hexParse(const std::string &line, std::vector<u8> &out)
{
    if (line.size() % 2 != 0)
        return false;
    for (std::size_t i = 0; i < line.size(); i += 2) {
        auto nib = [](char c) -> int {
            if (c >= '0' && c <= '9')
                return c - '0';
            if (c >= 'a' && c <= 'f')
                return c - 'a' + 10;
            return -1;
        };
        int hi = nib(line[i]), lo = nib(line[i + 1]);
        if (hi < 0 || lo < 0)
            return false;
        out.push_back(u8(hi << 4 | lo));
    }
    return true;
}

} // namespace

std::string
Program::saveGisa() const
{
    std::ostringstream os;
    os << "# darco .gisa case v1\n";
    os << "name " << name << '\n';
    os << "entry 0x" << std::hex << entry << std::dec << '\n';
    hexDump(os, "code", code);
    hexDump(os, "data", data);
    return os.str();
}

bool
Program::parseGisa(const std::string &text, Program &out,
                   std::string *err)
{
    auto fail = [&](const std::string &what) {
        if (err)
            *err = what;
        return false;
    };
    out = Program();
    out.code.clear();
    std::istringstream is(text);
    std::string line;
    bool sawVersion = false;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        if (line[0] == '#') {
            if (line.find(".gisa case v1") != std::string::npos)
                sawVersion = true;
            continue;
        }
        std::istringstream ls(line);
        std::string key, val;
        ls >> key >> val;
        if (key == "name") {
            out.name = val;
        } else if (key == "entry") {
            char *end = nullptr;
            unsigned long v = std::strtoul(val.c_str(), &end, 0);
            if (val.empty() || end == nullptr || *end != '\0' ||
                v > ~u32(0))
                return fail("bad entry value: " + val);
            out.entry = GAddr(v);
        } else if (key == "code") {
            if (!hexParse(val, out.code))
                return fail("bad code hex: " + val);
        } else if (key == "data") {
            if (!hexParse(val, out.data))
                return fail("bad data hex: " + val);
        } else {
            return fail("unknown key: " + key);
        }
    }
    if (!sawVersion)
        return fail("missing '# darco .gisa case v1' header");
    if (out.code.empty())
        return fail("no code segment");
    return true;
}

std::size_t
countInstructions(const Program &prog)
{
    std::size_t n = 0, off = 0;
    while (off < prog.code.size()) {
        GInst gi;
        if (!decode(prog.code.data() + off, prog.code.size() - off, gi))
            break;
        off += gi.length;
        ++n;
    }
    return n;
}

} // namespace darco::guest
