/**
 * @file
 * Architectural guest CPU state.
 *
 * Both components keep one of these: the reference component's copy is
 * authoritative; the co-designed component's copy is the "emulated x86
 * state" of the paper, validated against the reference at sync points.
 */

#ifndef DARCO_GUEST_STATE_HH
#define DARCO_GUEST_STATE_HH

#include <array>
#include <cstring>
#include <string>

#include "guest/gisa.hh"

namespace darco::snapshot
{
class Serializer;
class Deserializer;
} // namespace darco::snapshot

namespace darco::guest
{

/** Complete guest-visible register state. */
struct CpuState
{
    std::array<u32, numGRegs> gpr{};
    std::array<double, numFRegs> fpr{};
    u8 flags = 0;
    GAddr pc = 0;

    bool
    operator==(const CpuState &o) const
    {
        // FP registers are compared bit-exactly: both execution paths
        // must produce identical doubles, not merely close ones.
        return gpr == o.gpr && flags == o.flags && pc == o.pc &&
               std::memcmp(fpr.data(), o.fpr.data(), sizeof(fpr)) == 0;
    }

    /** Checkpoint hooks (snapshot/io.hh). */
    void save(snapshot::Serializer &s) const;
    void restore(snapshot::Deserializer &d);

    /** Human-readable dump for divergence reports. */
    std::string toString() const;

    /** Describe the first difference vs another state ("" if equal). */
    std::string diff(const CpuState &o) const;
};

} // namespace darco::guest

#endif // DARCO_GUEST_STATE_HH
