/**
 * @file
 * GISA disassembler (debug toolchain support).
 */

#include <iomanip>
#include <sstream>

#include "guest/gisa.hh"

namespace darco::guest
{

namespace
{

const char *gregNames[] = {
    "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
};

std::string
memStr(const GInst &i)
{
    std::ostringstream os;
    os << "[";
    switch (i.memMode) {
      case memBase:
        os << gregNames[i.memBase];
        break;
      case memBaseD8:
      case memBaseD32:
        os << gregNames[i.memBase];
        if (i.disp >= 0)
            os << "+" << i.disp;
        else
            os << i.disp;
        break;
      case memSib:
        os << gregNames[i.memBase] << "+" << gregNames[i.memIndex] << "*"
           << (1 << i.memScale);
        if (i.disp >= 0)
            os << "+" << i.disp;
        else
            os << i.disp;
        break;
      case memAbs:
        os << "0x" << std::hex << u32(i.disp);
        break;
      default:
        os << "?";
    }
    os << "]";
    return os.str();
}

} // namespace

std::string
disasm(const GInst &i, GAddr pc)
{
    const GOpInfo &info = i.info();
    std::ostringstream os;
    if (i.rep)
        os << "rep ";
    os << info.name;

    auto g = [&](u8 r) { return std::string(gregNames[r & 7]); };
    auto f = [&](u8 r) { return "f" + std::to_string(r & 7); };
    auto hex = [&](u32 v) {
        std::ostringstream h;
        h << "0x" << std::hex << v;
        return h.str();
    };

    switch (info.fmt) {
      case GFmt::None:
      case GFmt::Str:
        break;
      case GFmt::R:
        os << " " << g(i.rd);
        break;
      case GFmt::RR:
        os << " " << g(i.rd) << ", " << g(i.rs);
        break;
      case GFmt::RI:
      case GFmt::RI8:
        os << " " << g(i.rd) << ", " << i.imm;
        break;
      case GFmt::RM:
        os << " " << (info.isFp ? f(i.rd) : g(i.rd)) << ", " << memStr(i);
        break;
      case GFmt::MR:
        os << " " << memStr(i) << ", " << (info.isFp ? f(i.rd) : g(i.rd));
        break;
      case GFmt::Rel8:
      case GFmt::Rel32:
        os << " " << hex(i.target(pc));
        break;
      case GFmt::Jcc8:
      case GFmt::Jcc32:
        os << gcondName(i.cond) << " " << hex(i.target(pc));
        break;
      case GFmt::SetCC:
        os << gcondName(i.cond) << " " << g(i.rd);
        break;
      case GFmt::CmovCC:
        os << gcondName(i.cond) << " " << g(i.rd) << ", " << g(i.rs);
        break;
      case GFmt::FP:
        os << " " << f(i.rd) << ", " << f(i.rs);
        break;
      case GFmt::FInt:
        if (i.op == GOp::CVTIF)
            os << " " << f(i.rd) << ", " << g(i.rs);
        else
            os << " " << g(i.rd) << ", " << f(i.rs);
        break;
      default:
        os << " ?";
    }
    return os.str();
}

} // namespace darco::guest
