/**
 * @file
 * GISA variable-length encoder/decoder.
 */

#include <cstring>

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "guest/gisa.hh"

namespace darco::guest
{

namespace
{

/** Cursor over the raw instruction bytes. */
struct Reader
{
    const u8 *p;
    std::size_t avail;
    std::size_t pos = 0;

    bool ok = true;

    u8
    byte()
    {
        if (pos >= avail) {
            ok = false;
            return 0;
        }
        return p[pos++];
    }

    u32
    word()
    {
        u32 v = 0;
        for (int i = 0; i < 4; ++i)
            v |= u32(byte()) << (8 * i);
        return v;
    }
};

/** Decode the memory-operand bytes for RM/MR formats. */
bool
decodeMem(Reader &r, GInst &inst)
{
    switch (inst.memMode) {
      case memBase:
        inst.memBase = r.byte() & 7;
        break;
      case memBaseD8:
        inst.memBase = r.byte() & 7;
        inst.disp = s8(r.byte());
        break;
      case memBaseD32:
        inst.memBase = r.byte() & 7;
        inst.disp = s32(r.word());
        break;
      case memSib: {
        u8 sib = r.byte();
        inst.memScale = bits(sib, 6, 2);
        inst.memIndex = bits(sib, 3, 3);
        inst.memBase = bits(sib, 0, 3);
        inst.disp = s32(r.word());
        break;
      }
      case memAbs:
        inst.disp = s32(r.word());
        break;
      default:
        return false;
    }
    return r.ok;
}

/** Append the memory-operand bytes for RM/MR formats. */
std::size_t
encodeMem(const GInst &inst, u8 *out)
{
    std::size_t n = 0;
    switch (inst.memMode) {
      case memBase:
        out[n++] = inst.memBase;
        break;
      case memBaseD8:
        out[n++] = inst.memBase;
        out[n++] = u8(inst.disp);
        break;
      case memBaseD32:
        out[n++] = inst.memBase;
        break;
      case memSib:
        out[n++] = u8((inst.memScale << 6) | (inst.memIndex << 3) |
                      inst.memBase);
        break;
      case memAbs:
        break;
      default:
        panic("encode: bad memMode ", int(inst.memMode));
    }
    if (inst.memMode == memBaseD32 || inst.memMode == memSib ||
        inst.memMode == memAbs) {
        u32 d = u32(inst.disp);
        for (int i = 0; i < 4; ++i)
            out[n++] = u8(d >> (8 * i));
    }
    return n;
}

} // namespace

bool
decode(const u8 *bytes, std::size_t avail, GInst &out)
{
    out = GInst();
    Reader r{bytes, avail};

    u8 first = r.byte();
    if (!r.ok)
        return false;
    if (first == repPrefix) {
        out.rep = true;
        first = r.byte();
    }
    if (first >= u8(GOp::NumOps))
        return false;
    out.op = static_cast<GOp>(first);
    const GOpInfo &info = gopInfo(out.op);
    if (out.rep && info.fmt != GFmt::Str)
        return false;

    switch (info.fmt) {
      case GFmt::None:
      case GFmt::Str:
        break;
      case GFmt::R:
        out.rd = r.byte() & 7;
        break;
      case GFmt::RR: {
        u8 b = r.byte();
        out.rd = bits(b, 4, 3);
        out.rs = bits(b, 0, 3);
        break;
      }
      case GFmt::RI:
        out.rd = r.byte() & 7;
        out.imm = s32(r.word());
        break;
      case GFmt::RI8:
        out.rd = r.byte() & 7;
        out.imm = s8(r.byte());
        break;
      case GFmt::RM:
      case GFmt::MR: {
        u8 b = r.byte();
        out.rd = bits(b, 4, 3);
        out.memMode = bits(b, 0, 3);
        if (out.memMode < memBase || out.memMode > memAbs)
            return false;
        if (!decodeMem(r, out))
            return false;
        break;
      }
      case GFmt::Rel8:
        out.imm = s8(r.byte());
        break;
      case GFmt::Rel32:
        out.imm = s32(r.word());
        break;
      case GFmt::Jcc8: {
        u8 c = r.byte();
        if (c >= u8(GCond::NumConds))
            return false;
        out.cond = static_cast<GCond>(c);
        out.imm = s8(r.byte());
        break;
      }
      case GFmt::Jcc32: {
        u8 c = r.byte();
        if (c >= u8(GCond::NumConds))
            return false;
        out.cond = static_cast<GCond>(c);
        out.imm = s32(r.word());
        break;
      }
      case GFmt::SetCC: {
        u8 b = r.byte();
        u8 c = bits(b, 4, 4);
        if (c >= u8(GCond::NumConds))
            return false;
        out.cond = static_cast<GCond>(c);
        out.rd = bits(b, 0, 3) & 7;
        break;
      }
      case GFmt::CmovCC: {
        u8 c = r.byte();
        if (c >= u8(GCond::NumConds))
            return false;
        out.cond = static_cast<GCond>(c);
        u8 b = r.byte();
        out.rd = bits(b, 4, 3);
        out.rs = bits(b, 0, 3);
        break;
      }
      case GFmt::FP:
      case GFmt::FInt: {
        u8 b = r.byte();
        out.rd = bits(b, 4, 3);
        out.rs = bits(b, 0, 3);
        break;
      }
      default:
        return false;
    }

    if (!r.ok)
        return false;
    out.length = u8(r.pos);
    return true;
}

std::size_t
encode(GInst &inst, u8 *out)
{
    std::size_t n = 0;
    const GOpInfo &info = gopInfo(inst.op);
    if (inst.rep) {
        darco_assert(info.fmt == GFmt::Str, "REP on non-string op");
        out[n++] = repPrefix;
    }
    out[n++] = u8(inst.op);

    auto imm32 = [&](s32 v) {
        u32 u = u32(v);
        for (int i = 0; i < 4; ++i)
            out[n++] = u8(u >> (8 * i));
    };

    switch (info.fmt) {
      case GFmt::None:
      case GFmt::Str:
        break;
      case GFmt::R:
        out[n++] = inst.rd & 7;
        break;
      case GFmt::RR:
      case GFmt::FP:
      case GFmt::FInt:
        out[n++] = u8((inst.rd << 4) | (inst.rs & 7));
        break;
      case GFmt::RI:
        out[n++] = inst.rd & 7;
        imm32(inst.imm);
        break;
      case GFmt::RI8:
        darco_assert(fitsSigned(inst.imm, 8), "imm8 out of range");
        out[n++] = inst.rd & 7;
        out[n++] = u8(inst.imm);
        break;
      case GFmt::RM:
      case GFmt::MR:
        out[n++] = u8((inst.rd << 4) | (inst.memMode & 0xf));
        n += encodeMem(inst, out + n);
        break;
      case GFmt::Rel8:
        darco_assert(fitsSigned(inst.imm, 8), "rel8 out of range");
        out[n++] = u8(inst.imm);
        break;
      case GFmt::Rel32:
        imm32(inst.imm);
        break;
      case GFmt::Jcc8:
        darco_assert(fitsSigned(inst.imm, 8), "rel8 out of range");
        out[n++] = u8(inst.cond);
        out[n++] = u8(inst.imm);
        break;
      case GFmt::Jcc32:
        out[n++] = u8(inst.cond);
        imm32(inst.imm);
        break;
      case GFmt::SetCC:
        out[n++] = u8((u8(inst.cond) << 4) | (inst.rd & 7));
        break;
      case GFmt::CmovCC:
        out[n++] = u8(inst.cond);
        out[n++] = u8((inst.rd << 4) | (inst.rs & 7));
        break;
      default:
        panic("encode: bad format");
    }
    inst.length = u8(n);
    return n;
}

} // namespace darco::guest
