#include "guest/semantics.hh"

#include <algorithm>
#include <cfenv>
#include <cmath>

#include "common/logging.hh"

namespace darco::guest
{

u8
flagsAdd(u32 a, u32 b, u32 r)
{
    u8 f = 0;
    if (r == 0)
        f |= flagZ;
    if (r & 0x8000'0000u)
        f |= flagS;
    if (r < a)
        f |= flagC;
    if (~(a ^ b) & (a ^ r) & 0x8000'0000u)
        f |= flagO;
    return f;
}

u8
flagsSub(u32 a, u32 b, u32 r)
{
    u8 f = 0;
    if (r == 0)
        f |= flagZ;
    if (r & 0x8000'0000u)
        f |= flagS;
    if (a < b)
        f |= flagC;
    if ((a ^ b) & (a ^ r) & 0x8000'0000u)
        f |= flagO;
    return f;
}

u8
flagsLogic(u32 r)
{
    u8 f = 0;
    if (r == 0)
        f |= flagZ;
    if (r & 0x8000'0000u)
        f |= flagS;
    return f;
}

u8
flagsFcmp(double a, double b)
{
    if (a == b)
        return flagZ;
    if (a < b)
        return flagC;
    if (a > b)
        return 0;
    return flagC; // unordered treated as "less"
}

double
gsin(double x)
{
    // Mirrors the host-instruction expansion op for op, including the
    // per-operation NaN canonicalization of the HISA FPU.
    double k = gcanon(std::nearbyint(gcanon(x * trig::invTwoPi)));
    double r = gcanon(x - gcanon(k * trig::twoPi));
    double r2 = gcanon(r * r);
    double p = trig::sinC[trig::sinTerms - 1];
    for (int i = int(trig::sinTerms) - 2; i >= 0; --i)
        p = gcanon(gcanon(p * r2) + trig::sinC[i]);
    return gcanon(r * p);
}

double
gcos(double x)
{
    double k = gcanon(std::nearbyint(gcanon(x * trig::invTwoPi)));
    double r = gcanon(x - gcanon(k * trig::twoPi));
    double r2 = gcanon(r * r);
    double p = trig::cosC[trig::cosTerms - 1];
    for (int i = int(trig::cosTerms) - 2; i >= 0; --i)
        p = gcanon(gcanon(p * r2) + trig::cosC[i]);
    return p;
}

s32
gcvtfi(double x)
{
    if (std::isnan(x) || x >= 2147483648.0 || x < -2147483648.0)
        return s32(0x8000'0000);
    return s32(std::trunc(x));
}

GInst
fetchInst(PagedMemory &mem, GAddr pc)
{
    // Longest encoding is 8 bytes (REP prefix + 7-byte SIB form).
    constexpr std::size_t maxLen = 12;
    u8 buf[maxLen];
    std::size_t have = 0;
    GInst inst;
    while (have < maxLen) {
        // Pull in the rest of the current page, then retry the decode;
        // only cross into the next page if the instruction needs it.
        std::size_t page_left = pageSizeBytes - pageOffset(pc + GAddr(have));
        std::size_t take = std::min(maxLen - have, page_left);
        mem.readBlock(pc + GAddr(have), buf + have, take);
        have += take;
        if (decode(buf, have, inst))
            return inst;
        if (have >= maxLen)
            break;
    }
    throw GuestFault{pc, "undecodable instruction bytes"};
}

GAddr
effectiveAddr(const GInst &i, const CpuState &st)
{
    switch (i.memMode) {
      case memBase:
        return st.gpr[i.memBase];
      case memBaseD8:
      case memBaseD32:
        return st.gpr[i.memBase] + u32(i.disp);
      case memSib:
        return st.gpr[i.memBase] + (st.gpr[i.memIndex] << i.memScale) +
               u32(i.disp);
      case memAbs:
        return u32(i.disp);
      default:
        panic("effectiveAddr on non-memory instruction");
    }
}

namespace
{

/** Cap on iterations one REP executes before the executor re-checks;
 *  prevents unbounded single-instruction latency. */
constexpr u64 repChunk = 1u << 20;

ExecOut
fault(const char *msg)
{
    ExecOut o;
    o.status = ExecStatus::Fault;
    o.faultMsg = msg;
    return o;
}

} // namespace

ExecOut
execInst(const GInst &i, CpuState &st, PagedMemory &mem)
{
    ExecOut out;
    const GOpInfo &info = i.info();
    u32 *g = st.gpr.data();
    double *f = st.fpr.data();
    const GAddr next = st.pc + i.length;

    auto done = [&]() -> ExecOut {
        st.pc = next;
        return out;
    };
    auto taken = [&](GAddr t) -> ExecOut {
        st.pc = t;
        out.status = ExecStatus::CtiTaken;
        return out;
    };

    switch (i.op) {
      case GOp::NOP:
        return done();

      case GOp::HLT:
        out.status = ExecStatus::Halt;
        return out;

      case GOp::SYSCALL:
        out.status = ExecStatus::Syscall;
        return out;

      case GOp::RET: {
        u32 t = mem.read32(g[RSP]);
        g[RSP] += 4;
        out.status = ExecStatus::CtiTaken;
        st.pc = t;
        return out;
      }

      // --- string ops -------------------------------------------------
      case GOp::MOVSB:
      case GOp::MOVSW:
      case GOp::STOSB:
      case GOp::STOSW: {
        const bool isMov = i.op == GOp::MOVSB || i.op == GOp::MOVSW;
        const u32 w = info.memWidth;
        u64 iters = i.rep ? g[RCX] : 1;
        if (iters > repChunk)
            iters = repChunk;
        for (u64 n = 0; n < iters; ++n) {
            if (w == 1) {
                u8 v = isMov ? mem.read8(g[RSI]) : u8(g[RAX]);
                mem.write8(g[RDI], v);
            } else {
                u32 v = isMov ? mem.read32(g[RSI]) : g[RAX];
                mem.write32(g[RDI], v);
            }
            if (isMov)
                g[RSI] += w;
            g[RDI] += w;
            if (i.rep)
                g[RCX] -= 1;
            ++out.repIters;
        }
        if (i.rep && g[RCX] != 0) {
            // More iterations remain: stay on this instruction (the
            // restartable-REP contract).
            out.status = ExecStatus::Again;
            return out;
        }
        return done();
      }

      // --- one-register ops ---------------------------------------------
      case GOp::NOT:
        g[i.rd] = ~g[i.rd];
        return done();
      case GOp::NEG: {
        u32 a = g[i.rd];
        u32 r = 0 - a;
        g[i.rd] = r;
        st.flags = flagsSub(0, a, r);
        return done();
      }
      case GOp::INC: {
        u32 a = g[i.rd];
        u32 r = a + 1;
        g[i.rd] = r;
        st.flags = u8((st.flags & flagC) | (flagsAdd(a, 1, r) & flagZSO));
        return done();
      }
      case GOp::DEC: {
        u32 a = g[i.rd];
        u32 r = a - 1;
        g[i.rd] = r;
        st.flags = u8((st.flags & flagC) | (flagsSub(a, 1, r) & flagZSO));
        return done();
      }
      case GOp::PUSH:
        mem.write32(g[RSP] - 4, g[i.rd]);
        g[RSP] -= 4;
        return done();
      case GOp::POP: {
        u32 v = mem.read32(g[RSP]);
        g[i.rd] = v;
        g[RSP] += 4;
        return done();
      }
      case GOp::JMPR:
        return taken(g[i.rd]);
      case GOp::CALLR: {
        u32 t = g[i.rd];
        mem.write32(g[RSP] - 4, next);
        g[RSP] -= 4;
        return taken(t);
      }

      // --- reg,reg / reg,imm ALU ---------------------------------------
      case GOp::MOV_RR:
        g[i.rd] = g[i.rs];
        return done();
      case GOp::MOV_RI:
        g[i.rd] = u32(i.imm);
        return done();

      case GOp::ADD_RR:
      case GOp::ADD_RI:
      case GOp::ADD_RI8: {
        u32 a = g[i.rd];
        u32 b = i.op == GOp::ADD_RR ? g[i.rs] : u32(i.imm);
        u32 r = a + b;
        g[i.rd] = r;
        st.flags = flagsAdd(a, b, r);
        return done();
      }
      case GOp::SUB_RR:
      case GOp::SUB_RI: {
        u32 a = g[i.rd];
        u32 b = i.op == GOp::SUB_RR ? g[i.rs] : u32(i.imm);
        u32 r = a - b;
        g[i.rd] = r;
        st.flags = flagsSub(a, b, r);
        return done();
      }
      case GOp::CMP_RR:
      case GOp::CMP_RI:
      case GOp::CMP_RI8: {
        u32 a = g[i.rd];
        u32 b = i.op == GOp::CMP_RR ? g[i.rs] : u32(i.imm);
        st.flags = flagsSub(a, b, a - b);
        return done();
      }
      case GOp::AND_RR:
      case GOp::AND_RI: {
        u32 r = g[i.rd] & (i.op == GOp::AND_RR ? g[i.rs] : u32(i.imm));
        g[i.rd] = r;
        st.flags = flagsLogic(r);
        return done();
      }
      case GOp::OR_RR:
      case GOp::OR_RI: {
        u32 r = g[i.rd] | (i.op == GOp::OR_RR ? g[i.rs] : u32(i.imm));
        g[i.rd] = r;
        st.flags = flagsLogic(r);
        return done();
      }
      case GOp::XOR_RR:
      case GOp::XOR_RI: {
        u32 r = g[i.rd] ^ (i.op == GOp::XOR_RR ? g[i.rs] : u32(i.imm));
        g[i.rd] = r;
        st.flags = flagsLogic(r);
        return done();
      }
      case GOp::TEST_RR:
      case GOp::TEST_RI: {
        u32 r = g[i.rd] & (i.op == GOp::TEST_RR ? g[i.rs] : u32(i.imm));
        st.flags = flagsLogic(r);
        return done();
      }
      case GOp::IMUL_RR:
      case GOp::IMUL_RI: {
        s64 a = s32(g[i.rd]);
        s64 b = i.op == GOp::IMUL_RR ? s32(g[i.rs]) : i.imm;
        s64 full = a * b;
        u32 r = u32(full);
        g[i.rd] = r;
        u8 fl = flagsLogic(r) & u8(flagZ | flagS);
        if (full != s64(s32(r)))
            fl |= flagC | flagO;
        st.flags = fl;
        return done();
      }
      case GOp::IDIV_RR:
      case GOp::IREM_RR: {
        s32 a = s32(g[i.rd]);
        s32 b = s32(g[i.rs]);
        if (b == 0)
            return fault("integer division by zero");
        if (a == s32(0x8000'0000) && b == -1)
            return fault("integer division overflow");
        g[i.rd] = i.op == GOp::IDIV_RR ? u32(a / b) : u32(a % b);
        return done();
      }
      // Unlike x86, GISA shifts always write flags (CF = last bit
      // shifted out; 0 for a zero shift count). This keeps the flag
      // semantics branch-free for the translator.
      case GOp::SHL_RR:
      case GOp::SHL_RI8: {
        u32 a = g[i.rd];
        u32 s = (i.op == GOp::SHL_RR ? g[i.rs] : u32(i.imm)) & 31;
        u32 r = a << s;
        g[i.rd] = r;
        u8 fl = flagsLogic(r);
        if (s != 0 && ((a >> (32 - s)) & 1))
            fl |= flagC;
        st.flags = fl;
        return done();
      }
      case GOp::SHR_RR:
      case GOp::SHR_RI8: {
        u32 a = g[i.rd];
        u32 s = (i.op == GOp::SHR_RR ? g[i.rs] : u32(i.imm)) & 31;
        u32 r = a >> s;
        g[i.rd] = r;
        u8 fl = flagsLogic(r);
        if (s != 0 && ((a >> (s - 1)) & 1))
            fl |= flagC;
        st.flags = fl;
        return done();
      }
      case GOp::SAR_RR:
      case GOp::SAR_RI8: {
        u32 a = g[i.rd];
        u32 s = (i.op == GOp::SAR_RR ? g[i.rs] : u32(i.imm)) & 31;
        u32 r = u32(s32(a) >> s);
        g[i.rd] = r;
        u8 fl = flagsLogic(r);
        if (s != 0 && ((a >> (s - 1)) & 1))
            fl |= flagC;
        st.flags = fl;
        return done();
      }

      // --- loads ---------------------------------------------------------
      case GOp::MOV_RM: {
        u32 v = mem.read32(effectiveAddr(i, st));
        g[i.rd] = v;
        return done();
      }
      case GOp::MOVZX8_RM: {
        u32 v = mem.read8(effectiveAddr(i, st));
        g[i.rd] = v;
        return done();
      }
      case GOp::MOVZX16_RM: {
        u32 v = mem.read16(effectiveAddr(i, st));
        g[i.rd] = v;
        return done();
      }
      case GOp::MOVSX8_RM: {
        u32 v = u32(s32(s8(mem.read8(effectiveAddr(i, st)))));
        g[i.rd] = v;
        return done();
      }
      case GOp::MOVSX16_RM: {
        u32 v = u32(s32(s16(mem.read16(effectiveAddr(i, st)))));
        g[i.rd] = v;
        return done();
      }
      case GOp::LEA:
        g[i.rd] = effectiveAddr(i, st);
        return done();
      case GOp::ADD_RM: {
        u32 a = g[i.rd];
        u32 b = mem.read32(effectiveAddr(i, st));
        u32 r = a + b;
        g[i.rd] = r;
        st.flags = flagsAdd(a, b, r);
        return done();
      }
      case GOp::CMP_RM: {
        u32 a = g[i.rd];
        u32 b = mem.read32(effectiveAddr(i, st));
        st.flags = flagsSub(a, b, a - b);
        return done();
      }

      // --- stores --------------------------------------------------------
      case GOp::MOV_MR:
        mem.write32(effectiveAddr(i, st), g[i.rd]);
        return done();
      case GOp::MOV8_MR:
        mem.write8(effectiveAddr(i, st), u8(g[i.rd]));
        return done();
      case GOp::MOV16_MR:
        mem.write16(effectiveAddr(i, st), u16(g[i.rd]));
        return done();
      case GOp::ADD_MR: {
        GAddr ea = effectiveAddr(i, st);
        u32 a = mem.read32(ea);
        u32 b = g[i.rd];
        u32 r = a + b;
        mem.write32(ea, r);
        st.flags = flagsAdd(a, b, r);
        return done();
      }

      // --- control transfer ---------------------------------------------
      case GOp::JMP_REL8:
      case GOp::JMP_REL32:
        return taken(i.target(st.pc));
      case GOp::CALL_REL32: {
        mem.write32(g[RSP] - 4, next);
        g[RSP] -= 4;
        return taken(i.target(st.pc));
      }
      case GOp::JCC_REL8:
      case GOp::JCC_REL32:
        if (evalCond(i.cond, st.flags))
            return taken(i.target(st.pc));
        out.status = ExecStatus::CtiNotTaken;
        st.pc = next;
        return out;

      // --- conditional data ---------------------------------------------
      case GOp::SETCC:
        g[i.rd] = evalCond(i.cond, st.flags) ? 1 : 0;
        return done();
      case GOp::CMOVCC:
        if (evalCond(i.cond, st.flags))
            g[i.rd] = g[i.rs];
        return done();

      // --- floating point -------------------------------------------------
      case GOp::FMOV:
        f[i.rd] = f[i.rs];
        return done();
      case GOp::FADD:
        f[i.rd] = gcanon(f[i.rd] + f[i.rs]);
        return done();
      case GOp::FSUB:
        f[i.rd] = gcanon(f[i.rd] - f[i.rs]);
        return done();
      case GOp::FMUL:
        f[i.rd] = gcanon(f[i.rd] * f[i.rs]);
        return done();
      case GOp::FDIV:
        f[i.rd] = gcanon(f[i.rd] / f[i.rs]);
        return done();
      case GOp::FSQRT:
        f[i.rd] = gcanon(std::sqrt(f[i.rs]));
        return done();
      case GOp::FSIN:
        f[i.rd] = gsin(f[i.rs]);
        return done();
      case GOp::FCOS:
        f[i.rd] = gcos(f[i.rs]);
        return done();
      case GOp::FABS:
        f[i.rd] = std::fabs(f[i.rs]);
        return done();
      case GOp::FNEG:
        f[i.rd] = -f[i.rs];
        return done();
      case GOp::FCMP:
        st.flags = flagsFcmp(f[i.rd], f[i.rs]);
        return done();
      case GOp::CVTIF:
        f[i.rd] = double(s32(g[i.rs]));
        return done();
      case GOp::CVTFI:
        g[i.rd] = u32(gcvtfi(f[i.rs]));
        return done();
      case GOp::FLD: {
        u64 bits64 = mem.read64(effectiveAddr(i, st));
        double v;
        static_assert(sizeof(v) == sizeof(bits64));
        __builtin_memcpy(&v, &bits64, 8);
        f[i.rd] = v;
        return done();
      }
      case GOp::FST: {
        double v = f[i.rd];
        u64 bits64;
        __builtin_memcpy(&bits64, &v, 8);
        mem.write64(effectiveAddr(i, st), bits64);
        return done();
      }

      default:
        return fault("unimplemented opcode");
    }
}

} // namespace darco::guest
