/**
 * @file
 * Sparse paged guest memory.
 *
 * Both DARCO components keep a full guest memory image in a
 * PagedMemory. The *reference* component owns the authoritative image
 * and allocates pages on demand (MissPolicy::AllocateZero). The
 * *co-designed* component starts with no pages and must fetch each
 * page from the reference side through the controller's data-request
 * protocol; its memory therefore signals a PageMiss on first touch
 * (MissPolicy::Signal). This mirrors the paper's Section V-A.
 */

#ifndef DARCO_GUEST_MEMORY_HH
#define DARCO_GUEST_MEMORY_HH

#include <array>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace darco::snapshot
{
class Serializer;
class Deserializer;
} // namespace darco::snapshot

namespace darco::guest
{

/** Raised on access to an absent page when the policy is Signal. */
struct PageMiss
{
    GAddr page; //!< base address of the missing page
};

/** What to do when an absent page is touched. */
enum class MissPolicy
{
    AllocateZero, //!< authoritative image: fresh zero page
    Signal,       //!< emulated image: throw PageMiss
};

/** Sparse 32-bit paged memory. */
class PagedMemory
{
  public:
    explicit PagedMemory(MissPolicy policy = MissPolicy::AllocateZero)
        : policy_(policy)
    {}

    u8 read8(GAddr a) { return *ptr(a); }
    u16 read16(GAddr a);
    u32 read32(GAddr a);
    u64 read64(GAddr a);

    void write8(GAddr a, u8 v) { *ptr(a) = v; }
    void write16(GAddr a, u16 v);
    void write32(GAddr a, u32 v);
    void write64(GAddr a, u64 v);

    /** Bulk copy helpers (loader, page transfer, syscalls). */
    void readBlock(GAddr a, void *dst, std::size_t len);
    void writeBlock(GAddr a, const void *src, std::size_t len);

    bool hasPage(GAddr a) const
    {
        return pages_.count(pageBase(a)) != 0;
    }

    /** Raw page contents (allocating per policy). */
    u8 *page(GAddr a);

    /** Install a full page image (used by the data-request protocol). */
    void installPage(GAddr page_addr, const u8 *data);

    /** Addresses of all resident pages, sorted. */
    std::vector<GAddr> residentPages() const;

    std::size_t pageCount() const { return pages_.size(); }

    MissPolicy policy() const { return policy_; }

    /**
     * Checkpoint hooks (snapshot/io.hh): the full resident page image
     * plus the miss policy. restore() replaces the current contents.
     */
    void save(snapshot::Serializer &s) const;
    void restore(snapshot::Deserializer &d);

  private:
    using Page = std::array<u8, pageSizeBytes>;

    /** Pointer to the byte backing address a (allocating per policy). */
    u8 *ptr(GAddr a);

    MissPolicy policy_;
    std::unordered_map<GAddr, std::unique_ptr<Page>> pages_;
};

} // namespace darco::guest

#endif // DARCO_GUEST_MEMORY_HH
