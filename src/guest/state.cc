#include "guest/state.hh"

#include <sstream>

#include "snapshot/io.hh"

namespace darco::guest
{

void
CpuState::save(snapshot::Serializer &s) const
{
    for (u32 r : gpr)
        s.w32(r);
    for (double f : fpr)
        s.wf64(f);
    s.w8(flags);
    s.w32(pc);
}

void
CpuState::restore(snapshot::Deserializer &d)
{
    for (u32 &r : gpr)
        r = d.r32();
    for (double &f : fpr)
        f = d.rf64();
    flags = d.r8();
    pc = d.r32();
}

std::string
CpuState::toString() const
{
    std::ostringstream os;
    os << std::hex;
    os << "pc=0x" << pc << " flags=0x" << int(flags);
    for (unsigned i = 0; i < numGRegs; ++i)
        os << " r" << i << "=0x" << gpr[i];
    os << std::dec;
    for (unsigned i = 0; i < numFRegs; ++i)
        os << " f" << i << "=" << fpr[i];
    return os.str();
}

std::string
CpuState::diff(const CpuState &o) const
{
    std::ostringstream os;
    os << std::hex;
    if (pc != o.pc)
        os << "pc: 0x" << pc << " vs 0x" << o.pc << "; ";
    if (flags != o.flags)
        os << "flags: 0x" << int(flags) << " vs 0x" << int(o.flags) << "; ";
    for (unsigned i = 0; i < numGRegs; ++i) {
        if (gpr[i] != o.gpr[i]) {
            os << "r" << i << ": 0x" << gpr[i] << " vs 0x" << o.gpr[i]
               << "; ";
        }
    }
    os << std::dec;
    for (unsigned i = 0; i < numFRegs; ++i) {
        if (std::memcmp(&fpr[i], &o.fpr[i], sizeof(double)) != 0) {
            os << "f" << i << ": " << fpr[i] << " vs " << o.fpr[i]
               << "; ";
        }
    }
    return os.str();
}

} // namespace darco::guest
