#include "guest/memory.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"
#include "snapshot/io.hh"

namespace darco::guest
{

u8 *
PagedMemory::page(GAddr a)
{
    GAddr base = pageBase(a);
    auto it = pages_.find(base);
    if (it == pages_.end()) {
        if (policy_ == MissPolicy::Signal)
            throw PageMiss{base};
        auto p = std::make_unique<Page>();
        p->fill(0);
        it = pages_.emplace(base, std::move(p)).first;
    }
    return it->second->data();
}

u8 *
PagedMemory::ptr(GAddr a)
{
    return page(a) + pageOffset(a);
}

namespace
{

/** True if [a, a+len) stays within one page. */
inline bool
samePage(GAddr a, std::size_t len)
{
    return pageOffset(a) + len <= pageSizeBytes;
}

} // namespace

u16
PagedMemory::read16(GAddr a)
{
    if (samePage(a, 2)) {
        u16 v;
        std::memcpy(&v, ptr(a), 2);
        return v;
    }
    return u16(read8(a)) | (u16(read8(a + 1)) << 8);
}

u32
PagedMemory::read32(GAddr a)
{
    if (samePage(a, 4)) {
        u32 v;
        std::memcpy(&v, ptr(a), 4);
        return v;
    }
    u32 v = 0;
    for (int i = 0; i < 4; ++i)
        v |= u32(read8(a + i)) << (8 * i);
    return v;
}

u64
PagedMemory::read64(GAddr a)
{
    if (samePage(a, 8)) {
        u64 v;
        std::memcpy(&v, ptr(a), 8);
        return v;
    }
    u64 v = 0;
    for (int i = 0; i < 8; ++i)
        v |= u64(read8(a + i)) << (8 * i);
    return v;
}

void
PagedMemory::write16(GAddr a, u16 v)
{
    if (samePage(a, 2)) {
        std::memcpy(ptr(a), &v, 2);
        return;
    }
    write8(a, u8(v));
    write8(a + 1, u8(v >> 8));
}

void
PagedMemory::write32(GAddr a, u32 v)
{
    if (samePage(a, 4)) {
        std::memcpy(ptr(a), &v, 4);
        return;
    }
    for (int i = 0; i < 4; ++i)
        write8(a + i, u8(v >> (8 * i)));
}

void
PagedMemory::write64(GAddr a, u64 v)
{
    if (samePage(a, 8)) {
        std::memcpy(ptr(a), &v, 8);
        return;
    }
    for (int i = 0; i < 8; ++i)
        write8(a + i, u8(v >> (8 * i)));
}

void
PagedMemory::readBlock(GAddr a, void *dst, std::size_t len)
{
    u8 *out = static_cast<u8 *>(dst);
    while (len > 0) {
        std::size_t chunk =
            std::min<std::size_t>(len, pageSizeBytes - pageOffset(a));
        std::memcpy(out, ptr(a), chunk);
        a += chunk;
        out += chunk;
        len -= chunk;
    }
}

void
PagedMemory::writeBlock(GAddr a, const void *src, std::size_t len)
{
    const u8 *in = static_cast<const u8 *>(src);
    while (len > 0) {
        std::size_t chunk =
            std::min<std::size_t>(len, pageSizeBytes - pageOffset(a));
        std::memcpy(ptr(a), in, chunk);
        a += chunk;
        in += chunk;
        len -= chunk;
    }
}

void
PagedMemory::installPage(GAddr page_addr, const u8 *data)
{
    darco_assert(pageOffset(page_addr) == 0, "unaligned page install");
    auto p = std::make_unique<Page>();
    std::memcpy(p->data(), data, pageSizeBytes);
    pages_[page_addr] = std::move(p);
}

void
PagedMemory::save(snapshot::Serializer &s) const
{
    s.w8(u8(policy_));
    s.w64(pages_.size());
    // Sorted order keeps the byte stream deterministic across runs
    // (unordered_map iteration order is not).
    for (GAddr base : residentPages()) {
        s.w32(base);
        s.wbytes(pages_.at(base)->data(), pageSizeBytes);
    }
}

void
PagedMemory::restore(snapshot::Deserializer &d)
{
    u8 pol = d.r8();
    if (pol > u8(MissPolicy::Signal))
        throw snapshot::SnapshotError("bad memory miss policy");
    policy_ = MissPolicy(pol);
    pages_.clear();
    u64 n = d.r64();
    for (u64 i = 0; i < n; ++i) {
        GAddr base = d.r32();
        if (pageOffset(base) != 0)
            throw snapshot::SnapshotError("unaligned page in snapshot");
        auto p = std::make_unique<Page>();
        d.rbytes(p->data(), pageSizeBytes);
        pages_[base] = std::move(p);
    }
}

std::vector<GAddr>
PagedMemory::residentPages() const
{
    std::vector<GAddr> out;
    out.reserve(pages_.size());
    for (const auto &[base, _] : pages_)
        out.push_back(base);
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace darco::guest
