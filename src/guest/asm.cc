#include "guest/asm.hh"

#include <cstring>

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace darco::guest
{

Assembler::Label
Assembler::newLabel()
{
    labels_.push_back(-1);
    return Label{u32(labels_.size() - 1)};
}

void
Assembler::bind(Label l)
{
    darco_assert(l.id < labels_.size(), "unknown label");
    darco_assert(labels_[l.id] < 0, "label bound twice");
    labels_[l.id] = s64(code_.size());
}

std::size_t
Assembler::labelOffset(Label l) const
{
    darco_assert(l.id < labels_.size(), "unknown label");
    darco_assert(labels_[l.id] >= 0, "label not bound");
    return std::size_t(labels_[l.id]);
}

void
Assembler::emit(GInst inst)
{
    u8 buf[16];
    std::size_t n = encode(inst, buf);
    code_.insert(code_.end(), buf, buf + n);
}

void
Assembler::none(GOp op)
{
    GInst i;
    i.op = op;
    emit(i);
}

void
Assembler::r(GOp op, GReg rd)
{
    GInst i;
    i.op = op;
    i.rd = u8(rd);
    emit(i);
}

void
Assembler::rr(GOp op, GReg rd, GReg rs)
{
    GInst i;
    i.op = op;
    i.rd = u8(rd);
    i.rs = u8(rs);
    emit(i);
}

void
Assembler::ri(GOp op, GReg rd, s32 imm)
{
    GInst i;
    i.op = op;
    i.rd = u8(rd);
    i.imm = imm;
    emit(i);
}

void
Assembler::rm(GOp op, u8 rd, const Mem &m)
{
    GInst i;
    i.op = op;
    i.rd = rd;
    i.memMode = m.mode;
    i.memBase = m.base;
    i.memIndex = m.index;
    i.memScale = m.scale;
    i.disp = m.disp;
    emit(i);
}

void
Assembler::mr(GOp op, const Mem &m, u8 rs)
{
    // MR shares the RM layout: the data register lives in the "rd"
    // field of the modbyte.
    rm(op, rs, m);
}

void
Assembler::fp(GOp op, u8 fd, u8 fs)
{
    GInst i;
    i.op = op;
    i.rd = fd;
    i.rs = fs;
    emit(i);
}

void
Assembler::movsb(bool rep_prefix)
{
    GInst i;
    i.op = GOp::MOVSB;
    i.rep = rep_prefix;
    emit(i);
}

void
Assembler::movsw(bool rep_prefix)
{
    GInst i;
    i.op = GOp::MOVSW;
    i.rep = rep_prefix;
    emit(i);
}

void
Assembler::stosb(bool rep_prefix)
{
    GInst i;
    i.op = GOp::STOSB;
    i.rep = rep_prefix;
    emit(i);
}

void
Assembler::stosw(bool rep_prefix)
{
    GInst i;
    i.op = GOp::STOSW;
    i.rep = rep_prefix;
    emit(i);
}

void
Assembler::branchTo(GOp op, GCond c, Label l, bool rel8)
{
    darco_assert(l.id < labels_.size(), "unknown label");
    GInst i;
    i.op = op;
    i.cond = c;
    i.imm = 0;
    u8 buf[16];
    std::size_t n = encode(i, buf);
    std::size_t start = code_.size();
    code_.insert(code_.end(), buf, buf + n);
    // The offset field is at the end of the instruction.
    std::size_t field = code_.size() - (rel8 ? 1 : 4);
    fixups_.push_back(Fixup{field, code_.size(), l.id, rel8});
    (void)start;
}

void
Assembler::jmp(Label l)
{
    branchTo(GOp::JMP_REL32, GCond::EQ, l, false);
}

void
Assembler::jmp8(Label l)
{
    branchTo(GOp::JMP_REL8, GCond::EQ, l, true);
}

void
Assembler::jcc(GCond c, Label l)
{
    branchTo(GOp::JCC_REL32, c, l, false);
}

void
Assembler::jcc8(GCond c, Label l)
{
    branchTo(GOp::JCC_REL8, c, l, true);
}

void
Assembler::call(Label l)
{
    branchTo(GOp::CALL_REL32, GCond::EQ, l, false);
}

void
Assembler::setcc(GCond c, GReg d)
{
    GInst i;
    i.op = GOp::SETCC;
    i.cond = c;
    i.rd = u8(d);
    emit(i);
}

void
Assembler::cmovcc(GCond c, GReg d, GReg s)
{
    GInst i;
    i.op = GOp::CMOVCC;
    i.cond = c;
    i.rd = u8(d);
    i.rs = u8(s);
    emit(i);
}

std::size_t
Assembler::dataBytes(const void *p, std::size_t len)
{
    std::size_t off = data_.size();
    const u8 *b = static_cast<const u8 *>(p);
    data_.insert(data_.end(), b, b + len);
    return off;
}

std::size_t
Assembler::dataU32(u32 v)
{
    return dataBytes(&v, 4);
}

std::size_t
Assembler::dataF64(double v)
{
    return dataBytes(&v, 8);
}

std::size_t
Assembler::dataZero(std::size_t len)
{
    std::size_t off = data_.size();
    data_.resize(data_.size() + len, 0);
    return off;
}

Program
Assembler::finish(const std::string &name)
{
    darco_assert(!finished_, "assembler reused after finish()");
    finished_ = true;

    for (const Fixup &f : fixups_) {
        s64 target = labels_[f.label];
        darco_assert(target >= 0, "unbound label ", f.label);
        s64 rel = target - s64(f.instEnd);
        if (f.rel8) {
            darco_assert(fitsSigned(rel, 8),
                         "rel8 branch out of range: ", rel);
            code_[f.pos] = u8(s8(rel));
        } else {
            u32 v = u32(s32(rel));
            for (int i = 0; i < 4; ++i)
                code_[f.pos + i] = u8(v >> (8 * i));
        }
    }

    Program p;
    p.name = name;
    p.code = std::move(code_);
    p.data = std::move(data_);
    p.entry = layout::codeBase;
    return p;
}

} // namespace darco::guest
