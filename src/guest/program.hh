/**
 * @file
 * Guest program image and memory-layout conventions.
 */

#ifndef DARCO_GUEST_PROGRAM_HH
#define DARCO_GUEST_PROGRAM_HH

#include <string>
#include <vector>

#include "guest/memory.hh"
#include "guest/state.hh"

namespace darco::guest
{

/** Fixed guest virtual-memory layout. */
namespace layout
{
constexpr GAddr codeBase = 0x0000'1000;
constexpr GAddr dataBase = 0x0040'0000;
constexpr GAddr heapBase = 0x0080'0000; //!< initial brk
constexpr GAddr stackTop = 0x0ff0'0000; //!< grows downward
} // namespace layout

/**
 * A loadable guest program: code + initialized data + entry point.
 */
struct Program
{
    std::string name = "anon";
    std::vector<u8> code;           //!< loaded at layout::codeBase
    std::vector<u8> data;           //!< loaded at layout::dataBase
    GAddr entry = layout::codeBase;

    /** Load segments into memory and return the initial CPU state. */
    CpuState load(PagedMemory &mem) const;

    /** Guest address of a code-section offset. */
    static GAddr
    codeAddr(std::size_t off)
    {
        return layout::codeBase + GAddr(off);
    }

    /** Guest address of a data-section offset. */
    static GAddr
    dataAddr(std::size_t off)
    {
        return layout::dataBase + GAddr(off);
    }

    /**
     * Serialize to the textual `.gisa` case format (name, entry and
     * hex-dumped segments). Used by the fuzzer to dump minimized
     * reproducers that `darco_fuzz --replay` can reload.
     */
    std::string saveGisa() const;

    /**
     * Parse a `.gisa` image produced by saveGisa().
     * @return false (with *err filled when non-null) on malformed
     *         input.
     */
    static bool parseGisa(const std::string &text, Program &out,
                          std::string *err = nullptr);
};

/**
 * Number of static instructions in the code segment (decodes from the
 * start; stops at the first undecodable byte). The fuzzer's minimality
 * metric.
 */
std::size_t countInstructions(const Program &prog);

} // namespace darco::guest

#endif // DARCO_GUEST_PROGRAM_HH
