/**
 * @file
 * GISA: the synthetic 32-bit CISC guest ISA.
 *
 * GISA stands in for the paper's x86 guest ISA (see DESIGN.md,
 * substitution table). It deliberately reproduces the structural
 * properties the evaluation depends on:
 *
 *  - variable-length encodings (1..8 bytes),
 *  - only 8 general-purpose registers (register pressure),
 *  - condition flags written as an implicit side effect of ALU ops,
 *  - complex addressing modes (base + index*scale + disp),
 *  - read-modify-write memory operands,
 *  - string instructions with a REP prefix,
 *  - transcendental instructions (FSIN/FCOS) that the host must expand
 *    in software.
 */

#ifndef DARCO_GUEST_GISA_HH
#define DARCO_GUEST_GISA_HH

#include <string>

#include "common/types.hh"

namespace darco::guest
{

/** Number of guest general-purpose registers. */
constexpr unsigned numGRegs = 8;
/** Number of guest floating-point registers. */
constexpr unsigned numFRegs = 8;

/** Conventional register roles (x86-flavoured). */
enum GReg : u8
{
    RAX = 0, //!< return value / string data
    RCX = 1, //!< REP count
    RDX = 2,
    RBX = 3,
    RSP = 4, //!< stack pointer (PUSH/POP/CALL/RET)
    RBP = 5,
    RSI = 6, //!< string source
    RDI = 7, //!< string destination
};

/** Flag register bits. */
enum GFlag : u8
{
    flagZ = 1 << 0,
    flagS = 1 << 1,
    flagC = 1 << 2,
    flagO = 1 << 3,
    flagAll = flagZ | flagS | flagC | flagO,
    flagZSO = flagZ | flagS | flagO, //!< INC/DEC do not touch CF
};

/** Branch/set/cmov condition codes. */
enum class GCond : u8
{
    EQ, NE,  //!< ZF / !ZF
    LT, GE,  //!< signed compares (SF ^ OF)
    LE, GT,
    B, AE,   //!< unsigned (CF)
    BE, A,
    S, NS,   //!< sign flag
    NumConds,
};

/** Instruction encoding formats. */
enum class GFmt : u8
{
    None,    //!< [op]
    Str,     //!< [REP?][op] implicit-operand string op
    R,       //!< [op][rd]
    RR,      //!< [op][rd<<4|rs]
    RI,      //!< [op][rd][imm32]
    RI8,     //!< [op][rd][imm8]
    RM,      //!< [op][modbyte][mem...]        reg <- mem (or LEA)
    MR,      //!< [op][modbyte][mem...]        mem <- reg
    Rel8,    //!< [op][rel8]
    Rel32,   //!< [op][rel32]
    Jcc8,    //!< [op][cond][rel8]
    Jcc32,   //!< [op][cond][rel32]
    SetCC,   //!< [op][cond<<4|rd]
    CmovCC,  //!< [op][cond][rd<<4|rs]
    FP,      //!< [op][fd<<4|fs]
    FInt,    //!< [op][rd<<4|rs] cross register-file moves (CVT)
};

/** Memory addressing modes for RM/MR formats. */
enum GMemMode : u8
{
    memNone = 0,
    memBase = 1,        //!< [base]
    memBaseD8 = 2,      //!< [base + disp8]
    memBaseD32 = 3,     //!< [base + disp32]
    memSib = 4,         //!< [base + index << scale + disp32]
    memAbs = 5,         //!< [abs32]
};

/** GISA opcodes. Values are the literal encoding bytes. */
enum class GOp : u8
{
    // --- no-operand ---
    NOP = 0x00,
    HLT,
    RET,
    SYSCALL,
    // --- string ops (REP-able) ---
    MOVSB,
    MOVSW,
    STOSB,
    STOSW,
    // --- one GPR ---
    NOT,
    NEG,
    INC,
    DEC,
    PUSH,
    POP,
    JMPR,   //!< indirect jump through register
    CALLR,  //!< indirect call through register
    // --- reg, reg ---
    MOV_RR,
    ADD_RR,
    SUB_RR,
    AND_RR,
    OR_RR,
    XOR_RR,
    CMP_RR,
    TEST_RR,
    IMUL_RR,
    IDIV_RR,
    IREM_RR,
    SHL_RR,
    SHR_RR,
    SAR_RR,
    // --- reg, imm32 ---
    MOV_RI,
    ADD_RI,
    SUB_RI,
    AND_RI,
    OR_RI,
    XOR_RI,
    CMP_RI,
    TEST_RI,
    IMUL_RI,
    // --- reg, imm8 (sign-extended) ---
    ADD_RI8,
    CMP_RI8,
    SHL_RI8,
    SHR_RI8,
    SAR_RI8,
    // --- loads: reg <- mem ---
    MOV_RM,     //!< 32-bit load
    MOVZX8_RM,
    MOVZX16_RM,
    MOVSX8_RM,
    MOVSX16_RM,
    LEA,        //!< address computation only
    ADD_RM,     //!< reg += mem32 (CISC ALU-with-memory)
    CMP_RM,     //!< flags = reg - mem32
    // --- stores: mem <- reg ---
    MOV_MR,     //!< 32-bit store
    MOV8_MR,
    MOV16_MR,
    ADD_MR,     //!< mem32 += reg (read-modify-write)
    // --- control transfer ---
    JMP_REL8,
    JMP_REL32,
    CALL_REL32,
    JCC_REL8,
    JCC_REL32,
    // --- conditional data ---
    SETCC,      //!< rd = cond ? 1 : 0
    CMOVCC,     //!< rd = cond ? rs : rd
    // --- floating point (double precision) ---
    FMOV,
    FADD,
    FSUB,
    FMUL,
    FDIV,
    FSQRT,
    FSIN,       //!< no host equivalent: expanded in software
    FCOS,       //!< no host equivalent: expanded in software
    FABS,
    FNEG,
    FCMP,       //!< sets ZF (equal) and CF (less), clears SF/OF
    CVTIF,      //!< fd = double(gpr rs)
    CVTFI,      //!< gpr rd = s32(trunc(fs))
    FLD,        //!< fd <- mem64
    FST,        //!< mem64 <- fs
    NumOps,
};

/** The REP prefix byte (never a valid opcode). */
constexpr u8 repPrefix = 0xfe;

/** Static description of one opcode. */
struct GOpInfo
{
    const char *name;    //!< mnemonic
    GFmt fmt;            //!< encoding format
    u8 flagsWritten;     //!< GFlag mask this op defines
    bool readsFlags;     //!< consumes condition flags
    bool isCti;          //!< control-transfer instruction (ends a BB)
    u8 memWidth;         //!< bytes accessed (0 if no memory operand)
    bool isFp;           //!< operates on the FP register file
};

/** Look up static info for an opcode. */
const GOpInfo &gopInfo(GOp op);

/** Mnemonic for an opcode. */
const char *gopName(GOp op);

/** Printable condition name. */
const char *gcondName(GCond c);

/** Evaluate a condition against a flags byte. */
bool evalCond(GCond c, u8 flags);

/** A decoded GISA instruction. */
struct GInst
{
    GOp op = GOp::NOP;
    GCond cond = GCond::EQ; //!< for JCC/SETCC/CMOVCC
    u8 rd = 0;              //!< destination register (GPR or FPR)
    u8 rs = 0;              //!< source register (GPR or FPR)
    bool rep = false;       //!< REP prefix present (string ops)
    u8 memMode = memNone;   //!< GMemMode
    u8 memBase = 0;
    u8 memIndex = 0;
    u8 memScale = 0;        //!< log2 scale (0..3)
    s32 disp = 0;           //!< displacement / absolute address
    s32 imm = 0;            //!< immediate or branch offset
    u8 length = 0;          //!< encoded length in bytes

    const GOpInfo &info() const { return gopInfo(op); }
    bool isCti() const { return info().isCti; }

    /** Branch target for direct CTIs, given this instruction's PC. */
    GAddr
    target(GAddr pc) const
    {
        return pc + length + u32(imm);
    }
};

/**
 * Decode one instruction at `bytes` (at least `avail` valid bytes).
 *
 * @return true on success; false if the bytes do not form a valid
 *         instruction (invalid opcode or truncated).
 */
bool decode(const u8 *bytes, std::size_t avail, GInst &out);

/**
 * Encode an instruction into `out` (must have >= 16 bytes of space).
 *
 * @return encoded length in bytes. Also updates inst.length.
 */
std::size_t encode(GInst &inst, u8 *out);

/** Disassemble one decoded instruction. */
std::string disasm(const GInst &inst, GAddr pc);

} // namespace darco::guest

#endif // DARCO_GUEST_GISA_HH
