/**
 * @file
 * Programmatic GISA assembler.
 *
 * The assembler is the construction API for guest programs: examples,
 * tests and the synthetic workload generator all build binaries with
 * it. It supports forward references through Label handles and both
 * short (rel8) and near (rel32) branch forms.
 */

#ifndef DARCO_GUEST_ASM_HH
#define DARCO_GUEST_ASM_HH

#include <string>
#include <vector>

#include "guest/gisa.hh"
#include "guest/program.hh"

namespace darco::guest
{

/** A memory-operand reference for RM/MR instructions. */
struct Mem
{
    u8 mode = memBase;
    u8 base = 0;
    u8 index = 0;
    u8 scale = 0;
    s32 disp = 0;
};

/** [base] */
inline Mem
mem(GReg base)
{
    return Mem{memBase, u8(base), 0, 0, 0};
}

/** [base + disp] (picks disp8/disp32 encoding automatically) */
inline Mem
mem(GReg base, s32 disp)
{
    if (disp >= -128 && disp <= 127)
        return Mem{memBaseD8, u8(base), 0, 0, disp};
    return Mem{memBaseD32, u8(base), 0, 0, disp};
}

/** [base + index << scale + disp] */
inline Mem
memIdx(GReg base, GReg index, u8 scale_log2, s32 disp = 0)
{
    return Mem{memSib, u8(base), u8(index), scale_log2, disp};
}

/** [abs32] */
inline Mem
memAbs32(GAddr addr)
{
    return Mem{memAbs, 0, 0, 0, s32(addr)};
}

/**
 * Incremental assembler over a code buffer.
 *
 * Typical use:
 * @code
 *   Assembler a;
 *   auto loop = a.newLabel();
 *   a.movri(RCX, 10);
 *   a.bind(loop);
 *   a.addri(RAX, 3);
 *   a.dec(RCX);
 *   a.jcc(GCond::NE, loop);
 *   a.hlt();
 *   Program p = a.finish("demo");
 * @endcode
 */
class Assembler
{
  public:
    /** Opaque label handle. */
    struct Label
    {
        u32 id;
    };

    Assembler() = default;

    Label newLabel();
    /** Bind a label to the current position. */
    void bind(Label l);
    /** Current code offset (next instruction position). */
    std::size_t here() const { return code_.size(); }
    /** Code offset of a bound label (panics if unbound). */
    std::size_t labelOffset(Label l) const;

    // --- generic emitters ---------------------------------------------
    void emit(GInst inst);
    void none(GOp op);
    void r(GOp op, GReg rd);
    void rr(GOp op, GReg rd, GReg rs);
    void ri(GOp op, GReg rd, s32 imm);
    void rm(GOp op, u8 rd, const Mem &m);
    void mr(GOp op, const Mem &m, u8 rs);
    void fp(GOp op, u8 fd, u8 fs);

    // --- integer convenience ------------------------------------------
    void nop() { none(GOp::NOP); }
    void hlt() { none(GOp::HLT); }
    void ret() { none(GOp::RET); }
    void syscall() { none(GOp::SYSCALL); }
    void movrr(GReg d, GReg s) { rr(GOp::MOV_RR, d, s); }
    void movri(GReg d, s32 v) { ri(GOp::MOV_RI, d, v); }
    void addrr(GReg d, GReg s) { rr(GOp::ADD_RR, d, s); }
    void addri(GReg d, s32 v) { ri(GOp::ADD_RI, d, v); }
    void addri8(GReg d, s8 v) { ri(GOp::ADD_RI8, d, v); }
    void subrr(GReg d, GReg s) { rr(GOp::SUB_RR, d, s); }
    void subri(GReg d, s32 v) { ri(GOp::SUB_RI, d, v); }
    void andrr(GReg d, GReg s) { rr(GOp::AND_RR, d, s); }
    void andri(GReg d, s32 v) { ri(GOp::AND_RI, d, v); }
    void orrr(GReg d, GReg s) { rr(GOp::OR_RR, d, s); }
    void orri(GReg d, s32 v) { ri(GOp::OR_RI, d, v); }
    void xorrr(GReg d, GReg s) { rr(GOp::XOR_RR, d, s); }
    void xorri(GReg d, s32 v) { ri(GOp::XOR_RI, d, v); }
    void cmprr(GReg d, GReg s) { rr(GOp::CMP_RR, d, s); }
    void cmpri(GReg d, s32 v) { ri(GOp::CMP_RI, d, v); }
    void cmpri8(GReg d, s8 v) { ri(GOp::CMP_RI8, d, v); }
    void testrr(GReg d, GReg s) { rr(GOp::TEST_RR, d, s); }
    void imulrr(GReg d, GReg s) { rr(GOp::IMUL_RR, d, s); }
    void imulri(GReg d, s32 v) { ri(GOp::IMUL_RI, d, v); }
    void idivrr(GReg d, GReg s) { rr(GOp::IDIV_RR, d, s); }
    void iremrr(GReg d, GReg s) { rr(GOp::IREM_RR, d, s); }
    void shlrr(GReg d, GReg s) { rr(GOp::SHL_RR, d, s); }
    void shlri(GReg d, s8 v) { ri(GOp::SHL_RI8, d, v); }
    void shrri(GReg d, s8 v) { ri(GOp::SHR_RI8, d, v); }
    void sarri(GReg d, s8 v) { ri(GOp::SAR_RI8, d, v); }
    void notr(GReg d) { r(GOp::NOT, d); }
    void negr(GReg d) { r(GOp::NEG, d); }
    void inc(GReg d) { r(GOp::INC, d); }
    void dec(GReg d) { r(GOp::DEC, d); }
    void push(GReg s) { r(GOp::PUSH, s); }
    void pop(GReg d) { r(GOp::POP, d); }

    // --- memory ---------------------------------------------------------
    void movrm(GReg d, const Mem &m) { rm(GOp::MOV_RM, d, m); }
    void movmr(const Mem &m, GReg s) { mr(GOp::MOV_MR, m, s); }
    void mov8mr(const Mem &m, GReg s) { mr(GOp::MOV8_MR, m, s); }
    void mov16mr(const Mem &m, GReg s) { mr(GOp::MOV16_MR, m, s); }
    void movzx8(GReg d, const Mem &m) { rm(GOp::MOVZX8_RM, d, m); }
    void movzx16(GReg d, const Mem &m) { rm(GOp::MOVZX16_RM, d, m); }
    void movsx8(GReg d, const Mem &m) { rm(GOp::MOVSX8_RM, d, m); }
    void movsx16(GReg d, const Mem &m) { rm(GOp::MOVSX16_RM, d, m); }
    void lea(GReg d, const Mem &m) { rm(GOp::LEA, d, m); }
    void addrm(GReg d, const Mem &m) { rm(GOp::ADD_RM, d, m); }
    void cmprm(GReg d, const Mem &m) { rm(GOp::CMP_RM, d, m); }
    void addmr(const Mem &m, GReg s) { mr(GOp::ADD_MR, m, s); }

    // --- string ops -------------------------------------------------
    void movsb(bool rep_prefix = false);
    void movsw(bool rep_prefix = false);
    void stosb(bool rep_prefix = false);
    void stosw(bool rep_prefix = false);

    // --- control flow -----------------------------------------------
    void jmp(Label l);             //!< rel32
    void jmp8(Label l);            //!< rel8 (must be in range at fixup)
    void jcc(GCond c, Label l);    //!< rel32
    void jcc8(GCond c, Label l);   //!< rel8
    void call(Label l);
    void jmpr(GReg r_) { r(GOp::JMPR, r_); }
    void callr(GReg r_) { r(GOp::CALLR, r_); }
    void setcc(GCond c, GReg d);
    void cmovcc(GCond c, GReg d, GReg s);

    // --- floating point -----------------------------------------------
    void fmov(u8 d, u8 s) { fp(GOp::FMOV, d, s); }
    void fadd(u8 d, u8 s) { fp(GOp::FADD, d, s); }
    void fsub(u8 d, u8 s) { fp(GOp::FSUB, d, s); }
    void fmul(u8 d, u8 s) { fp(GOp::FMUL, d, s); }
    void fdiv(u8 d, u8 s) { fp(GOp::FDIV, d, s); }
    void fsqrt(u8 d, u8 s) { fp(GOp::FSQRT, d, s); }
    void fsin(u8 d, u8 s) { fp(GOp::FSIN, d, s); }
    void fcos(u8 d, u8 s) { fp(GOp::FCOS, d, s); }
    void fabs_(u8 d, u8 s) { fp(GOp::FABS, d, s); }
    void fneg(u8 d, u8 s) { fp(GOp::FNEG, d, s); }
    void fcmp(u8 a, u8 b) { fp(GOp::FCMP, a, b); }
    void cvtif(u8 fd, GReg s) { fp(GOp::CVTIF, fd, u8(s)); }
    void cvtfi(GReg d, u8 fs) { fp(GOp::CVTFI, u8(d), fs); }
    void fld(u8 fd, const Mem &m) { rm(GOp::FLD, fd, m); }
    void fst(const Mem &m, u8 fs) { mr(GOp::FST, m, fs); }

    // --- data section --------------------------------------------------
    /** Append raw bytes to the data section; returns its offset. */
    std::size_t dataBytes(const void *p, std::size_t len);
    std::size_t dataU32(u32 v);
    std::size_t dataF64(double v);
    /** Reserve zeroed data space; returns its offset. */
    std::size_t dataZero(std::size_t len);

    /**
     * Resolve fixups and produce the program image.
     * The assembler must not be reused afterwards.
     */
    Program finish(const std::string &name = "anon");

  private:
    struct Fixup
    {
        std::size_t pos;      //!< offset of the offset field in code_
        std::size_t instEnd;  //!< offset just past the instruction
        u32 label;
        bool rel8;
    };

    void branchTo(GOp op, GCond c, Label l, bool rel8);

    std::vector<u8> code_;
    std::vector<u8> data_;
    std::vector<s64> labels_;    //!< bound offset or -1
    std::vector<Fixup> fixups_;
    bool finished_ = false;
};

} // namespace darco::guest

#endif // DARCO_GUEST_ASM_HH
