/**
 * @file
 * Versioned binary checkpoint serialization.
 *
 * The snapshot container is a magic/version header followed by a
 * self-describing sequence of named sections, each carrying its byte
 * length so a reader can verify framing and skip sections it does not
 * understand. All integers are little-endian regardless of host
 * byte order, so a checkpoint written on one machine restores on
 * another.
 *
 *   [magic u32][version u32]
 *   repeat:
 *     [name-len u16][name bytes][payload-len u64][payload bytes]
 *   [name-len u16 == 0]                         (end marker)
 *
 * Layers serialize themselves through save()/restore() hooks taking a
 * Serializer/Deserializer; the Controller composes them into the
 * checkpoint sections (see sim/controller.hh). Host code is *not*
 * serialized: translations are re-materialized by retranslating the
 * registered guest regions on restore, so checkpoints stay
 * host-agnostic.
 */

#ifndef DARCO_SNAPSHOT_IO_HH
#define DARCO_SNAPSHOT_IO_HH

#include <cstddef>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "common/types.hh"

namespace darco::snapshot
{

/** Raised on malformed, truncated, or incompatible snapshot input. */
class SnapshotError : public std::runtime_error
{
  public:
    explicit SnapshotError(const std::string &what)
        : std::runtime_error("snapshot: " + what)
    {}
};

/** "DRC0" little-endian. */
constexpr u32 snapshotMagic = 0x30435244u;
/**
 * Bump on any incompatible change to a section payload.
 * v2: Profiler BBV collection state + superblock construction
 *     recipes in the `tol` section (SimPoint sampled simulation).
 * v3: `cfg` section stores the schema-normalized effective values of
 *     execution-relevant parameters only (see docs/CONFIG.md), not
 *     the raw key/value store.
 * v4: `tol` section carries in-flight asynchronous translation jobs
 *     (entry, virtual enqueue/completion points, SB recipes) and the
 *     cost model gains the concurrent_translator overhead category.
 * v5: multi-core guest. The `tol` section stores per-core contexts
 *     (CpuState, retirement counters, mode/resume flags) plus the
 *     dispatch-interleaver RNG state and current core; the controller
 *     writes one `ref<i>`/`emem<i>` section pair per extra core
 *     (core 0 keeps the unsuffixed names).
 */
constexpr u32 snapshotVersion = 5;

/**
 * Upper bound on a section name. Real names are a handful of bytes
 * ("cfg", "tol", "ref12"); the cap exists because the container now
 * also frames *network* payloads (campaign-service messages), where a
 * hostile peer controls every header field.
 */
constexpr u16 maxSectionNameBytes = 256;

/**
 * Checkpoint writer. Writes the header on construction; sections are
 * buffered so their byte length can prefix the payload. Call finish()
 * (or let the destructor do it) to emit the end marker.
 */
class Serializer
{
  public:
    explicit Serializer(std::ostream &os);
    ~Serializer();

    Serializer(const Serializer &) = delete;
    Serializer &operator=(const Serializer &) = delete;

    /** Open a named section; primitives write into it. */
    void beginSection(const std::string &name);
    /** Close the open section and emit it (name, length, payload). */
    void endSection();
    /** Emit the end marker. Idempotent. */
    void finish();

    void w8(u8 v);
    void w16(u16 v);
    void w32(u32 v);
    void w64(u64 v);
    void wf64(double v);
    void wbool(bool v) { w8(v ? 1 : 0); }
    void wstr(const std::string &s);
    void wbytes(const void *data, std::size_t len);

  private:
    std::ostream &os_;
    std::ostringstream section_;
    std::string sectionName_;
    bool inSection_ = false;
    bool finished_ = false;

    void raw8(std::ostream &os, u8 v);
    void raw16(std::ostream &os, u16 v);
    void raw32(std::ostream &os, u32 v);
    void raw64(std::ostream &os, u64 v);
};

/**
 * Checkpoint reader. Verifies magic and version on construction
 * (throwing SnapshotError otherwise); sections are consumed in stream
 * order via nextSection()/expectSection(), and every primitive read is
 * bounds-checked against the open section's length.
 *
 * Hostile-input posture (the container parses network bytes since the
 * campaign service): on seekable streams — which includes every
 * in-memory wire payload — a section length is validated against the
 * bytes actually remaining in the stream *before* anything is
 * allocated or skipped, and section names are capped at
 * maxSectionNameBytes, so a corrupt or adversarial header can never
 * drive an allocation beyond the input's own size.
 */
class Deserializer
{
  public:
    explicit Deserializer(std::istream &is);

    /**
     * Advance to the next section.
     * @return its name, or "" at the end marker.
     */
    std::string nextSection();

    /**
     * Advance to the next section and require it to be `name`
     * (unknown intervening sections are skipped for forward
     * compatibility). Throws SnapshotError when absent.
     */
    void expectSection(const std::string &name);

    /** Close the open section, requiring it fully consumed. */
    void endSection();

    u8 r8();
    u16 r16();
    u32 r32();
    u64 r64();
    double rf64();
    bool rbool() { return r8() != 0; }
    std::string rstr();
    void rbytes(void *data, std::size_t len);

    u32 version() const { return version_; }

  private:
    std::istream &is_;
    u32 version_ = 0;
    u64 sectionRemaining_ = 0;
    bool inSection_ = false;
    bool seekable_ = false;   //!< stream size is known
    std::streamoff end_ = 0;  //!< absolute end offset when seekable

    void need(std::size_t n);
    u8 raw8();
    u16 raw16();
    u32 raw32();
    u64 raw64();
};

} // namespace darco::snapshot

#endif // DARCO_SNAPSHOT_IO_HH
