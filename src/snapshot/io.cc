#include "snapshot/io.hh"

#include <cstring>

namespace darco::snapshot
{

// ---------------------------------------------------------------------
// Serializer
// ---------------------------------------------------------------------

Serializer::Serializer(std::ostream &os) : os_(os)
{
    raw32(os_, snapshotMagic);
    raw32(os_, snapshotVersion);
}

Serializer::~Serializer()
{
    // Best effort: a forgotten finish() must not leave the container
    // without its end marker (throwing from a destructor is worse than
    // a short write, which the reader reports as truncation anyway).
    if (!finished_ && !inSection_)
        finish();
}

void
Serializer::raw8(std::ostream &os, u8 v)
{
    os.put(char(v));
}

void
Serializer::raw16(std::ostream &os, u16 v)
{
    raw8(os, u8(v));
    raw8(os, u8(v >> 8));
}

void
Serializer::raw32(std::ostream &os, u32 v)
{
    raw16(os, u16(v));
    raw16(os, u16(v >> 16));
}

void
Serializer::raw64(std::ostream &os, u64 v)
{
    raw32(os, u32(v));
    raw32(os, u32(v >> 32));
}

void
Serializer::beginSection(const std::string &name)
{
    if (inSection_)
        throw SnapshotError("nested section '" + name + "'");
    if (name.empty() || name.size() > maxSectionNameBytes)
        throw SnapshotError("bad section name");
    inSection_ = true;
    sectionName_ = name;
    section_.str("");
}

void
Serializer::endSection()
{
    if (!inSection_)
        throw SnapshotError("endSection without beginSection");
    inSection_ = false;
    std::string payload = section_.str();
    raw16(os_, u16(sectionName_.size()));
    os_.write(sectionName_.data(),
              std::streamsize(sectionName_.size()));
    raw64(os_, payload.size());
    os_.write(payload.data(), std::streamsize(payload.size()));
}

void
Serializer::finish()
{
    if (finished_)
        return;
    if (inSection_)
        throw SnapshotError("finish inside open section");
    raw16(os_, 0); // end marker
    os_.flush();
    finished_ = true;
}

void
Serializer::w8(u8 v)
{
    raw8(section_, v);
}

void
Serializer::w16(u16 v)
{
    raw16(section_, v);
}

void
Serializer::w32(u32 v)
{
    raw32(section_, v);
}

void
Serializer::w64(u64 v)
{
    raw64(section_, v);
}

void
Serializer::wf64(double v)
{
    u64 bits;
    std::memcpy(&bits, &v, 8);
    w64(bits);
}

void
Serializer::wstr(const std::string &s)
{
    w64(s.size());
    section_.write(s.data(), std::streamsize(s.size()));
}

void
Serializer::wbytes(const void *data, std::size_t len)
{
    section_.write(static_cast<const char *>(data),
                   std::streamsize(len));
}

// ---------------------------------------------------------------------
// Deserializer
// ---------------------------------------------------------------------

Deserializer::Deserializer(std::istream &is) : is_(is)
{
    // Learn the stream's true size when it is seekable (file and
    // in-memory streams both are): section lengths can then be
    // validated against reality before any allocation. Non-seekable
    // streams fall back to the per-read truncation checks.
    std::streampos pos = is_.tellg();
    if (pos != std::streampos(-1)) {
        is_.seekg(0, std::ios::end);
        std::streampos end = is_.tellg();
        is_.seekg(pos);
        if (end != std::streampos(-1) && is_.good()) {
            seekable_ = true;
            end_ = std::streamoff(end);
        }
        is_.clear();
    }

    u32 magic = raw32();
    if (magic != snapshotMagic)
        throw SnapshotError("bad magic (not a DARCO checkpoint)");
    version_ = raw32();
    if (version_ != snapshotVersion)
        throw SnapshotError(
            "unsupported snapshot version " + std::to_string(version_) +
            " (expected " + std::to_string(snapshotVersion) + ")");
}

void
Deserializer::need(std::size_t n)
{
    if (inSection_) {
        if (sectionRemaining_ < n)
            throw SnapshotError("section overrun (corrupt payload)");
        sectionRemaining_ -= n;
    }
}

u8
Deserializer::raw8()
{
    int c = is_.get();
    if (c == std::char_traits<char>::eof())
        throw SnapshotError("truncated stream");
    return u8(c);
}

u16
Deserializer::raw16()
{
    u16 lo = raw8();
    return u16(lo | (u16(raw8()) << 8));
}

u32
Deserializer::raw32()
{
    u32 lo = raw16();
    return lo | (u32(raw16()) << 16);
}

u64
Deserializer::raw64()
{
    u64 lo = raw32();
    return lo | (u64(raw32()) << 32);
}

std::string
Deserializer::nextSection()
{
    if (inSection_) {
        // Drop whatever the reader did not consume (forward compat).
        is_.ignore(std::streamsize(sectionRemaining_));
        if (!is_)
            throw SnapshotError("truncated stream");
        inSection_ = false;
    }
    u16 name_len = raw16();
    if (name_len == 0)
        return ""; // end marker
    if (name_len > maxSectionNameBytes)
        throw SnapshotError("section name too long (" +
                            std::to_string(name_len) + " bytes)");
    std::string name(name_len, '\0');
    is_.read(name.data(), name_len);
    if (!is_)
        throw SnapshotError("truncated section name");
    sectionRemaining_ = raw64();
    // Reject a length pointing past the end of the stream *now*,
    // before any reader trusts it (string reads size allocations from
    // it; skipping trusts it too). Without this, a single corrupt u64
    // could drive a multi-gigabyte allocation from a 50-byte input.
    if (seekable_) {
        std::streampos here = is_.tellg();
        if (here == std::streampos(-1) ||
            sectionRemaining_ > u64(end_ - std::streamoff(here)))
            throw SnapshotError(
                "section '" + name + "' length " +
                std::to_string(sectionRemaining_) +
                " exceeds remaining input");
    }
    inSection_ = true;
    return name;
}

void
Deserializer::expectSection(const std::string &name)
{
    for (;;) {
        std::string got = nextSection();
        if (got == name)
            return;
        if (got.empty())
            throw SnapshotError("missing section '" + name + "'");
        // Unknown section from a newer writer: skip it.
    }
}

void
Deserializer::endSection()
{
    if (!inSection_)
        throw SnapshotError("endSection without an open section");
    if (sectionRemaining_ != 0)
        throw SnapshotError("section underrun (payload not consumed)");
    inSection_ = false;
}

u8
Deserializer::r8()
{
    need(1);
    return raw8();
}

u16
Deserializer::r16()
{
    need(2);
    return raw16();
}

u32
Deserializer::r32()
{
    need(4);
    return raw32();
}

u64
Deserializer::r64()
{
    need(8);
    return raw64();
}

double
Deserializer::rf64()
{
    u64 bits = r64();
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
}

std::string
Deserializer::rstr()
{
    u64 len = r64();
    need(len);
    std::string s(len, '\0');
    is_.read(s.data(), std::streamsize(len));
    if (!is_)
        throw SnapshotError("truncated string");
    return s;
}

void
Deserializer::rbytes(void *data, std::size_t len)
{
    need(len);
    is_.read(static_cast<char *>(data), std::streamsize(len));
    if (!is_)
        throw SnapshotError("truncated byte block");
}

} // namespace darco::snapshot
