/**
 * @file
 * The named benchmark suite: one synthetic workload per benchmark the
 * paper evaluates (SPECINT2006, SPECFP2006, Physicsbench), with
 * parameters calibrated to each benchmark's published structural
 * characteristics (see DESIGN.md substitution table).
 */

#ifndef DARCO_WORKLOADS_SUITE_HH
#define DARCO_WORKLOADS_SUITE_HH

#include <vector>

#include "workloads/synth.hh"

namespace darco::workloads
{

/** Benchmark-suite grouping, as in the paper's figures. */
enum class SuiteGroup : u8
{
    SpecInt,
    SpecFp,
    Physics,
};

const char *suiteGroupName(SuiteGroup g);

/** A named benchmark: generator parameters + its group. */
struct Benchmark
{
    WorkloadParams params;
    SuiteGroup group;
};

/**
 * The full 31-entry evaluation suite: 11 SPECINT2006, 13 SPECFP2006,
 * 7 Physicsbench, in the paper's figure order.
 *
 * @param scale multiplies each workload's dynamic length (outer
 *        iterations); 1.0 is the default bench size (~1-4 M guest
 *        instructions per workload).
 */
std::vector<Benchmark> paperSuite(double scale = 1.0);

/** Find a suite benchmark by name (nullptr if unknown). */
const Benchmark *findBenchmark(const std::vector<Benchmark> &suite,
                               const std::string &name);

} // namespace darco::workloads

#endif // DARCO_WORKLOADS_SUITE_HH
