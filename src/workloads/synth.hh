/**
 * @file
 * Parameterized synthetic guest-workload generator.
 *
 * Stands in for SPEC CPU2006 and Physicsbench (see DESIGN.md): every
 * structural property the paper's evaluation depends on is an
 * explicit knob, so each named benchmark is a parameter set
 * calibrated to its published characteristics:
 *
 *  - basic-block size distribution (SPECINT small, SPECFP large),
 *  - branch bias (drives superblock formation and assert failures),
 *  - dynamic-to-static instruction ratio (drives TOL-overhead
 *    amortization; the paper's stated explanation for Physicsbench),
 *  - FP and trig fractions (trig expands in software: emulation cost),
 *  - memory-op fraction and working-set size,
 *  - call / indirect-branch / string-op frequencies,
 *  - single-BB counted loops (unrolling candidates).
 *
 * Generated programs are fully deterministic for a given parameter
 * set and always terminate.
 */

#ifndef DARCO_WORKLOADS_SYNTH_HH
#define DARCO_WORKLOADS_SYNTH_HH

#include <string>

#include "guest/program.hh"

namespace darco::workloads
{

/** Generator knobs. */
struct WorkloadParams
{
    std::string name = "synth";
    u64 seed = 1;

    u32 numBlocks = 48;     //!< main-chain basic blocks (static size)
    u32 bbLenMin = 3;       //!< body instructions per block
    u32 bbLenMax = 8;
    u32 outerIters = 400;   //!< chain repetitions (dyn/static ratio)

    double coldFrac = 0.10; //!< blocks with a rarely-taken diamond
    u32 coldMask = 15;      //!< cold path taken every (mask+1) trips

    double fpFrac = 0.0;    //!< FP blocks fraction
    double trigFrac = 0.0;  //!< trig ops within FP blocks
    double memFrac = 0.30;  //!< memory ops within integer bodies
    double loopFrac = 0.08; //!< single-BB counted-loop blocks
    u32 loopTripMin = 8;
    u32 loopTripMax = 40;
    double callFrac = 0.06; //!< blocks ending in a call
    u32 numFuncs = 3;
    double indirectFrac = 0.02; //!< jump-table dispatch blocks
    double strFrac = 0.0;       //!< REP string blocks
    u32 strLen = 64;

    u32 dataWords = 2048;   //!< working-set size (u32 words)
    bool syscalls = true;   //!< periodic sysWrite in the chain
};

/** Generate a deterministic, terminating guest program. */
guest::Program synthesize(const WorkloadParams &p);

} // namespace darco::workloads

#endif // DARCO_WORKLOADS_SYNTH_HH
