#include "workloads/suite.hh"

#include "common/logging.hh"

namespace darco::workloads
{

const char *
suiteGroupName(SuiteGroup g)
{
    switch (g) {
      case SuiteGroup::SpecInt: return "SPECINT2006";
      case SuiteGroup::SpecFp: return "SPECFP2006";
      case SuiteGroup::Physics: return "Physicsbench";
      default: return "?";
    }
}

namespace
{

/** SPECINT-shaped base: small BBs, branchy, pointer-ish, no FP. */
WorkloadParams
intBase()
{
    WorkloadParams p;
    p.bbLenMin = 3;
    p.bbLenMax = 8;
    p.numBlocks = 64;
    p.outerIters = 5200;
    p.coldFrac = 0.14;
    p.coldMask = 15;
    p.fpFrac = 0.0;
    p.memFrac = 0.32;
    p.loopFrac = 0.06;
    p.callFrac = 0.08;
    p.indirectFrac = 0.03;
    p.dataWords = 4096;
    return p;
}

/** SPECFP-shaped base: large BBs, loopy, regular, FP heavy. */
WorkloadParams
fpBase()
{
    WorkloadParams p;
    p.bbLenMin = 9;
    p.bbLenMax = 22;
    p.numBlocks = 48;
    p.outerIters = 3500;
    p.coldFrac = 0.05;
    p.coldMask = 31;
    p.fpFrac = 0.55;
    p.trigFrac = 0.02;
    p.memFrac = 0.30;
    p.loopFrac = 0.12;
    p.loopTripMin = 16;
    p.loopTripMax = 64;
    p.callFrac = 0.03;
    p.indirectFrac = 0.01;
    p.dataWords = 8192;
    return p;
}

/** Physicsbench-shaped base: FP + heavy trig, short runs (the low
 *  dynamic-to-static ratio the paper calls out). */
WorkloadParams
physBase()
{
    WorkloadParams p;
    p.bbLenMin = 6;
    p.bbLenMax = 14;
    p.numBlocks = 96;
    p.outerIters = 800;
    p.coldFrac = 0.10;
    p.coldMask = 15;
    p.fpFrac = 0.50;
    p.trigFrac = 0.30;
    p.memFrac = 0.28;
    p.loopFrac = 0.08;
    p.callFrac = 0.05;
    p.indirectFrac = 0.02;
    p.dataWords = 4096;
    return p;
}

Benchmark
mk(WorkloadParams p, const char *name, u64 seed, SuiteGroup g,
   double scale)
{
    p.name = name;
    p.seed = seed;
    p.outerIters = u32(std::max(8.0, p.outerIters * scale));
    return Benchmark{p, g};
}

} // namespace

std::vector<Benchmark>
paperSuite(double scale)
{
    std::vector<Benchmark> s;
    auto I = SuiteGroup::SpecInt;
    auto F = SuiteGroup::SpecFp;
    auto P = SuiteGroup::Physics;

    // --- SPECINT2006 ------------------------------------------------------
    {
        WorkloadParams p = intBase();
        p.callFrac = 0.12;           // perl: call heavy, interp-like
        p.indirectFrac = 0.06;
        s.push_back(mk(p, "400.perlbench", 400, I, scale));
    }
    {
        WorkloadParams p = intBase();
        p.memFrac = 0.38;            // bzip2: tight data loops
        p.loopFrac = 0.12;
        p.bbLenMax = 10;
        s.push_back(mk(p, "401.bzip2", 401, I, scale));
    }
    {
        WorkloadParams p = intBase();
        p.numBlocks = 110;           // gcc: big static footprint
        p.outerIters = 3000;
        p.indirectFrac = 0.05;
        s.push_back(mk(p, "403.gcc", 403, I, scale));
    }
    {
        WorkloadParams p = intBase();
        p.memFrac = 0.45;            // mcf: pointer chasing
        p.bbLenMin = 3;
        p.bbLenMax = 6;
        p.dataWords = 16384;
        s.push_back(mk(p, "429.mcf", 429, I, scale));
    }
    {
        WorkloadParams p = intBase();
        p.coldFrac = 0.20;           // gobmk: hard-to-predict branches
        p.coldMask = 7;
        s.push_back(mk(p, "445.gobmk", 445, I, scale));
    }
    {
        WorkloadParams p = intBase();
        p.coldFrac = 0.18;           // sjeng: search with flaky branches
        p.coldMask = 7;
        p.callFrac = 0.10;
        s.push_back(mk(p, "458.sjeng", 458, I, scale));
    }
    {
        WorkloadParams p = intBase();
        p.loopFrac = 0.18;           // libquantum: tiny hot loops
        p.bbLenMin = 3;
        p.bbLenMax = 6;
        p.numBlocks = 28;
        p.outerIters = 12000;
        s.push_back(mk(p, "462.libquantum", 462, I, scale));
    }
    {
        WorkloadParams p = intBase();
        p.bbLenMin = 6;              // h264ref: wider blocks, regular
        p.bbLenMax = 14;
        p.coldFrac = 0.07;
        p.loopFrac = 0.12;
        s.push_back(mk(p, "464.h264ref", 464, I, scale));
    }
    {
        WorkloadParams p = intBase();
        p.indirectFrac = 0.07;       // omnetpp: virtual dispatch
        p.callFrac = 0.12;
        s.push_back(mk(p, "471.omnetpp", 471, I, scale));
    }
    {
        WorkloadParams p = intBase();
        p.memFrac = 0.40;            // astar: grid walking
        p.coldFrac = 0.16;
        s.push_back(mk(p, "473.astar", 473, I, scale));
    }
    {
        WorkloadParams p = intBase();
        p.numBlocks = 96;            // xalancbmk: big code, dispatch
        p.indirectFrac = 0.06;
        p.callFrac = 0.12;
        p.outerIters = 3600;
        s.push_back(mk(p, "483.xalancbmk", 483, I, scale));
    }

    // --- SPECFP2006 -------------------------------------------------------
    {
        WorkloadParams p = fpBase();
        p.bbLenMax = 26;             // bwaves: very regular loops
        p.loopFrac = 0.16;
        s.push_back(mk(p, "410.bwaves", 410, F, scale));
    }
    {
        WorkloadParams p = fpBase();
        s.push_back(mk(p, "433.milc", 433, F, scale));
    }
    {
        WorkloadParams p = fpBase();
        p.bbLenMax = 24;
        s.push_back(mk(p, "434.zeusmp", 434, F, scale));
    }
    {
        WorkloadParams p = fpBase();
        p.fpFrac = 0.48;             // gromacs: mixed int/fp
        p.memFrac = 0.34;
        s.push_back(mk(p, "435.gromacs", 435, F, scale));
    }
    {
        WorkloadParams p = fpBase();
        p.numBlocks = 72;            // cactusADM: big kernels
        p.bbLenMax = 26;
        s.push_back(mk(p, "436.cactusADM", 436, F, scale));
    }
    {
        WorkloadParams p = fpBase();
        s.push_back(mk(p, "437.leslie3d", 437, F, scale));
    }
    {
        WorkloadParams p = fpBase();
        p.fpFrac = 0.60;             // namd: fp dense
        p.bbLenMin = 12;
        s.push_back(mk(p, "444.namd", 444, F, scale));
    }
    {
        WorkloadParams p = fpBase();
        p.fpFrac = 0.40;             // soplex: int/fp mix, branchier
        p.coldFrac = 0.10;
        p.bbLenMin = 6;
        p.bbLenMax = 14;
        s.push_back(mk(p, "450.soplex", 450, F, scale));
    }
    {
        WorkloadParams p = fpBase();
        p.trigFrac = 0.06;           // povray: some transcendental work
        p.callFrac = 0.08;
        p.bbLenMin = 6;
        p.bbLenMax = 16;
        s.push_back(mk(p, "453.povray", 453, F, scale));
    }
    {
        WorkloadParams p = fpBase();
        s.push_back(mk(p, "454.calculix", 454, F, scale));
    }
    {
        WorkloadParams p = fpBase();
        p.bbLenMax = 26;
        s.push_back(mk(p, "459.GemsFDTD", 459, F, scale));
    }
    {
        WorkloadParams p = fpBase();
        p.loopFrac = 0.20;           // lbm: one huge streaming loop
        p.bbLenMin = 14;
        p.bbLenMax = 30;
        p.numBlocks = 24;
        p.outerIters = 7000;
        s.push_back(mk(p, "470.lbm", 470, F, scale));
    }
    {
        WorkloadParams p = fpBase();
        p.fpFrac = 0.45;             // sphinx3: fp + table lookups
        p.memFrac = 0.36;
        s.push_back(mk(p, "482.sphinx3", 482, F, scale));
    }

    // --- Physicsbench -----------------------------------------------------
    {
        WorkloadParams p = physBase();
        s.push_back(mk(p, "breakable", 901, P, scale));
    }
    {
        WorkloadParams p = physBase();
        p.outerIters = 90;           // continuous: tiny dynamic count,
        p.numBlocks = 120;           // stays largely in IM/BBM (paper)
        s.push_back(mk(p, "continuous", 902, P, scale));
    }
    {
        WorkloadParams p = physBase();
        p.outerIters = 700;
        s.push_back(mk(p, "deformable", 903, P, scale));
    }
    {
        WorkloadParams p = physBase();
        p.outerIters = 760;
        p.trigFrac = 0.34;
        s.push_back(mk(p, "explosions", 904, P, scale));
    }
    {
        WorkloadParams p = physBase();
        p.outerIters = 680;
        p.trigFrac = 0.26;
        s.push_back(mk(p, "highspeed", 905, P, scale));
    }
    {
        WorkloadParams p = physBase();
        p.outerIters = 105;          // periodic: low dyn/static (paper)
        p.numBlocks = 110;
        s.push_back(mk(p, "periodic", 906, P, scale));
    }
    {
        WorkloadParams p = physBase();
        p.outerIters = 115;          // ragdoll: low dyn/static (paper)
        p.numBlocks = 100;
        s.push_back(mk(p, "ragdoll", 907, P, scale));
    }

    return s;
}

const Benchmark *
findBenchmark(const std::vector<Benchmark> &suite,
              const std::string &name)
{
    for (const Benchmark &b : suite) {
        if (b.params.name == name)
            return &b;
    }
    return nullptr;
}

} // namespace darco::workloads
