#include "workloads/synth.hh"

#include <cstring>

#include "common/logging.hh"
#include "common/rng.hh"
#include "guest/asm.hh"
#include "xemu/os.hh"

namespace darco::workloads
{

using namespace guest;

namespace
{

/** Round up to a power of two. */
u32
pow2ceil(u32 v)
{
    u32 p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

/**
 * Register discipline:
 *   RSP stack, RBP data base, RBX outer-loop counter,
 *   RSI phase counter (bias driver / indirect selector),
 *   RAX, RCX, RDX, RDI free for block bodies
 *   (counted-loop blocks reserve RCX; the cold check clobbers RDI).
 */
struct Gen
{
    const WorkloadParams &p;
    Rng rng;
    Assembler a;
    u32 wordMask;       //!< byte mask for int working-set offsets
    std::size_t fpArea; //!< data offset of the FP slot area
    u32 fpSlots = 64;
    std::size_t strArea;

    struct IndirectSite
    {
        std::size_t tableOff; //!< per-site 16-byte jump table
        Assembler::Label cases[4];
    };
    std::vector<IndirectSite> indirectSites;

    explicit Gen(const WorkloadParams &params)
        : p(params), rng(params.seed * 0x9e3779b97f4a7c15ull + 1)
    {
        u32 words = pow2ceil(std::max(64u, p.dataWords));
        wordMask = (words - 1) << 2;
        // Data layout: int working set | fp slots | string buffers;
        // per-site jump tables are appended during generation.
        a.dataZero(words * 4);
        fpArea = words * 4;
        for (u32 i = 0; i < fpSlots; ++i)
            a.dataF64(0.5 + 0.03125 * double(i % 37));
        strArea = words * 4 + fpSlots * 8;
        a.dataZero(2 * p.strLen + 64);
    }

    GReg
    bodyReg(bool allow_rcx, bool allow_rdi = true)
    {
        for (;;) {
            switch (rng.range(0, 3)) {
              case 0: return RAX;
              case 1:
                if (allow_rcx)
                    return RCX;
                break;
              case 2: return RDX;
              default:
                if (allow_rdi)
                    return RDI;
                break;
            }
        }
    }

    /** Memory operand into the int working set via a masked index. */
    Mem
    dataRef(GReg idx)
    {
        // Mask the register in place first (keeps addresses in-set).
        a.andri(idx, s32(wordMask & ~3u));
        return memIdx(RBP, idx, 0, 0);
    }

    /** Emit one random integer body instruction (may be several). */
    void
    emitIntOp(bool allow_rcx)
    {
        GReg d = bodyReg(allow_rcx);
        GReg s = bodyReg(allow_rcx);
        if (rng.chance(p.memFrac)) {
            GReg idx = bodyReg(allow_rcx, true);
            switch (rng.range(0, 7)) {
              case 0:
                a.movrm(d, dataRef(idx));
                break;
              case 1:
                a.movmr(dataRef(idx), d);
                break;
              case 2:
                a.addrm(d, dataRef(idx));
                break;
              case 3:
                a.cmprm(d, dataRef(idx));
                break;
              case 4:
                a.addmr(dataRef(idx), d);
                break;
              case 5:
                a.movzx8(d, dataRef(idx));
                break;
              case 6:
                a.movsx16(d, dataRef(idx));
                break;
              default:
                a.mov8mr(dataRef(idx), d);
                break;
            }
            return;
        }
        switch (rng.range(0, 17)) {
          case 15:
          case 16: {
            // Extra conditional-data weight: x86-style flag consumers
            // are expensive on a RISC host (select expansion).
            a.cmpri(d, s32(rng.range(0, 64)));
            if (rng.chance(0.5))
                a.cmovcc(GCond(rng.range(0, 11)), d, s);
            else
                a.setcc(GCond(rng.range(0, 11)), d);
            break;
          }
          case 0: a.addrr(d, s); break;
          case 1: a.subrr(d, s); break;
          case 2: a.xorrr(d, s); break;
          case 3: a.andrr(d, s); break;
          case 4: a.orrr(d, s); break;
          case 5: a.imulrr(d, s); break;
          case 6: a.addri(d, s32(rng.range(0, 4000)) - 2000); break;
          case 7: a.shlri(d, s8(rng.range(1, 7))); break;
          case 8: a.sarri(d, s8(rng.range(1, 7))); break;
          case 9: a.lea(d, memIdx(RBP, s, u8(rng.range(0, 3)), 16)); break;
          case 10: {
            a.cmpri(d, s32(rng.range(0, 100)));
            GCond c = GCond(rng.range(0, 11));
            a.cmovcc(c, d, s);
            break;
          }
          case 11: {
            a.testrr(d, s);
            a.setcc(GCond(rng.range(0, 11)), d);
            break;
          }
          case 12: a.inc(d); break;
          case 13: a.notr(d); break;
          case 14: {
            // Guarded division: divisor odd and dividend positive.
            a.andri(d, 0x7fffffff);
            a.orri(s, 1);
            if (rng.chance(0.5))
                a.idivrr(d, s);
            else
                a.iremrr(d, s);
            break;
          }
          default: {
            a.push(d);
            a.movri(d, s32(rng.next() & 0xffff));
            a.pop(d);
            break;
          }
        }
    }

    /** Emit one FP body step (load, compute, occasionally store). */
    void
    emitFpOp(bool allow_rcx)
    {
        u8 fd = u8(rng.range(0, 7));
        u8 fs = u8(rng.range(0, 7));
        switch (rng.range(0, 9)) {
          case 0:
            a.fld(fd, mem(RBP, s32(fpArea + 8 * rng.range(0, fpSlots - 1))));
            break;
          case 1:
            a.fst(mem(RBP, s32(fpArea + 8 * rng.range(0, fpSlots - 1))),
                  fs);
            break;
          case 2: a.fadd(fd, fs); break;
          case 3: a.fsub(fd, fs); break;
          case 4: a.fmul(fd, fs); break;
          case 5:
            if (rng.chance(p.trigFrac))
                a.fsin(fd, fs);
            else
                a.fdiv(fd, fs);
            break;
          case 6:
            if (rng.chance(p.trigFrac))
                a.fcos(fd, fs);
            else {
                a.fabs_(fd, fs);
                a.fsqrt(fd, fd);
            }
            break;
          case 7: {
            GReg g = bodyReg(allow_rcx);
            a.cvtif(fd, g);
            break;
          }
          case 8: {
            a.fcmp(fd, fs);
            GReg g = bodyReg(allow_rcx);
            a.setcc(GCond::B, g);
            break;
          }
          default: a.fneg(fd, fs); break;
        }
    }

    void
    emitBody(u32 len, bool fp_block, bool allow_rcx)
    {
        for (u32 i = 0; i < len; ++i) {
            if (fp_block && rng.chance(0.75))
                emitFpOp(allow_rcx);
            else
                emitIntOp(allow_rcx);
        }
    }
};

} // namespace

Program
synthesize(const WorkloadParams &p)
{
    Gen g(p);
    Assembler &a = g.a;
    Rng &rng = g.rng;

    std::vector<Assembler::Label> funcs;
    for (u32 f = 0; f < p.numFuncs; ++f)
        funcs.push_back(a.newLabel());

    struct ColdStub
    {
        Assembler::Label label;
        Assembler::Label back;
    };
    std::vector<ColdStub> coldStubs;

    // --- prologue -------------------------------------------------------
    a.movri(RBP, s32(layout::dataBase));
    a.movri(RBX, s32(p.outerIters));
    a.movri(RSI, 0);
    a.movri(RDX, 0x1234);
    // Initialize the integer working set with an LCG pattern.
    {
        auto init = a.newLabel();
        a.movri(RDI, s32(layout::dataBase));
        a.movri(RCX, s32((g.wordMask >> 2) + 1));
        a.movri(RAX, s32(p.seed & 0x7fffffff));
        a.bind(init);
        a.movmr(mem(RDI), RAX);
        a.imulri(RAX, 1103515245);
        a.addri(RAX, 12345);
        a.addri(RDI, 4);
        a.dec(RCX);
        a.jcc(GCond::NE, init);
    }

    auto chain = a.newLabel();
    a.bind(chain);

    // --- main chain -----------------------------------------------------
    u32 sys_block = p.syscalls ? rng.range(0, p.numBlocks - 1) : ~0u;
    for (u32 b = 0; b < p.numBlocks; ++b) {
        bool fp_block = rng.chance(p.fpFrac);
        u32 len = u32(rng.range(p.bbLenMin, p.bbLenMax));

        double roll = rng.uniform();
        if (roll < p.loopFrac) {
            // Single-BB counted loop: body avoids RCX.
            u32 trip = u32(rng.range(p.loopTripMin, p.loopTripMax));
            a.movri(RCX, s32(trip));
            auto l = a.newLabel();
            a.bind(l);
            g.emitBody(std::max(2u, len - 2), fp_block, false);
            a.dec(RCX);
            a.jcc(GCond::NE, l);
        } else if (roll < p.loopFrac + p.strFrac) {
            // REP string block (phase counter saved around it).
            a.push(RSI);
            a.movri(RSI, s32(Program::dataAddr(g.strArea)));
            a.movri(RDI, s32(Program::dataAddr(g.strArea + p.strLen)));
            a.movri(RCX, s32(p.strLen));
            if (rng.chance(0.5)) {
                a.movsb(true);
            } else {
                a.movri(RAX, s32(rng.range(0, 255)));
                a.stosb(true);
            }
            a.pop(RSI);
        } else if (roll < p.loopFrac + p.strFrac + p.callFrac &&
                   !funcs.empty()) {
            g.emitBody(len, fp_block, true);
            a.call(funcs[rng.range(0, funcs.size() - 1)]);
        } else if (roll <
                   p.loopFrac + p.strFrac + p.callFrac + p.indirectFrac) {
            // Jump-table dispatch on the phase counter; each site owns
            // a 16-byte table patched with its case addresses below.
            Gen::IndirectSite site;
            site.tableOff = a.dataZero(16);
            auto join = a.newLabel();
            a.movrr(RDI, RSI);
            a.andri(RDI, 3);
            a.movri(RDX, s32(Program::dataAddr(site.tableOff)));
            a.movrm(RDX, memIdx(RDX, RDI, 2, 0));
            a.jmpr(RDX);
            for (int c = 0; c < 4; ++c) {
                site.cases[c] = a.newLabel();
                a.bind(site.cases[c]);
                g.emitBody(2, false, true);
                if (c != 3)
                    a.jmp(join);
            }
            a.bind(join);
            g.indirectSites.push_back(site);
        } else {
            g.emitBody(len, fp_block, true);
            if (rng.chance(p.coldFrac)) {
                // Biased diamond: cold path taken every coldMask+1.
                ColdStub stub{a.newLabel(), a.newLabel()};
                a.inc(RSI);
                a.movrr(RDI, RSI);
                a.andri(RDI, s32(p.coldMask));
                a.cmpri(RDI, 0);
                a.jcc(GCond::EQ, stub.label);
                a.bind(stub.back);
                coldStubs.push_back(stub);
            }
        }

        if (b == sys_block) {
            a.movri(RAX, s32(xemu::sysTime));
            a.syscall();
            a.addrr(RDX, RAX);
        }
    }

    // --- outer loop & exit ---------------------------------------------
    a.dec(RBX);
    a.jcc(GCond::NE, chain);

    a.movrr(RCX, RDX);
    a.xorrr(RCX, RAX);
    a.andri(RCX, 0xff);
    a.movri(RAX, s32(xemu::sysExit));
    a.syscall();

    // --- cold stubs -------------------------------------------------------
    for (const ColdStub &c : coldStubs) {
        a.bind(c.label);
        g.emitBody(u32(rng.range(1, 3)), false, true);
        a.jmp(c.back);
    }

    // --- leaf functions ----------------------------------------------------
    for (u32 f = 0; f < p.numFuncs; ++f) {
        a.bind(funcs[f]);
        g.emitBody(u32(rng.range(2, 6)), rng.chance(p.fpFrac), true);
        a.ret();
    }

    // Patch each indirect site's jump table with its case addresses.
    Program prog = a.finish(p.name);
    for (const Gen::IndirectSite &site : g.indirectSites) {
        u32 pcs[4];
        for (int c = 0; c < 4; ++c)
            pcs[c] = u32(Program::codeAddr(a.labelOffset(site.cases[c])));
        std::memcpy(prog.data.data() + site.tableOff, pcs, 16);
    }
    return prog;
}

} // namespace darco::workloads
