#include "common/logging.hh"

#include <atomic>
#include <mutex>

namespace darco
{

namespace
{

/**
 * Default sink: the classic stderr format ("warn: msg"), with the
 * component tag folded in as "warn: [tol] msg" when present. A mutex
 * keeps lines whole when campaign workers log concurrently.
 */
class StderrSink : public LogSink
{
  public:
    void
    log(const LogRecord &rec) override
    {
        static std::mutex mu;
        std::lock_guard<std::mutex> lock(mu);
        if (rec.component && rec.component[0] != '\0')
            std::fprintf(stderr, "%s: [%s] %s\n", logLevelName(rec.level),
                         rec.component, rec.message.c_str());
        else
            std::fprintf(stderr, "%s: %s\n", logLevelName(rec.level),
                         rec.message.c_str());
    }
};

StderrSink &
defaultSink()
{
    static StderrSink sink;
    return sink;
}

std::atomic<LogSink *> g_sink{nullptr}; // nullptr = default stderr sink
std::atomic<int> g_level{int(LogLevel::Warn)};

// Thread-local overrides installed by ScopedLogScope. They win over
// the globals, so a Controller running on a campaign worker resolves
// its own sink/level without ever touching (or racing on) g_sink /
// g_level.
thread_local LogSink *t_sink = nullptr;
thread_local int t_level = -1; // -1 = no override

} // namespace

LogSink *
setLogSink(LogSink *sink)
{
    return g_sink.exchange(sink, std::memory_order_acq_rel);
}

void
setLogLevel(LogLevel level)
{
    g_level.store(int(level), std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    if (t_level >= 0)
        return LogLevel(t_level);
    return LogLevel(g_level.load(std::memory_order_relaxed));
}

ScopedLogScope::ScopedLogScope(LogSink *sink, LogLevel level)
    : prevSink_(t_sink), prevLevel_(t_level)
{
    if (sink)
        t_sink = sink;
    t_level = int(level);
}

ScopedLogScope::~ScopedLogScope()
{
    t_sink = prevSink_;
    t_level = prevLevel_;
}

LogLevel
parseLogLevel(const std::string &name)
{
    if (name == "error")
        return LogLevel::Error;
    if (name == "info")
        return LogLevel::Info;
    if (name == "debug")
        return LogLevel::Debug;
    return LogLevel::Warn;
}

const char *
logLevelName(LogLevel level)
{
    switch (level) {
    case LogLevel::Error: return "error";
    case LogLevel::Warn: return "warn";
    case LogLevel::Info: return "info";
    case LogLevel::Debug: return "debug";
    }
    return "log";
}

void
logEmit(LogLevel level, const char *component, std::string message)
{
    LogRecord rec{level, component ? component : "", std::move(message)};
    LogSink *sink = t_sink;
    if (!sink)
        sink = g_sink.load(std::memory_order_acquire);
    if (!sink)
        sink = &defaultSink();
    sink->log(rec);
}

} // namespace darco
