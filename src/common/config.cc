#include "common/config.hh"

#include <cerrno>
#include <cstdlib>

#include "common/logging.hh"

namespace darco
{

Config::Config(const std::vector<std::string> &kvs)
{
    for (const auto &kv : kvs)
        parseLine(kv);
}

void
Config::set(const std::string &key, const std::string &value)
{
    store_[key] = value;
}

void
Config::set(const std::string &key, s64 value)
{
    store_[key] = std::to_string(value);
}

void
Config::set(const std::string &key, double value)
{
    store_[key] = std::to_string(value);
}

void
Config::set(const std::string &key, bool value)
{
    store_[key] = value ? "true" : "false";
}

void
Config::parseLine(const std::string &kv)
{
    auto eq = kv.find('=');
    if (eq == std::string::npos || eq == 0)
        fatal("malformed config entry '", kv, "', expected key=value");
    store_[kv.substr(0, eq)] = kv.substr(eq + 1);
}

bool
Config::has(const std::string &key) const
{
    return store_.count(key) != 0;
}

std::string
Config::getString(const std::string &key, const std::string &def) const
{
    auto it = store_.find(key);
    return it == store_.end() ? def : it->second;
}

s64
Config::getInt(const std::string &key, s64 def) const
{
    auto it = store_.find(key);
    if (it == store_.end())
        return def;
    char *end = nullptr;
    errno = 0;
    s64 v = std::strtoll(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        fatal("config key '", key, "' has non-integer value '",
              it->second, "'");
    if (errno == ERANGE)
        fatal("config key '", key, "' value '", it->second,
              "' overflows a 64-bit signed integer");
    return v;
}

u64
Config::getUint(const std::string &key, u64 def) const
{
    auto it = store_.find(key);
    if (it == store_.end())
        return def;
    // strtoull silently negates negative input ("-5" parses as
    // 18446744073709551611); an unsigned key must reject it instead.
    if (it->second.find('-') != std::string::npos)
        fatal("config key '", key, "' has negative value '", it->second,
              "' for an unsigned parameter");
    char *end = nullptr;
    errno = 0;
    u64 v = std::strtoull(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        fatal("config key '", key, "' has non-integer value '",
              it->second, "'");
    if (errno == ERANGE)
        fatal("config key '", key, "' value '", it->second,
              "' overflows a 64-bit unsigned integer");
    return v;
}

double
Config::getFloat(const std::string &key, double def) const
{
    auto it = store_.find(key);
    if (it == store_.end())
        return def;
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        fatal("config key '", key, "' has non-float value '",
              it->second, "'");
    return v;
}

bool
Config::getBool(const std::string &key, bool def) const
{
    auto it = store_.find(key);
    if (it == store_.end())
        return def;
    const std::string &v = it->second;
    if (v == "true" || v == "1" || v == "yes" || v == "on")
        return true;
    if (v == "false" || v == "0" || v == "no" || v == "off")
        return false;
    fatal("config key '", key, "' has non-boolean value '", v, "'");
}

void
Config::merge(const Config &other)
{
    for (const auto &[k, v] : other.store_)
        store_[k] = v;
}

} // namespace darco
