/**
 * @file
 * Schema-registered configuration (darco::conf).
 *
 * Every DARCO configuration parameter is declared exactly once, in the
 * ConfigSchema constructor (schema.cc): name, type, default, valid
 * range / enum domain, one-line help, and whether the parameter is
 * *execution-relevant* (it changes what the simulated machine does, as
 * opposed to how it is measured or validated). Everything else falls
 * out of that single declaration:
 *
 *  - typed accessors (conf::getUint & friends) resolve defaults from
 *    the schema, so no call site carries an inline default;
 *  - validation rejects unknown keys (with a nearest-match "did you
 *    mean" suggestion), out-of-range values and bad enum strings —
 *    the Controller validates at construction and every CLI validates
 *    at its entry point, so a typo'd sweep key can never silently run
 *    the default experiment;
 *  - checkpoints store the schema-normalized *execution-relevant*
 *    effective config only, so restores succeed across cosmetic
 *    differences (validation toggles, timing/power parameters) and a
 *    real mismatch is refused naming the exact parameter and both
 *    values;
 *  - the full parameter reference (docs/CONFIG.md, --list-config) is
 *    generated, never hand-maintained;
 *  - darco_fuzz --rand-config draws random *valid* configs from the
 *    declared fuzz ranges/domains.
 *
 * The flat Config store (config.hh) stays the transport: this layer
 * binds meaning to its keys.
 */

#ifndef DARCO_COMMON_SCHEMA_HH
#define DARCO_COMMON_SCHEMA_HH

#include <map>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"

namespace darco::conf
{

enum class ParamType
{
    Bool,
    Uint,
    Int,
    Float,
    String,
    Enum,
};

/** "bool", "uint", ... (docs, error messages). */
const char *typeName(ParamType t);

/** One declared configuration parameter. */
struct ParamSpec
{
    std::string key;
    ParamType type = ParamType::String;
    std::string help;

    /**
     * True when the parameter changes the simulated machine's
     * behaviour (translation, emulation, cost accounting, RNG
     * streams) rather than how a run is measured (timing/power
     * models) or validated (sync toggles). Checkpoint compatibility
     * is decided over execution-relevant parameters only.
     */
    bool relevantToExecution = true;

    // Typed default; the member matching `type` is authoritative.
    bool defBool = false;
    u64 defUint = 0;
    s64 defInt = 0;
    double defFloat = 0.0;
    std::string defString; // String and Enum

    // Valid range (numeric types; inclusive).
    u64 minUint = 0;
    u64 maxUint = ~0ull;
    // Mask-indexed structures (IBTC, predictors, cache sets) need a
    // power-of-two size; validation rejects anything else.
    bool requirePow2 = false;
    s64 minInt = 0;
    s64 maxInt = 0;
    double minFloat = 0.0;
    double maxFloat = 0.0;

    // Enum domain.
    std::vector<std::string> domain;

    // Deprecated spellings accepted (and normalized) for this key.
    std::vector<std::string> aliases;

    // Random-config sampling (darco_fuzz --rand-config): only
    // fuzzable parameters are drawn, inside [fuzzMin*, fuzzMax*]
    // (numeric) or the enum domain / {true,false}.
    bool fuzzable = false;
    u64 fuzzMinUint = 0, fuzzMaxUint = 0;
    double fuzzMinFloat = 0.0, fuzzMaxFloat = 0.0;

    /** Mark as measurement/validation-only (not execution-relevant). */
    ParamSpec &cosmetic();
    /** Constrain a uint parameter to powers of two. */
    ParamSpec &pow2();
    /** Enable random-config sampling over [lo, hi] (uint). */
    ParamSpec &fuzz(u64 lo, u64 hi);
    /** Enable random-config sampling over [lo, hi] (float). */
    ParamSpec &fuzz(double lo, double hi);
    /** Enable random-config sampling (bool toggle / enum domain). */
    ParamSpec &fuzzToggle();
    /** Register a deprecated spelling that maps to this parameter. */
    ParamSpec &alias(const std::string &old_key);

    /** Canonical rendering of the default value. */
    std::string defaultString() const;
    /** Range/domain rendering for the generated docs ("-" if none). */
    std::string rangeString() const;
};

/**
 * The parameter registry. Use the process-wide schema() instance;
 * separate instances exist only so tests can exercise the machinery.
 */
class ConfigSchema
{
  public:
    /** Declares every DARCO parameter (the single source of truth). */
    ConfigSchema();

    /** Look up a key (canonical or alias); nullptr when unknown. */
    const ParamSpec *find(const std::string &key) const;

    /** Look up a key a component owns; panics when undeclared. */
    const ParamSpec &get(const std::string &key) const;

    /** All declared parameters, sorted by key. */
    std::vector<const ParamSpec *> params() const;

    std::size_t size() const { return params_.size(); }

    /**
     * Nearest declared key (or alias) by edit distance; empty when
     * nothing is plausibly close.
     */
    std::string suggest(const std::string &key) const;

    /**
     * Why `value` is invalid for `spec` — malformed, out of range,
     * outside the enum domain. Empty when the value is acceptable.
     */
    std::string checkValue(const ParamSpec &spec,
                           const std::string &value) const;

    /**
     * Every problem in `cfg`: unknown keys (with suggestion), bad
     * values, and alias/canonical conflicts. Empty when valid.
     */
    std::vector<std::string> validationErrors(const Config &cfg) const;

    /**
     * fatal() listing every problem (prefixed by `context` when
     * non-empty); no-op on a valid config.
     */
    void validate(const Config &cfg,
                  const std::string &context = "") const;

    /**
     * Alias-resolved, canonically-rendered copy of the explicitly set
     * entries. Tolerant: unknown keys and malformed values are
     * carried through unchanged (validate() is the gate; normalize()
     * must work on anything for diagnostics).
     */
    Config normalize(const Config &cfg) const;

    /**
     * The full effective config: every declared parameter mapped to
     * its canonical value — the explicitly set one when present
     * (aliases resolved), the declared default otherwise.
     */
    std::map<std::string, std::string> effective(const Config &cfg) const;

    /** effective() restricted to execution-relevant parameters. */
    std::map<std::string, std::string>
    executionRelevant(const Config &cfg) const;

    /**
     * The generated parameter reference as a markdown document —
     * exactly what `--list-config` prints and what docs/CONFIG.md
     * pins (CI diffs the two).
     */
    std::string referenceMarkdown() const;

    /**
     * Draw one random *valid* config from the fuzzable parameters'
     * declared fuzz ranges/domains (deterministic in `seed`): each
     * fuzzable parameter is included with probability ~1/2.
     * @return "key=value" override lines.
     */
    std::vector<std::string> randomOverrides(u64 seed) const;

  private:
    ParamSpec &declare(const std::string &key, ParamType type,
                       const std::string &help);
    ParamSpec &declBool(const std::string &key, bool def,
                        const std::string &help);
    ParamSpec &declUint(const std::string &key, u64 def, u64 min,
                        u64 max, const std::string &help);
    ParamSpec &declFloat(const std::string &key, double def, double min,
                         double max, const std::string &help);
    ParamSpec &declString(const std::string &key, const std::string &def,
                          const std::string &help);
    ParamSpec &declEnum(const std::string &key, const std::string &def,
                        const std::vector<std::string> &domain,
                        const std::string &help);

    friend struct ParamSpec;

    std::map<std::string, ParamSpec> params_;
    std::map<std::string, std::string> aliases_; // alias -> canonical
};

/** The process-wide schema (all parameters declared). */
const ConfigSchema &schema();

/**
 * Schema-bound typed accessors: the one way components read their
 * parameters. The key must be declared with the matching type
 * (panics otherwise — that is a DARCO bug, not a user error); a
 * present value is validated against the declared range/domain
 * (fatal on violation); an absent value resolves to the declared
 * default. Aliases of the key are honoured.
 */
bool getBool(const Config &cfg, const std::string &key);
u64 getUint(const Config &cfg, const std::string &key);
s64 getInt(const Config &cfg, const std::string &key);
double getFloat(const Config &cfg, const std::string &key);
std::string getString(const Config &cfg, const std::string &key);
/** Enum accessor: returns one of the declared domain strings. */
std::string getEnum(const Config &cfg, const std::string &key);

} // namespace darco::conf

#endif // DARCO_COMMON_SCHEMA_HH
