/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All randomized behaviour in DARCO (workload synthesis, randomized
 * tests) flows through Rng so that a single seed reproduces every
 * figure bit-identically. The generator is xoshiro256** seeded via
 * SplitMix64.
 */

#ifndef DARCO_COMMON_RNG_HH
#define DARCO_COMMON_RNG_HH

#include <array>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace darco
{

/** Deterministic xoshiro256** generator. */
class Rng
{
  public:
    explicit Rng(u64 seed = 1)
    {
        // SplitMix64 expansion of the seed into the full state.
        u64 x = seed;
        for (auto &s : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            u64 z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            s = z ^ (z >> 31);
        }
    }

    /** Uniform 64-bit value. */
    u64
    next()
    {
        u64 result = rotl(state_[1] * 5, 7) * 9;
        u64 t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    u64
    range(u64 lo, u64 hi)
    {
        darco_assert(lo <= hi);
        u64 span = hi - lo + 1;
        return span == 0 ? next() : lo + next() % span;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return double(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli trial with probability p of true. */
    bool chance(double p) { return uniform() < p; }

    /** Raw generator state (checkpoint save/restore). */
    std::array<u64, 4>
    stateWords() const
    {
        return {state_[0], state_[1], state_[2], state_[3]};
    }

    void
    setStateWords(const std::array<u64, 4> &w)
    {
        for (int i = 0; i < 4; ++i)
            state_[i] = w[i];
    }

    /**
     * Pick an index according to non-negative weights.
     * @return index in [0, weights.size()).
     */
    std::size_t
    weighted(const std::vector<double> &weights)
    {
        double total = 0;
        for (double w : weights)
            total += w;
        darco_assert(total > 0, "weighted() needs positive total weight");
        double r = uniform() * total;
        for (std::size_t i = 0; i < weights.size(); ++i) {
            r -= weights[i];
            if (r < 0)
                return i;
        }
        return weights.size() - 1;
    }

  private:
    static constexpr u64
    rotl(u64 x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    u64 state_[4];
};

} // namespace darco

#endif // DARCO_COMMON_RNG_HH
