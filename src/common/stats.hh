/**
 * @file
 * Lightweight statistics registry.
 *
 * Components register named scalar counters, averages, and histograms
 * against a StatGroup. The registry supports dumping in a stable text
 * format and resetting (needed by the sampling methodology, which
 * discards warm-up statistics).
 */

#ifndef DARCO_COMMON_STATS_HH
#define DARCO_COMMON_STATS_HH

#include <atomic>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace darco
{

/**
 * A single named 64-bit counter.
 *
 * Updates are relaxed atomics so components shared across threads
 * (the translation registry under the async translator, code-cache
 * eviction bookkeeping) can bump counters without data races; no
 * ordering is implied between counters.
 */
class Counter
{
  public:
    Counter() = default;
    Counter(const Counter &o) : value_(o.value()) {}
    Counter &
    operator=(const Counter &o)
    {
        value_.store(o.value(), std::memory_order_relaxed);
        return *this;
    }

    void inc(u64 by = 1) { value_.fetch_add(by, std::memory_order_relaxed); }
    void set(u64 v) { value_.store(v, std::memory_order_relaxed); }
    void reset() { value_.store(0, std::memory_order_relaxed); }
    u64 value() const { return value_.load(std::memory_order_relaxed); }

  private:
    std::atomic<u64> value_{0};
};

/**
 * Simple fixed-bucket histogram over u64 samples.
 *
 * Like Counter, updates are relaxed atomics: histograms fed from
 * registry/code-cache paths can be sampled while async translator
 * workers are live, so sample() must be race-free. The bucket limits
 * are immutable after construction; readers see per-cell-consistent
 * snapshots (no ordering is implied between cells).
 */
class Histogram
{
  public:
    /** @param bucket_limits ascending upper bounds; a final overflow
     *  bucket is added implicitly. */
    explicit Histogram(std::vector<u64> bucket_limits = {});
    // Copies/moves snapshot the atomics (registration-time only; the
    // stat registry never moves a histogram while samplers are live).
    Histogram(const Histogram &o);
    Histogram &operator=(const Histogram &o);
    Histogram(Histogram &&o) noexcept;
    Histogram &operator=(Histogram &&o) noexcept;

    void sample(u64 v, u64 weight = 1);
    void reset();

    u64 count() const { return count_.load(std::memory_order_relaxed); }
    u64 sum() const { return sum_.load(std::memory_order_relaxed); }
    double mean() const
    {
        u64 c = count();
        return c ? double(sum()) / c : 0.0;
    }
    /** Per-bucket counts (snapshot by value). */
    std::vector<u64> buckets() const;
    const std::vector<u64> &limits() const { return limits_; }

  private:
    std::vector<u64> limits_;
    std::vector<std::atomic<u64>> counts_;
    std::atomic<u64> count_{0};
    std::atomic<u64> sum_{0};
};

/**
 * A named collection of counters and histograms.
 *
 * Lookup is by string name; creation is lazy, so components can simply
 * write `stats.counter("tol.chained").inc()`.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name = "stats") : name_(std::move(name))
    {}

    Counter &counter(const std::string &name);
    Histogram &histogram(const std::string &name,
                         std::vector<u64> limits = {});

    /** Read a counter without creating it; 0 if absent. */
    u64 value(const std::string &name) const;

    bool hasCounter(const std::string &name) const
    {
        return counters_.count(name) != 0;
    }

    void resetAll();
    void dump(std::ostream &os) const;

    /**
     * Machine-readable dump with a stable schema:
     *   {"name": ..., "counters": {k: v, ...},
     *    "histograms": {k: {"count", "sum", "mean",
     *                       "limits": [...], "buckets": [...]}}}
     * Keys are emitted in sorted (map) order.
     */
    void dumpJson(std::ostream &os) const;

    const std::string &name() const { return name_; }
    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace darco

#endif // DARCO_COMMON_STATS_HH
