#include "common/schema.hh"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/logging.hh"
#include "common/rng.hh"

namespace darco::conf
{

// ---------------------------------------------------------------------
// Rendering & parsing helpers
// ---------------------------------------------------------------------

const char *
typeName(ParamType t)
{
    switch (t) {
      case ParamType::Bool: return "bool";
      case ParamType::Uint: return "uint";
      case ParamType::Int: return "int";
      case ParamType::Float: return "float";
      case ParamType::String: return "string";
      case ParamType::Enum: return "enum";
      default: return "?";
    }
}

namespace
{

/**
 * Canonical float rendering: the shortest of %.15g/%.16g/%.17g that
 * round-trips to the same double. Keeps common values short
 * ("0.85"), but never collapses two distinct doubles onto one string
 * — the checkpoint exec-relevant comparison and the effective_config
 * report both rely on the rendering being injective.
 */
std::string
fmtFloat(double v)
{
    char buf[64];
    for (int prec = 15; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    return buf;
}

bool
parseU64(const std::string &s, u64 &out)
{
    // strtoull skips leading whitespace and then silently negates a
    // signed value (" -5" wraps to 2^64-5): reject '-' anywhere.
    if (s.empty() || s.find('-') != std::string::npos)
        return false;
    errno = 0;
    char *end = nullptr;
    u64 v = std::strtoull(s.c_str(), &end, 0);
    if (end == s.c_str() || *end != '\0' || errno == ERANGE)
        return false;
    out = v;
    return true;
}

bool
parseS64(const std::string &s, s64 &out)
{
    if (s.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    s64 v = std::strtoll(s.c_str(), &end, 0);
    if (end == s.c_str() || *end != '\0' || errno == ERANGE)
        return false;
    out = v;
    return true;
}

bool
parseF64(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str() || *end != '\0')
        return false;
    out = v;
    return true;
}

/** -1 unparsable, else 0/1. */
int
parseBool(const std::string &v)
{
    if (v == "true" || v == "1" || v == "yes" || v == "on")
        return 1;
    if (v == "false" || v == "0" || v == "no" || v == "off")
        return 0;
    return -1;
}

/** Canonical rendering of a valid value for `spec` (identity else). */
std::string
canonicalValue(const ParamSpec &spec, const std::string &value)
{
    switch (spec.type) {
      case ParamType::Bool: {
        int b = parseBool(value);
        return b < 0 ? value : (b ? "true" : "false");
      }
      case ParamType::Uint: {
        u64 v = 0;
        return parseU64(value, v) ? std::to_string(v) : value;
      }
      case ParamType::Int: {
        s64 v = 0;
        return parseS64(value, v) ? std::to_string(v) : value;
      }
      case ParamType::Float: {
        double v = 0;
        return parseF64(value, v) ? fmtFloat(v) : value;
      }
      default: return value;
    }
}

/** Classic Levenshtein edit distance (keys are short). */
std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        prev[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        cur[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            std::size_t sub = prev[j - 1] + (a[i - 1] != b[j - 1]);
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
        }
        std::swap(prev, cur);
    }
    return prev[b.size()];
}

} // namespace

// ---------------------------------------------------------------------
// ParamSpec
// ---------------------------------------------------------------------

ParamSpec &
ParamSpec::cosmetic()
{
    relevantToExecution = false;
    return *this;
}

namespace
{

/** A power of two exists in [lo, hi] and shifting stays defined. */
bool
pow2FuzzRangeOk(u64 lo, u64 hi)
{
    if (hi >= (1ull << 63))
        return false; // exponent search would shift past 63 (UB)
    for (u64 p = 1; p <= hi; p <<= 1)
        if (p >= lo)
            return true;
    return false;
}

} // namespace

ParamSpec &
ParamSpec::pow2()
{
    darco_assert(type == ParamType::Uint, "pow2() on non-uint ", key);
    darco_assert(defUint != 0 && (defUint & (defUint - 1)) == 0,
                 "pow2 parameter with non-pow2 default: ", key);
    darco_assert(!fuzzable || pow2FuzzRangeOk(fuzzMinUint, fuzzMaxUint),
                 "pow2 fuzz range holds no power of two: ", key);
    requirePow2 = true;
    return *this;
}

ParamSpec &
ParamSpec::fuzz(u64 lo, u64 hi)
{
    darco_assert(type == ParamType::Uint, "fuzz(u64) on non-uint ", key);
    darco_assert(lo >= minUint && hi <= maxUint && lo <= hi,
                 "fuzz range outside valid range for ", key);
    darco_assert(!requirePow2 || pow2FuzzRangeOk(lo, hi),
                 "pow2 fuzz range holds no power of two: ", key);
    fuzzable = true;
    fuzzMinUint = lo;
    fuzzMaxUint = hi;
    return *this;
}

ParamSpec &
ParamSpec::fuzz(double lo, double hi)
{
    darco_assert(type == ParamType::Float, "fuzz(double) on non-float ",
                 key);
    darco_assert(lo >= minFloat && hi <= maxFloat && lo <= hi,
                 "fuzz range outside valid range for ", key);
    fuzzable = true;
    fuzzMinFloat = lo;
    fuzzMaxFloat = hi;
    return *this;
}

ParamSpec &
ParamSpec::fuzzToggle()
{
    darco_assert(type == ParamType::Bool || type == ParamType::Enum,
                 "fuzzToggle() on non-bool/enum ", key);
    fuzzable = true;
    return *this;
}

ParamSpec &
ParamSpec::alias(const std::string &old_key)
{
    aliases.push_back(old_key);
    return *this;
}

std::string
ParamSpec::defaultString() const
{
    switch (type) {
      case ParamType::Bool: return defBool ? "true" : "false";
      case ParamType::Uint: return std::to_string(defUint);
      case ParamType::Int: return std::to_string(defInt);
      case ParamType::Float: return fmtFloat(defFloat);
      case ParamType::String:
      case ParamType::Enum: return defString;
      default: return "";
    }
}

std::string
ParamSpec::rangeString() const
{
    std::ostringstream os;
    switch (type) {
      case ParamType::Uint:
        os << '[' << minUint << ", ";
        if (maxUint == ~0ull)
            os << "2^64-1";
        else
            os << maxUint;
        os << ']';
        return os.str();
      case ParamType::Int:
        os << '[' << minInt << ", " << maxInt << ']';
        return os.str();
      case ParamType::Float:
        os << '[' << fmtFloat(minFloat) << ", " << fmtFloat(maxFloat)
           << ']';
        return os.str();
      case ParamType::Enum: {
        os << '{';
        for (std::size_t i = 0; i < domain.size(); ++i)
            os << (i ? ", " : "") << domain[i];
        os << '}';
        return os.str();
      }
      default: return "-";
    }
}

// ---------------------------------------------------------------------
// Declaration helpers
// ---------------------------------------------------------------------

ParamSpec &
ConfigSchema::declare(const std::string &key, ParamType type,
                      const std::string &help)
{
    darco_assert(params_.count(key) == 0,
                 "config parameter declared twice: ", key);
    ParamSpec &p = params_[key];
    p.key = key;
    p.type = type;
    p.help = help;
    return p;
}

ParamSpec &
ConfigSchema::declBool(const std::string &key, bool def,
                       const std::string &help)
{
    ParamSpec &p = declare(key, ParamType::Bool, help);
    p.defBool = def;
    return p;
}

ParamSpec &
ConfigSchema::declUint(const std::string &key, u64 def, u64 min,
                       u64 max, const std::string &help)
{
    darco_assert(min <= def && def <= max,
                 "default outside declared range for ", key);
    ParamSpec &p = declare(key, ParamType::Uint, help);
    p.defUint = def;
    p.minUint = min;
    p.maxUint = max;
    return p;
}

ParamSpec &
ConfigSchema::declFloat(const std::string &key, double def, double min,
                        double max, const std::string &help)
{
    darco_assert(min <= def && def <= max,
                 "default outside declared range for ", key);
    ParamSpec &p = declare(key, ParamType::Float, help);
    p.defFloat = def;
    p.minFloat = min;
    p.maxFloat = max;
    return p;
}

ParamSpec &
ConfigSchema::declString(const std::string &key, const std::string &def,
                         const std::string &help)
{
    ParamSpec &p = declare(key, ParamType::String, help);
    p.defString = def;
    return p;
}

ParamSpec &
ConfigSchema::declEnum(const std::string &key, const std::string &def,
                       const std::vector<std::string> &domain,
                       const std::string &help)
{
    darco_assert(std::count(domain.begin(), domain.end(), def) == 1,
                 "enum default outside domain for ", key);
    ParamSpec &p = declare(key, ParamType::Enum, help);
    p.defString = def;
    p.domain = domain;
    return p;
}

// ---------------------------------------------------------------------
// The one place every DARCO parameter is declared
// ---------------------------------------------------------------------

ConfigSchema::ConfigSchema()
{
    // --- shared -------------------------------------------------------
    declUint("seed", 1, 0, ~0ull,
             "RNG seed shared by the reference and co-designed "
             "components (guest OS RNG/time streams)");
    declUint("cores", 1, 1, 8,
             "guest hardware contexts sharing one TOL (translation "
             "registry, code cache, eviction clock, async translator); "
             "core i runs its own CpuState/GuestOS stream seeded "
             "seed+i, interleaved at region/interpreter-step "
             "boundaries");

    // --- controller / synchronization (measurement-side toggles) ------
    declBool("sync.validate_syscalls", true,
             "compare architectural state against the reference "
             "component at every syscall")
        .cosmetic();
    declBool("sync.validate_end", true,
             "full state comparison at end of application")
        .cosmetic();
    declBool("sync.validate_memory", true,
             "include resident pages in the end-of-application "
             "comparison")
        .cosmetic();

    // --- TOL: promotion thresholds & region limits ---------------------
    declUint("tol.bb_threshold", 10, 1, 1u << 20,
             "interpreter executions of a BB before promotion to BBM "
             "(basic-block translation)")
        .alias("tol.basicblock_threshold")
        .fuzz(u64(1), u64(64));
    declUint("tol.sb_threshold", 50, 1, 1u << 20,
             "BB executions before superblock (SBM) promotion")
        .alias("tol.superblock_threshold")
        .fuzz(u64(2), u64(128));
    declFloat("tol.bias_threshold", 0.85, 0.0, 1.0,
              "edge bias required to extend a superblock through a "
              "conditional branch")
        .fuzz(0.5, 1.0);
    declFloat("tol.cum_threshold", 0.40, 0.0, 1.0,
              "minimum cumulative path probability for superblock "
              "growth")
        .fuzz(0.1, 0.9);
    declUint("tol.min_edge_total", 16, 1, 1u << 20,
             "edge-profile samples required before bias is trusted")
        .fuzz(u64(1), u64(64));
    declUint("tol.max_sb_insts", 200, 1, 100'000,
             "superblock guest-instruction budget")
        .fuzz(u64(32), u64(200));
    declUint("tol.max_sb_bbs", 16, 1, 1024,
             "superblock basic-block budget")
        .fuzz(u64(2), u64(16));
    declUint("tol.max_bb_insts", 128, 1, 100'000,
             "basic-block translation instruction budget")
        .fuzz(u64(16), u64(128));
    declUint("tol.max_assert_fails", 6, 0, 1u << 20,
             "speculation-assert failures tolerated before a "
             "superblock is recreated without asserts")
        .fuzz(u64(0), u64(8));
    declUint("tol.max_alias_fails", 6, 0, 1u << 20,
             "alias-speculation failures tolerated before recreation "
             "without memory speculation")
        .fuzz(u64(0), u64(8));

    // --- TOL: optimization toggles -------------------------------------
    declBool("tol.unroll", true, "unroll small hot loops in superblocks")
        .fuzzToggle();
    declUint("tol.unroll_factor", 4, 1, 64, "loop unroll factor")
        .fuzz(u64(1), u64(8));
    declBool("tol.asserts", true,
             "emit speculation asserts (conditional-exit promotion)")
        .fuzzToggle();
    declBool("tol.enable_bbm", true,
             "enable the basic-block translation mode (BBM)")
        .fuzzToggle();
    declBool("tol.enable_sbm", true,
             "enable the superblock translation mode (SBM)")
        .fuzzToggle();
    declBool("tol.chaining", true,
             "chain translated regions (direct-jump linking)")
        .fuzzToggle();
    declBool("tol.spec_mem", true,
             "speculative load/store reordering with alias guards")
        .fuzzToggle();
    declBool("tol.sched", true, "instruction scheduling pass")
        .fuzzToggle();
    declBool("tol.opt", true,
             "classic optimizations (value forwarding, dead-code "
             "elimination)")
        .fuzzToggle();
    declBool("tol.fuse_flags", true,
             "fuse flag-producing/consuming instruction pairs in the "
             "frontend")
        .fuzzToggle();
    declUint("tol.host_chunk", 1u << 20, 1, ~0ull,
             "host-emulator slice length (guest insts) between TOL "
             "scheduling points")
        .fuzz(u64(512), u64(65'536));
    declUint("tol.bbv_interval", 0, 0, ~0ull,
             "basic-block-vector profiling interval in guest insts "
             "(0 disables BBV collection)")
        .fuzz(u64(512), u64(8192));
    declUint("tol.interleave_seed", 0, 0, ~0ull,
             "seed of the multi-core dispatch interleaver (0 derives "
             "it from `seed`); with cores > 1 the interleaver draws "
             "one xorshift64 step per dispatch-loop iteration to pick "
             "the next runnable core, so the schedule is part of the "
             "simulated model and independent of host threading");

    // --- TOL: asynchronous translation pipeline ------------------------
    declUint("tol.async.threads", 0, 0, 64,
             "background translator worker threads (0 = translate "
             "synchronously on the guest critical path); simulated "
             "results are identical for any value >= 1")
        .fuzz(u64(1), u64(4));
    declUint("tol.async.vthreads", 1, 1, 64,
             "modeled concurrent translator threads: divides the "
             "virtual translation-completion latency and overlaps the "
             "concurrent-translator cost category in the timing core")
        .fuzz(u64(1), u64(4));
    declUint("tol.async.queue", 16, 1, 4096,
             "bounded translation-request queue depth; a full queue "
             "forces a synchronous fallback translation")
        .fuzz(u64(1), u64(32));
    declUint("tol.async.rate", 8, 1, 1u << 20,
             "modeled translator throughput in host instructions per "
             "retired guest instruction, per modeled thread")
        .fuzz(u64(2), u64(16));

    // --- code cache ----------------------------------------------------
    declUint("cc.capacity_words", 1u << 22, 256, 1u << 28,
             "code-cache capacity in host words")
        .alias("cc.capacity")
        .fuzz(u64(2048), u64(32'768));
    declEnum("cc.policy", "evict", {"evict", "flush"},
             "code-cache replacement: region-granular second-chance "
             "eviction, or classic full flush")
        .fuzzToggle();

    // --- TOL cost model (software-overhead accounting) -----------------
    declUint("cost.interp_inst", 20, 0, 1'000'000'000,
             "cost units to interpret one guest instruction");
    declUint("cost.interp_dispatch", 9, 0, 1'000'000'000,
             "cost units per interpreter dispatch");
    declUint("cost.bb_fixed", 180, 0, 1'000'000'000,
             "fixed cost of translating a basic block");
    declUint("cost.bb_guest_inst", 70, 0, 1'000'000'000,
             "per-guest-instruction cost of BB translation");
    declUint("cost.sb_fixed", 700, 0, 1'000'000'000,
             "fixed cost of building a superblock");
    declUint("cost.sb_work_unit", 9, 0, 1'000'000'000,
             "per-work-unit cost of superblock optimization");
    declUint("cost.prologue", 14, 0, 1'000'000'000,
             "cost of a translation prologue execution");
    declUint("cost.chain", 30, 0, 1'000'000'000,
             "cost of patching one chain link");
    declUint("cost.lookup", 15, 0, 1'000'000'000,
             "cost of a code-cache lookup");
    declUint("cost.dispatch", 9, 0, 1'000'000'000,
             "cost of dispatching into translated code");
    declUint("cost.init", 40'000, 0, 1'000'000'000,
             "one-time TOL initialization cost");
    declUint("cost.word_emit", 4, 0, 1'000'000'000,
             "cost of emitting one host code word");
    declUint("cost.evict", 150, 0, 1'000'000'000,
             "cost of evicting one code-cache region");
    declUint("cost.unchain", 24, 0, 1'000'000'000,
             "cost of unchaining one incoming link");

    // --- host emulator -------------------------------------------------
    declUint("hemu.ibtc_entries", 512, 1, 1u << 20,
             "indirect-branch translation cache entries")
        .pow2()
        .fuzz(u64(8), u64(4096));
    declUint("hemu.local_mem_bytes", 1u << 20, 65'536, 1u << 30,
             "TOL-local (concealed) memory size in bytes");
    declUint("hemu.ibtc_hit_cost", 6, 0, 1'000'000,
             "host-cycle cost charged per IBTC hit")
        .fuzz(u64(1), u64(16));

    // --- debug / fault injection ---------------------------------------
    declBool("debug.flip_cond_exits", false,
             "fault injection: invert conditional exits in generated "
             "superblocks (differential-fuzzer self-test)");
    declBool("debug.drop_guard", false,
             "fault injection: silently omit speculation-guard asserts "
             "from generated code (verifier self-test)");

    // --- translation verification --------------------------------------
    declEnum("tol.verify", "off", {"off", "install", "final"},
             "per-translation symbolic equivalence proofs: check each "
             "region at publish time (install) or accumulate and prove "
             "at verifyFinal (final)")
        .cosmetic();
    declUint("verify.concretize", 4096, 1, 1u << 24,
             "exhaustive-concretization budget (max assignments "
             "enumerated per residual proof term)")
        .cosmetic();
    declUint("verify.witness", 128, 1, 1'000'000,
             "randomized counterexample-search tries per undecided "
             "proof term")
        .cosmetic();
    declUint("verify.paths", 256, 1, 1'000'000,
             "symbolic host-path limit per verified region")
        .cosmetic();

    // --- observability (measurement only) ------------------------------
    declString("obs.trace.path", "",
               "write a Chrome trace-event JSON timeline (Perfetto-"
               "loadable) to this path; empty disables tracing")
        .cosmetic();
    declEnum("obs.trace.clock", "virtual", {"virtual", "wall"},
             "trace timestamp source: virtual (retired guest insts, "
             "deterministic and diffable) or wall (host microseconds)")
        .cosmetic();
    declString("obs.metrics.path", "",
               "write a JSONL interval-metrics stream (per-interval "
               "mode distribution and overhead breakdown) to this "
               "path; empty disables metrics")
        .cosmetic();
    declUint("obs.metrics.interval", 100'000, 1, ~0ull,
             "interval-metrics row length in retired guest "
             "instructions")
        .cosmetic();

    // --- logging -------------------------------------------------------
    declEnum("log.level", "warn", {"error", "warn", "info", "debug"},
             "process-wide log verbosity for routed warn()/inform() "
             "messages")
        .cosmetic();

    // --- timing model (measurement only) -------------------------------
    declUint("core.issue_width", 2, 1, 16, "in-order issue width")
        .cosmetic();
    declUint("core.fetch_width", 4, 1, 32,
             "instructions fetched per cycle")
        .cosmetic();
    declUint("core.iq_size", 16, 1, 512, "instruction-queue entries")
        .cosmetic();
    declUint("core.frontend_depth", 4, 1, 64,
             "frontend pipeline depth (cycles)")
        .cosmetic();
    declUint("core.lat_alu", 1, 1, 1000, "ALU latency").cosmetic();
    declUint("core.lat_mul", 3, 1, 1000, "multiply latency").cosmetic();
    declUint("core.lat_div", 12, 1, 1000, "divide latency").cosmetic();
    declUint("core.lat_fp", 4, 1, 1000, "FP latency").cosmetic();
    declUint("core.lat_fpdiv", 12, 1, 1000, "FP divide latency")
        .cosmetic();
    declUint("core.lat_branch", 1, 1, 1000, "branch resolve latency")
        .cosmetic();
    declUint("core.num_alu", 2, 1, 64, "ALU ports").cosmetic();
    declUint("core.num_complex", 1, 1, 64, "complex (mul/div) ports")
        .cosmetic();
    declUint("core.num_fp", 1, 1, 64, "FP ports").cosmetic();
    declUint("core.num_mem_ports", 1, 1, 64, "memory ports").cosmetic();
    declUint("cache.line", 64, 8, 4096, "cache line size in bytes")
        .pow2()
        .cosmetic();
    declUint("l1i.size", 32'768, 1024, 1u << 30,
             "L1 instruction cache size in bytes")
        .pow2()
        .cosmetic();
    declUint("l1i.assoc", 4, 1, 64, "L1I associativity")
        .pow2()
        .cosmetic();
    declUint("l1i.lat", 1, 0, 10'000, "L1I hit latency").cosmetic();
    declUint("l1d.size", 32'768, 1024, 1u << 30,
             "L1 data cache size in bytes")
        .pow2()
        .cosmetic();
    declUint("l1d.assoc", 4, 1, 64, "L1D associativity")
        .pow2()
        .cosmetic();
    declUint("l1d.lat", 2, 0, 10'000, "L1D hit latency").cosmetic();
    declUint("l2.size", 262'144, 4096, 1u << 30,
             "unified L2 size in bytes")
        .pow2()
        .cosmetic();
    declUint("l2.assoc", 8, 1, 64, "L2 associativity")
        .pow2()
        .cosmetic();
    declUint("l2.lat", 12, 0, 10'000, "L2 hit latency").cosmetic();
    declUint("mem.lat", 120, 0, 100'000, "DRAM access latency")
        .cosmetic();
    declUint("tlb.l1_entries", 32, 1, 1u << 20, "L1 TLB entries")
        .cosmetic();
    declUint("tlb.l2_entries", 256, 1, 1u << 20, "L2 TLB entries")
        .cosmetic();
    declUint("tlb.l2_lat", 4, 0, 10'000, "L2 TLB hit latency")
        .cosmetic();
    declUint("tlb.walk_lat", 40, 0, 100'000, "page-walk latency")
        .cosmetic();
    declUint("bpred.entries", 4096, 1, 1u << 24,
             "branch-predictor table entries")
        .pow2()
        .cosmetic();
    declUint("bpred.history", 8, 1, 64, "global history bits")
        .cosmetic();
    declUint("btb.entries", 1024, 1, 1u << 24,
             "branch-target-buffer entries")
        .pow2()
        .cosmetic();
    declUint("prefetch.entries", 64, 1, 1u << 20,
             "stride-prefetcher table entries")
        .pow2()
        .cosmetic();
    declUint("prefetch.degree", 2, 1, 64, "prefetch degree").cosmetic();
    declBool("prefetch.enable", true, "enable the stride prefetcher")
        .cosmetic();

    // --- power model (measurement only) --------------------------------
    declFloat("power.e_frontend", 0.022, 0.0, 1000.0,
              "frontend energy per instruction, nJ")
        .cosmetic();
    declFloat("power.e_issue", 0.014, 0.0, 1000.0,
              "issue energy per instruction, nJ")
        .cosmetic();
    declFloat("power.e_alu", 0.028, 0.0, 1000.0, "ALU op energy, nJ")
        .cosmetic();
    declFloat("power.e_mul", 0.10, 0.0, 1000.0,
              "multiply op energy, nJ")
        .cosmetic();
    declFloat("power.e_div", 0.24, 0.0, 1000.0, "divide op energy, nJ")
        .cosmetic();
    declFloat("power.e_fp", 0.12, 0.0, 1000.0, "FP op energy, nJ")
        .cosmetic();
    declFloat("power.e_mem_port", 0.02, 0.0, 1000.0,
              "memory-port access energy, nJ")
        .cosmetic();
    declFloat("power.e_l1", 0.075, 0.0, 1000.0,
              "L1 access energy, nJ")
        .cosmetic();
    declFloat("power.e_l2", 0.34, 0.0, 1000.0, "L2 access energy, nJ")
        .cosmetic();
    declFloat("power.e_dram", 7.5, 0.0, 1000.0,
              "DRAM access energy, nJ")
        .cosmetic();
    declFloat("power.e_tlb", 0.004, 0.0, 1000.0,
              "TLB access energy, nJ")
        .cosmetic();
    declFloat("power.e_bpred", 0.0035, 0.0, 1000.0,
              "branch-predictor access energy, nJ")
        .cosmetic();
    declFloat("power.e_prefetch", 0.075, 0.0, 1000.0,
              "prefetcher access energy, nJ")
        .cosmetic();
    declFloat("power.leakage_w", 0.25, 0.0, 1000.0,
              "static leakage power, W")
        .cosmetic();
    declFloat("power.freq_ghz", 2.0, 0.1, 100.0,
              "core clock frequency, GHz")
        .cosmetic();

    // Register the alias -> canonical index.
    for (const auto &[key, spec] : params_) {
        for (const std::string &a : spec.aliases) {
            darco_assert(params_.count(a) == 0 &&
                             aliases_.count(a) == 0,
                         "alias collides with a declared key: ", a);
            aliases_[a] = key;
        }
    }
}

// ---------------------------------------------------------------------
// Lookup & suggestion
// ---------------------------------------------------------------------

const ParamSpec *
ConfigSchema::find(const std::string &key) const
{
    auto it = params_.find(key);
    if (it != params_.end())
        return &it->second;
    auto al = aliases_.find(key);
    if (al != aliases_.end())
        return &params_.at(al->second);
    return nullptr;
}

const ParamSpec &
ConfigSchema::get(const std::string &key) const
{
    const ParamSpec *p = find(key);
    if (!p)
        panic("component read undeclared config key '", key,
              "' — declare it in ConfigSchema (src/common/schema.cc)");
    return *p;
}

std::vector<const ParamSpec *>
ConfigSchema::params() const
{
    std::vector<const ParamSpec *> out;
    out.reserve(params_.size());
    for (const auto &[key, spec] : params_)
        out.push_back(&spec);
    return out; // std::map iteration is already key-sorted
}

std::string
ConfigSchema::suggest(const std::string &key) const
{
    std::string best;
    std::size_t bestDist = ~std::size_t(0);
    auto consider = [&](const std::string &cand) {
        std::size_t d = editDistance(key, cand);
        if (d < bestDist || (d == bestDist && cand < best)) {
            bestDist = d;
            best = cand;
        }
    };
    for (const auto &[k, spec] : params_)
        consider(k);
    for (const auto &[a, canon] : aliases_)
        consider(a);
    // Only suggest a plausible typo, not an arbitrary nearest key.
    std::size_t limit = std::max<std::size_t>(2, key.size() / 4);
    return bestDist <= limit ? best : "";
}

// ---------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------

std::string
ConfigSchema::checkValue(const ParamSpec &spec,
                         const std::string &value) const
{
    std::ostringstream os;
    switch (spec.type) {
      case ParamType::Bool: {
        if (parseBool(value) < 0) {
            os << "config key '" << spec.key << "' has non-boolean "
               << "value '" << value << "'";
            return os.str();
        }
        return "";
      }
      case ParamType::Uint: {
        u64 v = 0;
        if (!parseU64(value, v)) {
            os << "config key '" << spec.key
               << "' has a malformed unsigned value '" << value << "'";
            return os.str();
        }
        if (v < spec.minUint || v > spec.maxUint) {
            os << "config key '" << spec.key << "' value " << v
               << " outside valid range " << spec.rangeString();
            return os.str();
        }
        if (spec.requirePow2 && (v == 0 || (v & (v - 1)) != 0)) {
            os << "config key '" << spec.key << "' value " << v
               << " must be a power of two";
            return os.str();
        }
        return "";
      }
      case ParamType::Int: {
        s64 v = 0;
        if (!parseS64(value, v)) {
            os << "config key '" << spec.key
               << "' has a malformed integer value '" << value << "'";
            return os.str();
        }
        if (v < spec.minInt || v > spec.maxInt) {
            os << "config key '" << spec.key << "' value " << v
               << " outside valid range " << spec.rangeString();
            return os.str();
        }
        return "";
      }
      case ParamType::Float: {
        double v = 0;
        if (!parseF64(value, v)) {
            os << "config key '" << spec.key
               << "' has a malformed float value '" << value << "'";
            return os.str();
        }
        // !(v >= min && v <= max) also rejects NaN, which would
        // slip through naive < / > comparisons.
        if (!(v >= spec.minFloat && v <= spec.maxFloat)) {
            os << "config key '" << spec.key << "' value " << value
               << " outside valid range " << spec.rangeString();
            return os.str();
        }
        return "";
      }
      case ParamType::Enum: {
        if (std::count(spec.domain.begin(), spec.domain.end(),
                       value) == 0) {
            os << "config key '" << spec.key << "' value '" << value
               << "' not in " << spec.rangeString();
            return os.str();
        }
        return "";
      }
      case ParamType::String:
      default:
        return "";
    }
}

std::vector<std::string>
ConfigSchema::validationErrors(const Config &cfg) const
{
    std::vector<std::string> errs;
    for (const auto &[key, value] : cfg.entries()) {
        const ParamSpec *spec = find(key);
        if (!spec) {
            std::string msg = "unknown config key '" + key + "'";
            std::string near = suggest(key);
            if (!near.empty())
                msg += " (did you mean '" + near + "'?)";
            errs.push_back(std::move(msg));
            continue;
        }
        std::string bad = checkValue(*spec, value);
        if (!bad.empty()) {
            errs.push_back(std::move(bad));
            continue;
        }
        // Alias + canonical both set: refuse a silent winner unless
        // they agree (canonically — "0x1000" and "4096" are the same
        // value).
        if (key != spec->key && cfg.has(spec->key) &&
            canonicalValue(*spec, cfg.getString(spec->key)) !=
                canonicalValue(*spec, value)) {
            errs.push_back("config key '" + key +
                           "' (deprecated alias of '" + spec->key +
                           "') conflicts with an explicit '" +
                           spec->key + "'");
        }
    }
    return errs;
}

void
ConfigSchema::validate(const Config &cfg,
                       const std::string &context) const
{
    std::vector<std::string> errs = validationErrors(cfg);
    if (errs.empty())
        return;
    std::ostringstream os;
    if (!context.empty())
        os << context << ": ";
    os << "invalid configuration (" << errs.size() << " problem"
       << (errs.size() == 1 ? "" : "s") << "):";
    for (const std::string &e : errs)
        os << "\n  " << e;
    fatal(os.str());
}

// ---------------------------------------------------------------------
// Normalization & effective config
// ---------------------------------------------------------------------

Config
ConfigSchema::normalize(const Config &cfg) const
{
    Config out;
    for (const auto &[key, value] : cfg.entries()) {
        const ParamSpec *spec = find(key);
        if (!spec) {
            out.set(key, value); // carried for diagnostics
            continue;
        }
        // Canonical key wins when both spellings are present.
        if (key != spec->key && cfg.has(spec->key))
            continue;
        out.set(spec->key, canonicalValue(*spec, value));
    }
    return out;
}

std::map<std::string, std::string>
ConfigSchema::effective(const Config &cfg) const
{
    Config norm = normalize(cfg);
    std::map<std::string, std::string> out;
    for (const auto &[key, spec] : params_) {
        out[key] = norm.has(key) ? norm.getString(key)
                                 : spec.defaultString();
    }
    return out;
}

std::map<std::string, std::string>
ConfigSchema::executionRelevant(const Config &cfg) const
{
    std::map<std::string, std::string> out;
    for (auto &[key, value] : effective(cfg)) {
        if (params_.at(key).relevantToExecution)
            out[key] = value;
    }
    return out;
}

// ---------------------------------------------------------------------
// Generated reference
// ---------------------------------------------------------------------

std::string
ConfigSchema::referenceMarkdown() const
{
    std::ostringstream os;
    os << "# DARCO configuration reference\n"
       << "\n"
       << "Generated from the parameter schema "
          "(`src/common/schema.cc`) by `--list-config`; do not edit "
          "by hand — CI diffs this file against the generated "
          "output.\n"
       << "\n"
       << "`exec` marks *execution-relevant* parameters: they change "
          "what the simulated machine does, and checkpoint restore "
          "requires them to match the saving run exactly. Parameters "
          "marked `-` only affect measurement (timing/power models) "
          "or validation, and may differ freely across a "
          "checkpoint.\n"
       << "\n"
       << "| Key | Type | Default | Range | Exec | Help |\n"
       << "|---|---|---|---|---|---|\n";
    for (const ParamSpec *p : params()) {
        os << "| `" << p->key << "` | " << typeName(p->type) << " | `"
           << p->defaultString() << "` | " << p->rangeString() << " | "
           << (p->relevantToExecution ? "exec" : "-") << " | "
           << p->help << " |\n";
    }
    bool anyAlias = false;
    for (const auto &[a, canon] : aliases_) {
        if (!anyAlias)
            os << "\nDeprecated aliases: ";
        os << (anyAlias ? ", " : "") << '`' << a << "` → `" << canon
           << '`';
        anyAlias = true;
    }
    if (anyAlias)
        os << "\n";
    return os.str();
}

// ---------------------------------------------------------------------
// Random valid configs (darco_fuzz --rand-config)
// ---------------------------------------------------------------------

std::vector<std::string>
ConfigSchema::randomOverrides(u64 seed) const
{
    Rng rng(seed * 0x9e3779b97f4a7c15ull + 0xdeadbeefull);
    std::vector<std::string> out;
    for (const ParamSpec *p : params()) {
        if (!p->fuzzable || !rng.chance(0.5))
            continue;
        std::string v;
        switch (p->type) {
          case ParamType::Bool:
            v = (rng.next() & 1) ? "true" : "false";
            break;
          case ParamType::Uint:
            if (p->requirePow2) {
                // Sample an exponent so every draw is a power of two.
                u64 lo = 0, hi = 0;
                while ((1ull << lo) < p->fuzzMinUint)
                    ++lo;
                hi = lo;
                while ((1ull << (hi + 1)) <= p->fuzzMaxUint)
                    ++hi;
                v = std::to_string(1ull << rng.range(lo, hi));
            } else {
                v = std::to_string(rng.range(p->fuzzMinUint,
                                             p->fuzzMaxUint));
            }
            break;
          case ParamType::Float:
            v = fmtFloat(p->fuzzMinFloat +
                         rng.uniform() *
                             (p->fuzzMaxFloat - p->fuzzMinFloat));
            break;
          case ParamType::Enum:
            v = p->domain[rng.range(0, p->domain.size() - 1)];
            break;
          default:
            continue;
        }
        out.push_back(p->key + "=" + v);
    }
    return out;
}

// ---------------------------------------------------------------------
// Singleton + typed accessors
// ---------------------------------------------------------------------

const ConfigSchema &
schema()
{
    static const ConfigSchema s;
    return s;
}

} // namespace darco::conf

namespace darco
{

// Defined here, not in config.cc: the transport layer stays ignorant
// of the schema; only the schema layer knows both sides.
void
Config::validate(const conf::ConfigSchema &schema,
                 const std::string &context) const
{
    schema.validate(*this, context);
}

} // namespace darco

namespace darco::conf
{

namespace
{

/**
 * The explicitly-set value for `spec` in `cfg` (canonical spelling
 * wins over aliases), validated against the schema; nullptr when the
 * parameter is unset and the default applies.
 */
const std::string *
boundValue(const Config &cfg, const ParamSpec &spec)
{
    const std::map<std::string, std::string> &e = cfg.entries();
    auto it = e.find(spec.key);
    if (it == e.end()) {
        for (const std::string &a : spec.aliases) {
            it = e.find(a);
            if (it != e.end())
                break;
        }
    }
    if (it == e.end())
        return nullptr;
    std::string bad = schema().checkValue(spec, it->second);
    if (!bad.empty())
        fatal(bad);
    return &it->second;
}

const ParamSpec &
boundSpec(const std::string &key, ParamType want)
{
    const ParamSpec &spec = schema().get(key);
    if (spec.type != want) {
        // Enum parameters read fine through the string accessor.
        bool enumAsString =
            spec.type == ParamType::Enum && want == ParamType::String;
        if (!enumAsString)
            panic("config key '", key, "' is ", typeName(spec.type),
                  ", accessed as ", typeName(want));
    }
    return spec;
}

} // namespace

bool
getBool(const Config &cfg, const std::string &key)
{
    const ParamSpec &spec = boundSpec(key, ParamType::Bool);
    const std::string *v = boundValue(cfg, spec);
    return v ? parseBool(*v) == 1 : spec.defBool;
}

u64
getUint(const Config &cfg, const std::string &key)
{
    const ParamSpec &spec = boundSpec(key, ParamType::Uint);
    const std::string *v = boundValue(cfg, spec);
    if (!v)
        return spec.defUint;
    u64 out = 0;
    parseU64(*v, out); // validated by boundValue
    return out;
}

s64
getInt(const Config &cfg, const std::string &key)
{
    const ParamSpec &spec = boundSpec(key, ParamType::Int);
    const std::string *v = boundValue(cfg, spec);
    if (!v)
        return spec.defInt;
    s64 out = 0;
    parseS64(*v, out);
    return out;
}

double
getFloat(const Config &cfg, const std::string &key)
{
    const ParamSpec &spec = boundSpec(key, ParamType::Float);
    const std::string *v = boundValue(cfg, spec);
    if (!v)
        return spec.defFloat;
    double out = 0;
    parseF64(*v, out);
    return out;
}

std::string
getString(const Config &cfg, const std::string &key)
{
    const ParamSpec &spec = boundSpec(key, ParamType::String);
    const std::string *v = boundValue(cfg, spec);
    return v ? *v : spec.defString;
}

std::string
getEnum(const Config &cfg, const std::string &key)
{
    const ParamSpec &spec = boundSpec(key, ParamType::Enum);
    const std::string *v = boundValue(cfg, spec);
    return v ? *v : spec.defString;
}

} // namespace darco::conf
