/**
 * @file
 * Status/error reporting in the gem5 tradition: panic() for internal
 * invariant violations, fatal() for user errors, warn()/inform() for
 * non-fatal conditions.
 *
 * Non-fatal messages route through a pluggable LogSink with a severity
 * level and an optional component tag, so tests can capture and assert
 * log output instead of scraping stderr. The process-wide level
 * (default Warn, settable via the `log.level` config parameter)
 * filters before formatting; the default sink preserves the classic
 * "warn: msg" / "info: msg" stderr format.
 */

#ifndef DARCO_COMMON_LOGGING_HH
#define DARCO_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace darco
{

/** Thrown by panic(): an internal invariant was violated (a DARCO bug). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Thrown by fatal(): the simulation cannot continue due to user error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Severity of a non-fatal log message (ascending verbosity). */
enum class LogLevel : int
{
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
};

/** One routed log message. `component` is a static tag ("tol", ...). */
struct LogRecord
{
    LogLevel level;
    const char *component; //!< "" when untagged
    std::string message;
};

/** Pluggable destination for routed log messages. */
class LogSink
{
  public:
    virtual ~LogSink() = default;
    virtual void log(const LogRecord &rec) = 0;
};

/**
 * Install a sink (tests capture output this way); nullptr restores
 * the default stderr sink. Returns the previously installed sink
 * (nullptr when it was the default).
 */
LogSink *setLogSink(LogSink *sink);

/** Process-wide severity filter (default Warn). */
void setLogLevel(LogLevel level);
LogLevel logLevel();

/** Parse "error"|"warn"|"info"|"debug" (the `log.level` domain). */
LogLevel parseLogLevel(const std::string &name);

/** "warn", "info", ... */
const char *logLevelName(LogLevel level);

/** Route one already-formatted message (level filter applied here). */
void logEmit(LogLevel level, const char *component, std::string message);

/**
 * RAII thread-local override of the log sink and/or level.
 *
 * Installed by Controller entry points so each controller's configured
 * `log.level` (and any sink attached via Controller::setLogSink) only
 * applies to its own execution: concurrent campaign jobs no longer race
 * on the process-global sink/level, and a job's warnings land in its
 * own capture sink instead of whichever job attached last.
 *
 * `sink == nullptr` keeps the ambient sink resolution (thread-local
 * override from an enclosing scope, else the global sink, else the
 * stderr default). Scopes nest; the destructor restores the previous
 * thread-local state.
 */
class ScopedLogScope
{
  public:
    ScopedLogScope(LogSink *sink, LogLevel level);
    ~ScopedLogScope();

    ScopedLogScope(const ScopedLogScope &) = delete;
    ScopedLogScope &operator=(const ScopedLogScope &) = delete;

  private:
    LogSink *prevSink_;
    int prevLevel_;
};

namespace detail
{

inline void
formatInto(std::ostringstream &os)
{
    (void)os;
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &first, const Rest &...rest)
{
    os << first;
    formatInto(os, rest...);
}

template <typename... Args>
std::string
format(const Args &...args)
{
    std::ostringstream os;
    formatInto(os, args...);
    return os.str();
}

} // namespace detail

/**
 * Report an internal invariant violation and abort via exception.
 * Use only for conditions that indicate a bug in DARCO itself.
 */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    throw PanicError(detail::format("panic: ", args...));
}

/** Report an unrecoverable user-level error (bad config, bad input). */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    throw FatalError(detail::format("fatal: ", args...));
}

/** Non-fatal warning (routed; shown at the default level). */
template <typename... Args>
void
warn(const Args &...args)
{
    if (logLevel() >= LogLevel::Warn)
        logEmit(LogLevel::Warn, "", detail::format(args...));
}

/** Informational message (routed; hidden at the default level). */
template <typename... Args>
void
inform(const Args &...args)
{
    if (logLevel() >= LogLevel::Info)
        logEmit(LogLevel::Info, "", detail::format(args...));
}

/** Component-tagged variants (the tag must be a static string). */
template <typename... Args>
void
warnFrom(const char *component, const Args &...args)
{
    if (logLevel() >= LogLevel::Warn)
        logEmit(LogLevel::Warn, component, detail::format(args...));
}

template <typename... Args>
void
informFrom(const char *component, const Args &...args)
{
    if (logLevel() >= LogLevel::Info)
        logEmit(LogLevel::Info, component, detail::format(args...));
}

template <typename... Args>
void
debugFrom(const char *component, const Args &...args)
{
    if (logLevel() >= LogLevel::Debug)
        logEmit(LogLevel::Debug, component, detail::format(args...));
}

/** panic() unless the condition holds. */
#define darco_assert(cond, ...)                                             \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::darco::panic("assertion '", #cond, "' failed at ", __FILE__, \
                           ":", __LINE__, " ", ##__VA_ARGS__);              \
        }                                                                   \
    } while (0)

} // namespace darco

#endif // DARCO_COMMON_LOGGING_HH
