/**
 * @file
 * Status/error reporting in the gem5 tradition: panic() for internal
 * invariant violations, fatal() for user errors, warn()/inform() for
 * non-fatal conditions.
 */

#ifndef DARCO_COMMON_LOGGING_HH
#define DARCO_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace darco
{

/** Thrown by panic(): an internal invariant was violated (a DARCO bug). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Thrown by fatal(): the simulation cannot continue due to user error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail
{

inline void
formatInto(std::ostringstream &os)
{
    (void)os;
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &first, const Rest &...rest)
{
    os << first;
    formatInto(os, rest...);
}

template <typename... Args>
std::string
format(const Args &...args)
{
    std::ostringstream os;
    formatInto(os, args...);
    return os.str();
}

} // namespace detail

/**
 * Report an internal invariant violation and abort via exception.
 * Use only for conditions that indicate a bug in DARCO itself.
 */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    throw PanicError(detail::format("panic: ", args...));
}

/** Report an unrecoverable user-level error (bad config, bad input). */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    throw FatalError(detail::format("fatal: ", args...));
}

/** Non-fatal warning to stderr. */
template <typename... Args>
void
warn(const Args &...args)
{
    std::fprintf(stderr, "warn: %s\n", detail::format(args...).c_str());
}

/** Informational message to stderr. */
template <typename... Args>
void
inform(const Args &...args)
{
    std::fprintf(stderr, "info: %s\n", detail::format(args...).c_str());
}

/** panic() unless the condition holds. */
#define darco_assert(cond, ...)                                             \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::darco::panic("assertion '", #cond, "' failed at ", __FILE__, \
                           ":", __LINE__, " ", ##__VA_ARGS__);              \
        }                                                                   \
    } while (0)

} // namespace darco

#endif // DARCO_COMMON_LOGGING_HH
