/**
 * @file
 * Typed key/value configuration store.
 *
 * Every DARCO component is parameterized through a Config: a flat
 * string-keyed dictionary with typed accessors and "k=v" parsing, so
 * that benches and examples can sweep parameters without recompiling.
 */

#ifndef DARCO_COMMON_CONFIG_HH
#define DARCO_COMMON_CONFIG_HH

#include <map>
#include <string>
#include <vector>

#include "common/types.hh"

namespace darco
{

namespace conf
{
class ConfigSchema;
}

/**
 * Flat configuration dictionary with typed getters.
 *
 * This is the transport layer only: it knows nothing about which keys
 * exist. Components read their parameters through the schema-bound
 * accessors in common/schema.hh (darco::conf), which resolve defaults
 * from the central parameter registry — raw getters with inline
 * defaults are reserved for Config's own machinery (a CI lint
 * enforces this). Malformed values raise fatal() since they are user
 * errors.
 */
class Config
{
  public:
    Config() = default;

    /** Build from a list of "key=value" strings. */
    explicit Config(const std::vector<std::string> &kvs);

    /** Set (or overwrite) a key. */
    void set(const std::string &key, const std::string &value);
    void set(const std::string &key, s64 value);
    void set(const std::string &key, double value);
    void set(const std::string &key, bool value);

    /** Parse and apply one "key=value" string. */
    void parseLine(const std::string &kv);

    bool has(const std::string &key) const;

    std::string getString(const std::string &key,
                          const std::string &def = "") const;
    s64 getInt(const std::string &key, s64 def) const;
    u64 getUint(const std::string &key, u64 def) const;
    double getFloat(const std::string &key, double def) const;
    bool getBool(const std::string &key, bool def) const;

    /** Merge another config on top of this one (other wins). */
    void merge(const Config &other);

    /**
     * Validate every entry against a parameter schema: unknown keys
     * (with a nearest-match suggestion), out-of-range values and bad
     * enum strings raise fatal(). Convenience for
     * schema.validate(cfg, context).
     */
    void validate(const conf::ConfigSchema &schema,
                  const std::string &context = "") const;

    /** All key/value pairs in sorted order (for dumping). */
    const std::map<std::string, std::string> &entries() const
    {
        return store_;
    }

  private:
    std::map<std::string, std::string> store_;
};

} // namespace darco

#endif // DARCO_COMMON_CONFIG_HH
