/**
 * @file
 * Bit-manipulation helpers used by the ISA encoders/decoders.
 */

#ifndef DARCO_COMMON_BITUTIL_HH
#define DARCO_COMMON_BITUTIL_HH

#include "common/types.hh"

namespace darco
{

/** Extract bits [lo, lo+width) of x. */
constexpr u32
bits(u32 x, unsigned lo, unsigned width)
{
    return (x >> lo) & ((width >= 32) ? ~0u : ((1u << width) - 1));
}

/** Insert the low `width` bits of v at position lo. */
constexpr u32
insertBits(u32 x, unsigned lo, unsigned width, u32 v)
{
    u32 mask = ((width >= 32) ? ~0u : ((1u << width) - 1)) << lo;
    return (x & ~mask) | ((v << lo) & mask);
}

/** Sign-extend the low `width` bits of x to 32 bits. */
constexpr s32
sext(u32 x, unsigned width)
{
    u32 shift = 32 - width;
    return s32(x << shift) >> shift;
}

/** True if v fits in a signed immediate of `width` bits. */
constexpr bool
fitsSigned(s64 v, unsigned width)
{
    s64 lo = -(s64(1) << (width - 1));
    s64 hi = (s64(1) << (width - 1)) - 1;
    return v >= lo && v <= hi;
}

} // namespace darco

#endif // DARCO_COMMON_BITUTIL_HH
