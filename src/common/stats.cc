#include "common/stats.hh"

#include <iomanip>

namespace darco
{

Histogram::Histogram(std::vector<u64> bucket_limits)
    : limits_(std::move(bucket_limits)),
      counts_(limits_.size() + 1, 0)
{
}

void
Histogram::sample(u64 v, u64 weight)
{
    std::size_t i = 0;
    while (i < limits_.size() && v > limits_[i])
        ++i;
    counts_[i] += weight;
    count_ += weight;
    sum_ += v * weight;
}

void
Histogram::reset()
{
    for (auto &c : counts_)
        c = 0;
    count_ = 0;
    sum_ = 0;
}

Counter &
StatGroup::counter(const std::string &name)
{
    return counters_[name];
}

Histogram &
StatGroup::histogram(const std::string &name, std::vector<u64> limits)
{
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        it = histograms_.emplace(name, Histogram(std::move(limits))).first;
    return it->second;
}

u64
StatGroup::value(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

void
StatGroup::resetAll()
{
    for (auto &[_, c] : counters_)
        c.reset();
    for (auto &[_, h] : histograms_)
        h.reset();
}

void
StatGroup::dump(std::ostream &os) const
{
    os << "---- " << name_ << " ----\n";
    for (const auto &[k, c] : counters_)
        os << std::left << std::setw(44) << k << " " << c.value() << "\n";
    for (const auto &[k, h] : histograms_) {
        os << std::left << std::setw(44) << (k + ".count") << " "
           << h.count() << "\n";
        os << std::left << std::setw(44) << (k + ".mean") << " "
           << h.mean() << "\n";
    }
}

} // namespace darco
