#include "common/stats.hh"

#include <cstdio>
#include <iomanip>

namespace darco
{

Histogram::Histogram(std::vector<u64> bucket_limits)
    : limits_(std::move(bucket_limits)), counts_(limits_.size() + 1)
{
}

Histogram::Histogram(const Histogram &o)
    : limits_(o.limits_), counts_(o.limits_.size() + 1)
{
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i].store(o.counts_[i].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    count_.store(o.count(), std::memory_order_relaxed);
    sum_.store(o.sum(), std::memory_order_relaxed);
}

Histogram &
Histogram::operator=(const Histogram &o)
{
    if (this == &o)
        return *this;
    limits_ = o.limits_;
    counts_ = std::vector<std::atomic<u64>>(o.limits_.size() + 1);
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i].store(o.counts_[i].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    count_.store(o.count(), std::memory_order_relaxed);
    sum_.store(o.sum(), std::memory_order_relaxed);
    return *this;
}

Histogram::Histogram(Histogram &&o) noexcept
    : limits_(std::move(o.limits_)), counts_(std::move(o.counts_))
{
    count_.store(o.count(), std::memory_order_relaxed);
    sum_.store(o.sum(), std::memory_order_relaxed);
}

Histogram &
Histogram::operator=(Histogram &&o) noexcept
{
    limits_ = std::move(o.limits_);
    counts_ = std::move(o.counts_);
    count_.store(o.count(), std::memory_order_relaxed);
    sum_.store(o.sum(), std::memory_order_relaxed);
    return *this;
}

void
Histogram::sample(u64 v, u64 weight)
{
    std::size_t i = 0;
    while (i < limits_.size() && v > limits_[i])
        ++i;
    counts_[i].fetch_add(weight, std::memory_order_relaxed);
    count_.fetch_add(weight, std::memory_order_relaxed);
    sum_.fetch_add(v * weight, std::memory_order_relaxed);
}

void
Histogram::reset()
{
    for (auto &c : counts_)
        c.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
}

std::vector<u64>
Histogram::buckets() const
{
    std::vector<u64> out(counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i)
        out[i] = counts_[i].load(std::memory_order_relaxed);
    return out;
}

Counter &
StatGroup::counter(const std::string &name)
{
    return counters_[name];
}

Histogram &
StatGroup::histogram(const std::string &name, std::vector<u64> limits)
{
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        it = histograms_.emplace(name, Histogram(std::move(limits))).first;
    return it->second;
}

u64
StatGroup::value(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

void
StatGroup::resetAll()
{
    for (auto &[_, c] : counters_)
        c.reset();
    for (auto &[_, h] : histograms_)
        h.reset();
}

void
StatGroup::dump(std::ostream &os) const
{
    os << "---- " << name_ << " ----\n";
    for (const auto &[k, c] : counters_)
        os << std::left << std::setw(44) << k << " " << c.value() << "\n";
    for (const auto &[k, h] : histograms_) {
        os << std::left << std::setw(44) << (k + ".count") << " "
           << h.count() << "\n";
        os << std::left << std::setw(44) << (k + ".mean") << " "
           << h.mean() << "\n";
    }
}

namespace
{

std::string
jsonKey(const std::string &s)
{
    // Stat names are controlled identifiers; escape defensively.
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

} // namespace

void
StatGroup::dumpJson(std::ostream &os) const
{
    os << "{\"name\":\"" << jsonKey(name_) << "\",\"counters\":{";
    bool first = true;
    for (const auto &[k, c] : counters_) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << jsonKey(k) << "\":" << c.value();
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto &[k, h] : histograms_) {
        if (!first)
            os << ",";
        first = false;
        char mean[32];
        std::snprintf(mean, sizeof(mean), "%.6f", h.mean());
        os << "\"" << jsonKey(k) << "\":{\"count\":" << h.count()
           << ",\"sum\":" << h.sum() << ",\"mean\":" << mean
           << ",\"limits\":[";
        const auto &limits = h.limits();
        for (std::size_t i = 0; i < limits.size(); ++i)
            os << (i ? "," : "") << limits[i];
        os << "],\"buckets\":[";
        const std::vector<u64> buckets = h.buckets();
        for (std::size_t i = 0; i < buckets.size(); ++i)
            os << (i ? "," : "") << buckets[i];
        os << "]}";
    }
    os << "}}";
}

} // namespace darco
