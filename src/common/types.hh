/**
 * @file
 * Fundamental type aliases shared across the DARCO infrastructure.
 */

#ifndef DARCO_COMMON_TYPES_HH
#define DARCO_COMMON_TYPES_HH

#include <cstdint>
#include <cstddef>

namespace darco
{

/** Guest virtual address (32-bit guest address space). */
using GAddr = std::uint32_t;

/** Host code-cache address (index into the code cache, in words). */
using HAddr = std::uint32_t;

/** Cycle count of the timing simulator. */
using Cycle = std::uint64_t;

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using s8 = std::int8_t;
using s16 = std::int16_t;
using s32 = std::int32_t;
using s64 = std::int64_t;

/** Size of a guest memory page in bytes. */
constexpr u32 pageSizeBytes = 4096;

/** Extract the page base of a guest address. */
constexpr GAddr
pageBase(GAddr a)
{
    return a & ~(pageSizeBytes - 1);
}

/** Byte offset of a guest address within its page. */
constexpr u32
pageOffset(GAddr a)
{
    return a & (pageSizeBytes - 1);
}

} // namespace darco

#endif // DARCO_COMMON_TYPES_HH
